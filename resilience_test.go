package authenticache_test

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	authenticache "repro"
	"repro/internal/fault"
)

// Resilience control plane, end to end: a router with failure
// detection, circuit breakers, hedged failover, and deadline budgets
// drives the 3-node chaos cluster while stall gates black-hole nodes
// and partitions flap. The invariants:
//
//   - an impostor is never accepted, whatever the fault schedule;
//   - a black-holed owner costs at most one hedge delay, not a hang:
//     reads fail over to the ring successor within the budget;
//   - once the breaker opens, requests stop paying the attempt
//     deadline at all (fail-fast for writes, successor-only reads);
//   - healing closes the breaker through background probes alone, and
//     every request completes within its deadline budget throughout.

// stalledRelayDial routes each node's relay connections through its
// stall gate. The relay handshake happens after the gated dial, so
// the attempt deadline is installed as a conn deadline for its
// duration — a gate that engages mid-construction surfaces a deadline
// error instead of pinning the attempt goroutine.
func stalledRelayDial(addrs []string, stalls []*fault.Stall) func(context.Context, string) (*authenticache.RelayClient, error) {
	idx := make(map[string]int, len(addrs))
	for i, a := range addrs {
		idx[a] = i
	}
	return func(ctx context.Context, addr string) (*authenticache.RelayClient, error) {
		conn, err := stalls[idx[addr]].Dial(ctx, "tcp", addr)
		if err != nil {
			return nil, err
		}
		if dl, ok := ctx.Deadline(); ok {
			conn.SetDeadline(dl)
		}
		rc, err := authenticache.NewRelayClient(conn)
		if err != nil {
			conn.Close()
			return nil, err
		}
		conn.SetDeadline(time.Time{})
		return rc, nil
	}
}

// routerAuth runs one full authentication through the router.
func routerAuth(ctx context.Context, router *authenticache.Router, r *authenticache.Responder) (bool, error) {
	ch, err := router.BeginAuth(ctx, r.ID)
	if err != nil {
		return false, err
	}
	resp, err := r.Respond(ch)
	if err != nil {
		return false, err
	}
	v, err := router.FinishAuth(ctx, r.ID, ch.ID, resp)
	if err != nil {
		return false, err
	}
	return v.Accepted, nil
}

// routerAuthEventually retries routerAuth through transient chaos
// (the lossy node-0 listener, half-open trial windows), requiring each
// individual call to stay inside the budget bound and at least one to
// succeed.
func routerAuthEventually(t *testing.T, router *authenticache.Router, r *authenticache.Responder, tries int, perCall time.Duration) time.Duration {
	t.Helper()
	var lastErr error
	for i := 0; i < tries; i++ {
		start := time.Now()
		ok, err := routerAuth(ctx, router, r)
		elapsed := time.Since(start)
		if elapsed > perCall {
			t.Fatalf("routed auth call took %v, budget bound is %v (err=%v)", elapsed, perCall, err)
		}
		if err == nil && ok {
			return elapsed
		}
		if err == nil {
			t.Fatal("genuine device rejected through router")
		}
		var ae *authenticache.AuthError
		if !errors.As(err, &ae) {
			t.Fatalf("untyped router error %T: %v", err, err)
		}
		lastErr = err
	}
	t.Fatalf("routed auth failed %d times, last: %v", tries, lastErr)
	return 0
}

// routedOp runs one client operation the way a wire client consumes
// the router: a retryable unavailable is retried (fresh challenge,
// fresh relay) within the operation's deadline budget; a typed
// verdict or non-retryable refusal is final.
func routedOp(octx context.Context, router *authenticache.Router, r *authenticache.Responder) (bool, error) {
	var lastErr error
	for try := 0; try < 3 && octx.Err() == nil; try++ {
		ok, err := routerAuth(octx, router, r)
		if err == nil {
			return ok, nil
		}
		lastErr = err
		if !authenticache.Retryable(err) {
			return false, err
		}
	}
	return false, lastErr
}

func newResilientRouter(cn *clusterNodes, stalls []*fault.Stall) *authenticache.Router {
	return authenticache.NewRouter(authenticache.RouterConfig{
		ClientPeers:      cn.clientAddr,
		Self:             -1,
		Dial:             stalledRelayDial(cn.clientAddr, stalls),
		HedgeDelay:       15 * time.Millisecond,
		BreakerThreshold: 3,
		BreakerCooldown:  150 * time.Millisecond,
		ProbeInterval:    30 * time.Millisecond,
		Budget: authenticache.DeadlineBudget{
			Attempts: 2,
			Floor:    50 * time.Millisecond,
			Default:  400 * time.Millisecond,
		},
		Seed: chaosSeed,
	})
}

func TestRouterHedgedFailover(t *testing.T) {
	cn := startChaosCluster(t)
	primary := cn.nodes[0]
	stalls := []*fault.Stall{fault.NewStall(), fault.NewStall(), fault.NewStall()}
	router := newResilientRouter(cn, stalls)
	defer router.Close()
	router.Start(ctx)

	id := authenticache.ClientID("hedge-0")
	m := chaosMap(4096, 80, chaosSeed+21, 700)
	key, err := primary.Server().Enroll(ctx, id, m)
	if err != nil {
		t.Fatal(err)
	}
	clusterWait(t, 10*time.Second, "replication catch-up", func() bool {
		return cn.nodes[1].AppliedSeq() >= primary.Status().CommitSeq &&
			cn.nodes[2].AppliedSeq() >= primary.Status().CommitSeq
	})
	r := authenticache.NewResponder(id, authenticache.NewSimDevice(m), key)

	owners := authenticache.NewRing(3, 0).Owners(string(id), 2)
	owner, successor := owners[0], owners[1]
	if owner != router.Owner(id) {
		t.Fatalf("ring disagrees with router: owner %d vs %d", owners[0], router.Owner(id))
	}

	// The background prober populates the failure detector and sees
	// exactly the real role split.
	clusterWait(t, 5*time.Second, "probe coverage", func() bool {
		ps := router.Peers()
		return ps[0].Known && ps[1].Known && ps[2].Known
	})
	if ps := router.Peers(); !ps[0].Primary || ps[1].Primary || ps[2].Primary {
		t.Fatalf("detector role view wrong: %+v", ps)
	}

	routerAuthEventually(t, router, r, 8, 2*time.Second)

	// Black-hole the owner. Reads hedge to the successor: the whole
	// transaction completes despite a node that never answers and never
	// errors.
	stalls[owner].Block()
	hedged := routerAuthEventually(t, router, r, 8, 2*time.Second)
	t.Logf("hedged auth with stalled owner %d (successor %d): %v", owner, successor, hedged)

	// Probe failures alone open the owner's breaker.
	clusterWait(t, 5*time.Second, "owner breaker opens", func() bool {
		return router.Peers()[owner].Breaker == "open"
	})

	// With the breaker open the owner is skipped outright: successful
	// reads no longer pay the hedge wait against a dead socket. The
	// bound is far below the 400ms attempt allowance a stalled-owner
	// attempt would burn.
	fast := routerAuthEventually(t, router, r, 8, 2*time.Second)
	if fast > 300*time.Millisecond {
		t.Fatalf("open-breaker read took %v, want fail-fast (<300ms)", fast)
	}

	// Writes never hedge: with the owner's circuit open a key update
	// refuses immediately with a retryable unavailable.
	var fastFail error
	for i := 0; i < 10 && fastFail == nil; i++ {
		start := time.Now()
		_, err := router.BeginRemapTx(ctx, id)
		if err != nil && strings.Contains(err.Error(), "circuit open") {
			if el := time.Since(start); el > 100*time.Millisecond {
				t.Fatalf("breaker fail-fast took %v", el)
			}
			if !authenticache.Retryable(err) || !errors.Is(err, authenticache.ErrUnavailable) {
				t.Fatalf("fail-fast remap error not retryable unavailable: %v", err)
			}
			fastFail = err
		}
	}
	if fastFail == nil {
		t.Fatal("open breaker never fail-fasted a key update")
	}

	// Heal: probes close the breaker without any live-traffic trial,
	// and the owner serves again.
	stalls[owner].Heal()
	clusterWait(t, 5*time.Second, "owner breaker closes", func() bool {
		ps := router.Peers()[owner]
		return ps.Breaker == "closed" && ps.ConsecutiveFails == 0
	})
	routerAuthEventually(t, router, r, 8, 2*time.Second)
}

// TestClusterResilienceSoak is the chaos soak: mixed genuine and
// impostor traffic runs through the resilient router while a stall
// gate flaps one owner's client path and a partition flaps a
// follower's replication link. Zero forged accepts, every operation
// bounded by its deadline budget, full recovery after the storm.
func TestClusterResilienceSoak(t *testing.T) {
	const (
		clients   = 4
		opsPerCli = 30
		opBudget  = 3 * time.Second
	)
	cn := startChaosCluster(t)
	primary := cn.nodes[0]
	stalls := []*fault.Stall{fault.NewStall(), fault.NewStall(), fault.NewStall()}
	router := newResilientRouter(cn, stalls)
	defer router.Close()
	router.Start(ctx)

	keys := make(map[authenticache.ClientID]authenticache.Key, clients)
	responders := make([]*authenticache.Responder, clients)
	for i := 0; i < clients; i++ {
		id := authenticache.ClientID(fmt.Sprintf("soak-%d", i))
		m := chaosMap(4096, 80, chaosSeed+30+uint64(i), 700)
		key, err := primary.Server().Enroll(ctx, id, m)
		if err != nil {
			t.Fatal(err)
		}
		keys[id] = key
		responders[i] = authenticache.NewResponder(id, authenticache.NewSimDevice(m), key)
	}
	clusterWait(t, 10*time.Second, "replication catch-up", func() bool {
		return cn.nodes[1].AppliedSeq() >= primary.Status().CommitSeq &&
			cn.nodes[2].AppliedSeq() >= primary.Status().CommitSeq
	})

	var (
		okOps, failedOps atomic.Uint64
		rejected, forged atomic.Uint64
		untypedErr       atomic.Uint64
		latMu            sync.Mutex
		latencies        []time.Duration
	)
	record := func(d time.Duration) {
		latMu.Lock()
		latencies = append(latencies, d)
		latMu.Unlock()
	}
	var wg sync.WaitGroup
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			r := responders[i]
			for op := 0; op < opsPerCli; op++ {
				octx, cancel := context.WithTimeout(ctx, opBudget)
				start := time.Now()
				ok, err := routedOp(octx, router, r)
				elapsed := time.Since(start)
				cancel()
				record(elapsed)
				switch {
				case err != nil:
					if n := failedOps.Add(1); n <= 12 {
						t.Logf("client %d op %d failed (%v): %v", i, op, elapsed, err)
					}
					var ae *authenticache.AuthError
					if !errors.As(err, &ae) {
						untypedErr.Add(1)
						t.Errorf("client %d op %d: untyped error %T: %v", i, op, err, err)
					}
				case !ok:
					rejected.Add(1)
					t.Errorf("client %d op %d: genuine device rejected", i, op)
				default:
					okOps.Add(1)
				}
				time.Sleep(5 * time.Millisecond)
			}
		}(i)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		wrong := chaosMap(4096, 80, chaosSeed+998, 680, 700)
		imp := authenticache.NewResponder("soak-0", authenticache.NewSimDevice(wrong), keys["soak-0"])
		for op := 0; op < opsPerCli; op++ {
			octx, cancel := context.WithTimeout(ctx, opBudget)
			ok, err := routedOp(octx, router, imp)
			cancel()
			if ok {
				forged.Add(1)
				t.Errorf("impostor accepted on op %d", op)
			}
			if err != nil {
				var ae *authenticache.AuthError
				if !errors.As(err, &ae) {
					untypedErr.Add(1)
					t.Errorf("impostor op %d: untyped error %T: %v", op, err, err)
				}
			}
			time.Sleep(5 * time.Millisecond)
		}
	}()

	// The fault schedule: the owner of soak-0 flaps in and out of a
	// black hole on its client path while node 2's replication link
	// flaps. Down windows stay under the lease horizon so no failover
	// is provoked — this is degradation, not promotion.
	flapNode := router.Owner("soak-0")
	wg.Add(1)
	go func() {
		defer wg.Done()
		fault.Flap(ctx, stalls[flapNode], fault.FlapPlan{
			Down: 120 * time.Millisecond, Up: 100 * time.Millisecond,
			Cycles: 4, Jitter: 0.3, Seed: chaosSeed + 1,
		})
	}()
	wg.Add(1)
	go func() {
		defer wg.Done()
		fault.Flap(ctx, cn.gateTo0[2], fault.FlapPlan{
			Down: 150 * time.Millisecond, Up: 150 * time.Millisecond,
			Cycles: 3, Seed: chaosSeed + 2,
		})
	}()
	wg.Wait()

	total := okOps.Load() + failedOps.Load() + rejected.Load()
	if total != clients*opsPerCli {
		t.Fatalf("accounted %d ops, want %d", total, clients*opsPerCli)
	}
	if forged.Load() != 0 {
		t.Errorf("%d forged accepts", forged.Load())
	}
	if untypedErr.Load() != 0 {
		t.Errorf("%d untyped errors surfaced", untypedErr.Load())
	}
	if ratio := float64(okOps.Load()) / float64(total); ratio < 0.7 {
		t.Errorf("success ratio %.4f < 0.7 under flapping faults (ok=%d failed=%d)",
			ratio, okOps.Load(), failedOps.Load())
	}

	// Bounded latency: every operation — including those that ran into
	// the black hole — completed within its deadline budget; nothing
	// hung.
	sort.Slice(latencies, func(a, b int) bool { return latencies[a] < latencies[b] })
	p50 := latencies[len(latencies)/2]
	p99 := latencies[len(latencies)*99/100]
	worst := latencies[len(latencies)-1]
	t.Logf("soak latency: p50=%v p99=%v max=%v ok=%d failed=%d",
		p50, p99, worst, okOps.Load(), failedOps.Load())
	if worst > opBudget+500*time.Millisecond {
		t.Errorf("operation outlived its deadline budget: %v", worst)
	}

	// No failover was provoked: the storm degraded service, it did not
	// depose the primary.
	if cn.nodes[0].Role() != authenticache.RolePrimary {
		t.Fatal("primary deposed by a sub-lease flap schedule")
	}

	// Recovery: probes close every breaker and all clients
	// authenticate again.
	clusterWait(t, 10*time.Second, "breakers close after storm", func() bool {
		for _, ps := range router.Peers() {
			if ps.Breaker != "closed" || !ps.Known {
				return false
			}
		}
		return true
	})
	for _, r := range responders {
		routerAuthEventually(t, router, r, 8, 2*time.Second)
	}
}
