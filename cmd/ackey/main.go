// Command ackey derives cryptographic keys from the cache-ECC PUF
// (paper Section 7.3) — the command-line face of the keygen package.
//
// provision measures a simulated chip, binds a fresh secret to its PUF
// response, writes the public helper bundle to a file, and prints the
// derived key. recover re-measures the chip (same seed = same silicon,
// fresh measurement noise) and re-derives the key from the bundle.
//
//	ackey provision -chipseed 42 -bundle key.bundle [-scheme bch]
//	ackey recover   -chipseed 42 -bundle key.bundle
//
// Recovering with a different -chipseed fails or yields a different
// key: the bundle is useless without the silicon.
package main

import (
	"encoding/hex"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"time"

	authenticache "repro"
	"repro/internal/keygen"
)

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	cmd := os.Args[1]
	fs := flag.NewFlagSet(cmd, flag.ExitOnError)
	chipSeed := fs.Uint64("chipseed", 42, "physical chip seed")
	cacheBytes := fs.Int("cache", 512<<10, "simulated cache size in bytes")
	bundlePath := fs.String("bundle", "key.bundle", "helper bundle file")
	scheme := fs.String("scheme", "repetition", "fuzzy extractor: repetition or bch")
	keyBits := fs.Int("bits", 128, "secret length before strengthening")
	fs.Parse(os.Args[2:])

	chip, err := authenticache.NewChip(authenticache.ChipConfig{
		Seed:       *chipSeed,
		MeasSeed:   uint64(time.Now().UnixNano()),
		CacheBytes: *cacheBytes,
	})
	if err != nil {
		log.Fatalf("ackey: chip: %v", err)
	}
	dev := chip.Device()

	switch cmd {
	case "provision":
		vdd := chip.AuthVoltagesMV(1, 10)[0]
		var params keygen.Params
		switch *scheme {
		case "repetition":
			params = keygen.DefaultParams(vdd)
		case "bch":
			params = keygen.BCHParams(vdd)
		default:
			log.Fatalf("ackey: unknown scheme %q", *scheme)
		}
		params.KeyBits = *keyBits
		bundle, key, err := keygen.Provision(dev, params, authenticache.NewRandSource(uint64(time.Now().UnixNano())))
		if err != nil {
			log.Fatalf("ackey: provision: %v", err)
		}
		err = authenticache.AtomicWriteFile(*bundlePath, func(w io.Writer) error {
			enc := json.NewEncoder(w)
			enc.SetIndent("", " ")
			return enc.Encode(bundle)
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("bundle written to %s (%s, %d response bits)\n",
			*bundlePath, params.Scheme, bundle.Challenge.Len())
		fmt.Printf("key: %s\n", hex.EncodeToString(key[:]))
	case "recover":
		f, err := os.Open(*bundlePath)
		if err != nil {
			log.Fatalf("ackey: open bundle: %v", err)
		}
		var bundle keygen.Bundle
		if err := json.NewDecoder(f).Decode(&bundle); err != nil {
			log.Fatalf("ackey: decode bundle: %v", err)
		}
		f.Close()
		key, err := keygen.Recover(dev, &bundle)
		if err != nil {
			log.Fatalf("ackey: recover: %v", err)
		}
		fmt.Printf("key: %s\n", hex.EncodeToString(key[:]))
	default:
		usage()
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage:
  ackey provision -chipseed N -bundle FILE [-scheme repetition|bch] [-bits N]
  ackey recover   -chipseed N -bundle FILE`)
	os.Exit(2)
}
