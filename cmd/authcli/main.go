// Command authcli authenticates a simulated client device against an
// authd server over TCP.
//
// The client rebuilds its silicon from -chipseed (the same seed the
// server's factory used: identical seed means identical physical chip,
// re-measured with fresh noise), loads the provisioned remap key, and
// runs -n authentication transactions through the full firmware stack:
// SMM entry, voltage-floor checks, targeted low-voltage self-tests.
//
// Usage (values come from authd's PROVISION lines):
//
//	authcli -addr 127.0.0.1:7430 -id dev-0 -chipseed 1 -key <hex> [-n 3] [-remap]
//	authcli -impostor ...   # keep the key but fake the silicon
package main

import (
	"context"
	"encoding/hex"
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	authenticache "repro"
)

// txTimeout bounds each wire transaction; a stalled server fails the
// run instead of hanging the CLI.
const txTimeout = 30 * time.Second

func main() {
	addr := flag.String("addr", "127.0.0.1:7430", "authd address")
	id := flag.String("id", "dev-0", "client identity")
	chipSeed := flag.Uint64("chipseed", 1, "physical chip seed")
	keyHex := flag.String("key", "", "provisioned remap key (64 hex chars)")
	n := flag.Int("n", 3, "number of authentications to run")
	remap := flag.Bool("remap", false, "run a key-update transaction first")
	impostor := flag.Bool("impostor", false, "simulate stolen-key attack: right key, wrong silicon")
	cacheBytes := flag.Int("cache", 1<<20, "simulated cache size in bytes")
	measSeed := flag.Uint64("measseed", 0, "measurement noise seed (0 = derive)")
	flag.Parse()

	var key authenticache.Key
	kb, err := hex.DecodeString(*keyHex)
	if err != nil || len(kb) != len(key) {
		log.Fatalf("authcli: -key must be %d hex chars", len(key)*2)
	}
	copy(key[:], kb)

	seed := *chipSeed
	if *impostor {
		seed ^= 0xbad00bad // different silicon, same key
		log.Printf("authcli: IMPOSTOR mode: presenting chip %#x for identity %q", seed, *id)
	}
	ms := *measSeed
	if ms == 0 {
		// A field re-measurement: same silicon, fresh noise.
		ms = seed ^ uint64(time.Now().UnixNano())
	}
	chip, err := authenticache.NewChip(authenticache.ChipConfig{
		Seed:       seed,
		MeasSeed:   ms,
		CacheBytes: *cacheBytes,
	})
	if err != nil {
		log.Fatalf("authcli: chip: %v", err)
	}
	log.Printf("authcli: chip ready (floor %d mV)", chip.FloorMV())
	responder := authenticache.NewResponder(authenticache.ClientID(*id), chip.Device(), key)

	ctx := context.Background()
	dialCtx, cancelDial := context.WithTimeout(ctx, txTimeout)
	wc, err := authenticache.Dial(dialCtx, *addr)
	cancelDial()
	if err != nil {
		log.Fatalf("authcli: dial: %v", err)
	}
	defer wc.Close()

	if *remap {
		if err := withTimeout(ctx, func(ctx context.Context) error {
			return wc.Remap(ctx, responder)
		}); err != nil {
			log.Fatalf("authcli: remap: %v", err)
		}
		log.Printf("authcli: key rotated")
	}

	failures := 0
	for i := 0; i < *n; i++ {
		start := time.Now()
		var ok bool
		err := withTimeout(ctx, func(ctx context.Context) error {
			var err error
			ok, err = wc.Authenticate(ctx, responder)
			return err
		})
		if err != nil {
			log.Fatalf("authcli: authenticate: %v", err)
		}
		verdict := "ACCEPTED"
		if !ok {
			verdict = "REJECTED"
			failures++
		}
		fmt.Printf("auth %d/%d: %s (wire %v, firmware %v, %d line self-tests)\n",
			i+1, *n, verdict, time.Since(start).Round(time.Millisecond),
			chip.Firmware().Elapsed().Round(time.Millisecond),
			chip.Firmware().ProbesLastRun())
	}
	if failures > 0 {
		os.Exit(1)
	}
}

// withTimeout runs one transaction under the per-transaction deadline.
func withTimeout(parent context.Context, fn func(context.Context) error) error {
	ctx, cancel := context.WithTimeout(parent, txTimeout)
	defer cancel()
	return fn(ctx)
}
