// Command acsim regenerates the tables and figures of the
// Authenticache paper (MICRO 2015) from the simulated substrate.
//
// Usage:
//
//	acsim [flags] <experiment> [experiment...]
//	acsim all
//
// Experiments: fig1 fig2 fig3 sec3 fig9 fig10 fig11 fig12 fig13 fig14
// fig15 fig16 table1.
//
// Flags:
//
//	-seed N    deterministic experiment seed (default 1)
//	-full      use paper-scale Monte Carlo effort (slow)
//	-crps N    fig16 training budget (default 400000)
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	"repro/internal/errormap"
	"repro/internal/experiments"
	"repro/internal/montecarlo"
	"repro/internal/quality"
)

func main() {
	seed := flag.Uint64("seed", 1, "experiment seed")
	full := flag.Bool("full", false, "paper-scale Monte Carlo effort (slow)")
	crps := flag.Int("crps", 400000, "fig16 training budget (challenges)")
	md := flag.Bool("md", false, "emit GitHub-flavoured markdown instead of aligned text")
	flag.Usage = usage
	flag.Parse()

	scale := experiments.DefaultScale()
	if *full {
		scale = experiments.FullScale()
	}

	runners := map[string]func() *experiments.Table{
		"fig1":      func() *experiments.Table { return experiments.Fig1(*seed) },
		"fig2":      func() *experiments.Table { return experiments.Fig2(*seed) },
		"fig3":      func() *experiments.Table { return experiments.Fig3(*seed) },
		"sec3":      func() *experiments.Table { return experiments.Sec3(*seed) },
		"fig9":      func() *experiments.Table { return experiments.Fig9(*seed, scale) },
		"fig10":     func() *experiments.Table { return experiments.Fig10(*seed, scale) },
		"fig11":     func() *experiments.Table { return experiments.Fig11(*seed) },
		"fig12":     func() *experiments.Table { return experiments.Fig12(*seed, scale) },
		"fig13":     func() *experiments.Table { return experiments.Fig13(*seed) },
		"fig14":     func() *experiments.Table { return experiments.Fig14(*seed, scale) },
		"fig15":     func() *experiments.Table { return experiments.Fig15(*seed, scale) },
		"fig16":     func() *experiments.Table { return experiments.Fig16(*seed, *crps, *crps/16) },
		"fig16dep":  func() *experiments.Table { return experiments.Fig16Dependency(*seed, *crps/2, *crps/32) },
		"table1":    func() *experiments.Table { return experiments.Table1() },
		"ext-temp":  func() *experiments.Table { return experiments.ExtTemperature(*seed) },
		"ext-aging": func() *experiments.Table { return experiments.ExtAging(*seed) },
	}

	args := flag.Args()
	if len(args) == 0 {
		usage()
		os.Exit(2)
	}
	if len(args) == 1 && args[0] == "all" {
		args = nil
		for name := range runners {
			args = append(args, name)
		}
		sort.Strings(args)
		args = append(args, "quality")
	}
	for _, name := range args {
		if name == "quality" {
			runQuality(*seed, scale)
			fmt.Println()
			continue
		}
		run, ok := runners[name]
		if !ok {
			fmt.Fprintf(os.Stderr, "acsim: unknown experiment %q\n", name)
			usage()
			os.Exit(2)
		}
		tbl := run()
		if *md {
			tbl.FprintMarkdown(os.Stdout)
		} else {
			tbl.Fprint(os.Stdout)
		}
		fmt.Println()
	}
}

// runQuality prints the Section 2.2 PUF report card over a Monte Carlo
// population matching the paper's 4 MB / 100-error configuration.
func runQuality(seed uint64, scale experiments.MCScale) {
	chips := scale.Maps
	if chips < 8 {
		chips = 8
	}
	pop := montecarlo.Population{
		Geometry: errormap.NewGeometry(65536),
		Errors:   100,
		Seed:     seed,
	}
	cfg := quality.DefaultConfig()
	cfg.Seed = seed
	rep, err := quality.Evaluate(pop.Planes(chips), cfg)
	if err != nil {
		fmt.Fprintf(os.Stderr, "acsim: quality: %v\n", err)
		os.Exit(1)
	}
	fmt.Println("== quality: PUF report card (paper Section 2.2 metrics) ==")
	rep.Fprint(os.Stdout)
}

func usage() {
	fmt.Fprintf(os.Stderr, `usage: acsim [flags] <experiment>...

Regenerates the Authenticache paper's evaluation. Experiments:
  fig1    failing lines vs voltage (4 MB hardware sweep)
  fig2    error distribution across sets/ways
  fig3    cross-chip error address overlap (8 x 768 KB)
  sec3    inter-die vs intra-die response variation
  fig9    Hamming-distance distributions under noise
  fig10   max tolerable noise for <1 ppm failures
  fig11   self-test persistence CDF
  fig12   bit-aliasing and uniformity
  fig13   runtime vs CRP size and attempts
  fig14   runtime vs error-map density
  fig15   mean nearest-error distance vs errors
  fig16   model-building attack learning curve (win-rate attacker)
  fig16dep  same, with the paper's dependency-chain attacker
  table1  lifetime daily authentication budget
  quality PUF report card (Section 2.2 metric suite)
  ext-temp   extension: intra-die variation vs temperature
  ext-aging  extension: intra-die variation vs circuit aging
  all     everything above

Flags:
`)
	flag.PrintDefaults()
}
