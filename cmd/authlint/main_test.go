package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/lint/analyzers"
)

// allAnalyzerNames is the registered suite by name; the fixture
// module seeds exactly one violation per analyzer, so every e2e mode
// must surface every name.
func allAnalyzerNames() []string {
	var names []string
	for _, a := range analyzers.All() {
		names = append(names, a.Name)
	}
	return names
}

// TestVetHandshake covers the cmd/go tool-identification protocol
// without spawning processes.
func TestVetHandshake(t *testing.T) {
	var out, errOut bytes.Buffer
	if code := run([]string{"-V=full"}, &out, &errOut); code != 0 {
		t.Fatalf("-V=full exited %d: %s", code, errOut.String())
	}
	fields := strings.Fields(out.String())
	// cmd/go requires: name, "version", and for devel versions a
	// trailing buildID= field.
	if len(fields) < 3 || fields[0] != "authlint" || fields[1] != "version" ||
		(fields[2] == "devel" && !strings.HasPrefix(fields[len(fields)-1], "buildID=")) {
		t.Fatalf("-V=full output %q does not satisfy cmd/go's toolID parser", out.String())
	}

	out.Reset()
	if code := run([]string{"-flags"}, &out, &errOut); code != 0 {
		t.Fatalf("-flags exited %d: %s", code, errOut.String())
	}
	if strings.TrimSpace(out.String()) != "[]" {
		t.Fatalf("-flags printed %q, want an empty JSON array", out.String())
	}
}

// buildDriver compiles authlint once into the test's temp dir.
func buildDriver(t *testing.T) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), "authlint")
	cmd := exec.Command("go", "build", "-o", bin, ".")
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("building authlint: %v\n%s", err, out)
	}
	return bin
}

// TestStandaloneFindsSeededViolations runs the built driver against
// the fixture module, which seeds exactly one violation per analyzer,
// and requires a non-zero exit naming each analyzer.
func TestStandaloneFindsSeededViolations(t *testing.T) {
	bin := buildDriver(t)
	cmd := exec.Command(bin, "./...")
	cmd.Dir = "testdata/fixture"
	out, err := cmd.CombinedOutput()
	exitErr, ok := err.(*exec.ExitError)
	if !ok {
		t.Fatalf("driver err = %v (output %s), want an exit error", err, out)
	}
	if code := exitErr.ExitCode(); code != 1 {
		t.Fatalf("driver exited %d, want 1 (findings)\n%s", code, out)
	}
	for _, analyzer := range allAnalyzerNames() {
		if !strings.Contains(string(out), "("+analyzer+")") {
			t.Errorf("driver output lacks a %s finding:\n%s", analyzer, out)
		}
	}
}

// jsonWantCounts is the number of seeded fixture violations per
// analyzer: one each, except errtaxonomy (a bare errors.New return
// plus a non-exhaustive Retryable switch), secretflow (a chained
// secret-to-log flow, a dangling //lint:secret, a reason-less
// //lint:sanitizes), and repinvariant (a stale-term accept, a
// Journal* path skipping the quorum ack, an unaccounted goroutine).
func jsonWantCounts() map[string]int {
	want := make(map[string]int)
	for _, name := range allAnalyzerNames() {
		want[name] = 1
	}
	want["errtaxonomy"] = 2
	want["secretflow"] = 3
	want["repinvariant"] = 3
	return want
}

// TestJSONOutput runs the driver in-process with -json over the
// fixture module and checks the machine-readable contract: one JSON
// object per line, stable field names, exactly the seeded finding
// count per analyzer.
func TestJSONOutput(t *testing.T) {
	var out, errOut bytes.Buffer
	code := run([]string{"-dir", "testdata/fixture", "-json", "./..."}, &out, &errOut)
	if code != 1 {
		t.Fatalf("run exited %d, want 1 (findings)\nstdout: %s\nstderr: %s", code, out.String(), errOut.String())
	}
	got := make(map[string]int)
	sc := bufio.NewScanner(&out)
	for sc.Scan() {
		line := sc.Bytes()
		var d struct {
			File     string `json:"file"`
			Line     int    `json:"line"`
			Col      int    `json:"col"`
			Analyzer string `json:"analyzer"`
			Message  string `json:"message"`
		}
		if err := json.Unmarshal(line, &d); err != nil {
			t.Fatalf("line %q is not a JSON diagnostic: %v", line, err)
		}
		if d.File == "" || d.Line == 0 || d.Col == 0 || d.Analyzer == "" || d.Message == "" {
			t.Errorf("diagnostic %q has empty fields", line)
		}
		got[d.Analyzer]++
	}
	for analyzer, want := range jsonWantCounts() {
		if got[analyzer] != want {
			t.Errorf("-json emitted %d %s findings, want exactly %d", got[analyzer], analyzer, want)
		}
	}
}

// TestVettoolFindsSeededViolations drives the full `go vet -vettool`
// unitchecker protocol over the fixture module.
func TestVettoolFindsSeededViolations(t *testing.T) {
	bin := buildDriver(t)
	cmd := exec.Command("go", "vet", "-vettool="+bin, "./...")
	cmd.Dir = "testdata/fixture"
	out, err := cmd.CombinedOutput()
	if err == nil {
		t.Fatalf("go vet -vettool succeeded, want failure\n%s", out)
	}
	for _, analyzer := range allAnalyzerNames() {
		if !strings.Contains(string(out), "("+analyzer+")") {
			t.Errorf("vettool output lacks a %s finding:\n%s", analyzer, out)
		}
	}
}

// TestSARIFOutput runs the driver in-process with -sarif over the
// fixture module and checks the code-scanning contract: a valid
// SARIF 2.1.0 envelope, one rule per registered analyzer, and one
// result per seeded finding with a physical location whose URI is
// relative to the module root.
func TestSARIFOutput(t *testing.T) {
	var out, errOut bytes.Buffer
	code := run([]string{"-dir", "testdata/fixture", "-sarif", "./..."}, &out, &errOut)
	if code != 1 {
		t.Fatalf("run exited %d, want 1 (findings)\nstdout: %s\nstderr: %s", code, out.String(), errOut.String())
	}
	var log struct {
		Schema  string `json:"$schema"`
		Version string `json:"version"`
		Runs    []struct {
			Tool struct {
				Driver struct {
					Name  string `json:"name"`
					Rules []struct {
						ID               string `json:"id"`
						ShortDescription struct {
							Text string `json:"text"`
						} `json:"shortDescription"`
					} `json:"rules"`
				} `json:"driver"`
			} `json:"tool"`
			Results []struct {
				RuleID  string `json:"ruleId"`
				Level   string `json:"level"`
				Message struct {
					Text string `json:"text"`
				} `json:"message"`
				Locations []struct {
					PhysicalLocation struct {
						ArtifactLocation struct {
							URI string `json:"uri"`
						} `json:"artifactLocation"`
						Region struct {
							StartLine   int `json:"startLine"`
							StartColumn int `json:"startColumn"`
						} `json:"region"`
					} `json:"physicalLocation"`
				} `json:"locations"`
			} `json:"results"`
		} `json:"runs"`
	}
	if err := json.Unmarshal(out.Bytes(), &log); err != nil {
		t.Fatalf("-sarif output is not JSON: %v\n%s", err, out.String())
	}
	if log.Version != "2.1.0" || !strings.Contains(log.Schema, "sarif-2.1.0") {
		t.Errorf("envelope version %q schema %q, want SARIF 2.1.0", log.Version, log.Schema)
	}
	if len(log.Runs) != 1 {
		t.Fatalf("got %d runs, want 1", len(log.Runs))
	}
	run := log.Runs[0]
	if run.Tool.Driver.Name != "authlint" {
		t.Errorf("driver name %q, want authlint", run.Tool.Driver.Name)
	}
	ruleIDs := make(map[string]bool)
	for _, r := range run.Tool.Driver.Rules {
		ruleIDs[r.ID] = true
		if r.ShortDescription.Text == "" {
			t.Errorf("rule %s has no shortDescription", r.ID)
		}
	}
	got := make(map[string]int)
	for _, res := range run.Results {
		got[res.RuleID]++
		if !ruleIDs[res.RuleID] {
			t.Errorf("result ruleId %q is not a declared rule", res.RuleID)
		}
		if res.Level != "error" {
			t.Errorf("result level %q, want error", res.Level)
		}
		if len(res.Locations) != 1 {
			t.Errorf("result has %d locations, want 1", len(res.Locations))
			continue
		}
		loc := res.Locations[0].PhysicalLocation
		if loc.Region.StartLine == 0 || loc.Region.StartColumn == 0 {
			t.Errorf("result for %s lacks a region: %+v", res.RuleID, loc.Region)
		}
		uri := loc.ArtifactLocation.URI
		if uri == "" || strings.HasPrefix(uri, "/") || strings.Contains(uri, "testdata/fixture") {
			t.Errorf("artifact URI %q is not relative to the module root", uri)
		}
	}
	for _, a := range allAnalyzerNames() {
		if !ruleIDs[a] {
			t.Errorf("rules lack registered analyzer %s", a)
		}
	}
	for analyzer, want := range jsonWantCounts() {
		if got[analyzer] != want {
			t.Errorf("-sarif emitted %d %s results, want exactly %d", got[analyzer], analyzer, want)
		}
	}
}

// TestSecretToLogInAuthRejected is the acceptance check for the taint
// engine's built-in seeds: a scratch module that mimics the repo's
// import paths gets a deliberate error-map-to-log write in its
// internal/auth package, and the driver must reject it — no directive
// in the scratch module, only the built-in seed list.
func TestSecretToLogInAuthRejected(t *testing.T) {
	dir := t.TempDir()
	files := map[string]string{
		"go.mod": "module repro\n\ngo 1.22\n",
		"internal/errormap/errormap.go": `// Package errormap mimics the repo's error-map container.
package errormap

// Plane is a single-voltage error map.
type Plane struct{ Words []uint64 }
`,
		"internal/auth/auth.go": `// Package auth deliberately logs a raw error map.
package auth

import (
	"log"

	"repro/internal/errormap"
)

// Dump leaks the client's physical error map into the server log.
func Dump(p *errormap.Plane) {
	log.Printf("map=%v", p)
}
`,
	}
	for name, content := range files {
		path := filepath.Join(dir, filepath.FromSlash(name))
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	var out, errOut bytes.Buffer
	code := run([]string{"-dir", dir, "./..."}, &out, &errOut)
	if code != 1 {
		t.Fatalf("run exited %d, want 1 (secret-to-log rejected)\nstdout: %s\nstderr: %s",
			code, out.String(), errOut.String())
	}
	text := out.String()
	if !strings.Contains(text, "(secretflow)") ||
		!strings.Contains(text, "raw error map") ||
		!strings.Contains(text, "log output (log.Printf)") {
		t.Fatalf("driver did not report the seeded secret-to-log flow:\n%s", text)
	}
}

// TestStandaloneCleanModuleExitsZero lints the lint framework's own
// module subtree — which must stay clean — through the driver.
func TestStandaloneCleanModuleExitsZero(t *testing.T) {
	bin := buildDriver(t)
	cmd := exec.Command(bin, "-dir", "../..", "./internal/lint/...")
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("driver on a clean subtree: %v\n%s", err, out)
	}
	if len(bytes.TrimSpace(out)) != 0 {
		t.Fatalf("driver printed diagnostics on a clean subtree:\n%s", out)
	}
}

// TestPooledBufLeakInWireRejected is the acceptance check for
// poolsafe's built-in seeds: a scratch module that mimics the repo's
// import paths leaks a pooled wire.Buf on an error path in its
// internal/auth package, and the driver must reject it — no
// //lint:pool directive in the scratch module, only the path-matched
// wire.GetBuf/PutBuf pair.
func TestPooledBufLeakInWireRejected(t *testing.T) {
	dir := t.TempDir()
	files := map[string]string{
		"go.mod": "module repro\n\ngo 1.22\n",
		"internal/wire/wire.go": `// Package wire mimics the repo's buffer pool.
package wire

// Buf is a pooled frame buffer.
type Buf struct{ B []byte }

var pool []*Buf

// GetBuf hands out a buffer.
func GetBuf() *Buf {
	if n := len(pool); n > 0 {
		b := pool[n-1]
		pool = pool[:n-1]
		return b
	}
	return &Buf{}
}

// PutBuf returns a buffer to the pool.
func PutBuf(b *Buf) { pool = append(pool, b) }
`,
		"internal/auth/auth.go": `// Package auth deliberately leaks a pooled buffer on an error path.
package auth

import (
	"errors"

	"repro/internal/wire"
)

// Frame builds a frame but forgets the buffer when the payload is
// oversized.
func Frame(payload []byte) ([]byte, error) {
	b := wire.GetBuf()
	if len(payload) > 1<<16 {
		return nil, errors.New("payload too large")
	}
	b.B = append(b.B[:0], payload...)
	out := append([]byte(nil), b.B...)
	wire.PutBuf(b)
	return out, nil
}
`,
	}
	for name, content := range files {
		path := filepath.Join(dir, filepath.FromSlash(name))
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	var out, errOut bytes.Buffer
	code := run([]string{"-dir", dir, "./..."}, &out, &errOut)
	if code != 1 {
		t.Fatalf("run exited %d, want 1 (pooled-buffer leak rejected)\nstdout: %s\nstderr: %s",
			code, out.String(), errOut.String())
	}
	text := out.String()
	if !strings.Contains(text, "(poolsafe)") ||
		!strings.Contains(text, "not returned to the pool on every path") {
		t.Fatalf("driver did not report the seeded pooled-buffer leak:\n%s", text)
	}
}
