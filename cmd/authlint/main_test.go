package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/lint/analyzers"
)

// allAnalyzerNames is the registered suite by name; the fixture
// module seeds exactly one violation per analyzer, so every e2e mode
// must surface every name.
func allAnalyzerNames() []string {
	var names []string
	for _, a := range analyzers.All() {
		names = append(names, a.Name)
	}
	return names
}

// TestVetHandshake covers the cmd/go tool-identification protocol
// without spawning processes.
func TestVetHandshake(t *testing.T) {
	var out, errOut bytes.Buffer
	if code := run([]string{"-V=full"}, &out, &errOut); code != 0 {
		t.Fatalf("-V=full exited %d: %s", code, errOut.String())
	}
	fields := strings.Fields(out.String())
	// cmd/go requires: name, "version", and for devel versions a
	// trailing buildID= field.
	if len(fields) < 3 || fields[0] != "authlint" || fields[1] != "version" ||
		(fields[2] == "devel" && !strings.HasPrefix(fields[len(fields)-1], "buildID=")) {
		t.Fatalf("-V=full output %q does not satisfy cmd/go's toolID parser", out.String())
	}

	out.Reset()
	if code := run([]string{"-flags"}, &out, &errOut); code != 0 {
		t.Fatalf("-flags exited %d: %s", code, errOut.String())
	}
	if strings.TrimSpace(out.String()) != "[]" {
		t.Fatalf("-flags printed %q, want an empty JSON array", out.String())
	}
}

// buildDriver compiles authlint once into the test's temp dir.
func buildDriver(t *testing.T) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), "authlint")
	cmd := exec.Command("go", "build", "-o", bin, ".")
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("building authlint: %v\n%s", err, out)
	}
	return bin
}

// TestStandaloneFindsSeededViolations runs the built driver against
// the fixture module, which seeds exactly one violation per analyzer,
// and requires a non-zero exit naming each analyzer.
func TestStandaloneFindsSeededViolations(t *testing.T) {
	bin := buildDriver(t)
	cmd := exec.Command(bin, "./...")
	cmd.Dir = "testdata/fixture"
	out, err := cmd.CombinedOutput()
	exitErr, ok := err.(*exec.ExitError)
	if !ok {
		t.Fatalf("driver err = %v (output %s), want an exit error", err, out)
	}
	if code := exitErr.ExitCode(); code != 1 {
		t.Fatalf("driver exited %d, want 1 (findings)\n%s", code, out)
	}
	for _, analyzer := range allAnalyzerNames() {
		if !strings.Contains(string(out), "("+analyzer+")") {
			t.Errorf("driver output lacks a %s finding:\n%s", analyzer, out)
		}
	}
}

// jsonWantCounts is the number of seeded fixture violations per
// analyzer: one each, except errtaxonomy, which seeds both a bare
// errors.New return and a non-exhaustive Retryable switch.
func jsonWantCounts() map[string]int {
	want := make(map[string]int)
	for _, name := range allAnalyzerNames() {
		want[name] = 1
	}
	want["errtaxonomy"] = 2
	return want
}

// TestJSONOutput runs the driver in-process with -json over the
// fixture module and checks the machine-readable contract: one JSON
// object per line, stable field names, exactly the seeded finding
// count per analyzer.
func TestJSONOutput(t *testing.T) {
	var out, errOut bytes.Buffer
	code := run([]string{"-dir", "testdata/fixture", "-json", "./..."}, &out, &errOut)
	if code != 1 {
		t.Fatalf("run exited %d, want 1 (findings)\nstdout: %s\nstderr: %s", code, out.String(), errOut.String())
	}
	got := make(map[string]int)
	sc := bufio.NewScanner(&out)
	for sc.Scan() {
		line := sc.Bytes()
		var d struct {
			File     string `json:"file"`
			Line     int    `json:"line"`
			Col      int    `json:"col"`
			Analyzer string `json:"analyzer"`
			Message  string `json:"message"`
		}
		if err := json.Unmarshal(line, &d); err != nil {
			t.Fatalf("line %q is not a JSON diagnostic: %v", line, err)
		}
		if d.File == "" || d.Line == 0 || d.Col == 0 || d.Analyzer == "" || d.Message == "" {
			t.Errorf("diagnostic %q has empty fields", line)
		}
		got[d.Analyzer]++
	}
	for analyzer, want := range jsonWantCounts() {
		if got[analyzer] != want {
			t.Errorf("-json emitted %d %s findings, want exactly %d", got[analyzer], analyzer, want)
		}
	}
}

// TestVettoolFindsSeededViolations drives the full `go vet -vettool`
// unitchecker protocol over the fixture module.
func TestVettoolFindsSeededViolations(t *testing.T) {
	bin := buildDriver(t)
	cmd := exec.Command("go", "vet", "-vettool="+bin, "./...")
	cmd.Dir = "testdata/fixture"
	out, err := cmd.CombinedOutput()
	if err == nil {
		t.Fatalf("go vet -vettool succeeded, want failure\n%s", out)
	}
	for _, analyzer := range allAnalyzerNames() {
		if !strings.Contains(string(out), "("+analyzer+")") {
			t.Errorf("vettool output lacks a %s finding:\n%s", analyzer, out)
		}
	}
}

// TestStandaloneCleanModuleExitsZero lints the lint framework's own
// module subtree — which must stay clean — through the driver.
func TestStandaloneCleanModuleExitsZero(t *testing.T) {
	bin := buildDriver(t)
	cmd := exec.Command(bin, "-dir", "../..", "./internal/lint/...")
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("driver on a clean subtree: %v\n%s", err, out)
	}
	if len(bytes.TrimSpace(out)) != 0 {
		t.Fatalf("driver printed diagnostics on a clean subtree:\n%s", out)
	}
}
