// Package locks seeds one lockcheck violation: a guarded field read
// without the mutex.
package locks

import "sync"

type Counter struct {
	mu sync.Mutex
	n  int
}

func Peek(c *Counter) int {
	return c.n // unguarded read of a mu-guarded field
}
