// Package rep seeds three repinvariant violations: a stale-term
// equality accept, a Journal* mutation that never waits for the
// quorum ack, and an unaccounted goroutine launch. Declaring
// waitReplicated opts the package into the replication checks.
package rep

import "sync"

type node struct {
	wg   sync.WaitGroup
	acks chan int
	term uint64
}

// waitReplicated blocks until the quorum acknowledged.
func (n *node) waitReplicated() {
	<-n.acks
}

// Stale accepts exactly one term instead of fencing stale ones.
func (n *node) Stale(msgTerm uint64) bool {
	return n.term == msgTerm
}

// JournalEnroll journals without waiting for follower acks.
func (n *node) JournalEnroll() {}

// JournalBurn is the compliant path.
func (n *node) JournalBurn() {
	n.waitReplicated()
}

// Sweep fires an unaccounted goroutine: Close cannot wait for it.
func (n *node) Sweep() {
	go n.step()
}

// step advances bookkeeping and terminates; the accounted launch
// below keeps the WaitGroup honest.
func (n *node) step() { n.term++ }

// Accounted is the required launch shape. No finding.
func (n *node) Accounted() {
	n.wg.Add(1)
	go func() {
		defer n.wg.Done()
		n.step()
	}()
}
