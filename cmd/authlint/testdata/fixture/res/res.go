// Package res seeds exactly one resleak violation: a dialed
// connection that is abandoned on the slow-probe branch.
package res

import (
	"net"
	"time"
)

// Probe leaks the connection when the deadline cannot be set: that
// branch returns without Close.
func Probe(addr string) bool {
	c, err := net.Dial("tcp", addr)
	if err != nil {
		return false
	}
	if c.SetDeadline(time.Now().Add(time.Second)) != nil {
		return false
	}
	c.Close()
	return true
}
