// Package store seeds one atomicwrite violation: an in-place
// os.WriteFile outside the blessed site.
package store

import "os"

func Save(path string, b []byte) error {
	return os.WriteFile(path, b, 0o644)
}
