// Package wal seeds one waldrift violation: a record-type switch that
// forgot the newest constant.
package wal

// Type discriminates fixture records.
type Type uint8

const (
	TypeCreate Type = 1
	TypeDelete Type = 2
)

func Encode(t Type) byte {
	switch t {
	case TypeCreate:
		return 1
	default:
		return 0
	}
}
