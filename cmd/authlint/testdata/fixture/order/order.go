// Package order seeds one lockorder violation: a directive-declared
// hierarchy inverted at the acquisition site.
//
//lint:lockorder Outer.mu < Inner.mu
package order

import "sync"

type Outer struct{ mu sync.Mutex }

type Inner struct{ mu sync.Mutex }

func Invert(o *Outer, i *Inner) {
	i.mu.Lock()
	defer i.mu.Unlock()
	o.mu.Lock() // inversion: Outer.mu ranks below Inner.mu
	defer o.mu.Unlock()
}
