// Package secret seeds three secretflow violations: a declared
// secret reaching the log through a helper (reported with the call
// chain), a dangling //lint:secret directive, and a //lint:sanitizes
// without a reason. The digest flow through Fingerprint stays
// silent: crypto/sha256 is a built-in sanitizer.
package secret

import (
	"crypto/sha256"
	"log"
)

// Key is raw fixture key material.
//
//lint:secret raw fixture key
type Key struct {
	bits []byte
}

// logf forwards to the logger; the violation belongs to the caller.
func logf(v any) {
	log.Println(v)
}

// Leak logs the key through the helper.
func Leak(k Key) {
	logf(k)
}

// Fingerprint logs only the digest. No finding: sha256 sanitizes.
func Fingerprint(k Key) {
	log.Printf("%x", sha256.Sum256(k.bits))
}

// Scrub zeroes the buffer but gives no reason for the claim.
//
//lint:sanitizes
func Scrub(b []byte) []byte {
	for i := range b {
		b[i] = 0
	}
	return b
}

// misuse anchors a directive to a statement: annotations on
// non-declarations protect nothing and must be reported.
func misuse() int {
	//lint:secret dangling
	return 1
}
