// Package pool seeds exactly one poolsafe violation: a directive-
// pinned pooled value that escapes the function on one branch without
// reaching the pool's put.
package pool

//lint:pool get=grab put=release

type entry struct{ b []byte }

func grab() *entry     { return &entry{} }
func release(e *entry) {}

// Use leaks the pooled entry when fast is set: the early return skips
// release.
func Use(fast bool) {
	e := grab()
	if fast {
		return
	}
	release(e)
}
