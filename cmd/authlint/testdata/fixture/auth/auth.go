// Package auth seeds one errtaxonomy violation: an API-boundary
// package returning a bare error.
package auth

import "errors"

func Verify() error {
	return errors.New("auth: bare error escaping the taxonomy")
}
