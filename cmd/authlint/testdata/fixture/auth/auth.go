// Package auth seeds two errtaxonomy violations: an API-boundary
// package returning a bare error, and a Retryable switch that fails
// to classify a declared ErrorCode.
package auth

import "errors"

func Verify() error {
	return errors.New("auth: bare error escaping the taxonomy")
}

// The taxonomy anchors below are mutually consistent, so the only
// exhaustiveness finding is Retryable's missing CodeOK case.

type ErrorCode int

const (
	CodeOK ErrorCode = iota
	CodeStale
)

var ErrStale = errors.New("auth: stale")

var codeSentinels = map[ErrorCode]error{
	CodeStale: ErrStale,
}

func CodeOf(err error) ErrorCode {
	switch {
	case errors.Is(err, ErrStale):
		return CodeStale
	}
	return CodeOK
}

func Retryable(err error) bool {
	var code ErrorCode
	switch code {
	case CodeStale:
		return true
	}
	return false
}
