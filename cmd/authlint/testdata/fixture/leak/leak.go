// Package leak seeds one goroleak violation: a goroutine receiving
// from a channel nobody closes, with no select escape.
package leak

func Wait(done chan struct{}) {
	go func() {
		<-done // parks forever if the closer never comes
	}()
}
