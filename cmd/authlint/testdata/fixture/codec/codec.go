// Package codec seeds exactly one codecsym violation: the Ping
// encoder emits a u32 body that its decoder reads back as a u64.
package codec

import "encoding/binary"

// Opcode discriminates frames.
type Opcode uint8

// OpPing is the only opcode.
const OpPing Opcode = 1

func beginFrame(dst []byte, stream uint32, op Opcode) ([]byte, int) {
	return append(dst, byte(op)), len(dst)
}

// AppendPing frames one ping probe.
func AppendPing(dst []byte, stream uint32, seq uint32) []byte {
	dst, _ = beginFrame(dst, stream, OpPing)
	dst = binary.BigEndian.AppendUint32(dst, seq)
	return dst
}

// DecodePing reads the probe back — at the wrong width.
func DecodePing(p []byte) uint64 {
	return binary.BigEndian.Uint64(p)
}
