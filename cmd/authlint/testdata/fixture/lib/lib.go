// Package lib seeds one ctxcheck violation: library code minting a
// root context.
package lib

import "context"

func Fetch() context.Context {
	return context.Background()
}
