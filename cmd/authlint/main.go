// Command authlint runs the repo's invariant analyzers over Go
// packages. The suite comes from the internal/lint/analyzers
// registry; run authlint -h for the current list.
//
// Standalone:
//
//	authlint ./...            # lint the current module
//	authlint -dir /path ./... # lint another module
//	authlint -json ./...      # one JSON object per diagnostic
//	authlint -sarif ./...     # one SARIF 2.1.0 log on stdout
//
// Diagnostics print as file:line:col: message (analyzer) — or, with
// -json, as one machine-readable object per line ({"file", "line",
// "col", "analyzer", "message"}), the format CI turns into source
// annotations; or, with -sarif, as a single SARIF 2.1.0 log that CI
// uploads to GitHub code scanning. The exit status is 1 when anything
// is reported, 2 when loading fails.
//
// As a vet tool:
//
//	go vet -vettool=$(which authlint) ./...
//
// In that mode cmd/go drives the unitchecker protocol: -V=full and
// -flags for tool identification, then one JSON .cfg file per package
// with pre-built export data for every import.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"io"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/lint"
	"repro/internal/lint/analyzers"
)

// suite is the analyzer set both driver modes run; the registry is
// the only wiring point (enforced by TestDriverUsesRegistry).
var suite = analyzers.All()

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	// cmd/go's vettool handshake comes before normal flag parsing.
	if len(args) == 1 {
		switch {
		case args[0] == "-V=full":
			// cmd/go parses this line for its build cache key: a devel
			// version must end in a buildID= field.
			fmt.Fprintln(stdout, "authlint version devel buildID=authenticache/authlint-1")
			return 0
		case args[0] == "-flags":
			fmt.Fprintln(stdout, "[]")
			return 0
		}
	}
	if len(args) > 0 && strings.HasSuffix(args[len(args)-1], ".cfg") {
		return runVet(args[len(args)-1], stdout, stderr)
	}

	fs := flag.NewFlagSet("authlint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	dir := fs.String("dir", ".", "module directory to lint")
	jsonOut := fs.Bool("json", false, "emit one JSON object per diagnostic instead of text")
	sarifOut := fs.Bool("sarif", false, "emit a SARIF 2.1.0 log (GitHub code scanning) instead of text")
	fs.Usage = func() {
		fmt.Fprintf(stderr, "usage: authlint [-dir module] [-json|-sarif] [packages]\n\nAnalyzers:\n")
		for _, a := range suite {
			fmt.Fprintf(stderr, "  %-12s %s\n", a.Name, a.Doc)
		}
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *jsonOut && *sarifOut {
		fmt.Fprintln(stderr, "authlint: -json and -sarif are mutually exclusive")
		return 2
	}

	pkgs, err := lint.Load(*dir, fs.Args()...)
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 2
	}
	loadBroken := false
	for _, pkg := range pkgs {
		for _, terr := range pkg.TypeErrors {
			fmt.Fprintf(stderr, "authlint: %v\n", terr)
			loadBroken = true
		}
	}
	diags, err := lint.Run(pkgs, suite)
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 2
	}
	switch {
	case *jsonOut:
		enc := json.NewEncoder(stdout)
		for _, d := range diags {
			if err := enc.Encode(jsonDiag{
				File:     d.Pos.Filename,
				Line:     d.Pos.Line,
				Col:      d.Pos.Column,
				Analyzer: d.Analyzer,
				Message:  d.Message,
			}); err != nil {
				fmt.Fprintln(stderr, err)
				return 2
			}
		}
	case *sarifOut:
		if err := writeSARIF(stdout, *dir, diags); err != nil {
			fmt.Fprintln(stderr, err)
			return 2
		}
	default:
		for _, d := range diags {
			fmt.Fprintln(stdout, d)
		}
	}
	switch {
	case loadBroken:
		return 2
	case len(diags) > 0:
		return 1
	}
	return 0
}

// jsonDiag is the -json wire shape: one object per line, stable field
// names (CI's annotation step depends on them).
type jsonDiag struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Analyzer string `json:"analyzer"`
	Message  string `json:"message"`
}

// SARIF 2.1.0 output, the subset GitHub code scanning ingests: one
// run, one rule per registered analyzer, one result per diagnostic
// with a physical location. CI uploads this via
// github/codeql-action/upload-sarif.
type sarifLog struct {
	Schema  string     `json:"$schema"`
	Version string     `json:"version"`
	Runs    []sarifRun `json:"runs"`
}

type sarifRun struct {
	Tool    sarifTool     `json:"tool"`
	Results []sarifResult `json:"results"`
}

type sarifTool struct {
	Driver sarifDriver `json:"driver"`
}

type sarifDriver struct {
	Name  string      `json:"name"`
	Rules []sarifRule `json:"rules"`
}

type sarifRule struct {
	ID               string    `json:"id"`
	ShortDescription sarifText `json:"shortDescription"`
}

type sarifText struct {
	Text string `json:"text"`
}

type sarifResult struct {
	RuleID    string          `json:"ruleId"`
	Level     string          `json:"level"`
	Message   sarifText       `json:"message"`
	Locations []sarifLocation `json:"locations"`
}

type sarifLocation struct {
	PhysicalLocation sarifPhysical `json:"physicalLocation"`
}

type sarifPhysical struct {
	ArtifactLocation sarifArtifact `json:"artifactLocation"`
	Region           sarifRegion   `json:"region"`
}

type sarifArtifact struct {
	URI string `json:"uri"`
}

type sarifRegion struct {
	StartLine   int `json:"startLine"`
	StartColumn int `json:"startColumn"`
}

// writeSARIF renders the diagnostics as one SARIF run. File URIs are
// made relative to the linted module root when possible, which is
// what lets GitHub anchor alerts onto checkout paths.
func writeSARIF(w io.Writer, dir string, diags []lint.Diagnostic) error {
	rules := make([]sarifRule, 0, len(suite))
	for _, a := range suite {
		rules = append(rules, sarifRule{
			ID:               a.Name,
			ShortDescription: sarifText{Text: a.Doc},
		})
	}
	results := make([]sarifResult, 0, len(diags))
	for _, d := range diags {
		results = append(results, sarifResult{
			RuleID:  d.Analyzer,
			Level:   "error",
			Message: sarifText{Text: d.Message},
			Locations: []sarifLocation{{
				PhysicalLocation: sarifPhysical{
					ArtifactLocation: sarifArtifact{URI: sarifURI(dir, d.Pos.Filename)},
					Region: sarifRegion{
						StartLine:   d.Pos.Line,
						StartColumn: d.Pos.Column,
					},
				},
			}},
		})
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(sarifLog{
		Schema:  "https://json.schemastore.org/sarif-2.1.0.json",
		Version: "2.1.0",
		Runs: []sarifRun{{
			Tool:    sarifTool{Driver: sarifDriver{Name: "authlint", Rules: rules}},
			Results: results,
		}},
	})
}

// sarifURI relativizes file against the module root; failing that, it
// falls back to the slash-separated original.
func sarifURI(dir, file string) string {
	absDir, err1 := filepath.Abs(dir)
	absFile, err2 := filepath.Abs(file)
	if err1 == nil && err2 == nil {
		if rel, err := filepath.Rel(absDir, absFile); err == nil && !strings.HasPrefix(rel, "..") {
			return filepath.ToSlash(rel)
		}
	}
	return filepath.ToSlash(file)
}

// vetConfig is the subset of cmd/go's vet configuration file the
// driver needs (the unitchecker protocol).
type vetConfig struct {
	ID                        string
	Dir                       string
	ImportPath                string
	GoFiles                   []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	Standard                  map[string]bool
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

// runVet analyzes one package as directed by a vet .cfg file, using
// the pre-built gc export data cmd/go hands us for every import.
func runVet(cfgPath string, stdout, stderr io.Writer) int {
	data, err := os.ReadFile(cfgPath)
	if err != nil {
		fmt.Fprintf(stderr, "authlint: %v\n", err)
		return 2
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		fmt.Fprintf(stderr, "authlint: parsing %s: %v\n", cfgPath, err)
		return 2
	}
	// cmd/go requires the facts output file to exist even though
	// authlint exports no facts.
	if cfg.VetxOutput != "" {
		//lint:ignore atomicwrite the vetx facts file is a build-cache artifact cmd/go regenerates at will, not durable state
		if err := os.WriteFile(cfg.VetxOutput, []byte("authlint"), 0o666); err != nil {
			fmt.Fprintf(stderr, "authlint: %v\n", err)
			return 2
		}
	}
	if cfg.VetxOnly {
		return 0
	}

	fset := token.NewFileSet()
	var files []*ast.File
	for _, name := range cfg.GoFiles {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments)
		if err != nil {
			fmt.Fprintf(stderr, "authlint: %v\n", err)
			return 2
		}
		files = append(files, f)
	}
	pkg, err := vetTypeCheck(fset, &cfg, files, stderr)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return 0
		}
		fmt.Fprintf(stderr, "authlint: typecheck %s: %v\n", cfg.ImportPath, err)
		return 2
	}
	diags, err := lint.RunPackage(pkg, suite)
	if err != nil {
		fmt.Fprintf(stderr, "authlint: %v\n", err)
		return 2
	}
	for _, d := range diags {
		fmt.Fprintf(stderr, "%s: %s (%s)\n", d.Pos, d.Message, d.Analyzer)
	}
	if len(diags) > 0 {
		// Matches x/tools' unitchecker: findings exit 2 so cmd/go
		// reports them as vet failures.
		return 2
	}
	return 0
}

// vetTypeCheck type-checks the cfg's package against the export data
// files cmd/go already compiled for its imports.
func vetTypeCheck(fset *token.FileSet, cfg *vetConfig, files []*ast.File, stderr io.Writer) (*lint.Package, error) {
	lookup := func(path string) (io.ReadCloser, error) {
		if canon, ok := cfg.ImportMap[path]; ok {
			path = canon
		}
		file, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	}
	imp := importer.ForCompiler(fset, "gc", lookup)
	pkg, err := lint.TypeCheckFiles(fset, imp, cfg.ImportPath, cfg.Dir, files)
	if err != nil {
		return nil, err
	}
	for _, terr := range pkg.TypeErrors {
		fmt.Fprintf(stderr, "authlint: %v\n", terr)
	}
	return pkg, nil
}
