package main

import (
	"flag"
	"time"

	authenticache "repro"
)

// resilienceFlags groups the control-plane tuning knobs the router
// and cluster roles share. The zero value of each flag defers to the
// library default; negative values disable the mechanism where the
// library defines that (hedging, breaking, the staleness guard).
type resilienceFlags struct {
	hedgeDelay       time.Duration
	breakerThreshold int
	maxStaleness     int64
}

// registerResilience declares the resilience flags on fs and returns
// the struct Parse fills. Split from main so tests can parse against
// a private FlagSet.
func registerResilience(fs *flag.FlagSet) *resilienceFlags {
	rf := &resilienceFlags{}
	fs.DurationVar(&rf.hedgeDelay, "hedge-delay", 0,
		"how long a forwarded read may go unanswered before hedging to the ring successor (0 = library default, negative disables hedging)")
	fs.IntVar(&rf.breakerThreshold, "breaker-threshold", 0,
		"consecutive forward failures that open a peer's circuit breaker (0 = library default, negative disables breaking)")
	fs.Int64Var(&rf.maxStaleness, "max-staleness", 0,
		"how many records a follower may trail the commit frontier and still serve reads (0 = library default, negative disables the guard)")
	return rf
}

// router applies the knobs to a forwarding tier's config.
func (rf *resilienceFlags) router(cfg authenticache.RouterConfig) authenticache.RouterConfig {
	cfg.HedgeDelay = rf.hedgeDelay
	cfg.BreakerThreshold = rf.breakerThreshold
	cfg.MaxStaleness = rf.maxStaleness
	return cfg
}

// cluster applies the knobs a replicated node consumes; hedging and
// breaking live in the router tier, so only the staleness bound (the
// follower's own read guard) crosses over.
func (rf *resilienceFlags) cluster(cfg authenticache.ClusterConfig) authenticache.ClusterConfig {
	cfg.MaxStaleness = rf.maxStaleness
	return cfg
}
