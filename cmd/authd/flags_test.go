package main

import (
	"flag"
	"testing"
	"time"

	authenticache "repro"
)

func TestResilienceFlagParsing(t *testing.T) {
	fs := flag.NewFlagSet("authd", flag.ContinueOnError)
	rf := registerResilience(fs)
	err := fs.Parse([]string{
		"-hedge-delay", "35ms",
		"-breaker-threshold", "7",
		"-max-staleness", "128",
	})
	if err != nil {
		t.Fatal(err)
	}
	rcfg := rf.router(authenticache.RouterConfig{ClientPeers: []string{"a", "b"}, Self: -1})
	if rcfg.HedgeDelay != 35*time.Millisecond {
		t.Fatalf("HedgeDelay = %v, want 35ms", rcfg.HedgeDelay)
	}
	if rcfg.BreakerThreshold != 7 {
		t.Fatalf("BreakerThreshold = %d, want 7", rcfg.BreakerThreshold)
	}
	if rcfg.MaxStaleness != 128 {
		t.Fatalf("router MaxStaleness = %d, want 128", rcfg.MaxStaleness)
	}
	// The knobs must not clobber what the caller already set.
	if len(rcfg.ClientPeers) != 2 || rcfg.Self != -1 {
		t.Fatalf("router() touched unrelated fields: %+v", rcfg)
	}
	ccfg := rf.cluster(authenticache.ClusterConfig{NodeIndex: 2})
	if ccfg.MaxStaleness != 128 || ccfg.NodeIndex != 2 {
		t.Fatalf("cluster() wrong: staleness %d node %d", ccfg.MaxStaleness, ccfg.NodeIndex)
	}
}

// Unset flags stay zero, which every consumer treats as "library
// default" — so a bare `authd -role router` keeps today's behaviour.
func TestResilienceFlagDefaults(t *testing.T) {
	fs := flag.NewFlagSet("authd", flag.ContinueOnError)
	rf := registerResilience(fs)
	if err := fs.Parse(nil); err != nil {
		t.Fatal(err)
	}
	rcfg := rf.router(authenticache.RouterConfig{})
	if rcfg.HedgeDelay != 0 || rcfg.BreakerThreshold != 0 || rcfg.MaxStaleness != 0 {
		t.Fatalf("defaults must defer to the library: %+v", rcfg)
	}
}

// Negative values are the documented disable switches and must survive
// parsing (flag treats "-max-staleness -1" as a value, not a flag).
func TestResilienceFlagDisables(t *testing.T) {
	fs := flag.NewFlagSet("authd", flag.ContinueOnError)
	rf := registerResilience(fs)
	err := fs.Parse([]string{"-hedge-delay=-1ns", "-breaker-threshold=-1", "-max-staleness=-1"})
	if err != nil {
		t.Fatal(err)
	}
	rcfg := rf.router(authenticache.RouterConfig{})
	if rcfg.HedgeDelay >= 0 || rcfg.BreakerThreshold >= 0 || rcfg.MaxStaleness >= 0 {
		t.Fatalf("disable values lost in parsing: %+v", rcfg)
	}
}
