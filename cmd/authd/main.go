// Command authd runs an Authenticache authentication server over TCP.
//
// The daemon simulates the factory enrollment pipeline: it
// manufactures -devices simulated chips (deterministically from
// -seed), characterises each one's low-voltage error map, enrolls them
// all, and then serves authentication and key-update transactions on
// -addr. For every device it prints a provisioning line
//
//	PROVISION id=<id> chipseed=<n> key=<hex>
//
// which is exactly what a client (cmd/authcli) needs to authenticate.
//
// # Durability
//
// Two flags control persistence, and they compose:
//
//   - -state <file> is the snapshot-only mode: the enrollment database
//     is loaded from the file if it exists and written (atomically:
//     temp file + fsync + rename) right after enrollment. Pairs burned
//     while serving traffic are NOT persisted — a crash forgets them.
//   - -wal <dir> is the durable mode: every mutation (enrollment, pair
//     burn, key rotation, challenge-counter advance, delete) is
//     journaled to a write-ahead log before the operation returns, the
//     log is compacted into a snapshot every -compact interval and on
//     SIGINT drain, and boot recovers snapshot + journal tail —
//     including after a crash that tore the final record.
//
// When both are given, -wal wins for serving-time durability and
// -state acts only as a seed: if the WAL directory is empty and the
// state file exists, the database is imported from it (then
// immediately snapshotted into the WAL directory). A populated WAL
// directory ignores -state entirely.
//
// Usage:
//
//	authd [-addr :7430] [-devices 4] [-seed 1] [-bits 256] [-cache 1048576]
//	      [-state db.json] [-wal waldir] [-compact 1m] [-max-inflight 0]
//	      [-wire-proto auto]
//
// -max-inflight caps concurrent transactions: beyond it the server
// sheds with a retryable "unavailable" verdict instead of queueing
// unboundedly (resilient clients back off and retry).
//
// -wire-proto selects the wire framing: "auto" (default) negotiates
// per connection — a v2 preamble selects the multiplexed binary
// framing, anything else the v1 newline-JSON loop; "v1" and "v2"
// force one framing and reject the other. See docs/PROTOCOL.md.
//
// # Cluster modes
//
// -role selects how the daemon participates in a replicated fleet
// (see DESIGN.md §10):
//
//   - standalone (default): the single-node behaviour above.
//   - primary: node 0 of a replicated cluster. Requires -wal and
//     -peers; streams every WAL record to connected followers and
//     acknowledges mutations only after -replicate followers have
//     them. Enrollment waits until that many followers are connected.
//   - follower: any other -node index. Requires -wal and -peers;
//     syncs a snapshot from the primary, applies the record stream,
//     serves verification locally and challenge issuance by
//     delegation, and promotes itself on primary loss.
//   - router: a stateless ingress tier. Requires -client-peers; each
//     transaction is forwarded to its client's consistent-hash owner
//     through the resilience control plane — background probes feed
//     per-peer circuit breakers, reads hedge to the ring successor
//     when the owner is open or slow, and key updates fail fast on an
//     open owner circuit (DESIGN.md §11).
//
// Three knobs tune the control plane (0 always means the library
// default, a negative value disables the mechanism):
//
//   - -hedge-delay: how long a forwarded read may go unanswered
//     before a hedge launches at the ring successor (router).
//   - -breaker-threshold: consecutive forward failures that open a
//     peer's circuit breaker (router).
//   - -max-staleness: how many records a follower may trail the
//     commit frontier and still serve reads — sets both the router's
//     hedge-target skip and the follower's own read guard, so give
//     every role the same value.
//
// A local 3-node cluster with a router in front:
//
//	authd -role primary  -node 0 -peers :7500,:7501,:7502 \
//	      -client-peers :7430,:7431,:7432 -addr :7430 -wal wal0
//	authd -role follower -node 1 -peers :7500,:7501,:7502 \
//	      -client-peers :7430,:7431,:7432 -addr :7431 -wal wal1
//	authd -role follower -node 2 -peers :7500,:7501,:7502 \
//	      -client-peers :7430,:7431,:7432 -addr :7432 -wal wal2
//	authd -role router -client-peers :7430,:7431,:7432 -addr :7440 \
//	      -hedge-delay 20ms -breaker-threshold 5 -max-staleness 512
package main

import (
	"context"
	"encoding/hex"
	"errors"
	"flag"
	"fmt"
	"io/fs"
	"log"
	"net"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	authenticache "repro"
	"repro/internal/enroll"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:7430", "listen address")
	devices := flag.Int("devices", 4, "number of simulated devices to enroll")
	seed := flag.Uint64("seed", 1, "fleet seed (device i uses seed+i)")
	bits := flag.Int("bits", 256, "challenge length in bits")
	cacheBytes := flag.Int("cache", 1<<20, "simulated cache size in bytes")
	statePath := flag.String("state", "", "enrollment database snapshot file (loaded if present, written after enrollment)")
	walDir := flag.String("wal", "", "write-ahead log directory: journal every mutation, recover on boot (durable mode)")
	compactEvery := flag.Duration("compact", time.Minute, "WAL compaction interval (with -wal)")
	maxInflight := flag.Int("max-inflight", 0, "max concurrent transactions before shedding with 'unavailable' (0 = unlimited)")
	wireProto := flag.String("wire-proto", "auto", "wire framing: auto (negotiate per connection), v1 (newline JSON only), v2 (multiplexed binary only)")
	role := flag.String("role", "standalone", "cluster role: standalone, primary, follower, or router")
	nodeIdx := flag.Int("node", 0, "this node's index into -peers (primary/follower)")
	peers := flag.String("peers", "", "comma-separated replication addresses, one per node (primary/follower)")
	clientPeers := flag.String("client-peers", "", "comma-separated client-facing addresses, one per node (router, and follower key-update forwarding)")
	replicate := flag.Int("replicate", 1, "follower acknowledgements required before a mutation is durable (primary)")
	resil := registerResilience(flag.CommandLine)
	flag.Parse()

	proto, err := authenticache.ParseProto(*wireProto)
	if err != nil {
		log.Fatalf("authd: %v", err)
	}

	// SIGINT or SIGTERM (what init systems and container runtimes send)
	// drains the daemon: the serve loop and every in-flight transaction
	// observe the cancellation.
	ctx, cancel := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer cancel()

	cfg := authenticache.DefaultServerConfig()
	cfg.ChallengeBits = *bits

	switch *role {
	case "standalone":
		// Fall through to the single-node paths below.
	case "router":
		runRouter(ctx, splitAddrs(*clientPeers), *addr, *maxInflight, proto, resil)
		return
	case "primary", "follower":
		runClusterNode(ctx, cfg, *role, *nodeIdx, splitAddrs(*peers), splitAddrs(*clientPeers),
			*walDir, *addr, *devices, *seed, *cacheBytes, *replicate, *maxInflight, proto, resil)
		return
	default:
		log.Fatalf("authd: unknown -role %q (standalone, primary, follower, router)", *role)
	}

	if *walDir != "" {
		runDurable(ctx, cfg, *walDir, *statePath, *addr, *devices, *seed, *cacheBytes, *compactEvery, *maxInflight, proto)
		return
	}

	srv := authenticache.NewServer(cfg, *seed^0xd5e7)
	if *statePath != "" {
		f, err := os.Open(*statePath)
		switch {
		case err == nil:
			if err := srv.LoadState(f); err != nil {
				log.Fatalf("authd: load state: %v", err)
			}
			f.Close()
			printProvisioned(srv, " (restored)")
			if err := serve(ctx, srv, *addr, *maxInflight, proto); err != nil {
				log.Fatalf("authd: serve: %v", err)
			}
			return
		case errors.Is(err, fs.ErrNotExist):
			// Fresh start: fall through to enrollment.
		default:
			// Anything else (permissions, I/O) must NOT fall through:
			// re-enrolling would overwrite the only copy of an
			// existing enrollment database with a brand-new fleet.
			log.Fatalf("authd: open state file: %v", err)
		}
	}

	enrollFleet(ctx, srv, *devices, *seed, *cacheBytes)
	if *statePath != "" {
		if err := authenticache.AtomicWriteFile(*statePath, srv.SaveState); err != nil {
			log.Fatalf("authd: save state: %v", err)
		}
		log.Printf("authd: enrollment database written to %s", *statePath)
	}
	if err := serve(ctx, srv, *addr, *maxInflight, proto); err != nil {
		log.Fatalf("authd: serve: %v", err)
	}
}

// runDurable serves with the write-ahead log: recover on boot,
// journal while serving, compact periodically, snapshot on drain.
func runDurable(ctx context.Context, cfg authenticache.ServerConfig, walDir, statePath, addr string, devices int, seed uint64, cacheBytes int, compactEvery time.Duration, maxInflight int, proto authenticache.Proto) {
	ds, err := authenticache.OpenDurableServer(walDir, cfg, seed^0xd5e7, authenticache.WALOptions{})
	if err != nil {
		log.Fatalf("authd: open WAL: %v", err)
	}
	switch {
	case len(ds.ClientIDs()) > 0:
		log.Printf("authd: recovered %d clients from %s", len(ds.ClientIDs()), walDir)
		printProvisioned(ds.Server, " (restored)")
	case statePath != "":
		// Empty WAL: seed it from the snapshot file if one exists.
		f, err := os.Open(statePath)
		switch {
		case err == nil:
			if err := ds.LoadState(f); err != nil {
				log.Fatalf("authd: load state: %v", err)
			}
			f.Close()
			// LoadState bypasses the journal; snapshot immediately so
			// the imported database is durable in the WAL directory.
			if err := ds.Compact(); err != nil {
				log.Fatalf("authd: snapshot imported state: %v", err)
			}
			log.Printf("authd: imported enrollment database from %s", statePath)
			printProvisioned(ds.Server, " (restored)")
		case errors.Is(err, fs.ErrNotExist):
			enrollFleet(ctx, ds.Server, devices, seed, cacheBytes)
		default:
			log.Fatalf("authd: open state file: %v", err)
		}
	default:
		enrollFleet(ctx, ds.Server, devices, seed, cacheBytes)
	}
	// The enrollments above are journaled; fold them into a snapshot
	// so recovery starts from a compact base.
	if err := ds.Compact(); err != nil {
		log.Fatalf("authd: initial compaction: %v", err)
	}

	go func() {
		t := time.NewTicker(compactEvery)
		defer t.Stop()
		for {
			select {
			case <-ctx.Done():
				return
			case <-t.C:
				if err := ds.Compact(); err != nil {
					log.Printf("authd: compaction: %v", err)
				}
			}
		}
	}()

	if err := serve(ctx, ds.Server, addr, maxInflight, proto); err != nil {
		log.Printf("authd: serve: %v", err)
	}
	// Drained: take the final snapshot so the next boot replays an
	// empty journal tail.
	if err := ds.Close(); err != nil {
		log.Fatalf("authd: final snapshot: %v", err)
	}
	log.Printf("authd: final snapshot written to %s", walDir)
}

// enrollFleet manufactures and enrolls the simulated device fleet,
// printing a PROVISION line per accepted chip.
func enrollFleet(ctx context.Context, srv *authenticache.Server, devices int, seed uint64, cacheBytes int) {
	log.Printf("authd: manufacturing and enrolling %d devices (%d B caches)...", devices, cacheBytes)
	for i := 0; i < devices; i++ {
		chipSeed := seed + uint64(i)
		id := authenticache.ClientID(fmt.Sprintf("dev-%d", i))
		chip, err := authenticache.NewChip(authenticache.ChipConfig{
			Seed:       chipSeed,
			CacheBytes: cacheBytes,
		})
		if err != nil {
			log.Fatalf("authd: chip %d: %v", i, err)
		}
		// Run the chip through the enrollment station: characterise,
		// screen, and provision only units that pass.
		crit := enroll.DefaultCriteria(chip.Geometry().Lines())
		crit.AuthPlanes = 2
		crit.ReservedPlanes = 1
		res, err := enroll.Characterize(chip, id, crit)
		if err != nil {
			log.Fatalf("authd: characterise chip %d: %v", i, err)
		}
		if !res.Accepted() {
			log.Printf("authd: chip %d rejected by the station: %v", i, res.Rejections)
			continue
		}
		key, err := enroll.Provision(ctx, srv, res)
		if err != nil {
			log.Fatalf("authd: provision %q: %v", id, err)
		}
		fmt.Printf("PROVISION id=%s chipseed=%d key=%s\n", id, chipSeed, hex.EncodeToString(key[:]))
	}
}

// printProvisioned prints a PROVISION line per already-enrolled client.
func printProvisioned(srv *authenticache.Server, suffix string) {
	for _, id := range srv.ClientIDs() {
		key, err := srv.CurrentKey(id)
		if err != nil {
			log.Fatalf("authd: %v", err)
		}
		fmt.Printf("PROVISION id=%s key=%s%s\n", id, hex.EncodeToString(key[:]), suffix)
	}
}

// splitAddrs parses a comma-separated address list, rejecting blanks.
func splitAddrs(s string) []string {
	if s == "" {
		return nil
	}
	parts := strings.Split(s, ",")
	for i, p := range parts {
		parts[i] = strings.TrimSpace(p)
		if parts[i] == "" {
			log.Fatalf("authd: empty address in list %q", s)
		}
	}
	return parts
}

// runRouter serves a stateless forwarding tier: every transaction is
// relayed to its client's consistent-hash owner node, with the
// resilience knobs (hedging, breakers, staleness skip) from the
// command line and the background prober feeding the detector.
func runRouter(ctx context.Context, clientPeers []string, addr string, maxInflight int, proto authenticache.Proto, resil *resilienceFlags) {
	if len(clientPeers) == 0 {
		log.Fatal("authd: -role router requires -client-peers")
	}
	router := authenticache.NewRouter(resil.router(authenticache.RouterConfig{
		ClientPeers: clientPeers,
		Self:        -1,
	}))
	defer router.Close()
	router.Start(ctx)
	ws, err := authenticache.NewWireServerBackend(router, authenticache.WireConfig{MaxInFlight: maxInflight, Proto: proto})
	if err != nil {
		log.Fatalf("authd: %v", err)
	}
	l, err := net.Listen("tcp", addr)
	if err != nil {
		log.Fatalf("authd: %v", err)
	}
	log.Printf("authd: routing for %d nodes on %s", len(clientPeers), l.Addr())
	if err := ws.Serve(ctx, l); err != nil {
		log.Printf("authd: serve: %v", err)
	}
}

// runClusterNode serves one member of a replicated cluster: node 0 is
// the initial primary (it enrolls the fleet once enough followers are
// connected to acknowledge durably), every other index starts as a
// follower syncing from it.
func runClusterNode(ctx context.Context, cfg authenticache.ServerConfig, role string, nodeIdx int, peers, clientPeers []string, walDir, addr string, devices int, seed uint64, cacheBytes, replicate, maxInflight int, proto authenticache.Proto, resil *resilienceFlags) {
	if walDir == "" {
		log.Fatalf("authd: -role %s requires -wal", role)
	}
	if len(peers) < 2 {
		log.Fatalf("authd: -role %s requires -peers with at least two addresses", role)
	}
	if nodeIdx < 0 || nodeIdx >= len(peers) {
		log.Fatalf("authd: -node %d out of range for %d peers", nodeIdx, len(peers))
	}
	// The initial primary is index 0 by convention; -role documents
	// intent and is checked against it.
	if role == "primary" && nodeIdx != 0 {
		log.Fatalf("authd: -role primary requires -node 0 (node %d starts as a follower)", nodeIdx)
	}
	if role == "follower" && nodeIdx == 0 {
		log.Fatal("authd: -role follower requires -node >= 1 (node 0 starts as the primary)")
	}
	node, err := authenticache.OpenClusterNode(resil.cluster(authenticache.ClusterConfig{
		NodeIndex:   nodeIdx,
		Peers:       peers,
		ClientPeers: clientPeers,
		Dir:         walDir,
		Auth:        cfg,
		Seed:        seed ^ 0xd5e7,
		ReplicaAcks: replicate,
		Logf:        log.Printf,
	}))
	if err != nil {
		log.Fatalf("authd: open cluster node: %v", err)
	}
	if err := node.Start(ctx); err != nil {
		log.Fatalf("authd: start cluster node: %v", err)
	}

	if role == "primary" {
		if n := len(node.Server().ClientIDs()); n > 0 {
			log.Printf("authd: recovered %d clients from %s", n, walDir)
			printProvisioned(node.Server(), " (restored)")
		} else {
			// Mutations need -replicate follower acks to be durable;
			// enrolling before that many are connected would only time
			// out record by record.
			log.Printf("authd: waiting for %d follower(s) before enrolling...", replicate)
			for node.Status().Followers < replicate {
				select {
				case <-ctx.Done():
					log.Fatal("authd: interrupted while waiting for followers")
				case <-time.After(100 * time.Millisecond):
				}
			}
			enrollFleet(ctx, node.Server(), devices, seed, cacheBytes)
		}
	} else {
		log.Printf("authd: following the primary at %s", peers[node.Status().PrimaryIndex])
	}

	ws, err := node.NewWireServer(authenticache.WireConfig{MaxInFlight: maxInflight, Proto: proto})
	if err != nil {
		log.Fatalf("authd: %v", err)
	}
	l, err := net.Listen("tcp", addr)
	if err != nil {
		log.Fatalf("authd: %v", err)
	}
	st := node.Status()
	log.Printf("authd: cluster node %d (%s, term %d) serving on %s", nodeIdx, node.Role(), st.Term, l.Addr())
	if err := ws.Serve(ctx, l); err != nil {
		log.Printf("authd: serve: %v", err)
	}
	// Drained: fold the WAL into a final snapshot.
	if err := node.Close(); err != nil {
		log.Fatalf("authd: close cluster node: %v", err)
	}
	log.Printf("authd: final snapshot written to %s", walDir)
}

func serve(ctx context.Context, srv *authenticache.Server, addr string, maxInflight int, proto authenticache.Proto) error {
	ws, err := authenticache.NewWireServerConfig(srv, authenticache.WireConfig{MaxInFlight: maxInflight, Proto: proto})
	if err != nil {
		return err
	}
	l, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	log.Printf("authd: serving on %s", l.Addr())
	return ws.Serve(ctx, l)
}
