// Command authd runs an Authenticache authentication server over TCP.
//
// The daemon simulates the factory enrollment pipeline: it
// manufactures -devices simulated chips (deterministically from
// -seed), characterises each one's low-voltage error map, enrolls them
// all, and then serves authentication and key-update transactions on
// -addr. For every device it prints a provisioning line
//
//	PROVISION id=<id> chipseed=<n> key=<hex>
//
// which is exactly what a client (cmd/authcli) needs to authenticate.
//
// Usage:
//
//	authd [-addr :7430] [-devices 4] [-seed 1] [-bits 256] [-cache 1048576]
package main

import (
	"context"
	"encoding/hex"
	"flag"
	"fmt"
	"log"
	"net"
	"os"
	"os/signal"

	authenticache "repro"
	"repro/internal/enroll"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:7430", "listen address")
	devices := flag.Int("devices", 4, "number of simulated devices to enroll")
	seed := flag.Uint64("seed", 1, "fleet seed (device i uses seed+i)")
	bits := flag.Int("bits", 256, "challenge length in bits")
	cacheBytes := flag.Int("cache", 1<<20, "simulated cache size in bytes")
	statePath := flag.String("state", "", "enrollment database file (loaded if present, written after enrollment)")
	flag.Parse()

	// SIGINT drains the daemon: the serve loop and every in-flight
	// transaction observe the cancellation.
	ctx, cancel := signal.NotifyContext(context.Background(), os.Interrupt)
	defer cancel()

	cfg := authenticache.DefaultServerConfig()
	cfg.ChallengeBits = *bits
	srv := authenticache.NewServer(cfg, *seed^0xd5e7)

	if *statePath != "" {
		if f, err := os.Open(*statePath); err == nil {
			if err := srv.LoadState(f); err != nil {
				log.Fatalf("authd: load state: %v", err)
			}
			f.Close()
			for _, id := range srv.ClientIDs() {
				key, err := srv.CurrentKey(id)
				if err != nil {
					log.Fatalf("authd: %v", err)
				}
				fmt.Printf("PROVISION id=%s key=%s (restored)\n", id, hex.EncodeToString(key[:]))
			}
			serve(ctx, srv, *addr)
			return
		}
	}

	log.Printf("authd: manufacturing and enrolling %d devices (%d B caches)...", *devices, *cacheBytes)
	for i := 0; i < *devices; i++ {
		chipSeed := *seed + uint64(i)
		id := authenticache.ClientID(fmt.Sprintf("dev-%d", i))
		chip, err := authenticache.NewChip(authenticache.ChipConfig{
			Seed:       chipSeed,
			CacheBytes: *cacheBytes,
		})
		if err != nil {
			log.Fatalf("authd: chip %d: %v", i, err)
		}
		// Run the chip through the enrollment station: characterise,
		// screen, and provision only units that pass.
		crit := enroll.DefaultCriteria(chip.Geometry().Lines())
		crit.AuthPlanes = 2
		crit.ReservedPlanes = 1
		res, err := enroll.Characterize(chip, id, crit)
		if err != nil {
			log.Fatalf("authd: characterise chip %d: %v", i, err)
		}
		if !res.Accepted() {
			log.Printf("authd: chip %d rejected by the station: %v", i, res.Rejections)
			continue
		}
		key, err := enroll.Provision(ctx, srv, res)
		if err != nil {
			log.Fatalf("authd: provision %q: %v", id, err)
		}
		fmt.Printf("PROVISION id=%s chipseed=%d key=%s\n", id, chipSeed, hex.EncodeToString(key[:]))
	}
	if *statePath != "" {
		f, err := os.Create(*statePath)
		if err != nil {
			log.Fatalf("authd: create state file: %v", err)
		}
		if err := srv.SaveState(f); err != nil {
			log.Fatalf("authd: save state: %v", err)
		}
		f.Close()
		log.Printf("authd: enrollment database written to %s", *statePath)
	}
	serve(ctx, srv, *addr)
}

func serve(ctx context.Context, srv *authenticache.Server, addr string) {
	l, err := net.Listen("tcp", addr)
	if err != nil {
		log.Fatalf("authd: listen: %v", err)
	}
	log.Printf("authd: serving on %s", l.Addr())
	ws := authenticache.NewWireServer(srv)
	if err := ws.Serve(ctx, l); err != nil {
		log.Fatalf("authd: serve: %v", err)
	}
}
