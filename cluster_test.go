package authenticache_test

import (
	"context"
	"errors"
	"fmt"
	"net"
	"path/filepath"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	authenticache "repro"
	"repro/internal/fault"
)

// Cluster chaos: a 3-node replicated deployment driven through the
// public API while the fault package cuts replication links and the
// client wire drops connections. The invariants extend the
// single-node chaos suite across the fleet:
//
//   - the chaos traffic mix pushes ≥99% of transactions through a
//     lossy wire while one follower's replication link is partitioned
//     and healed mid-run;
//   - an impostor is never accepted, on any node, before or after
//     failover;
//   - killing the primary promotes the successor, and every
//     durably-acked enrollment is on it with the exact key;
//   - the deposed primary is fenced: with no followers to acknowledge
//     its records it cannot durably accept mutations.

// clusterNodes is a 3-node in-process cluster plus the per-link
// partition gates the chaos schedule drives.
type clusterNodes struct {
	nodes      []*authenticache.ClusterNode
	replAddrs  []string
	clientAddr []string
	wss        []*authenticache.WireServer
	// gateTo0[i] cuts node i's replication dials toward node 0.
	gateTo0 map[int]*fault.Partition
}

// gatedDial routes dials to gated addresses through their partition;
// everything else dials straight.
func gatedDial(gates map[string]*fault.Partition) authenticache.ClusterDialFunc {
	return func(ctx context.Context, network, addr string) (net.Conn, error) {
		if p, ok := gates[addr]; ok {
			return p.Dial(ctx, network, addr)
		}
		var d net.Dialer
		return d.DialContext(ctx, network, addr)
	}
}

// startChaosCluster brings up three nodes (node 0 primary) with
// client-facing wire servers; node 0's sits behind a lossy listener.
func startChaosCluster(t *testing.T) *clusterNodes {
	t.Helper()
	cn := &clusterNodes{gateTo0: make(map[int]*fault.Partition)}
	repl := make([]net.Listener, 3)
	client := make([]net.Listener, 3)
	for i := 0; i < 3; i++ {
		for _, slot := range []*net.Listener{&repl[i], &client[i]} {
			l, err := net.Listen("tcp", "127.0.0.1:0")
			if err != nil {
				t.Fatal(err)
			}
			*slot = l
		}
		cn.replAddrs = append(cn.replAddrs, repl[i].Addr().String())
		cn.clientAddr = append(cn.clientAddr, client[i].Addr().String())
	}
	acfg := authenticache.DefaultServerConfig()
	acfg.ChallengeBits = 64
	dir := t.TempDir()
	for i := 0; i < 3; i++ {
		cfg := authenticache.ClusterConfig{
			NodeIndex:         i,
			Peers:             cn.replAddrs,
			ClientPeers:       cn.clientAddr,
			Dir:               filepath.Join(dir, fmt.Sprintf("node-%d", i)),
			Auth:              acfg,
			Seed:              chaosSeed + uint64(i),
			ReplicaAcks:       1,
			AckTimeout:        time.Second,
			HeartbeatInterval: 25 * time.Millisecond,
			LeaseTimeout:      500 * time.Millisecond,
			RedialInterval:    25 * time.Millisecond,
			ReplListener:      repl[i],
		}
		if i != 0 {
			gate := fault.NewPartition()
			cn.gateTo0[i] = gate
			cfg.Dial = gatedDial(map[string]*fault.Partition{cn.replAddrs[0]: gate})
		}
		n, err := authenticache.OpenClusterNode(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if err := n.Start(ctx); err != nil {
			t.Fatal(err)
		}
		cn.nodes = append(cn.nodes, n)

		ws, err := n.NewWireServer(authenticache.WireConfig{})
		if err != nil {
			t.Fatal(err)
		}
		ln := client[i]
		if i == 0 {
			ln = fault.NewListener(ln, fault.ConnPlan{DropProb: 0.1, Seed: chaosSeed})
		}
		go ws.Serve(ctx, ln)
		cn.wss = append(cn.wss, ws)
	}
	t.Cleanup(func() {
		for i := range cn.nodes {
			cn.wss[i].Close()
			cn.nodes[i].Close()
		}
	})
	return cn
}

// clusterWait polls cond for up to d.
func clusterWait(t *testing.T, d time.Duration, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(d)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

func TestClusterChaosFailover(t *testing.T) {
	const (
		clients   = 4
		opsPerCli = 25
	)
	cn := startChaosCluster(t)
	primary := cn.nodes[0]

	// Enroll the chaos fleet on the primary.
	keys := make(map[authenticache.ClientID]authenticache.Key, clients)
	responders := make([]*authenticache.Responder, clients)
	for i := 0; i < clients; i++ {
		id := authenticache.ClientID(fmt.Sprintf("cl-%d", i))
		m := chaosMap(4096, 80, chaosSeed+uint64(i), 680, 700)
		key, err := primary.Server().Enroll(ctx, id, m, 700)
		if err != nil {
			t.Fatal(err)
		}
		keys[id] = key
		responders[i] = authenticache.NewResponder(id, authenticache.NewSimDevice(m), key)
	}

	// Storm: the mixed traffic runs against the primary's lossy wire
	// while, mid-run, node 2's replication link is cut, two clients are
	// enrolled through the remaining quorum, and the link heals.
	var (
		okOps, failedOps atomic.Uint64
		untypedErr       atomic.Uint64
		forged           atomic.Uint64
	)
	var wg sync.WaitGroup
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			r := responders[i]
			rc, err := authenticache.DialResilient(ctx, cn.clientAddr[0], chaosPolicy(chaosSeed+uint64(i)))
			if err != nil {
				t.Errorf("client %d: dial: %v", i, err)
				return
			}
			defer rc.Close()
			for op := 0; op < opsPerCli; op++ {
				var err error
				var accepted bool
				if op%7 == 6 {
					err = rc.Remap(ctx, r)
					accepted = err == nil
				} else {
					accepted, err = rc.Authenticate(ctx, r)
				}
				switch {
				case err != nil:
					failedOps.Add(1)
					var ae *authenticache.AuthError
					if !errors.As(err, &ae) {
						untypedErr.Add(1)
						t.Errorf("client %d op %d: untyped error %T: %v", i, op, err, err)
					}
				case !accepted:
					failedOps.Add(1)
					t.Errorf("client %d op %d: genuine device rejected", i, op)
				default:
					okOps.Add(1)
				}
			}
		}(i)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		wrong := chaosMap(4096, 80, chaosSeed+999, 680, 700)
		imp := authenticache.NewResponder("cl-0", authenticache.NewSimDevice(wrong), keys["cl-0"])
		rc, err := authenticache.DialResilient(ctx, cn.clientAddr[0], chaosPolicy(chaosSeed+99))
		if err != nil {
			t.Errorf("impostor dial: %v", err)
			return
		}
		defer rc.Close()
		for op := 0; op < opsPerCli; op++ {
			accepted, err := rc.Authenticate(ctx, imp)
			if accepted {
				forged.Add(1)
				t.Errorf("impostor accepted on op %d", op)
			}
			if err != nil {
				var ae *authenticache.AuthError
				if !errors.As(err, &ae) {
					untypedErr.Add(1)
					t.Errorf("impostor op %d: untyped error %T: %v", op, err, err)
				}
			}
		}
	}()

	// Mid-storm partition: cut node 2's replication link, enroll two
	// clients through node 1's acknowledgements, heal. The window stays
	// well under the lease horizon so only real primary loss promotes.
	partKeys := make(map[authenticache.ClientID]authenticache.Key, 2)
	cn.gateTo0[2].Block()
	for i := 0; i < 2; i++ {
		id := authenticache.ClientID(fmt.Sprintf("part-%d", i))
		m := chaosMap(4096, 80, chaosSeed+100+uint64(i), 700)
		key, err := primary.Server().Enroll(ctx, id, m)
		if err != nil {
			t.Fatalf("enroll during partition: %v", err)
		}
		partKeys[id] = key
	}
	cn.gateTo0[2].Heal()
	wg.Wait()

	total := okOps.Load() + failedOps.Load()
	if total != clients*opsPerCli {
		t.Fatalf("accounted %d ops, want %d", total, clients*opsPerCli)
	}
	if ratio := float64(okOps.Load()) / float64(total); ratio < 0.99 {
		t.Errorf("eventual success ratio %.4f < 0.99 (ok=%d failed=%d)",
			ratio, okOps.Load(), failedOps.Load())
	}
	if forged.Load() != 0 {
		t.Errorf("%d forged accepts", forged.Load())
	}
	if untypedErr.Load() != 0 {
		t.Errorf("%d untyped errors surfaced", untypedErr.Load())
	}

	// The cut follower re-syncs: both partition-window enrollments land
	// on node 2 with exact keys.
	clusterWait(t, 10*time.Second, "node 2 re-sync", func() bool {
		return cn.nodes[2].AppliedSeq() >= primary.Status().CommitSeq
	})
	for id, key := range partKeys {
		got, err := cn.nodes[2].Server().CurrentKey(id)
		if err != nil || got != key {
			t.Fatalf("%q on re-synced follower: key mismatch (%v)", id, err)
		}
	}

	// Read-scaled issuance: a client authenticates through follower
	// node 2's public wire (challenge sampled on the follower, burned on
	// the primary, verified on the follower).
	func() {
		rc, err := authenticache.DialResilient(ctx, cn.clientAddr[2], chaosPolicy(chaosSeed+7))
		if err != nil {
			t.Fatalf("follower dial: %v", err)
		}
		defer rc.Close()
		okAuth, err := rc.Authenticate(ctx, responders[1])
		if err != nil || !okAuth {
			t.Fatalf("delegated auth via follower wire: ok=%v err=%v", okAuth, err)
		}
	}()

	// Kill the primary: cut both followers' replication links. Node 1's
	// lease expires and it promotes; node 2 re-homes to it.
	cn.gateTo0[1].Block()
	cn.gateTo0[2].Block()
	clusterWait(t, 15*time.Second, "successor promotion", func() bool {
		return cn.nodes[1].Role() == authenticache.RolePrimary
	})
	if term := cn.nodes[1].Term(); term < 2 {
		t.Fatalf("promoted term = %d, want >= 2", term)
	}
	clusterWait(t, 15*time.Second, "node 2 re-homes", func() bool {
		st := cn.nodes[2].Status()
		return st.PrimaryIndex == 1 && cn.nodes[2].AppliedSeq() >= cn.nodes[1].Status().CommitSeq
	})

	// Every durably-acked enrollment survives failover with its exact
	// current key, and every genuine device still authenticates against
	// the new primary's public wire.
	successor := cn.nodes[1]
	for id, key := range partKeys {
		got, err := successor.Server().CurrentKey(id)
		if err != nil || got != key {
			t.Fatalf("%q lost across failover (%v)", id, err)
		}
	}
	func() {
		rc, err := authenticache.DialResilient(ctx, cn.clientAddr[1], chaosPolicy(chaosSeed+8))
		if err != nil {
			t.Fatalf("successor dial: %v", err)
		}
		defer rc.Close()
		for i, r := range responders {
			okAuth, err := rc.Authenticate(ctx, r)
			if err != nil || !okAuth {
				t.Fatalf("client %d auth on successor: ok=%v err=%v", i, okAuth, err)
			}
			wrong := chaosMap(4096, 80, chaosSeed+999, 680, 700)
			imp := authenticache.NewResponder(r.ID, authenticache.NewSimDevice(wrong), keys[r.ID])
			if okImp, _ := rc.Authenticate(ctx, imp); okImp {
				t.Fatalf("impostor accepted on successor as %q", r.ID)
			}
		}
	}()

	// The deposed primary is fenced: with no follower acknowledgements
	// it cannot durably accept a mutation.
	if _, err := primary.Server().Enroll(ctx, "fenced", chaosMap(4096, 80, chaosSeed+50, 700)); err == nil {
		t.Fatal("deposed primary durably acked an enrollment")
	} else if !errors.Is(err, authenticache.ErrUnavailable) {
		t.Fatalf("fenced enrollment error = %v, want unavailable", err)
	}
}

// TestClusterRouter spreads clients over the fleet by consistent hash
// and forwards transactions to each owner through the router backend,
// including owners that are followers (who delegate issuance).
func TestClusterRouter(t *testing.T) {
	cn := startChaosCluster(t)
	primary := cn.nodes[0]

	router := authenticache.NewRouter(authenticache.RouterConfig{
		ClientPeers: cn.clientAddr,
		Self:        -1,
	})
	defer router.Close()

	for i := 0; i < 6; i++ {
		id := authenticache.ClientID(fmt.Sprintf("routed-%d", i))
		m := chaosMap(4096, 80, chaosSeed+uint64(i), 700)
		key, err := primary.Server().Enroll(ctx, id, m)
		if err != nil {
			t.Fatal(err)
		}
		clusterWait(t, 10*time.Second, "replication catch-up", func() bool {
			return cn.nodes[1].AppliedSeq() >= primary.Status().CommitSeq &&
				cn.nodes[2].AppliedSeq() >= primary.Status().CommitSeq
		})
		r := authenticache.NewResponder(id, authenticache.NewSimDevice(m), key)
		ch, err := router.BeginAuth(ctx, id)
		if err != nil {
			t.Fatalf("routed begin (owner %d): %v", router.Owner(id), err)
		}
		resp, err := r.Respond(ch)
		if err != nil {
			t.Fatal(err)
		}
		v, err := router.FinishAuth(ctx, id, ch.ID, resp)
		if err != nil {
			t.Fatalf("routed finish (owner %d): %v", router.Owner(id), err)
		}
		if !v.Accepted {
			t.Fatalf("genuine device rejected via router (owner %d)", router.Owner(id))
		}
	}
}
