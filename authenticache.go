// Package authenticache is a full reimplementation of "Authenticache:
// Harnessing Cache ECC for System Authentication" (Bacha & Teodorescu,
// MICRO-48, 2015): a Physical Unclonable Function built from the
// pattern of low-voltage correctable ECC errors in processor caches,
// plus the complete authentication system around it.
//
// Because real cache-ECC probing needs firmware-level voltage control,
// the silicon is simulated: a process-variation model drives a
// bit-accurate SECDED-protected SRAM, a voltage controller calibrates
// the safe floor, and an SMM-style firmware client answers challenges
// by self-testing cache lines — the same architecture as the paper's
// Itanium prototype (see DESIGN.md for the substitution map).
//
// # Quick start
//
//	chip, _ := authenticache.NewChip(authenticache.ChipConfig{Seed: 42})
//	levels := chip.AuthVoltagesMV(2, 10)           // challenge voltages
//	emap, _ := chip.Enroll(levels)                 // factory characterisation
//
//	srv := authenticache.NewServer(authenticache.DefaultServerConfig(), 1)
//	key, _ := srv.Enroll(ctx, "device-42", emap)
//	dev := authenticache.NewResponder("device-42", chip.Device(), key)
//
//	ch, _ := srv.IssueChallenge(ctx, "device-42")
//	resp, _ := dev.Respond(ch)
//	ok, _ := srv.Verify(ctx, "device-42", ch.ID, resp)  // true for real silicon
//
// The internal packages carry the substrates (variation, sram, ecc,
// cache, voltage, firmware, errormap, crp, mapkey, noise, attack,
// montecarlo, experiments); this package re-exports the surface a
// downstream integrator needs.
package authenticache

import (
	"context"

	"repro/internal/auth"
	"repro/internal/core"
	"repro/internal/crp"
	"repro/internal/enroll"
	"repro/internal/errormap"
	"repro/internal/keygen"
	"repro/internal/mapkey"
	"repro/internal/quality"
	"repro/internal/rng"
	"repro/internal/variation"
)

// Chip is a simulated client device: variation model, ECC SRAM,
// voltage controller, and SMM firmware.
type Chip = core.Chip

// ChipConfig configures a simulated chip; the zero value plus a Seed
// gives a 4 MB, 8-core device with paper-calibrated variation.
type ChipConfig = core.ChipConfig

// NewChip builds and boot-calibrates a chip.
func NewChip(cfg ChipConfig) (*Chip, error) { return core.NewChip(cfg) }

// Environment captures field conditions (temperature delta, aging).
type Environment = variation.Environment

// Server is the authenticating server: enrollment database, challenge
// generation, verification, and key updates.
type Server = auth.Server

// ServerConfig tunes the server.
type ServerConfig = auth.Config

// ClientID names an enrolled device.
type ClientID = auth.ClientID

// DefaultServerConfig mirrors the paper's operating point.
func DefaultServerConfig() ServerConfig { return auth.DefaultConfig() }

// NewServer creates an authentication server.
func NewServer(cfg ServerConfig, seed uint64) *Server { return auth.NewServer(cfg, seed) }

// Responder is the client-side agent: it owns a device and the current
// remap key.
type Responder = auth.Responder

// Device abstracts the client PUF hardware.
type Device = auth.Device

// NewResponder binds a device to its identity and provisioned key.
func NewResponder(id ClientID, dev Device, key Key) *Responder {
	return auth.NewResponder(id, dev, key)
}

// NewSimDevice wraps a measured error map as a fast map-backed device
// (Monte Carlo and fleet simulations).
func NewSimDevice(m *ErrorMap) *auth.SimDevice { return auth.NewSimDevice(m) }

// Key is the 256-bit logical-remap key shared between server and
// client.
type Key = mapkey.Key

// Challenge is a list of logical coordinate pairs; Response is the
// packed answer bits.
type Challenge = crp.Challenge

// Response is a packed challenge answer.
type Response = crp.Response

// ErrorMap is a chip's per-voltage error volume — the enrollment
// artifact the server stores.
type ErrorMap = errormap.Map

// ErrorPlane is one voltage level's error bitmap.
type ErrorPlane = errormap.Plane

// NewErrorMap creates an empty error map over a geometry.
func NewErrorMap(g MapGeometry) *ErrorMap { return errormap.NewMap(g) }

// NewErrorPlane creates an empty error plane over a geometry.
func NewErrorPlane(g MapGeometry) *ErrorPlane { return errormap.NewPlane(g) }

// MapGeometry describes an error map's plane layout.
type MapGeometry = errormap.Geometry

// NewMapGeometry returns the near-square layout for n cache lines.
func NewMapGeometry(lines int) MapGeometry { return errormap.NewGeometry(lines) }

// WireServer and WireClient expose the protocol over TCP (newline-
// delimited JSON).
type WireServer = auth.WireServer

// WireClient is the TCP client transport.
type WireClient = auth.WireClient

// NewWireServer wraps a Server for TCP serving.
func NewWireServer(s *Server) *WireServer { return auth.NewWireServer(s) }

// WireConfig tunes the wire server's hardening limits and overload
// shedding (message size cap, per-conn transaction cap, idle timeout,
// in-flight transaction cap, connection cap). The zero value keeps
// the defaults with shedding disabled.
type WireConfig = auth.WireConfig

// NewWireServerConfig wraps a Server for TCP serving with explicit
// wire limits and overload behaviour.
func NewWireServerConfig(s *Server, cfg WireConfig) (*WireServer, error) {
	return auth.NewWireServerConfig(s, cfg)
}

// Dial connects to a WireServer; ctx bounds the connection attempt.
// It speaks the v1 newline-JSON framing; use DialV2 or DialProto for
// the multiplexed binary framing.
func Dial(ctx context.Context, addr string) (*WireClient, error) { return auth.Dial(ctx, addr) }

// Proto selects a wire framing: ProtoAuto negotiates per connection,
// ProtoV1 forces newline-delimited JSON, ProtoV2 forces the
// multiplexed binary framing (pipelined transactions over one
// connection).
type Proto = auth.Proto

// Wire framing selectors; see Proto.
const (
	ProtoAuto = auth.ProtoAuto
	ProtoV1   = auth.ProtoV1
	ProtoV2   = auth.ProtoV2
)

// ParseProto maps the spellings "auto", "v1", "v2" (and "") onto a
// Proto; flag and config parsing use it.
func ParseProto(s string) (Proto, error) { return auth.ParseProto(s) }

// DialV2 connects speaking the v2 multiplexed binary framing. The
// returned client is safe for concurrent use: overlapping transactions
// pipeline over the one connection, each on its own stream.
func DialV2(ctx context.Context, addr string) (*WireClient, error) { return auth.DialV2(ctx, addr) }

// DialProto connects with an explicit framing choice. The server is
// the negotiating party, so ProtoAuto means v1 on the client side.
func DialProto(ctx context.Context, addr string, proto Proto) (*WireClient, error) {
	return auth.DialProto(ctx, addr, proto)
}

// ResilientClient is a WireClient that survives a hostile wire:
// dropped connections redial, transient failures retry with capped
// exponential backoff and jitter, and protocol verdicts (a burned
// challenge, a rejection) surface immediately without a retry. Not
// safe for concurrent use; give each goroutine its own client.
type ResilientClient = auth.ResilientClient

// RetryPolicy tunes a ResilientClient's retry loop; the zero value
// means 10 attempts from 10 ms backoff doubling to a 2 s cap with 50%
// jitter.
type RetryPolicy = auth.RetryPolicy

// RetryStats counts a ResilientClient's attempts, retries,
// reconnects, and shed responses.
type RetryStats = auth.RetryStats

// DialResilient connects to a WireServer with retry behaviour,
// speaking v1.
func DialResilient(ctx context.Context, addr string, policy RetryPolicy) (*ResilientClient, error) {
	return auth.DialResilient(ctx, addr, policy)
}

// DialResilientProto connects with retry behaviour and an explicit
// framing. With ProtoV2, concurrent transactions on the returned
// client pipeline over one shared connection.
func DialResilientProto(ctx context.Context, addr string, policy RetryPolicy, proto Proto) (*ResilientClient, error) {
	return auth.DialResilientProto(ctx, addr, policy, proto)
}

// Retryable reports whether an error is safe to retry as a fresh
// transaction: true for transport loss and server overload
// (unavailable), false for every protocol verdict — most critically a
// burned challenge, whose response must never be replayed.
func Retryable(err error) bool { return auth.Retryable(err) }

// ServerStats is a snapshot of the server's service counters.
type ServerStats = auth.ServerStats

// AuthError is the typed error every authentication operation returns
// on failure: a stable ErrorCode, the client concerned, and a wrapped
// cause that satisfies errors.Is against the sentinel errors below —
// identically for in-process calls and errors received over TCP.
type (
	AuthError = auth.AuthError
	ErrorCode = auth.ErrorCode
)

// Sentinel errors re-exported from the auth layer.
var (
	ErrUnknownClient    = auth.ErrUnknownClient
	ErrAlreadyEnrolled  = auth.ErrAlreadyEnrolled
	ErrUnknownChallenge = auth.ErrUnknownChallenge
	ErrExhausted        = auth.ErrExhausted
	ErrNoRemapPending   = auth.ErrNoRemapPending
	ErrBadPlane         = auth.ErrBadPlane
	ErrUnavailable      = auth.ErrUnavailable
)

// ErrorCodeOf extracts the stable ErrorCode from any error produced by
// the authentication layer.
func ErrorCodeOf(err error) ErrorCode { return auth.CodeOf(err) }

// PossibleCRPs returns n(n-1)/2, the challenge budget of an n-line
// cache at one voltage (paper equation (10)).
func PossibleCRPs(lines int) uint64 { return crp.PossibleCRPs(lines) }

// DailyAuthentications computes the sustainable daily authentication
// rate over lifetimeDays without reusing pairs (paper Table 1).
func DailyAuthentications(lines, crpBits, lifetimeDays int) uint64 {
	return crp.DailyAuthentications(lines, crpBits, lifetimeDays)
}

// QualityReport is the PUF report card over a chip population (paper
// Section 2.2 metric suite plus per-bit entropy).
type QualityReport = quality.Report

// QualityConfig tunes a report run.
type QualityConfig = quality.Config

// EvaluateQuality runs the report card over one error plane per chip.
func EvaluateQuality(planes []*ErrorPlane, cfg QualityConfig) (*QualityReport, error) {
	return quality.Evaluate(planes, cfg)
}

// DefaultQualityConfig evaluates 256-bit CRPs under normal field noise.
func DefaultQualityConfig() QualityConfig { return quality.DefaultConfig() }

// EnrollCriteria are the factory acceptance thresholds; EnrollResult
// reports a chip's screening outcome.
type (
	EnrollCriteria = enroll.Criteria
	EnrollResult   = enroll.Result
)

// CharacterizeChip runs the factory enrollment station on a chip.
func CharacterizeChip(chip *Chip, id ClientID, crit EnrollCriteria) (*EnrollResult, error) {
	return enroll.Characterize(chip, id, crit)
}

// ProvisionChip enrolls an accepted chip into a server and returns the
// device key.
func ProvisionChip(ctx context.Context, srv *Server, res *EnrollResult) (Key, error) {
	return enroll.Provision(ctx, srv, res)
}

// DefaultEnrollCriteria returns the acceptance thresholds scaled to a
// cache size.
func DefaultEnrollCriteria(cacheLines int) EnrollCriteria {
	return enroll.DefaultCriteria(cacheLines)
}

// KeygenParams configures PUF key derivation; KeygenBundle is the
// public provisioning artifact (paper Section 7.3 application).
type (
	KeygenParams = keygen.Params
	KeygenBundle = keygen.Bundle
)

// RandSource is the deterministic generator used across the simulator
// (xoshiro256**); production key provisioning would substitute a
// CSPRNG-backed source.
type RandSource = rng.Rand

// NewRandSource creates a seeded generator.
func NewRandSource(seed uint64) *RandSource { return rng.New(seed) }

// ProvisionKey binds a fresh secret to the device's PUF and returns
// the public bundle plus the derived 256-bit key.
func ProvisionKey(dev Device, p KeygenParams, secretRand *RandSource) (*KeygenBundle, [32]byte, error) {
	return keygen.Provision(dev, p, secretRand)
}

// RecoverKey re-derives the key from a bundle on (only) the right
// silicon.
func RecoverKey(dev Device, bundle *KeygenBundle) ([32]byte, error) {
	return keygen.Recover(dev, bundle)
}
