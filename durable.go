package authenticache

import (
	"fmt"
	"io"

	"repro/internal/auth"
	"repro/internal/wal"
)

// Durable serving: the write-ahead log subsystem wired through the
// facade. A plain Server persists only when the caller snapshots it;
// a DurableServer journals every mutation (enroll, pair burn, key
// rotation, counter advance, delete) to an append-only log before the
// mutating call returns, recovers snapshot+log on open, and compacts
// the log back into a snapshot on demand. See internal/wal for the
// on-disk format and DESIGN.md's Durability section for the
// semantics.

// WALOptions tunes the write-ahead log (segment size, group-commit
// flush interval and batch).
type WALOptions = wal.Options

// WALJournal is the journal interface a ServerConfig.WAL accepts;
// *wal.WAL implements it.
type WALJournal = auth.Journal

// DurableServer is a Server whose enrollment database survives
// crashes: mutations journal through a WAL, recovery replays the log
// over the latest snapshot, and Compact folds the log away.
type DurableServer struct {
	*Server
	wal *wal.WAL
}

// OpenDurableServer opens (creating if needed) the WAL directory,
// rebuilds the server from the latest snapshot plus the journal tail
// — tolerating a torn final record from a crash mid-append — and
// attaches the journal so every subsequent mutation is durable before
// it returns. cfg.WAL is ignored: the journal must only attach after
// replay, otherwise recovery would re-journal every replayed record.
func OpenDurableServer(dir string, cfg ServerConfig, seed uint64, opt WALOptions) (*DurableServer, error) {
	w, err := wal.Open(dir, opt)
	if err != nil {
		return nil, err
	}
	cfg.WAL = nil
	srv := auth.NewServer(cfg, seed)
	snap, ok, err := w.LatestSnapshot()
	if err != nil {
		w.Close()
		return nil, err
	}
	if ok {
		err := srv.LoadState(snap)
		snap.Close()
		if err != nil {
			w.Close()
			return nil, fmt.Errorf("authenticache: load WAL snapshot: %w", err)
		}
	}
	if err := w.Replay(func(rec *wal.Record) error { return applyRecord(srv, rec) }); err != nil {
		w.Close()
		return nil, fmt.Errorf("authenticache: replay WAL: %w", err)
	}
	// Decorrelate this boot's challenge draws from the pre-crash
	// server's: both start from the same seed, and the registry already
	// holds the pairs the old stream produced, so replaying the stream
	// verbatim would sample nothing but burned pairs. The journal tail
	// sequence is distinct per boot (the log only grows).
	srv.SaltChallengeStream(w.CommittedSeq())
	srv.AttachJournal(w)
	return &DurableServer{Server: srv, wal: w}, nil
}

// applyRecord dispatches one journal record onto the server's
// idempotent replay appliers.
func applyRecord(srv *auth.Server, rec *wal.Record) error {
	id := auth.ClientID(rec.ClientID)
	switch rec.Type {
	case wal.TypeEnroll:
		return srv.ReplayEnroll(id, rec.MapBytes, rec.Key, rec.Reserved)
	case wal.TypeBurn:
		return srv.ReplayBurn(id, rec.Pairs, rec.NextID, rec.CRPsSinceRemap)
	case wal.TypeRemap:
		return srv.ReplayRemap(id, rec.Key)
	case wal.TypeCounter:
		return srv.ReplayCounter(id, rec.NextID)
	case wal.TypeDelete:
		return srv.ReplayDelete(id)
	}
	return &auth.AuthError{
		Code: auth.CodeInvalidRequest,
		Err:  fmt.Errorf("authenticache: unknown WAL record type %d", rec.Type),
	}
}

// Compact folds the journal into a fresh snapshot and deletes the
// sealed segments it covers. Safe to call while serving traffic.
func (d *DurableServer) Compact() error {
	return d.wal.Compact(d.Server.SaveState)
}

// Close takes a final snapshot (so the next open replays an empty
// tail) and releases the log. The server remains usable in memory but
// further mutations fail their journal write.
func (d *DurableServer) Close() error {
	if err := d.Compact(); err != nil {
		d.wal.Close()
		return err
	}
	return d.wal.Close()
}

// WALDir returns the journal directory.
func (d *DurableServer) WALDir() string { return d.wal.Dir() }

// AtomicWriteFile durably replaces path with the bytes produced by
// write (temp file + fsync + rename + directory fsync). Exposed so
// callers persisting plain -state snapshots get the same
// crash-safety as WAL compaction.
func AtomicWriteFile(path string, write func(io.Writer) error) error {
	return wal.AtomicWriteFile(path, write)
}
