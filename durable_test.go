package authenticache_test

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	authenticache "repro"
	"repro/internal/crp"
	"repro/internal/errormap"
	"repro/internal/mapkey"
	"repro/internal/rng"
	"repro/internal/wal"
)

var dctx = context.Background()

// fastWAL keeps group-commit latency negligible in tests.
func fastWAL() authenticache.WALOptions {
	return authenticache.WALOptions{FlushInterval: 200 * time.Microsecond, FlushBatch: 8}
}

// durableTestMap builds a single-plane synthetic error map.
func durableTestMap(lines, k int, seed uint64, vdds ...int) *errormap.Map {
	g := errormap.NewGeometry(lines)
	m := errormap.NewMap(g)
	r := rng.New(seed)
	for _, v := range vdds {
		m.AddPlane(v, errormap.RandomPlane(g, k, r))
	}
	return m
}

// copyWALDir clones a log directory, truncating the segment file
// named seg to cut bytes (cut < 0 copies verbatim).
func copyWALDir(t *testing.T, src, seg string, cut int64) string {
	t.Helper()
	dst := t.TempDir()
	entries, err := os.ReadDir(src)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		b, err := os.ReadFile(filepath.Join(src, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		if e.Name() == seg && cut >= 0 {
			b = b[:cut]
		}
		if err := os.WriteFile(filepath.Join(dst, e.Name()), b, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return dst
}

// TestDurableCrashRecoveryTruncationSweep is the crash-recovery
// property: a server is killed mid-append at EVERY byte offset of the
// log's tail record, and for each truncation point the recovered
// server must (a) open cleanly, discarding the torn record, (b)
// refuse to verify any challenge issued before the crash — pendings
// are transient, so a recorded challenge cannot be replayed — and (c)
// never reissue a pair whose burn record committed before the crash.
func TestDurableCrashRecoveryTruncationSweep(t *testing.T) {
	const (
		id    = authenticache.ClientID("dev-0")
		vdd   = 680
		lines = 1024
	)
	crashDir := t.TempDir()
	cfg := authenticache.DefaultServerConfig()
	cfg.ChallengeBits = 16
	ds, err := authenticache.OpenDurableServer(crashDir, cfg, 1, fastWAL())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ds.Enroll(dctx, id, durableTestMap(lines, 40, 5, vdd)); err != nil {
		t.Fatal(err)
	}
	const issues = 5
	chs := make([]*authenticache.Challenge, issues)
	for i := range chs {
		if chs[i], err = ds.IssueChallenge(dctx, id); err != nil {
			t.Fatal(err)
		}
	}
	// Simulate the crash by never closing ds: every completed issue is
	// already fsynced (Append returns post-sync), so the on-disk state
	// is exactly what a kill -9 would leave.
	segName := ""
	entries, err := os.ReadDir(crashDir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		segName = e.Name()
	}
	if len(entries) != 1 {
		t.Fatalf("expected exactly one segment in the crash dir, found %d entries", len(entries))
	}
	segPath := filepath.Join(crashDir, segName)
	recs, ends, err := wal.ScanSegment(segPath)
	if err != nil {
		t.Fatalf("scan crash segment: %v", err)
	}
	if len(recs) != 1+issues { // enroll + one burn per issue
		t.Fatalf("crash log has %d records, want %d", len(recs), 1+issues)
	}
	tailStart := ends[len(ends)-2]
	size := ends[len(ends)-1]

	for cut := tailStart; cut < size; cut++ {
		dir := copyWALDir(t, crashDir, segName, cut)
		rs, err := authenticache.OpenDurableServer(dir, cfg, 1, fastWAL())
		if err != nil {
			t.Fatalf("cut=%d: recovery failed: %v", cut, err)
		}
		// Committed burns are every record that fully precedes the cut:
		// the enroll plus the first issues-1 burns.
		burned := make(map[crp.PairBit]bool)
		committed, _, _ := wal.ScanSegment(filepath.Join(dir, segName))
		if len(committed) != issues { // enroll + (issues-1) burns
			t.Fatalf("cut=%d: recovered %d committed records, want %d", cut, len(committed), issues)
		}
		for _, rec := range committed {
			for _, p := range rec.Pairs {
				burned[canonicalPair(p)] = true
			}
		}
		// (b) no challenge issued before the crash verifies after it.
		for i, ch := range chs {
			ok, err := rs.Verify(dctx, id, ch.ID, crp.NewResponse(len(ch.Bits)))
			if ok || !errors.Is(err, authenticache.ErrUnknownChallenge) {
				t.Fatalf("cut=%d: pre-crash challenge %d replayed: ok=%v err=%v", cut, i, ok, err)
			}
		}
		// (c) new challenges never touch a committed pair. Challenges
		// are logical; unmap through the shared key to compare against
		// the journal's physical pairs.
		key, err := rs.CurrentKey(id)
		if err != nil {
			t.Fatal(err)
		}
		perm := mapkey.NewPermutation(mapkey.PlaneKey(key, vdd), lines)
		seenIDs := map[uint64]bool{}
		for _, ch := range chs[:issues-1] {
			seenIDs[ch.ID] = true
		}
		for i := 0; i < 4; i++ {
			ch, err := rs.IssueChallenge(dctx, id)
			if err != nil {
				t.Fatalf("cut=%d: post-recovery issue: %v", cut, err)
			}
			if seenIDs[ch.ID] {
				t.Fatalf("cut=%d: challenge ID %d reissued after recovery", cut, ch.ID)
			}
			for _, b := range ch.Bits {
				phys := canonicalPair(crp.PairBit{A: perm.Unmap(b.A), B: perm.Unmap(b.B), VddMV: b.VddMV})
				if burned[phys] {
					t.Fatalf("cut=%d: pair %+v burned before the crash was reissued after recovery", cut, phys)
				}
			}
		}
	}
}

// canonicalPair normalises a pair's orientation for set membership.
func canonicalPair(p crp.PairBit) crp.PairBit {
	if p.A > p.B {
		p.A, p.B = p.B, p.A
	}
	return p
}

// TestDurableCompactionUnderVerifyTraffic hammers issue/verify across
// a fleet while compactions run in parallel (the race-detector
// workout for the log's barrier and the snapshot's per-record locks),
// then proves recovery fidelity: the state serialised by the live
// server equals, byte for byte, the state a fresh server reconstructs
// from a crash-copy of the log directory.
func TestDurableCompactionUnderVerifyTraffic(t *testing.T) {
	dir := t.TempDir()
	cfg := authenticache.DefaultServerConfig()
	cfg.ChallengeBits = 16
	opt := fastWAL()
	opt.SegmentBytes = 4 << 10 // rotate often so compaction has segments to fold
	ds, err := authenticache.OpenDurableServer(dir, cfg, 3, opt)
	if err != nil {
		t.Fatal(err)
	}
	const clients = 4
	ids := make([]authenticache.ClientID, clients)
	for i := range ids {
		ids[i] = authenticache.ClientID(fmt.Sprintf("dev-%d", i))
		if _, err := ds.Enroll(dctx, ids[i], durableTestMap(2048, 60, uint64(30+i), 680)); err != nil {
			t.Fatal(err)
		}
	}
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for _, id := range ids {
		wg.Add(1)
		go func(id authenticache.ClientID) {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				ch, err := ds.IssueChallenge(dctx, id)
				if err != nil {
					t.Errorf("issue %s: %v", id, err)
					return
				}
				if _, err := ds.Verify(dctx, id, ch.ID, crp.NewResponse(len(ch.Bits))); err != nil {
					t.Errorf("verify %s: %v", id, err)
					return
				}
			}
		}(id)
	}
	for i := 0; i < 5; i++ {
		if err := ds.Compact(); err != nil {
			t.Fatalf("compact %d under traffic: %v", i, err)
		}
	}
	close(stop)
	wg.Wait()

	var live bytes.Buffer
	if err := ds.SaveState(&live); err != nil {
		t.Fatal(err)
	}
	// Crash-copy the directory (ds stays open — nothing is flushed
	// beyond what group commit already fsynced) and recover.
	crash := copyWALDir(t, dir, "", -1)
	rs, err := authenticache.OpenDurableServer(crash, cfg, 3, opt)
	if err != nil {
		t.Fatalf("recover crash copy: %v", err)
	}
	var recovered bytes.Buffer
	if err := rs.SaveState(&recovered); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(live.Bytes(), recovered.Bytes()) {
		t.Fatalf("recovered state diverges from live state:\nlive %d bytes, recovered %d bytes", live.Len(), recovered.Len())
	}
}

// TestDurableRemapDeleteRecovery drives the remaining record types —
// key rotation, counter advance, client delete — through a crash and
// checks each survives recovery.
func TestDurableRemapDeleteRecovery(t *testing.T) {
	dir := t.TempDir()
	cfg := authenticache.DefaultServerConfig()
	cfg.ChallengeBits = 16
	ds, err := authenticache.OpenDurableServer(dir, cfg, 9, fastWAL())
	if err != nil {
		t.Fatal(err)
	}
	keep := authenticache.ClientID("keep")
	gone := authenticache.ClientID("gone")
	// Two planes: 680 for auth, 700 reserved for key updates.
	if _, err := ds.Enroll(dctx, keep, durableTestMap(1024, 40, 11, 680, 700), 700); err != nil {
		t.Fatal(err)
	}
	if _, err := ds.Enroll(dctx, gone, durableTestMap(1024, 40, 12, 680)); err != nil {
		t.Fatal(err)
	}
	if _, err := ds.BeginRemap(dctx, keep); err != nil {
		t.Fatal(err)
	}
	if err := ds.CompleteRemap(dctx, keep, true); err != nil {
		t.Fatal(err)
	}
	rotated, err := ds.CurrentKey(keep)
	if err != nil {
		t.Fatal(err)
	}
	if err := ds.DeleteClient(dctx, gone); err != nil {
		t.Fatal(err)
	}

	crash := copyWALDir(t, dir, "", -1)
	rs, err := authenticache.OpenDurableServer(crash, cfg, 9, fastWAL())
	if err != nil {
		t.Fatalf("recover: %v", err)
	}
	got, err := rs.CurrentKey(keep)
	if err != nil {
		t.Fatal(err)
	}
	if got != rotated {
		t.Fatal("rotated key lost across crash recovery")
	}
	if rs.Enrolled(gone) {
		t.Fatal("deleted client resurrected by recovery")
	}
	// The recovered server keeps serving: a fresh remap still works
	// (reserved plane survived) and issue/verify runs on the new key.
	ch, err := rs.IssueChallenge(dctx, keep)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := rs.Verify(dctx, keep, ch.ID, crp.NewResponse(len(ch.Bits))); err != nil {
		t.Fatal(err)
	}
}

// TestDurableCloseReopenEmptyTail: a graceful shutdown compacts, so
// the next boot loads only the snapshot and replays nothing.
func TestDurableCloseReopenEmptyTail(t *testing.T) {
	dir := t.TempDir()
	cfg := authenticache.DefaultServerConfig()
	cfg.ChallengeBits = 16
	ds, err := authenticache.OpenDurableServer(dir, cfg, 21, fastWAL())
	if err != nil {
		t.Fatal(err)
	}
	id := authenticache.ClientID("dev-0")
	if _, err := ds.Enroll(dctx, id, durableTestMap(1024, 40, 77, 680)); err != nil {
		t.Fatal(err)
	}
	if _, err := ds.IssueChallenge(dctx, id); err != nil {
		t.Fatal(err)
	}
	var before bytes.Buffer
	if err := ds.SaveState(&before); err != nil {
		t.Fatal(err)
	}
	if err := ds.Close(); err != nil {
		t.Fatal(err)
	}
	rs, err := authenticache.OpenDurableServer(dir, cfg, 21, fastWAL())
	if err != nil {
		t.Fatal(err)
	}
	defer rs.Close()
	var after bytes.Buffer
	if err := rs.SaveState(&after); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(before.Bytes(), after.Bytes()) {
		t.Fatal("graceful close + reopen changed the database")
	}
}
