#!/bin/sh
# Lint latency budget: the full authlint suite must analyze the whole
# repository module in under BUDGET_MS per pass, so the vet hook and
# the pre-commit path stay cheap. Runs BenchmarkAuthlint/suite (load
# cost excluded — it's paid once per go vet invocation, not per
# analyzer) and fails when ns/op crosses the budget.
#
# Usage: sh scripts/lint_budget.sh [budget_ms]
set -eu

BUDGET_MS="${1:-250}"

out=$(go test -run '^$' -bench '^BenchmarkAuthlint$/^suite$' -benchtime 3x ./internal/lint/analyzers/)
echo "$out"

ns=$(echo "$out" | awk '/BenchmarkAuthlint\/suite/ { print int($3); exit }')
if [ -z "$ns" ]; then
	echo "lint_budget: no BenchmarkAuthlint/suite result in bench output" >&2
	exit 1
fi

budget_ns=$((BUDGET_MS * 1000000))
ms=$((ns / 1000000))
if [ "$ns" -gt "$budget_ns" ]; then
	echo "lint_budget: suite took ${ms}ms/op, over the ${BUDGET_MS}ms budget" >&2
	exit 1
fi
echo "lint_budget: suite ${ms}ms/op, within the ${BUDGET_MS}ms budget"
