#!/bin/sh
# Regenerates BENCH_wire.json from BenchmarkWireTxPerConn.
#
# Challenge pairs burn forever in the no-reuse registry, so the bench
# runs a fixed iteration count (-benchtime Nx), never wall time: a
# time-based count on a fast machine could exhaust the pair space
# mid-run. 1000 iterations keeps every variant under ~15% of one
# plane's pair budget.
#
#   scripts/bench_wire.sh            # full run, 1000 iterations
#   scripts/bench_wire.sh 50         # smoke run (CI uses this)
#
# Run from the repo root (make bench-wire and scripts/check.sh do).
set -eu

iters="${1:-1000}"
out="BENCH_wire.json"

raw="$(go test -run '^$' -bench BenchmarkWireTxPerConn \
	-benchtime "${iters}x" -count=1 ./internal/auth/)"
printf '%s\n' "$raw"

# Each bench line looks like:
#   BenchmarkWireTxPerConn/local/v1/depth=1  1000  178467 ns/op  5603 tx/s
printf '%s\n' "$raw" | awk -v iters="$iters" '
/^BenchmarkWireTxPerConn\// {
	sub(/^BenchmarkWireTxPerConn\//, "", $1)
	# Strip the trailing -N GOMAXPROCS suffix if present.
	sub(/-[0-9]+$/, "", $1)
	for (i = 2; i <= NF; i++) {
		if ($(i+1) == "ns/op") ns = $i
		if ($(i+1) == "tx/s") tx = $i
	}
	lines[n++] = sprintf("    {\"name\": \"%s\", \"ns_per_op\": %s, \"tx_per_sec\": %s}", $1, ns, tx)
}
END {
	if (n == 0) { print "bench_wire: no benchmark lines parsed" > "/dev/stderr"; exit 1 }
	print "{"
	printf "  \"benchmark\": \"BenchmarkWireTxPerConn\",\n"
	printf "  \"iterations\": %d,\n", iters
	print "  \"results\": ["
	for (i = 0; i < n; i++) printf "%s%s\n", lines[i], (i < n-1 ? "," : "")
	print "  ]"
	print "}"
}' >"$out"

echo "bench_wire: wrote $out"
