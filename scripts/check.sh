#!/bin/sh
# Repo-wide gate: vet, build, and race-test everything.
# Run from the repo root (make check does).
set -eu

echo "== go vet =="
go vet ./...

echo "== go build =="
go build ./...

echo "== go test -race =="
go test -race ./...

echo "== wal recovery tests =="
go test -count=1 -run 'TestKillMidWriteEveryTruncation|TestCorruptCRC|TestReplayIdempotence' ./internal/wal/
go test -count=1 -run 'TestDurableCrashRecoveryTruncationSweep|TestDurableCompactionUnderVerifyTraffic' .

echo "== wal replay fuzz smoke (5s) =="
go test -run '^$' -fuzz '^FuzzWALReplay$' -fuzztime 5s ./internal/wal/

echo "check: all green"
