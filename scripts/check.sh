#!/bin/sh
# Repo-wide gate: vet, lint (authlint + optional staticcheck/
# govulncheck), build, and race-test everything.
# Run from the repo root (make check does).
set -eu

echo "== go vet =="
go vet ./...

echo "== go build =="
go build ./...

echo "== authlint (invariant analyzers) =="
go run ./cmd/authlint ./...

echo "== authlint latency budget (suite < 250ms) =="
sh scripts/lint_budget.sh 250

echo "== staticcheck (if installed) =="
if command -v staticcheck >/dev/null 2>&1; then
	staticcheck ./...
else
	echo "staticcheck not installed; skipping"
fi

echo "== govulncheck (if installed) =="
if command -v govulncheck >/dev/null 2>&1; then
	govulncheck ./...
else
	echo "govulncheck not installed; skipping"
fi

echo "== go test -race =="
go test -race ./...

echo "== wal recovery tests =="
go test -count=1 -run 'TestKillMidWriteEveryTruncation|TestCorruptCRC|TestReplayIdempotence' ./internal/wal/
go test -count=1 -run 'TestDurableCrashRecoveryTruncationSweep|TestDurableCompactionUnderVerifyTraffic' .

echo "== chaos tests (fault injection, fixed seed) =="
go test -race -count=1 -run 'Chaos' .

echo "== wal replay fuzz smoke (5s) =="
go test -run '^$' -fuzz '^FuzzWALReplay$' -fuzztime 5s ./internal/wal/

echo "== wire server fuzz smoke (5s) =="
go test -run '^$' -fuzz '^FuzzWireServer$' -fuzztime 5s ./internal/auth/

echo "== wire v2 fuzz smoke (5s) =="
go test -run '^$' -fuzz '^FuzzWireServerV2$' -fuzztime 5s ./internal/auth/

echo "== wire v2 zero-alloc gate =="
go test -count=1 -run 'TestVerifyPathZeroAlloc' ./internal/wire/

echo "== wire bench smoke (fixed 50 iterations) =="
sh scripts/bench_wire.sh 50

echo "== cluster replication and failover (race) =="
go test -race -count=1 -run 'TestReplicationAndFollowerReads|TestPrimaryWithoutQuorumCannotAck|TestFailoverPromotesSuccessor|TestFollowerResyncAfterPartition|TestDeposedPrimaryStepsDownOnHigherTerm' ./internal/cluster/

echo "== cluster bench smoke (fixed 100 iterations) =="
sh scripts/bench_cluster.sh 100

echo "check: all green"
