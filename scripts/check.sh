#!/bin/sh
# Repo-wide gate: vet, build, and race-test everything.
# Run from the repo root (make check does).
set -eu

echo "== go vet =="
go vet ./...

echo "== go build =="
go build ./...

echo "== go test -race =="
go test -race ./...

echo "check: all green"
