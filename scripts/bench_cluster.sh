#!/bin/sh
# Regenerates BENCH_cluster.json from BenchmarkClusterAuth (end-to-end
# replicated vs single-node throughput), BenchmarkClusterPrimaryCost
# (the primary's per-issuance serial cost, full vs burn-only — the
# follower read-scaling headroom), and BenchmarkClusterFailover (the
# router's read-path latency distribution with a black-holed owner:
# p50 is the post-detection steady state, p99 the hedged-failover
# transient).
#
# Challenge pairs burn forever in the no-reuse registry, so the bench
# runs a fixed iteration count (-benchtime Nx), never wall time: a
# time-based count on a fast machine could exhaust the hot client's
# pair space mid-run.
#
#   scripts/bench_cluster.sh         # full run, 1000 iterations
#   scripts/bench_cluster.sh 100     # smoke run (CI uses this)
#
# Run from the repo root (make bench-cluster and scripts/check.sh do).
set -eu

iters="${1:-1000}"
out="BENCH_cluster.json"

raw="$(go test -run '^$' -bench 'BenchmarkClusterAuth|BenchmarkClusterPrimaryCost|BenchmarkClusterFailover' \
	-benchtime "${iters}x" -count=1 ./)"
printf '%s\n' "$raw"

# Each bench line looks like:
#   BenchmarkClusterAuth/replicated-3/primary  1000  785676 ns/op  1273 tx/s
# and the failover bench adds latency-quantile columns:
#   BenchmarkClusterFailover/owner-stalled  1000  ...  1.2 p50_ms  12.6 p99_ms  536 tx/s
printf '%s\n' "$raw" | awk -v iters="$iters" '
/^BenchmarkCluster(Auth|PrimaryCost|Failover)\// {
	p50 = ""; p99 = ""
	for (i = 2; i <= NF; i++) {
		if ($(i+1) == "ns/op") ns = $i
		if ($(i+1) == "tx/s") tx = $i
		if ($(i+1) == "p50_ms") p50 = $i
		if ($(i+1) == "p99_ms") p99 = $i
	}
	# Strip the trailing -N GOMAXPROCS suffix if present.
	sub(/-[0-9]+$/, "", $1)
	sub(/^Benchmark/, "", $1)
	quant = (p50 != "") ? sprintf(", \"p50_ms\": %s, \"p99_ms\": %s", p50, p99) : ""
	lines[n++] = sprintf("    {\"name\": \"%s\", \"ns_per_op\": %s, \"tx_per_sec\": %s%s}", $1, ns, tx, quant)
}
END {
	if (n == 0) { print "bench_cluster: no benchmark lines parsed" > "/dev/stderr"; exit 1 }
	print "{"
	printf "  \"iterations\": %d,\n", iters
	print "  \"results\": ["
	for (i = 0; i < n; i++) printf "%s%s\n", lines[i], (i < n-1 ? "," : "")
	print "  ]"
	print "}"
}' >"$out"

echo "bench_cluster: wrote $out"
