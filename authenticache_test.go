package authenticache_test

import (
	"testing"

	authenticache "repro"
)

// TestQuickstart exercises the documented happy path end to end
// through the public facade.
func TestQuickstart(t *testing.T) {
	chip, err := authenticache.NewChip(authenticache.ChipConfig{Seed: 42, CacheBytes: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	levels := chip.AuthVoltagesMV(2, 10)
	emap, err := chip.Enroll(levels)
	if err != nil {
		t.Fatal(err)
	}

	cfg := authenticache.DefaultServerConfig()
	cfg.ChallengeBits = 64
	srv := authenticache.NewServer(cfg, 1)
	key, err := srv.Enroll(ctx, "device-42", emap)
	if err != nil {
		t.Fatal(err)
	}
	dev := authenticache.NewResponder("device-42", chip.Device(), key)

	ch, err := srv.IssueChallenge(ctx, "device-42")
	if err != nil {
		t.Fatal(err)
	}
	resp, err := dev.Respond(ch)
	if err != nil {
		t.Fatal(err)
	}
	ok, err := srv.Verify(ctx, "device-42", ch.ID, resp)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatal("quickstart flow rejected the genuine chip")
	}
}

// TestFacadeStationAndKeygen exercises the enrollment-station and
// key-derivation surfaces of the public API.
func TestFacadeStationAndKeygen(t *testing.T) {
	chip, err := authenticache.NewChip(authenticache.ChipConfig{Seed: 77, CacheBytes: 512 << 10})
	if err != nil {
		t.Fatal(err)
	}
	crit := authenticache.DefaultEnrollCriteria(chip.Geometry().Lines())
	res, err := authenticache.CharacterizeChip(chip, "facade-chip", crit)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Accepted() {
		t.Fatalf("rejections: %v", res.Rejections)
	}
	srv := authenticache.NewServer(authenticache.DefaultServerConfig(), 9)
	if _, err := authenticache.ProvisionChip(ctx, srv, res); err != nil {
		t.Fatal(err)
	}

	// Key derivation against the firmware device, on an auth plane.
	dev := chip.Device()
	params := authenticache.KeygenParams{
		Scheme:        "repetition",
		KeyBits:       64,
		VddMV:         res.Record.AuthVdds[0],
		Label:         "facade-test",
		ChallengeSeed: 1,
	}
	bundle, key, err := authenticache.ProvisionKey(dev, params, authenticache.NewRandSource(5))
	if err != nil {
		t.Fatal(err)
	}
	got, err := authenticache.RecoverKey(dev, bundle)
	if err != nil {
		t.Fatal(err)
	}
	if got != key {
		t.Fatal("firmware-backed key recovery diverged")
	}
}

func TestFacadeQuality(t *testing.T) {
	g := authenticache.NewMapGeometry(8192)
	planes := make([]*authenticache.ErrorPlane, 6)
	r := authenticache.NewRandSource(3)
	for i := range planes {
		planes[i] = randomPlane(g, 80, r)
	}
	cfg := authenticache.DefaultQualityConfig()
	cfg.CRPBits = 64
	cfg.Challenges = 4
	cfg.Remeasurements = 2
	rep, err := authenticache.EvaluateQuality(planes, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if rep.UniquenessPct < 40 || rep.UniquenessPct > 60 {
		t.Fatalf("uniqueness = %v", rep.UniquenessPct)
	}
}

// randomPlane builds a plane entirely through the public surface.
func randomPlane(g authenticache.MapGeometry, k int, r *authenticache.RandSource) *authenticache.ErrorPlane {
	p := authenticache.NewErrorPlane(g)
	placed := 0
	for placed < k {
		line := r.Intn(g.Lines)
		if p.Get(line) {
			continue
		}
		p.Set(line, true)
		placed++
	}
	return p
}

func TestFacadeHelpers(t *testing.T) {
	if got := authenticache.PossibleCRPs(65536); got != 2147450880 {
		t.Fatalf("PossibleCRPs = %d", got)
	}
	if got := authenticache.DailyAuthentications(65536, 64, 3650); got != 9192 {
		t.Fatalf("DailyAuthentications = %d", got)
	}
	if g := authenticache.NewMapGeometry(65536); g.Width != 256 {
		t.Fatalf("geometry width = %d", g.Width)
	}
}
