package authenticache_test

import (
	"bufio"
	"bytes"
	"net"
	"os/exec"
	"path/filepath"
	"regexp"
	"strings"
	"sync"
	"testing"
	"time"
)

// End-to-end test of the shipped binaries: build authd and authcli,
// start the daemon, authenticate a genuine client, verify an impostor
// is rejected, and check state persistence across a daemon restart.
func TestCLIEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and runs the real binaries")
	}
	dir := t.TempDir()
	authd := filepath.Join(dir, "authd")
	authcli := filepath.Join(dir, "authcli")
	for _, b := range []struct{ out, pkg string }{
		{authd, "./cmd/authd"},
		{authcli, "./cmd/authcli"},
	} {
		cmd := exec.Command("go", "build", "-o", b.out, b.pkg)
		cmd.Dir = "."
		if out, err := cmd.CombinedOutput(); err != nil {
			t.Fatalf("build %s: %v\n%s", b.pkg, err, out)
		}
	}

	statePath := filepath.Join(dir, "state.json")
	addr := freeAddr(t)

	provisions, stop := startAuthd(t, authd, addr, statePath, "-devices", "1", "-cache", "262144")
	key := provisions["dev-0"]
	if key == "" {
		t.Fatal("no provisioning line for dev-0")
	}

	// Genuine client.
	out, err := exec.Command(authcli,
		"-addr", addr, "-id", "dev-0", "-chipseed", "1", "-cache", "262144",
		"-key", key, "-n", "2").CombinedOutput()
	if err != nil {
		t.Fatalf("genuine client failed: %v\n%s", err, out)
	}
	if c := strings.Count(string(out), "ACCEPTED"); c != 2 {
		t.Fatalf("genuine client accepted %d/2:\n%s", c, out)
	}

	// Impostor: right key, wrong silicon; exit code must be nonzero.
	out, err = exec.Command(authcli,
		"-addr", addr, "-id", "dev-0", "-chipseed", "1", "-cache", "262144",
		"-key", key, "-n", "1", "-impostor").CombinedOutput()
	if err == nil {
		t.Fatalf("impostor exited 0:\n%s", out)
	}
	if !strings.Contains(string(out), "REJECTED") {
		t.Fatalf("impostor not rejected:\n%s", out)
	}

	// Restart from persisted state: the same key keeps working.
	stop()
	addr2 := freeAddr(t)
	provisions2, stop2 := startAuthd(t, authd, addr2, statePath)
	defer stop2()
	if provisions2["dev-0"] != key {
		t.Fatalf("restored key differs: %q vs %q", provisions2["dev-0"], key)
	}
	out, err = exec.Command(authcli,
		"-addr", addr2, "-id", "dev-0", "-chipseed", "1", "-cache", "262144",
		"-key", key, "-n", "1").CombinedOutput()
	if err != nil {
		t.Fatalf("post-restart auth failed: %v\n%s", err, out)
	}
}

// syncBuffer makes the daemon's combined output safe to read while
// exec's pipe-copy goroutines are still writing it.
type syncBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

// startAuthd launches the daemon and parses its PROVISION lines,
// returning id->keyhex and a stop function.
func startAuthd(t *testing.T, bin, addr, statePath string, extra ...string) (map[string]string, func()) {
	t.Helper()
	args := append([]string{"-addr", addr, "-state", statePath}, extra...)
	cmd := exec.Command(bin, args...)
	var buf syncBuffer
	cmd.Stdout = &buf
	cmd.Stderr = &buf
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	stop := func() {
		cmd.Process.Kill()
		cmd.Wait()
	}
	// Wait until the daemon listens.
	deadline := time.Now().Add(60 * time.Second)
	for {
		conn, err := net.DialTimeout("tcp", addr, 200*time.Millisecond)
		if err == nil {
			conn.Close()
			break
		}
		if time.Now().After(deadline) {
			stop()
			t.Fatalf("authd never listened on %s:\n%s", addr, buf.String())
		}
		time.Sleep(100 * time.Millisecond)
	}
	provisions := map[string]string{}
	re := regexp.MustCompile(`PROVISION id=(\S+).* key=([0-9a-f]{64})`)
	sc := bufio.NewScanner(strings.NewReader(buf.String()))
	for sc.Scan() {
		if m := re.FindStringSubmatch(sc.Text()); m != nil {
			provisions[m[1]] = m[2]
		}
	}
	return provisions, stop
}

// freeAddr grabs an unused localhost port.
func freeAddr(t *testing.T) string {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	return l.Addr().String()
}
