package authenticache

import (
	"context"
	"net"

	"repro/internal/auth"
	"repro/internal/cluster"
)

// Replicated deployment surface: a single-primary cluster of authd
// nodes with WAL shipping, lease-based failover, read-scaled
// challenge issuance on followers, and a consistent-hash router for
// spreading client load across the fleet. See DESIGN.md §10.

// ClusterNode is one member of a replicated authd cluster.
type ClusterNode = cluster.Node

// ClusterConfig describes one node's place in the cluster.
type ClusterConfig = cluster.Config

// ClusterStatus is a point-in-time replication snapshot of a node.
type ClusterStatus = cluster.Status

// ClusterRole distinguishes the primary from followers.
type ClusterRole = cluster.Role

// Cluster roles.
const (
	RoleFollower = cluster.RoleFollower
	RolePrimary  = cluster.RolePrimary
)

// ClusterDialFunc customises how a node reaches its peers (fault
// injection, TLS wrapping).
type ClusterDialFunc = cluster.DialFunc

// TxBackend executes the two halves of authentication and key-update
// transactions; servers, cluster nodes, and routers all implement it.
type TxBackend = auth.TxBackend

// AuthVerdict is FinishAuth's outcome.
type AuthVerdict = auth.AuthVerdict

// NewWireServerBackend exposes an arbitrary transaction backend — a
// cluster node's role-aware backend, a forwarding Router — over the
// same hardened wire front end a plain Server gets.
func NewWireServerBackend(be TxBackend, cfg WireConfig) (*WireServer, error) {
	return auth.NewWireServerBackend(be, cfg)
}

// OpenClusterNode opens (or recovers) one cluster node from its WAL
// directory. Start it to join the cluster.
func OpenClusterNode(cfg ClusterConfig) (*ClusterNode, error) { return cluster.Open(cfg) }

// Router forwards authentication transactions to each client's
// consistent-hash owner node.
type Router = cluster.Router

// RouterConfig describes the fleet a Router forwards into.
type RouterConfig = cluster.RouterConfig

// NewRouter builds a consistent-hash forwarding backend over the
// fleet's client-facing addresses.
func NewRouter(cfg RouterConfig) *Router { return cluster.NewRouter(cfg) }

// Ring is the consistent-hash placement a Router uses, exposed for
// monitoring and capacity planning.
type Ring = cluster.Ring

// NewRing builds a placement ring over nodes node indexes with vnodes
// virtual points each (0 uses the default granularity).
func NewRing(nodes, vnodes int) *Ring { return cluster.NewRing(nodes, vnodes) }

// PeerStatus is the router's failure-detector view of one peer: probe
// RTT and replication frontier from the background prober, circuit
// state from the per-peer breaker.
type PeerStatus = cluster.PeerStatus

// DeadlineBudget splits a caller's context deadline across retry or
// hedge attempts so one hung peer cannot consume the whole request
// allowance.
type DeadlineBudget = auth.DeadlineBudget

// RelayClient is a pooled forwarding connection to one authd node's
// client port; RouterConfig.Dial seams build these over custom
// transports (fault gates, TLS).
type RelayClient = auth.RelayClient

// DialRelay connects a relay client to a node's client-facing address.
func DialRelay(ctx context.Context, addr string) (*RelayClient, error) {
	return auth.DialRelay(ctx, addr)
}

// NewRelayClient wraps an already-established connection as a relay
// client, for callers that dial (or gate) the transport themselves.
func NewRelayClient(conn net.Conn) (*RelayClient, error) { return auth.NewRelayClient(conn) }
