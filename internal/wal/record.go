// Package wal is the authentication server's write-ahead log: an
// append-only, CRC32C-framed journal of every enrollment-database
// mutation between snapshots.
//
// The no-reuse registry is a security invariant — a consumed
// challenge pair that the server forgets can be reissued, reopening
// both simple replay and the paper's Section 6.7 model-building
// window. A snapshot alone therefore isn't durability: every pair
// burned between snapshots must hit stable storage before the
// challenge leaves the server. The WAL records exactly the mutations
// the auth layer performs (enroll, pair burn, key rotation, challenge
// counter advance, client delete); recovery loads the latest snapshot
// and replays the log tail; compaction folds sealed segments into a
// fresh snapshot and deletes them.
//
// # On-disk format
//
// A log directory holds numbered segment files plus at most one
// snapshot:
//
//	wal-00000001.log
//	wal-00000002.log
//	snapshot.json
//
// Every segment starts with the 8-byte magic "ACWALv1\n". Records
// follow as length-prefixed frames:
//
//	[u32 length LE][u32 CRC32C(payload) LE][payload]
//
// The payload's first byte is the record type; the rest is a
// field-wise uvarint/bytes encoding (see encode/decodePayload). The
// CRC uses the Castagnoli polynomial. A torn final frame — short
// length prefix, short payload, or CRC mismatch at the tail — is a
// crash artifact, not corruption: recovery keeps the clean prefix and
// truncates the rest. A bad frame *followed by* valid frames is real
// corruption and fails recovery loudly.
package wal

import (
	"encoding/binary"
	"fmt"

	"repro/internal/crp"
)

// Type discriminates journal records.
type Type uint8

// Record types. The values are the on-disk encoding — never renumber.
// The record table in docs/PROTOCOL.md is the public contract for
// these values; waldrift diffs it against the constants below.
//
//lint:recordtable ../../docs/PROTOCOL.md#write-ahead-log-records
const (
	// TypeEnroll captures a full new client: error map, initial remap
	// key, reserved voltage planes.
	TypeEnroll Type = 1
	// TypeBurn captures one challenge issue: the consumed *physical*
	// pairs plus the client's challenge counter and per-key CRP budget
	// after the issue.
	TypeBurn Type = 2
	// TypeRemap captures a committed key rotation (the new key; the
	// CRP budget implicitly resets to zero).
	TypeRemap Type = 3
	// TypeCounter captures a challenge-counter advance that burns no
	// pairs (a key-update transaction drawing from a reserved plane).
	TypeCounter Type = 4
	// TypeDelete captures a client removal.
	TypeDelete Type = 5
)

func (t Type) String() string {
	switch t {
	case TypeEnroll:
		return "enroll"
	case TypeBurn:
		return "burn"
	case TypeRemap:
		return "remap"
	case TypeCounter:
		return "counter"
	case TypeDelete:
		return "delete"
	}
	return fmt.Sprintf("wal.Type(%d)", uint8(t))
}

// Record is one journal entry. Which fields are meaningful depends on
// Type; unused fields are zero.
type Record struct {
	Type     Type
	ClientID string

	// MapBytes is the errormap.Map binary encoding (TypeEnroll).
	MapBytes []byte
	// Key is the remap key (TypeEnroll: initial; TypeRemap: rotated).
	Key [32]byte
	// Reserved lists reserved voltage planes in mV (TypeEnroll).
	Reserved []int

	// Pairs are the consumed physical pairs (TypeBurn).
	Pairs []crp.PairBit
	// NextID is the client's challenge counter after the operation
	// (TypeBurn, TypeCounter).
	NextID uint64
	// CRPsSinceRemap is the per-key budget after the burn (TypeBurn).
	CRPsSinceRemap int
}

// maxPayload bounds a single record. The largest legitimate record is
// an enrollment map (a few hundred KB for the biggest simulated
// caches); the cap exists so a corrupt length prefix cannot ask the
// reader to allocate gigabytes.
const maxPayload = 1 << 26 // 64 MiB

// encodePayload serialises a record payload (type byte + fields).
func encodePayload(r *Record) []byte {
	// Rough capacity: fixed fields + map + pairs.
	buf := make([]byte, 0, 64+len(r.MapBytes)+len(r.Pairs)*6)
	buf = append(buf, byte(r.Type))
	buf = appendString(buf, r.ClientID)
	switch r.Type {
	case TypeEnroll:
		buf = appendBytes(buf, r.MapBytes)
		buf = append(buf, r.Key[:]...)
		buf = binary.AppendUvarint(buf, uint64(len(r.Reserved)))
		for _, v := range r.Reserved {
			buf = binary.AppendVarint(buf, int64(v))
		}
	case TypeBurn:
		buf = binary.AppendUvarint(buf, uint64(len(r.Pairs)))
		for _, p := range r.Pairs {
			buf = binary.AppendVarint(buf, int64(p.A))
			buf = binary.AppendVarint(buf, int64(p.B))
			buf = binary.AppendVarint(buf, int64(p.VddMV))
		}
		buf = binary.AppendUvarint(buf, r.NextID)
		buf = binary.AppendUvarint(buf, uint64(r.CRPsSinceRemap))
	case TypeRemap:
		buf = append(buf, r.Key[:]...)
	case TypeCounter:
		buf = binary.AppendUvarint(buf, r.NextID)
	case TypeDelete:
		// Client id only.
	}
	return buf
}

// decodePayload parses a record payload. It never panics on malformed
// input: every length is bounds-checked before use, so arbitrary bytes
// decode to an error at worst (the FuzzWALReplay contract).
func decodePayload(buf []byte) (*Record, error) {
	if len(buf) == 0 {
		return nil, fmt.Errorf("wal: empty record payload")
	}
	r := &Record{Type: Type(buf[0])}
	d := decoder{buf: buf[1:]}
	var err error
	if r.ClientID, err = d.str(); err != nil {
		return nil, err
	}
	switch r.Type {
	case TypeEnroll:
		if r.MapBytes, err = d.bytes(); err != nil {
			return nil, err
		}
		if err = d.array32(&r.Key); err != nil {
			return nil, err
		}
		n, err := d.count()
		if err != nil {
			return nil, err
		}
		r.Reserved = make([]int, n)
		for i := range r.Reserved {
			v, err := d.varint()
			if err != nil {
				return nil, err
			}
			r.Reserved[i] = int(v)
		}
	case TypeBurn:
		n, err := d.count()
		if err != nil {
			return nil, err
		}
		r.Pairs = make([]crp.PairBit, n)
		for i := range r.Pairs {
			a, err := d.varint()
			if err != nil {
				return nil, err
			}
			b, err := d.varint()
			if err != nil {
				return nil, err
			}
			v, err := d.varint()
			if err != nil {
				return nil, err
			}
			r.Pairs[i] = crp.PairBit{A: int(a), B: int(b), VddMV: int(v)}
		}
		if r.NextID, err = d.uvarint(); err != nil {
			return nil, err
		}
		c, err := d.uvarint()
		if err != nil {
			return nil, err
		}
		r.CRPsSinceRemap = int(c)
	case TypeRemap:
		if err = d.array32(&r.Key); err != nil {
			return nil, err
		}
	case TypeCounter:
		if r.NextID, err = d.uvarint(); err != nil {
			return nil, err
		}
	case TypeDelete:
		// Client id only.
	default:
		return nil, fmt.Errorf("wal: unknown record type %d", buf[0])
	}
	if len(d.buf) != 0 {
		return nil, fmt.Errorf("wal: %d trailing bytes after %s record", len(d.buf), r.Type)
	}
	return r, nil
}

// decoder is a bounds-checked cursor over a payload.
type decoder struct{ buf []byte }

func (d *decoder) uvarint() (uint64, error) {
	v, n := binary.Uvarint(d.buf)
	if n <= 0 {
		return 0, fmt.Errorf("wal: truncated uvarint")
	}
	d.buf = d.buf[n:]
	return v, nil
}

func (d *decoder) varint() (int64, error) {
	v, n := binary.Varint(d.buf)
	if n <= 0 {
		return 0, fmt.Errorf("wal: truncated varint")
	}
	d.buf = d.buf[n:]
	return v, nil
}

// count reads a length prefix and sanity-bounds it against the bytes
// that remain, so a hostile count cannot drive a huge allocation.
func (d *decoder) count() (int, error) {
	v, err := d.uvarint()
	if err != nil {
		return 0, err
	}
	if v > uint64(len(d.buf)) {
		return 0, fmt.Errorf("wal: count %d exceeds remaining %d bytes", v, len(d.buf))
	}
	return int(v), nil
}

func (d *decoder) bytes() ([]byte, error) {
	n, err := d.count()
	if err != nil {
		return nil, err
	}
	out := make([]byte, n)
	copy(out, d.buf[:n])
	d.buf = d.buf[n:]
	return out, nil
}

func (d *decoder) str() (string, error) {
	b, err := d.bytes()
	return string(b), err
}

func (d *decoder) array32(out *[32]byte) error {
	if len(d.buf) < 32 {
		return fmt.Errorf("wal: truncated 32-byte field")
	}
	copy(out[:], d.buf[:32])
	d.buf = d.buf[32:]
	return nil
}

func appendBytes(buf, b []byte) []byte {
	buf = binary.AppendUvarint(buf, uint64(len(b)))
	return append(buf, b...)
}

func appendString(buf []byte, s string) []byte {
	buf = binary.AppendUvarint(buf, uint64(len(s)))
	return append(buf, s...)
}
