package wal

import (
	"os"
	"path/filepath"
	"reflect"
	"testing"
	"time"
)

// collect drains n records from the subscription or fails the test.
func collect(t *testing.T, sub *Subscription, n int) []Committed {
	t.Helper()
	out := make([]Committed, 0, n)
	timeout := time.After(5 * time.Second)
	for len(out) < n {
		select {
		case c, ok := <-sub.C():
			if !ok {
				t.Fatalf("subscription closed after %d of %d records", len(out), n)
			}
			out = append(out, c)
		case <-timeout:
			t.Fatalf("timed out waiting for record %d of %d", len(out)+1, n)
		}
	}
	return out
}

func TestSubscribeDeliversCommittedRecords(t *testing.T) {
	w, err := Open(t.TempDir(), fastOpts())
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()

	sub, snapSeq := w.Subscribe(16)
	if snapSeq != 0 {
		t.Fatalf("fresh log snapshot seq = %d, want 0", snapSeq)
	}
	recs := sampleRecords()
	for _, rec := range recs {
		if err := w.Append(rec); err != nil {
			t.Fatal(err)
		}
	}
	got := collect(t, sub, len(recs))
	for i, c := range got {
		if c.Seq != uint64(i+1) {
			t.Errorf("record %d: seq = %d, want %d", i, c.Seq, i+1)
		}
		if !reflect.DeepEqual(c.Rec, recs[i]) {
			t.Errorf("record %d: decoded form diverged from appended record", i)
		}
		back, err := DecodeFrame(c.Frame)
		if err != nil {
			t.Fatalf("record %d: frame does not round-trip: %v", i, err)
		}
		if !reflect.DeepEqual(back, recs[i]) {
			t.Errorf("record %d: frame decodes to a different record", i)
		}
	}
	if got := w.CommittedSeq(); got != uint64(len(recs)) {
		t.Errorf("CommittedSeq = %d, want %d", got, len(recs))
	}
	sub.Close()
	if _, ok := <-sub.C(); ok {
		t.Error("channel still open after Close")
	}
}

func TestSubscribeSnapshotBoundaryIsGapless(t *testing.T) {
	w, err := Open(t.TempDir(), fastOpts())
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()

	recs := sampleRecords()
	if err := w.Append(recs[0]); err != nil {
		t.Fatal(err)
	}
	sub, snapSeq := w.Subscribe(16)
	defer sub.Close()
	if snapSeq != 1 {
		t.Fatalf("snapshot seq = %d, want 1", snapSeq)
	}
	// Records committed after Subscribe must all arrive, starting at
	// snapSeq+1.
	for _, rec := range recs[1:] {
		if err := w.Append(rec); err != nil {
			t.Fatal(err)
		}
	}
	got := collect(t, sub, len(recs)-1)
	for i, c := range got {
		if c.Seq != snapSeq+uint64(i)+1 {
			t.Errorf("record %d: seq = %d, want %d", i, c.Seq, snapSeq+uint64(i)+1)
		}
	}
}

func TestSubscribeOverrunClosesFeed(t *testing.T) {
	w, err := Open(t.TempDir(), fastOpts())
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()

	sub, _ := w.Subscribe(1)
	for i := 0; i < 8; i++ {
		if err := w.Append(&Record{Type: TypeCounter, ClientID: "dev-0", NextID: uint64(i)}); err != nil {
			t.Fatal(err)
		}
	}
	// A one-slot buffer cannot hold 8 records: the feed must have been
	// overrun and closed rather than blocking the commit path.
	deadline := time.After(5 * time.Second)
	for {
		select {
		case _, ok := <-sub.C():
			if !ok {
				return // closed, as required
			}
		case <-deadline:
			t.Fatal("overrun subscriber never closed")
		}
	}
}

func TestAppendFrameReplicatesByteIdentically(t *testing.T) {
	primaryDir, followerDir := t.TempDir(), t.TempDir()
	primary, err := Open(primaryDir, fastOpts())
	if err != nil {
		t.Fatal(err)
	}
	follower, err := Open(followerDir, fastOpts())
	if err != nil {
		t.Fatal(err)
	}

	sub, _ := primary.Subscribe(16)
	recs := sampleRecords()
	for _, rec := range recs {
		if err := primary.Append(rec); err != nil {
			t.Fatal(err)
		}
	}
	for _, c := range collect(t, sub, len(recs)) {
		seq, err := follower.AppendFrame(c.Frame)
		if err != nil {
			t.Fatal(err)
		}
		if seq != c.Seq {
			t.Errorf("follower seq %d != primary seq %d", seq, c.Seq)
		}
	}
	if err := primary.Close(); err != nil {
		t.Fatal(err)
	}
	if err := follower.Close(); err != nil {
		t.Fatal(err)
	}

	pb, err := os.ReadFile(filepath.Join(primaryDir, "wal-00000001.log"))
	if err != nil {
		t.Fatal(err)
	}
	fb, err := os.ReadFile(filepath.Join(followerDir, "wal-00000001.log"))
	if err != nil {
		t.Fatal(err)
	}
	if string(pb) != string(fb) {
		t.Fatalf("replicated segment diverged: primary %d bytes, follower %d bytes", len(pb), len(fb))
	}
}

func TestAppendFrameRejectsCorruptFrame(t *testing.T) {
	w, err := Open(t.TempDir(), fastOpts())
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()

	frame, err := EncodeFrame(&Record{Type: TypeDelete, ClientID: "dev-0"})
	if err != nil {
		t.Fatal(err)
	}
	frame[len(frame)-1] ^= 0xFF
	if _, err := w.AppendFrame(frame); err == nil {
		t.Fatal("corrupt frame accepted")
	}
	if got := w.CommittedSeq(); got != 0 {
		t.Fatalf("corrupt frame advanced commit seq to %d", got)
	}
}

// TestFollowerTornTailResync models a follower that crashes mid-apply:
// its log ends in a torn frame (the replicated record only partially
// reached the disk). On restart the torn tail is truncated, replay
// rebuilds the shorter prefix, and re-shipping the full frame feed —
// exactly what a snapshot-plus-feed catch-up does — converges the
// follower's log back to the primary's, byte for byte.
func TestFollowerTornTailResync(t *testing.T) {
	primaryDir, followerDir := t.TempDir(), t.TempDir()
	primary, err := Open(primaryDir, fastOpts())
	if err != nil {
		t.Fatal(err)
	}
	follower, err := Open(followerDir, fastOpts())
	if err != nil {
		t.Fatal(err)
	}

	sub, _ := primary.Subscribe(16)
	recs := sampleRecords()
	for _, rec := range recs {
		if err := primary.Append(rec); err != nil {
			t.Fatal(err)
		}
	}
	frames := collect(t, sub, len(recs))
	for _, c := range frames {
		if _, err := follower.AppendFrame(c.Frame); err != nil {
			t.Fatal(err)
		}
	}
	if err := follower.Close(); err != nil {
		t.Fatal(err)
	}

	// Crash mid-apply: tear the follower's final frame in half.
	segPath := filepath.Join(followerDir, "wal-00000001.log")
	st, err := os.Stat(segPath)
	if err != nil {
		t.Fatal(err)
	}
	lastLen := int64(len(frames[len(frames)-1].Frame))
	if err := os.Truncate(segPath, st.Size()-lastLen/2); err != nil {
		t.Fatal(err)
	}

	// Restart: Open truncates the torn frame, replay sees one record
	// fewer than the primary shipped.
	follower, err = Open(followerDir, fastOpts())
	if err != nil {
		t.Fatal(err)
	}
	var replayed int
	if err := follower.Replay(func(*Record) error { replayed++; return nil }); err != nil {
		t.Fatal(err)
	}
	if replayed != len(recs)-1 {
		t.Fatalf("replayed %d records after torn tail, want %d", replayed, len(recs)-1)
	}

	// Re-sync: ship the full feed again. The overlapping prefix is
	// re-appended (appliers are idempotent; the log grows but replay
	// converges), and the torn record lands whole this time.
	for _, c := range frames {
		if _, err := follower.AppendFrame(c.Frame); err != nil {
			t.Fatal(err)
		}
	}
	if err := follower.Close(); err != nil {
		t.Fatal(err)
	}
	follower, err = Open(followerDir, fastOpts())
	if err != nil {
		t.Fatal(err)
	}
	defer follower.Close()
	var got []*Record
	if err := follower.Replay(func(r *Record) error { got = append(got, r); return nil }); err != nil {
		t.Fatal(err)
	}
	// The tail of the replayed log must be exactly the shipped feed.
	if len(got) < len(recs) {
		t.Fatalf("replayed %d records after re-sync, want at least %d", len(got), len(recs))
	}
	tail := got[len(got)-len(recs):]
	for i, rec := range tail {
		if !reflect.DeepEqual(rec, recs[i]) {
			t.Errorf("record %d diverged after re-sync", i)
		}
	}
}
