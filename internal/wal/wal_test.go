package wal

import (
	"bytes"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"reflect"
	"sync"
	"testing"
	"time"

	"repro/internal/crp"
)

// fastOpts keeps group-commit latency negligible in tests.
func fastOpts() Options {
	return Options{FlushInterval: 200 * time.Microsecond, FlushBatch: 8}
}

func sampleRecords() []*Record {
	return []*Record{
		{
			Type:     TypeEnroll,
			ClientID: "dev-0",
			MapBytes: []byte{0xde, 0xad, 0xbe, 0xef, 0x00, 0x42},
			Key:      [32]byte{1, 2, 3, 31: 9},
			Reserved: []int{660, 700},
		},
		{
			Type:     TypeBurn,
			ClientID: "dev-0",
			Pairs: []crp.PairBit{
				{A: 3, B: 97, VddMV: 680},
				{A: 12, B: 4, VddMV: 680},
				{A: 0, B: 1, VddMV: 700},
			},
			NextID:         7,
			CRPsSinceRemap: 768,
		},
		{Type: TypeCounter, ClientID: "dev-0", NextID: 8},
		{Type: TypeRemap, ClientID: "dev-0", Key: [32]byte{0xaa, 31: 0xbb}},
		{Type: TypeDelete, ClientID: "dev-0"},
	}
}

func TestRecordRoundTrip(t *testing.T) {
	for _, rec := range sampleRecords() {
		got, err := decodePayload(encodePayload(rec))
		if err != nil {
			t.Fatalf("%s: decode: %v", rec.Type, err)
		}
		if !reflect.DeepEqual(rec, got) {
			t.Errorf("%s: round trip mismatch:\n want %+v\n  got %+v", rec.Type, rec, got)
		}
	}
}

func TestDecodeRejectsTrailingGarbage(t *testing.T) {
	payload := encodePayload(&Record{Type: TypeDelete, ClientID: "x"})
	if _, err := decodePayload(append(payload, 0x01)); err == nil {
		t.Fatal("trailing bytes accepted")
	}
}

// replayAll collects every record the WAL replays.
func replayAll(t *testing.T, w *WAL) []*Record {
	t.Helper()
	var out []*Record
	if err := w.Replay(func(r *Record) error { out = append(out, r); return nil }); err != nil {
		t.Fatalf("replay: %v", err)
	}
	return out
}

func TestAppendCloseReopenReplay(t *testing.T) {
	dir := t.TempDir()
	w, err := Open(dir, fastOpts())
	if err != nil {
		t.Fatal(err)
	}
	want := sampleRecords()
	for _, rec := range want {
		if err := w.Append(rec); err != nil {
			t.Fatalf("append: %v", err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	if err := w.Append(want[0]); err != ErrClosed {
		t.Fatalf("append after close: got %v, want ErrClosed", err)
	}

	w2, err := Open(dir, fastOpts())
	if err != nil {
		t.Fatal(err)
	}
	defer w2.Close()
	got := replayAll(t, w2)
	if !reflect.DeepEqual(want, got) {
		t.Fatalf("replay mismatch:\n want %d records %+v\n  got %d records %+v", len(want), want, len(got), got)
	}
}

func TestGroupCommitConcurrentAppends(t *testing.T) {
	dir := t.TempDir()
	w, err := Open(dir, fastOpts())
	if err != nil {
		t.Fatal(err)
	}
	const goroutines, perG = 8, 50
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				rec := &Record{Type: TypeCounter, ClientID: fmt.Sprintf("dev-%d", g), NextID: uint64(i)}
				if err := w.Append(rec); err != nil {
					t.Errorf("append: %v", err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	w2, err := Open(dir, fastOpts())
	if err != nil {
		t.Fatal(err)
	}
	defer w2.Close()
	got := replayAll(t, w2)
	if len(got) != goroutines*perG {
		t.Fatalf("replayed %d records, want %d", len(got), goroutines*perG)
	}
	// Per-client order must match append order even though goroutines
	// interleave in the shared batch queue.
	next := map[string]uint64{}
	for _, rec := range got {
		if rec.NextID != next[rec.ClientID] {
			t.Fatalf("client %s: record out of order: got seq %d, want %d", rec.ClientID, rec.NextID, next[rec.ClientID])
		}
		next[rec.ClientID]++
	}
}

func TestSegmentRotation(t *testing.T) {
	dir := t.TempDir()
	opt := fastOpts()
	opt.SegmentBytes = 256 // rotate every few records
	w, err := Open(dir, opt)
	if err != nil {
		t.Fatal(err)
	}
	const n = 100
	for i := 0; i < n; i++ {
		if err := w.Append(&Record{Type: TypeCounter, ClientID: "dev-0", NextID: uint64(i)}); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	segs, err := listSegments(osFS{}, dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(segs) < 2 {
		t.Fatalf("expected rotation to produce multiple segments, got %d", len(segs))
	}
	w2, err := Open(dir, opt)
	if err != nil {
		t.Fatal(err)
	}
	defer w2.Close()
	got := replayAll(t, w2)
	if len(got) != n {
		t.Fatalf("replayed %d records across %d segments, want %d", len(got), len(segs), n)
	}
	for i, rec := range got {
		if rec.NextID != uint64(i) {
			t.Fatalf("record %d out of order: NextID %d", i, rec.NextID)
		}
	}
}

func TestCompaction(t *testing.T) {
	dir := t.TempDir()
	opt := fastOpts()
	opt.SegmentBytes = 256
	w, err := Open(dir, opt)
	if err != nil {
		t.Fatal(err)
	}
	var stateMu sync.Mutex
	applied := 0
	for i := 0; i < 40; i++ {
		if err := w.Append(&Record{Type: TypeCounter, ClientID: "dev-0", NextID: uint64(i)}); err != nil {
			t.Fatal(err)
		}
		applied++
	}
	save := func(out io.Writer) error {
		stateMu.Lock()
		defer stateMu.Unlock()
		_, err := fmt.Fprintf(out, "applied=%d\n", applied)
		return err
	}
	if err := w.Compact(save); err != nil {
		t.Fatalf("compact: %v", err)
	}
	segs, err := listSegments(osFS{}, dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(segs) != 1 {
		t.Fatalf("compaction left %d segments, want 1 (the live one)", len(segs))
	}
	// Post-compaction appends land in the surviving segment.
	for i := 40; i < 50; i++ {
		if err := w.Append(&Record{Type: TypeCounter, ClientID: "dev-0", NextID: uint64(i)}); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	w2, err := Open(dir, opt)
	if err != nil {
		t.Fatal(err)
	}
	defer w2.Close()
	snap, ok, err := w2.LatestSnapshot()
	if err != nil || !ok {
		t.Fatalf("snapshot missing after compaction: ok=%v err=%v", ok, err)
	}
	b, _ := io.ReadAll(snap)
	snap.Close()
	if string(b) != "applied=40\n" {
		t.Fatalf("snapshot content %q, want applied=40", b)
	}
	got := replayAll(t, w2)
	if len(got) != 10 {
		t.Fatalf("tail replay has %d records, want the 10 post-compaction ones", len(got))
	}
	if got[0].NextID != 40 || got[9].NextID != 49 {
		t.Fatalf("tail replay range [%d,%d], want [40,49]", got[0].NextID, got[9].NextID)
	}
}

// TestKillMidWriteEveryTruncation simulates a crash at every byte
// offset inside the final record: for each truncation point the log
// must reopen cleanly, replay every fully-committed record, and
// discard the torn one.
func TestKillMidWriteEveryTruncation(t *testing.T) {
	master := t.TempDir()
	w, err := Open(master, fastOpts())
	if err != nil {
		t.Fatal(err)
	}
	want := sampleRecords()
	for _, rec := range want {
		if err := w.Append(rec); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	segPath := segmentPath(master, 1)
	data, err := os.ReadFile(segPath)
	if err != nil {
		t.Fatal(err)
	}
	_, ends, err := scanBytes(data)
	if err != nil || len(ends) != len(want) {
		t.Fatalf("master scan: %d records, err=%v", len(ends), err)
	}
	tailStart := ends[len(ends)-2] // torn record = the final one

	for cut := tailStart; cut < int64(len(data)); cut++ {
		dir := t.TempDir()
		if err := os.WriteFile(segmentPath(dir, 1), data[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		w, err := Open(dir, fastOpts())
		if err != nil {
			t.Fatalf("cut=%d: reopen: %v", cut, err)
		}
		got := replayAll(t, w)
		if len(got) != len(want)-1 {
			t.Fatalf("cut=%d: replayed %d records, want %d committed ones", cut, len(got), len(want)-1)
		}
		if !reflect.DeepEqual(want[:len(want)-1], got) {
			t.Fatalf("cut=%d: committed records corrupted", cut)
		}
		// The log must keep working after truncation: append the torn
		// record again and see it replay on the next open.
		if err := w.Append(want[len(want)-1]); err != nil {
			t.Fatalf("cut=%d: append after recovery: %v", cut, err)
		}
		if err := w.Close(); err != nil {
			t.Fatal(err)
		}
		w2, err := Open(dir, fastOpts())
		if err != nil {
			t.Fatal(err)
		}
		got = replayAll(t, w2)
		w2.Close()
		if !reflect.DeepEqual(want, got) {
			t.Fatalf("cut=%d: post-recovery append lost", cut)
		}
	}
}

// TestCorruptCRCMidLog flips a byte inside an early record: that is
// real corruption, not a torn tail, and replay of a multi-segment log
// must refuse it rather than silently skip committed mutations.
func TestCorruptCRCMidLog(t *testing.T) {
	dir := t.TempDir()
	opt := fastOpts()
	opt.SegmentBytes = 128 // force several segments
	w, err := Open(dir, opt)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 40; i++ {
		if err := w.Append(&Record{Type: TypeCounter, ClientID: "dev-0", NextID: uint64(i)}); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	segs, err := listSegments(osFS{}, dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(segs) < 3 {
		t.Fatalf("need ≥3 segments, got %d", len(segs))
	}
	// Corrupt a payload byte in the FIRST segment.
	first := segmentPath(dir, segs[0])
	data, err := os.ReadFile(first)
	if err != nil {
		t.Fatal(err)
	}
	data[segHeaderLen+frameHeader] ^= 0xff
	if err := os.WriteFile(first, data, 0o644); err != nil {
		t.Fatal(err)
	}

	w2, err := Open(dir, opt)
	if err != nil {
		t.Fatalf("open after mid-log corruption: %v", err)
	}
	defer w2.Close()
	if err := w2.Replay(func(*Record) error { return nil }); err == nil {
		t.Fatal("replay over mid-log corruption succeeded; want loud failure")
	}
}

// TestCorruptCRCTailDiscarded flips a byte in the final record of the
// last segment: indistinguishable from a torn write, so recovery
// keeps the clean prefix and drops it.
func TestCorruptCRCTailDiscarded(t *testing.T) {
	dir := t.TempDir()
	w, err := Open(dir, fastOpts())
	if err != nil {
		t.Fatal(err)
	}
	want := sampleRecords()
	for _, rec := range want {
		if err := w.Append(rec); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	segPath := segmentPath(dir, 1)
	data, err := os.ReadFile(segPath)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)-1] ^= 0xff
	if err := os.WriteFile(segPath, data, 0o644); err != nil {
		t.Fatal(err)
	}
	w2, err := Open(dir, fastOpts())
	if err != nil {
		t.Fatal(err)
	}
	defer w2.Close()
	got := replayAll(t, w2)
	if !reflect.DeepEqual(want[:len(want)-1], got) {
		t.Fatalf("tail CRC corruption: got %d records, want the %d committed ones intact", len(got), len(want)-1)
	}
}

// TestReplayIdempotence: replaying the same log twice must visit the
// identical record sequence (the appliers upstream rely on this plus
// their own idempotence).
func TestReplayIdempotence(t *testing.T) {
	dir := t.TempDir()
	w, err := Open(dir, fastOpts())
	if err != nil {
		t.Fatal(err)
	}
	for _, rec := range sampleRecords() {
		if err := w.Append(rec); err != nil {
			t.Fatal(err)
		}
	}
	first := replayAll(t, w)
	second := replayAll(t, w)
	if !reflect.DeepEqual(first, second) {
		t.Fatal("two replays of the same log disagree")
	}
	w.Close()
}

func TestAtomicWriteFileReplacesDurably(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "state.json")
	if err := AtomicWriteFile(path, func(w io.Writer) error {
		_, err := w.Write([]byte("v1"))
		return err
	}); err != nil {
		t.Fatal(err)
	}
	// A failing writer must leave the previous content untouched and
	// no temp litter behind.
	if err := AtomicWriteFile(path, func(w io.Writer) error {
		w.Write([]byte("half"))
		return fmt.Errorf("boom")
	}); err == nil {
		t.Fatal("failing writer reported success")
	}
	b, err := os.ReadFile(path)
	if err != nil || !bytes.Equal(b, []byte("v1")) {
		t.Fatalf("content after failed rewrite: %q err=%v, want v1 intact", b, err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 {
		t.Fatalf("temp litter left behind: %d entries", len(entries))
	}
}
