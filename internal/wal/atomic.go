package wal

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
)

// AtomicWriteFile durably replaces path with the bytes produced by
// write: the content goes to a temp file in the same directory, is
// fsynced, renamed over path, and the directory entry is fsynced. A
// crash at any point leaves either the old file or the new one —
// never a truncated hybrid. Both the auth daemon's -state snapshots
// and WAL compaction snapshots go through this helper; the classic
// failure it prevents is os.Create over the only copy of the
// enrollment database followed by a crash mid-write.
func AtomicWriteFile(path string, write func(io.Writer) error) (err error) {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".tmp-*")
	if err != nil {
		return fmt.Errorf("wal: create temp file: %w", err)
	}
	defer func() {
		if err != nil {
			tmp.Close()
			os.Remove(tmp.Name())
		}
	}()
	if err = write(tmp); err != nil {
		return err
	}
	if err = tmp.Sync(); err != nil {
		return fmt.Errorf("wal: sync temp file: %w", err)
	}
	if err = tmp.Close(); err != nil {
		return fmt.Errorf("wal: close temp file: %w", err)
	}
	if err = os.Rename(tmp.Name(), path); err != nil {
		return fmt.Errorf("wal: rename into place: %w", err)
	}
	return syncDir(dir)
}

// syncDir fsyncs a directory so renames and creations within it are
// durable.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return fmt.Errorf("wal: open dir for sync: %w", err)
	}
	defer d.Close()
	if err := d.Sync(); err != nil {
		return fmt.Errorf("wal: sync dir: %w", err)
	}
	return nil
}
