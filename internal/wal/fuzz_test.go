package wal

import (
	"testing"
)

// FuzzWALReplay feeds arbitrary bytes to the segment scanner. The
// contract recovery depends on: the scanner never panics — it either
// returns a clean prefix of intact records (possibly empty) or an
// error, and the reported clean length is always consistent with the
// records it returned.
func FuzzWALReplay(f *testing.F) {
	// Seed with a well-formed segment...
	valid := []byte(segMagic)
	for _, rec := range []*Record{
		{Type: TypeEnroll, ClientID: "dev-0", MapBytes: []byte{1, 2, 3}, Key: [32]byte{7}, Reserved: []int{680}},
		{Type: TypeBurn, ClientID: "dev-0", Pairs: nil, NextID: 1, CRPsSinceRemap: 64},
		{Type: TypeDelete, ClientID: "dev-0"},
	} {
		valid = appendFrame(valid, rec)
	}
	f.Add(valid)
	// ...its torn prefix, the bare magic, and pure garbage.
	f.Add(valid[:len(valid)-3])
	f.Add([]byte(segMagic))
	f.Add([]byte("not a wal segment at all"))

	f.Fuzz(func(t *testing.T, data []byte) {
		recs, ends, err := scanBytes(data)
		if len(recs) != len(ends) {
			t.Fatalf("%d records but %d end offsets", len(recs), len(ends))
		}
		if err == nil && len(data) >= int(segHeaderLen) {
			// A clean scan must account for every byte.
			want := segHeaderLen
			if len(ends) > 0 {
				want = ends[len(ends)-1]
			}
			if want != int64(len(data)) {
				t.Fatalf("clean scan ended at %d of %d bytes", want, len(data))
			}
		}
		for i, end := range ends {
			if end <= segHeaderLen || end > int64(len(data)) {
				t.Fatalf("record %d end offset %d outside (%d,%d]", i, end, segHeaderLen, len(data))
			}
			if i > 0 && end <= ends[i-1] {
				t.Fatalf("record %d end offset %d not increasing", i, end)
			}
		}
		// Every returned record must survive a re-encode/decode cycle:
		// the scanner only hands out records the writer could have
		// produced.
		for i, rec := range recs {
			if _, err := decodePayload(encodePayload(rec)); err != nil {
				t.Fatalf("record %d not round-trippable: %v", i, err)
			}
		}
	})
}

// appendFrame appends one framed record to a segment image (test
// helper mirroring the writer's framing).
func appendFrame(seg []byte, rec *Record) []byte {
	payload := encodePayload(rec)
	var hdr [frameHeader]byte
	putFrameHeader(hdr[:], payload)
	seg = append(seg, hdr[:]...)
	return append(seg, payload...)
}
