package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/crp"
)

// Options tunes the log.
type Options struct {
	// SegmentBytes rotates to a fresh segment file once the current
	// one reaches this size. Default 4 MiB.
	SegmentBytes int64
	// FlushInterval caps how long the writer spends accumulating one
	// batch under sustained fan-in. The writer never idles waiting
	// for records — a batch commits as soon as the queue empties — so
	// the interval binds only when enough concurrent appenders keep
	// the queue non-empty without ever filling FlushBatch. Default
	// 2 ms.
	FlushInterval time.Duration
	// FlushBatch fsyncs early once this many records are queued, so a
	// burst pays one fsync per batch rather than one per record.
	// Default 64. 1 degenerates to fsync-per-record.
	FlushBatch int
	// NoSync skips fsync entirely (benchmark baselines and tests that
	// measure the batching machinery alone — never production).
	NoSync bool
	// FS substitutes the filesystem under the segment files. nil means
	// the host filesystem; fault-injection tests supply a failing one.
	FS FS
}

func (o Options) withDefaults() Options {
	if o.SegmentBytes <= 0 {
		o.SegmentBytes = 4 << 20
	}
	if o.FlushInterval <= 0 {
		o.FlushInterval = 2 * time.Millisecond
	}
	if o.FlushBatch <= 0 {
		o.FlushBatch = 64
	}
	if o.FS == nil {
		o.FS = osFS{}
	}
	return o
}

const (
	segMagic     = "ACWALv1\n"
	segHeaderLen = int64(len(segMagic))
	frameHeader  = 8 // u32 length + u32 CRC32C
	snapshotName = "snapshot.json"
	segPrefix    = "wal-"
	segSuffix    = ".log"
)

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// putFrameHeader fills an 8-byte frame header (length + CRC32C) for a
// payload.
func putFrameHeader(hdr, payload []byte) {
	binary.LittleEndian.PutUint32(hdr[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(hdr[4:8], crc32.Checksum(payload, castagnoli))
}

// ErrClosed is returned by operations on a closed WAL.
var ErrClosed = errors.New("wal: closed")

// request is one unit of work for the writer goroutine: a frame to
// append, or (frame == nil) a flush-and-rotate barrier. rec is the
// decoded form of frame, carried along so the commit path can publish
// it to subscribers without re-decoding; seq is assigned by the
// writer once the record is durable.
type request struct {
	frame  []byte
	rec    *Record
	rotate bool
	seq    uint64
	errc   chan error
}

// WAL is an append-only write-ahead log over a directory of segment
// files. Appends from any number of goroutines funnel into a single
// writer goroutine that batches queued records into one write+fsync
// (group commit); Append returns only once the record is durable, so
// the caller's fsync cost is amortised across the batch.
type WAL struct {
	dir string
	opt Options

	reqs chan *request
	done chan struct{}

	// closedMu guards closed against the Append/Compact send path:
	// senders hold it shared while pushing onto reqs, Close holds it
	// exclusive while closing the channel. (The writer-goroutine fields
	// below are confined to the writer loop and need no lock.)
	closedMu sync.RWMutex
	closed   bool

	// seg is the index of the segment currently being appended to;
	// read by Compact to know which segments are sealed.
	seg atomic.Uint64

	// compactMu serialises Compact calls.
	compactMu sync.Mutex

	// subMu guards subs and orders publication: the writer publishes
	// committed records and assigns sequence numbers under it, so a
	// Subscribe sees an exact snapshot boundary and a Close never
	// races a send. commitSeq is the count of records committed so
	// far, written only under subMu; committed mirrors it for
	// lock-free readers.
	subMu     sync.Mutex
	subs      []*Subscription
	commitSeq uint64
	committed atomic.Uint64

	// Writer-goroutine state.
	f    File
	bw   bufWriter
	size int64
	// broken latches when a failed batch write cannot be repaired
	// (truncating back to the last clean record boundary also failed):
	// the on-disk tail is now indeterminate, so further appends fail
	// fast with ErrBroken rather than stacking frames after garbage.
	broken bool
}

// ErrBroken is returned by appends after an unrepairable write fault.
var ErrBroken = errors.New("wal: writer disabled after unrepaired write fault")

// bufWriter is the minimal buffered-writer surface the writer loop
// needs; a plain wrapper keeps the reset-on-rotate explicit.
type bufWriter struct {
	f   File
	buf []byte
}

func (b *bufWriter) reset(f File) { b.f, b.buf = f, b.buf[:0] }

func (b *bufWriter) write(p []byte) {
	b.buf = append(b.buf, p...)
}

func (b *bufWriter) flush() error {
	if len(b.buf) == 0 {
		return nil
	}
	_, err := b.f.Write(b.buf)
	b.buf = b.buf[:0]
	return err
}

// Open opens (creating if needed) the log directory and prepares the
// last segment for appending. A torn final record left by a crash is
// truncated away; fully-committed records are never touched. Call
// Replay before the first Append to rebuild state.
func Open(dir string, opt Options) (*WAL, error) {
	opt = opt.withDefaults()
	if err := opt.FS.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("wal: create dir: %w", err)
	}
	segs, err := listSegments(opt.FS, dir)
	if err != nil {
		return nil, err
	}
	w := &WAL{
		dir:  dir,
		opt:  opt,
		reqs: make(chan *request, 256),
		done: make(chan struct{}),
	}
	if len(segs) == 0 {
		f, err := createSegment(opt.FS, dir, 1)
		if err != nil {
			return nil, err
		}
		w.f = f
		w.seg.Store(1)
		w.size = segHeaderLen
	} else {
		last := segs[len(segs)-1]
		path := segmentPath(dir, last)
		// Scan the tail segment and truncate any torn final frame so
		// appends resume on a clean record boundary.
		_, ends, scanErr := scanSegment(opt.FS, path)
		cleanLen := segHeaderLen
		if len(ends) > 0 {
			cleanLen = ends[len(ends)-1]
		}
		f, err := opt.FS.OpenFile(path, os.O_RDWR, 0o644)
		if err != nil {
			return nil, fmt.Errorf("wal: open segment: %w", err)
		}
		st, err := f.Stat()
		if err != nil {
			f.Close()
			return nil, fmt.Errorf("wal: stat segment: %w", err)
		}
		if scanErr != nil || st.Size() > cleanLen {
			if err := f.Truncate(cleanLen); err != nil {
				f.Close()
				return nil, fmt.Errorf("wal: truncate torn tail: %w", err)
			}
			if err := f.Sync(); err != nil {
				f.Close()
				return nil, fmt.Errorf("wal: sync truncated segment: %w", err)
			}
		}
		if cleanLen == segHeaderLen {
			// A crash inside segment creation can leave a file whose
			// magic header never fully landed (and the truncate above
			// may have zero-extended a short one). Rewrite the header so
			// appends land behind real magic.
			if err := repairHeader(f); err != nil {
				f.Close()
				return nil, err
			}
		}
		if _, err := f.Seek(cleanLen, io.SeekStart); err != nil {
			f.Close()
			return nil, fmt.Errorf("wal: seek segment end: %w", err)
		}
		w.f = f
		w.seg.Store(last)
		w.size = cleanLen
	}
	w.bw.reset(w.f)
	go w.run()
	return w, nil
}

// Dir returns the log directory.
func (w *WAL) Dir() string { return w.dir }

// Append encodes the record, queues it for the group-commit writer,
// and blocks until the batch containing it has been written and
// fsynced. Safe for concurrent use.
func (w *WAL) Append(rec *Record) error {
	_, err := w.AppendRecord(rec)
	return err
}

// AppendRecord is Append returning the commit sequence number the
// record was assigned: the position of the record in the durable
// commit order, as seen by subscribers. Replicated journals use it to
// wait for follower acknowledgement of exactly this record.
func (w *WAL) AppendRecord(rec *Record) (uint64, error) {
	frame, err := EncodeFrame(rec)
	if err != nil {
		return 0, err
	}
	req := &request{frame: frame, rec: rec, errc: make(chan error, 1)}
	if err := w.submit(req); err != nil {
		return 0, err
	}
	return req.seq, nil
}

// AppendFrame appends a frame produced by EncodeFrame (or shipped
// verbatim from another log's subscriber) after verifying its CRC, so
// a replica's segments stay byte-identical to the primary's. Returns
// the local commit sequence number.
func (w *WAL) AppendFrame(frame []byte) (uint64, error) {
	rec, err := DecodeFrame(frame)
	if err != nil {
		return 0, err
	}
	own := make([]byte, len(frame))
	copy(own, frame)
	req := &request{frame: own, rec: rec, errc: make(chan error, 1)}
	if err := w.submit(req); err != nil {
		return 0, err
	}
	return req.seq, nil
}

// EncodeFrame serialises rec as one on-disk log frame: the 8-byte
// length+CRC32C header followed by the record payload. The bytes are
// exactly what Append writes to a segment, so frames can be shipped
// across the wire and re-appended on a replica without re-encoding.
func EncodeFrame(rec *Record) ([]byte, error) {
	payload := encodePayload(rec)
	if len(payload) > maxPayload {
		return nil, fmt.Errorf("wal: record payload %d bytes exceeds cap", len(payload))
	}
	frame := make([]byte, frameHeader+len(payload))
	putFrameHeader(frame[:frameHeader], payload)
	copy(frame[frameHeader:], payload)
	return frame, nil
}

// DecodeFrame verifies and decodes one frame produced by EncodeFrame.
// The CRC is checked end-to-end, so a frame that crossed a network
// carries the same integrity guarantee as one read back from disk.
func DecodeFrame(frame []byte) (*Record, error) {
	if len(frame) < frameHeader {
		return nil, fmt.Errorf("wal: frame shorter than header: %d bytes", len(frame))
	}
	n := binary.LittleEndian.Uint32(frame[0:4])
	if int(n) != len(frame)-frameHeader {
		return nil, fmt.Errorf("wal: frame length %d disagrees with header %d", len(frame)-frameHeader, n)
	}
	payload := frame[frameHeader:]
	if got, want := crc32.Checksum(payload, castagnoli), binary.LittleEndian.Uint32(frame[4:8]); got != want {
		return nil, fmt.Errorf("wal: frame CRC mismatch: %08x != %08x", got, want)
	}
	return decodePayload(payload)
}

func (w *WAL) submit(req *request) error {
	w.closedMu.RLock()
	if w.closed {
		w.closedMu.RUnlock()
		return ErrClosed
	}
	w.reqs <- req
	w.closedMu.RUnlock()
	return <-req.errc
}

// run is the single writer goroutine: it pulls a request, gathers a
// batch behind it, commits the batch with one fsync, and wakes every
// waiter with the shared outcome.
func (w *WAL) run() {
	defer close(w.done)
	for req := range w.reqs {
		batch := w.gather(req)
		err := w.commit(batch)
		for _, r := range batch {
			r.errc <- err
		}
	}
	// Close drained the queue; make whatever the buffer still held
	// durable and release the file.
	w.bw.flush()
	if !w.opt.NoSync {
		w.f.Sync()
	}
	w.f.Close()
	// Detach every subscriber: the log is done, there is nothing more
	// to stream.
	w.subMu.Lock()
	for _, s := range w.subs {
		s.closeLocked()
	}
	w.subs = nil
	w.subMu.Unlock()
}

// gather accumulates the requests already queued behind first, up to
// FlushBatch records or FlushInterval of accumulation. It never idles
// waiting for stragglers: appenders block until their batch commits,
// so a request that isn't queued yet cannot arrive until this batch
// finishes — the writer commits the moment the queue empties. Under
// concurrent load the batch still grows naturally, because new
// appenders queue while the previous batch's fsync is in flight.
func (w *WAL) gather(first *request) []*request {
	batch := []*request{first}
	if first.rotate || w.opt.FlushBatch <= 1 {
		return batch
	}
	deadline := time.NewTimer(w.opt.FlushInterval)
	defer deadline.Stop()
	for len(batch) < w.opt.FlushBatch {
		select {
		case req, ok := <-w.reqs:
			if !ok {
				return batch
			}
			batch = append(batch, req)
			if req.rotate {
				return batch
			}
		case <-deadline.C:
			return batch
		default:
			// Queue empty: commit what we have.
			return batch
		}
	}
	return batch
}

// commit writes the batch's frames, flushes, fsyncs once, and rotates
// the segment if the batch asked for it or the size threshold tripped.
// A failed write is repaired by truncating back to the clean boundary
// the batch started at, so a transient disk fault costs the batch (the
// callers see errors and retry) without corrupting the log mid-
// segment; an fsync failure leaves the frames in place, where replay
// applies them idempotently even though the appenders saw an error.
func (w *WAL) commit(batch []*request) error {
	if w.broken {
		return ErrBroken
	}
	rotate := false
	pre := w.size
	for _, r := range batch {
		if r.rotate {
			rotate = true
			continue
		}
		w.bw.write(r.frame)
		w.size += int64(len(r.frame))
	}
	if err := w.bw.flush(); err != nil {
		w.repair(pre)
		return fmt.Errorf("wal: write segment: %w", err)
	}
	if !w.opt.NoSync {
		if err := w.f.Sync(); err != nil {
			return fmt.Errorf("wal: fsync segment: %w", err)
		}
	}
	w.publish(batch)
	if rotate || w.size >= w.opt.SegmentBytes {
		return w.rotate()
	}
	return nil
}

// publish assigns commit sequence numbers to the batch's records and
// fans them out to subscribers. It runs only after the batch is
// durable: an fsync failure means the appenders saw an error, so the
// records must not be replicated even if the frames reached the disk
// (replicas pick them up from the next snapshot instead, where replay
// has already applied them idempotently). A subscriber whose buffer
// is full is overrun: its channel is closed and it must re-sync from
// a snapshot — that bounds divergence without ever blocking the
// commit path.
func (w *WAL) publish(batch []*request) {
	w.subMu.Lock()
	defer w.subMu.Unlock()
	for _, r := range batch {
		if r.rotate {
			continue
		}
		w.commitSeq++
		r.seq = w.commitSeq
	}
	w.committed.Store(w.commitSeq)
	if len(w.subs) == 0 {
		return
	}
	live := w.subs[:0]
	for _, s := range w.subs {
		ok := true
		for _, r := range batch {
			if r.rotate {
				continue
			}
			select {
			case s.ch <- Committed{Seq: r.seq, Rec: r.rec, Frame: r.frame}:
			default:
				ok = false
			}
			if !ok {
				break
			}
		}
		if ok {
			live = append(live, s)
		} else {
			s.closeLocked()
		}
	}
	w.subs = live
}

// Committed is one durably-committed record as delivered to
// subscribers. Rec and Frame alias the writer's buffers and must be
// treated as read-only; Frame is the exact on-disk frame (header +
// payload) and round-trips through DecodeFrame/AppendFrame.
type Committed struct {
	Seq   uint64
	Rec   *Record
	Frame []byte
}

// Subscription is a live feed of committed records. The channel is
// closed when the subscriber falls too far behind (buffer overrun),
// when the subscription is Closed, or when the log itself closes; in
// every case the consumer re-syncs from a snapshot.
type Subscription struct {
	w  *WAL
	ch chan Committed
	// closed is guarded by w.subMu.
	closed bool
}

// C is the committed-record feed.
func (s *Subscription) C() <-chan Committed { return s.ch }

// Close detaches the subscription and closes its channel. Safe to
// call concurrently with publication and more than once.
func (s *Subscription) Close() {
	s.w.subMu.Lock()
	defer s.w.subMu.Unlock()
	s.closeLocked()
	for i, x := range s.w.subs {
		if x == s {
			s.w.subs = append(s.w.subs[:i], s.w.subs[i+1:]...)
			break
		}
	}
}

// closeLocked closes the channel once. Caller holds w.subMu.
func (s *Subscription) closeLocked() {
	if !s.closed {
		s.closed = true
		close(s.ch)
	}
}

// Subscribe registers a feed of every record committed after the
// returned sequence number. buf bounds how far the subscriber may lag
// before it is overrun (≤ 0 means 256). The returned seq is exact
// under subMu: a state snapshot taken after Subscribe returns covers
// every record at or below it, and the feed delivers every record
// above it — together they form a gapless handoff for replica
// catch-up.
func (w *WAL) Subscribe(buf int) (*Subscription, uint64) {
	if buf <= 0 {
		buf = 256
	}
	s := &Subscription{w: w, ch: make(chan Committed, buf)}
	w.subMu.Lock()
	w.subs = append(w.subs, s)
	seq := w.commitSeq
	w.subMu.Unlock()
	return s, seq
}

// CommittedSeq returns the sequence number of the most recently
// committed record. The primary's value minus a follower's highest
// acknowledged sequence is the follower's replication lag.
func (w *WAL) CommittedSeq() uint64 { return w.committed.Load() }

// repair restores the segment to the clean record boundary a failed
// batch write started at. An unknown prefix of the batch may have
// reached the file; truncating it away re-establishes the invariant
// that the file ends exactly on a committed frame. If even that fails
// the tail is indeterminate and the writer latches broken.
func (w *WAL) repair(pre int64) {
	if err := w.f.Truncate(pre); err != nil {
		w.broken = true
		return
	}
	if _, err := w.f.Seek(pre, io.SeekStart); err != nil {
		w.broken = true
		return
	}
	w.size = pre
}

// rotate seals the current segment and starts the next one. The next
// segment is created before the current one is released so a creation
// failure (disk full, dead device) leaves the writer on its current,
// still-valid segment.
func (w *WAL) rotate() error {
	next := w.seg.Load() + 1
	f, err := createSegment(w.opt.FS, w.dir, next)
	if err != nil {
		return err
	}
	if err := w.f.Close(); err != nil {
		// The sealed segment's records are already fsynced; the close
		// failure costs nothing replay needs.
		w.f = f
		w.bw.reset(f)
		w.size = segHeaderLen
		w.seg.Store(next)
		return fmt.Errorf("wal: close sealed segment: %w", err)
	}
	w.f = f
	w.bw.reset(f)
	w.size = segHeaderLen
	w.seg.Store(next)
	return nil
}

// Close flushes and fsyncs outstanding records and releases the log.
// Further Appends return ErrClosed.
func (w *WAL) Close() error {
	w.closedMu.Lock()
	if w.closed {
		w.closedMu.Unlock()
		return ErrClosed
	}
	w.closed = true
	close(w.reqs)
	w.closedMu.Unlock()
	<-w.done
	return nil
}

// Replay feeds every intact record, across all segments in order, to
// apply. Call it after Open and before the first Append. A torn tail
// on the final segment has already been truncated by Open; a corrupt
// frame in any earlier position is real data loss and returns an
// error without applying further records.
func (w *WAL) Replay(apply func(*Record) error) error {
	segs, err := listSegments(w.opt.FS, w.dir)
	if err != nil {
		return err
	}
	for i, idx := range segs {
		recs, _, err := scanSegment(w.opt.FS, segmentPath(w.dir, idx))
		if err != nil && i != len(segs)-1 {
			return fmt.Errorf("wal: segment %d corrupt mid-log: %w", idx, err)
		}
		// On the last segment a scan error can only describe bytes
		// past the clean prefix Open already discarded.
		for _, rec := range recs {
			if err := apply(rec); err != nil {
				return err
			}
		}
	}
	return nil
}

// LatestSnapshot opens the compaction snapshot, if one exists.
func (w *WAL) LatestSnapshot() (io.ReadCloser, bool, error) {
	f, err := os.Open(filepath.Join(w.dir, snapshotName))
	if errors.Is(err, os.ErrNotExist) {
		return nil, false, nil
	}
	if err != nil {
		return nil, false, fmt.Errorf("wal: open snapshot: %w", err)
	}
	return f, true, nil
}

// Compact folds the log into a fresh snapshot: it seals the current
// segment behind a flush barrier, writes the snapshot atomically
// (temp file, fsync, rename), and deletes the sealed segments the
// snapshot now covers. save must serialise the *live* server state
// (auth.Server.SaveState); because every journaled mutation is
// applied in memory before its Append returns, the snapshot is always
// at least as new as the sealed segments it replaces. Records that
// race past the barrier stay in the new segment and replay
// idempotently on recovery.
func (w *WAL) Compact(save func(io.Writer) error) error {
	w.compactMu.Lock()
	defer w.compactMu.Unlock()
	req := &request{rotate: true, errc: make(chan error, 1)}
	if err := w.submit(req); err != nil {
		return err
	}
	sealedBelow := w.seg.Load()
	if err := AtomicWriteFile(filepath.Join(w.dir, snapshotName), save); err != nil {
		return fmt.Errorf("wal: write snapshot: %w", err)
	}
	segs, err := listSegments(w.opt.FS, w.dir)
	if err != nil {
		return err
	}
	for _, idx := range segs {
		if idx >= sealedBelow {
			continue
		}
		if err := w.opt.FS.Remove(segmentPath(w.dir, idx)); err != nil {
			return fmt.Errorf("wal: drop sealed segment %d: %w", idx, err)
		}
	}
	return w.opt.FS.SyncDir(w.dir)
}

// JournalEnroll, JournalBurn, JournalRemap, JournalCounter and
// JournalDelete implement the auth layer's Journal interface, mapping
// each mutation onto its record type.

func (w *WAL) JournalEnroll(id string, mapBytes []byte, key [32]byte, reserved []int) error {
	return w.Append(&Record{Type: TypeEnroll, ClientID: id, MapBytes: mapBytes, Key: key, Reserved: reserved})
}

func (w *WAL) JournalBurn(id string, pairs []crp.PairBit, nextID uint64, crpsSinceRemap int) error {
	return w.Append(&Record{Type: TypeBurn, ClientID: id, Pairs: pairs, NextID: nextID, CRPsSinceRemap: crpsSinceRemap})
}

func (w *WAL) JournalRemap(id string, newKey [32]byte) error {
	return w.Append(&Record{Type: TypeRemap, ClientID: id, Key: newKey})
}

func (w *WAL) JournalCounter(id string, nextID uint64) error {
	return w.Append(&Record{Type: TypeCounter, ClientID: id, NextID: nextID})
}

func (w *WAL) JournalDelete(id string) error {
	return w.Append(&Record{Type: TypeDelete, ClientID: id})
}

// segmentPath names segment idx inside dir.
func segmentPath(dir string, idx uint64) string {
	return filepath.Join(dir, fmt.Sprintf("%s%08d%s", segPrefix, idx, segSuffix))
}

// listSegments returns the segment indexes present in dir, ascending.
func listSegments(fs FS, dir string) ([]uint64, error) {
	entries, err := fs.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("wal: read dir: %w", err)
	}
	var out []uint64
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || len(name) != len(segPrefix)+8+len(segSuffix) ||
			name[:len(segPrefix)] != segPrefix || name[len(name)-len(segSuffix):] != segSuffix {
			continue
		}
		var idx uint64
		if _, err := fmt.Sscanf(name[len(segPrefix):len(name)-len(segSuffix)], "%d", &idx); err != nil {
			continue
		}
		out = append(out, idx)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out, nil
}

// repairHeader verifies a record-less tail segment still starts with
// the magic header, rewriting it durably if a crash tore it.
func repairHeader(f File) error {
	if _, err := f.Seek(0, io.SeekStart); err != nil {
		return fmt.Errorf("wal: seek segment header: %w", err)
	}
	hdr := make([]byte, segHeaderLen)
	if n, _ := io.ReadFull(f, hdr); int64(n) == segHeaderLen && string(hdr) == segMagic {
		return nil
	}
	if err := f.Truncate(0); err != nil {
		return fmt.Errorf("wal: reset torn segment header: %w", err)
	}
	if _, err := f.Seek(0, io.SeekStart); err != nil {
		return fmt.Errorf("wal: seek torn segment: %w", err)
	}
	if _, err := f.Write([]byte(segMagic)); err != nil {
		return fmt.Errorf("wal: rewrite segment header: %w", err)
	}
	if err := f.Sync(); err != nil {
		return fmt.Errorf("wal: sync rewritten header: %w", err)
	}
	return nil
}

// createSegment creates segment idx with its magic header, durably.
func createSegment(fs FS, dir string, idx uint64) (File, error) {
	path := segmentPath(dir, idx)
	f, err := fs.OpenFile(path, os.O_RDWR|os.O_CREATE|os.O_EXCL, 0o644)
	if err != nil {
		return nil, fmt.Errorf("wal: create segment: %w", err)
	}
	if _, err := f.Write([]byte(segMagic)); err != nil {
		f.Close()
		return nil, fmt.Errorf("wal: write segment header: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return nil, fmt.Errorf("wal: sync new segment: %w", err)
	}
	if err := fs.SyncDir(dir); err != nil {
		f.Close()
		return nil, err
	}
	return f, nil
}
