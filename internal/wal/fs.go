package wal

import (
	"io"
	"os"
)

// FS abstracts the file operations the log performs so tests can
// inject failures (fsync errors, short writes, crash-at-byte-N)
// underneath the real durability machinery. The default is the host
// filesystem; internal/fault provides a failing implementation. The
// snapshot path (AtomicWriteFile, LatestSnapshot) deliberately stays
// on the host filesystem — compaction is already crash-atomic by
// construction and is exercised separately.
type FS interface {
	// OpenFile mirrors os.OpenFile.
	OpenFile(name string, flag int, perm os.FileMode) (File, error)
	// ReadDir mirrors os.ReadDir.
	ReadDir(name string) ([]os.DirEntry, error)
	// ReadFile mirrors os.ReadFile.
	ReadFile(name string) ([]byte, error)
	// Remove mirrors os.Remove.
	Remove(name string) error
	// MkdirAll mirrors os.MkdirAll.
	MkdirAll(path string, perm os.FileMode) error
	// SyncDir fsyncs a directory so entry creation/removal is durable.
	SyncDir(dir string) error
}

// File is the per-segment handle surface the writer loop needs.
type File interface {
	io.Reader
	io.Writer
	io.Closer
	// Sync flushes the file to stable storage (fsync).
	Sync() error
	// Truncate discards bytes past size (torn-tail repair).
	Truncate(size int64) error
	// Seek positions the next write (resuming a tail segment).
	Seek(offset int64, whence int) (int64, error)
	// Stat reports the current size.
	Stat() (os.FileInfo, error)
}

// OSFS returns the host filesystem (the default when Options.FS is
// nil); fault wrappers layer on top of it.
func OSFS() FS { return osFS{} }

// osFS is the host filesystem.
type osFS struct{}

func (osFS) OpenFile(name string, flag int, perm os.FileMode) (File, error) {
	return os.OpenFile(name, flag, perm)
}

func (osFS) ReadDir(name string) ([]os.DirEntry, error) { return os.ReadDir(name) }

func (osFS) ReadFile(name string) ([]byte, error) { return os.ReadFile(name) }

func (osFS) Remove(name string) error { return os.Remove(name) }

func (osFS) MkdirAll(path string, perm os.FileMode) error { return os.MkdirAll(path, perm) }

func (osFS) SyncDir(dir string) error { return syncDir(dir) }
