package wal

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
)

// ScanSegment parses one segment file and returns every intact record
// plus, for each, the byte offset just past its frame (ends[i] is the
// clean length of the file if record i were the last). The scan stops
// at the first frame that is short, oversized, or fails its CRC; that
// position is the torn-tail boundary a crash can leave. The returned
// error describes why the scan stopped early (nil when the file ends
// exactly on a frame boundary); callers decide whether a dirty tail is
// tolerable (last segment) or fatal (any earlier segment).
//
// The scanner never panics on arbitrary bytes — every length is
// checked against the remaining input before use (the FuzzWALReplay
// contract).
func ScanSegment(path string) (recs []*Record, ends []int64, err error) {
	return scanSegment(osFS{}, path)
}

// scanSegment is ScanSegment over an injected filesystem.
func scanSegment(fs FS, path string) (recs []*Record, ends []int64, err error) {
	data, err := fs.ReadFile(path)
	if err != nil {
		return nil, nil, fmt.Errorf("wal: read segment: %w", err)
	}
	return scanBytes(data)
}

// scanBytes is ScanSegment over in-memory bytes (shared with the fuzz
// target).
func scanBytes(data []byte) (recs []*Record, ends []int64, err error) {
	if int64(len(data)) < segHeaderLen || string(data[:segHeaderLen]) != segMagic {
		return nil, nil, fmt.Errorf("wal: bad segment magic")
	}
	off := segHeaderLen
	for off < int64(len(data)) {
		rest := data[off:]
		if len(rest) < frameHeader {
			return recs, ends, fmt.Errorf("wal: torn frame header at offset %d", off)
		}
		n := int64(binary.LittleEndian.Uint32(rest[0:4]))
		sum := binary.LittleEndian.Uint32(rest[4:8])
		if n > maxPayload {
			return recs, ends, fmt.Errorf("wal: frame at offset %d claims %d bytes", off, n)
		}
		if int64(len(rest)) < frameHeader+n {
			return recs, ends, fmt.Errorf("wal: torn frame payload at offset %d", off)
		}
		payload := rest[frameHeader : frameHeader+n]
		if crc32.Checksum(payload, castagnoli) != sum {
			return recs, ends, fmt.Errorf("wal: CRC mismatch at offset %d", off)
		}
		rec, err := decodePayload(payload)
		if err != nil {
			return recs, ends, fmt.Errorf("wal: frame at offset %d: %w", off, err)
		}
		off += frameHeader + n
		recs = append(recs, rec)
		ends = append(ends, off)
	}
	return recs, ends, nil
}
