package rng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("streams with identical seeds diverged at step %d", i)
		}
	}
}

func TestSeedSensitivity(t *testing.T) {
	a, b := New(1), New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("different seeds produced %d identical outputs", same)
	}
}

func TestZeroSeedIsUsable(t *testing.T) {
	r := New(0)
	if r.s == [4]uint64{} {
		t.Fatal("zero seed produced all-zero state")
	}
	seen := map[uint64]bool{}
	for i := 0; i < 100; i++ {
		seen[r.Uint64()] = true
	}
	if len(seen) != 100 {
		t.Fatalf("zero-seeded stream repeated values: %d unique of 100", len(seen))
	}
}

func TestSplitIndependence(t *testing.T) {
	parent := New(7)
	child := parent.Split()
	// Child and parent must not track each other.
	match := 0
	for i := 0; i < 100; i++ {
		if parent.Uint64() == child.Uint64() {
			match++
		}
	}
	if match > 0 {
		t.Fatalf("parent and child streams matched %d times", match)
	}
}

func TestSplitNamedStability(t *testing.T) {
	a := New(9).SplitNamed("variation")
	b := New(9).SplitNamed("variation")
	if a.Uint64() != b.Uint64() {
		t.Fatal("same-named splits from same seed differ")
	}
	c := New(9).SplitNamed("noise")
	d := New(9).SplitNamed("variation")
	if c.Uint64() == d.Uint64() {
		t.Fatal("differently-named splits collided")
	}
}

func TestIntnRange(t *testing.T) {
	r := New(3)
	for _, n := range []int{1, 2, 3, 7, 100, 1 << 20} {
		for i := 0; i < 200; i++ {
			v := r.Intn(n)
			if v < 0 || v >= n {
				t.Fatalf("Intn(%d) = %d out of range", n, v)
			}
		}
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	New(1).Intn(0)
}

func TestIntnUniformity(t *testing.T) {
	r := New(11)
	const n, draws = 10, 100000
	counts := make([]int, n)
	for i := 0; i < draws; i++ {
		counts[r.Intn(n)]++
	}
	want := float64(draws) / n
	for i, c := range counts {
		if math.Abs(float64(c)-want) > 5*math.Sqrt(want) {
			t.Errorf("bucket %d: count %d too far from %v", i, c, want)
		}
	}
}

func TestFloat64Range(t *testing.T) {
	r := New(5)
	for i := 0; i < 10000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 = %v out of [0,1)", f)
		}
	}
}

func TestNormFloat64Moments(t *testing.T) {
	r := New(13)
	const n = 200000
	var sum, sumSq float64
	for i := 0; i < n; i++ {
		v := r.NormFloat64()
		sum += v
		sumSq += v * v
	}
	mean := sum / n
	variance := sumSq/n - mean*mean
	if math.Abs(mean) > 0.02 {
		t.Errorf("normal mean = %v, want ~0", mean)
	}
	if math.Abs(variance-1) > 0.03 {
		t.Errorf("normal variance = %v, want ~1", variance)
	}
}

func TestGaussianScaling(t *testing.T) {
	r := New(17)
	const n = 100000
	var sum float64
	for i := 0; i < n; i++ {
		sum += r.Gaussian(5, 2)
	}
	if m := sum / n; math.Abs(m-5) > 0.05 {
		t.Errorf("Gaussian(5,2) mean = %v", m)
	}
}

func TestPermIsPermutation(t *testing.T) {
	r := New(19)
	for _, n := range []int{0, 1, 2, 10, 257} {
		p := r.Perm(n)
		if len(p) != n {
			t.Fatalf("Perm(%d) length %d", n, len(p))
		}
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				t.Fatalf("Perm(%d) invalid element %d", n, v)
			}
			seen[v] = true
		}
	}
}

func TestSampleKDistinct(t *testing.T) {
	r := New(23)
	for _, tc := range []struct{ n, k int }{{10, 0}, {10, 10}, {100, 3}, {1000, 500}, {1 << 16, 20}} {
		s := r.SampleK(tc.n, tc.k)
		if len(s) != tc.k {
			t.Fatalf("SampleK(%d,%d) returned %d items", tc.n, tc.k, len(s))
		}
		seen := map[int]bool{}
		for _, v := range s {
			if v < 0 || v >= tc.n || seen[v] {
				t.Fatalf("SampleK(%d,%d) produced invalid/duplicate %d", tc.n, tc.k, v)
			}
			seen[v] = true
		}
	}
}

func TestSampleKPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("SampleK(3,4) did not panic")
		}
	}()
	New(1).SampleK(3, 4)
}

func TestBinomialBounds(t *testing.T) {
	r := New(29)
	for _, tc := range []struct {
		n int
		p float64
	}{{0, 0.5}, {10, 0}, {10, 1}, {50, 0.3}, {100000, 0.001}} {
		for i := 0; i < 50; i++ {
			v := r.Binomial(tc.n, tc.p)
			if v < 0 || v > tc.n {
				t.Fatalf("Binomial(%d,%v) = %d out of range", tc.n, tc.p, v)
			}
		}
	}
}

func TestBinomialMean(t *testing.T) {
	r := New(31)
	const n, p, draws = 40, 0.25, 20000
	var sum int
	for i := 0; i < draws; i++ {
		sum += r.Binomial(n, p)
	}
	mean := float64(sum) / draws
	if math.Abs(mean-n*p) > 0.1 {
		t.Errorf("Binomial(%d,%v) mean = %v, want %v", n, p, mean, n*p)
	}
}

func TestBoolProbability(t *testing.T) {
	r := New(37)
	hits := 0
	const draws = 100000
	for i := 0; i < draws; i++ {
		if r.Bool(0.3) {
			hits++
		}
	}
	if frac := float64(hits) / draws; math.Abs(frac-0.3) > 0.01 {
		t.Errorf("Bool(0.3) frequency = %v", frac)
	}
}

// Property: Uint64n(n) is always < n for any nonzero n.
func TestUint64nProperty(t *testing.T) {
	r := New(41)
	f := func(n uint64) bool {
		if n == 0 {
			n = 1
		}
		return r.Uint64n(n) < n
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: mul64 agrees with big-integer multiplication on the low and
// high halves (cross-checked against math/bits semantics by identity
// (a*b) mod 2^64 == lo).
func TestMul64LowHalf(t *testing.T) {
	f := func(a, b uint64) bool {
		_, lo := mul64(a, b)
		return lo == a*b
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMul64KnownValues(t *testing.T) {
	hi, lo := mul64(1<<63, 2)
	if hi != 1 || lo != 0 {
		t.Fatalf("mul64(2^63,2) = (%d,%d), want (1,0)", hi, lo)
	}
	hi, lo = mul64(0xffffffffffffffff, 0xffffffffffffffff)
	if hi != 0xfffffffffffffffe || lo != 1 {
		t.Fatalf("mul64(max,max) = (%#x,%#x)", hi, lo)
	}
}

func BenchmarkUint64(b *testing.B) {
	r := New(1)
	for i := 0; i < b.N; i++ {
		_ = r.Uint64()
	}
}

func BenchmarkNormFloat64(b *testing.B) {
	r := New(1)
	for i := 0; i < b.N; i++ {
		_ = r.NormFloat64()
	}
}
