// Package rng provides deterministic, splittable pseudo-random number
// generation for the Authenticache simulator.
//
// Monte Carlo experiments must be reproducible: the same seed must
// produce the same chip population, the same noise profiles, and the
// same challenges on every run and on every platform. The standard
// library's math/rand/v2 would work, but its exact output is not
// guaranteed stable across Go releases, so the simulator carries its
// own generator: xoshiro256** seeded through SplitMix64, the same
// construction recommended by the xoshiro authors.
//
// Streams can be split hierarchically with Split, so that independent
// subsystems (per-chip variation, per-experiment noise, per-session
// challenges) draw from statistically independent sequences without
// coordinating.
package rng

import "math"

// Rand is a xoshiro256** generator. It is NOT safe for concurrent use;
// give each goroutine its own stream via Split.
type Rand struct {
	s [4]uint64
	// cached second Gaussian variate from the Box-Muller transform
	gauss    float64
	hasGauss bool
}

// splitmix64 advances a SplitMix64 state and returns the next output.
// It is used only for seeding, never for user-visible randomness.
func splitmix64(state *uint64) uint64 {
	*state += 0x9e3779b97f4a7c15
	z := *state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// New returns a generator seeded from seed. Any seed, including zero,
// yields a well-distributed initial state.
func New(seed uint64) *Rand {
	r := &Rand{}
	sm := seed
	for i := range r.s {
		r.s[i] = splitmix64(&sm)
	}
	return r
}

func rotl(x uint64, k uint) uint64 { return (x << k) | (x >> (64 - k)) }

// Uint64 returns the next 64 uniformly distributed bits.
func (r *Rand) Uint64() uint64 {
	result := rotl(r.s[1]*5, 7) * 9
	t := r.s[1] << 17
	r.s[2] ^= r.s[0]
	r.s[3] ^= r.s[1]
	r.s[1] ^= r.s[2]
	r.s[0] ^= r.s[3]
	r.s[2] ^= t
	r.s[3] = rotl(r.s[3], 45)
	return result
}

// Split derives an independent child generator. The child's sequence is
// statistically independent of the parent's subsequent output because
// the child state is produced by hashing two parent outputs through
// SplitMix64.
func (r *Rand) Split() *Rand {
	seed := r.Uint64() ^ rotl(r.Uint64(), 31)
	return New(seed)
}

// SplitNamed derives a child generator bound to a label, so call-site
// reordering does not silently change which stream a subsystem gets.
func (r *Rand) SplitNamed(label string) *Rand {
	h := uint64(14695981039346656037) // FNV-1a offset basis
	for i := 0; i < len(label); i++ {
		h ^= uint64(label[i])
		h *= 1099511628211
	}
	seed := r.Uint64() ^ h
	return New(seed)
}

// Intn returns a uniform integer in [0, n). It panics if n <= 0.
// Rejection sampling removes modulo bias.
func (r *Rand) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn called with n <= 0")
	}
	return int(r.Uint64n(uint64(n)))
}

// Uint64n returns a uniform integer in [0, n). It panics if n == 0.
func (r *Rand) Uint64n(n uint64) uint64 {
	if n == 0 {
		panic("rng: Uint64n called with n == 0")
	}
	// Lemire's nearly-divisionless method with rejection.
	for {
		x := r.Uint64()
		hi, lo := mul64(x, n)
		if lo >= n || lo >= -n%n {
			return hi
		}
	}
}

// mul64 returns the 128-bit product of a and b as (hi, lo).
func mul64(a, b uint64) (hi, lo uint64) {
	const mask32 = 1<<32 - 1
	a0, a1 := a&mask32, a>>32
	b0, b1 := b&mask32, b>>32
	w0 := a0 * b0
	t := a1*b0 + w0>>32
	w1, w2 := t&mask32, t>>32
	w1 += a0 * b1
	hi = a1*b1 + w2 + w1>>32
	lo = a * b
	return
}

// Float64 returns a uniform float64 in [0, 1) with 53 bits of precision.
func (r *Rand) Float64() float64 {
	return float64(r.Uint64()>>11) * (1.0 / (1 << 53))
}

// NormFloat64 returns a standard normal variate (mean 0, stddev 1)
// via the Box-Muller transform.
func (r *Rand) NormFloat64() float64 {
	if r.hasGauss {
		r.hasGauss = false
		return r.gauss
	}
	var u float64
	for u == 0 {
		u = r.Float64()
	}
	v := r.Float64()
	mag := math.Sqrt(-2 * math.Log(u))
	r.gauss = mag * math.Sin(2*math.Pi*v)
	r.hasGauss = true
	return mag * math.Cos(2*math.Pi*v)
}

// Gaussian returns a normal variate with the given mean and stddev.
func (r *Rand) Gaussian(mean, stddev float64) float64 {
	return mean + stddev*r.NormFloat64()
}

// Bool returns true with probability p.
func (r *Rand) Bool(p float64) bool {
	return r.Float64() < p
}

// Perm returns a pseudo-random permutation of [0, n) (Fisher-Yates).
func (r *Rand) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}

// Shuffle permutes the first n elements using swap, Fisher-Yates style.
func (r *Rand) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		swap(i, j)
	}
}

// SampleK returns k distinct integers drawn uniformly from [0, n) in
// random order. It panics if k > n or k < 0. For small k relative to n
// it uses rejection against a set; otherwise a partial Fisher-Yates.
func (r *Rand) SampleK(n, k int) []int {
	if k < 0 || k > n {
		panic("rng: SampleK called with k out of range")
	}
	if k == 0 {
		return nil
	}
	if k*20 < n {
		seen := make(map[int]struct{}, k)
		out := make([]int, 0, k)
		for len(out) < k {
			v := r.Intn(n)
			if _, dup := seen[v]; dup {
				continue
			}
			seen[v] = struct{}{}
			out = append(out, v)
		}
		return out
	}
	p := r.Perm(n)
	return p[:k]
}

// Binomial returns a draw from Binomial(n, p) by direct simulation for
// small n and by normal approximation with continuity correction for
// large n (the simulator only needs it for noise-profile sizing).
func (r *Rand) Binomial(n int, p float64) int {
	if n <= 0 || p <= 0 {
		return 0
	}
	if p >= 1 {
		return n
	}
	if n <= 64 {
		c := 0
		for i := 0; i < n; i++ {
			if r.Bool(p) {
				c++
			}
		}
		return c
	}
	mean := float64(n) * p
	sd := math.Sqrt(float64(n) * p * (1 - p))
	v := int(math.Round(r.Gaussian(mean, sd)))
	if v < 0 {
		v = 0
	}
	if v > n {
		v = n
	}
	return v
}
