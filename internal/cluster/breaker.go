package cluster

import (
	"sync"
	"time"

	"repro/internal/rng"
)

// Per-peer circuit breaker: the router's fast-fail gate. A peer that
// keeps failing stops receiving attempts at all — every forward to it
// would otherwise burn a full attempt deadline, so once the breaker
// opens the router answers (or hedges) immediately instead of queueing
// requests behind a dead socket. After a jittered cooldown the breaker
// goes half-open: attempts flow again, and the first outcome decides —
// a success closes the breaker, a failure re-arms the cooldown.
//
// The jitter matters at fleet scale: routers that all saw a peer die
// at the same instant must not re-probe it in lockstep, so each
// breaker draws its cooldown from its own seeded stream, exactly the
// full-jitter shape the client retry policy uses.

// breakerState is a breaker's observable position.
type breakerState uint8

const (
	breakerClosed breakerState = iota
	breakerOpen
	breakerHalfOpen
)

// String names the state for status surfaces.
func (s breakerState) String() string {
	switch s {
	case breakerOpen:
		return "open"
	case breakerHalfOpen:
		return "half-open"
	}
	return "closed"
}

// breaker is one peer's circuit state. All methods take the clock as
// an argument so tests drive transitions without sleeping.
type breaker struct {
	threshold int
	cooldown  time.Duration

	mu    sync.Mutex
	rand  *rng.Rand
	state breakerState // breakerClosed or breakerOpen; half-open is derived
	fails int
	trips uint64
	until time.Time // open: earliest half-open trial
}

func newBreaker(threshold int, cooldown time.Duration, seed uint64) *breaker {
	return &breaker{threshold: threshold, cooldown: cooldown, rand: rng.New(seed)}
}

// Allow reports whether an attempt may be sent now: always when
// closed, never while the cooldown runs, again once it has passed
// (the half-open trial window).
func (b *breaker) Allow(now time.Time) bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.state != breakerOpen || !now.Before(b.until)
}

// Success closes the breaker and clears the failure run.
func (b *breaker) Success() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.state = breakerClosed
	b.fails = 0
}

// Failure records one failed attempt. A run of threshold failures
// opens the breaker; a failure during the half-open window re-arms
// the cooldown immediately (one trial was evidence enough).
func (b *breaker) Failure(now time.Time) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.fails++
	if b.state == breakerOpen {
		if !now.Before(b.until) {
			b.armLocked(now)
		}
		return
	}
	if b.fails >= b.threshold {
		b.state = breakerOpen
		b.trips++
		b.armLocked(now)
	}
}

// armLocked schedules the next half-open window with full jitter over
// [0.5, 1]·cooldown. Callers hold b.mu.
func (b *breaker) armLocked(now time.Time) {
	b.until = now.Add(time.Duration(float64(b.cooldown) * (1 - 0.5*b.rand.Float64())))
}

// State reports the observable state: open breakers whose cooldown
// has passed read as half-open.
func (b *breaker) State(now time.Time) breakerState {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.state == breakerOpen {
		if now.Before(b.until) {
			return breakerOpen
		}
		return breakerHalfOpen
	}
	return breakerClosed
}

// Trips reports how many times the breaker has opened.
func (b *breaker) Trips() uint64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.trips
}
