package cluster

import (
	"testing"
	"time"

	"repro/internal/auth"
)

func TestBreakerOpensAtThreshold(t *testing.T) {
	now := time.Unix(1000, 0)
	b := newBreaker(3, time.Second, 7)
	for i := 0; i < 2; i++ {
		b.Failure(now)
		if !b.Allow(now) {
			t.Fatalf("breaker opened after %d failures, threshold is 3", i+1)
		}
	}
	b.Failure(now)
	if b.Allow(now.Add(time.Millisecond)) {
		t.Fatal("breaker still closed after threshold failures")
	}
	if got := b.State(now.Add(time.Millisecond)); got != breakerOpen {
		t.Fatalf("state = %v, want open", got)
	}
	if b.Trips() != 1 {
		t.Fatalf("trips = %d, want 1", b.Trips())
	}
}

func TestBreakerHalfOpenTrial(t *testing.T) {
	now := time.Unix(1000, 0)
	b := newBreaker(1, time.Second, 7)
	b.Failure(now)
	if b.Allow(now) {
		t.Fatal("breaker should be open immediately after tripping")
	}
	// The jittered cooldown is within [0.5, 1]·cooldown, so a full
	// cooldown later the trial window must be open.
	later := now.Add(time.Second)
	if !b.Allow(later) {
		t.Fatal("half-open trial window not reached after full cooldown")
	}
	if got := b.State(later); got != breakerHalfOpen {
		t.Fatalf("state = %v, want half-open", got)
	}
	// A failed trial re-arms the cooldown.
	b.Failure(later)
	if b.Allow(later.Add(time.Millisecond)) {
		t.Fatal("failed half-open trial must re-open the breaker")
	}
	// A successful trial closes it.
	evenLater := later.Add(time.Second)
	if !b.Allow(evenLater) {
		t.Fatal("second trial window not reached")
	}
	b.Success()
	if got := b.State(evenLater); got != breakerClosed {
		t.Fatalf("state after trial success = %v, want closed", got)
	}
	if !b.Allow(evenLater) {
		t.Fatal("closed breaker must allow")
	}
}

func TestBreakerSuccessResetsRun(t *testing.T) {
	now := time.Unix(1000, 0)
	b := newBreaker(3, time.Second, 7)
	b.Failure(now)
	b.Failure(now)
	b.Success()
	b.Failure(now)
	b.Failure(now)
	if !b.Allow(now) {
		t.Fatal("interleaved success must reset the consecutive-failure run")
	}
}

func TestBreakerCooldownJitterSeeded(t *testing.T) {
	now := time.Unix(1000, 0)
	until := func(seed uint64) time.Time {
		b := newBreaker(1, time.Second, seed)
		b.Failure(now)
		b.mu.Lock()
		defer b.mu.Unlock()
		return b.until
	}
	a1, a2, b1 := until(3), until(3), until(4)
	if !a1.Equal(a2) {
		t.Fatal("same seed must give the same cooldown")
	}
	if a1.Equal(b1) {
		t.Fatal("different seeds should jitter the cooldown apart")
	}
	for _, u := range []time.Time{a1, b1} {
		d := u.Sub(now)
		if d < 500*time.Millisecond || d > time.Second {
			t.Fatalf("cooldown %v outside [0.5s, 1s]", d)
		}
	}
}

func TestRingOwnersDistinctAndStable(t *testing.T) {
	r := NewRing(5, 0)
	for _, id := range []string{"alpha", "beta", "gamma", "device-17"} {
		owners := r.Owners(id, 3)
		if len(owners) != 3 {
			t.Fatalf("Owners(%q, 3) = %v, want 3 entries", id, owners)
		}
		if owners[0] != r.Owner(id) {
			t.Fatalf("Owners(%q)[0] = %d, Owner = %d", id, owners[0], r.Owner(id))
		}
		seen := map[int]bool{}
		for _, n := range owners {
			if n < 0 || n >= 5 {
				t.Fatalf("owner %d out of range", n)
			}
			if seen[n] {
				t.Fatalf("Owners(%q, 3) = %v has duplicates", id, owners)
			}
			seen[n] = true
		}
		again := r.Owners(id, 3)
		for i := range owners {
			if owners[i] != again[i] {
				t.Fatalf("Owners(%q) unstable: %v then %v", id, owners, again)
			}
		}
	}
}

func TestRingOwnersClamped(t *testing.T) {
	r := NewRing(2, 0)
	if got := r.Owners("x", 5); len(got) != 2 {
		t.Fatalf("Owners over a 2-node ring returned %v", got)
	}
	if got := r.Owners("x", 0); len(got) != 1 {
		t.Fatalf("Owners with k=0 returned %v, want the owner alone", got)
	}
}

func TestHealthTrackerEWMA(t *testing.T) {
	ht := newHealthTracker(2)
	now := time.Unix(1000, 0)
	ht.observe(0, 100*time.Millisecond, auth.PeerHealth{Primary: true}, now)
	st := ht.status(0)
	if st.RTT != 100*time.Millisecond {
		t.Fatalf("first observation RTT = %v, want 100ms", st.RTT)
	}
	ht.observe(0, 200*time.Millisecond, auth.PeerHealth{Primary: true}, now)
	st = ht.status(0)
	// 0.8·100ms + 0.2·200ms = 120ms.
	if st.RTT < 119*time.Millisecond || st.RTT > 121*time.Millisecond {
		t.Fatalf("EWMA RTT = %v, want ~120ms", st.RTT)
	}
	if !st.Known || !st.Primary {
		t.Fatalf("status = %+v, want known primary", st)
	}
}

func TestHealthTrackerStaleness(t *testing.T) {
	ht := newHealthTracker(3)
	now := time.Unix(1000, 0)
	if _, known := ht.staleness(0); known {
		t.Fatal("unprobed peer must report unknown staleness")
	}
	ht.observe(0, time.Millisecond, auth.PeerHealth{CommitSeq: 900, AppliedSeq: 100}, now)
	lag, known := ht.staleness(0)
	if !known || lag != 800 {
		t.Fatalf("staleness = (%d, %v), want (800, true)", lag, known)
	}
	// A primary is never stale, whatever its sequences say.
	ht.observe(1, time.Millisecond, auth.PeerHealth{Primary: true, CommitSeq: 900, AppliedSeq: 100}, now)
	lag, known = ht.staleness(1)
	if !known || lag != 0 {
		t.Fatalf("primary staleness = (%d, %v), want (0, true)", lag, known)
	}
	ht.observeFailure(2)
	ht.observeFailure(2)
	if st := ht.status(2); st.ConsecutiveFails != 2 {
		t.Fatalf("fails = %d, want 2", st.ConsecutiveFails)
	}
}
