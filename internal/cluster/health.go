package cluster

import (
	"sync"
	"time"

	"repro/internal/auth"
)

// healthTracker is the router's per-peer failure-detector memory: an
// EWMA of probe round trips, the consecutive-failure run, and the
// peer's last health report. The prober writes it; target selection
// reads it (a hedge skips a follower whose reported staleness exceeds
// the bound) and Peers exposes it for monitoring.
type healthTracker struct {
	mu    sync.Mutex
	peers []peerHealth
}

type peerHealth struct {
	known    bool
	rttEWMA  float64 // nanoseconds
	fails    int     // consecutive probe failures since the last success
	lastSeen time.Time
	report   auth.PeerHealth
}

// EWMA weights for the probe RTT: slow-moving enough to ride out one
// scheduling hiccup, fast enough to track a genuine latency shift
// within a few probes.
const (
	ewmaOld = 0.8
	ewmaNew = 0.2
)

func newHealthTracker(n int) *healthTracker {
	return &healthTracker{peers: make([]peerHealth, n)}
}

// observe records a successful probe of node.
func (t *healthTracker) observe(node int, rtt time.Duration, h auth.PeerHealth, now time.Time) {
	t.mu.Lock()
	defer t.mu.Unlock()
	p := &t.peers[node]
	if p.known {
		p.rttEWMA = ewmaOld*p.rttEWMA + ewmaNew*float64(rtt)
	} else {
		p.rttEWMA = float64(rtt)
	}
	p.known = true
	p.fails = 0
	p.lastSeen = now
	p.report = h
}

// observeFailure records a failed probe of node.
func (t *healthTracker) observeFailure(node int) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.peers[node].fails++
}

// staleness reports how far behind the commit frontier node last
// reported itself, and whether anything is known at all. A primary is
// never stale. Unknown peers report (0, false): target selection is
// optimistic about them — the server-side guard is the authoritative
// check, this is only an attempt saved.
func (t *healthTracker) staleness(node int) (uint64, bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	p := t.peers[node]
	if !p.known {
		return 0, false
	}
	if p.report.Primary {
		return 0, true
	}
	return p.report.Staleness(), true
}

// status snapshots one peer for PeerStatus.
func (t *healthTracker) status(node int) PeerStatus {
	t.mu.Lock()
	defer t.mu.Unlock()
	p := t.peers[node]
	return PeerStatus{
		Node:             node,
		Known:            p.known,
		RTT:              time.Duration(p.rttEWMA),
		ConsecutiveFails: p.fails,
		LastSeen:         p.lastSeen,
		Primary:          p.report.Primary,
		Term:             p.report.Term,
		CommitSeq:        p.report.CommitSeq,
		AppliedSeq:       p.report.AppliedSeq,
	}
}

// PeerStatus is the failure detector's view of one peer, for
// monitoring and tests.
type PeerStatus struct {
	// Node is the peer's index in ClientPeers.
	Node int
	// Known reports whether any probe has ever succeeded.
	Known bool
	// RTT is the probe round trip, exponentially weighted.
	RTT time.Duration
	// ConsecutiveFails counts probe failures since the last success.
	ConsecutiveFails int
	// LastSeen is when the last successful probe completed.
	LastSeen time.Time
	// Primary, Term, CommitSeq, AppliedSeq echo the peer's last
	// health report.
	Primary    bool
	Term       uint64
	CommitSeq  uint64
	AppliedSeq uint64
	// Breaker is the peer's circuit state: "closed", "open", or
	// "half-open".
	Breaker string
}
