package cluster

import (
	"context"
	"reflect"
	"strings"
	"testing"
	"time"

	"repro/internal/auth"
)

// openIdle opens a node without starting it, so tests can set
// replication state directly before driving the backend.
func openIdle(t *testing.T, nodeIndex int, maxStaleness int64) *Node {
	t.Helper()
	acfg := auth.DefaultConfig()
	acfg.ChallengeBits = 64
	n, err := Open(Config{
		NodeIndex:    nodeIndex,
		Peers:        []string{"127.0.0.1:1", "127.0.0.1:2", "127.0.0.1:3"},
		Dir:          t.TempDir(),
		Auth:         acfg,
		MaxStaleness: maxStaleness,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { n.Close() })
	return n
}

func (n *Node) setLag(t *testing.T, lag uint64) {
	t.Helper()
	n.mu.Lock()
	n.lag = lag
	n.mu.Unlock()
}

func TestStalenessGuardRefusesLaggingFollower(t *testing.T) {
	n := openIdle(t, 1, 10)
	n.setLag(t, 11)
	_, err := n.backend.BeginAuth(context.Background(), "cl")
	if err == nil {
		t.Fatal("follower 11 records behind a bound of 10 served a read")
	}
	if !auth.Retryable(err) {
		t.Fatalf("stale refusal must be retryable, got %v", err)
	}
	if !strings.Contains(err.Error(), "staleness bound") {
		t.Fatalf("refusal is not the staleness guard's: %v", err)
	}

	// At or under the bound the guard passes; the request then fails
	// differently (no primary link on this idle node), proving the
	// refusal above came from the guard alone.
	n.setLag(t, 10)
	_, err = n.backend.BeginAuth(context.Background(), "cl")
	if err != nil && strings.Contains(err.Error(), "staleness bound") {
		t.Fatalf("guard fired at lag == bound: %v", err)
	}
}

func TestStalenessGuardDisabled(t *testing.T) {
	n := openIdle(t, 1, -1)
	n.setLag(t, 1<<40)
	_, err := n.backend.BeginAuth(context.Background(), "cl")
	if err != nil && strings.Contains(err.Error(), "staleness bound") {
		t.Fatalf("disabled guard still fired: %v", err)
	}
}

func TestBackendHealthReport(t *testing.T) {
	follower := openIdle(t, 1, 0)
	follower.mu.Lock()
	follower.appliedSeq = 40
	follower.lag = 7
	follower.mu.Unlock()
	h := follower.backend.Health()
	if h.Primary {
		t.Fatal("follower reported itself primary")
	}
	if h.AppliedSeq != 40 || h.CommitSeq != 47 {
		t.Fatalf("follower health = %+v, want applied 40 commit 47", h)
	}
	if h.Staleness() != 7 {
		t.Fatalf("Staleness() = %d, want 7", h.Staleness())
	}

	primary := openIdle(t, 0, 0)
	h = primary.backend.Health()
	if !h.Primary || h.Term != 1 {
		t.Fatalf("primary health = %+v, want primary at term 1", h)
	}
	if h.Staleness() != 0 {
		t.Fatalf("primary Staleness() = %d, want 0", h.Staleness())
	}
}

// TestReadTargetsSelection pins the router's hedging candidate policy:
// open breakers are skipped everywhere, staleness only disqualifies
// the hedge fallback (the owner is authoritative and its own guard
// refuses), and disabling hedging truncates to the best single target.
func TestReadTargetsSelection(t *testing.T) {
	r := NewRouter(RouterConfig{
		ClientPeers:      []string{"a", "b", "c"},
		Self:             -1,
		MaxStaleness:     10,
		BreakerThreshold: 2,
	})
	now := time.Now()
	r.health.observe(1, time.Millisecond, auth.PeerHealth{CommitSeq: 100, AppliedSeq: 50}, now)

	if got := r.readTargets([]int{0, 1}); !reflect.DeepEqual(got, []int{0}) {
		t.Fatalf("stale hedge fallback not skipped: %v", got)
	}
	if got := r.readTargets([]int{1, 0}); !reflect.DeepEqual(got, []int{1, 0}) {
		t.Fatalf("stale owner must stay eligible (its guard decides): %v", got)
	}

	r.breakers[0].Failure(now)
	r.breakers[0].Failure(now)
	if got := r.readTargets([]int{0, 2}); !reflect.DeepEqual(got, []int{2}) {
		t.Fatalf("open-breaker owner not skipped: %v", got)
	}
	if got := r.readTargets([]int{0, 1}); len(got) != 0 {
		t.Fatalf("open owner plus stale fallback should leave nothing: %v", got)
	}

	noHedge := NewRouter(RouterConfig{
		ClientPeers: []string{"a", "b"},
		Self:        -1,
		HedgeDelay:  -1,
	})
	if got := noHedge.readTargets([]int{0, 1}); !reflect.DeepEqual(got, []int{0}) {
		t.Fatalf("disabled hedging must keep only the owner: %v", got)
	}

	embedded := NewRouter(RouterConfig{
		ClientPeers: []string{"a", "b"},
		Self:        0,
	})
	if got := embedded.readTargets([]int{0, 1}); !reflect.DeepEqual(got, []int{1}) {
		t.Fatalf("self must be excluded from forwarded targets: %v", got)
	}
}
