package cluster

import (
	"fmt"
	"hash/fnv"
	"sort"
)

// Ring is a consistent-hash placement of client ids over node
// indexes. Every node replicates the full database, so the ring
// places LOAD, not data: a router sends each client's transactions to
// one deterministic owner, which keeps that client's per-record lock,
// pending challenges, and relay streams on one node, and spreads the
// fleet evenly when nodes come and go (only ~1/N of clients move per
// membership change — the consistent-hashing property).
type Ring struct {
	points []ringPoint
	nodes  int
}

type ringPoint struct {
	hash uint64
	node int
}

// defaultVNodes is the virtual-node count per physical node; enough
// for <2% placement skew at small N.
const defaultVNodes = 64

// NewRing builds a ring over nodes node indexes with vnodes virtual
// points each (0 uses the default).
func NewRing(nodes, vnodes int) *Ring {
	if nodes < 1 {
		nodes = 1
	}
	if vnodes <= 0 {
		vnodes = defaultVNodes
	}
	r := &Ring{points: make([]ringPoint, 0, nodes*vnodes), nodes: nodes}
	for n := 0; n < nodes; n++ {
		for v := 0; v < vnodes; v++ {
			r.points = append(r.points, ringPoint{hash: hash64(fmt.Sprintf("node-%d/vnode-%d", n, v)), node: n})
		}
	}
	sort.Slice(r.points, func(i, j int) bool { return r.points[i].hash < r.points[j].hash })
	return r
}

// Nodes returns the node count the ring was built over.
func (r *Ring) Nodes() int { return r.nodes }

// Owner returns the node index owning id: the first ring point at or
// after the id's hash, wrapping at the top.
func (r *Ring) Owner(id string) int {
	if len(r.points) == 0 {
		return 0
	}
	h := hash64(id)
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	if i == len(r.points) {
		i = 0
	}
	return r.points[i].node
}

// Owners returns up to k distinct node indexes in ring order starting
// at the point owning id: the owner first, then the successors a
// hedged read fails over to. Successor order is a property of the id,
// so hedges for one client always land on the same fallback node and
// its caches/locks stay warm there. k is clamped to the node count.
func (r *Ring) Owners(id string, k int) []int {
	if k > r.nodes {
		k = r.nodes
	}
	if k < 1 {
		k = 1
	}
	out := make([]int, 0, k)
	if len(r.points) == 0 {
		return append(out, 0)
	}
	h := hash64(id)
	start := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	for step := 0; step < len(r.points) && len(out) < k; step++ {
		node := r.points[(start+step)%len(r.points)].node
		dup := false
		for _, n := range out {
			if n == node {
				dup = true
				break
			}
		}
		if !dup {
			out = append(out, node)
		}
	}
	return out
}

// hash64 is FNV-64a with a splitmix64 finalizer. Raw FNV over short,
// similar strings ("node-0/vnode-1", ...) leaves the low bits too
// correlated for even ring placement; the finalizer scatters them.
func hash64(s string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(s))
	x := h.Sum64()
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}
