package cluster

import (
	"context"
	"errors"
	"sync"

	"repro/internal/auth"
	"repro/internal/crp"
)

// errInvalidNoRemap answers a remap completion with no begun half.
var errInvalidNoRemap = errors.New("cluster: no key-update transaction in flight")

// errInvalidNoAuthTx answers an auth completion with no begun half.
var errInvalidNoAuthTx = errors.New("cluster: no authentication transaction in flight")

// nodeBackend is the TxBackend a cluster node serves clients through.
// On the primary it is the plain local backend. On a follower it
// read-scales: challenge issuance runs the delegation protocol (sample
// locally against the replica, ask the primary to burn, install the
// granted challenge locally) and verification runs entirely locally;
// only key updates — rare, write-heavy — forward whole to the primary
// over a relay connection.
type nodeBackend struct {
	n *Node

	mu     sync.Mutex
	remaps map[auth.ClientID]*auth.RelayRemapTx
}

// proposeAttempts bounds delegated-issuance retries when a proposal
// loses a race (pair consumed concurrently, key rotated mid-flight).
const proposeAttempts = 4

// BeginAuth issues a challenge: directly when primary, by delegation
// when follower. A follower beyond the staleness bound refuses before
// sampling — this is the authoritative stale-read guard: a hedged
// read a router sends here on optimistic (or absent) health data is
// turned away with a retryable unavailable rather than served off a
// replica too far behind the commit frontier.
func (b *nodeBackend) BeginAuth(ctx context.Context, id auth.ClientID) (*crp.Challenge, error) {
	n := b.n
	if n.isPrimary() {
		return n.srv.IssueChallenge(ctx, id)
	}
	if err := n.checkStaleness(id); err != nil {
		return nil, err
	}
	var lastErr error
	for attempt := 0; attempt < proposeAttempts; attempt++ {
		if err := ctx.Err(); err != nil {
			return nil, &auth.AuthError{Code: auth.CodeUnavailable, ClientID: id, Err: err}
		}
		prop, err := n.srv.SampleChallenge(ctx, id)
		if err != nil {
			return nil, err
		}
		lnk := n.currentLink()
		if lnk == nil {
			if n.isPrimary() {
				// Promoted mid-call: issue directly.
				return n.srv.IssueChallenge(ctx, id)
			}
			return nil, unavailErrf(string(id), "no primary link")
		}
		chID, err := lnk.propose(ctx, id, prop)
		if err != nil {
			if auth.CodeOf(err) == auth.CodeInvalidRequest {
				// Lost a race on the primary (pair burned or key rotated
				// since the sample): resample against the fresher replica.
				lastErr = err
				continue
			}
			return nil, err
		}
		ch, err := n.srv.CommitDelegated(ctx, id, chID, prop)
		if err != nil {
			if auth.CodeOf(err) == auth.CodeInvalidRequest {
				lastErr = err
				continue
			}
			return nil, err
		}
		return ch, nil
	}
	return nil, lastErr
}

// FinishAuth verifies locally on every role: followers hold the
// pending challenge CommitDelegated installed, primaries the one
// IssueChallenge did.
func (b *nodeBackend) FinishAuth(ctx context.Context, id auth.ClientID, challengeID uint64, resp crp.Response) (auth.AuthVerdict, error) {
	return b.n.localBE.FinishAuth(ctx, id, challengeID, resp)
}

// BeginRemapTx starts a key update: locally when primary, forwarded
// whole to the primary when follower (key updates mutate the key and
// burn reserved pairs — there is no read-scaled half).
func (b *nodeBackend) BeginRemapTx(ctx context.Context, id auth.ClientID) (*auth.RemapRequest, error) {
	n := b.n
	if n.isPrimary() {
		return n.srv.BeginRemap(ctx, id)
	}
	rc, err := n.primaryRelay(ctx)
	if err != nil {
		return nil, err
	}
	req, tx, err := rc.BeginRemap(ctx, id)
	if err != nil {
		n.dropRelay(rc)
		return nil, err
	}
	b.mu.Lock()
	if old := b.remaps[id]; old != nil {
		old.Abandon()
	}
	b.remaps[id] = tx
	b.mu.Unlock()
	return req, nil
}

// FinishRemapTx completes the key update begun by BeginRemapTx.
func (b *nodeBackend) FinishRemapTx(ctx context.Context, id auth.ClientID, success bool) error {
	b.mu.Lock()
	tx := b.remaps[id]
	delete(b.remaps, id)
	b.mu.Unlock()
	if tx != nil {
		return tx.Finish(ctx, success)
	}
	if b.n.isPrimary() {
		return b.n.srv.CompleteRemap(ctx, id, success)
	}
	return &auth.AuthError{
		Code:     auth.CodeInvalidRequest,
		ClientID: id,
		Err:      errInvalidNoRemap,
	}
}

// Health implements auth.HealthReporter: the embedded wire server
// answers client-port probes from it, which is what the routers'
// failure detectors and staleness skips feed on.
func (b *nodeBackend) Health() auth.PeerHealth {
	return b.n.health()
}

// health snapshots this node's replication health. A primary's commit
// and applied frontiers coincide (its WAL is the log of record); a
// follower advertises the primary's last heartbeated commit frontier
// as appliedSeq+lag so probes see the same staleness the guard
// enforces.
func (n *Node) health() auth.PeerHealth {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.role == RolePrimary {
		seq := n.wal.CommittedSeq()
		return auth.PeerHealth{Primary: true, Term: n.term, CommitSeq: seq, AppliedSeq: seq}
	}
	return auth.PeerHealth{Term: n.term, CommitSeq: n.appliedSeq + n.lag, AppliedSeq: n.appliedSeq}
}

// checkStaleness refuses follower reads once the replica trails the
// primary's advertised commit frontier by more than MaxStaleness
// records. Unavailable (not a verdict) on purpose: the client's retry
// lands on a fresher node.
func (n *Node) checkStaleness(id auth.ClientID) error {
	if n.cfg.MaxStaleness < 0 {
		return nil
	}
	n.mu.Lock()
	lag := n.lag
	n.mu.Unlock()
	if lag > uint64(n.cfg.MaxStaleness) {
		return unavailErrf(string(id), "replica %d records behind the primary (staleness bound %d)", lag, n.cfg.MaxStaleness)
	}
	return nil
}

// shutdown abandons forwarded remap halves left open at node close.
func (b *nodeBackend) shutdown() {
	b.mu.Lock()
	txs := make([]*auth.RelayRemapTx, 0, len(b.remaps))
	for _, tx := range b.remaps {
		txs = append(txs, tx)
	}
	b.remaps = make(map[auth.ClientID]*auth.RelayRemapTx)
	b.mu.Unlock()
	for _, tx := range txs {
		tx.Abandon()
	}
}

// primaryRelay returns (dialing if needed) the relay connection to
// the current primary's client address.
func (n *Node) primaryRelay(ctx context.Context) (*auth.RelayClient, error) {
	n.mu.Lock()
	if len(n.cfg.ClientPeers) == 0 {
		n.mu.Unlock()
		return nil, unavailErrf("", "no client peer addresses configured for forwarding")
	}
	target := n.primaryIdx
	if rc := n.relay; rc != nil && n.relayIdx == target {
		n.mu.Unlock()
		return rc, nil
	}
	stale := n.relay
	n.relay = nil
	addr := n.cfg.ClientPeers[target]
	n.mu.Unlock()
	if stale != nil {
		stale.Close()
	}
	rc, err := auth.DialRelay(ctx, addr)
	if err != nil {
		return nil, err
	}
	n.mu.Lock()
	if n.relay != nil {
		existing := n.relay
		n.mu.Unlock()
		rc.Close()
		return existing, nil
	}
	if n.closed {
		n.mu.Unlock()
		rc.Close()
		return nil, unavailErrf("", "node shutting down")
	}
	n.relay = rc
	n.relayIdx = target
	n.mu.Unlock()
	return rc, nil
}

// dropRelay discards a relay connection that failed, so the next
// forward redials (possibly a newly promoted primary).
func (n *Node) dropRelay(rc *auth.RelayClient) {
	n.mu.Lock()
	if n.relay == rc {
		n.relay = nil
	}
	n.mu.Unlock()
	rc.Close()
}
