package cluster

import (
	"fmt"

	"repro/internal/auth"
	"repro/internal/wal"
)

// applyRecord dispatches one journal record onto the server's
// idempotent replay appliers — the same switch recovery uses, because
// a follower applying the primary's log IS recovery, continuously.
func applyRecord(srv *auth.Server, rec *wal.Record) error {
	id := auth.ClientID(rec.ClientID)
	switch rec.Type {
	case wal.TypeEnroll:
		return srv.ReplayEnroll(id, rec.MapBytes, rec.Key, rec.Reserved)
	case wal.TypeBurn:
		return srv.ReplayBurn(id, rec.Pairs, rec.NextID, rec.CRPsSinceRemap)
	case wal.TypeRemap:
		return srv.ReplayRemap(id, rec.Key)
	case wal.TypeCounter:
		return srv.ReplayCounter(id, rec.NextID)
	case wal.TypeDelete:
		return srv.ReplayDelete(id)
	}
	return &auth.AuthError{
		Code: auth.CodeInvalidRequest,
		Err:  fmt.Errorf("cluster: unknown WAL record type %d", rec.Type),
	}
}
