package cluster

import (
	"bufio"
	"bytes"
	"context"
	"errors"
	"io"
	"net"
	"sync"
	"time"

	"repro/internal/auth"
	"repro/internal/crp"
	"repro/internal/wal"
	"repro/internal/wire"
)

// Primary side of replication: accept follower connections, fence by
// term, hand each follower a snapshot plus the committed-record feed,
// and read back acknowledgements and challenge proposals.

// startPrimary opens the replication listener and starts accepting
// followers. The pre-bound listener from Config is consumed on first
// use; re-promotion after a step-down binds the configured address.
func (n *Node) startPrimary(ctx context.Context) error {
	n.mu.Lock()
	l := n.preListener
	n.preListener = nil
	n.mu.Unlock()
	if l == nil {
		var err error
		l, err = net.Listen("tcp", n.cfg.Peers[n.cfg.NodeIndex])
		if err != nil {
			return err
		}
	}
	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		l.Close()
		return unavailErrf("", "node %d closed", n.cfg.NodeIndex)
	}
	n.repln = l
	n.mu.Unlock()
	n.wg.Add(1)
	go n.acceptLoop(ctx, l)
	return nil
}

// acceptLoop admits follower replication sessions until the listener
// closes (shutdown or step-down).
func (n *Node) acceptLoop(ctx context.Context, l net.Listener) {
	defer n.wg.Done()
	for {
		conn, err := l.Accept()
		if err != nil {
			return
		}
		n.wg.Add(1)
		go n.serveFollower(ctx, conn)
	}
}

// followerConn is one live replication session with a follower.
type followerConn struct {
	n    *Node
	conn net.Conn
	idx  int

	// sendMu serialises writes from the record stream, the heartbeat
	// ticker, and proposal replies.
	sendMu sync.Mutex
}

// send writes one frame under the write deadline.
func (fc *followerConn) send(frame []byte) error {
	fc.sendMu.Lock()
	defer fc.sendMu.Unlock()
	if err := fc.conn.SetWriteDeadline(time.Now().Add(fc.n.cfg.AckTimeout)); err != nil {
		return err
	}
	_, err := fc.conn.Write(frame)
	return err
}

// serveFollower runs one replication session: preamble, hello, term
// fence, snapshot handoff, then the concurrent stream/read loops.
func (n *Node) serveFollower(ctx context.Context, conn net.Conn) {
	defer n.wg.Done()
	defer conn.Close()
	if err := conn.SetReadDeadline(time.Now().Add(4 * n.cfg.AckTimeout)); err != nil {
		return
	}
	br := bufio.NewReaderSize(conn, 64<<10)
	var pre [wire.PreambleLen]byte
	if _, err := io.ReadFull(br, pre[:]); err != nil || pre != wire.Preamble() {
		return
	}
	b := wire.GetBuf()
	if err := wire.ReadFrameInto(br, b, maxRepFrame); err != nil || b.Op != wire.OpRepHello {
		wire.PutBuf(b)
		return
	}
	hello, err := wire.DecodeRepHello(b.B)
	wire.PutBuf(b)
	if err != nil {
		return
	}

	n.mu.Lock()
	if n.role != RolePrimary || n.closed {
		n.mu.Unlock()
		return
	}
	if hello.Term > n.term {
		n.mu.Unlock()
		n.log("hello from node %d carries term %d: stepping down", hello.NodeIndex, hello.Term)
		n.stepDown(ctx, hello.Term)
		return
	}
	term := n.term
	// Subscribe before snapshotting: every record committed after this
	// boundary reaches the follower through the feed; records in both
	// snapshot and feed re-apply idempotently.
	sub, snapSeq := n.wal.Subscribe(subscribeBuf)
	n.mu.Unlock()
	defer sub.Close()

	var state bytes.Buffer
	if err := n.srv.SaveState(&state); err != nil {
		n.log("snapshot for node %d: %v", hello.NodeIndex, err)
		return
	}
	fc := &followerConn{n: n, conn: conn, idx: int(hello.NodeIndex)}
	frame := wire.AppendRepSnapshot(nil, wire.RepSnapshot{Term: term, SnapSeq: snapSeq, State: state.Bytes()})
	if err := fc.send(frame); err != nil {
		return
	}

	n.mu.Lock()
	if n.role != RolePrimary || n.closed {
		n.mu.Unlock()
		return
	}
	n.followers[fc] = struct{}{}
	n.mu.Unlock()
	defer func() {
		n.mu.Lock()
		delete(n.followers, fc)
		n.mu.Unlock()
	}()
	n.log("follower %d connected (snapshot at seq %d, term %d)", fc.idx, snapSeq, term)

	n.wg.Add(1)
	go fc.streamLoop(ctx, term, sub)
	fc.readLoop(ctx, br)
}

// streamLoop ships committed records and heartbeats to one follower
// until the subscription, connection, or node context ends. A
// subscription overrun (follower too far behind) closes the feed and
// with it the connection; the follower re-syncs by snapshot.
func (fc *followerConn) streamLoop(ctx context.Context, term uint64, sub *wal.Subscription) {
	defer fc.n.wg.Done()
	ticker := time.NewTicker(fc.n.cfg.HeartbeatInterval)
	defer ticker.Stop()
	var frame []byte
	for {
		select {
		case c, ok := <-sub.C():
			if !ok {
				fc.n.log("follower %d overran the feed; forcing re-sync", fc.idx)
				fc.conn.Close()
				return
			}
			frame = wire.AppendRepRecord(frame[:0], wire.RepRecord{Seq: c.Seq, Frame: c.Frame})
			if err := fc.send(frame); err != nil {
				fc.conn.Close()
				return
			}
		case <-ticker.C:
			frame = wire.AppendRepHeartbeat(frame[:0], wire.RepHeartbeat{Term: term, CommitSeq: fc.n.wal.CommittedSeq()})
			if err := fc.send(frame); err != nil {
				fc.conn.Close()
				return
			}
		case <-ctx.Done():
			return
		}
	}
}

// readLoop consumes follower frames: acknowledgements on stream 0,
// challenge proposals on nonzero streams. Proposals are handled in
// their own goroutines so a proposal waiting on its own burn's
// replication quorum never blocks the acknowledgements that satisfy
// it.
func (fc *followerConn) readLoop(ctx context.Context, br *bufio.Reader) {
	for {
		if ctx.Err() != nil {
			return
		}
		if err := fc.conn.SetReadDeadline(time.Now().Add(fc.n.cfg.LeaseTimeout)); err != nil {
			return
		}
		b := wire.GetBuf()
		if err := wire.ReadFrameInto(br, b, maxRepFrame); err != nil {
			wire.PutBuf(b)
			return
		}
		switch b.Op {
		case wire.OpRepAck:
			seq, err := wire.DecodeRepAck(b.B)
			wire.PutBuf(b)
			if err != nil {
				return
			}
			fc.n.onAck(fc.idx, seq)
		case wire.OpRepPropose:
			pr, err := wire.DecodeRepPropose(b.B)
			if err != nil {
				wire.PutBuf(b)
				return
			}
			stream := b.Stream
			id := auth.ClientID(string(pr.ClientID))
			keySum := pr.KeySum
			pairs := pr.Pairs
			wire.PutBuf(b)
			fc.n.wg.Add(1)
			go fc.handlePropose(ctx, stream, id, keySum, pairs)
		default:
			wire.PutBuf(b)
			return
		}
	}
}

// handlePropose validates and burns one follower-sampled challenge,
// answering with a grant or a typed error on the proposal's stream.
func (fc *followerConn) handlePropose(ctx context.Context, stream uint32, id auth.ClientID, keySum uint64, pairs []crp.PairBit) {
	defer fc.n.wg.Done()
	chID, err := fc.n.srv.ApproveBurn(ctx, id, pairs, keySum)
	var frame []byte
	if err != nil {
		frame = appendErrFrame(nil, stream, err)
	} else {
		frame = wire.AppendRepGrant(nil, stream, chID)
	}
	if err := fc.send(frame); err != nil {
		fc.conn.Close()
	}
}

// appendErrFrame encodes err as a wire error frame, carrying the same
// taxonomy fields the client-facing v2 server sends.
func appendErrFrame(dst []byte, stream uint32, err error) []byte {
	code := string(auth.CodeOf(err))
	client := ""
	msg := err.Error()
	var ae *auth.AuthError
	if errors.As(err, &ae) {
		client = string(ae.ClientID)
		if ae.Err != nil {
			msg = ae.Err.Error()
		}
	}
	return wire.AppendError(dst, stream, code, client, msg)
}

// stepDown demotes a primary that learned of a higher term: the
// listener and every follower session close, outstanding journal
// waits fail retryably, and the node rejoins the cluster as a
// follower probing for the new primary.
func (n *Node) stepDown(ctx context.Context, newTerm uint64) {
	n.mu.Lock()
	if n.role != RolePrimary {
		if newTerm > n.term {
			n.term = newTerm
		}
		n.mu.Unlock()
		return
	}
	n.role = RoleFollower
	if newTerm > n.term {
		n.term = newTerm
	}
	n.primaryIdx = (n.cfg.NodeIndex + 1) % len(n.cfg.Peers)
	n.lastContact = time.Now()
	l := n.repln
	n.repln = nil
	fcs := make([]*followerConn, 0, len(n.followers))
	for fc := range n.followers {
		fcs = append(fcs, fc)
	}
	n.followers = make(map[*followerConn]struct{})
	n.acked = make(map[int]uint64)
	ws := n.waiters
	n.waiters = nil
	closed := n.closed
	n.mu.Unlock()

	for _, w := range ws {
		w.ch <- false
	}
	if l != nil {
		l.Close()
	}
	for _, fc := range fcs {
		fc.conn.Close()
	}
	if closed {
		return
	}
	n.wg.Add(1)
	go n.runFollower(ctx)
}
