package cluster

import (
	"bufio"
	"bytes"
	"context"
	"errors"
	"net"
	"sync"
	"time"

	"repro/internal/auth"
	"repro/internal/rng"
	"repro/internal/wal"
	"repro/internal/wire"
)

// Follower side of replication: chase the primary, adopt its
// snapshot, append and apply its record feed, acknowledge, and watch
// the lease. When the lease expires the deterministic successor — the
// next node index after the failed primary — promotes itself; everyone
// else probes forward through the ring until a node answers with a
// current term.

// runFollower is the follower main loop: it follows one primary until
// the link drops, then redials, advancing its primary guess whenever a
// full lease passes without contact, and promoting itself when the
// guess lands on its own index.
//
// Redial pacing is capped exponential backoff with seeded jitter,
// reusing the client retry policy's delay shape: a session that
// actually synced resets the run, so a briefly flapping link recovers
// at RedialInterval while a hard-down primary is probed ever more
// gently instead of being hammered at a fixed interval by every
// follower at once (the per-node seed decorrelates them).
func (n *Node) runFollower(ctx context.Context) {
	defer n.wg.Done()
	policy := auth.RetryPolicy{
		BaseDelay:  n.cfg.RedialInterval,
		MaxDelay:   n.cfg.RedialMax,
		Multiplier: 2,
		Jitter:     0.5,
		Seed:       1,
	}.WithDefaults()
	jitter := rng.New(0x5eedf011 ^ uint64(n.cfg.NodeIndex))
	failed := 0
	for ctx.Err() == nil {
		target := n.followTarget()
		if target == n.cfg.NodeIndex {
			if err := n.promote(ctx); err != nil {
				n.log("promotion failed: %v", err)
				failed++
				n.sleep(ctx, policy.Delay(failed, jitter))
				continue
			}
			return
		}
		if n.followOnce(ctx, target) {
			failed = 0
		} else {
			failed++
		}
		if ctx.Err() == nil {
			n.sleep(ctx, policy.Delay(failed, jitter))
		}
	}
}

// followTarget returns the node currently believed to be primary,
// advancing the guess to its successor when the lease on the current
// belief has fully expired (the lease clock restarts per guess, so a
// dead successor is skipped after one more lease, and so on around the
// ring).
func (n *Node) followTarget() int {
	n.mu.Lock()
	defer n.mu.Unlock()
	if time.Since(n.lastContact) > n.cfg.LeaseTimeout {
		next := (n.primaryIdx + 1) % len(n.cfg.Peers)
		n.log("lease on node %d expired; probing node %d", n.primaryIdx, next)
		n.primaryIdx = next
		n.lastContact = time.Now()
	}
	return n.primaryIdx
}

// promote turns this follower into the primary under a new term.
func (n *Node) promote(ctx context.Context) error {
	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		return context.Canceled
	}
	if n.role == RolePrimary {
		n.mu.Unlock()
		return nil
	}
	n.role = RolePrimary
	n.term++
	n.primaryIdx = n.cfg.NodeIndex
	n.acked = make(map[int]uint64)
	term := n.term
	rc := n.relay
	n.relay = nil
	n.mu.Unlock()
	if rc != nil {
		rc.Close()
	}
	n.log("promoting to primary at term %d (applied seq %d)", term, n.AppliedSeq())
	if err := n.startPrimary(ctx); err != nil {
		n.mu.Lock()
		n.role = RoleFollower
		n.mu.Unlock()
		return err
	}
	return nil
}

// AppliedSeq reports the last primary sequence this node applied
// (its own committed sequence when primary).
func (n *Node) AppliedSeq() uint64 {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.role == RolePrimary {
		return n.wal.CommittedSeq()
	}
	return n.appliedSeq
}

// followOnce runs one replication session against target: hello,
// snapshot adoption, then the record feed until the link breaks. It
// reports whether the session got as far as a live feed (snapshot
// adopted, link up) — the redial loop's signal to reset its backoff.
func (n *Node) followOnce(ctx context.Context, target int) (synced bool) {
	dctx, cancel := context.WithTimeout(ctx, n.cfg.AckTimeout)
	conn, err := n.dial(dctx, "tcp", n.cfg.Peers[target])
	cancel()
	if err != nil {
		return
	}
	defer conn.Close()

	n.mu.Lock()
	myTerm := n.term
	n.mu.Unlock()
	pre := wire.Preamble()
	hello := append(make([]byte, 0, wire.PreambleLen+32), pre[:]...)
	hello = wire.AppendRepHello(hello, wire.RepHello{NodeIndex: uint32(n.cfg.NodeIndex), Term: myTerm})
	if err := conn.SetWriteDeadline(time.Now().Add(n.cfg.AckTimeout)); err != nil {
		return
	}
	if _, err := conn.Write(hello); err != nil {
		return
	}

	br := bufio.NewReaderSize(conn, 64<<10)
	if err := conn.SetReadDeadline(time.Now().Add(4 * n.cfg.AckTimeout)); err != nil {
		return
	}
	b := wire.GetBuf()
	if err := wire.ReadFrameInto(br, b, maxRepFrame); err != nil || b.Op != wire.OpRepSnapshot {
		wire.PutBuf(b)
		return
	}
	snap, err := wire.DecodeRepSnapshot(b.B)
	if err != nil {
		wire.PutBuf(b)
		return
	}
	n.mu.Lock()
	if snap.Term < n.term || n.role != RoleFollower {
		n.mu.Unlock()
		wire.PutBuf(b)
		return
	}
	n.term = snap.Term
	n.primaryIdx = target
	n.lastContact = time.Now()
	n.mu.Unlock()
	if err := n.srv.LoadState(bytes.NewReader(snap.State)); err != nil {
		n.log("adopt snapshot from node %d: %v", target, err)
		wire.PutBuf(b)
		return
	}
	wire.PutBuf(b)
	// Persist the adopted state and discard any divergent local tail
	// from a previous reign: after this compaction the local log is a
	// prefix of the primary's history again.
	if err := n.wal.Compact(n.srv.SaveState); err != nil {
		n.log("compact adopted snapshot: %v", err)
		return
	}

	lnk := newPrimaryLink(conn, n.cfg.AckTimeout)
	n.mu.Lock()
	n.link = lnk
	n.appliedSeq = snap.SnapSeq
	n.lag = 0
	n.mu.Unlock()
	defer func() {
		n.mu.Lock()
		if n.link == lnk {
			n.link = nil
		}
		n.mu.Unlock()
		lnk.shutdown()
	}()
	n.log("following node %d at term %d from seq %d", target, snap.Term, snap.SnapSeq)
	if err := lnk.sendAck(snap.SnapSeq); err != nil {
		return
	}
	synced = true

	for {
		if ctx.Err() != nil {
			return
		}
		if err := conn.SetReadDeadline(time.Now().Add(n.cfg.LeaseTimeout)); err != nil {
			return
		}
		b := wire.GetBuf()
		if err := wire.ReadFrameInto(br, b, maxRepFrame); err != nil {
			wire.PutBuf(b)
			return
		}
		switch b.Op {
		case wire.OpRepRecord:
			rr, derr := wire.DecodeRepRecord(b.B)
			if derr != nil {
				wire.PutBuf(b)
				return
			}
			if aerr := n.applyReplicated(rr); aerr != nil {
				n.log("apply seq %d: %v", rr.Seq, aerr)
				wire.PutBuf(b)
				return
			}
			seq := rr.Seq
			wire.PutBuf(b)
			if err := lnk.sendAck(seq); err != nil {
				return
			}
		case wire.OpRepHeartbeat:
			hb, derr := wire.DecodeRepHeartbeat(b.B)
			wire.PutBuf(b)
			if derr != nil {
				return
			}
			applied := n.onHeartbeat(hb)
			// Acknowledging the heartbeat keeps the primary's read
			// deadline fed during idle stretches.
			if err := lnk.sendAck(applied); err != nil {
				return
			}
		case wire.OpRepGrant, wire.OpError:
			if b.Stream == 0 {
				// A stream-0 error is session-fatal.
				wire.PutBuf(b)
				return
			}
			lnk.deliver(b.Stream, b.Op, b.B)
			wire.PutBuf(b)
		default:
			wire.PutBuf(b)
			return
		}
	}
}

// applyReplicated makes one shipped record durable and visible:
// verbatim frame into the local log, decoded record onto the replica
// through the idempotent appliers.
func (n *Node) applyReplicated(rr wire.RepRecord) error {
	rec, err := wal.DecodeFrame(rr.Frame)
	if err != nil {
		return err
	}
	if _, err := n.wal.AppendFrame(rr.Frame); err != nil {
		return err
	}
	if err := applyRecord(n.srv, rec); err != nil {
		return err
	}
	n.mu.Lock()
	n.appliedSeq = rr.Seq
	n.lastContact = time.Now()
	n.mu.Unlock()
	return nil
}

// onHeartbeat renews the lease and updates the lag gauge, returning
// the applied sequence to acknowledge.
func (n *Node) onHeartbeat(hb wire.RepHeartbeat) uint64 {
	n.mu.Lock()
	defer n.mu.Unlock()
	if hb.Term >= n.term {
		n.term = hb.Term
		n.lastContact = time.Now()
		if hb.CommitSeq > n.appliedSeq {
			n.lag = hb.CommitSeq - n.appliedSeq
		} else {
			n.lag = 0
		}
	}
	return n.appliedSeq
}

// primaryLink is a follower's live connection to its primary: the
// follower loop reads from it; delegated-issuance proposals write to
// it from request goroutines, multiplexed by stream id.
type primaryLink struct {
	conn    net.Conn
	timeout time.Duration

	// sendMu serialises writes; sendBuf is the ack scratch buffer.
	sendMu  sync.Mutex
	sendBuf []byte

	mu         sync.Mutex
	down       bool
	nextStream uint32
	pending    map[uint32]chan linkReply
}

// linkReply is one proposal answer (grant or typed error), payload
// copied out of the read buffer.
type linkReply struct {
	op      wire.Opcode
	payload []byte
}

func newPrimaryLink(conn net.Conn, timeout time.Duration) *primaryLink {
	return &primaryLink{conn: conn, timeout: timeout, pending: make(map[uint32]chan linkReply)}
}

// send writes one frame under the write deadline.
func (l *primaryLink) send(frame []byte) error {
	l.sendMu.Lock()
	defer l.sendMu.Unlock()
	if err := l.conn.SetWriteDeadline(time.Now().Add(l.timeout)); err != nil {
		return err
	}
	_, err := l.conn.Write(frame)
	return err
}

// sendAck acknowledges every record up to and including seq.
func (l *primaryLink) sendAck(seq uint64) error {
	l.sendMu.Lock()
	defer l.sendMu.Unlock()
	l.sendBuf = wire.AppendRepAck(l.sendBuf[:0], seq)
	if err := l.conn.SetWriteDeadline(time.Now().Add(l.timeout)); err != nil {
		return err
	}
	_, err := l.conn.Write(l.sendBuf)
	return err
}

// propose sends one challenge proposal and waits for the primary's
// grant or refusal.
func (l *primaryLink) propose(ctx context.Context, id auth.ClientID, prop *auth.DelegatedProposal) (uint64, error) {
	l.mu.Lock()
	if l.down {
		l.mu.Unlock()
		return 0, unavailErrf(string(id), "replication link lost")
	}
	l.nextStream++
	if l.nextStream == 0 {
		l.nextStream = 1
	}
	stream := l.nextStream
	ch := make(chan linkReply, 1)
	l.pending[stream] = ch
	l.mu.Unlock()
	defer func() {
		l.mu.Lock()
		delete(l.pending, stream)
		l.mu.Unlock()
	}()

	frame := wire.AppendRepPropose(nil, stream, wire.RepPropose{
		ClientID: []byte(id),
		KeySum:   prop.KeySum,
		Pairs:    prop.Phys,
	})
	if err := l.send(frame); err != nil {
		return 0, unavailErrf(string(id), "propose: %v", err)
	}
	t := time.NewTimer(l.timeout)
	defer t.Stop()
	select {
	case r, ok := <-ch:
		if !ok {
			return 0, unavailErrf(string(id), "replication link lost mid-proposal")
		}
		switch r.op {
		case wire.OpRepGrant:
			chID, err := wire.DecodeRepGrant(r.payload)
			if err != nil {
				return 0, unavailErrf(string(id), "bad grant: %v", err)
			}
			return chID, nil
		case wire.OpError:
			code, client, msg, derr := wire.DecodeError(r.payload)
			if derr != nil {
				return 0, unavailErrf(string(id), "bad proposal refusal: %v", derr)
			}
			return 0, &auth.AuthError{
				Code:     auth.ErrorCode(code),
				ClientID: auth.ClientID(client),
				Err:      errors.New(msg),
			}
		}
		return 0, unavailErrf(string(id), "unexpected proposal reply %q", r.op)
	case <-t.C:
		return 0, unavailErrf(string(id), "proposal unanswered within %v", l.timeout)
	case <-ctx.Done():
		return 0, &auth.AuthError{Code: auth.CodeUnavailable, ClientID: id, Err: ctx.Err()}
	}
}

// deliver routes one proposal answer to its waiting goroutine; answers
// for streams nobody waits on are dropped.
func (l *primaryLink) deliver(stream uint32, op wire.Opcode, payload []byte) {
	l.mu.Lock()
	ch := l.pending[stream]
	delete(l.pending, stream)
	l.mu.Unlock()
	if ch == nil {
		return
	}
	// The channel is buffered and removed from pending before the
	// send, so this never blocks; the select keeps that local.
	select {
	case ch <- linkReply{op: op, payload: append([]byte(nil), payload...)}:
	default:
	}
}

// shutdown fails every outstanding proposal and closes the socket.
func (l *primaryLink) shutdown() {
	l.mu.Lock()
	l.down = true
	chans := make([]chan linkReply, 0, len(l.pending))
	for _, ch := range l.pending {
		chans = append(chans, ch)
	}
	l.pending = make(map[uint32]chan linkReply)
	l.mu.Unlock()
	for _, ch := range chans {
		close(ch)
	}
	l.conn.Close()
}
