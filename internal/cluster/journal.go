package cluster

import (
	"fmt"
	"time"

	"repro/internal/auth"
	"repro/internal/crp"
	"repro/internal/wal"
)

// clusterJournal is the auth.Journal a node attaches to its embedded
// server: every mutation appends to the local WAL and then waits for
// ReplicaAcks follower acknowledgements before the mutating call
// returns. On a follower it refuses outright — follower state mutates
// only by applying the replicated log, so a direct mutation reaching
// the journal means a client (or operator) asked a non-primary to
// write, and the retryable refusal sends it elsewhere.
//
// The wait is also the fencing mechanism: a deposed primary still
// passes the role check (it has not yet learned of its deposition) and
// still appends locally, but its followers are gone, no
// acknowledgement ever arrives, and the journal write — and with it
// the client's transaction — fails retryably. A primary that cannot
// reach a quorum of its followers cannot durably ack anything.
type clusterJournal struct{ n *Node }

func (j clusterJournal) JournalEnroll(id string, mapBytes []byte, key [32]byte, reserved []int) error {
	return j.n.replicate(&wal.Record{Type: wal.TypeEnroll, ClientID: id, MapBytes: mapBytes, Key: key, Reserved: reserved})
}

func (j clusterJournal) JournalBurn(id string, pairs []crp.PairBit, nextID uint64, crpsSinceRemap int) error {
	return j.n.replicate(&wal.Record{Type: wal.TypeBurn, ClientID: id, Pairs: pairs, NextID: nextID, CRPsSinceRemap: crpsSinceRemap})
}

func (j clusterJournal) JournalRemap(id string, newKey [32]byte) error {
	return j.n.replicate(&wal.Record{Type: wal.TypeRemap, ClientID: id, Key: newKey})
}

func (j clusterJournal) JournalCounter(id string, nextID uint64) error {
	return j.n.replicate(&wal.Record{Type: wal.TypeCounter, ClientID: id, NextID: nextID})
}

func (j clusterJournal) JournalDelete(id string) error {
	return j.n.replicate(&wal.Record{Type: wal.TypeDelete, ClientID: id})
}

// replicate appends one record durably and waits for the configured
// follower acknowledgements.
func (n *Node) replicate(rec *wal.Record) error {
	if !n.isPrimary() {
		return notPrimaryErr(rec.ClientID)
	}
	seq, err := n.wal.AppendRecord(rec)
	if err != nil {
		return err
	}
	return n.waitReplicated(rec.ClientID, seq)
}

// ackWaiter is one journal write waiting for its quorum. ch is
// buffered and receives exactly one value: true when the quorum
// arrived, false when the node was deposed or closed first.
type ackWaiter struct {
	seq uint64
	ch  chan bool
}

// waitReplicated blocks until ReplicaAcks distinct followers have
// acknowledged seq, the node loses its primacy, or AckTimeout passes.
func (n *Node) waitReplicated(id string, seq uint64) error {
	n.mu.Lock()
	need := n.cfg.ReplicaAcks
	if !n.replicated || need <= 0 {
		n.mu.Unlock()
		return nil
	}
	if n.role != RolePrimary || n.closed {
		n.mu.Unlock()
		return notPrimaryErr(id)
	}
	if n.ackCountLocked(seq) >= need {
		n.mu.Unlock()
		return nil
	}
	w := &ackWaiter{seq: seq, ch: make(chan bool, 1)}
	n.waiters = append(n.waiters, w)
	n.mu.Unlock()

	t := time.NewTimer(n.cfg.AckTimeout)
	defer t.Stop()
	select {
	case ok := <-w.ch:
		if !ok {
			return notPrimaryErr(id)
		}
		return nil
	case <-t.C:
		n.removeWaiter(w)
		return unavailErrf(id, "record %d not replicated to %d followers within %v", seq, need, n.cfg.AckTimeout)
	case <-n.ctx.Done():
		n.removeWaiter(w)
		return unavailErrf(id, "node shutting down")
	}
}

// ackCountLocked counts followers whose acknowledged sequence covers
// seq. Callers hold n.mu.
func (n *Node) ackCountLocked(seq uint64) int {
	c := 0
	for _, a := range n.acked {
		if a >= seq {
			c++
		}
	}
	return c
}

// onAck records a follower acknowledgement and releases every waiter
// whose quorum it completes.
func (n *Node) onAck(idx int, seq uint64) {
	var done []*ackWaiter
	n.mu.Lock()
	if seq > n.acked[idx] {
		n.acked[idx] = seq
	}
	live := n.waiters[:0]
	for _, w := range n.waiters {
		if n.ackCountLocked(w.seq) >= n.cfg.ReplicaAcks {
			done = append(done, w)
		} else {
			live = append(live, w)
		}
	}
	n.waiters = live
	n.mu.Unlock()
	for _, w := range done {
		w.ch <- true
	}
}

// removeWaiter unregisters a waiter that stopped waiting (timeout or
// shutdown); racing signals drain harmlessly into the buffered
// channel.
func (n *Node) removeWaiter(w *ackWaiter) {
	n.mu.Lock()
	defer n.mu.Unlock()
	for i, x := range n.waiters {
		if x == w {
			n.waiters = append(n.waiters[:i], n.waiters[i+1:]...)
			return
		}
	}
}

// notPrimaryErr is the retryable refusal of a mutation on a node that
// is not (or no longer) the primary.
func notPrimaryErr(id string) error {
	return &auth.AuthError{
		Code:     auth.CodeUnavailable,
		ClientID: auth.ClientID(id),
		Err:      fmt.Errorf("%w: node is not the primary", auth.ErrUnavailable),
	}
}

// configErrf reports a misconfigured or misused node as a typed,
// non-retryable *AuthError, so cluster constructors and lifecycle
// entry points obey the same taxonomy as the serving paths.
func configErrf(format string, args ...any) error {
	return &auth.AuthError{
		Code: auth.CodeInvalidRequest,
		Err:  fmt.Errorf("cluster: "+format, args...),
	}
}

// unavailErrf is a retryable cluster-level failure.
func unavailErrf(id string, format string, args ...any) error {
	return &auth.AuthError{
		Code:     auth.CodeUnavailable,
		ClientID: auth.ClientID(id),
		Err:      fmt.Errorf("%w: cluster: %s", auth.ErrUnavailable, fmt.Sprintf(format, args...)),
	}
}
