package cluster

import (
	"context"
	"errors"
	"fmt"
	"net"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/auth"
	"repro/internal/errormap"
	"repro/internal/fault"
	"repro/internal/mapkey"
	"repro/internal/rng"
	"repro/internal/wire"
)

const testSeed = 0xC1057E4

func testMap(lines, k int, seed uint64, vdds ...int) *errormap.Map {
	g := errormap.NewGeometry(lines)
	m := errormap.NewMap(g)
	r := rng.New(seed)
	for _, v := range vdds {
		m.AddPlane(v, errormap.RandomPlane(g, k, r))
	}
	return m
}

// testCluster is an in-process cluster with pre-bound replication
// listeners so every peer address is concrete before any node starts.
type testCluster struct {
	t     *testing.T
	nodes []*Node
	addrs []string
}

// startCluster brings up n nodes (node 0 primary). dialFor, when
// non-nil, supplies per-node dial functions (fault injection).
func startCluster(t *testing.T, ctx context.Context, n int, dialFor func(i int) DialFunc) *testCluster {
	t.Helper()
	tc := &testCluster{t: t}
	lns := make([]net.Listener, n)
	for i := 0; i < n; i++ {
		l, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		lns[i] = l
		tc.addrs = append(tc.addrs, l.Addr().String())
	}
	dir := t.TempDir()
	for i := 0; i < n; i++ {
		cfg := testNodeConfig(i, tc.addrs, filepath.Join(dir, fmt.Sprintf("node-%d", i)))
		cfg.ReplListener = lns[i]
		if dialFor != nil {
			cfg.Dial = dialFor(i)
		}
		node, err := Open(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if err := node.Start(ctx); err != nil {
			t.Fatal(err)
		}
		tc.nodes = append(tc.nodes, node)
	}
	t.Cleanup(func() {
		for _, node := range tc.nodes {
			node.Close()
		}
	})
	return tc
}

func testNodeConfig(i int, addrs []string, dir string) Config {
	acfg := auth.DefaultConfig()
	acfg.ChallengeBits = 64
	return Config{
		NodeIndex:         i,
		Peers:             addrs,
		Dir:               dir,
		Auth:              acfg,
		Seed:              testSeed + uint64(i),
		ReplicaAcks:       1,
		AckTimeout:        time.Second,
		HeartbeatInterval: 20 * time.Millisecond,
		LeaseTimeout:      250 * time.Millisecond,
		RedialInterval:    20 * time.Millisecond,
		Logf:              nil,
	}
}

// waitUntil polls cond for up to d.
func waitUntil(t *testing.T, d time.Duration, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(d)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

// caughtUp reports whether follower has applied everything primary
// committed.
func caughtUp(primary, follower *Node) bool {
	return follower.AppliedSeq() >= primary.Status().CommitSeq
}

// authRoundTrip runs one full authentication against be.
func authRoundTrip(ctx context.Context, be auth.TxBackend, r *auth.Responder) (bool, error) {
	ch, err := be.BeginAuth(ctx, r.ID)
	if err != nil {
		return false, err
	}
	resp, err := r.Respond(ch)
	if err != nil {
		return false, err
	}
	v, err := be.FinishAuth(ctx, r.ID, ch.ID, resp)
	if err != nil {
		return false, err
	}
	return v.Accepted, nil
}

func TestRingDeterministicAndBalanced(t *testing.T) {
	r1 := NewRing(3, 0)
	r2 := NewRing(3, 0)
	counts := make([]int, 3)
	for i := 0; i < 9000; i++ {
		id := fmt.Sprintf("device-%d", i)
		o := r1.Owner(id)
		if o2 := r2.Owner(id); o2 != o {
			t.Fatalf("ring not deterministic: %q -> %d vs %d", id, o, o2)
		}
		counts[o]++
	}
	for n, c := range counts {
		if c < 9000*15/100 {
			t.Errorf("node %d owns %d/9000 clients (<15%%): ring badly skewed %v", n, c, counts)
		}
	}
	if NewRing(1, 0).Owner("anything") != 0 {
		t.Error("single-node ring must own everything")
	}
}

// TestReplicationAndFollowerReads enrolls through the primary,
// watches both followers converge, and then runs the read-scaled
// paths on a follower: delegated challenge issuance and fully local
// verification, including impostor rejection.
func TestReplicationAndFollowerReads(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	tc := startCluster(t, ctx, 3, nil)
	primary := tc.nodes[0]

	id := auth.ClientID("dev-0")
	m := testMap(2048, 60, testSeed, 680, 700)
	key, err := primary.Server().Enroll(ctx, id, m, 700)
	if err != nil {
		t.Fatal(err)
	}
	r := auth.NewResponder(id, auth.NewSimDevice(m), key)

	// Primary path works as on a single node.
	ok, err := authRoundTrip(ctx, primary.Backend(), r)
	if err != nil || !ok {
		t.Fatalf("primary auth: ok=%v err=%v", ok, err)
	}

	for i := 1; i <= 2; i++ {
		f := tc.nodes[i]
		waitUntil(t, 5*time.Second, fmt.Sprintf("follower %d catch-up", i), func() bool { return caughtUp(primary, f) })
		if !f.Server().Enrolled(id) {
			t.Fatalf("follower %d missing enrollment", i)
		}
		fk, err := f.Server().CurrentKey(id)
		if err != nil || fk != key {
			t.Fatalf("follower %d key mismatch: %v", i, err)
		}
	}

	// Delegated issuance on a follower: challenge sampled locally,
	// burned on the primary, verified locally.
	follower := tc.nodes[1]
	for i := 0; i < 5; i++ {
		ok, err := authRoundTrip(ctx, follower.Backend(), r)
		if err != nil {
			t.Fatalf("delegated auth %d: %v", i, err)
		}
		if !ok {
			t.Fatalf("delegated auth %d: genuine device rejected", i)
		}
	}

	// An impostor with wrong silicon must be rejected on the follower.
	wrong := testMap(2048, 60, testSeed+999, 680, 700)
	imp := auth.NewResponder(id, auth.NewSimDevice(wrong), key)
	ok, err = authRoundTrip(ctx, follower.Backend(), imp)
	if err != nil {
		t.Fatalf("impostor round trip errored: %v", err)
	}
	if ok {
		t.Fatal("impostor accepted on follower")
	}

	// The delegated burns replicate back: the other follower's replica
	// must converge to the same registry state.
	waitUntil(t, 5*time.Second, "follower 2 post-burn catch-up", func() bool { return caughtUp(primary, tc.nodes[2]) })
}

// TestPrimaryWithoutQuorumCannotAck is fencing by construction: a
// primary whose followers are gone must fail every mutation retryably
// rather than ack into a minority.
func TestPrimaryWithoutQuorumCannotAck(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	cfg := testNodeConfig(0, []string{l.Addr().String(), "127.0.0.1:1"}, t.TempDir())
	cfg.ReplListener = l
	cfg.AckTimeout = 200 * time.Millisecond
	n, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer n.Close()
	if err := n.Start(ctx); err != nil {
		t.Fatal(err)
	}

	m := testMap(2048, 60, testSeed, 700)
	_, err = n.Server().Enroll(ctx, "lonely", m)
	if err == nil {
		t.Fatal("enrollment acked without any follower acknowledgement")
	}
	if auth.CodeOf(err) != auth.CodeUnavailable {
		t.Fatalf("unreplicated enrollment error code = %q, want unavailable (%v)", auth.CodeOf(err), err)
	}
	var ae *auth.AuthError
	if !errors.As(err, &ae) {
		t.Fatalf("untyped error %T: %v", err, err)
	}
	// The failed enrollment must have been backed out, not half-applied.
	if n.Server().Enrolled("lonely") {
		t.Fatal("failed enrollment left the client enrolled")
	}
}

// TestFailoverPromotesSuccessor kills the primary and asserts the
// successor promotes under a higher term, serves every durably-acked
// enrollment with the exact key, and the second follower re-homes to
// the new primary.
func TestFailoverPromotesSuccessor(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	tc := startCluster(t, ctx, 3, nil)
	primary := tc.nodes[0]

	keys := make(map[auth.ClientID]mapkey.Key)
	responders := make(map[auth.ClientID]*auth.Responder)
	for i := 0; i < 3; i++ {
		id := auth.ClientID(fmt.Sprintf("dev-%d", i))
		m := testMap(2048, 60, testSeed+uint64(i), 680, 700)
		key, err := primary.Server().Enroll(ctx, id, m, 700)
		if err != nil {
			t.Fatal(err)
		}
		keys[id] = key
		responders[id] = auth.NewResponder(id, auth.NewSimDevice(m), key)
	}
	waitUntil(t, 5*time.Second, "followers catch up", func() bool {
		return caughtUp(primary, tc.nodes[1]) && caughtUp(primary, tc.nodes[2])
	})

	// Crash the primary.
	if err := primary.Close(); err != nil {
		t.Logf("primary close: %v", err)
	}

	successor := tc.nodes[1]
	waitUntil(t, 10*time.Second, "successor promotion", func() bool { return successor.Role() == RolePrimary })
	if got := successor.Term(); got < 2 {
		t.Fatalf("successor term = %d, want >= 2", got)
	}
	waitUntil(t, 10*time.Second, "follower 2 re-homes", func() bool {
		st := tc.nodes[2].Status()
		return st.PrimaryIndex == 1 && caughtUp(successor, tc.nodes[2])
	})

	// Every durably-acked enrollment is on the new primary with the
	// exact key, and still authenticates.
	for id, key := range keys {
		got, err := successor.Server().CurrentKey(id)
		if err != nil {
			t.Fatalf("%q lost across failover: %v", id, err)
		}
		if got != key {
			t.Fatalf("%q key diverged across failover", id)
		}
		ok, err := authRoundTrip(ctx, successor.Backend(), responders[id])
		if err != nil || !ok {
			t.Fatalf("%q auth on new primary: ok=%v err=%v", id, ok, err)
		}
	}

	// The re-homed follower serves delegated issuance off the new
	// primary.
	ok, err := authRoundTrip(ctx, tc.nodes[2].Backend(), responders["dev-0"])
	if err != nil || !ok {
		t.Fatalf("delegated auth via re-homed follower: ok=%v err=%v", ok, err)
	}
}

// TestFollowerResyncAfterPartition cuts one follower's replication
// link mid-stream, commits through the remaining quorum, heals, and
// asserts the cut follower converges to the exact primary state.
func TestFollowerResyncAfterPartition(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	part := fault.NewPartition()
	tc := startCluster(t, ctx, 3, func(i int) DialFunc {
		if i != 2 {
			return nil
		}
		return part.Dial
	})
	primary := tc.nodes[0]

	enroll := func(i int) (auth.ClientID, mapkey.Key) {
		id := auth.ClientID(fmt.Sprintf("dev-%d", i))
		m := testMap(2048, 60, testSeed+uint64(i), 700)
		key, err := primary.Server().Enroll(ctx, id, m)
		if err != nil {
			t.Fatalf("enroll %d: %v", i, err)
		}
		return id, key
	}
	enroll(0)
	waitUntil(t, 5*time.Second, "node 2 initial catch-up", func() bool { return caughtUp(primary, tc.nodes[2]) })

	part.Block()
	// Mutations keep committing through node 1's acknowledgements.
	id1, _ := enroll(1)
	id2, key2 := enroll(2)
	waitUntil(t, 5*time.Second, "node 1 catch-up during partition", func() bool { return caughtUp(primary, tc.nodes[1]) })
	if tc.nodes[2].Server().Enrolled(id2) {
		t.Fatal("partitioned follower saw a record through a blocked link")
	}

	part.Heal()
	waitUntil(t, 10*time.Second, "node 2 re-sync", func() bool { return caughtUp(primary, tc.nodes[2]) })
	for _, id := range []auth.ClientID{id1, id2} {
		if !tc.nodes[2].Server().Enrolled(id) {
			t.Fatalf("%q missing on re-synced follower", id)
		}
	}
	got, err := tc.nodes[2].Server().CurrentKey(id2)
	if err != nil || got != key2 {
		t.Fatalf("re-synced key mismatch: %v", err)
	}
}

// TestDeposedPrimaryStepsDownOnHigherTerm sends a replication hello
// carrying a future term straight at a primary and asserts it demotes
// itself and starts refusing mutations.
func TestDeposedPrimaryStepsDownOnHigherTerm(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	cfg := testNodeConfig(0, []string{l.Addr().String(), "127.0.0.1:1"}, t.TempDir())
	cfg.ReplListener = l
	cfg.AckTimeout = 200 * time.Millisecond
	n, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer n.Close()
	if err := n.Start(ctx); err != nil {
		t.Fatal(err)
	}

	conn, err := net.Dial("tcp", l.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	pre := wire.Preamble()
	buf := append([]byte{}, pre[:]...)
	buf = wire.AppendRepHello(buf, wire.RepHello{NodeIndex: 1, Term: 7})
	if _, err := conn.Write(buf); err != nil {
		t.Fatal(err)
	}

	waitUntil(t, 5*time.Second, "step-down", func() bool { return n.Role() == RoleFollower })
	if got := n.Term(); got < 7 {
		t.Fatalf("deposed term = %d, want >= 7", got)
	}
	m := testMap(2048, 60, testSeed, 700)
	if _, err := n.Server().Enroll(ctx, "late", m); auth.CodeOf(err) != auth.CodeUnavailable {
		t.Fatalf("mutation on deposed primary = %v, want unavailable", err)
	}
}
