package cluster

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"repro/internal/auth"
	"repro/internal/crp"
)

// Router is a thin forwarding TxBackend: it consistent-hashes each
// client id to its owning node and forwards the transaction halves
// over pooled relay connections, pinning nothing heavier than the
// open transaction handle locally (verdicts carry the confirmation
// tag, so a router never holds session keys). A router can run
// standalone (Self < 0) as a stateless ingress tier, or embedded in a
// node (Self = that node's index) to short-circuit locally owned
// clients.
//
// The router is also the cluster's resilience control plane. Every
// peer gets a circuit breaker fed by attempt outcomes and by the
// background prober Start launches; forwards carve per-attempt
// deadlines out of the caller's context so a hung peer can never pin
// a request goroutine; and read-path forwards (challenge issuance —
// verification continues on whichever node issued) hedge to the ring
// successor when the owner is open or slow. Write-path forwards (key
// updates) are primary-affine and never hedge: they fail fast with a
// retryable unavailable instead, because two racing remap halves on
// different nodes could burn reserved pairs twice.
type Router struct {
	cfg  RouterConfig
	ring *Ring
	// breakers and health are index-aligned with cfg.ClientPeers and
	// immutable after NewRouter; each element carries its own lock, so
	// they are read without Router.mu.
	breakers []*breaker
	health   *healthTracker

	mu     sync.Mutex
	closed bool
	// cancel stops the background prober; set once by Start.
	cancel context.CancelFunc
	relays map[int]*auth.RelayClient
	auths  map[authTxKey]pendingAuthTx
	remaps map[auth.ClientID]pendingRemapTx
	// wg accounts every router goroutine — hedged attempts, the
	// prober, the sweep's fire-and-forget Abandons — so Close does not
	// race them against relay teardown.
	wg sync.WaitGroup
}

// RouterConfig describes the fleet a Router forwards into.
type RouterConfig struct {
	// ClientPeers lists every node's client-facing address; the ring is
	// built over their indexes.
	ClientPeers []string
	// Self is the index of the co-located node, served through Local
	// without a network hop; -1 for a standalone router.
	Self int
	// Local executes transactions for locally owned clients (required
	// when Self >= 0).
	Local auth.TxBackend
	// VNodes tunes ring granularity (0 uses the default).
	VNodes int
	// TxTTL bounds how long a begun-but-unfinished forwarded
	// transaction is held before it is abandoned (default 30s).
	TxTTL time.Duration

	// Dial opens relay connections (default auth.DialRelay); chaos
	// tests inject fault-gated dialers here.
	Dial func(ctx context.Context, addr string) (*auth.RelayClient, error)
	// BreakerThreshold is the consecutive-failure run that opens a
	// peer's circuit breaker (default 5; negative disables breaking).
	BreakerThreshold int
	// BreakerCooldown is the open breaker's pause before its half-open
	// trial window, jittered over [0.5, 1]× per breaker (default
	// 500ms).
	BreakerCooldown time.Duration
	// HedgeDelay is how long a read-path forward's first attempt may
	// stay unanswered before a hedge launches at the ring successor
	// (default 20ms; negative disables hedging). An open owner breaker
	// skips the wait entirely and goes straight to the successor.
	HedgeDelay time.Duration
	// MaxStaleness is how many records behind its reported commit
	// frontier a follower may be and still receive hedged reads; the
	// prober's last health report drives the skip. 0 uses the default
	// (512); negative disables the router-side skip (the follower's
	// own guard still refuses). Keep it aligned with the cluster
	// Config's MaxStaleness.
	MaxStaleness int64
	// Budget splits a forward's context deadline across its attempts;
	// zero fields get the auth.DeadlineBudget defaults (3 attempts,
	// 50ms floor, 2s default allowance).
	Budget auth.DeadlineBudget
	// ProbeInterval paces the background prober Start launches
	// (default 250ms). Each probe is also bounded by one interval.
	ProbeInterval time.Duration
	// Seed drives breaker cooldown jitter (0 uses a fixed default).
	Seed uint64
}

type authTxKey struct {
	id   auth.ClientID
	chID uint64
}

type pendingAuthTx struct {
	tx *auth.RelayAuthTx
	// node is where the winning BeginAuth attempt landed; FinishAuth
	// must follow it there (the challenge is pinned to that node) and
	// feeds its breaker.
	node int
	at   time.Time
}

type pendingRemapTx struct {
	tx   *auth.RelayRemapTx
	node int
	at   time.Time
}

// NewRouter builds a router over cfg.ClientPeers.
func NewRouter(cfg RouterConfig) *Router {
	if cfg.TxTTL <= 0 {
		cfg.TxTTL = 30 * time.Second
	}
	if cfg.Self >= len(cfg.ClientPeers) {
		cfg.Self = -1
	}
	if cfg.Dial == nil {
		cfg.Dial = auth.DialRelay
	}
	if cfg.BreakerThreshold == 0 {
		cfg.BreakerThreshold = 5
	}
	if cfg.BreakerCooldown <= 0 {
		cfg.BreakerCooldown = 500 * time.Millisecond
	}
	if cfg.HedgeDelay == 0 {
		cfg.HedgeDelay = 20 * time.Millisecond
	}
	if cfg.MaxStaleness == 0 {
		cfg.MaxStaleness = 512
	}
	if cfg.ProbeInterval <= 0 {
		cfg.ProbeInterval = 250 * time.Millisecond
	}
	if cfg.Seed == 0 {
		cfg.Seed = 0xb4ea0e5
	}
	cfg.Budget = cfg.Budget.WithBudgetDefaults()
	r := &Router{
		cfg:    cfg,
		ring:   NewRing(len(cfg.ClientPeers), cfg.VNodes),
		health: newHealthTracker(len(cfg.ClientPeers)),
		relays: make(map[int]*auth.RelayClient),
		auths:  make(map[authTxKey]pendingAuthTx),
		remaps: make(map[auth.ClientID]pendingRemapTx),
	}
	if cfg.BreakerThreshold > 0 {
		r.breakers = make([]*breaker, len(cfg.ClientPeers))
		for i := range r.breakers {
			r.breakers[i] = newBreaker(cfg.BreakerThreshold, cfg.BreakerCooldown, cfg.Seed+uint64(i))
		}
	}
	return r
}

// Owner exposes the ring placement (monitoring, tests).
func (r *Router) Owner(id auth.ClientID) int { return r.ring.Owner(string(id)) }

// Peers reports the failure detector's view of every peer: probe
// RTT/staleness from the tracker, circuit state from the breakers.
func (r *Router) Peers() []PeerStatus {
	now := time.Now()
	out := make([]PeerStatus, len(r.cfg.ClientPeers))
	for i := range out {
		out[i] = r.health.status(i)
		out[i].Breaker = breakerClosed.String()
		if r.breakers != nil {
			out[i].Breaker = r.breakers[i].State(now).String()
		}
	}
	return out
}

// Start launches the background prober: every ProbeInterval it runs a
// probe/health exchange against each peer over the pooled relay
// connection, feeding the health tracker and driving breaker recovery
// (an answered probe closes the peer's breaker without waiting for
// live traffic to trial it). ctx bounds the prober; Close also stops
// it. Start is optional — an unstarted router still breaks and hedges
// on request-path evidence alone, it just probes nothing in the
// background.
func (r *Router) Start(ctx context.Context) {
	pctx, cancel := context.WithCancel(ctx)
	r.mu.Lock()
	if r.closed || r.cancel != nil {
		r.mu.Unlock()
		cancel()
		return
	}
	r.cancel = cancel
	r.mu.Unlock()
	r.wg.Add(1)
	go func() {
		defer r.wg.Done()
		r.probeLoop(pctx)
	}()
}

// probeLoop drives the prober until its context dies.
func (r *Router) probeLoop(ctx context.Context) {
	tick := time.NewTicker(r.cfg.ProbeInterval)
	defer tick.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-tick.C:
			for node := range r.cfg.ClientPeers {
				if node == r.cfg.Self || ctx.Err() != nil {
					continue
				}
				r.probeOne(ctx, node)
			}
		}
	}
}

// probeOne measures one peer. Success feeds the tracker and closes
// the peer's breaker; failure counts toward opening it — the prober is
// the detector's primary evidence stream, request outcomes the
// supplementary one.
func (r *Router) probeOne(ctx context.Context, node int) {
	pctx, cancel := context.WithTimeout(ctx, r.cfg.ProbeInterval)
	defer cancel()
	rc, err := r.relay(pctx, node)
	if err != nil {
		err = classifyDial(ctx, "", node, err)
	} else {
		var h auth.PeerHealth
		var rtt time.Duration
		h, rtt, err = rc.Probe(pctx)
		if err == nil {
			r.health.observe(node, rtt, h, time.Now())
			if r.breakers != nil {
				r.breakers[node].Success()
			}
			return
		}
		err = classifyAttempt(pctx, ctx, "", err)
		r.drop(node, rc, err)
	}
	if ctx.Err() != nil {
		// Shutdown, not peer death.
		return
	}
	r.health.observeFailure(node)
	r.account(node, err)
}

// BeginAuth forwards the opening half to the owner — hedging to the
// ring successor when the owner is open or slow — and parks the
// transaction handle for FinishAuth.
func (r *Router) BeginAuth(ctx context.Context, id auth.ClientID) (*crp.Challenge, error) {
	cands := r.ring.Owners(string(id), 2)
	if cands[0] == r.cfg.Self && r.cfg.Local != nil {
		return r.cfg.Local.BeginAuth(ctx, id)
	}
	ch, node, tx, err := r.beginAuthHedged(ctx, id, r.readTargets(cands))
	if err != nil {
		return nil, err
	}
	r.mu.Lock()
	r.sweepLocked(time.Now())
	if r.closed {
		r.mu.Unlock()
		tx.Abandon()
		return nil, unavailErrf(string(id), "router closed")
	}
	r.auths[authTxKey{id: id, chID: ch.ID}] = pendingAuthTx{tx: tx, node: node, at: time.Now()}
	r.mu.Unlock()
	return ch, nil
}

// readTargets filters the hedging candidates for a read-path forward:
// the local node is excluded (ownership short-circuits were handled
// already), peers with open breakers are skipped, and a hedge
// fallback known to be beyond the staleness bound is not worth an
// attempt (its own guard would refuse anyway).
func (r *Router) readTargets(cands []int) []int {
	now := time.Now()
	out := make([]int, 0, len(cands))
	for i, node := range cands {
		if node == r.cfg.Self {
			continue
		}
		if r.breakers != nil && !r.breakers[node].Allow(now) {
			continue
		}
		if i > 0 && r.cfg.MaxStaleness > 0 {
			if lag, known := r.health.staleness(node); known && lag > uint64(r.cfg.MaxStaleness) {
				continue
			}
		}
		out = append(out, node)
	}
	if r.cfg.HedgeDelay < 0 && len(out) > 1 {
		out = out[:1]
	}
	return out
}

// beginResult is one hedged attempt's outcome.
type beginResult struct {
	node int
	ch   *crp.Challenge
	tx   *auth.RelayAuthTx
	err  error
}

// beginAuthHedged forwards the opening half to targets[0], launching
// a hedge at targets[1] when the first attempt stays unanswered past
// HedgeDelay or fails retryably before it. First success wins through
// a claim flag; a losing attempt that also succeeded abandons its own
// transaction, so hedging never leaks a stream. Each attempt runs
// under a deadline carved from the caller's remaining budget.
func (r *Router) beginAuthHedged(ctx context.Context, id auth.ClientID, targets []int) (*crp.Challenge, int, *auth.RelayAuthTx, error) {
	if len(targets) == 0 {
		return nil, 0, nil, unavailErrf(string(id), "no live candidate node (circuit open)")
	}
	results := make(chan beginResult, len(targets))
	var claimed atomic.Bool
	launched := 0
	launch := func() {
		node := targets[launched]
		share := len(targets) - launched
		launched++
		r.wg.Add(1)
		go func() {
			defer r.wg.Done()
			actx, cancel := r.cfg.Budget.Carve(ctx, share)
			defer cancel()
			ch, tx, err := r.beginAuthOn(actx, ctx, node, id)
			if err != nil {
				results <- beginResult{node: node, err: err}
				return
			}
			if claimed.CompareAndSwap(false, true) {
				results <- beginResult{node: node, ch: ch, tx: tx}
				return
			}
			// Lost the claim after succeeding: release the stream.
			tx.Abandon()
		}()
	}
	launch()
	var hedge <-chan time.Time
	if len(targets) > 1 {
		t := time.NewTimer(r.cfg.HedgeDelay)
		defer t.Stop()
		hedge = t.C
	}
	pending := 1
	var firstErr error
	for {
		select {
		case <-hedge:
			hedge = nil
			if launched < len(targets) {
				launch()
				pending++
			}
		case res := <-results:
			if res.err == nil {
				return res.ch, res.node, res.tx, nil
			}
			pending--
			if !auth.Retryable(res.err) {
				// A typed refusal is authoritative for the client no
				// matter which node spoke it: do not wait out (or
				// launch) a hedge.
				if claimed.CompareAndSwap(false, true) {
					return nil, 0, nil, res.err
				}
				return r.drainForWin(results)
			}
			if firstErr == nil {
				firstErr = res.err
			}
			if pending == 0 {
				if launched < len(targets) {
					// The first attempt failed before the hedge timer:
					// fail over immediately.
					launch()
					pending++
					continue
				}
				return nil, 0, nil, firstErr
			}
		case <-ctx.Done():
			if claimed.CompareAndSwap(false, true) {
				return nil, 0, nil, &auth.AuthError{Code: auth.CodeCanceled, ClientID: id, Err: ctx.Err()}
			}
			return r.drainForWin(results)
		}
	}
}

// drainForWin is the claim-race epilogue: the coordinator lost the
// claim CAS, which only a succeeding attempt can win, so a success is
// (or is about to be) buffered in results. Receive until it arrives.
func (r *Router) drainForWin(results chan beginResult) (*crp.Challenge, int, *auth.RelayAuthTx, error) {
	for {
		res := <-results
		if res.err == nil {
			return res.ch, res.node, res.tx, nil
		}
	}
}

// beginAuthOn runs one opening attempt against node and feeds its
// breaker. actx is the carved per-attempt context; parent
// distinguishes caller cancellation from an attempt deadline blown by
// a hung peer.
func (r *Router) beginAuthOn(actx, parent context.Context, node int, id auth.ClientID) (*crp.Challenge, *auth.RelayAuthTx, error) {
	rc, err := r.relay(actx, node)
	if err != nil {
		err = classifyDial(parent, string(id), node, err)
		r.account(node, err)
		return nil, nil, err
	}
	ch, tx, err := rc.BeginAuth(actx, id)
	if err != nil {
		err = classifyAttempt(actx, parent, string(id), err)
		r.account(node, err)
		r.drop(node, rc, err)
		return nil, nil, err
	}
	r.account(node, nil)
	return ch, tx, nil
}

// errPeerDown tags router-synthesized transport failures — the
// evidence stream circuit breakers count. Peer-spoken typed errors
// (even unavailable ones, like a follower momentarily without its
// primary link) deliberately lack the tag: a node that answers frames
// is alive, however unhappy its answer, and tripping its breaker for
// a refusal would cascade one node's hiccup into fleet-wide
// no-candidate outages.
var errPeerDown = errors.New("peer transport failure")

// errConnChurn tags connection-loss failures — retryable like
// errPeerDown, but ambiguous as breaker evidence: a shed connection
// or a lossy accept kills every multiplexed stream on the relay at
// once, and the forced redial produces clean evidence (a dial
// outcome) on the very next attempt.
var errConnChurn = errors.New("relay connection lost")

// transportErrf is a retryable unavailable carrying the errPeerDown
// breaker tag.
func transportErrf(id string, format string, args ...any) error {
	return &auth.AuthError{
		Code:     auth.CodeUnavailable,
		ClientID: auth.ClientID(id),
		Err:      fmt.Errorf("%w: cluster: %w: %s", auth.ErrUnavailable, errPeerDown, fmt.Sprintf(format, args...)),
	}
}

// churnErrf is a retryable unavailable carrying the errConnChurn tag.
func churnErrf(id string, err error) error {
	return &auth.AuthError{
		Code:     auth.CodeUnavailable,
		ClientID: auth.ClientID(id),
		Err:      fmt.Errorf("%w: cluster: %w: %v", auth.ErrUnavailable, errConnChurn, err),
	}
}

// connLoss reports raw errors that mean the connection died under the
// attempt rather than the peer refusing or timing out.
func connLoss(err error) bool {
	return errors.Is(err, io.EOF) || errors.Is(err, net.ErrClosed) ||
		errors.Is(err, syscall.ECONNRESET) || errors.Is(err, syscall.EPIPE)
}

// classifyAttempt rewrites an attempt error for the retry machinery.
// An expiry of the carved per-attempt deadline while the caller's own
// context is still live is the peer's failure, not the client's — it
// becomes a retryable (and breaker-tagged) unavailable. And any error
// that is not a typed *AuthError is a transport fault by construction
// (a peer that answered at all answers with an error frame, which
// decodes typed): a raw socket error — the pooled relay torn down
// under a concurrent attempt, a deadline blown inside the framing
// layer — must come back retryable, not leak to the client untyped
// and poison the attempt accounting.
func classifyAttempt(actx, parent context.Context, id string, err error) error {
	if err == nil {
		return nil
	}
	if auth.CodeOf(err) == auth.CodeCanceled {
		if actx.Err() != nil && parent.Err() == nil {
			return transportErrf(id, "attempt deadline exceeded: %v", err)
		}
		var ae *auth.AuthError
		if !errors.As(err, &ae) {
			return &auth.AuthError{Code: auth.CodeCanceled, ClientID: auth.ClientID(id), Err: err}
		}
		return err
	}
	var ae *auth.AuthError
	if !errors.As(err, &ae) {
		if connLoss(err) {
			return churnErrf(id, err)
		}
		return transportErrf(id, "relay transport: %v", err)
	}
	return err
}

// classifyDial rewrites a relay-establishment failure: unless the
// caller itself gave up, a connection that cannot be established is
// peer-transport failure whatever the dialer returned.
func classifyDial(parent context.Context, id string, node int, err error) error {
	if auth.CodeOf(err) == auth.CodeCanceled && parent.Err() != nil {
		return &auth.AuthError{Code: auth.CodeCanceled, ClientID: auth.ClientID(id), Err: err}
	}
	return transportErrf(id, "dial node %d: %v", node, err)
}

// account feeds one attempt outcome into node's breaker: a tagged
// transport synthesis — a dial failure, an attempt deadline blown
// against a silent peer, a raw socket fault — counts against the
// peer; a typed protocol answer — even a refusal — proves the node
// alive; caller cancellation is evidence of nothing. A clean mid-
// stream EOF is deliberately ALSO evidence of nothing: the pooled
// relay is shared, so one torn connection fails every concurrent
// stream on it at once, and counting each as a separate strike would
// let a single flaky accept trip the breaker in one event. The
// redial the drop forces produces clean evidence on the next attempt
// either way.
func (r *Router) account(node int, err error) {
	if r.breakers == nil {
		return
	}
	switch {
	case err == nil:
		r.breakers[node].Success()
	case errors.Is(err, errConnChurn) || errors.Is(err, io.EOF):
	case errors.Is(err, errPeerDown):
		r.breakers[node].Failure(time.Now())
	case auth.CodeOf(err) == auth.CodeCanceled:
	default:
		r.breakers[node].Success()
	}
}

// FinishAuth forwards the closing half on the stream the winning
// BeginAuth attempt left open, under its own carved deadline.
func (r *Router) FinishAuth(ctx context.Context, id auth.ClientID, challengeID uint64, resp crp.Response) (auth.AuthVerdict, error) {
	owner := r.ring.Owner(string(id))
	if owner == r.cfg.Self && r.cfg.Local != nil {
		return r.cfg.Local.FinishAuth(ctx, id, challengeID, resp)
	}
	r.mu.Lock()
	p, ok := r.auths[authTxKey{id: id, chID: challengeID}]
	delete(r.auths, authTxKey{id: id, chID: challengeID})
	r.mu.Unlock()
	if !ok {
		return auth.AuthVerdict{}, &auth.AuthError{
			Code:     auth.CodeInvalidRequest,
			ClientID: id,
			Err:      errInvalidNoAuthTx,
		}
	}
	actx, cancel := r.cfg.Budget.Carve(ctx, 1)
	defer cancel()
	v, err := p.tx.Finish(actx, challengeID, resp)
	err = classifyAttempt(actx, ctx, string(id), err)
	r.account(p.node, err)
	return v, err
}

// BeginRemapTx forwards the opening half of a key update. Key updates
// are primary-affine writes: when the owner's breaker is open they
// fail fast with a retryable unavailable instead of hedging — two
// racing remap halves on different nodes could burn reserved pairs
// twice.
func (r *Router) BeginRemapTx(ctx context.Context, id auth.ClientID) (*auth.RemapRequest, error) {
	owner := r.ring.Owner(string(id))
	if owner == r.cfg.Self && r.cfg.Local != nil {
		return r.cfg.Local.BeginRemapTx(ctx, id)
	}
	if r.breakers != nil && !r.breakers[owner].Allow(time.Now()) {
		return nil, unavailErrf(string(id), "node %d circuit open; key updates do not fail over", owner)
	}
	actx, cancel := r.cfg.Budget.Carve(ctx, 1)
	defer cancel()
	rc, err := r.relay(actx, owner)
	if err != nil {
		err = classifyDial(ctx, string(id), owner, err)
		r.account(owner, err)
		return nil, err
	}
	req, tx, err := rc.BeginRemap(actx, id)
	if err != nil {
		err = classifyAttempt(actx, ctx, string(id), err)
		r.account(owner, err)
		r.drop(owner, rc, err)
		return nil, err
	}
	r.account(owner, nil)
	r.mu.Lock()
	r.sweepLocked(time.Now())
	if r.closed {
		r.mu.Unlock()
		tx.Abandon()
		return nil, unavailErrf(string(id), "router closed")
	}
	if old, dup := r.remaps[id]; dup {
		old.tx.Abandon()
	}
	r.remaps[id] = pendingRemapTx{tx: tx, node: owner, at: time.Now()}
	r.mu.Unlock()
	return req, nil
}

// FinishRemapTx forwards the closing half of a key update.
func (r *Router) FinishRemapTx(ctx context.Context, id auth.ClientID, success bool) error {
	owner := r.ring.Owner(string(id))
	if owner == r.cfg.Self && r.cfg.Local != nil {
		return r.cfg.Local.FinishRemapTx(ctx, id, success)
	}
	r.mu.Lock()
	p, ok := r.remaps[id]
	delete(r.remaps, id)
	r.mu.Unlock()
	if !ok {
		return &auth.AuthError{
			Code:     auth.CodeInvalidRequest,
			ClientID: id,
			Err:      errInvalidNoRemap,
		}
	}
	actx, cancel := r.cfg.Budget.Carve(ctx, 1)
	defer cancel()
	err := p.tx.Finish(actx, success)
	err = classifyAttempt(actx, ctx, string(id), err)
	r.account(p.node, err)
	return err
}

// Close stops the prober, abandons pending transactions, and releases
// the relay pool.
func (r *Router) Close() error {
	r.mu.Lock()
	r.closed = true
	cancel := r.cancel
	r.cancel = nil
	rcs := make([]*auth.RelayClient, 0, len(r.relays))
	for _, rc := range r.relays {
		rcs = append(rcs, rc)
	}
	r.relays = make(map[int]*auth.RelayClient)
	auths := make([]*auth.RelayAuthTx, 0, len(r.auths))
	for _, p := range r.auths {
		auths = append(auths, p.tx)
	}
	r.auths = make(map[authTxKey]pendingAuthTx)
	remaps := make([]*auth.RelayRemapTx, 0, len(r.remaps))
	for _, p := range r.remaps {
		remaps = append(remaps, p.tx)
	}
	r.remaps = make(map[auth.ClientID]pendingRemapTx)
	r.mu.Unlock()
	if cancel != nil {
		cancel()
	}
	for _, tx := range auths {
		tx.Abandon()
	}
	for _, tx := range remaps {
		tx.Abandon()
	}
	r.wg.Wait()
	for _, rc := range rcs {
		rc.Close()
	}
	return nil
}

// relay returns (dialing if needed) the pooled connection to owner.
// ctx bounds the dial — it is always a carved attempt or probe
// context, so a black-holed peer costs at most one attempt share,
// never an unbounded hang.
func (r *Router) relay(ctx context.Context, owner int) (*auth.RelayClient, error) {
	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		return nil, unavailErrf("", "router closed")
	}
	if rc, ok := r.relays[owner]; ok {
		r.mu.Unlock()
		return rc, nil
	}
	r.mu.Unlock()
	rc, err := r.cfg.Dial(ctx, r.cfg.ClientPeers[owner])
	if err != nil {
		return nil, err
	}
	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		rc.Close()
		return nil, unavailErrf("", "router closed")
	}
	if existing, ok := r.relays[owner]; ok {
		r.mu.Unlock()
		rc.Close()
		return existing, nil
	}
	r.relays[owner] = rc
	r.mu.Unlock()
	return rc, nil
}

// drop discards a relay whose transaction failed with a transport
// error, so the next forward redials. Typed protocol refusals keep
// the connection: only transport evidence suggests a dead socket.
func (r *Router) drop(owner int, rc *auth.RelayClient, err error) {
	if !errors.Is(err, errPeerDown) && !errors.Is(err, errConnChurn) && !errors.Is(err, io.EOF) {
		return
	}
	r.mu.Lock()
	if r.relays[owner] == rc {
		delete(r.relays, owner)
	}
	r.mu.Unlock()
	rc.Close()
}

// sweepLocked abandons forwarded transactions whose second half never
// arrived within TxTTL. Callers hold r.mu.
func (r *Router) sweepLocked(now time.Time) {
	for k, p := range r.auths {
		if now.Sub(p.at) > r.cfg.TxTTL {
			delete(r.auths, k)
			tx := p.tx
			r.wg.Add(1)
			go func() {
				defer r.wg.Done()
				tx.Abandon()
			}()
		}
	}
	for k, p := range r.remaps {
		if now.Sub(p.at) > r.cfg.TxTTL {
			delete(r.remaps, k)
			tx := p.tx
			r.wg.Add(1)
			go func() {
				defer r.wg.Done()
				tx.Abandon()
			}()
		}
	}
}
