package cluster

import (
	"context"
	"sync"
	"time"

	"repro/internal/auth"
	"repro/internal/crp"
)

// Router is a thin forwarding TxBackend: it consistent-hashes each
// client id to its owning node and forwards the transaction halves
// over pooled relay connections, pinning nothing heavier than the
// open transaction handle locally (verdicts carry the confirmation
// tag, so a router never holds session keys). A router can run
// standalone (Self < 0) as a stateless ingress tier, or embedded in a
// node (Self = that node's index) to short-circuit locally owned
// clients.
type Router struct {
	cfg  RouterConfig
	ring *Ring

	mu     sync.Mutex
	closed bool
	relays map[int]*auth.RelayClient
	auths  map[authTxKey]pendingAuthTx
	remaps map[auth.ClientID]pendingRemapTx
	// wg accounts the sweep's fire-and-forget Abandon goroutines so
	// Close does not race them against relay teardown.
	wg sync.WaitGroup
}

// RouterConfig describes the fleet a Router forwards into.
type RouterConfig struct {
	// ClientPeers lists every node's client-facing address; the ring is
	// built over their indexes.
	ClientPeers []string
	// Self is the index of the co-located node, served through Local
	// without a network hop; -1 for a standalone router.
	Self int
	// Local executes transactions for locally owned clients (required
	// when Self >= 0).
	Local auth.TxBackend
	// VNodes tunes ring granularity (0 uses the default).
	VNodes int
	// TxTTL bounds how long a begun-but-unfinished forwarded
	// transaction is held before it is abandoned (default 30s).
	TxTTL time.Duration
}

type authTxKey struct {
	id   auth.ClientID
	chID uint64
}

type pendingAuthTx struct {
	tx *auth.RelayAuthTx
	at time.Time
}

type pendingRemapTx struct {
	tx *auth.RelayRemapTx
	at time.Time
}

// NewRouter builds a router over cfg.ClientPeers.
func NewRouter(cfg RouterConfig) *Router {
	if cfg.TxTTL <= 0 {
		cfg.TxTTL = 30 * time.Second
	}
	if cfg.Self >= len(cfg.ClientPeers) {
		cfg.Self = -1
	}
	return &Router{
		cfg:    cfg,
		ring:   NewRing(len(cfg.ClientPeers), cfg.VNodes),
		relays: make(map[int]*auth.RelayClient),
		auths:  make(map[authTxKey]pendingAuthTx),
		remaps: make(map[auth.ClientID]pendingRemapTx),
	}
}

// Owner exposes the ring placement (monitoring, tests).
func (r *Router) Owner(id auth.ClientID) int { return r.ring.Owner(string(id)) }

// BeginAuth forwards the opening half to the owner and parks the
// transaction handle for FinishAuth.
func (r *Router) BeginAuth(ctx context.Context, id auth.ClientID) (*crp.Challenge, error) {
	owner := r.ring.Owner(string(id))
	if owner == r.cfg.Self && r.cfg.Local != nil {
		return r.cfg.Local.BeginAuth(ctx, id)
	}
	rc, err := r.relay(ctx, owner)
	if err != nil {
		return nil, err
	}
	ch, tx, err := rc.BeginAuth(ctx, id)
	if err != nil {
		r.drop(owner, rc, err)
		return nil, err
	}
	r.mu.Lock()
	r.sweepLocked(time.Now())
	if r.closed {
		r.mu.Unlock()
		tx.Abandon()
		return nil, unavailErrf(string(id), "router closed")
	}
	r.auths[authTxKey{id: id, chID: ch.ID}] = pendingAuthTx{tx: tx, at: time.Now()}
	r.mu.Unlock()
	return ch, nil
}

// FinishAuth forwards the closing half on the stream BeginAuth left
// open.
func (r *Router) FinishAuth(ctx context.Context, id auth.ClientID, challengeID uint64, resp crp.Response) (auth.AuthVerdict, error) {
	owner := r.ring.Owner(string(id))
	if owner == r.cfg.Self && r.cfg.Local != nil {
		return r.cfg.Local.FinishAuth(ctx, id, challengeID, resp)
	}
	r.mu.Lock()
	p, ok := r.auths[authTxKey{id: id, chID: challengeID}]
	delete(r.auths, authTxKey{id: id, chID: challengeID})
	r.mu.Unlock()
	if !ok {
		return auth.AuthVerdict{}, &auth.AuthError{
			Code:     auth.CodeInvalidRequest,
			ClientID: id,
			Err:      errInvalidNoAuthTx,
		}
	}
	return p.tx.Finish(ctx, challengeID, resp)
}

// BeginRemapTx forwards the opening half of a key update.
func (r *Router) BeginRemapTx(ctx context.Context, id auth.ClientID) (*auth.RemapRequest, error) {
	owner := r.ring.Owner(string(id))
	if owner == r.cfg.Self && r.cfg.Local != nil {
		return r.cfg.Local.BeginRemapTx(ctx, id)
	}
	rc, err := r.relay(ctx, owner)
	if err != nil {
		return nil, err
	}
	req, tx, err := rc.BeginRemap(ctx, id)
	if err != nil {
		r.drop(owner, rc, err)
		return nil, err
	}
	r.mu.Lock()
	r.sweepLocked(time.Now())
	if r.closed {
		r.mu.Unlock()
		tx.Abandon()
		return nil, unavailErrf(string(id), "router closed")
	}
	if old, dup := r.remaps[id]; dup {
		old.tx.Abandon()
	}
	r.remaps[id] = pendingRemapTx{tx: tx, at: time.Now()}
	r.mu.Unlock()
	return req, nil
}

// FinishRemapTx forwards the closing half of a key update.
func (r *Router) FinishRemapTx(ctx context.Context, id auth.ClientID, success bool) error {
	owner := r.ring.Owner(string(id))
	if owner == r.cfg.Self && r.cfg.Local != nil {
		return r.cfg.Local.FinishRemapTx(ctx, id, success)
	}
	r.mu.Lock()
	p, ok := r.remaps[id]
	delete(r.remaps, id)
	r.mu.Unlock()
	if !ok {
		return &auth.AuthError{
			Code:     auth.CodeInvalidRequest,
			ClientID: id,
			Err:      errInvalidNoRemap,
		}
	}
	return p.tx.Finish(ctx, success)
}

// Close abandons pending transactions and releases the relay pool.
func (r *Router) Close() error {
	r.mu.Lock()
	r.closed = true
	rcs := make([]*auth.RelayClient, 0, len(r.relays))
	for _, rc := range r.relays {
		rcs = append(rcs, rc)
	}
	r.relays = make(map[int]*auth.RelayClient)
	auths := make([]*auth.RelayAuthTx, 0, len(r.auths))
	for _, p := range r.auths {
		auths = append(auths, p.tx)
	}
	r.auths = make(map[authTxKey]pendingAuthTx)
	remaps := make([]*auth.RelayRemapTx, 0, len(r.remaps))
	for _, p := range r.remaps {
		remaps = append(remaps, p.tx)
	}
	r.remaps = make(map[auth.ClientID]pendingRemapTx)
	r.mu.Unlock()
	for _, tx := range auths {
		tx.Abandon()
	}
	for _, tx := range remaps {
		tx.Abandon()
	}
	r.wg.Wait()
	for _, rc := range rcs {
		rc.Close()
	}
	return nil
}

// relay returns (dialing if needed) the pooled connection to owner.
func (r *Router) relay(ctx context.Context, owner int) (*auth.RelayClient, error) {
	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		return nil, unavailErrf("", "router closed")
	}
	if rc, ok := r.relays[owner]; ok {
		r.mu.Unlock()
		return rc, nil
	}
	r.mu.Unlock()
	rc, err := auth.DialRelay(ctx, r.cfg.ClientPeers[owner])
	if err != nil {
		return nil, err
	}
	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		rc.Close()
		return nil, unavailErrf("", "router closed")
	}
	if existing, ok := r.relays[owner]; ok {
		r.mu.Unlock()
		rc.Close()
		return existing, nil
	}
	r.relays[owner] = rc
	r.mu.Unlock()
	return rc, nil
}

// drop discards a relay whose transaction failed with a transport
// error, so the next forward redials. Typed protocol refusals keep
// the connection: only unavailability suggests a dead peer.
func (r *Router) drop(owner int, rc *auth.RelayClient, err error) {
	if auth.CodeOf(err) != auth.CodeUnavailable {
		return
	}
	r.mu.Lock()
	if r.relays[owner] == rc {
		delete(r.relays, owner)
	}
	r.mu.Unlock()
	rc.Close()
}

// sweepLocked abandons forwarded transactions whose second half never
// arrived within TxTTL. Callers hold r.mu.
func (r *Router) sweepLocked(now time.Time) {
	for k, p := range r.auths {
		if now.Sub(p.at) > r.cfg.TxTTL {
			delete(r.auths, k)
			tx := p.tx
			r.wg.Add(1)
			go func() {
				defer r.wg.Done()
				tx.Abandon()
			}()
		}
	}
	for k, p := range r.remaps {
		if now.Sub(p.at) > r.cfg.TxTTL {
			delete(r.remaps, k)
			tx := p.tx
			r.wg.Add(1)
			go func() {
				defer r.wg.Done()
				tx.Abandon()
			}()
		}
	}
}
