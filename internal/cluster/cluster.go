// Package cluster replicates an authd enrollment database across N
// nodes and keeps it serving through the loss of any one of them.
//
// Topology: single primary, N-1 followers, asynchronous log shipping
// with synchronous acknowledgement. Every mutation (enrollment, pair
// burn, key rotation, counter advance, delete) journals through the
// primary's WAL exactly as on a single node; the WAL's Subscribe seam
// then fans the committed frames out to each connected follower, which
// appends the verbatim frame to its own log (byte-identical, CRC
// verified end to end), applies it to its in-memory replica through
// the idempotent Replay* appliers, and acknowledges. The primary's
// journal write does not return until ReplicaAcks followers have
// acknowledged the record, so an enrollment or burn the protocol
// committed to survives the primary's disk AND ReplicaAcks follower
// disks — or the client saw a retryable "unavailable" error and the
// record is not durably acked at all.
//
// Fencing falls out of the same rule: a deposed primary keeps
// accepting connections but has no followers, so every mutation times
// out waiting for acknowledgements and fails retryably. It can write
// its own log, but it cannot durably ack a client.
//
// Catch-up is snapshot-based: a (re)connecting follower subscribes to
// the primary's WAL first, then receives a serialized state snapshot
// tagged with the exact commit sequence the subscription started at,
// so the snapshot→feed handoff is gapless (overlap is absorbed by the
// idempotent appliers). The follower persists the adopted snapshot by
// compacting its own WAL, discarding any divergent tail from a
// previous reign.
//
// Failover is lease-based: the primary heartbeats every follower; a
// follower whose lease expires assumes the primary is gone and the
// deterministic successor — the next node index after the failed
// primary, modulo the cluster size — promotes itself under a higher
// term. Other followers probe forward through the ring until they find
// the node that answers with the highest term. A primary that sees a
// hello carrying a higher term steps down immediately. See DESIGN.md's
// Replication section for the guarantees and the limits of rank-based
// succession.
package cluster

import (
	"context"
	"fmt"
	"net"
	"sync"
	"time"

	"repro/internal/auth"
	"repro/internal/wal"
)

// Role is a node's current cluster role.
type Role int

const (
	// RoleFollower replicates the primary's log and serves reads
	// (challenge issuance by delegation, verification locally).
	RoleFollower Role = iota
	// RolePrimary owns the log: all mutations journal through it.
	RolePrimary
)

// String implements fmt.Stringer.
func (r Role) String() string {
	if r == RolePrimary {
		return "primary"
	}
	return "follower"
}

// DialFunc establishes replication connections; tests inject
// fault.Partition gates here.
type DialFunc func(ctx context.Context, network, addr string) (net.Conn, error)

// Config describes one node of a replicated authd cluster.
type Config struct {
	// NodeIndex is this node's position in Peers.
	NodeIndex int
	// Peers lists every node's replication address, index-aligned.
	// A single entry (or none) disables replication entirely: the node
	// is a standalone primary and journal writes do not wait.
	Peers []string
	// ClientPeers optionally lists every node's client-facing address,
	// index-aligned with Peers. Followers need it to forward key-update
	// transactions to the primary; empty disables forwarding (followers
	// answer remaps with a retryable "unavailable").
	ClientPeers []string
	// PrimaryIndex is the initial primary (default 0).
	PrimaryIndex int

	// Dir is this node's WAL directory.
	Dir string
	// Auth configures the embedded server. Auth.WAL is ignored: the
	// node attaches its replicating journal itself.
	Auth auth.Config
	// Seed seeds the embedded server's challenge sampling.
	Seed uint64
	// WAL tunes the local log.
	WAL wal.Options

	// ReplicaAcks is how many follower acknowledgements a journal write
	// needs before it returns (default 1 when the cluster has peers).
	ReplicaAcks int
	// AckTimeout bounds the wait for those acknowledgements, and every
	// replication-link write (default 2s).
	AckTimeout time.Duration
	// HeartbeatInterval is the primary's lease-renewal pace
	// (default 100ms).
	HeartbeatInterval time.Duration
	// LeaseTimeout is how long a follower tolerates silence before it
	// declares the primary dead (default 10 heartbeat intervals).
	LeaseTimeout time.Duration
	// RedialInterval is the base delay between follower reconnection
	// attempts (default 50ms). Consecutive failed sessions back off
	// exponentially with jitter from this base.
	RedialInterval time.Duration
	// RedialMax caps the grown redial backoff (default 20×
	// RedialInterval).
	RedialMax time.Duration
	// MaxStaleness is how many records a follower's replica may trail
	// the primary's advertised commit frontier while still serving
	// challenge issuance; beyond it the follower answers a retryable
	// unavailable so hedged reads land on a fresher node. 0 uses the
	// default (512); negative disables the guard.
	MaxStaleness int64

	// ReplListener, when non-nil, is used (once) as the replication
	// listener instead of binding Peers[NodeIndex] — tests bind :0
	// listeners up front so peer addresses are concrete. A follower
	// holds it unused until promotion.
	ReplListener net.Listener
	// Dial establishes outbound replication connections (default
	// net.Dialer). Chaos tests route this through a fault.Partition.
	Dial DialFunc
	// Logf receives replication lifecycle events (default: discard).
	Logf func(format string, args ...any)
}

// Status is a point-in-time snapshot of a node's replication state.
type Status struct {
	NodeIndex    int
	Role         Role
	Term         uint64
	PrimaryIndex int
	// CommitSeq is the local WAL's committed sequence.
	CommitSeq uint64
	// AppliedSeq is the last primary sequence applied (followers).
	AppliedSeq uint64
	// Lag is the primary's advertised commit sequence minus AppliedSeq
	// at the last heartbeat (followers).
	Lag uint64
	// Followers counts live replication sessions (primary).
	Followers int
	// Acked maps follower node index to its highest acknowledged
	// sequence (primary).
	Acked map[int]uint64
}

// Node is one member of a replicated authd cluster: an embedded
// auth.Server, its local WAL, and the replication machinery tying the
// two to the rest of the cluster.
type Node struct {
	cfg        Config
	replicated bool
	srv        *auth.Server
	wal        *wal.WAL
	localBE    auth.TxBackend
	backend    *nodeBackend
	dial       DialFunc
	logf       func(string, ...any)

	// ctx and cancel are set once in Start, before any traffic.
	ctx    context.Context
	cancel context.CancelFunc
	wg     sync.WaitGroup

	// The replication layer nests locks in a fixed order: Node.mu is
	// taken first (role/term transitions), then per-structure locks,
	// with the WAL's subscriber registry innermost (Subscribe runs
	// under Node.mu during follower attach).
	//lint:lockorder Node.mu < Router.mu < breaker.mu < healthTracker.mu < nodeBackend.mu < primaryLink.mu < primaryLink.sendMu < followerConn.sendMu < WAL.subMu
	mu          sync.Mutex
	started     bool
	closed      bool
	role        Role
	term        uint64
	primaryIdx  int
	lastContact time.Time
	preListener net.Listener
	repln       net.Listener
	followers   map[*followerConn]struct{}
	acked       map[int]uint64
	waiters     []*ackWaiter
	link        *primaryLink
	relay       *auth.RelayClient
	relayIdx    int
	appliedSeq  uint64
	lag         uint64
}

// subscribeBuf is the per-follower WAL subscription depth: a follower
// further than this many records behind the fsync stream is cut and
// re-synced by snapshot instead of holding writer memory.
const subscribeBuf = 4096

// maxRepFrame bounds one replication frame; snapshots of large fleets
// dominate, so it matches the WAL's own payload cap plus headroom.
const maxRepFrame = 1 << 26

// Open builds a node: opens (or creates) its WAL, recovers snapshot
// plus journal tail into the embedded server, and attaches the
// replicating journal. The node does not talk to the cluster until
// Start.
func Open(cfg Config) (*Node, error) {
	if len(cfg.Peers) == 0 {
		cfg.Peers = []string{""}
	}
	if cfg.NodeIndex < 0 || cfg.NodeIndex >= len(cfg.Peers) {
		return nil, configErrf("node index %d outside peers [0,%d)", cfg.NodeIndex, len(cfg.Peers))
	}
	if cfg.PrimaryIndex < 0 || cfg.PrimaryIndex >= len(cfg.Peers) {
		return nil, configErrf("primary index %d outside peers [0,%d)", cfg.PrimaryIndex, len(cfg.Peers))
	}
	if len(cfg.ClientPeers) != 0 && len(cfg.ClientPeers) != len(cfg.Peers) {
		return nil, configErrf("%d client peers for %d peers", len(cfg.ClientPeers), len(cfg.Peers))
	}
	replicated := len(cfg.Peers) > 1
	if cfg.ReplicaAcks == 0 && replicated {
		cfg.ReplicaAcks = 1
	}
	if cfg.ReplicaAcks > len(cfg.Peers)-1 {
		return nil, configErrf("%d replica acks from %d followers", cfg.ReplicaAcks, len(cfg.Peers)-1)
	}
	if cfg.AckTimeout <= 0 {
		cfg.AckTimeout = 2 * time.Second
	}
	if cfg.HeartbeatInterval <= 0 {
		cfg.HeartbeatInterval = 100 * time.Millisecond
	}
	if cfg.LeaseTimeout <= 0 {
		cfg.LeaseTimeout = 10 * cfg.HeartbeatInterval
	}
	if cfg.RedialInterval <= 0 {
		cfg.RedialInterval = 50 * time.Millisecond
	}
	if cfg.RedialMax <= 0 {
		cfg.RedialMax = 20 * cfg.RedialInterval
	}
	if cfg.MaxStaleness == 0 {
		cfg.MaxStaleness = 512
	}
	if cfg.Dial == nil {
		var d net.Dialer
		cfg.Dial = d.DialContext
	}
	if cfg.Logf == nil {
		cfg.Logf = func(string, ...any) {}
	}

	w, err := wal.Open(cfg.Dir, cfg.WAL)
	if err != nil {
		return nil, err
	}
	acfg := cfg.Auth
	acfg.WAL = nil
	srv := auth.NewServer(acfg, cfg.Seed)
	snap, ok, err := w.LatestSnapshot()
	if err != nil {
		w.Close()
		return nil, err
	}
	if ok {
		err := srv.LoadState(snap)
		snap.Close()
		if err != nil {
			w.Close()
			return nil, fmt.Errorf("cluster: load WAL snapshot: %w", err)
		}
	}
	if err := w.Replay(func(rec *wal.Record) error { return applyRecord(srv, rec) }); err != nil {
		w.Close()
		return nil, fmt.Errorf("cluster: replay WAL: %w", err)
	}
	// Decorrelate this node's challenge draws from every other stream
	// derived from the same seed: the primary's (a follower replaying
	// the primary's burns while walking the primary's draw sequence
	// samples nothing but burned pairs) and this node's own pre-crash
	// boots (the journal tail sequence is distinct per boot).
	srv.SaltChallengeStream(uint64(cfg.NodeIndex)<<32 ^ w.CommittedSeq())

	n := &Node{
		cfg:        cfg,
		replicated: replicated,
		srv:        srv,
		wal:        w,
		localBE:    auth.LocalBackend(srv),
		dial:       cfg.Dial,
		logf:       cfg.Logf,
		primaryIdx: cfg.PrimaryIndex,
		relayIdx:   -1,
	}
	n.mu.Lock()
	n.term = 1
	if cfg.NodeIndex == cfg.PrimaryIndex {
		n.role = RolePrimary
	}
	n.lastContact = time.Now()
	n.preListener = cfg.ReplListener
	n.followers = make(map[*followerConn]struct{})
	n.acked = make(map[int]uint64)
	n.mu.Unlock()
	n.backend = &nodeBackend{n: n, remaps: make(map[auth.ClientID]*auth.RelayRemapTx)}
	srv.AttachJournal(clusterJournal{n})
	return n, nil
}

// Start brings the node's replication machinery up: the primary opens
// its replication listener, a follower begins chasing the primary. ctx
// bounds everything the node does; Start must be called before the
// node serves traffic.
func (n *Node) Start(ctx context.Context) error {
	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		return unavailErrf("", "node %d is closed", n.cfg.NodeIndex)
	}
	if n.started {
		n.mu.Unlock()
		return configErrf("node %d already started", n.cfg.NodeIndex)
	}
	n.started = true
	role := n.role
	n.lastContact = time.Now()
	n.mu.Unlock()
	n.ctx, n.cancel = context.WithCancel(ctx)
	if !n.replicated {
		return nil
	}
	if role == RolePrimary {
		return n.startPrimary(n.ctx)
	}
	n.wg.Add(1)
	go n.runFollower(n.ctx)
	return nil
}

// Close shuts the node down: replication links drop, outstanding
// journal waits fail retryably, a final snapshot is compacted, and the
// WAL is released.
func (n *Node) Close() error {
	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		return nil
	}
	n.closed = true
	l := n.repln
	n.repln = nil
	pl := n.preListener
	n.preListener = nil
	fcs := make([]*followerConn, 0, len(n.followers))
	for fc := range n.followers {
		fcs = append(fcs, fc)
	}
	n.followers = make(map[*followerConn]struct{})
	lnk := n.link
	n.link = nil
	rc := n.relay
	n.relay = nil
	ws := n.waiters
	n.waiters = nil
	n.mu.Unlock()

	for _, w := range ws {
		w.ch <- false
	}
	if n.cancel != nil {
		n.cancel()
	}
	if l != nil {
		l.Close()
	}
	if pl != nil {
		pl.Close()
	}
	for _, fc := range fcs {
		fc.conn.Close()
	}
	if lnk != nil {
		lnk.shutdown()
	}
	if rc != nil {
		rc.Close()
	}
	n.wg.Wait()
	n.backend.shutdown()

	err := n.wal.Compact(n.srv.SaveState)
	if cerr := n.wal.Close(); err == nil {
		err = cerr
	}
	return err
}

// Server exposes the embedded auth server (enrollment runs through
// it; mutations replicate via the attached journal).
func (n *Node) Server() *auth.Server { return n.srv }

// Backend returns the node's TxBackend: direct execution when
// primary, delegated issuance plus local verification when follower.
// Wire servers for this node are built around it.
func (n *Node) Backend() auth.TxBackend { return n.backend }

// NewWireServer builds a wire server that serves this node's backend.
func (n *Node) NewWireServer(cfg auth.WireConfig) (*auth.WireServer, error) {
	return auth.NewWireServerBackend(n.backend, cfg)
}

// Role reports the node's current role.
func (n *Node) Role() Role {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.role
}

// Term reports the node's current primary term.
func (n *Node) Term() uint64 {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.term
}

// Status reports the node's replication state.
func (n *Node) Status() Status {
	n.mu.Lock()
	defer n.mu.Unlock()
	st := Status{
		NodeIndex:    n.cfg.NodeIndex,
		Role:         n.role,
		Term:         n.term,
		PrimaryIndex: n.primaryIdx,
		CommitSeq:    n.wal.CommittedSeq(),
		AppliedSeq:   n.appliedSeq,
		Lag:          n.lag,
		Followers:    len(n.followers),
	}
	if n.role == RolePrimary {
		st.Acked = make(map[int]uint64, len(n.acked))
		for i, s := range n.acked {
			st.Acked[i] = s
		}
	}
	return st
}

func (n *Node) isPrimary() bool {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.role == RolePrimary
}

// currentLink returns the live link to the primary, if any.
func (n *Node) currentLink() *primaryLink {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.link
}

// sleep waits d or until ctx is done.
func (n *Node) sleep(ctx context.Context, d time.Duration) {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
	case <-ctx.Done():
	}
}

func (n *Node) log(format string, args ...any) {
	n.logf("cluster[%d]: "+format, append([]any{n.cfg.NodeIndex}, args...)...)
}
