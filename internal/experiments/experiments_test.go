package experiments

import (
	"bytes"
	"strconv"
	"strings"
	"testing"
)

// tinyScale keeps experiment tests fast.
func tinyScale() MCScale {
	return MCScale{Maps: 4, ProfilesPerMap: 3, ChallengesPerMap: 2}
}

func cell(t *testing.T, tbl *Table, row, col int) float64 {
	t.Helper()
	v, err := strconv.ParseFloat(tbl.Rows[row][col], 64)
	if err != nil {
		t.Fatalf("cell (%d,%d) = %q not numeric", row, col, tbl.Rows[row][col])
	}
	return v
}

func TestTablePrint(t *testing.T) {
	tbl := &Table{
		ID:     "x",
		Title:  "demo",
		Header: []string{"a", "b"},
		Rows:   [][]string{{"1", "22"}, {"333", "4"}},
		Notes:  []string{"hello"},
	}
	var buf bytes.Buffer
	tbl.Fprint(&buf)
	out := buf.String()
	for _, want := range []string{"== x: demo ==", "333", "note: hello"} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q:\n%s", want, out)
		}
	}
}

func TestTableMarkdown(t *testing.T) {
	tbl := &Table{
		ID:     "x",
		Title:  "demo",
		Header: []string{"a", "b"},
		Rows:   [][]string{{"1", "2"}},
		Notes:  []string{"n1"},
	}
	var buf bytes.Buffer
	tbl.FprintMarkdown(&buf)
	out := buf.String()
	for _, want := range []string{"### x: demo", "| a | b |", "| --- | --- |", "| 1 | 2 |", "> n1"} {
		if !strings.Contains(out, want) {
			t.Fatalf("markdown missing %q:\n%s", want, out)
		}
	}
}

func TestFig1Shape(t *testing.T) {
	tbl := Fig1(1)
	if len(tbl.Rows) != 14 {
		t.Fatalf("rows = %d", len(tbl.Rows))
	}
	// Monotone non-decreasing cumulative counts; plausible total.
	prev := -1.0
	for i := range tbl.Rows {
		v := cell(t, tbl, i, 1)
		if v < prev {
			t.Fatalf("cumulative count decreased at row %d", i)
		}
		prev = v
	}
	if prev < 80 || prev > 180 {
		t.Fatalf("total failing lines = %v, want ~122", prev)
	}
}

func TestFig2Uniformity(t *testing.T) {
	tbl := Fig2(2)
	// 8 way rows + 8 set rows.
	if len(tbl.Rows) != 16 {
		t.Fatalf("rows = %d", len(tbl.Rows))
	}
	var total float64
	for i := 0; i < 8; i++ {
		if tbl.Rows[i][0] != "way" {
			t.Fatalf("row %d dimension = %q", i, tbl.Rows[i][0])
		}
		total += cell(t, tbl, i, 2)
	}
	if total < 60 || total > 220 {
		t.Fatalf("total errors over ways = %v", total)
	}
}

func TestFig3LowOverlap(t *testing.T) {
	tbl := Fig3(3)
	if len(tbl.Rows) != 8 {
		t.Fatalf("rows = %d", len(tbl.Rows))
	}
	// Each 768 KB cache carries a sane error count; overlap note is
	// checked via the notes text (paper: ~6 duplicates, sharing 2).
	for i := range tbl.Rows {
		c := cell(t, tbl, i, 1)
		if c < 5 || c > 80 {
			t.Fatalf("cache %d errors = %v", i, c)
		}
	}
	if !strings.Contains(tbl.Notes[0], "addresses appearing in >1 cache") {
		t.Fatal("missing overlap note")
	}
}

func TestSec3InterIntraSeparation(t *testing.T) {
	tbl := Sec3(4)
	inter := cell(t, tbl, 0, 1)
	intra := cell(t, tbl, 1, 1)
	if inter < 40 || inter > 55 {
		t.Fatalf("inter-die = %v%%, want ~44-50", inter)
	}
	if intra > 12 {
		t.Fatalf("intra-die = %v%%, want < ~6-12", intra)
	}
	if intra >= inter/2 {
		t.Fatalf("inter (%v) and intra (%v) poorly separated", inter, intra)
	}
}

func TestFig9Separation(t *testing.T) {
	tbl := Fig9(5, tinyScale())
	if len(tbl.Rows) != 32 {
		t.Fatalf("rows = %d", len(tbl.Rows))
	}
	// Means note must show intra10 << intra150 << inter ≈ 50%.
	if !strings.Contains(tbl.Notes[0], "means:") {
		t.Fatal("means note missing")
	}
}

func TestFig10Monotonicity(t *testing.T) {
	if testing.Short() {
		t.Skip("fig10 runs a binary search over Monte Carlo estimates")
	}
	tbl := Fig10(6, tinyScale())
	if len(tbl.Rows) != 4 {
		t.Fatalf("rows = %d", len(tbl.Rows))
	}
	// Tolerable noise grows with CRP size, and injection beats removal.
	prevInj, prevRem := 0.0, 0.0
	for i := range tbl.Rows {
		inj, rem := cell(t, tbl, i, 1), cell(t, tbl, i, 2)
		if inj < prevInj || rem < prevRem {
			t.Fatalf("tolerable noise not monotone in CRP size at row %d", i)
		}
		if inj < rem {
			t.Fatalf("row %d: removal (%v) tolerated more than injection (%v)", i, rem, inj)
		}
		prevInj, prevRem = inj, rem
	}
	// 512-bit anchors (paper: 142% / 62%).
	inj512, rem512 := cell(t, tbl, 3, 1), cell(t, tbl, 3, 2)
	if inj512 < 90 || inj512 > 250 {
		t.Fatalf("512-bit injection tolerance = %v%%, paper 142%%", inj512)
	}
	if rem512 < 35 || rem512 > 90 {
		t.Fatalf("512-bit removal tolerance = %v%%, paper 62%%", rem512)
	}
}

func TestFig11CDF(t *testing.T) {
	tbl := Fig11(7)
	if len(tbl.Rows) != 8 {
		t.Fatalf("rows = %d", len(tbl.Rows))
	}
	prev := 0.0
	for i := range tbl.Rows {
		v := cell(t, tbl, i, 1)
		if v < prev || v > 1 {
			t.Fatalf("CDF not monotone at row %d", i)
		}
		prev = v
	}
	first := cell(t, tbl, 0, 1)
	if first < 0.55 || first > 0.92 {
		t.Fatalf("first-attempt CDF = %v, paper 0.74", first)
	}
	if prev < 0.90 {
		t.Fatalf("eighth-attempt CDF = %v, paper 1.0", prev)
	}
}

func TestFig12NearIdeal(t *testing.T) {
	tbl := Fig12(8, tinyScale())
	if len(tbl.Rows) != 20 {
		t.Fatalf("rows = %d", len(tbl.Rows))
	}
	for i := range tbl.Rows {
		alias, uni := cell(t, tbl, i, 2), cell(t, tbl, i, 3)
		if alias < 0.90 || alias > 1.02 {
			t.Fatalf("row %d aliasing = %v", i, alias)
		}
		if uni < 0.90 || uni > 1.02 {
			t.Fatalf("row %d uniformity = %v", i, uni)
		}
	}
}

func TestFig13LinearAndUnderEnvelope(t *testing.T) {
	tbl := Fig13(9)
	if len(tbl.Rows) != 4 {
		t.Fatalf("rows = %d", len(tbl.Rows))
	}
	// Runtime grows with CRP size and attempts; 512x4 near the paper's
	// 125 ms envelope.
	for i := range tbl.Rows {
		prev := 0.0
		for col := 1; col <= 4; col++ {
			v := cell(t, tbl, i, col)
			if v <= prev {
				t.Fatalf("row %d: runtime not increasing across attempts", i)
			}
			prev = v
		}
	}
	v512x4 := cell(t, tbl, 3, 3)
	if v512x4 < 40 || v512x4 > 200 {
		t.Fatalf("512-bit x4 = %v ms, paper <125 ms", v512x4)
	}
}

func TestFig14RelativeGrowth(t *testing.T) {
	tbl := Fig14(10, tinyScale())
	base := cell(t, tbl, 0, 1)
	if base != 1.0 {
		t.Fatalf("baseline = %v, want 1.00", base)
	}
	// Sparser maps and longer CRPs are slower.
	for i := range tbl.Rows {
		prev := 0.0
		for col := 1; col <= 5; col++ {
			v := cell(t, tbl, i, col)
			if v <= prev {
				t.Fatalf("row %d: relative runtime not increasing towards sparser maps", i)
			}
			prev = v
		}
	}
	worst := cell(t, tbl, 3, 5)
	if worst < 8 {
		t.Fatalf("512-bit/20-error relative runtime = %v, want >> 1 (paper ~45)", worst)
	}
}

func TestFig15DecreasesWithErrors(t *testing.T) {
	tbl := Fig15(11, tinyScale())
	if len(tbl.Rows) != 10 {
		t.Fatalf("rows = %d", len(tbl.Rows))
	}
	// Distances shrink with more errors (down the rows) and grow with
	// cache size (across the columns).
	for col := 1; col <= 5; col++ {
		prev := 1e9
		for i := range tbl.Rows {
			v := cell(t, tbl, i, col)
			if v >= prev {
				t.Fatalf("col %d row %d: distance did not shrink (%v -> %v)", col, i, prev, v)
			}
			prev = v
		}
	}
	for i := range tbl.Rows {
		prev := 0.0
		for col := 1; col <= 5; col++ {
			v := cell(t, tbl, i, col)
			if v <= prev {
				t.Fatalf("row %d: distance did not grow with cache size", i)
			}
			prev = v
		}
	}
}

func TestFig16Learns(t *testing.T) {
	tbl := Fig16(12, 40000, 5000)
	if len(tbl.Rows) != 8 {
		t.Fatalf("rows = %d", len(tbl.Rows))
	}
	first := cell(t, tbl, 0, 1)
	last := cell(t, tbl, len(tbl.Rows)-1, 1)
	if last <= first {
		t.Fatalf("attacker failed to learn: %v -> %v", first, last)
	}
	if last < 0.75 {
		t.Fatalf("late prediction rate = %v", last)
	}
}

func TestExtTemperatureMonotone(t *testing.T) {
	tbl := ExtTemperature(14)
	if len(tbl.Rows) != 7 {
		t.Fatalf("rows = %d", len(tbl.Rows))
	}
	base := cell(t, tbl, 0, 1)
	hot := cell(t, tbl, len(tbl.Rows)-1, 1)
	if hot <= base {
		t.Fatalf("intra-die variation did not grow with temperature: %v -> %v", base, hot)
	}
	// Paper anchor: at +25C (row index 3) the variation stays under
	// ~8% (the paper's point measurement was <6%).
	at25 := cell(t, tbl, 3, 1)
	if at25 > 8 {
		t.Fatalf("intra-die at +25C = %v%%, paper <6%%", at25)
	}
}

func TestExtAgingBounded(t *testing.T) {
	tbl := ExtAging(15)
	if len(tbl.Rows) != 6 {
		t.Fatalf("rows = %d", len(tbl.Rows))
	}
	for i := range tbl.Rows {
		v := cell(t, tbl, i, 1)
		if v < 0 || v > 20 {
			t.Fatalf("row %d intra-die = %v%% out of plausible range", i, v)
		}
	}
	// A decade of aging must hurt more than a fresh chip's measurement
	// noise floor.
	if cell(t, tbl, 5, 1) <= cell(t, tbl, 0, 1) {
		t.Fatal("10-year aging indistinguishable from fresh silicon")
	}
}

func TestFig16DependencySlowerThanWinRate(t *testing.T) {
	const total, every = 20000, 10000
	dep := Fig16Dependency(12, total, every)
	win := Fig16(12, total, every)
	depLast := cell(t, dep, len(dep.Rows)-1, 1)
	winLast := cell(t, win, len(win.Rows)-1, 1)
	if depLast >= winLast {
		t.Fatalf("dependency model (%v) not slower than win-rate (%v)", depLast, winLast)
	}
	// The dependency model must still be above the 50% floor by 20K.
	if depLast < 0.50 {
		t.Fatalf("dependency model below chance: %v", depLast)
	}
}

func TestTable1MatchesPaper(t *testing.T) {
	tbl := Table1()
	want4MB := []float64{9192, 4596, 2298, 1149}
	for i, w := range want4MB {
		if got := cell(t, tbl, i, 1); got != w {
			t.Fatalf("4MB row %d = %v, want %v", i, got, w)
		}
	}
	// 32 MB column within integer-division rounding of the paper.
	want32MB := []float64{588350, 294175, 147087, 73543}
	for i, w := range want32MB {
		if got := cell(t, tbl, i, 2); got != w {
			t.Fatalf("32MB row %d = %v, want %v", i, got, w)
		}
	}
}
