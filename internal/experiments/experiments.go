// Package experiments regenerates every table and figure of the
// paper's evaluation (Section 6) from the simulated substrate. Each
// Fig*/Table* function runs one experiment and returns a printable
// Table; cmd/acsim exposes them as subcommands and bench_test.go runs
// them under testing.B.
//
// Experiments that the paper ran on Itanium hardware (Figures 1–3, 11,
// 13 and the Section 3 characterisation) run here against full
// simulated chips — variation model, ECC SRAM, voltage controller,
// firmware. Experiments the paper itself ran as Monte Carlo
// simulations (Figures 9, 10, 12, 14, 15, 16) run against randomly
// generated error maps, exactly as the paper describes.
package experiments

import (
	"fmt"
	"io"
	"strings"
)

// Table is a printable experiment result.
type Table struct {
	ID     string // experiment id, e.g. "fig9"
	Title  string
	Header []string
	Rows   [][]string
	Notes  []string
}

// Fprint renders the table in aligned plain text.
func (t *Table) Fprint(w io.Writer) {
	fmt.Fprintf(w, "== %s: %s ==\n", t.ID, t.Title)
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	printRow := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			parts[i] = pad(c, widths[i])
		}
		fmt.Fprintln(w, strings.TrimRight(strings.Join(parts, "  "), " "))
	}
	printRow(t.Header)
	sep := make([]string, len(t.Header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	printRow(sep)
	for _, row := range t.Rows {
		printRow(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(w, "note: %s\n", n)
	}
}

// FprintMarkdown renders the table as GitHub-flavoured markdown, for
// dropping experiment results straight into EXPERIMENTS.md-style
// documents.
func (t *Table) FprintMarkdown(w io.Writer) {
	fmt.Fprintf(w, "### %s: %s\n\n", t.ID, t.Title)
	fmt.Fprintf(w, "| %s |\n", strings.Join(t.Header, " | "))
	sep := make([]string, len(t.Header))
	for i := range sep {
		sep[i] = "---"
	}
	fmt.Fprintf(w, "| %s |\n", strings.Join(sep, " | "))
	for _, row := range t.Rows {
		fmt.Fprintf(w, "| %s |\n", strings.Join(row, " | "))
	}
	for _, n := range t.Notes {
		fmt.Fprintf(w, "\n> %s\n", n)
	}
}

func pad(s string, w int) string {
	if len(s) >= w {
		return s
	}
	return s + strings.Repeat(" ", w-len(s))
}

func f2(v float64) string { return fmt.Sprintf("%.2f", v) }
func f4(v float64) string { return fmt.Sprintf("%.4f", v) }
func d(v int) string      { return fmt.Sprintf("%d", v) }
