package experiments

import (
	"fmt"
	"math"

	"repro/internal/crp"
	"repro/internal/errormap"
	"repro/internal/montecarlo"
	"repro/internal/noise"
	"repro/internal/rng"
	"repro/internal/stats"
)

// MCScale controls Monte Carlo effort. The paper's full methodology
// (100 maps × 50 K noise profiles) is hours of compute; Default keeps
// every experiment under a minute while preserving the shapes, and
// Full approaches the paper's sample counts.
type MCScale struct {
	Maps             int // distinct error maps per configuration
	ProfilesPerMap   int // noise draws per map
	ChallengesPerMap int // challenges per (map, profile)
}

// DefaultScale is the fast, CI-friendly effort level.
func DefaultScale() MCScale {
	return MCScale{Maps: 12, ProfilesPerMap: 12, ChallengesPerMap: 4}
}

// FullScale approximates the paper's effort (slow).
func FullScale() MCScale {
	return MCScale{Maps: 100, ProfilesPerMap: 500, ChallengesPerMap: 8}
}

const (
	mc4MBLines  = 65536
	mcErrCount  = 100
	mcCRPLarge  = 512
	mcPInterRef = 0.46 // measured inter-chip per-bit disagreement (see Fig 9)
)

// Fig9 reproduces Figure 9: the Hamming-distance distributions of
// 512-bit responses for a 4 MB / 100-error cache — intra-chip under
// 10% and 150% injected noise versus the inter-chip distribution.
func Fig9(seed uint64, scale MCScale) *Table {
	g := errormap.NewGeometry(mc4MBLines)
	pop := montecarlo.Population{Geometry: g, Errors: mcErrCount, Seed: seed}

	const bins = 32
	h10 := stats.NewHistogram(0, mcCRPLarge, bins)
	h150 := stats.NewHistogram(0, mcCRPLarge, bins)
	hInter := stats.NewHistogram(0, mcCRPLarge, bins)

	type trialOut struct {
		d10, d150, dInter []float64
	}
	outs := montecarlo.Run(scale.Maps, 0, seed^0x919, func(trial int, r *rng.Rand) trialOut {
		base := pop.Plane(trial)
		other := pop.Plane(scale.Maps + trial) // an independent chip
		dfBase := base.DistanceTransform()
		dfOther := other.DistanceTransform()
		var out trialOut
		for p := 0; p < scale.ProfilesPerMap; p++ {
			n10 := noise.Apply(base, noise.InjectLevel(10), r)
			n150 := noise.Apply(base, noise.InjectLevel(150), r)
			df10 := n10.DistanceTransform()
			df150 := n150.DistanceTransform()
			for c := 0; c < scale.ChallengesPerMap; c++ {
				ch := crp.Generate(g, mcCRPLarge, 0, r)
				ref := evalOnField(ch, dfBase)
				out.d10 = append(out.d10, float64(ref.HammingDistance(evalOnField(ch, df10))))
				out.d150 = append(out.d150, float64(ref.HammingDistance(evalOnField(ch, df150))))
				out.dInter = append(out.dInter, float64(ref.HammingDistance(evalOnField(ch, dfOther))))
			}
		}
		return out
	})
	var all10, all150, allInter []float64
	for _, o := range outs {
		all10 = append(all10, o.d10...)
		all150 = append(all150, o.d150...)
		allInter = append(allInter, o.dInter...)
		for _, v := range o.d10 {
			h10.Add(v)
		}
		for _, v := range o.d150 {
			h150.Add(v)
		}
		for _, v := range o.dInter {
			hInter.Add(v)
		}
	}

	t := &Table{
		ID:     "fig9",
		Title:  "Hamming-distance distributions, 512-bit CRPs (4 MB, 100 errors)",
		Header: []string{"dist_bin", "intra_10pct", "intra_150pct", "inter"},
	}
	for i := 0; i < bins; i++ {
		t.Rows = append(t.Rows, []string{
			f2(h10.BinCenter(i)), f4(h10.Density(i)), f4(h150.Density(i)), f4(hInter.Density(i)),
		})
	}
	overlap150 := stats.OverlapFraction(h150, hInter)
	t.Notes = append(t.Notes,
		fmt.Sprintf("means: intra10=%.1f bits (%.1f%%), intra150=%.1f (%.1f%%), inter=%.1f (%.1f%%)",
			stats.Mean(all10), stats.Mean(all10)/mcCRPLarge*100,
			stats.Mean(all150), stats.Mean(all150)/mcCRPLarge*100,
			stats.Mean(allInter), stats.Mean(allInter)/mcCRPLarge*100),
		fmt.Sprintf("intra150/inter histogram overlap: %.2e (paper: ~2e-6 misidentification at 150%%)", overlap150),
		"paper: 10% noise shows no overlap with inter; 150% overlaps ~2 ppm")
	return t
}

func evalOnField(ch *crp.Challenge, df *errormap.DistanceField) crp.Response {
	resp := crp.NewResponse(len(ch.Bits))
	for i, b := range ch.Bits {
		var da, db int
		found := df != nil
		if found {
			da, db = df.DistLine(b.A), df.DistLine(b.B)
		}
		resp.SetBit(i, crp.ResponseBit(da, found, db, found))
	}
	return resp
}

// Fig10 reproduces Figure 10: the maximum noise (injected errors, or
// removed errors) tolerable per CRP size while keeping the
// misidentification rate below 1 ppm. The paper reports 142%/79%
// injection and 62%/45% removal for 512/256-bit CRPs.
func Fig10(seed uint64, scale MCScale) *Table {
	r := rng.New(seed ^ 0x1010)
	trials := scale.Maps / 2
	if trials < 4 {
		trials = 4
	}

	// Measure the inter-chip per-bit disagreement once.
	pInter := measurePInter(r, trials)

	crpSizes := []int{64, 128, 256, 512}
	t := &Table{
		ID:     "fig10",
		Title:  "Max tolerable noise for <1 ppm failure rate vs CRP size",
		Header: []string{"crp_bits", "max_inject_pct", "max_remove_pct"},
	}
	for _, n := range crpSizes {
		inj := maxTolerable(n, pInter, func(level float64) noise.Profile {
			return noise.InjectLevel(level)
		}, 400, r, trials)
		rem := maxTolerable(n, pInter, func(level float64) noise.Profile {
			return noise.RemoveLevel(level)
		}, 100, r, trials)
		t.Rows = append(t.Rows, []string{d(n), f2(inj), f2(rem)})
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("measured inter-chip per-bit disagreement: %.3f", pInter),
		"paper: 512-bit tolerates 142% injection / 62% removal; 256-bit 79% / 45%",
		"failure rate model: binomial FAR/FRR at the equal-error threshold (paper eq. 3-4)")
	return t
}

func measurePInter(r *rng.Rand, trials int) float64 {
	g := errormap.NewGeometry(mc4MBLines)
	var disagree, total int
	for tr := 0; tr < trials; tr++ {
		a := errormap.RandomPlane(g, mcErrCount, r)
		b := errormap.RandomPlane(g, mcErrCount, r)
		dfa, dfb := a.DistanceTransform(), b.DistanceTransform()
		for i := 0; i < 2048; i++ {
			x, y := r.Intn(g.Lines), r.Intn(g.Lines)
			if x == y {
				continue
			}
			ra := crp.ResponseBit(dfa.DistLine(x), true, dfa.DistLine(y), true)
			rb := crp.ResponseBit(dfb.DistLine(x), true, dfb.DistLine(y), true)
			if ra != rb {
				disagree++
			}
			total++
		}
	}
	return float64(disagree) / float64(total)
}

// maxTolerable binary-searches the highest noise level (in percent)
// whose implied failure rate stays below 1 ppm for n-bit CRPs.
func maxTolerable(n int, pInter float64, mk func(level float64) noise.Profile, hiBound float64, r *rng.Rand, trials int) float64 {
	failureAt := func(level float64) float64 {
		pIntra := noise.FlipProbability(mc4MBLines, mcErrCount, mk(level), trials, r)
		if pIntra <= 0 {
			pIntra = 1e-9
		}
		return stats.FailureRate(n, pIntra, pInter)
	}
	lo, hi := 0.0, hiBound
	if failureAt(hi) < 1e-6 {
		return hi
	}
	for iter := 0; iter < 12; iter++ {
		mid := (lo + hi) / 2
		if failureAt(mid) < 1e-6 {
			lo = mid
		} else {
			hi = mid
		}
	}
	return lo
}

// Fig12 reproduces Figure 12: bit-aliasing and uniformity relative to
// their ideal 50% values across CRP sizes and error-map densities.
// The paper finds both within ~1% of ideal (49% average) with a slight
// downward trend at higher error counts.
func Fig12(seed uint64, scale MCScale) *Table {
	g := errormap.NewGeometry(mc4MBLines)
	crpSizes := []int{64, 128, 256, 512}
	errCounts := []int{20, 40, 60, 80, 100}
	nChips := scale.Maps
	if nChips < 8 {
		nChips = 8
	}

	t := &Table{
		ID:     "fig12",
		Title:  "Bit-aliasing and uniformity relative to ideal (50%)",
		Header: []string{"crp_bits", "errors", "rel_bit_aliasing", "rel_uniformity"},
	}
	for _, errs := range errCounts {
		pop := montecarlo.Population{Geometry: g, Errors: errs, Seed: seed ^ uint64(errs)}
		fields := make([]*errormap.DistanceField, nChips)
		for i := 0; i < nChips; i++ {
			fields[i] = pop.Plane(i).DistanceTransform()
		}
		for _, bits := range crpSizes {
			gen := rng.New(seed ^ uint64(bits*errs))
			var onesSum float64
			var chipBits int
			var uniSum float64
			var uniN int
			for c := 0; c < scale.ChallengesPerMap*4; c++ {
				ch := crp.Generate(g, bits, 0, gen)
				responses := make([][]byte, nChips)
				for i, f := range fields {
					resp := evalOnField(ch, f)
					responses[i] = resp.Bits
					uniSum += stats.Uniformity(resp.Bits, bits)
					uniN++
				}
				for _, a := range stats.BitAliasing(responses, bits) {
					onesSum += a / 100 * float64(nChips)
					chipBits += nChips
				}
			}
			relAlias := onesSum / float64(chipBits) / 0.5
			relUni := uniSum / float64(uniN) / 50
			t.Rows = append(t.Rows, []string{d(bits), d(errs), f4(relAlias), f4(relUni)})
		}
	}
	t.Notes = append(t.Notes,
		"paper: both metrics ~0.98 of ideal (49% average), slight decline with error count",
		"the tie-breaks-to-0 rule of eq. (8) causes the 0-bias")
	return t
}

// Fig15 reproduces Figure 15: the average Manhattan distance to the
// nearest error as a function of the error count, for cache sizes from
// 256 KB to 4 MB.
func Fig15(seed uint64, scale MCScale) *Table {
	sizes := []struct {
		label string
		lines int
	}{
		{"256KB", 4096},
		{"512KB", 8192},
		{"1MB", 16384},
		{"2MB", 32768},
		{"4MB", 65536},
	}
	t := &Table{
		ID:     "fig15",
		Title:  "Average Manhattan distance to nearest error vs error count",
		Header: []string{"errors", "256KB", "512KB", "1MB", "2MB", "4MB"},
	}
	maps := scale.Maps
	if maps < 4 {
		maps = 4
	}
	for errs := 10; errs <= 100; errs += 10 {
		row := []string{d(errs)}
		for _, sz := range sizes {
			g := errormap.NewGeometry(sz.lines)
			means := montecarlo.Run(maps, 0, seed^uint64(errs*sz.lines), func(trial int, r *rng.Rand) float64 {
				return errormap.RandomPlane(g, errs, r).DistanceTransform().Mean()
			})
			row = append(row, f2(stats.Mean(means)))
		}
		t.Rows = append(t.Rows, row)
	}
	t.Notes = append(t.Notes,
		"theory: mean ~ sqrt(pi*n/(8k)); paper reports ~1.6%/error performance gain",
		fmt.Sprintf("4MB/10-error analytic anchor: %.1f lines", math.Sqrt(math.Pi*65536/80)))
	return t
}
