package experiments

import (
	"fmt"
	"sort"

	"repro/internal/cache"
	"repro/internal/crp"
	"repro/internal/errormap"
	"repro/internal/montecarlo"
	"repro/internal/rng"
	"repro/internal/sram"
	"repro/internal/stats"
	"repro/internal/variation"
)

// hwChip builds the raw hardware stack (array + handler) without the
// firmware layer, for characterisation experiments that drive the
// voltage directly.
func hwChip(seed uint64, geo cache.Geometry) *cache.ErrorHandler {
	model := variation.NewModel(seed, variation.DefaultParams())
	arr := sram.New(model, geo.Lines(), seed^0xfeed)
	return cache.NewErrorHandler(arr, geo)
}

// Fig1 reproduces Figure 1: the number of distinct cache lines with
// correctable errors as Vdd drops below the first-correctable-error
// voltage (Vcorr) in a 4 MB cache. The paper measures ≈122 lines over
// a 65 mV range (≈2 lines/mV).
func Fig1(seed uint64) *Table {
	h := hwChip(seed, cache.Geometry4MB)
	arr := h.Array()
	params := variation.DefaultParams()

	// Locate Vcorr: the highest per-line onset across the cache.
	vcorr := 0.0
	for l := 0; l < h.Geometry().Lines(); l++ {
		if v := arr.Profile(l).EffectiveOnset(0, arr.Environment(), params); v > vcorr {
			vcorr = v
		}
	}
	vcorrMV := int(vcorr*1000) + 1

	t := &Table{
		ID:     "fig1",
		Title:  "Distinct failing cache lines vs Vdd relative to Vcorr (4 MB)",
		Header: []string{"rel_mV", "cache_lines"},
	}
	seen := map[int]bool{}
	for rel := 0; rel <= 65; rel += 5 {
		arr.SetVoltage(float64(vcorrMV-rel) / 1000)
		res := h.Sweep()
		for _, l := range res.FailingLines {
			seen[l] = true
		}
		t.Rows = append(t.Rows, []string{d(-rel), d(len(seen))})
	}
	arr.SetVoltage(params.VNominal)
	total := len(seen)
	t.Notes = append(t.Notes,
		fmt.Sprintf("total distinct lines over 65 mV: %d (paper: 122, ~2 lines/mV)", total),
		fmt.Sprintf("average rate: %.2f lines/mV", float64(total)/65))
	return t
}

// Fig2 reproduces Figure 2: the spatial distribution of correctable
// error locations at the minimum safe Vdd across the sets and ways of
// a 4 MB cache — the paper observes uniformity.
func Fig2(seed uint64) *Table {
	h := hwChip(seed, cache.Geometry4MB)
	arr := h.Array()
	params := variation.DefaultParams()
	arr.SetVoltage(params.DefectBandHi - 0.065)
	plane := h.BuildPlane(8)
	arr.SetVoltage(params.VNominal)

	geo := h.Geometry()
	wayCounts := make([]int, geo.Ways)
	const setBins = 8
	setCounts := make([]int, setBins)
	for _, line := range plane.Errors() {
		set, way := geo.Addr(line)
		wayCounts[way]++
		setCounts[set*setBins/geo.Sets]++
	}
	t := &Table{
		ID:     "fig2",
		Title:  "Error distribution across sets/ways at min safe Vdd (4 MB)",
		Header: []string{"dimension", "bin", "errors"},
	}
	for w, c := range wayCounts {
		t.Rows = append(t.Rows, []string{"way", d(w), d(c)})
	}
	for b, c := range setCounts {
		lo := b * geo.Sets / setBins
		hi := (b+1)*geo.Sets/setBins - 1
		t.Rows = append(t.Rows, []string{"set", fmt.Sprintf("%d-%d", lo, hi), d(c)})
	}
	wayChi, wayDof := stats.ChiSquareUniform(wayCounts)
	setChi, setDof := stats.ChiSquareUniform(setCounts)
	t.Notes = append(t.Notes,
		fmt.Sprintf("%d errors total", plane.ErrorCount()),
		fmt.Sprintf("chi-square ways: %.1f (dof %d), sets: %.1f (dof %d) — near dof indicates uniformity",
			wayChi, wayDof, setChi, setDof))
	return t
}

// Fig3 reproduces Figure 3: superimposing the correctable error
// addresses of eight 768 KB caches and counting collisions. The paper
// finds only six addresses repeated, each across exactly two caches.
func Fig3(seed uint64) *Table {
	const nCaches = 8
	geo := cache.Geometry768KB
	counts := map[int]int{} // line address -> number of caches reporting it
	var totals []int
	models := montecarlo.Models(nCaches, seed, variation.DefaultParams())
	for _, m := range models {
		arr := sram.New(m, geo.Lines(), m.ChipSeed()^0xbeef)
		h := cache.NewErrorHandler(arr, geo)
		arr.SetVoltage(variation.DefaultParams().DefectBandHi - 0.065)
		plane := h.BuildPlane(8)
		totals = append(totals, plane.ErrorCount())
		for _, l := range plane.Errors() {
			counts[l]++
		}
	}
	shared := map[int]int{} // multiplicity -> how many addresses
	for _, c := range counts {
		if c > 1 {
			shared[c]++
		}
	}
	t := &Table{
		ID:     "fig3",
		Title:  "Correctable-error address overlap across 8 × 768 KB caches",
		Header: []string{"cache", "errors"},
	}
	for i, c := range totals {
		t.Rows = append(t.Rows, []string{d(i), d(c)})
	}
	dupAddrs := 0
	maxMult := 1
	var mults []int
	for m := range shared {
		mults = append(mults, m)
	}
	sort.Ints(mults)
	for _, m := range mults {
		dupAddrs += shared[m]
		if m > maxMult {
			maxMult = m
		}
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("addresses appearing in >1 cache: %d (paper: 6)", dupAddrs),
		fmt.Sprintf("maximum sharing multiplicity: %d (paper: 2)", maxMult))
	return t
}

// Sec3 reproduces the Section 3 characterisation: inter-die variation
// of 64-bit responses across eight 768 KB caches (paper: ≈44%) and
// intra-die variation for the same chip re-measured 25 °C hotter
// (paper: <6%).
func Sec3(seed uint64) *Table {
	const nCaches = 8
	geo := cache.Geometry768KB
	params := variation.DefaultParams()
	vtestMV := int((params.DefectBandHi-0.055)*1000 + 0.5)
	vtest := float64(vtestMV) / 1000
	mapGeo := errormap.NewGeometry(geo.Lines())

	models := montecarlo.Models(nCaches, seed, params)
	planes := make([]*errormap.Plane, nCaches)
	hotPlanes := make([]*errormap.Plane, nCaches)
	for i, m := range models {
		arr := sram.New(m, geo.Lines(), m.ChipSeed()^0x1111)
		h := cache.NewErrorHandler(arr, geo)
		arr.SetVoltage(vtest)
		planes[i] = h.BuildPlane(8)

		// Re-measure the same silicon, hot, with fresh measurement
		// noise.
		arrHot := sram.New(m, geo.Lines(), m.ChipSeed()^0x2222)
		hHot := cache.NewErrorHandler(arrHot, geo)
		arrHot.SetEnvironment(variation.Environment{DeltaT: 25})
		arrHot.SetVoltage(vtest)
		hotPlanes[i] = hHot.BuildPlane(8)
	}

	// One shared 64-bit challenge set evaluated on every chip.
	gen := rng.New(seed ^ 0xc0ffee)
	const nChallenges = 32
	var interSum, intraSum float64
	interN, intraN := 0, 0
	for c := 0; c < nChallenges; c++ {
		ch := crp.Generate(mapGeo, 64, vtestMV, gen)
		resp := make([]crp.Response, nCaches)
		hot := make([]crp.Response, nCaches)
		for i := range planes {
			resp[i] = evalOnPlane(ch, planes[i])
			hot[i] = evalOnPlane(ch, hotPlanes[i])
		}
		for i := 0; i < nCaches; i++ {
			for j := i + 1; j < nCaches; j++ {
				interSum += float64(resp[i].HammingDistance(resp[j])) / 64
				interN++
			}
			intraSum += float64(resp[i].HammingDistance(hot[i])) / 64
			intraN++
		}
	}
	inter := interSum / float64(interN) * 100
	intra := intraSum / float64(intraN) * 100
	t := &Table{
		ID:     "sec3",
		Title:  "Inter-die vs intra-die response variation (8 × 768 KB, 64-bit CRPs)",
		Header: []string{"metric", "percent"},
		Rows: [][]string{
			{"inter-die (uniqueness)", f2(inter)},
			{"intra-die (+25C)", f2(intra)},
		},
		Notes: []string{
			"paper: inter-die ~44% (ideal 50%), intra-die <6%",
		},
	}
	return t
}

func evalOnPlane(ch *crp.Challenge, p *errormap.Plane) crp.Response {
	df := p.DistanceTransform()
	resp := crp.NewResponse(len(ch.Bits))
	for i, b := range ch.Bits {
		var da, db int
		fa, fb := df != nil, df != nil
		if df != nil {
			da, db = df.DistLine(b.A), df.DistLine(b.B)
		}
		resp.SetBit(i, crp.ResponseBit(da, fa, db, fb))
	}
	return resp
}

// Fig11 reproduces Figure 11: the cumulative distribution of self-test
// attempts needed to trigger each known-error line at the minimum safe
// Vdd. The paper: 74% on the first attempt, 94% by the fourth, all by
// the eighth.
func Fig11(seed uint64) *Table {
	h := hwChip(seed, cache.Geometry4MB)
	arr := h.Array()
	params := variation.DefaultParams()
	arr.SetVoltage(params.DefectBandHi - 0.065)
	plane := h.BuildPlane(8)

	// Sample 50 known-error lines, as the paper does.
	errs := plane.Errors()
	gen := rng.New(seed ^ 0x50)
	sample := errs
	if len(sample) > 50 {
		idx := gen.SampleK(len(errs), 50)
		sample = make([]int, 50)
		for i, k := range idx {
			sample[i] = errs[k]
		}
	}
	const maxAttempts = 8
	counts := make([]int, maxAttempts+1) // attempts needed -> lines; [0] unused
	never := 0
	for _, line := range sample {
		res := h.TestLine(line, maxAttempts)
		if !res.Triggered {
			never++
			continue
		}
		counts[res.Attempts]++
	}
	t := &Table{
		ID:     "fig11",
		Title:  "CDF of self-test attempts to trigger known-error lines (min safe Vdd)",
		Header: []string{"attempts", "cdf"},
	}
	cum := 0
	for a := 1; a <= maxAttempts; a++ {
		cum += counts[a]
		t.Rows = append(t.Rows, []string{d(a), f4(float64(cum) / float64(len(sample)))})
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("%d of %d sampled lines never triggered in %d attempts", never, len(sample), maxAttempts),
		"paper: 74% at 1 attempt, 94% by 4, 100% by 8")
	return t
}
