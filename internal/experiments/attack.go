package experiments

import (
	"fmt"

	"repro/internal/attack"
	"repro/internal/crp"
	"repro/internal/errormap"
	"repro/internal/rng"
)

// Fig16 reproduces Figure 16: the prediction accuracy of a
// model-building attacker as a function of intercepted CRPs, on a
// single-voltage error map (the paper's worst case). The paper
// reaches 70% after 87 K and 90% after 374 K observed 64-bit CRPs.
//
// totalCRPs and sampleEvery control the curve resolution; the paper's
// axis runs to 400 K challenges.
func Fig16(seed uint64, totalCRPs, sampleEvery int) *Table {
	if totalCRPs <= 0 {
		totalCRPs = 400000
	}
	if sampleEvery <= 0 {
		sampleEvery = 25000
	}
	g := errormap.NewGeometry(mc4MBLines)
	plane := errormap.RandomPlane(g, mcErrCount, rng.New(seed))
	df := plane.DistanceTransform()
	gen := rng.New(seed ^ 0x16)

	model := attack.NewModel(g)
	curve := attack.LearningCurve(model, totalCRPs, sampleEvery, func() (*crp.Challenge, crp.Response) {
		ch := crp.Generate(g, 64, 0, gen)
		return ch, evalOnField(ch, df)
	})

	t := &Table{
		ID:     "fig16",
		Title:  "Model-building attack: prediction rate vs observed CRPs (64-bit, single Vdd)",
		Header: []string{"crps_observed", "prediction_rate"},
	}
	var at70, at90 int
	for _, pt := range curve {
		t.Rows = append(t.Rows, []string{d(pt.CRPs), f4(pt.Rate)})
		if at70 == 0 && pt.Rate >= 0.70 {
			at70 = pt.CRPs
		}
		if at90 == 0 && pt.Rate >= 0.90 {
			at90 = pt.CRPs
		}
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("70%% reached near %d CRPs (paper: 87K), 90%% near %d (paper: 374K); 0 = not reached", at70, at90),
		"this win-rate (Borda) attacker is stronger than the paper's dependency model; see fig16dep",
		"defence: rotate the logical map key (Section 4.5) before the curve leaves the floor")
	return t
}

// Fig16Dependency re-runs the Figure 16 experiment with the
// dependency-chain attacker, the model built exactly as the paper
// describes ("progressively establishes dependencies between points").
// It learns substantially more slowly than the win-rate model, closer
// to the paper's 87 K / 374 K crossovers.
func Fig16Dependency(seed uint64, totalCRPs, sampleEvery int) *Table {
	if totalCRPs <= 0 {
		totalCRPs = 200000
	}
	if sampleEvery <= 0 {
		sampleEvery = totalCRPs / 16
	}
	g := errormap.NewGeometry(mc4MBLines)
	plane := errormap.RandomPlane(g, mcErrCount, rng.New(seed))
	df := plane.DistanceTransform()
	gen := rng.New(seed ^ 0x16de)

	model := attack.NewDependencyModel(g)
	const evalChallenges = 100
	curve := attack.DependencyLearningCurve(model, totalCRPs, sampleEvery, evalChallenges, func() (*crp.Challenge, crp.Response) {
		ch := crp.Generate(g, 64, 0, gen)
		return ch, evalOnField(ch, df)
	})

	t := &Table{
		ID:     "fig16dep",
		Title:  "Dependency-model attack: prediction rate vs observed CRPs (64-bit, single Vdd)",
		Header: []string{"crps_observed", "prediction_rate"},
	}
	var at70, at90 int
	for _, pt := range curve {
		t.Rows = append(t.Rows, []string{d(pt.CRPs), f4(pt.Rate)})
		if at70 == 0 && pt.Rate >= 0.70 {
			at70 = pt.CRPs
		}
		if at90 == 0 && pt.Rate >= 0.90 {
			at90 = pt.CRPs
		}
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("70%% reached near %d CRPs (paper: 87K), 90%% near %d (paper: 374K); 0 = not reached", at70, at90),
		"depth-2 transitive chains over observed \"A at least as close as B\" facts")
	return t
}
