package experiments

import (
	"fmt"
	"time"

	"repro/internal/crp"
	"repro/internal/errormap"
	"repro/internal/firmware"
	"repro/internal/montecarlo"
	"repro/internal/rng"
	"repro/internal/stats"
)

// Fig13 reproduces Figure 13: single-authentication runtime as a
// function of CRP size for 1/2/4/8 self-test attempts per cache line,
// on a 4 MB cache (paper: 512-bit with 4 attempts completes in under
// 125 ms).
//
// The runtime model follows the prototype's cost structure: one SMI
// entry per payload segment, one Vdd transition per distinct level,
// and one per-line self-test cost per attempt; the number of lines
// tested comes from real ring searches over the chip's error map.
func Fig13(seed uint64) *Table {
	g := errormap.NewGeometry(65536)
	plane := errormap.RandomPlane(g, mcErrCount, rng.New(seed))
	costs := firmware.DefaultCostModel()
	gen := rng.New(seed ^ 0x13)

	t := &Table{
		ID:     "fig13",
		Title:  "Authentication runtime vs CRP size and self-test attempts (4 MB, 100 errors)",
		Header: []string{"crp_bits", "attempts_1_ms", "attempts_2_ms", "attempts_4_ms", "attempts_8_ms"},
	}
	for _, bits := range []int{64, 128, 256, 512} {
		row := []string{d(bits)}
		probes := probeCount(plane, bits, gen)
		for _, attempts := range []int{1, 2, 4, 8} {
			elapsed := runtimeModel(costs, bits, probes*attempts, 1)
			row = append(row, f2(float64(elapsed)/float64(time.Millisecond)))
		}
		t.Rows = append(t.Rows, row)
	}
	t.Notes = append(t.Notes,
		"paper: runtime linear in CRP size and attempts; 512-bit x4 attempts < 125 ms",
		fmt.Sprintf("cost model: SMI %v per 64-bit payload, Vdd transition %v, line test %v",
			costs.SMIEntry, costs.VddTransition, costs.LineTest))
	return t
}

// probeCount measures how many cache lines the firmware's ring search
// visits to answer a bits-long challenge on the plane (one self-test
// attempt per line).
func probeCount(plane *errormap.Plane, bits int, gen *rng.Rand) int {
	g := plane.Geometry()
	total := 0
	for i := 0; i < bits; i++ {
		for p := 0; p < 2; p++ {
			c := g.Coord(gen.Intn(g.Lines))
			_, _, probes := plane.RingSearch(c)
			total += probes
		}
	}
	return total
}

// runtimeModel converts probe counts into virtual time using the
// firmware cost model.
func runtimeModel(costs firmware.CostModel, bits, lineTests, vddLevels int) time.Duration {
	payloads := (bits + 63) / 64
	return costs.SMIEntry*time.Duration(1+payloads) +
		costs.VddTransition*time.Duration(vddLevels) +
		costs.LineTest*time.Duration(lineTests)
}

// Fig14 reproduces Figure 14: runtime relative to a 100-error,
// 64-bit-CRP baseline as the error map gets sparser. The paper sees up
// to ~45x for 512-bit CRPs on 20-error maps, because sparser maps need
// longer ring searches (Figure 15).
func Fig14(seed uint64, scale MCScale) *Table {
	g := errormap.NewGeometry(65536)
	costs := firmware.DefaultCostModel()
	errCounts := []int{100, 80, 60, 40, 20}
	crpSizes := []int{64, 128, 256, 512}

	maps := scale.Maps / 2
	if maps < 3 {
		maps = 3
	}
	// Average probe counts per (errors) over several maps.
	probesPerBitPair := map[int]float64{}
	for _, errs := range errCounts {
		res := montecarlo.Run(maps, 0, seed^uint64(errs), func(trial int, r *rng.Rand) float64 {
			plane := errormap.RandomPlane(g, errs, r)
			return float64(probeCount(plane, 64, r)) / 64
		})
		probesPerBitPair[errs] = stats.Mean(res)
	}

	baseline := runtimeModel(costs, 64, int(probesPerBitPair[100]*64), 1)
	t := &Table{
		ID:     "fig14",
		Title:  "Runtime relative to 100-error/64-bit baseline (4 MB)",
		Header: []string{"crp_bits", "100_errors", "80_errors", "60_errors", "40_errors", "20_errors"},
	}
	for _, bits := range crpSizes {
		row := []string{d(bits)}
		for _, errs := range errCounts {
			rt := runtimeModel(costs, bits, int(probesPerBitPair[errs]*float64(bits)), 1)
			row = append(row, f2(float64(rt)/float64(baseline)))
		}
		t.Rows = append(t.Rows, row)
	}
	t.Notes = append(t.Notes,
		"paper: up to ~45x for 512-bit CRPs on 20-error maps",
		"performance improves ~1.6% per additional error in the map (Section 6.5)")
	return t
}

// Table1 reproduces Table 1: daily authentication budget over a
// 10-year lifetime for 4 MB and 32 MB caches across CRP sizes, never
// reusing a challenge pair.
func Table1() *Table {
	t := &Table{
		ID:     "table1",
		Title:  "Daily authentications over a 10-year lifetime (single Vdd)",
		Header: []string{"crp_bits", "auth_per_day_4MB", "auth_per_day_32MB"},
	}
	const days = 3650
	for _, bits := range []int{64, 128, 256, 512} {
		t.Rows = append(t.Rows, []string{
			d(bits),
			fmt.Sprintf("%d", crp.DailyAuthentications(65536, bits, days)),
			fmt.Sprintf("%d", crp.DailyAuthentications(524288, bits, days)),
		})
	}
	t.Notes = append(t.Notes,
		"paper Table 1: 9192/4596/2298/1149 (4MB) and 588350/291175/147088/73544 (32MB)",
		"paper's 128-bit 32MB entry (291175) appears to be a typo for 294175 (it must be half the 64-bit row)",
		"additional CRPs become available at each extra Vdd level")
	return t
}
