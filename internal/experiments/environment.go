package experiments

import (
	"fmt"

	"repro/internal/cache"
	"repro/internal/crp"
	"repro/internal/errormap"
	"repro/internal/montecarlo"
	"repro/internal/rng"
	"repro/internal/sram"
	"repro/internal/variation"
)

// Extension experiments beyond the paper's figures: full environmental
// sensitivity sweeps. The paper reports single points (intra-die <6%
// at ΔT = 25 °C); these sweeps trace the whole curve, which is what a
// deployment needs to size its acceptance threshold.

// ExtTemperature measures intra-die response variation and error-map
// churn as a function of the temperature excursion from enrollment.
func ExtTemperature(seed uint64) *Table {
	return environmentSweep(
		"ext-temp",
		"Intra-die variation vs temperature excursion (extension)",
		"delta_T_C",
		seed,
		[]float64{0, 10, 20, 25, 30, 40, 50},
		func(x float64) variation.Environment { return variation.Environment{DeltaT: x} },
		[]string{
			"paper anchor: <6% intra-die at +25C (Section 3)",
			"threshold sizing: the acceptance threshold must clear the curve's field maximum",
		},
	)
}

// ExtAging measures intra-die variation and map churn versus
// accumulated NBTI/HCI stress. Aging only ever raises cell onsets, so
// churn is dominated by injected (new) errors — recalibration plus
// re-enrollment absorbs it (Section 5.3's periodic recalibration).
func ExtAging(seed uint64) *Table {
	return environmentSweep(
		"ext-aging",
		"Intra-die variation vs circuit aging (extension)",
		"age_years",
		seed,
		[]float64{0, 1, 2, 5, 7, 10},
		func(x float64) variation.Environment { return variation.Environment{AgeYears: x} },
		[]string{
			"aging shifts onsets up ~(years/10)^0.25; drift is one-sided (errors appear, rarely vanish)",
			"paper: 10-year lifetime assumed for the Table 1 budget",
		},
	)
}

// environmentSweep builds error maps for several chips at a fixed test
// voltage, re-measures them under each environment, and reports the
// mean response flip rate and map churn.
func environmentSweep(id, title, axis string, seed uint64, xs []float64,
	env func(x float64) variation.Environment, notes []string) *Table {

	const nChips = 4
	geo := cache.GeometryForSize(1 << 20)
	params := variation.DefaultParams()
	vtestMV := int((params.DefectBandHi-0.055)*1000 + 0.5)
	vtest := float64(vtestMV) / 1000
	mapGeo := errormap.NewGeometry(geo.Lines())

	models := montecarlo.Models(nChips, seed, params)
	baseline := make([]*errormap.Plane, nChips)
	baseFields := make([]*errormap.DistanceField, nChips)
	for i, m := range models {
		arr := sram.New(m, geo.Lines(), m.ChipSeed()^0xe0)
		h := cache.NewErrorHandler(arr, geo)
		arr.SetVoltage(vtest)
		baseline[i] = h.BuildPlane(8)
		baseFields[i] = baseline[i].DistanceTransform()
	}
	gen := rng.New(seed ^ 0xe1)
	challenges := make([]*crp.Challenge, 8)
	for i := range challenges {
		challenges[i] = crp.Generate(mapGeo, 64, vtestMV, gen)
	}

	t := &Table{
		ID:     id,
		Title:  title,
		Header: []string{axis, "intra_die_pct", "map_churn_pct"},
		Notes:  notes,
	}
	for _, x := range xs {
		var flipSum, churnSum float64
		var flipN int
		for i, m := range models {
			arr := sram.New(m, geo.Lines(), m.ChipSeed()^uint64(1000+int(x*10)))
			h := cache.NewErrorHandler(arr, geo)
			arr.SetEnvironment(env(x))
			arr.SetVoltage(vtest)
			plane := h.BuildPlane(8)
			field := plane.DistanceTransform()
			for _, ch := range challenges {
				ref := evalOnField(ch, baseFields[i])
				got := evalOnField(ch, field)
				flipSum += float64(ref.HammingDistance(got)) / 64
				flipN++
			}
			diff := baseline[i].DiffCount(plane)
			union := float64(baseline[i].ErrorCount()+plane.ErrorCount()+diff) / 2
			if union > 0 {
				churnSum += float64(diff) / union * 100
			}
		}
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%.0f", x),
			f2(flipSum / float64(flipN) * 100),
			f2(churnSum / nChips),
		})
	}
	return t
}
