package wire

import (
	"encoding/binary"
	"fmt"

	"repro/internal/crp"
)

// Payload encodings, all big endian. Every Append* helper appends a
// complete frame (header included) to dst and returns the grown
// slice; with enough capacity in dst none of them allocate. Every
// Decode* helper parses a payload, reusing the caller's destination
// buffers, so the challenge → response → verdict round trip runs
// allocation-free on both sides.

// Codec violations: structurally broken payloads. Transaction-fatal,
// not transport-fatal — the frame itself was well delimited.
var errTruncated = fmt.Errorf("wire: truncated payload")

// AppendClientID appends an opening frame (OpAuthenticate or OpRemap)
// whose payload is the raw client id bytes.
func AppendClientID(dst []byte, stream uint32, op Opcode, id string) []byte {
	dst, off := beginFrame(dst, stream, op)
	dst = append(dst, id...)
	return endFrame(dst, off)
}

// DecodeClientID interprets an opening payload. The returned bytes
// alias the payload; callers needing the id past the frame's life
// must copy (string conversion does).
func DecodeClientID(p []byte) []byte { return p }

// Challenge payload: u64 id, u32 nbits, then nbits × (u32 a, u32 b,
// u32 vdd_mv).

// AppendChallenge appends an OpChallenge frame.
func AppendChallenge(dst []byte, stream uint32, ch *crp.Challenge) []byte {
	dst, off := beginFrame(dst, stream, OpChallenge)
	dst = binary.BigEndian.AppendUint64(dst, ch.ID)
	dst = binary.BigEndian.AppendUint32(dst, uint32(len(ch.Bits)))
	for i := range ch.Bits {
		b := &ch.Bits[i]
		dst = binary.BigEndian.AppendUint32(dst, uint32(b.A))
		dst = binary.BigEndian.AppendUint32(dst, uint32(b.B))
		dst = binary.BigEndian.AppendUint32(dst, uint32(b.VddMV))
	}
	return endFrame(dst, off)
}

// maxChallengeBits bounds a decoded challenge's bit count so a hostile
// length prefix cannot force a huge allocation; the frame size cap
// already bounds the actual payload.
const maxChallengeBits = 1 << 20

// DecodeChallenge parses an OpChallenge payload into ch, reusing
// ch.Bits capacity.
func DecodeChallenge(p []byte, ch *crp.Challenge) error {
	if len(p) < 12 {
		return errTruncated
	}
	ch.ID = binary.BigEndian.Uint64(p[0:8])
	n := int(binary.BigEndian.Uint32(p[8:12]))
	if n < 0 || n > maxChallengeBits || len(p)-12 != n*12 {
		return fmt.Errorf("wire: challenge claims %d bits in %d payload bytes", n, len(p))
	}
	if cap(ch.Bits) < n {
		ch.Bits = make([]crp.PairBit, n)
	}
	ch.Bits = ch.Bits[:n]
	p = p[12:]
	for i := 0; i < n; i++ {
		ch.Bits[i] = crp.PairBit{
			A:     int(binary.BigEndian.Uint32(p[0:4])),
			B:     int(binary.BigEndian.Uint32(p[4:8])),
			VddMV: int(binary.BigEndian.Uint32(p[8:12])),
		}
		p = p[12:]
	}
	return nil
}

// Response payload: u64 challenge id, u32 bit count, packed bits.

// AppendResponse appends an OpResponse frame.
func AppendResponse(dst []byte, stream uint32, challengeID uint64, resp *crp.Response) []byte {
	dst, off := beginFrame(dst, stream, OpResponse)
	dst = binary.BigEndian.AppendUint64(dst, challengeID)
	dst = binary.BigEndian.AppendUint32(dst, uint32(resp.N))
	dst = append(dst, resp.Bits...)
	return endFrame(dst, off)
}

// DecodeResponse parses an OpResponse payload into resp, reusing
// resp.Bits capacity, and returns the challenge id.
func DecodeResponse(p []byte, resp *crp.Response) (uint64, error) {
	if len(p) < 12 {
		return 0, errTruncated
	}
	id := binary.BigEndian.Uint64(p[0:8])
	n := int(binary.BigEndian.Uint32(p[8:12]))
	nbytes := (n + 7) / 8
	if n < 0 || n > maxChallengeBits || len(p)-12 != nbytes {
		return 0, fmt.Errorf("wire: response claims %d bits in %d payload bytes", n, len(p))
	}
	resp.N = n
	if cap(resp.Bits) < nbytes {
		resp.Bits = make([]byte, nbytes)
	}
	resp.Bits = resp.Bits[:nbytes]
	copy(resp.Bits, p[12:])
	return id, nil
}

// Verdict payload: u8 flags, then a 32-byte confirmation tag when
// flagConfirm is set.

// Verdict is the decoded form of an OpVerdict payload.
type Verdict struct {
	Accepted     bool
	RemapAdvised bool
	// HasConfirm distinguishes an absent tag from a zero tag.
	HasConfirm bool
	// Confirm is HMAC(sessionKey, confirm label), raw bytes (the v1
	// JSON framing hex-encoded the same value).
	Confirm [32]byte
}

const (
	flagAccepted     = 1 << 0
	flagRemapAdvised = 1 << 1
	flagConfirm      = 1 << 2
)

// AppendVerdict appends an OpVerdict frame.
func AppendVerdict(dst []byte, stream uint32, v Verdict) []byte {
	dst, off := beginFrame(dst, stream, OpVerdict)
	var flags byte
	if v.Accepted {
		flags |= flagAccepted
	}
	if v.RemapAdvised {
		flags |= flagRemapAdvised
	}
	if v.HasConfirm {
		flags |= flagConfirm
	}
	dst = append(dst, flags)
	if v.HasConfirm {
		dst = append(dst, v.Confirm[:]...)
	}
	return endFrame(dst, off)
}

// DecodeVerdict parses an OpVerdict payload.
func DecodeVerdict(p []byte) (Verdict, error) {
	if len(p) < 1 {
		return Verdict{}, errTruncated
	}
	v := Verdict{
		Accepted:     p[0]&flagAccepted != 0,
		RemapAdvised: p[0]&flagRemapAdvised != 0,
		HasConfirm:   p[0]&flagConfirm != 0,
	}
	if v.HasConfirm {
		if len(p) != 1+len(v.Confirm) {
			return Verdict{}, errTruncated
		}
		copy(v.Confirm[:], p[1:])
	} else if len(p) != 1 {
		return Verdict{}, errTruncated
	}
	return v, nil
}

// AppendRemapDone appends an OpRemapDone frame (payload: u8 success).
func AppendRemapDone(dst []byte, stream uint32, success bool) []byte {
	dst, off := beginFrame(dst, stream, OpRemapDone)
	var b byte
	if success {
		b = 1
	}
	dst = append(dst, b)
	return endFrame(dst, off)
}

// DecodeRemapDone parses an OpRemapDone payload.
func DecodeRemapDone(p []byte) (bool, error) {
	if len(p) != 1 {
		return false, errTruncated
	}
	return p[0] != 0, nil
}

// AppendRemapAck appends an empty-payload OpRemapAck frame.
func AppendRemapAck(dst []byte, stream uint32) []byte {
	dst, off := beginFrame(dst, stream, OpRemapAck)
	return endFrame(dst, off)
}

// AppendRaw appends a frame whose payload the caller already encoded
// (the remap-challenge JSON body rides in one of these).
func AppendRaw(dst []byte, stream uint32, op Opcode, payload []byte) []byte {
	dst, off := beginFrame(dst, stream, op)
	dst = append(dst, payload...)
	return endFrame(dst, off)
}

// Error payload: u8 code length, code, u16 client length, client,
// remainder message. Codes are the stable ErrorCode strings of the
// auth taxonomy.

// AppendError appends an OpError frame.
func AppendError(dst []byte, stream uint32, code, client, msg string) []byte {
	if len(code) > 0xFF {
		code = code[:0xFF]
	}
	if len(client) > 0xFFFF {
		client = client[:0xFFFF]
	}
	dst, off := beginFrame(dst, stream, OpError)
	dst = append(dst, byte(len(code)))
	dst = append(dst, code...)
	dst = binary.BigEndian.AppendUint16(dst, uint16(len(client)))
	dst = append(dst, client...)
	dst = append(dst, msg...)
	return endFrame(dst, off)
}

// DecodeError parses an OpError payload. The error path allocates its
// strings — it is off the hot path by definition.
func DecodeError(p []byte) (code, client, msg string, err error) {
	if len(p) < 1 {
		return "", "", "", errTruncated
	}
	cl := int(p[0])
	p = p[1:]
	if len(p) < cl+2 {
		return "", "", "", errTruncated
	}
	code = string(p[:cl])
	p = p[cl:]
	il := int(binary.BigEndian.Uint16(p[0:2]))
	p = p[2:]
	if len(p) < il {
		return "", "", "", errTruncated
	}
	client = string(p[:il])
	msg = string(p[il:])
	return code, client, msg, nil
}
