package wire

import (
	"bufio"
	"bytes"
	"testing"

	"repro/internal/crp"
)

// FuzzDecoders throws arbitrary payload bytes at every payload
// decoder: none may panic or over-read, whatever the length prefixes
// claim.
func FuzzDecoders(f *testing.F) {
	f.Add([]byte{})
	f.Add(AppendChallenge(nil, 1, testChallenge(4))[HeaderLen:])
	resp := crp.NewResponse(16)
	f.Add(AppendResponse(nil, 1, 9, &resp)[HeaderLen:])
	f.Add(AppendVerdict(nil, 1, Verdict{Accepted: true, HasConfirm: true})[HeaderLen:])
	f.Add(AppendError(nil, 1, "internal", "dev", "boom")[HeaderLen:])
	f.Add([]byte{0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF})

	f.Fuzz(func(t *testing.T, p []byte) {
		var ch crp.Challenge
		if err := DecodeChallenge(p, &ch); err == nil {
			if len(ch.Bits) > maxChallengeBits {
				t.Fatalf("oversized challenge slipped through: %d bits", len(ch.Bits))
			}
		}
		var r crp.Response
		if _, err := DecodeResponse(p, &r); err == nil && len(r.Bits) != (r.N+7)/8 {
			t.Fatalf("response bits/len mismatch: %d bytes for %d bits", len(r.Bits), r.N)
		}
		DecodeVerdict(p)
		DecodeError(p)
		DecodeRemapDone(p)
	})
}

// FuzzReadFrame feeds arbitrary byte streams to the frame reader: it
// must never panic, never allocate beyond the payload cap, and always
// either produce a well-formed frame or a typed framing error.
func FuzzReadFrame(f *testing.F) {
	f.Add(AppendChallenge(nil, 7, testChallenge(8)))
	f.Add([]byte{Magic, Version, 0, 0, 0, 1, 2, 0xFF, 0xFF, 0xFF, 0xFF})
	f.Add([]byte("{\"type\":\"authenticate\"}\n"))
	f.Add(bytes.Repeat([]byte{Magic}, 64))

	f.Fuzz(func(t *testing.T, data []byte) {
		br := bufio.NewReader(bytes.NewReader(data))
		b := GetBuf()
		defer PutBuf(b)
		for i := 0; i < 64; i++ {
			if err := ReadFrameInto(br, b, 1<<16); err != nil {
				return
			}
			if len(b.B) > 1<<16 {
				t.Fatalf("payload %d exceeds cap", len(b.B))
			}
		}
	})
}
