package wire

import (
	"bufio"
	"bytes"
	"testing"

	"repro/internal/crp"
)

// TestVerifyPathZeroAlloc is the regression gate for the zero-alloc
// guarantee: encoding and decoding the whole hot transaction —
// challenge out, response back, verdict out — must not allocate once
// buffers have warmed up. scripts/check.sh runs this test by name.
func TestVerifyPathZeroAlloc(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are not stable under the race detector")
	}
	ch := testChallenge(256)
	resp := crp.NewResponse(256)
	for i := 0; i < resp.N; i += 5 {
		resp.SetBit(i, 1)
	}
	verdict := Verdict{Accepted: true, HasConfirm: true, Confirm: [32]byte{9}}

	// Warmed reusable state: encode buffer, read buffer, decode
	// destinations, and the reader plumbing.
	enc := make([]byte, 0, 16<<10)
	frame := GetBuf()
	var decCh crp.Challenge
	var decResp crp.Response
	src := bytes.NewReader(nil)
	br := bufio.NewReaderSize(src, 32<<10)

	run := func(f func()) float64 { return testing.AllocsPerRun(200, f) }

	read := func() {
		src.Reset(enc)
		br.Reset(src)
		if err := ReadFrameInto(br, frame, 1<<20); err != nil {
			t.Fatal(err)
		}
	}

	if n := run(func() {
		enc = AppendChallenge(enc[:0], 1, ch)
		read()
		if err := DecodeChallenge(frame.B, &decCh); err != nil {
			t.Fatal(err)
		}
	}); n != 0 {
		t.Fatalf("challenge encode+decode allocates %.1f/op, want 0", n)
	}

	if n := run(func() {
		enc = AppendResponse(enc[:0], 1, ch.ID, &resp)
		read()
		if _, err := DecodeResponse(frame.B, &decResp); err != nil {
			t.Fatal(err)
		}
	}); n != 0 {
		t.Fatalf("response encode+decode allocates %.1f/op, want 0", n)
	}

	if n := run(func() {
		enc = AppendVerdict(enc[:0], 1, verdict)
		read()
		if _, err := DecodeVerdict(frame.B); err != nil {
			t.Fatal(err)
		}
	}); n != 0 {
		t.Fatalf("verdict encode+decode allocates %.1f/op, want 0", n)
	}
}
