package wire

import (
	"encoding/binary"
	"fmt"

	"repro/internal/crp"
)

// Replication payload encodings, big endian like everything else in
// this package. Replication frames ride the same 11-byte header as
// client frames but are spoken only on a node's dedicated replication
// listener; the client-facing demultiplexer answers any of them with
// a typed invalid_request error. Stream 0 carries the session-scoped
// flow (hello, snapshot, records, acks, heartbeats); nonzero streams
// multiplex concurrent challenge proposals.

// RepHello opens a replication session: the follower identifies
// itself and states the highest primary term it has observed, so a
// deposed primary can be refused at the door.
type RepHello struct {
	NodeIndex uint32
	Term      uint64
}

// AppendRepHello appends an OpRepHello frame on stream 0.
func AppendRepHello(dst []byte, h RepHello) []byte {
	dst, off := beginFrame(dst, 0, OpRepHello)
	dst = binary.BigEndian.AppendUint32(dst, h.NodeIndex)
	dst = binary.BigEndian.AppendUint64(dst, h.Term)
	return endFrame(dst, off)
}

// DecodeRepHello parses an OpRepHello payload.
func DecodeRepHello(p []byte) (RepHello, error) {
	if len(p) != 12 {
		return RepHello{}, errTruncated
	}
	return RepHello{
		NodeIndex: binary.BigEndian.Uint32(p[0:4]),
		Term:      binary.BigEndian.Uint64(p[4:12]),
	}, nil
}

// RepSnapshot is the catch-up transfer: the primary's term, the
// commit sequence the snapshot covers, and the serialized state. A
// follower loads State, then applies the record feed from SnapSeq+1
// on — the WAL's Subscribe boundary guarantees the handoff is
// gapless.
type RepSnapshot struct {
	Term    uint64
	SnapSeq uint64
	// State aliases the payload; copy to keep it past the frame.
	State []byte
}

// AppendRepSnapshot appends an OpRepSnapshot frame on stream 0.
func AppendRepSnapshot(dst []byte, s RepSnapshot) []byte {
	dst, off := beginFrame(dst, 0, OpRepSnapshot)
	dst = binary.BigEndian.AppendUint64(dst, s.Term)
	dst = binary.BigEndian.AppendUint64(dst, s.SnapSeq)
	dst = append(dst, s.State...)
	return endFrame(dst, off)
}

// DecodeRepSnapshot parses an OpRepSnapshot payload.
func DecodeRepSnapshot(p []byte) (RepSnapshot, error) {
	if len(p) < 16 {
		return RepSnapshot{}, errTruncated
	}
	return RepSnapshot{
		Term:    binary.BigEndian.Uint64(p[0:8]),
		SnapSeq: binary.BigEndian.Uint64(p[8:16]),
		State:   p[16:],
	}, nil
}

// RepRecord ships one committed WAL frame: the primary's commit
// sequence number plus the verbatim on-disk frame bytes (8-byte
// length+CRC32C header and payload), so the follower's log stays
// byte-identical and the CRC is verified end to end.
type RepRecord struct {
	Seq uint64
	// Frame aliases the payload; copy to keep it past the frame.
	Frame []byte
}

// AppendRepRecord appends an OpRepRecord frame on stream 0.
func AppendRepRecord(dst []byte, r RepRecord) []byte {
	dst, off := beginFrame(dst, 0, OpRepRecord)
	dst = binary.BigEndian.AppendUint64(dst, r.Seq)
	dst = append(dst, r.Frame...)
	return endFrame(dst, off)
}

// DecodeRepRecord parses an OpRepRecord payload.
func DecodeRepRecord(p []byte) (RepRecord, error) {
	if len(p) < 8 {
		return RepRecord{}, errTruncated
	}
	return RepRecord{
		Seq:   binary.BigEndian.Uint64(p[0:8]),
		Frame: p[8:],
	}, nil
}

// AppendRepAck appends an OpRepAck frame on stream 0: every record up
// to and including seq is durably applied on the follower.
func AppendRepAck(dst []byte, seq uint64) []byte {
	dst, off := beginFrame(dst, 0, OpRepAck)
	dst = binary.BigEndian.AppendUint64(dst, seq)
	return endFrame(dst, off)
}

// DecodeRepAck parses an OpRepAck payload.
func DecodeRepAck(p []byte) (uint64, error) {
	if len(p) != 8 {
		return 0, errTruncated
	}
	return binary.BigEndian.Uint64(p), nil
}

// RepHeartbeat renews the primary's lease and advertises its commit
// sequence; a follower's lag is CommitSeq minus its applied sequence.
type RepHeartbeat struct {
	Term      uint64
	CommitSeq uint64
}

// AppendRepHeartbeat appends an OpRepHeartbeat frame on stream 0.
func AppendRepHeartbeat(dst []byte, h RepHeartbeat) []byte {
	dst, off := beginFrame(dst, 0, OpRepHeartbeat)
	dst = binary.BigEndian.AppendUint64(dst, h.Term)
	dst = binary.BigEndian.AppendUint64(dst, h.CommitSeq)
	return endFrame(dst, off)
}

// DecodeRepHeartbeat parses an OpRepHeartbeat payload.
func DecodeRepHeartbeat(p []byte) (RepHeartbeat, error) {
	if len(p) != 16 {
		return RepHeartbeat{}, errTruncated
	}
	return RepHeartbeat{
		Term:      binary.BigEndian.Uint64(p[0:8]),
		CommitSeq: binary.BigEndian.Uint64(p[8:16]),
	}, nil
}

// RepPropose asks the primary to validate, consume and journal the
// physical pairs of a follower-sampled challenge. KeySum fingerprints
// the remap key the follower sampled under, so a proposal that raced
// a key rotation is refused rather than issued against a stale key.
type RepPropose struct {
	// ClientID aliases the payload on decode.
	ClientID []byte
	KeySum   uint64
	Pairs    []crp.PairBit
}

// AppendRepPropose appends an OpRepPropose frame on the given
// (nonzero) stream.
func AppendRepPropose(dst []byte, stream uint32, pr RepPropose) []byte {
	id := pr.ClientID
	if len(id) > 0xFFFF {
		id = id[:0xFFFF]
	}
	dst, off := beginFrame(dst, stream, OpRepPropose)
	dst = binary.BigEndian.AppendUint16(dst, uint16(len(id)))
	dst = append(dst, id...)
	dst = binary.BigEndian.AppendUint64(dst, pr.KeySum)
	dst = binary.BigEndian.AppendUint32(dst, uint32(len(pr.Pairs)))
	for i := range pr.Pairs {
		b := &pr.Pairs[i]
		dst = binary.BigEndian.AppendUint32(dst, uint32(b.A))
		dst = binary.BigEndian.AppendUint32(dst, uint32(b.B))
		dst = binary.BigEndian.AppendUint32(dst, uint32(b.VddMV))
	}
	return endFrame(dst, off)
}

// DecodeRepPropose parses an OpRepPropose payload.
func DecodeRepPropose(p []byte) (RepPropose, error) {
	if len(p) < 2 {
		return RepPropose{}, errTruncated
	}
	il := int(binary.BigEndian.Uint16(p[0:2]))
	p = p[2:]
	if len(p) < il+12 {
		return RepPropose{}, errTruncated
	}
	pr := RepPropose{ClientID: p[:il]}
	p = p[il:]
	pr.KeySum = binary.BigEndian.Uint64(p[0:8])
	n := int(binary.BigEndian.Uint32(p[8:12]))
	p = p[12:]
	if n < 0 || n > maxChallengeBits || len(p) != n*12 {
		return RepPropose{}, fmt.Errorf("wire: proposal claims %d pairs in %d payload bytes", n, len(p))
	}
	pr.Pairs = make([]crp.PairBit, n)
	for i := 0; i < n; i++ {
		pr.Pairs[i] = crp.PairBit{
			A:     int(binary.BigEndian.Uint32(p[0:4])),
			B:     int(binary.BigEndian.Uint32(p[4:8])),
			VddMV: int(binary.BigEndian.Uint32(p[8:12])),
		}
		p = p[12:]
	}
	return pr, nil
}

// AppendRepGrant appends an OpRepGrant frame answering a proposal on
// its stream with the primary-assigned challenge id.
func AppendRepGrant(dst []byte, stream uint32, challengeID uint64) []byte {
	dst, off := beginFrame(dst, stream, OpRepGrant)
	dst = binary.BigEndian.AppendUint64(dst, challengeID)
	return endFrame(dst, off)
}

// DecodeRepGrant parses an OpRepGrant payload.
func DecodeRepGrant(p []byte) (uint64, error) {
	if len(p) != 8 {
		return 0, errTruncated
	}
	return binary.BigEndian.Uint64(p), nil
}
