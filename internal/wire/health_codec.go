package wire

import "encoding/binary"

// Health probe payload encodings. A probe/health exchange is the
// failure detector's heartbeat: a router (or any client-port peer)
// sends an empty OpProbe frame on a fresh stream and the node answers
// with an OpHealth report on the same stream. Both opcodes ride the
// client-facing port — deliberately NOT the replication listener — so
// the measured round trip covers the exact network path and process
// that will serve forwarded transactions.

// HealthRolePrimary and HealthRoleFollower are the Role values an
// OpHealth frame carries.
const (
	HealthRoleFollower uint8 = 0
	HealthRolePrimary  uint8 = 1
)

// Health is one node's replication health as answered to a probe.
type Health struct {
	// Role is HealthRolePrimary or HealthRoleFollower.
	Role uint8
	// Term is the node's current primary term.
	Term uint64
	// CommitSeq is the highest committed sequence the node knows of:
	// its own on a primary, the primary's last advertised commit on a
	// follower. CommitSeq - AppliedSeq is the staleness bound input.
	CommitSeq uint64
	// AppliedSeq is the last sequence applied to the local replica.
	AppliedSeq uint64
}

// AppendProbe appends an empty OpProbe frame on the given stream.
func AppendProbe(dst []byte, stream uint32) []byte {
	dst, off := beginFrame(dst, stream, OpProbe)
	return endFrame(dst, off)
}

// AppendHealth appends an OpHealth frame answering a probe on its
// stream.
func AppendHealth(dst []byte, stream uint32, h Health) []byte {
	dst, off := beginFrame(dst, stream, OpHealth)
	dst = append(dst, h.Role)
	dst = binary.BigEndian.AppendUint64(dst, h.Term)
	dst = binary.BigEndian.AppendUint64(dst, h.CommitSeq)
	dst = binary.BigEndian.AppendUint64(dst, h.AppliedSeq)
	return endFrame(dst, off)
}

// DecodeHealth parses an OpHealth payload.
func DecodeHealth(p []byte) (Health, error) {
	if len(p) != 25 {
		return Health{}, errTruncated
	}
	return Health{
		Role:       p[0],
		Term:       binary.BigEndian.Uint64(p[1:9]),
		CommitSeq:  binary.BigEndian.Uint64(p[9:17]),
		AppliedSeq: binary.BigEndian.Uint64(p[17:25]),
	}, nil
}
