package wire

import "sync"

// Buf is one frame's worth of bytes plus its routing header. Reads
// fill Stream/Op and leave the payload in B; writes carry a complete
// encoded frame in B. Bufs cycle through a package pool so the steady
// state of a busy connection allocates nothing.
type Buf struct {
	Stream uint32
	Op     Opcode
	B      []byte
}

// bufPool recycles Bufs. 512 bytes of initial capacity covers every
// fixed-size frame (verdicts, acks, errors, openers); challenge and
// response buffers grow once and keep their capacity across reuses.
var bufPool = sync.Pool{
	New: func() any { return &Buf{B: make([]byte, 0, 512)} },
}

// GetBuf takes a pooled buffer with undefined contents and zero
// length.
func GetBuf() *Buf {
	b := bufPool.Get().(*Buf)
	b.B = b.B[:0]
	return b
}

// PutBuf recycles b. The caller must not touch b afterwards. Buffers
// that ballooned past a megabyte are dropped so one oversized frame
// cannot pin its memory in the pool forever.
func PutBuf(b *Buf) {
	if b == nil || cap(b.B) > 1<<20 {
		return
	}
	bufPool.Put(b)
}
