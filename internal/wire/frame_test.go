package wire

import (
	"bufio"
	"bytes"
	"errors"
	"io"
	"testing"

	"repro/internal/crp"
)

func testChallenge(nbits int) *crp.Challenge {
	ch := &crp.Challenge{ID: 0xDEADBEEFCAFE, Bits: make([]crp.PairBit, nbits)}
	for i := range ch.Bits {
		ch.Bits[i] = crp.PairBit{A: i * 3, B: i*3 + 1, VddMV: 680 + (i % 2 * 20)}
	}
	return ch
}

func readOne(t *testing.T, raw []byte) *Buf {
	t.Helper()
	b := GetBuf()
	if err := ReadFrameInto(bufio.NewReader(bytes.NewReader(raw)), b, 1<<20); err != nil {
		t.Fatalf("ReadFrameInto: %v", err)
	}
	return b
}

func TestChallengeRoundTrip(t *testing.T) {
	ch := testChallenge(256)
	raw := AppendChallenge(nil, 42, ch)
	b := readOne(t, raw)
	if b.Stream != 42 || b.Op != OpChallenge {
		t.Fatalf("header = stream %d op %v", b.Stream, b.Op)
	}
	var got crp.Challenge
	if err := DecodeChallenge(b.B, &got); err != nil {
		t.Fatal(err)
	}
	if got.ID != ch.ID || len(got.Bits) != len(ch.Bits) {
		t.Fatalf("decoded id=%d bits=%d", got.ID, len(got.Bits))
	}
	for i := range got.Bits {
		if got.Bits[i] != ch.Bits[i] {
			t.Fatalf("bit %d: %+v != %+v", i, got.Bits[i], ch.Bits[i])
		}
	}
}

func TestResponseRoundTrip(t *testing.T) {
	resp := crp.NewResponse(131)
	for i := 0; i < resp.N; i += 3 {
		resp.SetBit(i, 1)
	}
	raw := AppendResponse(nil, 7, 991, &resp)
	b := readOne(t, raw)
	var got crp.Response
	id, err := DecodeResponse(b.B, &got)
	if err != nil {
		t.Fatal(err)
	}
	if id != 991 || got.N != resp.N || !bytes.Equal(got.Bits, resp.Bits) {
		t.Fatalf("decoded id=%d n=%d", id, got.N)
	}
}

func TestVerdictRoundTrip(t *testing.T) {
	for _, v := range []Verdict{
		{},
		{Accepted: true, HasConfirm: true, Confirm: [32]byte{1, 2, 3}},
		{Accepted: true, RemapAdvised: true, HasConfirm: true},
	} {
		raw := AppendVerdict(nil, 3, v)
		b := readOne(t, raw)
		got, err := DecodeVerdict(b.B)
		if err != nil {
			t.Fatal(err)
		}
		if got != v {
			t.Fatalf("verdict %+v != %+v", got, v)
		}
	}
}

func TestErrorRoundTrip(t *testing.T) {
	raw := AppendError(nil, 9, "unavailable", "dev-3", "shed: cap reached")
	b := readOne(t, raw)
	code, client, msg, err := DecodeError(b.B)
	if err != nil {
		t.Fatal(err)
	}
	if code != "unavailable" || client != "dev-3" || msg != "shed: cap reached" {
		t.Fatalf("got %q %q %q", code, client, msg)
	}
}

func TestClientIDAndRemapDoneAndAck(t *testing.T) {
	raw := AppendClientID(nil, 1, OpAuthenticate, "dev-0")
	raw = AppendRemapDone(raw, 2, true)
	raw = AppendRemapAck(raw, 3)
	br := bufio.NewReader(bytes.NewReader(raw))
	b := GetBuf()
	if err := ReadFrameInto(br, b, 1<<20); err != nil {
		t.Fatal(err)
	}
	if b.Op != OpAuthenticate || string(DecodeClientID(b.B)) != "dev-0" {
		t.Fatalf("frame 1: %v %q", b.Op, b.B)
	}
	if err := ReadFrameInto(br, b, 1<<20); err != nil {
		t.Fatal(err)
	}
	ok, err := DecodeRemapDone(b.B)
	if err != nil || !ok || b.Stream != 2 {
		t.Fatalf("frame 2: ok=%v err=%v", ok, err)
	}
	if err := ReadFrameInto(br, b, 1<<20); err != nil {
		t.Fatal(err)
	}
	if b.Op != OpRemapAck || len(b.B) != 0 {
		t.Fatalf("frame 3: %v payload %d", b.Op, len(b.B))
	}
}

func TestReadFrameRejects(t *testing.T) {
	ch := testChallenge(8)
	good := AppendChallenge(nil, 1, ch)

	badMagic := append([]byte{}, good...)
	badMagic[0] = '{'
	b := GetBuf()
	if err := ReadFrameInto(bufio.NewReader(bytes.NewReader(badMagic)), b, 1<<20); !errors.Is(err, ErrBadMagic) {
		t.Fatalf("bad magic: %v", err)
	}

	badVer := append([]byte{}, good...)
	badVer[1] = 7
	if err := ReadFrameInto(bufio.NewReader(bytes.NewReader(badVer)), b, 1<<20); !errors.Is(err, ErrBadVersion) {
		t.Fatalf("bad version: %v", err)
	}

	if err := ReadFrameInto(bufio.NewReader(bytes.NewReader(good)), b, 16); !errors.Is(err, ErrOversize) {
		t.Fatalf("oversize: %v", err)
	}

	torn := good[:len(good)-5]
	if err := ReadFrameInto(bufio.NewReader(bytes.NewReader(torn)), b, 1<<20); !errors.Is(err, io.ErrUnexpectedEOF) {
		t.Fatalf("torn payload: %v", err)
	}

	if err := ReadFrameInto(bufio.NewReader(bytes.NewReader(nil)), b, 1<<20); !errors.Is(err, io.EOF) {
		t.Fatalf("empty: %v", err)
	}
}

func TestDecodeRejectsTruncatedPayloads(t *testing.T) {
	var ch crp.Challenge
	if err := DecodeChallenge([]byte{1, 2}, &ch); err == nil {
		t.Fatal("truncated challenge accepted")
	}
	// Length prefix claiming more bits than the payload holds.
	raw := AppendChallenge(nil, 1, testChallenge(4))
	payload := append([]byte{}, raw[HeaderLen:]...)
	payload[11] = 200 // inflate the bit count
	if err := DecodeChallenge(payload, &ch); err == nil {
		t.Fatal("inflated challenge accepted")
	}
	var resp crp.Response
	if _, err := DecodeResponse([]byte{0}, &resp); err == nil {
		t.Fatal("truncated response accepted")
	}
	if _, err := DecodeVerdict(nil); err == nil {
		t.Fatal("empty verdict accepted")
	}
	if _, err := DecodeVerdict([]byte{flagConfirm, 1, 2}); err == nil {
		t.Fatal("short confirm accepted")
	}
	if _, _, _, err := DecodeError([]byte{40, 1}); err == nil {
		t.Fatal("truncated error accepted")
	}
	if _, err := DecodeRemapDone(nil); err == nil {
		t.Fatal("empty remap_done accepted")
	}
}

func TestPreambleIsNotJSON(t *testing.T) {
	p := Preamble()
	if p[0] == '{' || p[0] == ' ' || p[0] == '\n' {
		t.Fatalf("preamble %v is sniffable as JSON", p)
	}
	if p[0] != Magic || p[3] != Version {
		t.Fatalf("preamble %v does not pin magic+version", p)
	}
}
