// Package wire is the versioned binary framing of the Authenticache
// TCP transport (protocol v2). It owns exactly the codec layer: frame
// headers, opcode payload encodings, and the pooled buffers that make
// the challenge/response/verdict path allocation-free. Connection
// state machines (demultiplexing, per-stream transactions, retries)
// live in internal/auth; this package never touches a socket beyond
// reading and writing bytes.
//
// A v2 connection opens with a 4-byte preamble and then carries
// frames, each a fixed 11-byte header followed by the payload:
//
//	offset 0   magic     0xA7 (never a legal first byte of JSON,
//	                     so a server can sniff v2 against the
//	                     newline-JSON v1 framing)
//	offset 1   version   0x02
//	offset 2-5 stream id uint32, big endian
//	offset 6   opcode    one of the Op* constants
//	offset 7-10 length   payload byte count, uint32 big endian
//
// Frames of different streams interleave freely; within one stream
// frames are ordered. There is no frame checksum: TCP already
// provides integrity, exactly as the v1 JSON framing assumed.
package wire

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
)

// Opcode discriminates frame payloads. The values mirror the v1 JSON
// "type" strings one for one and are pinned by the opcode table in
// docs/PROTOCOL.md (cross-checked by the authlint recordtable
// analyzer — drift between these constants and the doc fails lint).
type Opcode uint8

//lint:recordtable ../../docs/PROTOCOL.md#framing-v2-opcode-table type=Opcode prefix=Op
const (
	// OpAuthenticate opens an authentication transaction (payload:
	// raw client id bytes).
	OpAuthenticate Opcode = 1
	// OpChallenge carries the server's challenge.
	OpChallenge Opcode = 2
	// OpResponse carries the client's packed response bits.
	OpResponse Opcode = 3
	// OpVerdict closes an authentication transaction.
	OpVerdict Opcode = 4
	// OpRemap opens a key-update transaction (payload: client id).
	OpRemap Opcode = 5
	// OpRemapChallenge carries the reserved-plane challenge plus
	// helper data (JSON payload; the key-update path is cold).
	OpRemapChallenge Opcode = 6
	// OpRemapDone reports the client's key-derivation outcome.
	OpRemapDone Opcode = 7
	// OpRemapAck closes a key-update transaction.
	OpRemapAck Opcode = 8
	// OpError reports a typed failure on one stream.
	OpError Opcode = 9
	// OpRepHello opens a replication session (follower → primary:
	// node index and current term). Replication opcodes are spoken
	// only on the dedicated replication listener; the client-facing
	// demultiplexer answers them with invalid_request.
	OpRepHello Opcode = 10
	// OpRepSnapshot carries the catch-up state snapshot (primary →
	// follower: term, snapshot sequence, serialized state).
	OpRepSnapshot Opcode = 11
	// OpRepRecord ships one committed WAL frame (primary → follower:
	// sequence number plus the verbatim on-disk frame bytes).
	OpRepRecord Opcode = 12
	// OpRepAck acknowledges durable application of every record up to
	// a sequence number (follower → primary).
	OpRepAck Opcode = 13
	// OpRepHeartbeat renews the primary's lease and advertises its
	// commit sequence for lag accounting (primary → follower).
	OpRepHeartbeat Opcode = 14
	// OpRepPropose asks the primary to consume and journal the pairs
	// of a follower-sampled challenge (follower → primary).
	OpRepPropose Opcode = 15
	// OpRepGrant returns the primary-assigned challenge id for an
	// accepted proposal (primary → follower).
	OpRepGrant Opcode = 16
	// OpProbe asks a node for a liveness/health report (empty
	// payload). Unlike the rep_* opcodes it is spoken on the
	// client-facing port: routers probe the same address they forward
	// to, so the probe measures exactly the path client traffic takes.
	OpProbe Opcode = 17
	// OpHealth answers a probe with the node's replication health:
	// role, term, advertised commit sequence, applied sequence.
	OpHealth Opcode = 18
)

// String names the opcode as the v1 protocol spelled it.
func (op Opcode) String() string {
	switch op {
	case OpAuthenticate:
		return "authenticate"
	case OpChallenge:
		return "challenge"
	case OpResponse:
		return "response"
	case OpVerdict:
		return "verdict"
	case OpRemap:
		return "remap"
	case OpRemapChallenge:
		return "remap_challenge"
	case OpRemapDone:
		return "remap_done"
	case OpRemapAck:
		return "remap_ack"
	case OpError:
		return "error"
	case OpRepHello:
		return "rep_hello"
	case OpRepSnapshot:
		return "rep_snapshot"
	case OpRepRecord:
		return "rep_record"
	case OpRepAck:
		return "rep_ack"
	case OpRepHeartbeat:
		return "rep_heartbeat"
	case OpRepPropose:
		return "rep_propose"
	case OpRepGrant:
		return "rep_grant"
	case OpProbe:
		return "probe"
	case OpHealth:
		return "health"
	}
	return fmt.Sprintf("wire.Opcode(%d)", uint8(op))
}

const (
	// Magic is the first byte of the preamble and of every frame.
	Magic = 0xA7
	// Version is the framing version this package implements.
	Version = 2
	// HeaderLen is the fixed frame header size.
	HeaderLen = 11
	// PreambleLen is the connection-opening preamble size.
	PreambleLen = 4
)

// Preamble returns the 4-byte connection opener a v2 client sends
// before its first frame: magic, 'C', 'W', version.
func Preamble() [PreambleLen]byte {
	return [PreambleLen]byte{Magic, 'C', 'W', Version}
}

// Framing violations. These are transport-fatal: a peer whose framing
// is broken cannot be answered in a framing it will understand.
var (
	ErrBadMagic   = errors.New("wire: bad frame magic")
	ErrBadVersion = errors.New("wire: unsupported frame version")
	ErrOversize   = errors.New("wire: frame payload exceeds cap")
)

// Header is one parsed frame header.
type Header struct {
	Stream uint32
	Op     Opcode
	Len    int
}

// putHeader writes a header into an 11-byte slice.
func putHeader(dst []byte, stream uint32, op Opcode, payloadLen int) {
	dst[0] = Magic
	dst[1] = Version
	binary.BigEndian.PutUint32(dst[2:6], stream)
	dst[6] = byte(op)
	binary.BigEndian.PutUint32(dst[7:11], uint32(payloadLen))
}

// ParseHeader decodes an 11-byte frame header.
func ParseHeader(h []byte) (Header, error) {
	if len(h) < HeaderLen {
		return Header{}, io.ErrUnexpectedEOF
	}
	if h[0] != Magic {
		return Header{}, ErrBadMagic
	}
	if h[1] != Version {
		return Header{}, fmt.Errorf("%w: %d", ErrBadVersion, h[1])
	}
	return Header{
		Stream: binary.BigEndian.Uint32(h[2:6]),
		Op:     Opcode(h[6]),
		Len:    int(binary.BigEndian.Uint32(h[7:11])),
	}, nil
}

// beginFrame appends a header with a zero length placeholder and
// returns the offset of the header for endFrame to patch.
func beginFrame(dst []byte, stream uint32, op Opcode) ([]byte, int) {
	off := len(dst)
	dst = append(dst, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0)
	putHeader(dst[off:], stream, op, 0)
	return dst, off
}

// endFrame patches the payload length of the frame begun at off.
func endFrame(dst []byte, off int) []byte {
	binary.BigEndian.PutUint32(dst[off+7:off+11], uint32(len(dst)-off-HeaderLen))
	return dst
}

// ReadFrameInto reads one frame from br into b, reusing b's payload
// capacity. Payloads above maxPayload are refused without reading
// them (the peer cannot force an allocation). The read is zero-alloc
// once b's capacity covers the payload.
func ReadFrameInto(br *bufio.Reader, b *Buf, maxPayload int) error {
	// Peek+Discard keeps the header read allocation-free: the bytes
	// are parsed in place inside the bufio buffer.
	hdr, err := br.Peek(HeaderLen)
	if err != nil {
		if err == io.EOF && len(hdr) > 0 {
			// A torn header is not a clean close.
			return io.ErrUnexpectedEOF
		}
		return err
	}
	h, err := ParseHeader(hdr)
	if err != nil {
		return err
	}
	br.Discard(HeaderLen)
	if h.Len > maxPayload {
		return fmt.Errorf("%w: %d > %d", ErrOversize, h.Len, maxPayload)
	}
	b.Stream = h.Stream
	b.Op = h.Op
	if cap(b.B) < h.Len {
		b.B = make([]byte, h.Len)
	}
	b.B = b.B[:h.Len]
	if _, err := io.ReadFull(br, b.B); err != nil {
		if err == io.EOF {
			// A header without its payload is a torn frame, not a
			// clean close.
			err = io.ErrUnexpectedEOF
		}
		return err
	}
	return nil
}
