package fault

import (
	"errors"
	"os"
	"sync"

	"repro/internal/rng"
	"repro/internal/wal"
)

// FSPlan schedules the disk faults an FS injects. The zero plan
// (with CrashAtByte -1) injects nothing.
type FSPlan struct {
	// SyncErrProb is the chance, per fsync, of a transient failure:
	// the sync reports an error but bytes already written stay
	// written. The WAL surfaces the append as failed; replay treats
	// the frames as committed (idempotently), matching a kernel that
	// flushed the pages despite the error return.
	SyncErrProb float64
	// ShortWriteProb is the chance, per write, that only a prefix of
	// the buffer reaches the file before the write fails. The fault is
	// transient — the file stays usable — which exercises the WAL's
	// truncate-and-repair path.
	ShortWriteProb float64
	// CrashAtByte, when >= 0, kills the device after that many bytes
	// have been written across all files: the write crossing the
	// boundary persists exactly the bytes below it, and every
	// operation afterwards fails with ErrCrashed. Sweeping this value
	// over a workload simulates power loss at every byte offset.
	CrashAtByte int64
	// Seed drives the probabilistic faults.
	Seed uint64
}

// Injected disk fault errors.
var (
	ErrInjectedSync = errors.New("fault: injected fsync failure")
	ErrCrashed      = errors.New("fault: filesystem crashed")
)

// FS wraps a wal.FS with FSPlan's fault schedule. The write-byte
// counter is cumulative across all files, so CrashAtByte positions a
// crash anywhere in a multi-segment workload.
type FS struct {
	base wal.FS
	plan FSPlan

	mu       sync.Mutex // guards rnd, written, crashed, disarmed
	rnd      *rng.Rand
	written  int64
	crashed  bool
	disarmed bool
}

// SetArmed toggles injection. A disarmed FS passes everything through
// (and counts no bytes), letting a test open the log cleanly before
// the storm starts. The FS starts armed.
func (f *FS) SetArmed(armed bool) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.disarmed = !armed
}

// NewFS wraps base (the host filesystem when nil) with plan's faults.
func NewFS(base wal.FS, plan FSPlan) *FS {
	if base == nil {
		base = wal.OSFS()
	}
	return &FS{base: base, plan: plan, rnd: rng.New(plan.Seed)}
}

// Crashed reports whether the simulated device has died.
func (f *FS) Crashed() bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.crashed
}

// Written returns the cumulative bytes persisted across all files.
func (f *FS) Written() int64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.written
}

// admitWrite decides one write's fate: how many of n bytes to
// persist, and the error to return (nil means the full write
// proceeds).
func (f *FS) admitWrite(n int) (int, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.disarmed {
		return n, nil
	}
	if f.crashed {
		return 0, ErrCrashed
	}
	if f.plan.CrashAtByte >= 0 && f.written+int64(n) > f.plan.CrashAtByte {
		allowed := int(f.plan.CrashAtByte - f.written)
		if allowed < 0 {
			allowed = 0
		}
		f.crashed = true
		f.written = f.plan.CrashAtByte
		return allowed, ErrCrashed
	}
	if n > 1 && f.rnd.Bool(f.plan.ShortWriteProb) {
		allowed := 1 + f.rnd.Intn(n-1)
		f.written += int64(allowed)
		return allowed, errors.New("fault: injected short write")
	}
	f.written += int64(n)
	return n, nil
}

// admitSync decides one fsync's fate.
func (f *FS) admitSync() error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.disarmed {
		return nil
	}
	if f.crashed {
		return ErrCrashed
	}
	if f.rnd.Bool(f.plan.SyncErrProb) {
		return ErrInjectedSync
	}
	return nil
}

// failIfCrashed gates the non-write operations.
func (f *FS) failIfCrashed() error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.crashed && !f.disarmed {
		return ErrCrashed
	}
	return nil
}

func (f *FS) OpenFile(name string, flag int, perm os.FileMode) (wal.File, error) {
	if err := f.failIfCrashed(); err != nil {
		return nil, err
	}
	base, err := f.base.OpenFile(name, flag, perm)
	if err != nil {
		return nil, err
	}
	return &file{File: base, fs: f}, nil
}

func (f *FS) ReadDir(name string) ([]os.DirEntry, error) {
	if err := f.failIfCrashed(); err != nil {
		return nil, err
	}
	return f.base.ReadDir(name)
}

func (f *FS) ReadFile(name string) ([]byte, error) {
	if err := f.failIfCrashed(); err != nil {
		return nil, err
	}
	return f.base.ReadFile(name)
}

func (f *FS) Remove(name string) error {
	if err := f.failIfCrashed(); err != nil {
		return err
	}
	return f.base.Remove(name)
}

func (f *FS) MkdirAll(path string, perm os.FileMode) error {
	if err := f.failIfCrashed(); err != nil {
		return err
	}
	return f.base.MkdirAll(path, perm)
}

func (f *FS) SyncDir(dir string) error {
	if err := f.admitSync(); err != nil {
		return err
	}
	return f.base.SyncDir(dir)
}

// file routes a segment handle's writes and syncs through the plan.
type file struct {
	wal.File
	fs *FS
}

func (fl *file) Write(p []byte) (int, error) {
	allowed, err := fl.fs.admitWrite(len(p))
	if err != nil {
		n := 0
		if allowed > 0 {
			n, _ = fl.File.Write(p[:allowed])
		}
		return n, err
	}
	return fl.File.Write(p)
}

func (fl *file) Sync() error {
	if err := fl.fs.admitSync(); err != nil {
		return err
	}
	return fl.File.Sync()
}

func (fl *file) Truncate(size int64) error {
	if err := fl.fs.failIfCrashed(); err != nil {
		return err
	}
	return fl.File.Truncate(size)
}
