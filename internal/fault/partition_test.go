package fault

import (
	"context"
	"errors"
	"net"
	"testing"
	"time"
)

func TestPartitionBlockCutsLiveConns(t *testing.T) {
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	accepted := make(chan net.Conn, 1)
	go func() {
		c, err := l.Accept()
		if err == nil {
			accepted <- c
		}
	}()

	p := NewPartition()
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	conn, err := p.Dial(ctx, "tcp", l.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	server := <-accepted
	defer server.Close()

	if _, err := conn.Write([]byte("x")); err != nil {
		t.Fatalf("write through healed partition: %v", err)
	}

	// Block while a read is in flight: it must unblock with
	// ErrPartitioned, not hang.
	readErr := make(chan error, 1)
	go func() {
		buf := make([]byte, 1)
		_, err := conn.Read(buf)
		readErr <- err
	}()
	time.Sleep(10 * time.Millisecond)
	p.Block()
	select {
	case err := <-readErr:
		if !errors.Is(err, ErrPartitioned) {
			t.Fatalf("in-flight read error = %v, want ErrPartitioned", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("in-flight read hung across Block")
	}
	if _, err := conn.Write([]byte("y")); !errors.Is(err, ErrPartitioned) {
		t.Fatalf("write on cut conn = %v, want ErrPartitioned", err)
	}

	// Blocked dials fail fast; healed dials pass again.
	if _, err := p.Dial(ctx, "tcp", l.Addr().String()); !errors.Is(err, ErrPartitioned) {
		t.Fatalf("dial through blocked partition = %v, want ErrPartitioned", err)
	}
	var ne net.Error
	if !errors.As(ErrPartitioned, &ne) || ne.Timeout() {
		t.Fatal("ErrPartitioned must be a non-timeout net.Error")
	}
	p.Heal()
	go func() {
		c, err := l.Accept()
		if err == nil {
			c.Close()
		}
	}()
	c2, err := p.Dial(ctx, "tcp", l.Addr().String())
	if err != nil {
		t.Fatalf("dial through healed partition: %v", err)
	}
	c2.Close()
}
