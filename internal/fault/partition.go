package fault

import (
	"context"
	"net"
	"sync"
)

// ErrPartitioned is injected on every operation of a blocked
// partition link. It satisfies net.Error (non-timeout, temporary), so
// retry classification treats it like any other transport loss.
var ErrPartitioned net.Error = &injectedErr{"fault: link partitioned"}

// Partition is a controllable network cut for one logical link: every
// connection dialed or wrapped through it dies the moment Block is
// called, and new dials fail until Heal. Chaos tests partition a
// replication link mid-traffic with it — deterministically, without
// firewall games — then heal it and watch the follower re-sync.
type Partition struct {
	mu      sync.Mutex
	blocked bool
	conns   map[*partConn]struct{}
}

// NewPartition returns a healed (passing) partition gate.
func NewPartition() *Partition {
	return &Partition{conns: make(map[*partConn]struct{})}
}

// Block cuts the link: every tracked connection is closed with
// ErrPartitioned latched, and Dial/Wrap fail until Heal.
func (p *Partition) Block() {
	p.mu.Lock()
	p.blocked = true
	conns := make([]*partConn, 0, len(p.conns))
	for c := range p.conns {
		conns = append(conns, c)
	}
	p.conns = make(map[*partConn]struct{})
	p.mu.Unlock()
	for _, c := range conns {
		c.cut()
	}
}

// Heal restores the link for future dials. Connections cut by Block
// stay dead — endpoints reconnect, exactly as after a real partition.
func (p *Partition) Heal() {
	p.mu.Lock()
	p.blocked = false
	p.mu.Unlock()
}

// Blocked reports the gate's current state.
func (p *Partition) Blocked() bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.blocked
}

// Dial establishes a connection through the gate. While blocked it
// fails immediately with ErrPartitioned.
func (p *Partition) Dial(ctx context.Context, network, addr string) (net.Conn, error) {
	p.mu.Lock()
	blocked := p.blocked
	p.mu.Unlock()
	if blocked {
		return nil, ErrPartitioned
	}
	var d net.Dialer
	conn, err := d.DialContext(ctx, network, addr)
	if err != nil {
		return nil, err
	}
	return p.Wrap(conn), nil
}

// Wrap tracks an established connection so a later Block cuts it. If
// the gate is already blocked the connection is cut immediately.
func (p *Partition) Wrap(conn net.Conn) net.Conn {
	c := &partConn{Conn: conn, p: p}
	p.mu.Lock()
	if p.blocked {
		p.mu.Unlock()
		c.cut()
		return c
	}
	p.conns[c] = struct{}{}
	p.mu.Unlock()
	return c
}

// forget drops a closed connection from the tracking set.
func (p *Partition) forget(c *partConn) {
	p.mu.Lock()
	delete(p.conns, c)
	p.mu.Unlock()
}

// partConn is one connection subject to a Partition. Once cut, every
// operation fails with ErrPartitioned even though the underlying
// socket is closed (the peer sees a plain close; this side sees the
// partition).
type partConn struct {
	net.Conn
	p *Partition

	mu   sync.Mutex
	dead bool
}

// cut kills the connection, unblocking any in-flight Read/Write.
func (c *partConn) cut() {
	c.mu.Lock()
	c.dead = true
	c.mu.Unlock()
	c.Conn.Close()
}

func (c *partConn) isDead() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.dead
}

func (c *partConn) Read(b []byte) (int, error) {
	if c.isDead() {
		return 0, ErrPartitioned
	}
	n, err := c.Conn.Read(b)
	if err != nil && c.isDead() {
		return n, ErrPartitioned
	}
	return n, err
}

func (c *partConn) Write(b []byte) (int, error) {
	if c.isDead() {
		return 0, ErrPartitioned
	}
	n, err := c.Conn.Write(b)
	if err != nil && c.isDead() {
		return n, ErrPartitioned
	}
	return n, err
}

func (c *partConn) Close() error {
	c.p.forget(c)
	return c.Conn.Close()
}
