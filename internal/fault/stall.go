package fault

import (
	"context"
	"net"
	"os"
	"sync"
	"time"

	"repro/internal/rng"
)

// Stall is the nastier sibling of Partition: instead of erroring fast,
// a blocked stall black-holes traffic. Reads and writes on tracked
// connections park until the gate heals (or the connection is closed),
// and new dials hang the same way — the signature of a peer whose
// process is wedged or whose packets are being dropped silently, as
// opposed to one whose socket refuses. This is the failure mode that
// distinguishes deadline-budgeted code from code that merely handles
// errors: nothing ever returns, so only a deadline can save the
// caller.
type Stall struct {
	mu      sync.Mutex
	blocked bool
	// release is open per Block epoch and closed by Heal, waking every
	// parked waiter.
	release chan struct{}
	conns   map[*stallConn]struct{}
}

// NewStall returns a healed (passing) stall gate.
func NewStall() *Stall {
	return &Stall{conns: make(map[*stallConn]struct{})}
}

// Block engages the black hole: future operations on tracked
// connections park before touching the socket, and Dial parks before
// connecting. (A read already blocked in the kernel keeps waiting on
// its own — its peer's writes park, so no data arrives either way.)
func (s *Stall) Block() {
	s.mu.Lock()
	if !s.blocked {
		s.blocked = true
		s.release = make(chan struct{})
	}
	s.mu.Unlock()
}

// Heal lifts the black hole: parked operations resume against the
// live sockets underneath (no data was lost — the wire was slow, not
// cut).
func (s *Stall) Heal() {
	s.mu.Lock()
	if s.blocked {
		s.blocked = false
		close(s.release)
		s.release = nil
	}
	s.mu.Unlock()
}

// Blocked reports the gate's current state.
func (s *Stall) Blocked() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.blocked
}

// gate returns the channel an operation must wait on before touching
// the socket, or nil when traffic flows.
func (s *Stall) gate() chan struct{} {
	s.mu.Lock()
	defer s.mu.Unlock()
	if !s.blocked {
		return nil
	}
	return s.release
}

// Dial establishes a connection through the gate. While blocked it
// parks until Heal or ctx expiry — exactly what an unreachable,
// non-refusing host does to a dialer.
func (s *Stall) Dial(ctx context.Context, network, addr string) (net.Conn, error) {
	if ch := s.gate(); ch != nil {
		select {
		case <-ch:
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
	var d net.Dialer
	conn, err := d.DialContext(ctx, network, addr)
	if err != nil {
		return nil, err
	}
	return s.Wrap(conn), nil
}

// Wrap tracks an established connection so a later Block parks its
// traffic.
func (s *Stall) Wrap(conn net.Conn) net.Conn {
	c := &stallConn{Conn: conn, s: s, closed: make(chan struct{})}
	s.mu.Lock()
	s.conns[c] = struct{}{}
	s.mu.Unlock()
	return c
}

// forget drops a closed connection from the tracking set.
func (s *Stall) forget(c *stallConn) {
	s.mu.Lock()
	delete(s.conns, c)
	s.mu.Unlock()
}

// stallConn is one connection subject to a Stall. While the gate is
// engaged its reads and writes park; Close still works (and unparks
// this connection's waiters), because a stalled peer does not stop
// the local side from giving up. I/O deadlines are honoured even
// while parked — the kernel would time a socket out whether or not
// packets flow, so deadline-driven callers keep their bound through a
// black hole.
type stallConn struct {
	net.Conn
	s      *Stall
	closed chan struct{}

	mu       sync.Mutex
	isClosed bool
	rdl, wdl time.Time
}

// wait parks until the gate heals, the connection closes, or dl (zero
// means none) passes, reporting whether the operation may proceed.
func (c *stallConn) wait(dl time.Time) error {
	ch := c.s.gate()
	if ch == nil {
		return nil
	}
	var expire <-chan time.Time
	if !dl.IsZero() {
		t := time.NewTimer(time.Until(dl))
		defer t.Stop()
		expire = t.C
	}
	select {
	case <-ch:
		return nil
	case <-c.closed:
		return net.ErrClosed
	case <-expire:
		return os.ErrDeadlineExceeded
	}
}

// deadline reads the tracked read or write deadline.
func (c *stallConn) deadline(read bool) time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	if read {
		return c.rdl
	}
	return c.wdl
}

func (c *stallConn) Read(b []byte) (int, error) {
	if err := c.wait(c.deadline(true)); err != nil {
		return 0, err
	}
	return c.Conn.Read(b)
}

func (c *stallConn) Write(b []byte) (int, error) {
	if err := c.wait(c.deadline(false)); err != nil {
		return 0, err
	}
	return c.Conn.Write(b)
}

func (c *stallConn) SetDeadline(t time.Time) error {
	c.mu.Lock()
	c.rdl, c.wdl = t, t
	c.mu.Unlock()
	return c.Conn.SetDeadline(t)
}

func (c *stallConn) SetReadDeadline(t time.Time) error {
	c.mu.Lock()
	c.rdl = t
	c.mu.Unlock()
	return c.Conn.SetReadDeadline(t)
}

func (c *stallConn) SetWriteDeadline(t time.Time) error {
	c.mu.Lock()
	c.wdl = t
	c.mu.Unlock()
	return c.Conn.SetWriteDeadline(t)
}

func (c *stallConn) Close() error {
	c.mu.Lock()
	if !c.isClosed {
		c.isClosed = true
		close(c.closed)
	}
	c.mu.Unlock()
	c.s.forget(c)
	return c.Conn.Close()
}

// Gate is the Block/Heal surface Partition and Stall share; Flap
// toggles either kind on a schedule.
type Gate interface {
	Block()
	Heal()
	Blocked() bool
}

// FlapPlan schedules a flapping fault: the gate blocks for roughly
// Down, heals for roughly Up, and repeats Cycles times (0 means flap
// until ctx dies). Jitter is the randomized fraction of each period
// ([1-Jitter, 1]·period, full-jitter style), drawn from the seeded
// stream so a chaos run replays identically.
type FlapPlan struct {
	Down   time.Duration
	Up     time.Duration
	Cycles int
	Jitter float64
	Seed   uint64
}

// Flap drives gate through plan until the cycles or ctx run out. It
// blocks the calling goroutine; run it alongside traffic. The gate is
// always healed on the way out, whatever state the schedule died in.
func Flap(ctx context.Context, gate Gate, plan FlapPlan) {
	r := rng.New(plan.Seed ^ 0xf1a9)
	defer gate.Heal()
	period := func(d time.Duration) time.Duration {
		if plan.Jitter <= 0 {
			return d
		}
		return time.Duration(float64(d) * (1 - plan.Jitter*r.Float64()))
	}
	for cycle := 0; plan.Cycles == 0 || cycle < plan.Cycles; cycle++ {
		gate.Block()
		if !sleepFlap(ctx, period(plan.Down)) {
			return
		}
		gate.Heal()
		if !sleepFlap(ctx, period(plan.Up)) {
			return
		}
	}
}

// sleepFlap waits d, reporting false when ctx died first.
func sleepFlap(ctx context.Context, d time.Duration) bool {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return true
	case <-ctx.Done():
		return false
	}
}
