package fault

import (
	"context"
	"errors"
	"net"
	"os"
	"sync"
	"testing"
	"time"
)

func stallPipe(t *testing.T, s *Stall) (net.Conn, net.Conn) {
	t.Helper()
	a, b := net.Pipe()
	wrapped := s.Wrap(a)
	t.Cleanup(func() { wrapped.Close(); b.Close() })
	return wrapped, b
}

func TestStallParksUntilHeal(t *testing.T) {
	s := NewStall()
	a, b := stallPipe(t, s)
	s.Block()
	if !s.Blocked() {
		t.Fatal("Blocked() = false after Block")
	}
	done := make(chan error, 1)
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		_, err := a.Write([]byte("x"))
		done <- err
	}()
	select {
	case err := <-done:
		t.Fatalf("write completed through an engaged stall (err=%v)", err)
	case <-time.After(50 * time.Millisecond):
	}
	// Heal releases the parked write; the peer read completes it.
	readDone := make(chan struct{})
	wg.Add(1)
	go func() {
		defer wg.Done()
		buf := make([]byte, 1)
		b.Read(buf)
		close(readDone)
	}()
	s.Heal()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("write after heal: %v", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("write still parked after Heal")
	}
	<-readDone
	wg.Wait()
}

func TestStallCloseUnparks(t *testing.T) {
	s := NewStall()
	a, _ := stallPipe(t, s)
	s.Block()
	done := make(chan error, 1)
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		_, err := a.Read(make([]byte, 1))
		done <- err
	}()
	time.Sleep(20 * time.Millisecond)
	a.Close()
	select {
	case err := <-done:
		if err == nil {
			t.Fatal("read on a closed stalled conn returned nil error")
		}
	case <-time.After(2 * time.Second):
		t.Fatal("Close did not unpark the stalled read")
	}
	s.Heal()
	wg.Wait()
}

func TestStallDeadlineWhileParked(t *testing.T) {
	s := NewStall()
	a, _ := stallPipe(t, s)
	s.Block()
	a.SetReadDeadline(time.Now().Add(30 * time.Millisecond))
	start := time.Now()
	_, err := a.Read(make([]byte, 1))
	if !errors.Is(err, os.ErrDeadlineExceeded) {
		t.Fatalf("parked read with a deadline returned %v, want deadline exceeded", err)
	}
	if time.Since(start) > time.Second {
		t.Fatal("deadline ignored while parked")
	}
	s.Heal()
}

func TestStallDialParks(t *testing.T) {
	s := NewStall()
	s.Block()
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	if _, err := s.Dial(ctx, "tcp", "127.0.0.1:1"); err == nil {
		t.Fatal("dial through an engaged stall should only fail by deadline")
	} else if ctx.Err() == nil {
		t.Fatalf("dial failed before the deadline: %v", err)
	}
}

func TestFlapSchedule(t *testing.T) {
	s := NewStall()
	start := time.Now()
	Flap(context.Background(), s, FlapPlan{
		Down:   10 * time.Millisecond,
		Up:     10 * time.Millisecond,
		Cycles: 3,
		Jitter: 0.5,
		Seed:   42,
	})
	if s.Blocked() {
		t.Fatal("gate left blocked after Flap returned")
	}
	elapsed := time.Since(start)
	// 3 cycles of jittered [10ms+10ms] land in [30ms, 60ms] plus slop.
	if elapsed < 25*time.Millisecond {
		t.Fatalf("flap finished implausibly fast: %v", elapsed)
	}
}

func TestFlapStopsOnContext(t *testing.T) {
	p := NewPartition()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	Flap(ctx, p, FlapPlan{Down: time.Hour, Up: time.Hour, Seed: 1})
	if p.Blocked() {
		t.Fatal("gate left blocked after ctx-cancelled Flap")
	}
}
