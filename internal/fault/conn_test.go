package fault

import (
	"errors"
	"io"
	"net"
	"testing"
	"time"
)

// TestScheduleDeterministic pins that equal seeds draw equal fault
// schedules — the property that makes a failing chaos run replayable.
func TestScheduleDeterministic(t *testing.T) {
	plan := ConnPlan{DropProb: 0.3, PartialWriteProb: 0.3, Seed: 42}
	a := NewConn(nil, plan)
	b := NewConn(nil, plan)
	for i := 0; i < 200; i++ {
		da, pa, _ := a.roll(64)
		db, pb, _ := b.roll(64)
		if da != db || pa != pb {
			t.Fatalf("op %d: schedules diverge: (%v,%d) vs (%v,%d)", i, da, pa, db, pb)
		}
	}
}

func TestDropTearsDownBothSides(t *testing.T) {
	client, server := net.Pipe()
	fc := NewConn(client, ConnPlan{DropProb: 1, Seed: 1})
	if _, err := fc.Write([]byte("hello\n")); !errors.Is(err, ErrInjectedDrop) {
		t.Fatalf("write under DropProb 1: got %v, want ErrInjectedDrop", err)
	}
	server.SetReadDeadline(time.Now().Add(time.Second))
	if _, err := server.Read(make([]byte, 8)); !errors.Is(err, io.EOF) && !errors.Is(err, io.ErrClosedPipe) {
		t.Fatalf("peer of dropped conn: got %v, want EOF or closed pipe", err)
	}
}

func TestPartialWriteDeliversPrefixThenEOF(t *testing.T) {
	client, server := net.Pipe()
	fc := NewConn(client, ConnPlan{PartialWriteProb: 1, Seed: 7})
	msg := []byte("this message will be truncated mid-flight\n")
	got := make(chan []byte, 1)
	go func() {
		server.SetReadDeadline(time.Now().Add(time.Second))
		b, _ := io.ReadAll(server)
		got <- b
	}()
	n, err := fc.Write(msg)
	if !errors.Is(err, ErrInjectedPartialWrite) {
		t.Fatalf("write under PartialWriteProb 1: got %v, want ErrInjectedPartialWrite", err)
	}
	if n <= 0 || n >= len(msg) {
		t.Fatalf("partial write persisted %d of %d bytes, want a strict prefix", n, len(msg))
	}
	b := <-got
	if len(b) != n {
		t.Fatalf("peer received %d bytes, writer reported %d", len(b), n)
	}
}

func TestZeroPlanInjectsNothing(t *testing.T) {
	client, server := net.Pipe()
	fc := NewConn(client, ConnPlan{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		buf := make([]byte, 5)
		if _, err := io.ReadFull(server, buf); err != nil {
			t.Errorf("peer read: %v", err)
		}
		server.Write(buf)
	}()
	if _, err := fc.Write([]byte("hello")); err != nil {
		t.Fatalf("fault-free write: %v", err)
	}
	buf := make([]byte, 5)
	if _, err := io.ReadFull(fc, buf); err != nil {
		t.Fatalf("fault-free read: %v", err)
	}
	if string(buf) != "hello" {
		t.Fatalf("echo mismatch: %q", buf)
	}
	<-done
}

// TestListenerDerivesPerConnSchedules accepts a few connections and
// checks each got a distinct, index-derived schedule seed.
func TestListenerDerivesPerConnSchedules(t *testing.T) {
	inner, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer inner.Close()
	fl := NewListener(inner, ConnPlan{DropProb: 0.5, Seed: 99})
	var seeds []uint64
	for i := 0; i < 4; i++ {
		d, err := net.Dial("tcp", inner.Addr().String())
		if err != nil {
			t.Fatal(err)
		}
		defer d.Close()
		c, err := fl.Accept()
		if err != nil {
			t.Fatal(err)
		}
		defer c.Close()
		fc, ok := c.(*Conn)
		if !ok {
			t.Fatalf("accepted conn is %T, want *Conn", c)
		}
		seeds = append(seeds, fc.plan.Seed)
	}
	for i := range seeds {
		for j := i + 1; j < len(seeds); j++ {
			if seeds[i] == seeds[j] {
				t.Fatalf("conns %d and %d share schedule seed %#x", i, j, seeds[i])
			}
		}
	}
}
