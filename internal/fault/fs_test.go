package fault

import (
	"errors"
	"os"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/wal"
)

func TestCrashAtByteKillsDevice(t *testing.T) {
	dir := t.TempDir()
	fs := NewFS(nil, FSPlan{CrashAtByte: 15, Seed: 1})
	f, err := fs.OpenFile(filepath.Join(dir, "x"), os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write(make([]byte, 10)); err != nil {
		t.Fatalf("write below the crash boundary: %v", err)
	}
	n, err := f.Write(make([]byte, 10))
	if !errors.Is(err, ErrCrashed) {
		t.Fatalf("write crossing the boundary: got %v, want ErrCrashed", err)
	}
	if n != 5 {
		t.Fatalf("crossing write persisted %d bytes, want exactly 5 (up to byte 15)", n)
	}
	if !fs.Crashed() {
		t.Fatal("FS not marked crashed")
	}
	if _, err := f.Write([]byte("a")); !errors.Is(err, ErrCrashed) {
		t.Fatalf("post-crash write: got %v, want ErrCrashed", err)
	}
	if err := f.Sync(); !errors.Is(err, ErrCrashed) {
		t.Fatalf("post-crash sync: got %v, want ErrCrashed", err)
	}
	if _, err := fs.OpenFile(filepath.Join(dir, "y"), os.O_RDWR|os.O_CREATE, 0o644); !errors.Is(err, ErrCrashed) {
		t.Fatalf("post-crash open: got %v, want ErrCrashed", err)
	}
	st, err := os.Stat(filepath.Join(dir, "x"))
	if err != nil {
		t.Fatal(err)
	}
	if st.Size() != 15 {
		t.Fatalf("on-disk file has %d bytes, want the 15 persisted before the crash", st.Size())
	}
}

func TestSyncErrIsTransient(t *testing.T) {
	dir := t.TempDir()
	fs := NewFS(nil, FSPlan{SyncErrProb: 1, CrashAtByte: -1, Seed: 2})
	f, err := fs.OpenFile(filepath.Join(dir, "x"), os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte("payload")); err != nil {
		t.Fatalf("write: %v", err)
	}
	if err := f.Sync(); !errors.Is(err, ErrInjectedSync) {
		t.Fatalf("sync: got %v, want ErrInjectedSync", err)
	}
	// The data reached the file despite the failed sync.
	b, err := os.ReadFile(filepath.Join(dir, "x"))
	if err != nil || string(b) != "payload" {
		t.Fatalf("file content %q err %v after failed sync", b, err)
	}
	if fs.Crashed() {
		t.Fatal("transient sync failure crashed the device")
	}
}

func TestShortWritePersistsStrictPrefix(t *testing.T) {
	dir := t.TempDir()
	fs := NewFS(nil, FSPlan{ShortWriteProb: 1, CrashAtByte: -1, Seed: 3})
	f, err := fs.OpenFile(filepath.Join(dir, "x"), os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 100)
	n, err := f.Write(buf)
	if err == nil {
		t.Fatal("short write reported success")
	}
	if n <= 0 || n >= len(buf) {
		t.Fatalf("short write persisted %d of %d bytes, want a strict prefix", n, len(buf))
	}
	if fs.Crashed() {
		t.Fatal("short write crashed the device; it must stay usable")
	}
}

// TestWALSurvivesShortWrites drives the WAL over a disk that tears
// half its writes and checks the self-repair invariant: after the
// storm, every append that REPORTED success is replayable from a
// clean reopen, and the log is never corrupt mid-segment.
func TestWALSurvivesShortWrites(t *testing.T) {
	dir := t.TempDir()
	fs := NewFS(nil, FSPlan{ShortWriteProb: 0.5, CrashAtByte: -1, Seed: 4})
	fs.SetArmed(false) // open cleanly, then start the storm
	w, err := wal.Open(dir, wal.Options{
		FS:            fs,
		FlushInterval: 100 * time.Microsecond,
		FlushBatch:    4,
	})
	if err != nil {
		t.Fatal(err)
	}
	fs.SetArmed(true)
	var committed []uint64
	for i := 0; i < 200; i++ {
		err := w.Append(&wal.Record{Type: wal.TypeCounter, ClientID: "dev-0", NextID: uint64(i)})
		if err == nil {
			committed = append(committed, uint64(i))
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if len(committed) == 0 || len(committed) == 200 {
		t.Fatalf("%d/200 appends committed; the storm should fail some and spare some", len(committed))
	}

	w2, err := wal.Open(dir, wal.Options{})
	if err != nil {
		t.Fatalf("reopen on clean disk: %v", err)
	}
	defer w2.Close()
	got := map[uint64]bool{}
	if err := w2.Replay(func(r *wal.Record) error {
		got[r.NextID] = true
		return nil
	}); err != nil {
		t.Fatalf("replay after repair: %v", err)
	}
	for _, id := range committed {
		if !got[id] {
			t.Errorf("append %d reported success but did not survive replay", id)
		}
	}
}
