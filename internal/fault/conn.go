package fault

import (
	"net"
	"sync"
	"time"

	"repro/internal/rng"
)

// ConnPlan schedules the faults a wrapped connection injects. The
// zero plan injects nothing.
type ConnPlan struct {
	// DropProb is the chance, per I/O operation, that the connection
	// is torn down before the operation runs. The peer observes a
	// reset or EOF mid-transaction.
	DropProb float64
	// PartialWriteProb is the chance, per Write, that only a prefix of
	// the message reaches the wire before the connection is torn down.
	// The peer observes a truncated frame followed by EOF — never a
	// silently corrupted complete frame.
	PartialWriteProb float64
	// MaxLatency, when > 0, delays each operation by a uniform random
	// duration up to this bound.
	MaxLatency time.Duration
	// Seed drives the fault schedule. Equal seeds replay equal
	// schedules.
	Seed uint64
}

// injectedErr satisfies net.Error so the wire layer's retry
// classification treats an injected fault exactly like the transport
// failure it simulates.
type injectedErr struct{ msg string }

func (e *injectedErr) Error() string   { return e.msg }
func (e *injectedErr) Timeout() bool   { return false }
func (e *injectedErr) Temporary() bool { return true }

// Injected fault errors, surfaced on the side the fault was injected
// into (the peer sees the ordinary transport symptom: reset, EOF, or
// a truncated frame).
var (
	ErrInjectedDrop         net.Error = &injectedErr{"fault: injected connection drop"}
	ErrInjectedPartialWrite net.Error = &injectedErr{"fault: injected partial write"}
)

// Conn wraps a net.Conn with the plan's fault schedule. Safe for the
// same concurrent use as the underlying connection.
type Conn struct {
	net.Conn
	plan ConnPlan

	mu  sync.Mutex // guards rnd
	rnd *rng.Rand
}

// NewConn wraps c with plan's fault schedule.
func NewConn(c net.Conn, plan ConnPlan) *Conn {
	return &Conn{Conn: c, plan: plan, rnd: rng.New(plan.Seed)}
}

// roll draws one operation's fault decisions. n is the write length
// (0 for reads); partial > 0 means write only that prefix.
func (c *Conn) roll(n int) (drop bool, partial int, delay time.Duration) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.plan.MaxLatency > 0 {
		delay = time.Duration(c.rnd.Intn(int(c.plan.MaxLatency)))
	}
	drop = c.rnd.Bool(c.plan.DropProb)
	if !drop && n > 1 && c.rnd.Bool(c.plan.PartialWriteProb) {
		partial = 1 + c.rnd.Intn(n-1)
	}
	return drop, partial, delay
}

func (c *Conn) Read(p []byte) (int, error) {
	drop, _, delay := c.roll(0)
	if delay > 0 {
		time.Sleep(delay)
	}
	if drop {
		c.Conn.Close()
		return 0, ErrInjectedDrop
	}
	return c.Conn.Read(p)
}

func (c *Conn) Write(p []byte) (int, error) {
	drop, partial, delay := c.roll(len(p))
	if delay > 0 {
		time.Sleep(delay)
	}
	if drop {
		c.Conn.Close()
		return 0, ErrInjectedDrop
	}
	if partial > 0 {
		n, _ := c.Conn.Write(p[:partial])
		c.Conn.Close()
		return n, ErrInjectedPartialWrite
	}
	return c.Conn.Write(p)
}

// DelayConn models a link with propagation delay but unlimited
// bandwidth: Write returns immediately (as a real socket buffer
// does), and the bytes reach the peer delay later, in order. Unlike
// ConnPlan.MaxLatency — which sleeps inside the caller's Write and so
// serialises concurrent writers — this keeps the sending side free to
// pipeline, which is exactly the behaviour latency-sensitive
// benchmarks need to model. Wrapping one side of a connection with
// delay d yields a round-trip time of d (the return path is direct).
type DelayConn struct {
	net.Conn
	delay time.Duration

	mu     sync.Mutex
	cond   *sync.Cond
	queue  []delayedChunk // in-flight bytes, oldest first
	closed bool
	werr   error
}

type delayedChunk struct {
	p   []byte
	due time.Time
}

// NewDelayConn wraps c so written bytes arrive delay later. Close
// tears the link down immediately; in-flight bytes are dropped, as
// they would be on a cut cable.
func NewDelayConn(c net.Conn, delay time.Duration) *DelayConn {
	d := &DelayConn{Conn: c, delay: delay}
	d.cond = sync.NewCond(&d.mu)
	go d.pump()
	return d
}

// pump delivers queued chunks to the underlying connection when due,
// strictly in write order.
func (d *DelayConn) pump() {
	for {
		d.mu.Lock()
		for len(d.queue) == 0 && !d.closed {
			d.cond.Wait()
		}
		if len(d.queue) == 0 {
			d.mu.Unlock()
			return
		}
		c := d.queue[0]
		d.queue = d.queue[1:]
		d.mu.Unlock()
		if wait := time.Until(c.due); wait > 0 {
			time.Sleep(wait)
		}
		if _, err := d.Conn.Write(c.p); err != nil {
			d.mu.Lock()
			d.werr = err
			d.mu.Unlock()
			return
		}
	}
}

func (d *DelayConn) Write(p []byte) (int, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.closed {
		return 0, net.ErrClosed
	}
	if d.werr != nil {
		return 0, d.werr
	}
	// The caller may reuse p the moment Write returns; the link owns
	// its own copy, like a socket buffer. The queue is unbounded — a
	// propagation-delay link has no bandwidth cap by construction.
	d.queue = append(d.queue, delayedChunk{
		p:   append([]byte(nil), p...),
		due: time.Now().Add(d.delay),
	})
	d.cond.Signal()
	return len(p), nil
}

// Close stops the pump and closes the underlying connection.
func (d *DelayConn) Close() error {
	d.mu.Lock()
	if !d.closed {
		d.closed = true
		d.cond.Signal()
	}
	d.mu.Unlock()
	return d.Conn.Close()
}

// Listener wraps a net.Listener so every accepted connection carries
// the plan's faults, each on its own deterministic schedule derived
// from the base seed and the accept index.
type Listener struct {
	net.Listener
	plan ConnPlan

	mu sync.Mutex // guards n
	n  uint64
}

// NewListener wraps l; accepted connections inject plan's faults.
func NewListener(l net.Listener, plan ConnPlan) *Listener {
	return &Listener{Listener: l, plan: plan}
}

func (fl *Listener) Accept() (net.Conn, error) {
	c, err := fl.Listener.Accept()
	if err != nil {
		return nil, err
	}
	fl.mu.Lock()
	fl.n++
	n := fl.n
	fl.mu.Unlock()
	p := fl.plan
	// Golden-ratio mixing keeps sibling connections' schedules
	// decorrelated while staying a pure function of (seed, index).
	p.Seed = fl.plan.Seed ^ (n * 0x9e3779b97f4a7c15)
	return NewConn(c, p), nil
}
