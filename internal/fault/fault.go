// Package fault injects deterministic, seeded failures underneath the
// transport and storage layers so resilience claims can be tested
// instead of asserted. Two seams are covered: Conn/Listener wrap
// net.Conn with schedulable drops, latency, and partial writes; FS
// wraps the WAL's filesystem with fsync errors, short writes, and
// crash-at-byte-N device death. Every fault decision is drawn from a
// seeded generator, so a failing chaos run replays exactly from its
// seed.
package fault
