package lint

// Shared markdown-table machinery: waldrift pins record/opcode tables
// in the docs against declared constants, and repinvariant pins the
// client port's replication-opcode rejection against the same
// PROTOCOL.md table. Both read `| name | value |` rows from a
// markdown section addressed GitHub-anchor style.

import (
	"errors"
	"fmt"
	"os"
	"regexp"
	"strconv"
	"strings"
)

// ErrNoSection reports that a markdown file exists but lacks the
// requested #section.
var ErrNoSection = errors.New("section not found")

// MarkdownSection reads path and returns its lines, narrowed to the
// section whose heading slugifies to section (the whole file when
// section is empty). The returned error wraps ErrNoSection when the
// file is readable but the heading is missing.
func MarkdownSection(path, section string) ([]string, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	lines := strings.Split(string(data), "\n")
	if section == "" {
		return lines, nil
	}
	scoped, ok := sectionLines(lines, section)
	if !ok {
		return nil, fmt.Errorf("%w: #%s", ErrNoSection, section)
	}
	return scoped, nil
}

// sectionLines narrows the markdown to the section whose heading
// slugifies to want: from that heading to the next heading of the
// same or higher level. The second result reports whether the
// section exists.
func sectionLines(lines []string, want string) ([]string, bool) {
	level := 0
	start := -1
	for i, line := range lines {
		trimmed := strings.TrimSpace(line)
		if !strings.HasPrefix(trimmed, "#") {
			continue
		}
		l := 0
		for l < len(trimmed) && trimmed[l] == '#' {
			l++
		}
		if start >= 0 && l <= level {
			return lines[start:i], true
		}
		if start < 0 && Slugify(trimmed[l:]) == want {
			start, level = i, l
		}
	}
	if start < 0 {
		return nil, false
	}
	return lines[start:], true
}

// tableRowRE matches one record-table row: a name cell (optionally
// backticked) followed by an integer value cell. The integer
// requirement keeps prose tables (e.g. error-code tables with text
// columns) from matching.
var tableRowRE = regexp.MustCompile("^\\|\\s*`?([a-z][a-z0-9_-]*)`?\\s*\\|\\s*(\\d+)\\s*\\|")

// TableRows extracts the `| name | value |` rows from markdown lines,
// returning the name-to-value map and first-appearance order.
func TableRows(lines []string) (map[string]int64, []string) {
	rows := make(map[string]int64)
	var order []string
	for _, line := range lines {
		m := tableRowRE.FindStringSubmatch(strings.TrimSpace(line))
		if m == nil {
			continue
		}
		v, err := strconv.ParseInt(m[2], 10, 64)
		if err != nil {
			continue
		}
		if _, dup := rows[m[1]]; !dup {
			order = append(order, m[1])
		}
		rows[m[1]] = v
	}
	return rows, order
}

// TableCellsByName extracts every cell of each `| name | value | ... |`
// data row, keyed by the (de-backticked) name cell, with
// first-appearance order. Extra columns beyond the two TableRows
// reads ride along verbatim (trimmed, backticks stripped) — the
// codecsym analyzer reads payload grammars from a third column this
// way without disturbing the value pinning.
func TableCellsByName(lines []string) (map[string][]string, []string) {
	rows := make(map[string][]string)
	var order []string
	for _, line := range lines {
		trimmed := strings.TrimSpace(line)
		if tableRowRE.FindStringSubmatch(trimmed) == nil {
			continue
		}
		var cells []string
		for _, c := range strings.Split(strings.Trim(trimmed, "|"), "|") {
			cells = append(cells, strings.Trim(strings.TrimSpace(c), "`"))
		}
		if len(cells) == 0 {
			continue
		}
		if _, dup := rows[cells[0]]; !dup {
			order = append(order, cells[0])
			rows[cells[0]] = cells
		}
	}
	return rows, order
}

// RecordTableDirective is one parsed //lint:recordtable comment —
// the grammar is shared by waldrift (value pinning) and codecsym
// (payload pinning):
//
//	//lint:recordtable <relpath>[#<section>] [type=TypeName] [prefix=Prefix]
type RecordTableDirective struct {
	// Rel is the markdown path relative to the directive's file.
	Rel string
	// Section scopes the scan to one slugified heading ("" = whole
	// file).
	Section string
	// TypeName is the local discriminator type (default "Type").
	TypeName string
	// Prefix is the constant prefix (default: the type name).
	Prefix string
}

// RecordTableDirectivePrefix introduces a record-table cross-check.
const RecordTableDirectivePrefix = "//lint:recordtable "

// ParseRecordTableDirective splits the directive's argument string.
func ParseRecordTableDirective(rest string) (RecordTableDirective, error) {
	fields := strings.Fields(rest)
	if len(fields) == 0 {
		return RecordTableDirective{}, fmt.Errorf("expected //lint:recordtable <path>[#section] [type=TypeName] [prefix=Prefix]")
	}
	d := RecordTableDirective{TypeName: "Type"}
	d.Rel, d.Section, _ = strings.Cut(fields[0], "#")
	explicitPrefix := false
	for _, f := range fields[1:] {
		key, val, ok := strings.Cut(f, "=")
		if !ok || val == "" {
			return RecordTableDirective{}, fmt.Errorf("malformed option %q: want key=value", f)
		}
		switch key {
		case "type":
			d.TypeName = val
		case "prefix":
			d.Prefix = val
			explicitPrefix = true
		default:
			return RecordTableDirective{}, fmt.Errorf("unknown option %q: want type= or prefix=", key)
		}
	}
	if !explicitPrefix {
		d.Prefix = d.TypeName
	}
	return d, nil
}

// CamelToSnake maps a trimmed constant name onto its wire/doc
// spelling: RemapChallenge → remap_challenge.
func CamelToSnake(s string) string {
	var b strings.Builder
	for i, r := range s {
		if r >= 'A' && r <= 'Z' {
			if i > 0 {
				b.WriteByte('_')
			}
			r += 'a' - 'A'
		}
		b.WriteRune(r)
	}
	return b.String()
}

// Slugify maps a markdown heading onto its GitHub-style anchor:
// lowercased, spaces to dashes, everything else non-alphanumeric
// dropped.
func Slugify(heading string) string {
	var b strings.Builder
	for _, r := range strings.ToLower(strings.TrimSpace(heading)) {
		switch {
		case r >= 'a' && r <= 'z' || r >= '0' && r <= '9' || r == '-':
			b.WriteRune(r)
		case r == ' ':
			b.WriteByte('-')
		}
	}
	return b.String()
}
