package lint

// Shared markdown-table machinery: waldrift pins record/opcode tables
// in the docs against declared constants, and repinvariant pins the
// client port's replication-opcode rejection against the same
// PROTOCOL.md table. Both read `| name | value |` rows from a
// markdown section addressed GitHub-anchor style.

import (
	"errors"
	"fmt"
	"os"
	"regexp"
	"strconv"
	"strings"
)

// ErrNoSection reports that a markdown file exists but lacks the
// requested #section.
var ErrNoSection = errors.New("section not found")

// MarkdownSection reads path and returns its lines, narrowed to the
// section whose heading slugifies to section (the whole file when
// section is empty). The returned error wraps ErrNoSection when the
// file is readable but the heading is missing.
func MarkdownSection(path, section string) ([]string, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	lines := strings.Split(string(data), "\n")
	if section == "" {
		return lines, nil
	}
	scoped, ok := sectionLines(lines, section)
	if !ok {
		return nil, fmt.Errorf("%w: #%s", ErrNoSection, section)
	}
	return scoped, nil
}

// sectionLines narrows the markdown to the section whose heading
// slugifies to want: from that heading to the next heading of the
// same or higher level. The second result reports whether the
// section exists.
func sectionLines(lines []string, want string) ([]string, bool) {
	level := 0
	start := -1
	for i, line := range lines {
		trimmed := strings.TrimSpace(line)
		if !strings.HasPrefix(trimmed, "#") {
			continue
		}
		l := 0
		for l < len(trimmed) && trimmed[l] == '#' {
			l++
		}
		if start >= 0 && l <= level {
			return lines[start:i], true
		}
		if start < 0 && Slugify(trimmed[l:]) == want {
			start, level = i, l
		}
	}
	if start < 0 {
		return nil, false
	}
	return lines[start:], true
}

// tableRowRE matches one record-table row: a name cell (optionally
// backticked) followed by an integer value cell. The integer
// requirement keeps prose tables (e.g. error-code tables with text
// columns) from matching.
var tableRowRE = regexp.MustCompile("^\\|\\s*`?([a-z][a-z0-9_-]*)`?\\s*\\|\\s*(\\d+)\\s*\\|")

// TableRows extracts the `| name | value |` rows from markdown lines,
// returning the name-to-value map and first-appearance order.
func TableRows(lines []string) (map[string]int64, []string) {
	rows := make(map[string]int64)
	var order []string
	for _, line := range lines {
		m := tableRowRE.FindStringSubmatch(strings.TrimSpace(line))
		if m == nil {
			continue
		}
		v, err := strconv.ParseInt(m[2], 10, 64)
		if err != nil {
			continue
		}
		if _, dup := rows[m[1]]; !dup {
			order = append(order, m[1])
		}
		rows[m[1]] = v
	}
	return rows, order
}

// CamelToSnake maps a trimmed constant name onto its wire/doc
// spelling: RemapChallenge → remap_challenge.
func CamelToSnake(s string) string {
	var b strings.Builder
	for i, r := range s {
		if r >= 'A' && r <= 'Z' {
			if i > 0 {
				b.WriteByte('_')
			}
			r += 'a' - 'A'
		}
		b.WriteRune(r)
	}
	return b.String()
}

// Slugify maps a markdown heading onto its GitHub-style anchor:
// lowercased, spaces to dashes, everything else non-alphanumeric
// dropped.
func Slugify(heading string) string {
	var b strings.Builder
	for _, r := range strings.ToLower(strings.TrimSpace(heading)) {
		switch {
		case r >= 'a' && r <= 'z' || r >= '0' && r <= '9' || r == '-':
			b.WriteRune(r)
		case r == ' ':
			b.WriteByte('-')
		}
	}
	return b.String()
}
