// Package poolsafe enforces the zero-alloc path's pool discipline
// flow-sensitively: every value handed out by a pool's get function
// must reach the pool's put function exactly once on every path —
// error returns and panic exits included (a deferred put covers
// both) — must never be used after it was put back, and must never be
// put twice. Violations are reported with the branch condition of the
// offending path, so "leaks when ReadFrameInto fails" is readable
// straight off the finding.
//
// The built-in pool is the wire buffer pool (`wire.GetBuf` /
// `wire.PutBuf`). Additional pools are pinned with a directive
// anywhere in the package:
//
//	//lint:pool get=NewEntry put=ReleaseEntry
//	//lint:pool get=cachepool.Get put=cachepool.Put
//
// Bare names resolve in the package scope; dotted names resolve
// through the package's imports by package name. A directive that
// does not parse or resolve is itself a finding — a misspelled pool
// pin must not silently disable the check.
package poolsafe

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"repro/internal/lint"
)

// Analyzer is the poolsafe entry point.
var Analyzer = &lint.Analyzer{
	Name: "poolsafe",
	Doc:  "pooled values (wire.GetBuf, //lint:pool-pinned pools) must reach their put function exactly once on every path, never be used after put, and never be put twice",
	Run:  run,
}

// wirePkg is the built-in pool's home package.
const wirePkg = "repro/internal/wire"

const directive = "//lint:pool "

// pool is one get/put pair the analysis tracks.
type pool struct {
	get, put types.Object // nil for the built-in path-matched pair
	getName  string       // display name for messages
	putName  string
	builtin  bool
}

func run(pass *lint.Pass) error {
	pools := []pool{{getName: "wire.GetBuf", putName: "wire.PutBuf", builtin: true}}
	pools = append(pools, parseDirectives(pass)...)

	cfg := &lint.OwnershipConfig{
		Exact: true,
		Acquire: func(call *ast.CallExpr) (string, bool) {
			for _, p := range pools {
				if p.matchesGet(pass, call) {
					return "pooled buffer from " + p.getName, true
				}
			}
			return "", false
		},
		Release: func(call *ast.CallExpr) (ast.Expr, bool) {
			for _, p := range pools {
				if p.matchesPut(pass, call) && len(call.Args) > 0 {
					return call.Args[0], true
				}
			}
			return nil, false
		},
		Tracks: func(t types.Type) bool {
			for _, p := range pools {
				if p.tracksType(t) {
					return true
				}
			}
			return false
		},
	}
	for _, f := range lint.RunOwnership(pass, cfg) {
		if testPos(pass, f.Pos) {
			continue
		}
		switch f.Kind {
		case lint.OwnLeak:
			via := ""
			if f.Via != "" {
				via = " on the path via " + f.Via
			}
			pass.Reportf(f.Pos, "%s %q is not returned to the pool on every path%s", f.Desc, f.Name, via)
		case lint.OwnDiscard:
			pass.Reportf(f.Pos, "result of %s is discarded: the buffer can never be returned to the pool", f.Desc)
		case lint.OwnDoubleRelease:
			pass.Reportf(f.Pos, "%s %q is put back twice (previous release at %s)", f.Desc, f.Name, pass.Fset.Position(f.RelPos))
		case lint.OwnUseAfterRelease:
			pass.Reportf(f.Pos, "use of %q after it was returned to the pool at %s", f.Name, pass.Fset.Position(f.RelPos))
		case lint.OwnReassign:
			pass.Reportf(f.Pos, "%q is overwritten while still holding an unreleased %s (acquired at %s)", f.Name, f.Desc, pass.Fset.Position(f.AcqPos))
		}
	}
	return nil
}

// matchesGet reports whether call's callee is this pool's get.
func (p pool) matchesGet(pass *lint.Pass, call *ast.CallExpr) bool {
	obj := lint.CalleeObject(pass.TypesInfo, call)
	if p.builtin {
		return isWireFunc(obj, "GetBuf")
	}
	return obj != nil && obj == p.get
}

func (p pool) matchesPut(pass *lint.Pass, call *ast.CallExpr) bool {
	obj := lint.CalleeObject(pass.TypesInfo, call)
	if p.builtin {
		return isWireFunc(obj, "PutBuf")
	}
	return obj != nil && obj == p.put
}

func isWireFunc(obj types.Object, name string) bool {
	fn, ok := obj.(*types.Func)
	return ok && fn.Name() == name && fn.Pkg() != nil && fn.Pkg().Path() == wirePkg
}

// tracksType reports whether t is the pool's element type — what the
// get function returns. Only formals of a pooled type join the
// interprocedural analysis.
func (p pool) tracksType(t types.Type) bool {
	if p.builtin {
		ptr, ok := t.(*types.Pointer)
		if !ok {
			return false
		}
		named, ok := ptr.Elem().(*types.Named)
		if !ok {
			return false
		}
		obj := named.Obj()
		return obj.Name() == "Buf" && obj.Pkg() != nil && obj.Pkg().Path() == wirePkg
	}
	fn, ok := p.get.(*types.Func)
	if !ok {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Results().Len() == 0 {
		return false
	}
	return types.Identical(t, sig.Results().At(0).Type())
}

// parseDirectives collects //lint:pool pins, reporting the broken
// ones.
func parseDirectives(pass *lint.Pass) []pool {
	var out []pool
	for _, file := range pass.Files {
		for _, cg := range file.Comments {
			for _, c := range cg.List {
				if !strings.HasPrefix(c.Text, directive) {
					continue
				}
				rest := strings.TrimSpace(strings.TrimPrefix(c.Text, directive))
				p, err := resolveDirective(pass, rest)
				if err != "" {
					pass.Reportf(c.Pos(), "malformed //lint:pool directive: %s", err)
					continue
				}
				out = append(out, p)
			}
		}
	}
	return out
}

// resolveDirective parses `get=F put=G` and resolves both names to
// function objects; a non-empty string return describes the failure.
func resolveDirective(pass *lint.Pass, rest string) (pool, string) {
	var p pool
	fields := strings.Fields(rest)
	if len(fields) != 2 {
		return p, "want exactly `get=F put=G`, got " + strings.Join(fields, " ")
	}
	for _, f := range fields {
		key, name, ok := strings.Cut(f, "=")
		if !ok || name == "" {
			return p, "malformed field " + f
		}
		obj, err := resolveFunc(pass, name)
		if err != "" {
			return p, err
		}
		switch key {
		case "get":
			p.get, p.getName = obj, name
		case "put":
			p.put, p.putName = obj, name
		default:
			return p, "unknown key " + key + " (want get= and put=)"
		}
	}
	if p.get == nil || p.put == nil {
		return p, "both get= and put= are required"
	}
	return p, ""
}

// resolveFunc resolves a bare name in the package scope or a dotted
// name through the imports (by package name).
func resolveFunc(pass *lint.Pass, name string) (types.Object, string) {
	if pass.Pkg == nil {
		return nil, "package did not type-check"
	}
	pkgName, fnName, dotted := strings.Cut(name, ".")
	scope := pass.Pkg.Scope()
	if dotted {
		scope = nil
		for _, imp := range pass.Pkg.Imports() {
			if imp.Name() == pkgName {
				scope = imp.Scope()
				break
			}
		}
		if scope == nil {
			return nil, "no imported package named " + pkgName
		}
	} else {
		fnName = name
	}
	obj := scope.Lookup(fnName)
	if obj == nil {
		return nil, name + " does not resolve to a declaration"
	}
	if _, ok := obj.(*types.Func); !ok {
		return nil, name + " is not a function"
	}
	return obj, ""
}

// testPos mirrors secretflow's exemption: the vettool driver feeds
// test files into the pass, and tests exercise pool misuse on
// purpose.
func testPos(pass *lint.Pass, pos token.Pos) bool {
	return strings.HasSuffix(pass.Fset.Position(pos).Filename, "_test.go")
}
