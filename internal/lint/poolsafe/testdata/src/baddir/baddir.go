// Package baddir carries only broken //lint:pool directives; each one
// must be reported rather than silently disabling the check.
package baddir

//lint:pool get=grab
//lint:pool get=missing put=alsoMissing
//lint:pool get=grab put=notAFunc

func grab() *int { return new(int) }

var notAFunc int
