// Package wire is a fixture standing in for the real wire package:
// poolsafe's built-in pool matches GetBuf/PutBuf by package path
// (repro/internal/wire — the segments after testdata/src), so the
// violations below exercise the built-in seeds without importing the
// real module.
package wire

import "errors"

// Buf is the pooled frame buffer.
type Buf struct{ B []byte }

var pool []*Buf

// GetBuf hands out a buffer.
func GetBuf() *Buf {
	if n := len(pool); n > 0 {
		b := pool[n-1]
		pool = pool[:n-1]
		return b
	}
	return &Buf{}
}

// PutBuf returns a buffer to the pool.
func PutBuf(b *Buf) { pool = append(pool, b) }

// Leak skips the put on the early-return path.
func Leak(fast bool) {
	b := GetBuf() // want "pooled buffer from wire.GetBuf \"b\" is not returned to the pool on every path on the path via fast"
	if fast {
		return
	}
	PutBuf(b)
}

// Double puts the same buffer back twice.
func Double() {
	b := GetBuf()
	PutBuf(b)
	PutBuf(b) // want "\"b\" is put back twice"
}

// UseAfter touches the buffer after it went back to the pool.
func UseAfter() int {
	b := GetBuf()
	PutBuf(b)
	return len(b.B) // want "use of \"b\" after it was returned to the pool"
}

// Discard drops the handed-out buffer on the floor.
func Discard() {
	GetBuf() // want "result of pooled buffer from wire.GetBuf is discarded"
}

// Reassign overwrites the live buffer, orphaning it.
func Reassign() {
	b := GetBuf()
	b = GetBuf() // want "\"b\" is overwritten while still holding an unreleased"
	PutBuf(b)
}

// fresh transfers ownership to its caller: no finding here, but the
// constructor summary makes callers responsible.
func fresh() *Buf {
	b := GetBuf()
	b.B = b.B[:0]
	return b
}

// CallerLeak owns fresh's result and loses it on one branch.
func CallerLeak(fast bool) {
	b := fresh() // want "\"b\" is not returned to the pool on every path"
	if fast {
		return
	}
	PutBuf(b)
}

// DeferOK covers every exit — error return and panic alike — with one
// armed put.
func DeferOK(fail bool) error {
	b := GetBuf()
	defer PutBuf(b)
	if fail {
		return errors.New("short write")
	}
	b.B = append(b.B, 1)
	return nil
}

// ErrNilOK relies on the error convention: on the err != nil branch
// the buffer is nil by construction and owes nothing.
func ErrNilOK(ok bool) error {
	b, err := tryGet(ok)
	if err != nil {
		return err
	}
	PutBuf(b)
	return nil
}

func tryGet(ok bool) (*Buf, error) {
	if !ok {
		return nil, errors.New("pool drained")
	}
	return GetBuf(), nil
}

// frame consumes the buffer: storing it in a composite transfers
// ownership to the frame's owner.
type frame struct{ buf *Buf }

func hold(b *Buf) *frame { return &frame{buf: b} }

// TransferOK hands the buffer to a frame; the escape is the release.
func TransferOK() *frame {
	b := GetBuf()
	return hold(b)
}
