// Package pooldir pins a custom pool with a //lint:pool directive and
// exercises the same discipline on it.
package pooldir

//lint:pool get=grab put=release

type entry struct{ b []byte }

var free []*entry

func grab() *entry {
	if n := len(free); n > 0 {
		e := free[n-1]
		free = free[:n-1]
		return e
	}
	return &entry{}
}

func release(e *entry) { free = append(free, e) }

// Leak loses the entry on the fast path.
func Leak(fast bool) {
	e := grab() // want "pooled buffer from grab \"e\" is not returned to the pool on every path on the path via fast"
	if fast {
		return
	}
	release(e)
}

// UseAfter reads the entry after handing it back.
func UseAfter() int {
	e := grab()
	release(e)
	return len(e.b) // want "use of \"e\" after it was returned to the pool"
}

// DeferOK is the canonical clean shape.
func DeferOK() {
	e := grab()
	defer release(e)
	e.b = e.b[:0]
}
