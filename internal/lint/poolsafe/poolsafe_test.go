package poolsafe_test

import (
	"strings"
	"testing"

	"repro/internal/lint"
	"repro/internal/lint/linttest"
	"repro/internal/lint/poolsafe"
)

// TestBuiltinPool runs the golden fixture for the built-in
// wire.GetBuf/PutBuf pair: the fixture package synthesizes the
// repro/internal/wire import path, so the path-matched seeds fire
// without the real module.
func TestBuiltinPool(t *testing.T) {
	linttest.Run(t, poolsafe.Analyzer, "testdata/src/repro/internal/wire")
}

// TestDirectivePool covers the //lint:pool get=F put=G grammar on a
// package-local pool.
func TestDirectivePool(t *testing.T) {
	linttest.Run(t, poolsafe.Analyzer, "testdata/src/pooldir")
}

// TestMalformedDirectives asserts the directive failure modes
// programmatically (a want comment cannot share a line comment, and
// the diagnostics anchor on the directives themselves).
func TestMalformedDirectives(t *testing.T) {
	pkg, err := lint.LoadDir("testdata/src/baddir")
	if err != nil {
		t.Fatalf("load fixture: %v", err)
	}
	diags, err := lint.RunPackage(pkg, []*lint.Analyzer{poolsafe.Analyzer})
	if err != nil {
		t.Fatalf("run poolsafe: %v", err)
	}
	if len(diags) != 3 {
		t.Fatalf("got %d diagnostics, want 3: %v", len(diags), diags)
	}
	for _, want := range []string{
		"want exactly `get=F put=G`",
		"missing does not resolve to a declaration",
		"notAFunc is not a function",
	} {
		found := false
		for _, d := range diags {
			if strings.Contains(d.Message, "malformed //lint:pool directive") && strings.Contains(d.Message, want) {
				found = true
			}
		}
		if !found {
			t.Errorf("no diagnostic matching %q in %v", want, diags)
		}
	}
}
