package lint

import (
	"go/ast"
	"go/types"
)

// Interprocedural facility: a package-level call graph over go/types
// function objects. Analyzers that need to reason across function
// boundaries (lockorder's lock-acquisition propagation, goroleak's
// blocking-operation search) get it from Pass.CallGraph(); the graph
// is built once per package and shared across analyzers.
//
// Resolution is static: direct calls bind to the named function,
// method calls bind through the static receiver type, and a call
// through an interface is additionally devirtualised to every
// in-package concrete implementation (Targets), which is how the
// graph crosses abstraction boundaries like auth.ClientStore without
// whole-program analysis. Calls whose callee cannot be resolved
// (function values, externals) simply produce no edge — the graph is
// an under-approximation, which is the right default for linting:
// missing edges cost findings, never false ones.

// CallSite is one statically resolved call inside a function body.
type CallSite struct {
	// Call is the call expression.
	Call *ast.CallExpr
	// Callee is the static callee: a function, a concrete method, or
	// an interface method. Never nil (unresolved calls are dropped).
	Callee types.Object
	// Targets are the in-package function bodies this call can reach:
	// the callee itself when it is declared in this package, or — for
	// an interface method — every in-package concrete method whose
	// receiver implements the interface. Empty for external callees.
	Targets []*types.Func
	// Go marks a call that runs on a new goroutine: the call of a `go`
	// statement, or any call lexically inside a function literal
	// launched by one. Lock-order propagation must not cross Go edges
	// (the goroutine has its own stack), and goroleak starts from
	// them.
	Go bool
	// Defer marks a call that runs at function exit: the call of a
	// `defer` statement, or any call inside a deferred literal.
	Defer bool
}

// CallNode is one declared function and its outgoing call sites, in
// lexical order. Sites inside function literals nested in the body
// are attributed to the declaring function (a literal is not a node;
// only `go`/`defer` launching is tracked, via the site flags).
type CallNode struct {
	// Func is the declared function or method object.
	Func *types.Func
	// Decl is its declaration (Body non-nil).
	Decl *ast.FuncDecl
	// Sites are the resolved calls in the body, lexical order.
	Sites []CallSite
}

// CallGraph is the package-level call graph.
type CallGraph struct {
	// Nodes maps every function declared (with a body) in the package
	// to its node.
	Nodes map[*types.Func]*CallNode
	// order preserves declaration order for deterministic iteration.
	order []*CallNode
}

// NodeOf returns the node for a callee object, or nil when obj is not
// a function declared in this package.
func (g *CallGraph) NodeOf(obj types.Object) *CallNode {
	fn, ok := obj.(*types.Func)
	if !ok {
		return nil
	}
	return g.Nodes[fn]
}

// All returns the nodes in declaration order.
func (g *CallGraph) All() []*CallNode { return g.order }

// CallGraph returns the package's call graph, building it on first
// use and sharing it across every analyzer of the package.
func (p *Pass) CallGraph() *CallGraph {
	if p.pkg == nil {
		// No shared package (direct construction in tests): build fresh.
		return buildCallGraph(p.Files, p.TypesInfo, p.Pkg)
	}
	if p.pkg.cg == nil {
		p.pkg.cg = buildCallGraph(p.pkg.Files, p.pkg.Info, p.pkg.Types)
	}
	return p.pkg.cg
}

// buildCallGraph constructs the graph for one type-checked package.
func buildCallGraph(files []*ast.File, info *types.Info, pkg *types.Package) *CallGraph {
	g := &CallGraph{Nodes: make(map[*types.Func]*CallNode)}
	// Register every node first: body walks resolve Targets against
	// the full declaration set, including later declarations.
	for _, f := range files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			fn, ok := info.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			node := &CallNode{Func: fn, Decl: fd}
			g.Nodes[fn] = node
			g.order = append(g.order, node)
		}
	}
	b := &cgBuilder{info: info, pkg: pkg, graph: g}
	for _, node := range g.order {
		b.node = node
		b.walk(node.Decl.Body, false, false)
	}
	return g
}

// cgBuilder accumulates call sites for one node at a time.
type cgBuilder struct {
	info  *types.Info
	pkg   *types.Package
	graph *CallGraph
	node  *CallNode

	// implCache memoises interface-method devirtualisation.
	implCache map[*types.Func][]*types.Func
}

// walk records every resolved call under n, threading the go/defer
// flags through launched function literals.
func (b *cgBuilder) walk(n ast.Node, inGo, inDefer bool) {
	ast.Inspect(n, func(m ast.Node) bool {
		switch x := m.(type) {
		case *ast.GoStmt:
			b.launch(x.Call, true, inDefer, inGo, inDefer)
			return false
		case *ast.DeferStmt:
			b.launch(x.Call, inGo, true, inGo, inDefer)
			return false
		case *ast.CallExpr:
			b.site(x, inGo, inDefer)
			return true
		}
		return true
	})
}

// launch handles the call of a go/defer statement: the call itself
// (and a launched literal's body) carries the launch flags, while the
// arguments are evaluated on the current stack and keep the enclosing
// flags.
func (b *cgBuilder) launch(call *ast.CallExpr, callGo, callDefer, argGo, argDefer bool) {
	b.site(call, callGo, callDefer)
	if lit, ok := ast.Unparen(call.Fun).(*ast.FuncLit); ok {
		b.walk(lit.Body, callGo, callDefer)
	} else {
		b.walk(call.Fun, argGo, argDefer)
	}
	for _, a := range call.Args {
		b.walk(a, argGo, argDefer)
	}
}

// site resolves and records one call expression.
func (b *cgBuilder) site(call *ast.CallExpr, inGo, inDefer bool) {
	obj := CalleeObject(b.info, call)
	fn, ok := obj.(*types.Func)
	if !ok {
		return
	}
	b.node.Sites = append(b.node.Sites, CallSite{
		Call:    call,
		Callee:  fn,
		Targets: b.targets(fn),
		Go:      inGo,
		Defer:   inDefer,
	})
}

// targets resolves the in-package bodies a call to fn can reach.
func (b *cgBuilder) targets(fn *types.Func) []*types.Func {
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return nil
	}
	recv := sig.Recv()
	if recv == nil || !types.IsInterface(recv.Type()) {
		// Plain function or concrete method: the body is the callee's
		// own, when declared here.
		if b.graph.Nodes[fn] != nil {
			return []*types.Func{fn}
		}
		return nil
	}
	// Interface method: devirtualise to every in-package concrete
	// implementation.
	if cached, ok := b.implCache[fn]; ok {
		return cached
	}
	var out []*types.Func
	iface, ok := recv.Type().Underlying().(*types.Interface)
	if ok && b.pkg != nil {
		for _, name := range b.pkg.Scope().Names() {
			tn, ok := b.pkg.Scope().Lookup(name).(*types.TypeName)
			if !ok || tn.IsAlias() {
				continue
			}
			named, ok := tn.Type().(*types.Named)
			if !ok || types.IsInterface(named) {
				continue
			}
			impl := types.NewPointer(named)
			if !types.Implements(impl, iface) && !types.Implements(named, iface) {
				continue
			}
			m, _, _ := types.LookupFieldOrMethod(impl, true, fn.Pkg(), fn.Name())
			cm, ok := m.(*types.Func)
			if !ok {
				continue
			}
			if b.graph.Nodes[cm] != nil {
				out = append(out, cm)
			}
		}
	}
	if b.implCache == nil {
		b.implCache = make(map[*types.Func][]*types.Func)
	}
	b.implCache[fn] = out
	return out
}
