package lint

// Must-release ownership analysis over the CFG facility, shared by
// the poolsafe and resleak analyzers. The engine tracks values a
// configured acquisition call hands out (a pooled buffer, an open
// conn) through a forward flow problem whose per-variable lattice is
// the {live, released, escaped} powerset, and reports a leak when a
// path can reach a function exit with the value still live, a double
// release when a path releases twice (including a deferred release
// running after an explicit one), and — in exact mode — any use after
// release.
//
// Ownership transfers interprocedurally through two fixpointed
// summaries over the package: a per-formal "takes" disposition (the
// callee releases or stores its argument on every path, so the caller
// is done with it) and a "returns owned" result summary (the callee
// is a constructor; its caller inherits the obligation). Both start
// pessimistic — callee borrows, result unowned — and only tighten, so
// the iteration is monotone.

import (
	"go/ast"
	"go/token"
	"go/types"
)

// OwnKind classifies an ownership finding.
type OwnKind uint8

const (
	// OwnLeak: some path reaches a function exit with the value live.
	OwnLeak OwnKind = iota
	// OwnDiscard: an acquisition's result is dropped on the floor.
	OwnDiscard
	// OwnDoubleRelease: a path releases the same value twice.
	OwnDoubleRelease
	// OwnUseAfterRelease: the value is read or written after release
	// (exact mode only).
	OwnUseAfterRelease
	// OwnReassign: the variable is overwritten while still live,
	// losing the only reference.
	OwnReassign
)

// OwnershipFinding is one violation, positionally anchored for the
// analyzer to format.
type OwnershipFinding struct {
	Kind OwnKind
	// Pos anchors the report: the leaking acquisition, the discarding
	// statement, the second release, the offending use.
	Pos token.Pos
	// AcqPos is the acquisition site (equal to Pos for leaks).
	AcqPos token.Pos
	// RelPos is the prior release site for double-release and
	// use-after-release findings.
	RelPos token.Pos
	// Desc describes the resource ("pooled wire.Buf", "net.Conn from
	// net.Dial").
	Desc string
	// Name is the variable holding the value ("" for discards).
	Name string
	// Via is the branch condition of the leaking path ("" when the
	// leak is unconditional); "panic exit" marks a terminal-call path.
	Via string
}

// OwnershipConfig adapts the engine to one resource discipline.
type OwnershipConfig struct {
	// Acquire reports whether call hands out an owned value (tracked
	// when bound to a plain identifier; its first result for
	// multi-result acquisitions) and describes the resource.
	Acquire func(call *ast.CallExpr) (desc string, ok bool)
	// Release reports whether call releases a value and returns the
	// released expression (the argument for PutBuf-style releases, the
	// receiver for Close-style ones).
	Release func(call *ast.CallExpr) (released ast.Expr, ok bool)
	// Tracks reports whether a value of type t can carry the
	// obligation at all. Only formals of tracked types are seeded into
	// the analysis — without the filter every string parameter of a
	// wrap-and-return helper would pick up a bogus consumed-argument
	// summary.
	Tracks func(t types.Type) bool
	// Exact additionally reports double releases and uses after
	// release (pool discipline); leave false for idempotent releases
	// like Close.
	Exact bool
}

// ownBits is the per-path possibility set for one tracked value.
type ownBits uint8

const (
	ownLive ownBits = 1 << iota
	ownReleased
	ownEscaped
)

// vstate is one tracked variable's lattice element.
type vstate struct {
	bits ownBits
	acq  token.Pos
	desc string
	// rel is the latest release site (for double-release reports).
	rel token.Pos
	// deferred marks a release armed by defer on every path here
	// (must-view: and-merged at joins).
	deferred bool
	deferPos token.Pos
	// via is the first branch condition taken while live, naming the
	// path in leak reports.
	via string
	// param marks values seeded from formals: analyzed for release
	// discipline (summaries, use-after) but never reported as leaked —
	// the caller owns them.
	param bool
	// retEsc marks an escape through a return statement: for the
	// "takes" summary a parameter handed back to the caller is
	// borrowed, not consumed, unlike one stored into a struct, channel,
	// or goroutine.
	retEsc bool
	// errVar is the error variable bound alongside the value
	// (`v, err := f()`): on a branch proving err non-nil the value is
	// nil by convention and the obligation vanishes.
	errVar *types.Var
}

// ownState maps each tracked variable to its lattice element.
type ownState map[*types.Var]vstate

func cloneOwn(st ownState) ownState {
	out := make(ownState, len(st))
	for v, s := range st {
		out[v] = s
	}
	return out
}

// ownEngine is the per-package analysis state.
type ownEngine struct {
	pass *Pass
	cfg  *OwnershipConfig
	cg   *CallGraph
	// takes maps an in-package function to its per-formal disposition,
	// receiver first for methods: true means the callee releases or
	// stores that argument on every path.
	takes map[*types.Func][]bool
	// returnsOwned describes the resource a constructor's first result
	// carries ("" = not a constructor).
	returnsOwned map[*types.Func]string
}

// ownUnit is one analyzed function body: a declaration or a function
// literal (literals are separate units; a captured variable escapes
// in the enclosing unit and is untracked in the inner one).
type ownUnit struct {
	eng  *ownEngine
	cfg  *CFG
	fn   *types.Func // nil for literals
	body *ast.BlockStmt
	// formals are the parameter variables, receiver first.
	formals []*types.Var
	// resultVars are named result variables (empty when unnamed).
	resultVars []*types.Var

	// Per-walk return-ownership accumulators.
	recording   bool
	retAllOwned bool
	retOwnedN   int
	retDesc     string

	// consumesFormal memoization (0 unset, 1 no, 2 yes).
	consumes uint8
	// relevance memoization: 0 unset, 1 no static relevance, 2 the
	// body itself acquires or releases. When 1, relevance can still
	// arrive dynamically through a callee's summary; callees holds the
	// in-scope called functions for that check.
	relevance uint8
	callees   []*types.Func
}

// consumesFormal reports whether the unit could consume a parameter
// without any acquire/release call in sight: it has formals and its
// body contains a shape that moves ownership (a store into an
// aggregate, a channel send, a goroutine, a composite literal, a
// capturing literal). Such units still need disposition summaries.
func (u *ownUnit) consumesFormal() bool {
	if u.consumes != 0 {
		return u.consumes == 2
	}
	u.consumes = 1
	if u.fn == nil || len(u.formals) == 0 {
		return false
	}
	// A unit with no tracked formal cannot consume anything a caller
	// cares about: its disposition row would be all-false noise.
	if u.eng.cfg.Tracks != nil {
		tracked := false
		for _, p := range u.formals {
			if u.eng.cfg.Tracks(p.Type()) {
				tracked = true
				break
			}
		}
		if !tracked {
			return false
		}
	}
	found := false
	ast.Inspect(u.body, func(n ast.Node) bool {
		if found {
			return false
		}
		switch s := n.(type) {
		case *ast.SendStmt, *ast.GoStmt, *ast.CompositeLit, *ast.FuncLit:
			found = true
		case *ast.AssignStmt:
			for _, lhs := range s.Lhs {
				if _, plain := ast.Unparen(lhs).(*ast.Ident); !plain {
					found = true
				}
			}
		}
		return !found
	})
	if found {
		u.consumes = 2
	}
	return found
}

type emitFn func(OwnershipFinding)

// RunOwnership analyzes every function in the package under cfg and
// returns the findings in position order.
func RunOwnership(pass *Pass, cfg *OwnershipConfig) []OwnershipFinding {
	eng := &ownEngine{
		pass:         pass,
		cfg:          cfg,
		cg:           pass.CallGraph(),
		takes:        make(map[*types.Func][]bool),
		returnsOwned: make(map[*types.Func]string),
	}
	units := eng.collectUnits()
	// Summary fixpoint: dispositions and constructor results only
	// tighten, so a handful of rounds covers any realistic call depth.
	// The summary pass also covers pure consumers — a constructor that
	// only stores its argument has no acquire or release call, but its
	// disposition is exactly what its callers need.
	for iter := 0; iter < 6; iter++ {
		changed := false
		for _, u := range units {
			if !eng.relevant(u) && !u.consumesFormal() {
				continue
			}
			exits := u.walk(u.cfg.Solve(u, false), nil)
			if eng.updateSummaries(u, exits) {
				changed = true
			}
		}
		if !changed {
			break
		}
	}
	var finds []OwnershipFinding
	seen := make(map[OwnershipFinding]bool)
	emit := func(f OwnershipFinding) {
		if !seen[f] {
			seen[f] = true
			finds = append(finds, f)
		}
	}
	for _, u := range units {
		if !eng.relevant(u) {
			continue
		}
		u.walk(u.cfg.Solve(u, false), emit)
	}
	sortFindings(finds)
	return finds
}

func sortFindings(finds []OwnershipFinding) {
	for i := 1; i < len(finds); i++ {
		for j := i; j > 0 && finds[j].Pos < finds[j-1].Pos; j-- {
			finds[j], finds[j-1] = finds[j-1], finds[j]
		}
	}
}

// collectUnits builds one unit per declared function and one per
// function literal.
func (eng *ownEngine) collectUnits() []*ownUnit {
	info := eng.pass.TypesInfo
	var units []*ownUnit
	paramVars := func(ft *ast.FuncType, recv *ast.FieldList) []*types.Var {
		var out []*types.Var
		collect := func(fl *ast.FieldList) {
			if fl == nil {
				return
			}
			for _, f := range fl.List {
				for _, name := range f.Names {
					if v, ok := info.Defs[name].(*types.Var); ok {
						out = append(out, v)
					}
				}
			}
		}
		collect(recv)
		collect(ft.Params)
		return out
	}
	resultVars := func(ft *ast.FuncType) []*types.Var {
		var out []*types.Var
		if ft.Results == nil {
			return nil
		}
		for _, f := range ft.Results.List {
			for _, name := range f.Names {
				if v, ok := info.Defs[name].(*types.Var); ok {
					out = append(out, v)
				}
			}
		}
		return out
	}
	for _, file := range eng.pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			fn, _ := info.Defs[fd.Name].(*types.Func)
			units = append(units, &ownUnit{
				eng:        eng,
				cfg:        eng.pass.CFG(fd),
				fn:         fn,
				body:       fd.Body,
				formals:    paramVars(fd.Type, fd.Recv),
				resultVars: resultVars(fd.Type),
			})
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				lit, ok := n.(*ast.FuncLit)
				if !ok {
					return true
				}
				units = append(units, &ownUnit{
					eng:        eng,
					cfg:        NewBodyCFG(lit.Body, info),
					body:       lit.Body,
					formals:    paramVars(lit.Type, nil),
					resultVars: resultVars(lit.Type),
				})
				return true
			})
		}
	}
	return units
}

// relevant prunes units that cannot produce findings or summaries:
// no acquisition, no release, no call into a function with a known
// disposition. The body scan runs once per unit; only the dynamic
// summary lookups repeat as the fixpoint tightens.
func (eng *ownEngine) relevant(u *ownUnit) bool {
	if u.relevance == 0 {
		u.relevance = 1
		seen := make(map[*types.Func]bool)
		ast.Inspect(u.body, func(n ast.Node) bool {
			if u.relevance == 2 {
				return false
			}
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if _, ok := eng.cfg.Acquire(call); ok {
				u.relevance = 2
				return false
			}
			if _, ok := eng.cfg.Release(call); ok {
				u.relevance = 2
				return false
			}
			if fn, ok := CalleeObject(eng.pass.TypesInfo, call).(*types.Func); ok && !seen[fn] {
				seen[fn] = true
				u.callees = append(u.callees, fn)
			}
			return true
		})
	}
	if u.relevance == 2 {
		return true
	}
	for _, fn := range u.callees {
		if eng.returnsOwned[fn] != "" {
			return true
		}
		for _, t := range eng.takes[fn] {
			if t {
				return true
			}
		}
	}
	return false
}

// updateSummaries recomputes u's disposition and constructor rows
// from its exit states; true reports a change.
func (eng *ownEngine) updateSummaries(u *ownUnit, exits []ownState) bool {
	if u.fn == nil {
		return false
	}
	takes := make([]bool, len(u.formals))
	for i, p := range u.formals {
		if len(exits) == 0 {
			break // no reachable exit: keep borrowing
		}
		t := true
		for _, st := range exits {
			s, ok := st[p]
			// Consumed on this path: released, or escaped into a
			// store/channel/goroutine (escape via return is the caller
			// getting its own value back — still borrowed).
			consumed := ok && (s.bits&ownLive == 0 ||
				s.bits&ownEscaped != 0 && !s.retEsc)
			if !consumed {
				t = false
				break
			}
		}
		takes[i] = t
	}
	owned := ""
	if u.retOwnedN > 0 && u.retAllOwned {
		owned = u.retDesc
	}
	changed := false
	if old := eng.takes[u.fn]; !boolsEqual(old, takes) {
		eng.takes[u.fn] = takes
		changed = true
	}
	if eng.returnsOwned[u.fn] != owned {
		eng.returnsOwned[u.fn] = owned
		changed = true
	}
	return changed
}

func boolsEqual(a, b []bool) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// --- FlowProblem -----------------------------------------------------------

func (u *ownUnit) Boundary() any {
	st := make(ownState, len(u.formals))
	for _, p := range u.formals {
		if u.eng.cfg.Tracks != nil && !u.eng.cfg.Tracks(p.Type()) {
			continue
		}
		st[p] = vstate{bits: ownLive, acq: p.Pos(), desc: "parameter " + p.Name(), param: true}
	}
	return st
}

func (u *ownUnit) Transfer(b *Block, in any) any {
	st := cloneOwn(in.(ownState))
	for _, n := range b.Nodes {
		u.step(st, n, nil)
	}
	return st
}

func (u *ownUnit) Join(a, b any) any {
	sa, sb := a.(ownState), b.(ownState)
	out := cloneOwn(sa)
	for v, s := range sb {
		prev, ok := out[v]
		if !ok {
			out[v] = s
			continue
		}
		m := prev
		m.bits |= s.bits
		if m.acq == token.NoPos || (s.acq != token.NoPos && s.acq < m.acq) {
			m.acq = s.acq
		}
		if m.desc == "" {
			m.desc = s.desc
		}
		if m.rel == token.NoPos {
			m.rel = s.rel
		}
		m.deferred = prev.deferred && s.deferred
		if m.deferPos == token.NoPos {
			m.deferPos = s.deferPos
		}
		if m.via == "" {
			m.via = s.via
		}
		m.param = prev.param || s.param
		m.retEsc = prev.retEsc || s.retEsc
		if m.errVar != s.errVar {
			m.errVar = nil
		}
		out[v] = m
	}
	return out
}

func (u *ownUnit) Equal(a, b any) bool {
	sa, sb := a.(ownState), b.(ownState)
	if len(sa) != len(sb) {
		return false
	}
	for v, s := range sa {
		if sb[v] != s {
			return false
		}
	}
	return true
}

// RefineEdge applies armed defers on edges into Exit — per path,
// before the exit join, which is what lets a deferred release cover a
// panic edge but not excuse a sibling return that armed nothing — and
// stamps branch conditions onto live values for leak-path reporting.
func (u *ownUnit) RefineEdge(e *Edge, state any) any {
	st := state.(ownState)
	if e.To == u.cfg.Exit {
		out := cloneOwn(st)
		for v, s := range out {
			if s.deferred && s.bits&ownLive != 0 {
				s.bits = s.bits&^ownLive | ownReleased
				s.rel = s.deferPos
				out[v] = s
			}
		}
		return out
	}
	if e.Cond != nil && (e.Kind == EdgeTrue || e.Kind == EdgeFalse) {
		var out ownState
		for v, s := range st {
			if s.errVar != nil && edgeProvesErr(u.eng.pass.TypesInfo, e, s.errVar) {
				// The paired error is non-nil on this edge, so by Go
				// convention the value is nil: nothing to release.
				if out == nil {
					out = cloneOwn(st)
				}
				delete(out, v)
				continue
			}
			if s.bits&ownLive != 0 && s.via == "" {
				if s.errVar != nil {
					if _, isErrTest := errTestProveKind(u.eng.pass.TypesInfo, e.Cond, s.errVar); isErrTest {
						// The surviving side of the err-nil check is not
						// a discriminating branch: every non-error path
						// goes through it, so naming it in a leak
						// message would hide the real fork.
						continue
					}
				}
				if out == nil {
					out = cloneOwn(st)
				}
				cond := types.ExprString(e.Cond)
				if e.Kind == EdgeFalse {
					cond = "!(" + cond + ")"
				}
				s.via = cond
				out[v] = s
			}
		}
		if out != nil {
			return out
		}
	}
	return state
}

// edgeProvesErr reports whether taking e proves errVar is non-nil:
// the true edge of `err != nil` or `errors.Is(err, target)`, or the
// false edge of `err == nil`.
func edgeProvesErr(info *types.Info, e *Edge, errVar *types.Var) bool {
	k, ok := errTestProveKind(info, e.Cond, errVar)
	return ok && e.Kind == k
}

// errTestProveKind recognizes a branch condition as a nil-test of
// errVar and returns the edge kind on which the error is proven
// non-nil: the true edge of `err != nil` or `errors.Is(err, target)`,
// the false edge of `err == nil`.
func errTestProveKind(info *types.Info, condExpr ast.Expr, errVar *types.Var) (EdgeKind, bool) {
	isErr := func(x ast.Expr) bool {
		id, ok := ast.Unparen(x).(*ast.Ident)
		return ok && info.Uses[id] == errVar
	}
	switch cond := ast.Unparen(condExpr).(type) {
	case *ast.BinaryExpr:
		var other ast.Expr
		switch {
		case isErr(cond.X):
			other = cond.Y
		case isErr(cond.Y):
			other = cond.X
		default:
			return 0, false
		}
		id, ok := ast.Unparen(other).(*ast.Ident)
		if !ok {
			return 0, false
		}
		if _, isNil := info.Uses[id].(*types.Nil); !isNil {
			return 0, false
		}
		switch cond.Op {
		case token.NEQ:
			return EdgeTrue, true
		case token.EQL:
			return EdgeFalse, true
		}
		return 0, false
	case *ast.CallExpr:
		// errors.Is(err, target) true: err wraps a non-nil target.
		if len(cond.Args) != 2 || !isErr(cond.Args[0]) {
			return 0, false
		}
		fn, ok := CalleeObject(info, cond).(*types.Func)
		if ok && fn.Name() == "Is" && fn.Pkg() != nil && fn.Pkg().Path() == "errors" {
			return EdgeTrue, true
		}
	}
	return 0, false
}

// walk re-runs the transfer deterministically over the solved
// in-states (blocks in index order), emitting findings when emit is
// non-nil, and returns the per-exit-edge states for summaries.
func (u *ownUnit) walk(in map[*Block]any, emit emitFn) []ownState {
	u.recording = true
	u.retAllOwned = true
	u.retOwnedN = 0
	u.retDesc = ""
	var exits []ownState
	for _, b := range u.cfg.Blocks {
		s0, ok := in[b]
		if !ok {
			continue
		}
		st := cloneOwn(s0.(ownState))
		for _, n := range b.Nodes {
			u.step(st, n, emit)
		}
		for _, e := range b.Succs {
			if e.To != u.cfg.Exit {
				continue
			}
			post := u.RefineEdge(e, st).(ownState)
			exits = append(exits, post)
			if emit != nil {
				u.checkExit(st, post, e, emit)
			}
		}
	}
	u.recording = false
	return exits
}

// checkExit reports leaks (post-defer state) and defer-after-release
// doubles (pre-defer state) on one exit edge.
func (u *ownUnit) checkExit(pre, post ownState, e *Edge, emit emitFn) {
	for v, s := range post {
		if s.param || s.bits&ownEscaped != 0 {
			continue
		}
		if s.bits&ownLive != 0 {
			via := s.via
			if via == "" && e.Kind == EdgePanic {
				via = "panic exit"
			}
			emit(OwnershipFinding{Kind: OwnLeak, Pos: s.acq, AcqPos: s.acq, Desc: s.desc, Name: v.Name(), Via: via})
		}
	}
	if !u.eng.cfg.Exact {
		return
	}
	for v, s := range pre {
		// A deferred release runs after this path already released
		// explicitly: the defer is the second Put.
		if s.deferred && s.bits == ownReleased {
			emit(OwnershipFinding{Kind: OwnDoubleRelease, Pos: s.deferPos, AcqPos: s.acq, RelPos: s.rel, Desc: s.desc, Name: v.Name()})
		}
	}
}

// --- Transfer steps --------------------------------------------------------

// trackedVar resolves e to a tracked variable's key, or nil.
func (u *ownUnit) trackedVar(st ownState, e ast.Expr) *types.Var {
	id, ok := ast.Unparen(e).(*ast.Ident)
	if !ok {
		return nil
	}
	v, ok := u.eng.pass.TypesInfo.Uses[id].(*types.Var)
	if !ok {
		return nil
	}
	if _, tracked := st[v]; !tracked {
		return nil
	}
	return v
}

// isAcquire reports whether call produces an owned value, via the
// configured seeds or a fixpointed constructor summary.
func (u *ownUnit) isAcquire(call *ast.CallExpr) (string, bool) {
	if desc, ok := u.eng.cfg.Acquire(call); ok {
		return desc, true
	}
	if fn, ok := CalleeObject(u.eng.pass.TypesInfo, call).(*types.Func); ok {
		if desc := u.eng.returnsOwned[fn]; desc != "" {
			return desc, true
		}
	}
	return "", false
}

// releasedVars lists the tracked variables call releases: the
// configured release form plus arguments consumed by a callee whose
// disposition says it takes them.
func (u *ownUnit) releasedVars(st ownState, call *ast.CallExpr) []*types.Var {
	var out []*types.Var
	if rel, ok := u.eng.cfg.Release(call); ok {
		if v := u.trackedVar(st, rel); v != nil {
			out = append(out, v)
		}
	}
	if fn, ok := CalleeObject(u.eng.pass.TypesInfo, call).(*types.Func); ok {
		if takes := u.eng.takes[fn]; takes != nil {
			for i, arg := range u.formalArgs(call, fn) {
				if i < len(takes) && takes[i] && arg != nil {
					if v := u.trackedVar(st, arg); v != nil {
						out = append(out, v)
					}
				}
			}
		}
	}
	return out
}

// formalArgs aligns call arguments to fn's formals, receiver first
// for methods (matching the disposition indexing).
func (u *ownUnit) formalArgs(call *ast.CallExpr, fn *types.Func) []ast.Expr {
	var out []ast.Expr
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
		if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
			out = append(out, sel.X)
		} else {
			out = append(out, nil)
		}
	}
	return append(out, call.Args...)
}

// releaseArgIdents collects the identifiers that appear as released
// operands anywhere in n, excluded from the use-after scan (they
// produce double-release findings instead).
func (u *ownUnit) releaseArgIdents(st ownState, n ast.Node) map[*ast.Ident]bool {
	out := make(map[*ast.Ident]bool)
	ShallowInspect(n, func(m ast.Node) bool {
		call, ok := m.(*ast.CallExpr)
		if !ok {
			return true
		}
		mark := func(e ast.Expr) {
			if id, ok := ast.Unparen(e).(*ast.Ident); ok {
				out[id] = true
			}
		}
		if rel, ok := u.eng.cfg.Release(call); ok {
			mark(rel)
		}
		if fn, ok := CalleeObject(u.eng.pass.TypesInfo, call).(*types.Func); ok {
			if takes := u.eng.takes[fn]; takes != nil {
				for i, arg := range u.formalArgs(call, fn) {
					if i < len(takes) && takes[i] && arg != nil {
						mark(arg)
					}
				}
			}
		}
		return true
	})
	return out
}

// step applies one block node to st, emitting findings when emit is
// non-nil. It must be deterministic and depend only on (st, n).
func (u *ownUnit) step(st ownState, n ast.Node, emit emitFn) {
	switch s := n.(type) {
	case *ast.DeferStmt:
		u.useScan(st, n, emit, u.releaseArgIdents(st, n), nil)
		u.armDefer(st, s, emit)
		return
	case *ast.GoStmt:
		u.useScan(st, n, emit, nil, nil)
		for _, arg := range s.Call.Args {
			if v := u.trackedVar(st, arg); v != nil {
				u.escape(st, v)
			}
		}
		u.escapeCaptures(st, s.Call)
		u.escapeComposites(st, s.Call)
		return
	case *ast.ReturnStmt:
		rels := u.releaseArgIdents(st, n)
		u.useScan(st, n, emit, rels, nil)
		u.applyCalls(st, n, emit)
		u.escapeCaptures(st, n)
		u.escapeComposites(st, n)
		u.stepReturn(st, s)
		return
	case *ast.SendStmt:
		rels := u.releaseArgIdents(st, n)
		u.useScan(st, n, emit, rels, nil)
		u.applyCalls(st, n, emit)
		u.escapeCaptures(st, n)
		u.escapeComposites(st, n)
		if v := u.trackedVar(st, s.Value); v != nil {
			u.escape(st, v)
		}
		return
	case *ast.AssignStmt:
		u.stepAssign(st, s, emit)
		return
	case *ast.DeclStmt:
		u.stepDecl(st, s, emit)
		return
	case *ast.ExprStmt:
		rels := u.releaseArgIdents(st, n)
		u.useScan(st, n, emit, rels, nil)
		if call, ok := ast.Unparen(s.X).(*ast.CallExpr); ok {
			if desc, ok := u.isAcquire(call); ok && emit != nil {
				emit(OwnershipFinding{Kind: OwnDiscard, Pos: s.Pos(), AcqPos: call.Pos(), Desc: desc})
			}
		}
		u.applyCalls(st, n, emit)
		u.escapeCaptures(st, n)
		u.escapeComposites(st, n)
		return
	}
	// Conditions, switch tags, range headers, inc/dec: plain uses with
	// possible releases and captures nested in call arguments.
	rels := u.releaseArgIdents(st, n)
	u.useScan(st, n, emit, rels, nil)
	u.applyCalls(st, n, emit)
	u.escapeCaptures(st, n)
	u.escapeComposites(st, n)
}

// useScan reports uses of released values (exact mode). excluded
// idents are release operands; defs are assignment targets.
func (u *ownUnit) useScan(st ownState, n ast.Node, emit emitFn, excluded, defs map[*ast.Ident]bool) {
	if !u.eng.cfg.Exact || emit == nil {
		return
	}
	info := u.eng.pass.TypesInfo
	ShallowInspect(n, func(m ast.Node) bool {
		id, ok := m.(*ast.Ident)
		if !ok {
			return true
		}
		if excluded[id] || defs[id] {
			return true
		}
		v, ok := info.Uses[id].(*types.Var)
		if !ok {
			return true
		}
		if s, tracked := st[v]; tracked && s.bits == ownReleased {
			emit(OwnershipFinding{Kind: OwnUseAfterRelease, Pos: id.Pos(), AcqPos: s.acq, RelPos: s.rel, Desc: s.desc, Name: v.Name()})
		}
		return true
	})
}

// applyCalls releases the operands of release calls in n, reporting
// double releases in exact mode.
func (u *ownUnit) applyCalls(st ownState, n ast.Node, emit emitFn) {
	ShallowInspect(n, func(m ast.Node) bool {
		call, ok := m.(*ast.CallExpr)
		if !ok {
			return true
		}
		for _, v := range u.releasedVars(st, call) {
			u.release(st, v, call.Pos(), emit)
		}
		return true
	})
}

func (u *ownUnit) release(st ownState, v *types.Var, pos token.Pos, emit emitFn) {
	s := st[v]
	if s.bits&ownEscaped != 0 {
		return
	}
	if u.eng.cfg.Exact && emit != nil && s.bits == ownReleased {
		emit(OwnershipFinding{Kind: OwnDoubleRelease, Pos: pos, AcqPos: s.acq, RelPos: s.rel, Desc: s.desc, Name: v.Name()})
	}
	s.bits = s.bits&^ownLive | ownReleased
	s.rel = pos
	st[v] = s
}

func (u *ownUnit) escape(st ownState, v *types.Var) {
	s := st[v]
	s.bits |= ownEscaped
	st[v] = s
}

// escapeRet escapes v through a return statement: marked so the
// disposition summary still treats a returned parameter as borrowed.
func (u *ownUnit) escapeRet(st ownState, v *types.Var) {
	s := st[v]
	s.bits |= ownEscaped
	s.retEsc = true
	st[v] = s
}

// escapeComposites escapes tracked variables placed into composite
// literals anywhere in n: the aggregate now holds the reference, and
// wherever the aggregate goes the obligation follows.
func (u *ownUnit) escapeComposites(st ownState, n ast.Node) {
	info := u.eng.pass.TypesInfo
	ShallowInspect(n, func(m ast.Node) bool {
		cl, ok := m.(*ast.CompositeLit)
		if !ok {
			return true
		}
		ast.Inspect(cl, func(b ast.Node) bool {
			if id, ok := b.(*ast.Ident); ok {
				if v, ok := info.Uses[id].(*types.Var); ok {
					if _, tracked := st[v]; tracked {
						u.escape(st, v)
					}
				}
			}
			return true
		})
		return false
	})
}

// escapeCaptures escapes tracked variables referenced inside any
// function literal in n: the literal may outlive this frame, so the
// obligation leaves with it.
func (u *ownUnit) escapeCaptures(st ownState, n ast.Node) {
	info := u.eng.pass.TypesInfo
	ShallowInspect(n, func(m ast.Node) bool {
		lit, ok := m.(*ast.FuncLit)
		if !ok {
			return true
		}
		ast.Inspect(lit.Body, func(b ast.Node) bool {
			if id, ok := b.(*ast.Ident); ok {
				if v, ok := info.Uses[id].(*types.Var); ok {
					if _, tracked := st[v]; tracked {
						u.escape(st, v)
					}
				}
			}
			return true
		})
		return true
	})
}

// armDefer handles `defer release(v)` — directly, through a consuming
// callee, or wrapped in a literal whose body releases v.
func (u *ownUnit) armDefer(st ownState, ds *ast.DeferStmt, emit emitFn) {
	arm := func(v *types.Var) {
		s := st[v]
		if u.eng.cfg.Exact && emit != nil && s.deferred {
			emit(OwnershipFinding{Kind: OwnDoubleRelease, Pos: ds.Pos(), AcqPos: s.acq, RelPos: s.deferPos, Desc: s.desc, Name: v.Name()})
		}
		s.deferred = true
		s.deferPos = ds.Pos()
		st[v] = s
	}
	for _, v := range u.releasedVars(st, ds.Call) {
		arm(v)
	}
	if lit, ok := ast.Unparen(ds.Call.Fun).(*ast.FuncLit); ok {
		// defer func() { PutBuf(b) }(): arm what the body releases;
		// everything else the literal captures escapes as usual.
		armed := make(map[*types.Var]bool)
		ast.Inspect(lit.Body, func(n ast.Node) bool {
			if call, ok := n.(*ast.CallExpr); ok {
				for _, v := range u.releasedVars(st, call) {
					armed[v] = true
					arm(v)
				}
			}
			return true
		})
		info := u.eng.pass.TypesInfo
		ast.Inspect(lit.Body, func(n ast.Node) bool {
			if id, ok := n.(*ast.Ident); ok {
				if v, ok := info.Uses[id].(*types.Var); ok && !armed[v] {
					if _, tracked := st[v]; tracked {
						u.escape(st, v)
					}
				}
			}
			return true
		})
	}
}

// stepReturn escapes returned values to the caller and records
// constructor candidates: the unit returns an owned first result iff
// every return's first result is a live tracked value, a direct
// acquisition, or nil.
func (u *ownUnit) stepReturn(st ownState, ret *ast.ReturnStmt) {
	info := u.eng.pass.TypesInfo
	if len(ret.Results) == 0 {
		// Naked return: named results carry their current values out.
		if u.recording && len(u.resultVars) > 0 {
			u.noteOwnedResult(st, u.resultVars[0])
		}
		for _, rv := range u.resultVars {
			if _, tracked := st[rv]; tracked {
				u.escapeRet(st, rv)
			}
		}
		return
	}
	if u.recording {
		r0 := ast.Unparen(ret.Results[0])
		switch {
		case isNilExpr(info, r0):
			// Vacuously owned: error-path `return nil, err`.
		default:
			if v := u.trackedVar(st, r0); v != nil {
				u.noteOwnedResult(st, v)
			} else if call, ok := r0.(*ast.CallExpr); ok {
				if desc, ok := u.isAcquire(call); ok {
					u.retOwnedN++
					if u.retDesc == "" {
						u.retDesc = desc
					}
				} else {
					u.retAllOwned = false
				}
			} else {
				u.retAllOwned = false
			}
		}
	}
	for _, r := range ret.Results {
		if v := u.trackedVar(st, r); v != nil {
			u.escapeRet(st, v)
		}
	}
}

func (u *ownUnit) noteOwnedResult(st ownState, v *types.Var) {
	s, tracked := st[v]
	if tracked && s.bits&ownLive != 0 && !s.param {
		u.retOwnedN++
		if u.retDesc == "" {
			u.retDesc = s.desc
		}
	} else if !tracked || s.param {
		u.retAllOwned = false
	}
}

func isErrorType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "error" && obj.Pkg() == nil
}

func isNilExpr(info *types.Info, e ast.Expr) bool {
	id, ok := e.(*ast.Ident)
	if !ok {
		return false
	}
	_, isNil := info.Uses[id].(*types.Nil)
	return isNil
}

// stepAssign binds acquisitions, escapes aliases and stores, and
// reports live values overwritten by reassignment.
func (u *ownUnit) stepAssign(st ownState, as *ast.AssignStmt, emit emitFn) {
	info := u.eng.pass.TypesInfo
	defs := make(map[*ast.Ident]bool)
	for _, lhs := range as.Lhs {
		if id, ok := ast.Unparen(lhs).(*ast.Ident); ok {
			defs[id] = true
		}
	}
	rels := u.releaseArgIdents(st, as)
	u.useScan(st, as, emit, rels, defs)
	u.applyCalls(st, as, emit)
	u.escapeCaptures(st, as)
	u.escapeComposites(st, as)

	// Escapes through the assignment itself.
	for i, lhs := range as.Lhs {
		if _, plain := ast.Unparen(lhs).(*ast.Ident); plain {
			continue
		}
		// Store into a field, element, or dereference: ownership moves
		// into the containing object — give up tracking, no finding.
		if i < len(as.Rhs) {
			if v := u.trackedVar(st, as.Rhs[i]); v != nil {
				u.escape(st, v)
			}
		}
	}
	if len(as.Rhs) == len(as.Lhs) {
		for i, rhs := range as.Rhs {
			if v := u.trackedVar(st, rhs); v != nil {
				if _, plain := ast.Unparen(as.Lhs[i]).(*ast.Ident); plain {
					// Alias: two names now hold the obligation; track
					// neither rather than report wrongly.
					u.escape(st, v)
				}
			}
		}
	}

	// Acquisitions: v := acquire() — the single-call form covers
	// `conn, err := net.Dial(...)` (owned value is the first result).
	lhsVar := func(lhs ast.Expr) *types.Var {
		id, ok := ast.Unparen(lhs).(*ast.Ident)
		if !ok || id.Name == "_" {
			return nil
		}
		if d, ok := info.Defs[id].(*types.Var); ok {
			return d
		}
		if use, ok := info.Uses[id].(*types.Var); ok {
			return use
		}
		return nil
	}
	bind := func(lhs ast.Expr, call *ast.CallExpr, desc string, errVar *types.Var) {
		v := lhsVar(lhs)
		if v == nil {
			return
		}
		u.reassignCheck(st, v, as, emit)
		st[v] = vstate{bits: ownLive, acq: call.Pos(), desc: desc, errVar: errVar}
	}
	// errSibling finds the error-typed companion of a multi-result
	// acquisition (`conn, err := net.Dial(...)`).
	errSibling := func() *types.Var {
		for i := len(as.Lhs) - 1; i > 0; i-- {
			if v := lhsVar(as.Lhs[i]); v != nil && isErrorType(v.Type()) {
				return v
			}
		}
		return nil
	}
	if len(as.Rhs) == 1 {
		if call, ok := ast.Unparen(as.Rhs[0]).(*ast.CallExpr); ok {
			if desc, ok := u.isAcquire(call); ok {
				bind(as.Lhs[0], call, desc, errSibling())
			}
		}
	} else {
		for i, rhs := range as.Rhs {
			if call, ok := ast.Unparen(rhs).(*ast.CallExpr); ok {
				if desc, ok := u.isAcquire(call); ok && i < len(as.Lhs) {
					bind(as.Lhs[i], call, desc, nil)
				}
			}
		}
	}

	// Plain reassignment of a tracked variable to a non-acquired
	// value drops the only reference.
	for _, lhs := range as.Lhs {
		id, ok := ast.Unparen(lhs).(*ast.Ident)
		if !ok {
			continue
		}
		v, ok := info.Uses[id].(*types.Var)
		if !ok {
			continue
		}
		if s, tracked := st[v]; tracked && as.Tok != token.DEFINE {
			// Skip targets just bound by an acquisition above.
			if s.acq.IsValid() && s.acq >= as.Pos() && s.acq < as.End() {
				continue
			}
			u.reassignCheck(st, v, as, emit)
			delete(st, v)
		}
	}
}

func (u *ownUnit) reassignCheck(st ownState, v *types.Var, at ast.Node, emit emitFn) {
	s, tracked := st[v]
	if !tracked {
		return
	}
	if emit != nil && !s.param && s.bits&ownLive != 0 && s.bits&ownEscaped == 0 && !s.deferred {
		emit(OwnershipFinding{Kind: OwnReassign, Pos: at.Pos(), AcqPos: s.acq, Desc: s.desc, Name: v.Name()})
	}
	delete(st, v)
}

// stepDecl handles `var v = acquire()`.
func (u *ownUnit) stepDecl(st ownState, ds *ast.DeclStmt, emit emitFn) {
	u.useScan(st, ds, emit, u.releaseArgIdents(st, ds), nil)
	u.applyCalls(st, ds, emit)
	u.escapeCaptures(st, ds)
	u.escapeComposites(st, ds)
	gd, ok := ds.Decl.(*ast.GenDecl)
	if !ok {
		return
	}
	info := u.eng.pass.TypesInfo
	for _, spec := range gd.Specs {
		vs, ok := spec.(*ast.ValueSpec)
		if !ok || len(vs.Values) != 1 {
			continue
		}
		call, ok := ast.Unparen(vs.Values[0]).(*ast.CallExpr)
		if !ok {
			continue
		}
		desc, ok := u.isAcquire(call)
		if !ok || len(vs.Names) == 0 {
			continue
		}
		if v, ok := info.Defs[vs.Names[0]].(*types.Var); ok {
			st[v] = vstate{bits: ownLive, acq: call.Pos(), desc: desc}
		}
	}
}
