// Package lint is the repo's static-analysis framework: a minimal,
// dependency-free re-creation of the golang.org/x/tools/go/analysis
// vocabulary (Analyzer, Pass, Diagnostic) built on the standard
// library's go/ast and go/types. The container this repo builds in
// has no module proxy access, so the x/tools machinery is
// re-implemented rather than imported; the API is kept shape-
// compatible so the analyzers port to the real framework unchanged if
// x/tools ever becomes available.
//
// The four project analyzers live in the subpackages lockcheck,
// ctxcheck, errtaxonomy and atomicwrite; cmd/authlint drives them
// over `go list` patterns and exits non-zero on any diagnostic. See
// DESIGN.md's "Enforced invariants" section for what each one
// guarantees.
//
// # Suppressing a finding
//
// A deliberate exception is annotated at the reported line (or the
// line above it) with
//
//	//lint:ignore <analyzer> <reason>
//
// The reason is mandatory: an ignore directive without one is itself
// reported.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Analyzer describes one invariant checker. The shape mirrors
// x/tools/go/analysis.Analyzer.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and in
	// //lint:ignore directives.
	Name string
	// Doc is the one-paragraph invariant description shown by
	// `authlint -help`.
	Doc string
	// Run inspects one package and reports findings via pass.Report.
	Run func(pass *Pass) error
}

// Pass carries one analyzer's view of one type-checked package.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	// Files are the package's parsed source files (tests excluded).
	Files []*ast.File
	// Pkg is the type-checked package; nil only if type checking
	// failed catastrophically (the driver skips such packages).
	Pkg *types.Package
	// TypesInfo records types, definitions, uses and selections for
	// every expression in Files.
	TypesInfo *types.Info
	// PkgPath is the import path (or a synthesized path for fixture
	// packages loaded from a bare directory).
	PkgPath string

	// pkg is the loaded package this pass runs over; it caches
	// cross-analyzer state (the call graph).
	pkg *Package

	diags *[]Diagnostic
}

// Reportf records a diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	*p.diags = append(*p.diags, Diagnostic{
		Analyzer: p.Analyzer.Name,
		Pos:      p.Fset.Position(pos),
		Message:  fmt.Sprintf(format, args...),
	})
}

// Diagnostic is one finding, resolved to a file position.
type Diagnostic struct {
	Analyzer string
	Pos      token.Position
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s (%s)", d.Pos, d.Message, d.Analyzer)
}

// ignoreDirective is one parsed //lint:ignore comment.
type ignoreDirective struct {
	file     string
	line     int // the line the directive suppresses
	analyzer string
	hasWhy   bool
	position token.Position
}

// parseIgnores extracts //lint:ignore directives from a package. A
// directive on its own line suppresses the next line; a trailing
// directive suppresses its own line.
func parseIgnores(fset *token.FileSet, files []*ast.File) []ignoreDirective {
	var out []ignoreDirective
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimPrefix(c.Text, "//")
				text = strings.TrimSpace(text)
				if !strings.HasPrefix(text, "lint:ignore") {
					continue
				}
				rest := strings.TrimSpace(strings.TrimPrefix(text, "lint:ignore"))
				fields := strings.Fields(rest)
				d := ignoreDirective{position: fset.Position(c.Pos())}
				if len(fields) > 0 {
					d.analyzer = fields[0]
				}
				d.hasWhy = len(fields) > 1
				d.file = d.position.Filename
				d.line = d.position.Line
				// A comment alone on its line suppresses the line
				// below it; a trailing comment suppresses its own.
				if ownLine(fset, f, c) {
					d.line++
				}
				out = append(out, d)
			}
		}
	}
	return out
}

// ownLine reports whether comment c is the first thing on its line.
func ownLine(fset *token.FileSet, f *ast.File, c *ast.Comment) bool {
	cpos := fset.Position(c.Pos())
	first := true
	ast.Inspect(f, func(n ast.Node) bool {
		if n == nil || !first {
			return false
		}
		npos := fset.Position(n.Pos())
		if npos.Filename == cpos.Filename && npos.Line == cpos.Line && n.Pos() < c.Pos() {
			first = false
			return false
		}
		return true
	})
	return first
}

// RunPackage executes the analyzers over one loaded package and
// returns the surviving (non-suppressed) diagnostics in position
// order.
func RunPackage(pkg *Package, analyzers []*Analyzer) ([]Diagnostic, error) {
	var diags []Diagnostic
	for _, a := range analyzers {
		pass := &Pass{
			Analyzer:  a,
			Fset:      pkg.Fset,
			Files:     pkg.Files,
			Pkg:       pkg.Types,
			TypesInfo: pkg.Info,
			PkgPath:   pkg.PkgPath,
			pkg:       pkg,
			diags:     &diags,
		}
		if err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("lint: %s on %s: %w", a.Name, pkg.PkgPath, err)
		}
	}
	ran := make(map[string]bool, len(analyzers))
	for _, a := range analyzers {
		ran[a.Name] = true
	}
	ignores := parseIgnores(pkg.Fset, pkg.Files)
	diags = applyIgnores(diags, ignores, ran)
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i].Pos, diags[j].Pos
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Column != b.Column {
			return a.Column < b.Column
		}
		return diags[i].Analyzer < diags[j].Analyzer
	})
	return diags, nil
}

// applyIgnores drops diagnostics matched by a directive and adds a
// diagnostic for malformed (reason-less) directives and for unused
// ones: an ignore that suppresses nothing is stale armor — either the
// finding it excused is gone and the directive should go with it, or
// it never matched anything and is silently excusing nothing. Unused
// is only decidable for analyzers that actually ran (ran holds their
// names), so a partial run never flags directives it cannot judge.
func applyIgnores(diags []Diagnostic, ignores []ignoreDirective, ran map[string]bool) []Diagnostic {
	used := make([]bool, len(ignores))
	var out []Diagnostic
	for _, d := range diags {
		suppressed := false
		for i, ig := range ignores {
			if ig.hasWhy && ig.analyzer == d.Analyzer && ig.file == d.Pos.Filename && ig.line == d.Pos.Line {
				suppressed = true
				used[i] = true
				break
			}
		}
		if !suppressed {
			out = append(out, d)
		}
	}
	for i, ig := range ignores {
		switch {
		case !ig.hasWhy:
			out = append(out, Diagnostic{
				Analyzer: "lint",
				Pos:      ig.position,
				Message:  "lint:ignore directive needs a reason: //lint:ignore <analyzer> <why this exception is sound>",
			})
		case !used[i] && ran[ig.analyzer]:
			out = append(out, Diagnostic{
				Analyzer: "lint",
				Pos:      ig.position,
				Message:  fmt.Sprintf("unused lint:ignore directive: %s reports nothing on the suppressed line; delete the directive", ig.analyzer),
			})
		}
	}
	return out
}

// Run executes the analyzers over every package and concatenates the
// diagnostics.
func Run(pkgs []*Package, analyzers []*Analyzer) ([]Diagnostic, error) {
	var all []Diagnostic
	for _, pkg := range pkgs {
		diags, err := RunPackage(pkg, analyzers)
		if err != nil {
			return nil, err
		}
		all = append(all, diags...)
	}
	return all, nil
}

// --- Shared AST helpers used by the analyzers ------------------------------

// CalleeObject resolves the object a call expression invokes (function,
// method or builtin), or nil.
func CalleeObject(info *types.Info, call *ast.CallExpr) types.Object {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		return info.Uses[fun]
	case *ast.SelectorExpr:
		if sel := info.Selections[fun]; sel != nil {
			return sel.Obj()
		}
		return info.Uses[fun.Sel]
	}
	return nil
}

// IsPkgFunc reports whether obj is the function pkgPath.name.
func IsPkgFunc(obj types.Object, pkgPath, name string) bool {
	if obj == nil || obj.Pkg() == nil {
		return false
	}
	return obj.Pkg().Path() == pkgPath && obj.Name() == name
}

// RootIdent walks a selector/index/paren chain x.a.b[i].c down to its
// leftmost identifier, or nil for non-chain expressions (calls,
// literals, etc.).
func RootIdent(e ast.Expr) *ast.Ident {
	for {
		switch x := e.(type) {
		case *ast.Ident:
			return x
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.ParenExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.UnaryExpr:
			e = x.X
		default:
			return nil
		}
	}
}

// IsMutex reports whether t is sync.Mutex, sync.RWMutex, or a pointer
// to one.
func IsMutex(t types.Type) bool {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	if obj.Pkg() == nil || obj.Pkg().Path() != "sync" {
		return false
	}
	return obj.Name() == "Mutex" || obj.Name() == "RWMutex"
}

// MutexSel resolves the receiver of a .Lock()/.Unlock() call — e.g.
// rec.mu or s.shards[i].closedMu — to the named type declaring the
// mutex field, the field name, and the chain's root object (for lock
// identity). ok is false for non-field mutexes (locals, unresolvable
// chains).
func MutexSel(info *types.Info, x ast.Expr) (owner, field string, root types.Object, ok bool) {
	sel, isSel := ast.Unparen(x).(*ast.SelectorExpr)
	if !isSel {
		return "", "", nil, false
	}
	selection := info.Selections[sel]
	if selection == nil || selection.Kind() != types.FieldVal || !IsMutex(selection.Obj().Type()) {
		return "", "", nil, false
	}
	recv := selection.Recv()
	if p, isPtr := recv.Underlying().(*types.Pointer); isPtr {
		recv = p.Elem()
	}
	// Walk the selection's index path to the struct actually declaring
	// the field (embedded chains), naming the outermost named type on
	// the way when the direct receiver is unnamed.
	name := namedName(recv)
	idx := selection.Index()
	t := recv
	for depth := 0; depth < len(idx)-1; depth++ {
		st, isStruct := t.Underlying().(*types.Struct)
		if !isStruct {
			break
		}
		t = st.Field(idx[depth]).Type()
		if p, isPtr := t.Underlying().(*types.Pointer); isPtr {
			t = p.Elem()
		}
		if n := namedName(t); n != "" {
			name = n
		}
	}
	if name == "" {
		return "", "", nil, false
	}
	rootID := RootIdent(sel.X)
	if rootID == nil {
		return "", "", nil, false
	}
	root = info.Uses[rootID]
	if root == nil {
		root = info.Defs[rootID]
	}
	if root == nil {
		return "", "", nil, false
	}
	return name, sel.Sel.Name, root, true
}

// namedName returns t's type name, or "" for unnamed types.
func namedName(t types.Type) string {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	if named, ok := t.(*types.Named); ok {
		return named.Obj().Name()
	}
	return ""
}

// FuncScope is one lexical function body: a declaration or a literal.
type FuncScope struct {
	// Name is the declared name ("" for literals).
	Name string
	// Body is the function body.
	Body *ast.BlockStmt
	// Type carries the signature AST.
	Type *ast.FuncType
	// Parent is the enclosing scope for literals (nil for decls).
	Parent *FuncScope
}

// FuncScopes collects every function declaration and literal in the
// files, with literals linked to their enclosing scope.
func FuncScopes(files []*ast.File) []*FuncScope {
	var out []*FuncScope
	for _, f := range files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			root := &FuncScope{Name: fd.Name.Name, Body: fd.Body, Type: fd.Type}
			out = append(out, root)
			out = append(out, nestedLits(root)...)
		}
	}
	return out
}

// nestedLits finds function literals inside scope, attaching parents.
func nestedLits(scope *FuncScope) []*FuncScope {
	var out []*FuncScope
	var walk func(n ast.Node, parent *FuncScope)
	walk = func(n ast.Node, parent *FuncScope) {
		ast.Inspect(n, func(m ast.Node) bool {
			lit, ok := m.(*ast.FuncLit)
			if !ok || m == n {
				return true
			}
			child := &FuncScope{Body: lit.Body, Type: lit.Type, Parent: parent}
			out = append(out, child)
			walk(lit.Body, child)
			return false // children handled by the recursive walk
		})
	}
	walk(scope.Body, scope)
	return out
}

// InspectShallow walks the body of one scope without descending into
// nested function literals (each literal is its own scope).
func (s *FuncScope) InspectShallow(fn func(n ast.Node) bool) {
	ast.Inspect(s.Body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		if n == nil {
			return true
		}
		return fn(n)
	})
}
