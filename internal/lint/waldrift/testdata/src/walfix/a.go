// Package wal (fixture) exercises waldrift inside the schema-owning
// package: switch exhaustiveness over the local Type and a record
// table that matches the constants exactly (silent).
package wal

import "fmt"

// Type discriminates fixture records.
type Type uint8

const (
	TypeAlpha Type = 1
	TypeBeta  Type = 2
	TypeGamma Type = 3
)

// String covers every constant; silent.
func (t Type) String() string {
	switch t {
	case TypeAlpha:
		return "alpha"
	case TypeBeta:
		return "beta"
	case TypeGamma:
		return "gamma"
	}
	return fmt.Sprintf("wal.Type(%d)", uint8(t))
}

// Encode forgot the newest record type; the default arm is no excuse.
func Encode(t Type) byte {
	switch t { // want "switch on wal.Type misses TypeGamma"
	case TypeAlpha:
		return 1
	case TypeBeta:
		return 2
	default:
		return 0
	}
}

// Decode forgot two.
func Decode(b byte) error {
	switch Type(b) { // want "switch on wal.Type misses TypeBeta, TypeGamma"
	case TypeAlpha:
		return nil
	}
	return fmt.Errorf("unknown")
}

// Unrelated switches are not schema switches; silent.
func Classify(n int) string {
	switch n {
	case 1:
		return "one"
	}
	return "many"
}

// The table below matches the constants exactly; silent.
//
//lint:recordtable table.md
var _ = TypeAlpha
