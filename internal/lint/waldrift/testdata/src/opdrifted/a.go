// Package proto (fixture) carries generalized recordtable directives
// that must each produce one diagnostic: a section fragment naming a
// heading the markdown does not have, a scoped table whose rows have
// drifted from the camel-cased constants, and an option referencing a
// type the package does not declare. Asserted programmatically in
// TestOpcodeTableDrift (a want comment cannot share the directive's
// line).
package proto

// Opcode discriminates fixture frames.
type Opcode uint8

//lint:recordtable proto.md#no-such-section type=Opcode prefix=Op
const (
	OpAlpha          Opcode = 1
	OpRemapChallenge Opcode = 2
)

//lint:recordtable proto.md#opcode-table type=Opcode prefix=Op
var _ = OpAlpha

//lint:recordtable proto.md type=Missing
var _ = OpRemapChallenge
