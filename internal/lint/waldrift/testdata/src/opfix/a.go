// Package proto (fixture) exercises the generalized recordtable
// directive outside the wal package: an explicit discriminator type,
// a non-Type constant prefix, CamelCase→snake_case name mapping, and
// a #section fragment that scopes the scan to one markdown section.
// The decoy table in the other section drifts on purpose; the scoped
// table matches, so the fixture is silent.
package proto

// Opcode discriminates fixture frames.
type Opcode uint8

//lint:recordtable proto.md#opcode-table type=Opcode prefix=Op
const (
	OpAlpha          Opcode = 1
	OpRemapChallenge Opcode = 2
	OpError          Opcode = 3
)
