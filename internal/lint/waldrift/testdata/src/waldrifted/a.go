// Package wal (fixture) carries a recordtable directive whose table
// has drifted in all three ways: a missing row, a stale value, and a
// row for a deleted record type. The expected diagnostic is asserted
// programmatically (a want comment cannot share the directive's
// line), see TestRecordTableDrift.
package wal

// Type discriminates fixture records.
type Type uint8

const (
	TypeAlpha Type = 1
	TypeBeta  Type = 2
	TypeGamma Type = 3
)

//lint:recordtable stale.md
var _ = TypeAlpha
