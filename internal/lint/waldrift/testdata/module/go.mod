module waldriftfix

go 1.22
