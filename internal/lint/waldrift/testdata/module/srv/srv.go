// Package srv (module fixture) is the replay target: a Server with
// appliers for alpha and beta, but nobody wrote ReplayGamma when the
// gamma record type was added.
package srv

// Server replays journal records.
type Server struct{ n int }

// ReplayAlpha applies an alpha record.
func (s *Server) ReplayAlpha(id string) error { s.n++; return nil }

// ReplayBeta applies a beta record.
func (s *Server) ReplayBeta(id string) error { s.n++; return nil }
