// Package wal (module fixture) owns the record schema.
package wal

// Type discriminates fixture records.
type Type uint8

const (
	TypeAlpha Type = 1
	TypeBeta  Type = 2
	TypeGamma Type = 3
)

// Valid covers every constant; the schema package itself is clean.
func Valid(t Type) bool {
	switch t {
	case TypeAlpha, TypeBeta, TypeGamma:
		return true
	}
	return false
}
