// Package consumer (module fixture) dispatches imported wal.Type
// records onto srv.Server — the durable-open replay path. The
// dispatch switch lists every record type (exhaustive), but the
// gamma applier is missing, so recovery would drop gamma records.
package consumer

import (
	"fmt"

	"waldriftfix/srv"
	"waldriftfix/wal"
)

// Apply dispatches one record. All three cases are present; the
// waldrift applier check still fires here because srv.Server has no
// ReplayGamma.
func Apply(s *srv.Server, t wal.Type, id string) error {
	switch t {
	case wal.TypeAlpha:
		return s.ReplayAlpha(id)
	case wal.TypeBeta:
		return s.ReplayBeta(id)
	case wal.TypeGamma:
		return fmt.Errorf("unhandled")
	}
	return fmt.Errorf("unknown record type %d", t)
}

// Partial forgot the beta and gamma cases: exhaustiveness drift on an
// imported discriminator.
func Partial(t wal.Type) bool {
	switch t {
	case wal.TypeAlpha:
		return true
	}
	return false
}
