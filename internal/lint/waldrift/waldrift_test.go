package waldrift_test

import (
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/lint"
	"repro/internal/lint/linttest"
	"repro/internal/lint/waldrift"
)

func TestWaldrift(t *testing.T) {
	linttest.Run(t, waldrift.Analyzer, "testdata/src/walfix")
}

// TestRecordTableDrift asserts the combined drift diagnostic
// programmatically: the report anchors on the directive comment, and
// a want comment cannot share a //-comment's line.
func TestRecordTableDrift(t *testing.T) {
	pkg, err := lint.LoadDir("testdata/src/waldrifted")
	if err != nil {
		t.Fatalf("load fixture: %v", err)
	}
	diags, err := lint.RunPackage(pkg, []*lint.Analyzer{waldrift.Analyzer})
	if err != nil {
		t.Fatalf("run waldrift: %v", err)
	}
	if len(diags) != 1 {
		t.Fatalf("got %d diagnostics, want 1: %v", len(diags), diags)
	}
	d := diags[0]
	if filepath.Base(d.Pos.Filename) != "a.go" {
		t.Errorf("diagnostic anchored at %s, want a.go", d.Pos.Filename)
	}
	for _, frag := range []string{
		"record table stale.md drifts from the wal.Type schema",
		"no row for gamma (TypeGamma = 3)",
		"beta listed as 9 but TypeBeta encodes as 2",
		"unknown record name delta (no Type constant)",
	} {
		if !strings.Contains(d.Message, frag) {
			t.Errorf("diagnostic %q missing fragment %q", d.Message, frag)
		}
	}
}

// TestOpcodeTable exercises the generalized directive on the silent
// fixture: explicit type= and prefix= options, snake_case name
// mapping, and a #section fragment that must skip the decoy table in
// the neighbouring section.
func TestOpcodeTable(t *testing.T) {
	linttest.Run(t, waldrift.Analyzer, "testdata/src/opfix")
}

// TestOpcodeTableDrift asserts the generalized failure modes: a
// missing section, a scoped table whose rows drifted from the
// camel-cased constants, and a directive naming an undeclared type.
func TestOpcodeTableDrift(t *testing.T) {
	pkg, err := lint.LoadDir("testdata/src/opdrifted")
	if err != nil {
		t.Fatalf("load fixture: %v", err)
	}
	diags, err := lint.RunPackage(pkg, []*lint.Analyzer{waldrift.Analyzer})
	if err != nil {
		t.Fatalf("run waldrift: %v", err)
	}
	if len(diags) != 3 {
		t.Fatalf("got %d diagnostics, want 3: %v", len(diags), diags)
	}
	for _, want := range []string{
		"recordtable target proto.md has no section #no-such-section",
		"record table proto.md#opcode-table drifts from the proto.Opcode schema: no row for remap_challenge (OpRemapChallenge = 2); unknown record name remapchallenge (no Opcode constant)",
		"package proto declares no type Missing",
	} {
		found := false
		for _, d := range diags {
			if strings.Contains(d.Message, want) {
				found = true
			}
		}
		if !found {
			t.Errorf("no diagnostic matching %q in %v", want, diags)
		}
	}
}

// TestImportedSchema drives the module fixture through the real
// loader: the discriminator and the Server live in different
// packages, so both the imported-switch exhaustiveness check and the
// applier cross-check must resolve through package imports.
func TestImportedSchema(t *testing.T) {
	pkgs, err := lint.Load("testdata/module", "./...")
	if err != nil {
		t.Fatalf("load module fixture: %v", err)
	}
	var diags []lint.Diagnostic
	for _, pkg := range pkgs {
		for _, terr := range pkg.TypeErrors {
			t.Errorf("fixture does not type-check: %v", terr)
		}
		ds, err := lint.RunPackage(pkg, []*lint.Analyzer{waldrift.Analyzer})
		if err != nil {
			t.Fatalf("run waldrift on %s: %v", pkg.PkgPath, err)
		}
		diags = append(diags, ds...)
	}
	if len(diags) != 2 {
		t.Fatalf("got %d diagnostics, want 2: %v", len(diags), diags)
	}
	for _, want := range []string{
		"record type TypeGamma has no applier: expected method ReplayGamma on srv.Server",
		"switch on wal.Type misses TypeBeta, TypeGamma",
	} {
		found := false
		for _, d := range diags {
			if strings.Contains(d.Message, want) && filepath.Base(d.Pos.Filename) == "consumer.go" {
				found = true
			}
		}
		if !found {
			t.Errorf("no consumer.go diagnostic matching %q in %v", want, diags)
		}
	}
}
