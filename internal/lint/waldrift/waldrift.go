// Package waldrift cross-checks every consumer of the WAL record
// schema against the one source of truth: the `Type` constants in the
// package named "wal". A record type added to the log without
// updating every consumer is silent data loss — the encoder writes
// frames the decoder rejects, or recovery drops mutations it has no
// applier for, and the no-reuse registry forgets burned pairs.
//
// Three checks:
//
//   - Switch exhaustiveness: every switch on wal.Type (local or
//     imported, test files excluded) must list every Type constant. A
//     default arm is not an excuse — the encode/decode switches and
//     the replay dispatcher each need an explicit case per record
//     type, because "handled by default" is exactly how drift hides.
//
//   - Applier coverage: a package that dispatches on an imported
//     wal.Type and imports a package whose Server has Replay*
//     methods (the auth layer) must have an applier per record type:
//     constant TypeX requires method ReplayX. Reported once per
//     package, at the first dispatch switch.
//
//   - Record table: any package may carry
//     `//lint:recordtable <relpath>[#<section>] [type=TypeName]
//     [prefix=Prefix]` pointing at a markdown table of
//     `| name | value |` rows. The table must list exactly the
//     declared Prefix* constants of the named local discriminator
//     type — names mapped CamelCase→snake_case (as the String()
//     methods spell them), values as encoded on the wire or disk.
//     A `#section` fragment restricts the scan to one markdown
//     section (heading slugified GitHub-style: lowercased, spaces to
//     dashes); type defaults to Type and prefix defaults to the type
//     name, so the wal package's bare directive keeps its meaning.
//     The wire package pins its v2 opcode table the same way.
package waldrift

import (
	"errors"
	"fmt"
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"path/filepath"
	"sort"
	"strings"

	"repro/internal/lint"
)

// Analyzer is the waldrift entry point.
var Analyzer = &lint.Analyzer{
	Name: "waldrift",
	Doc:  "WAL record consumers must track the wal.Type schema: exhaustive switches, a Replay applier per record type, and an accurate docs record table",
	Run:  run,
}

// directivePrefix introduces a record-table cross-check. The grammar
// lives in the lint framework (lint.ParseRecordTableDirective) so
// codecsym's payload pinning reads the same pins.
const directivePrefix = lint.RecordTableDirectivePrefix

func run(pass *lint.Pass) error {
	checkSwitches(pass)
	checkRecordTables(pass)
	return nil
}

// walType reports whether t is the schema discriminator: a named
// integer type called Type declared in a package named wal.
func walType(t types.Type) (*types.Named, bool) {
	named, ok := t.(*types.Named)
	if !ok {
		return nil, false
	}
	obj := named.Obj()
	if obj.Name() != "Type" || obj.Pkg() == nil || obj.Pkg().Name() != "wal" {
		return nil, false
	}
	basic, ok := named.Underlying().(*types.Basic)
	if !ok || basic.Info()&types.IsInteger == 0 {
		return nil, false
	}
	return named, true
}

// schemaConstants returns the prefix-named constants of the
// discriminator, ordered by encoded value.
func schemaConstants(named *types.Named, prefix string) []*types.Const {
	scope := named.Obj().Pkg().Scope()
	var out []*types.Const
	for _, name := range scope.Names() {
		c, ok := scope.Lookup(name).(*types.Const)
		if !ok || !strings.HasPrefix(name, prefix) || len(name) == len(prefix) {
			continue
		}
		if !types.Identical(c.Type(), named) {
			continue
		}
		out = append(out, c)
	}
	sort.Slice(out, func(i, j int) bool {
		vi, _ := constant.Int64Val(out[i].Val())
		vj, _ := constant.Int64Val(out[j].Val())
		return vi < vj
	})
	return out
}

// checkSwitches enforces exhaustiveness on every switch over wal.Type
// and, for packages dispatching on an imported discriminator, applier
// coverage on the imported Server.
func checkSwitches(pass *lint.Pass) {
	info := pass.TypesInfo
	appliersChecked := false
	for _, f := range pass.Files {
		if testFile(pass, f) {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			sw, ok := n.(*ast.SwitchStmt)
			if !ok || sw.Tag == nil {
				return true
			}
			tv, ok := info.Types[sw.Tag]
			if !ok {
				return true
			}
			named, ok := walType(tv.Type)
			if !ok {
				return true
			}
			consts := schemaConstants(named, "Type")
			if len(consts) == 0 {
				return true
			}
			covered := make(map[string]bool)
			for _, clause := range sw.Body.List {
				cc, isCC := clause.(*ast.CaseClause)
				if !isCC {
					continue
				}
				for _, e := range cc.List {
					if obj := exprObject(info, e); obj != nil {
						covered[obj.Name()] = true
					}
				}
			}
			var missing []string
			for _, c := range consts {
				if !covered[c.Name()] {
					missing = append(missing, c.Name())
				}
			}
			if len(missing) > 0 {
				pass.Reportf(sw.Pos(),
					"switch on wal.Type misses %s: every record type needs an explicit case (schema drift)",
					strings.Join(missing, ", "))
			}
			// Applier coverage: only where the discriminator is imported
			// (the dispatch side), once per package.
			if !appliersChecked && named.Obj().Pkg() != pass.Pkg {
				appliersChecked = true
				checkAppliers(pass, sw, consts)
			}
			return true
		})
	}
}

// checkAppliers requires a ReplayX method per TypeX constant on an
// imported Server type that does replay (has at least one Replay*
// method).
func checkAppliers(pass *lint.Pass, sw *ast.SwitchStmt, consts []*types.Const) {
	for _, imp := range pass.Pkg.Imports() {
		obj, ok := imp.Scope().Lookup("Server").(*types.TypeName)
		if !ok {
			continue
		}
		srv := obj.Type()
		if !hasReplayMethod(srv) {
			continue
		}
		for _, c := range consts {
			want := "Replay" + strings.TrimPrefix(c.Name(), "Type")
			m, _, _ := types.LookupFieldOrMethod(types.NewPointer(srv), true, imp, want)
			if _, isFunc := m.(*types.Func); !isFunc {
				pass.Reportf(sw.Pos(),
					"record type %s has no applier: expected method %s on %s.Server (recovery would drop these records)",
					c.Name(), want, imp.Name())
			}
		}
	}
}

// hasReplayMethod reports whether the type declares any Replay*
// method — the marker that it is the replay target.
func hasReplayMethod(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	for i := 0; i < named.NumMethods(); i++ {
		if strings.HasPrefix(named.Method(i).Name(), "Replay") {
			return true
		}
	}
	return false
}

// exprObject resolves a case expression to its constant object.
func exprObject(info *types.Info, e ast.Expr) types.Object {
	switch x := ast.Unparen(e).(type) {
	case *ast.Ident:
		return info.Uses[x]
	case *ast.SelectorExpr:
		return info.Uses[x.Sel]
	}
	return nil
}

// checkRecordTables validates every //lint:recordtable directive in
// the package against the local discriminator constants it names.
func checkRecordTables(pass *lint.Pass) {
	if pass.Pkg == nil {
		return
	}
	for _, f := range pass.Files {
		if testFile(pass, f) {
			continue
		}
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if !strings.HasPrefix(c.Text, directivePrefix) {
					continue
				}
				rest := strings.TrimSpace(strings.TrimPrefix(c.Text, directivePrefix))
				d, err := lint.ParseRecordTableDirective(rest)
				if err != nil {
					pass.Reportf(c.Pos(), "malformed recordtable directive: %v", err)
					continue
				}
				consts, err := directiveConstants(pass, d)
				if err != nil {
					pass.Reportf(c.Pos(), "recordtable directive: %v", err)
					continue
				}
				dir := filepath.Dir(pass.Fset.Position(c.Pos()).Filename)
				checkOneTable(pass, c.Pos(), filepath.Join(dir, d.Rel), d, consts)
			}
		}
	}
}

// directiveConstants resolves the directive's discriminator type in
// the package scope and returns its prefix-named constants.
func directiveConstants(pass *lint.Pass, d lint.RecordTableDirective) ([]*types.Const, error) {
	tn, ok := pass.Pkg.Scope().Lookup(d.TypeName).(*types.TypeName)
	if !ok {
		return nil, fmt.Errorf("package %s declares no type %s", pass.Pkg.Name(), d.TypeName)
	}
	named, ok := tn.Type().(*types.Named)
	if !ok {
		return nil, fmt.Errorf("%s.%s is not a defined type", pass.Pkg.Name(), d.TypeName)
	}
	basic, ok := named.Underlying().(*types.Basic)
	if !ok || basic.Info()&types.IsInteger == 0 {
		return nil, fmt.Errorf("%s.%s is not an integer discriminator", pass.Pkg.Name(), d.TypeName)
	}
	consts := schemaConstants(named, d.Prefix)
	if len(consts) == 0 {
		return nil, fmt.Errorf("%s.%s has no %s* constants to pin", pass.Pkg.Name(), d.TypeName, d.Prefix)
	}
	return consts, nil
}

// checkOneTable diffs one markdown table against the constants and
// reports all drift in a single diagnostic at the directive.
func checkOneTable(pass *lint.Pass, pos token.Pos, path string, d lint.RecordTableDirective, consts []*types.Const) {
	lines, err := lint.MarkdownSection(path, d.Section)
	if err != nil {
		if errors.Is(err, lint.ErrNoSection) {
			pass.Reportf(pos, "recordtable target %s has no section #%s", d.Rel, d.Section)
		} else {
			pass.Reportf(pos, "recordtable target %s is unreadable: %v", d.Rel, err)
		}
		return
	}
	where := d.Rel
	if d.Section != "" {
		where = d.Rel + "#" + d.Section
	}
	rows, rowOrder := lint.TableRows(lines)
	schema := pass.Pkg.Name() + "." + d.TypeName
	var drift []string
	seen := make(map[string]bool)
	for _, c := range consts {
		name := lint.CamelToSnake(strings.TrimPrefix(c.Name(), d.Prefix))
		seen[name] = true
		val, _ := constant.Int64Val(c.Val())
		got, ok := rows[name]
		switch {
		case !ok:
			drift = append(drift, fmt.Sprintf("no row for %s (%s = %d)", name, c.Name(), val))
		case got != val:
			drift = append(drift, fmt.Sprintf("%s listed as %d but %s encodes as %d", name, got, c.Name(), val))
		}
	}
	for _, name := range rowOrder {
		if !seen[name] {
			drift = append(drift, fmt.Sprintf("unknown record name %s (no %s constant)", name, d.TypeName))
		}
	}
	if len(drift) > 0 {
		pass.Reportf(pos, "record table %s drifts from the %s schema: %s",
			where, schema, strings.Join(drift, "; "))
	}
}

func testFile(pass *lint.Pass, n ast.Node) bool {
	return strings.HasSuffix(pass.Fset.Position(n.Pos()).Filename, "_test.go")
}
