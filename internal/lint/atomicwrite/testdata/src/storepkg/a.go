// Fixture for atomicwrite: in-place file clobbering is forbidden
// outside internal/wal/atomic.go.
package storepkg

import "os"

func saveBad(path string, b []byte) error {
	if err := os.WriteFile(path, b, 0o644); err != nil { // want "direct os.WriteFile"
		return err
	}
	f, err := os.Create(path + ".tmp") // want "direct os.Create"
	if err != nil {
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	return os.Rename(path+".tmp", path) // want "direct os.Rename"
}

func appendGood(path string, b []byte) error {
	// The append path owns its file and fsyncs explicitly; OpenFile is
	// not in the forbidden set.
	f, err := os.OpenFile(path, os.O_APPEND|os.O_CREATE|os.O_WRONLY, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Write(b); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
