// Fixture: internal/wal/atomic.go is the blessed implementation site
// for the temp+fsync+rename sequence; nothing here is reported.
package wal

import "os"

func atomicWriteFile(path string, b []byte) error {
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	if _, err := f.Write(b); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	return os.Rename(tmp, path)
}
