package atomicwrite_test

import (
	"testing"

	"repro/internal/lint/atomicwrite"
	"repro/internal/lint/linttest"
)

func TestForbiddenCalls(t *testing.T) {
	linttest.Run(t, atomicwrite.Analyzer, "testdata/src/storepkg")
}

func TestBlessedSiteExempt(t *testing.T) {
	linttest.Run(t, atomicwrite.Analyzer, "testdata/src/wal")
}
