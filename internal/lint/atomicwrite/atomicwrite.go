// Package atomicwrite enforces the durability rule from internal/wal:
// files that survive a crash must be replaced atomically (temp file +
// fsync + rename + directory fsync), never written in place. Direct
// calls to os.Create, os.WriteFile or os.Rename are therefore
// forbidden everywhere except internal/wal/atomic.go — the one place
// the primitive sequence is allowed to live — and _test.go files
// (tests routinely corrupt fixture files on purpose). Everything else
// routes through wal.AtomicWriteFile / authenticache.AtomicWriteFile.
//
// os.OpenFile is deliberately not in the forbidden set: the WAL's
// append path owns its segment files and fsyncs explicitly; the
// classic lost-database bug is truncate-then-crash via os.Create or a
// non-atomic os.Rename shuffle, which is what this analyzer pins.
package atomicwrite

import (
	"go/ast"
	"path/filepath"
	"strings"

	"repro/internal/lint"
)

// Analyzer is the atomicwrite entry point.
var Analyzer = &lint.Analyzer{
	Name: "atomicwrite",
	Doc:  "os.Create/os.WriteFile/os.Rename forbidden outside internal/wal/atomic.go; use the atomic temp+fsync+rename helper",
	Run:  run,
}

// forbidden are the os functions that clobber files in place.
var forbidden = map[string]bool{
	"Create":    true,
	"WriteFile": true,
	"Rename":    true,
}

func run(pass *lint.Pass) error {
	for _, f := range pass.Files {
		name := pass.Fset.Position(f.Pos()).Filename
		if strings.HasSuffix(name, "_test.go") {
			continue
		}
		if filepath.Base(name) == "atomic.go" && pass.Pkg.Name() == "wal" {
			continue // the blessed implementation site
		}
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			obj := lint.CalleeObject(pass.TypesInfo, call)
			if obj == nil || obj.Pkg() == nil || obj.Pkg().Path() != "os" || !forbidden[obj.Name()] {
				return true
			}
			pass.Reportf(call.Pos(),
				"direct os.%s bypasses the atomic temp+fsync+rename path; a crash mid-write can destroy the only copy — use wal.AtomicWriteFile (facade: authenticache.AtomicWriteFile)",
				obj.Name())
			return true
		})
	}
	return nil
}
