package resleak_test

import (
	"testing"

	"repro/internal/lint"
	"repro/internal/lint/linttest"
	"repro/internal/lint/resleak"
)

// TestResleak runs the golden fixture: std acquisitions, the Accept
// shape, and ownership transfer in both directions.
func TestResleak(t *testing.T) {
	linttest.Run(t, resleak.Analyzer, "testdata/src/resfix")
}

// TestEdgePackagesExempt asserts the cmd/examples exemption: the same
// leak shape under a cmd/ path produces nothing.
func TestEdgePackagesExempt(t *testing.T) {
	pkg, err := lint.LoadDir("testdata/src/cmd/leaky")
	if err != nil {
		t.Fatalf("load fixture: %v", err)
	}
	diags, err := lint.RunPackage(pkg, []*lint.Analyzer{resleak.Analyzer})
	if err != nil {
		t.Fatalf("run resleak: %v", err)
	}
	if len(diags) != 0 {
		t.Fatalf("cmd/ package should be exempt, got %v", diags)
	}
}
