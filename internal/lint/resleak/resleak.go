// Package resleak enforces release-on-all-paths for OS-backed
// resources: connections from net.Dial/DialTimeout, listeners from
// net.Listen, conns from a listener's Accept, files from
// os.Open/OpenFile/Create, and tickers/timers from
// time.NewTicker/NewTimer must be Closed (or Stopped) on every path
// out of the function that owns them — error returns included, with a
// deferred Close covering panic exits too.
//
// Ownership transfers interprocedurally: a function that returns the
// resource hands the obligation to its caller (constructor summary),
// and a call that stores its argument into a struct field, channel,
// or goroutine on every path consumes it (disposition summary), so a
// `newConn`-style helper neither hides a leak nor causes a false one.
// Unlike poolsafe, release here is idempotent (Close twice is legal),
// so only leaks and discards are reported.
package resleak

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"repro/internal/lint"
)

// Analyzer is the resleak entry point.
var Analyzer = &lint.Analyzer{
	Name: "resleak",
	Doc:  "conns, listeners, files, tickers and timers (net.Dial, Accept, os.Open, time.NewTicker, ...) must be released on every path, interprocedurally via ownership-transfer summaries",
	Run:  run,
}

// acquireFuncs maps std acquisition functions to a resource
// description.
var acquireFuncs = map[string]string{
	"net.Dial":        "net.Conn from net.Dial",
	"net.DialTimeout": "net.Conn from net.DialTimeout",
	"net.Listen":      "net.Listener from net.Listen",
	"os.Open":         "*os.File from os.Open",
	"os.OpenFile":     "*os.File from os.OpenFile",
	"os.Create":       "*os.File from os.Create",
	"time.NewTicker":  "*time.Ticker from time.NewTicker",
	"time.NewTimer":   "*time.Timer from time.NewTimer",
}

func run(pass *lint.Pass) error {
	if edgePackage(pass.PkgPath) {
		// CLIs and examples run to exit; the OS reclaims their
		// handles. The invariant protects long-lived server code.
		return nil
	}
	cfg := &lint.OwnershipConfig{
		Acquire: func(call *ast.CallExpr) (string, bool) { return acquires(pass, call) },
		Release: func(call *ast.CallExpr) (ast.Expr, bool) { return releases(pass, call) },
		// Close/Stop-able values are the only ones whose flow through
		// parameters matters for summaries.
		Tracks: func(t types.Type) bool { return hasMethod(t, "Close") || hasMethod(t, "Stop") },
	}
	for _, f := range lint.RunOwnership(pass, cfg) {
		if testPos(pass, f.Pos) {
			continue
		}
		switch f.Kind {
		case lint.OwnLeak:
			via := ""
			if f.Via != "" {
				via = " on the path via " + f.Via
			}
			pass.Reportf(f.Pos, "%s %q is not released on every path%s", f.Desc, f.Name, via)
		case lint.OwnDiscard:
			pass.Reportf(f.Pos, "%s is discarded without being released", f.Desc)
		case lint.OwnReassign:
			pass.Reportf(f.Pos, "%q is overwritten while still holding an open %s (acquired at %s)", f.Name, f.Desc, pass.Fset.Position(f.AcqPos))
		}
	}
	return nil
}

// acquires classifies resource-producing calls: the std constructor
// list plus any method named Accept whose first result has a Close
// method (the net.Listener shape, including wrappers).
func acquires(pass *lint.Pass, call *ast.CallExpr) (string, bool) {
	fn, ok := lint.CalleeObject(pass.TypesInfo, call).(*types.Func)
	if !ok || fn.Pkg() == nil {
		return "", false
	}
	if desc, ok := acquireFuncs[fn.Pkg().Name()+"."+fn.Name()]; ok && isStdPkg(fn.Pkg()) {
		return desc, true
	}
	if fn.Name() == "Accept" {
		if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil && sig.Results().Len() > 0 {
			if hasMethod(sig.Results().At(0).Type(), "Close") {
				return "conn from " + fn.FullName(), true
			}
		}
	}
	return "", false
}

// releases recognizes Close/Stop method calls with no arguments; the
// released value is the receiver.
func releases(pass *lint.Pass, call *ast.CallExpr) (ast.Expr, bool) {
	if len(call.Args) != 0 {
		return nil, false
	}
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || (sel.Sel.Name != "Close" && sel.Sel.Name != "Stop") {
		return nil, false
	}
	fn, ok := lint.CalleeObject(pass.TypesInfo, call).(*types.Func)
	if !ok {
		return nil, false
	}
	if sig, ok := fn.Type().(*types.Signature); !ok || sig.Recv() == nil {
		return nil, false
	}
	return sel.X, true
}

// isStdPkg keeps the acquireFuncs match honest: the key uses package
// *names*, so require a stdlib-shaped import path (no dot, no slash
// before the name) to avoid matching a local package named os.
func isStdPkg(pkg *types.Package) bool {
	path := pkg.Path()
	return !strings.Contains(path, ".") && (path == pkg.Name() || !strings.Contains(path, "/"))
}

// hasMethod reports whether t (or *t) has a method named name.
// LookupFieldOrMethod with addressable=true folds in pointer-receiver
// methods without materializing a full method set, which Tracks calls
// far too often for NewMethodSet to be affordable.
func hasMethod(t types.Type, name string) bool {
	obj, _, _ := types.LookupFieldOrMethod(t, true, nil, name)
	_, ok := obj.(*types.Func)
	return ok
}

// edgePackage mirrors ctxcheck's and goroleak's exemption: any path
// segment equal to cmd or examples.
func edgePackage(pkgPath string) bool {
	for _, seg := range strings.Split(pkgPath, "/") {
		if seg == "cmd" || seg == "examples" {
			return true
		}
	}
	return false
}

// testPos: tests open and abandon resources on purpose, and the
// vettool driver feeds test files into the pass.
func testPos(pass *lint.Pass, pos token.Pos) bool {
	return strings.HasSuffix(pass.Fset.Position(pos).Filename, "_test.go")
}
