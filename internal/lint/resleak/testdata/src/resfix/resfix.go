// Package resfix exercises resleak: std acquisitions, the Accept
// rule, and the interprocedural transfer/consume summaries.
package resfix

import (
	"net"
	"os"
	"time"
)

// LeakOnBranch abandons the dialed conn when the handshake declines.
func LeakOnBranch(addr string, slow bool) bool {
	c, err := net.Dial("tcp", addr) // want "net.Conn from net.Dial \"c\" is not released on every path on the path via slow"
	if err != nil {
		return false
	}
	if slow {
		return false
	}
	c.Close()
	return true
}

// DiscardTicker drops the ticker, which leaks its goroutine forever.
func DiscardTicker(d time.Duration) {
	time.NewTicker(d) // want "is discarded without being released"
}

// AcceptLeak loses the accepted conn on the throttle path.
func AcceptLeak(ln net.Listener, throttle bool) {
	c, err := ln.Accept() // want "conn from .net.Listener..Accept \"c\" is not released on every path"
	if err != nil {
		return
	}
	if throttle {
		return
	}
	c.Close()
}

// CloseOK releases on the happy path and owes nothing on the error
// path: the error convention proves f is nil there.
func CloseOK(path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	return nil
}

// open transfers ownership out: the constructor summary moves the
// obligation to the caller.
func open(addr string) (net.Conn, error) {
	c, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	return c, nil
}

// TransferLeak owns open's result and never closes it.
func TransferLeak(addr string) error {
	c, err := open(addr) // want "\"c\" is not released on every path"
	if err != nil {
		return err
	}
	return c.SetDeadline(time.Now())
}

// holder consumes a conn: storing it transfers ownership to whoever
// owns the holder.
type holder struct{ c net.Conn }

func keep(c net.Conn) *holder { return &holder{c: c} }

// StoreOK hands the conn to a holder; the escape is the release.
func StoreOK(addr string) (*holder, error) {
	c, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	return keep(c), nil
}

// StopOK releases a ticker with Stop (the Close of the timer family).
func StopOK(d time.Duration) {
	t := time.NewTicker(d)
	defer t.Stop()
	<-t.C
}
