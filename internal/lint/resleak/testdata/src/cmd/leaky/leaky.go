// Package leaky sits under a cmd/ path: CLIs run to exit and the OS
// reclaims their handles, so resleak must stay silent here.
package leaky

import "os"

// Run leaks deliberately; the edge-package exemption swallows it.
func Run(path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	_ = f
	return nil
}
