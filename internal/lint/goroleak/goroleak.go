// Package goroleak flags `go` statements whose goroutine can block
// forever, leaking the goroutine (and whatever it pins) under load.
// The launched body — a function literal, or a declared function
// chased through the package call graph — is searched for:
//
//   - a channel send with no escape: the channel is unbuffered (or of
//     unknown provenance) and the send is not in a select with a
//     default or ctx.Done() arm. If every receiver is gone, the send
//     parks forever.
//   - a channel receive or range with no escape: the channel is never
//     close()d anywhere in the package and the receive has no
//     select escape. A channel nobody closes keeps the ranging
//     goroutine alive past its producers.
//   - a select none of whose arms can be guaranteed to fire: no
//     default, no ctx.Done() arm, no arm on a package-closed channel
//     or a time.After timer.
//   - a sync.WaitGroup.Done that is not deferred: an early return or
//     panic between the work and the Done parks the Wait side
//     forever.
//
// Escape evidence is collected package-wide by provenance: a struct
// field (TypeName.field) or local that some creation site makes with
// a non-zero buffer is "buffered" (sends cannot park while slack
// remains — the repo's one-shot result channels), unless another
// site makes it unbuffered; a channel that appears in any close()
// call is "closed" (receives and ranges terminate — the WAL writer's
// request queue).
//
// The package also reports time.NewTicker calls whose ticker is
// never Stop()ed in the same function: an unstopped ticker pins its
// goroutine and timer forever.
//
// Program edges own their goroutines' lifecycles interactively, so
// packages under cmd/ and examples/, and _test.go files, are exempt.
package goroleak

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"repro/internal/lint"
)

// Analyzer is the goroleak entry point.
var Analyzer = &lint.Analyzer{
	Name: "goroleak",
	Doc:  "goroutines must not block forever: channel ops need a ctx.Done()/close/buffer escape, WaitGroup.Done must be deferred, tickers must be stopped",
	Run:  run,
}

func run(pass *lint.Pass) error {
	if edgePackage(pass.PkgPath) {
		return nil
	}
	esc := collectEscapes(pass)
	c := &checker{pass: pass, esc: esc, graph: pass.CallGraph()}
	for _, f := range pass.Files {
		if testFile(pass, f) {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			if g, ok := n.(*ast.GoStmt); ok {
				c.checkGo(g)
			}
			return true
		})
	}
	c.checkTickers()
	return nil
}

// edgePackage mirrors ctxcheck's exemption: any path segment equal to
// cmd or examples.
func edgePackage(pkgPath string) bool {
	for _, seg := range strings.Split(pkgPath, "/") {
		if seg == "cmd" || seg == "examples" {
			return true
		}
	}
	return false
}

func testFile(pass *lint.Pass, n ast.Node) bool {
	return strings.HasSuffix(pass.Fset.Position(n.Pos()).Filename, "_test.go")
}

// escapes is the package-wide channel-provenance evidence.
type escapes struct {
	closed     map[string]bool // chan keys that some close() releases
	buffered   map[string]bool // chan keys with a buffered make site
	unbuffered map[string]bool // chan keys with an unbuffered make site
}

// chanKey identifies a channel by provenance: a struct field as
// "TypeName.field" (any instance — creation sites and uses unify on
// the field), a local or parameter by its object identity. Unknown
// shapes key to "".
func chanKey(info *types.Info, x ast.Expr) string {
	x = ast.Unparen(x)
	switch e := x.(type) {
	case *ast.SelectorExpr:
		if sel := info.Selections[e]; sel != nil && sel.Kind() == types.FieldVal {
			recv := sel.Recv()
			if p, ok := recv.Underlying().(*types.Pointer); ok {
				recv = p.Elem()
			}
			if named, ok := recv.(*types.Named); ok {
				return named.Obj().Name() + "." + e.Sel.Name
			}
		}
	case *ast.Ident:
		obj := info.Uses[e]
		if obj == nil {
			obj = info.Defs[e]
		}
		if obj != nil {
			return fmt.Sprintf("%s@%d", obj.Id(), obj.Pos())
		}
	}
	return ""
}

// collectEscapes scans the whole package (tests excluded) for close()
// calls and channel creation sites.
func collectEscapes(pass *lint.Pass) *escapes {
	info := pass.TypesInfo
	esc := &escapes{
		closed:     make(map[string]bool),
		buffered:   make(map[string]bool),
		unbuffered: make(map[string]bool),
	}
	recordMake := func(dst ast.Expr, src ast.Expr, structType types.Type, fieldName string) {
		call, ok := ast.Unparen(src).(*ast.CallExpr)
		if !ok {
			return
		}
		if id, isIdent := ast.Unparen(call.Fun).(*ast.Ident); !isIdent || id.Name != "make" {
			return
		}
		tv, ok := info.Types[call]
		if !ok {
			return
		}
		if _, isChan := tv.Type.Underlying().(*types.Chan); !isChan {
			return
		}
		key := ""
		switch {
		case dst != nil:
			key = chanKey(info, dst)
		case structType != nil:
			t := structType
			if p, isPtr := t.Underlying().(*types.Pointer); isPtr {
				t = p.Elem()
			}
			if named, isNamed := t.(*types.Named); isNamed {
				key = named.Obj().Name() + "." + fieldName
			}
		}
		if key == "" {
			return
		}
		if len(call.Args) >= 2 {
			esc.buffered[key] = true
		} else {
			esc.unbuffered[key] = true
		}
	}
	for _, f := range pass.Files {
		if testFile(pass, f) {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			switch x := n.(type) {
			case *ast.CallExpr:
				if id, ok := ast.Unparen(x.Fun).(*ast.Ident); ok && id.Name == "close" {
					// The builtin close: its operand escapes receivers.
					if b, isBuiltin := info.Uses[id].(*types.Builtin); isBuiltin && b.Name() == "close" && len(x.Args) == 1 {
						if key := chanKey(info, x.Args[0]); key != "" {
							esc.closed[key] = true
						}
					}
				}
			case *ast.AssignStmt:
				if len(x.Lhs) == len(x.Rhs) {
					for i := range x.Lhs {
						recordMake(x.Lhs[i], x.Rhs[i], nil, "")
					}
				}
			case *ast.ValueSpec:
				if len(x.Names) == len(x.Values) {
					for i := range x.Names {
						recordMake(x.Names[i], x.Values[i], nil, "")
					}
				}
			case *ast.CompositeLit:
				tv, ok := info.Types[x]
				if !ok {
					return true
				}
				for _, el := range x.Elts {
					kv, isKV := el.(*ast.KeyValueExpr)
					if !isKV {
						continue
					}
					if key, isIdent := kv.Key.(*ast.Ident); isIdent {
						recordMake(nil, kv.Value, tv.Type, key.Name)
					}
				}
			}
			return true
		})
	}
	return esc
}

// sendEscapes reports whether a send on the channel can never park
// forever by provenance: every visible creation site is buffered.
func (e *escapes) sendEscapes(key string) bool {
	return key != "" && e.buffered[key] && !e.unbuffered[key]
}

// recvEscapes reports whether a receive terminates by provenance:
// the channel is closed somewhere in the package.
func (e *escapes) recvEscapes(key string) bool {
	return key != "" && e.closed[key]
}

// checker walks goroutine bodies.
type checker struct {
	pass  *lint.Pass
	esc   *escapes
	graph *lint.CallGraph
	seen  map[token.Pos]bool
}

// report emits once per position: two go sites chasing into the same
// helper must not double-report its blocking op.
func (c *checker) report(pos token.Pos, format string, args ...any) {
	if c.seen == nil {
		c.seen = make(map[token.Pos]bool)
	}
	if c.seen[pos] {
		return
	}
	c.seen[pos] = true
	c.pass.Reportf(pos, format, args...)
}

// checkGo analyses one go statement's launched body.
func (c *checker) checkGo(g *ast.GoStmt) {
	if lit, ok := ast.Unparen(g.Call.Fun).(*ast.FuncLit); ok {
		c.checkBody(g, lit.Body, make(map[*types.Func]bool))
		return
	}
	obj := lint.CalleeObject(c.pass.TypesInfo, g.Call)
	if node := c.graph.NodeOf(obj); node != nil {
		c.checkBody(g, node.Decl.Body, map[*types.Func]bool{node.Func: true})
	}
}

// checkBody searches one body for forever-blocking shapes, chasing
// in-package calls transitively (visited breaks cycles). Nested go
// statements are skipped — each launch is checked at its own site.
func (c *checker) checkBody(g *ast.GoStmt, body ast.Node, visited map[*types.Func]bool) {
	info := c.pass.TypesInfo
	ast.Inspect(body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.GoStmt:
			return false
		case *ast.SelectStmt:
			if !c.selectEscapes(x) {
				c.report(x.Pos(),
					"goroutine may block forever: select has no default, ctx.Done() arm, or arm on a closed/timer channel")
			}
			// Arm bodies still run; comm clauses are judged as part of
			// the select, so skip re-reporting them individually.
			for _, clause := range x.Body.List {
				if cc, ok := clause.(*ast.CommClause); ok {
					for _, stmt := range cc.Body {
						c.checkBody(g, stmt, visited)
					}
				}
			}
			return false
		case *ast.SendStmt:
			if key := chanKey(info, x.Chan); !c.esc.sendEscapes(key) {
				c.report(x.Pos(),
					"goroutine may block forever on this channel send: no buffered creation site and no select escape; add a ctx.Done() arm or buffer the channel")
			}
		case *ast.UnaryExpr:
			if x.Op.String() == "<-" {
				if key := chanKey(info, x.X); !c.esc.recvEscapes(key) && !timerChan(info, x.X) {
					c.report(x.Pos(),
						"goroutine may block forever on this channel receive: the channel is never closed and there is no select escape")
				}
			}
		case *ast.RangeStmt:
			tv, ok := info.Types[x.X]
			if ok {
				if _, isChan := tv.Type.Underlying().(*types.Chan); isChan {
					if key := chanKey(info, x.X); !c.esc.recvEscapes(key) && !timerChan(info, x.X) {
						c.report(x.X.Pos(),
							"goroutine ranges over a channel that is never closed; it can never exit the loop")
					}
				}
			}
		case *ast.DeferStmt:
			// A deferred Done is the correct shape; don't descend into
			// the call (a deferred literal's body is still walked).
			if c.isWaitGroupDone(x.Call) {
				return false
			}
		case *ast.CallExpr:
			if c.isWaitGroupDone(x) {
				c.report(x.Pos(),
					"WaitGroup.Done must be deferred at the top of the goroutine: an early return or panic before this call parks Wait forever")
				return true
			}
			if obj := lint.CalleeObject(info, x); obj != nil {
				if node := c.graph.NodeOf(obj); node != nil {
					if fn := node.Func; !visited[fn] {
						visited[fn] = true
						c.checkBody(g, node.Decl.Body, visited)
					}
				}
			}
		}
		return true
	})
}

// selectEscapes reports whether a select is guaranteed to make
// progress eventually: a default arm, a ctx.Done() receive, a receive
// on a package-closed channel, or a timer channel.
func (c *checker) selectEscapes(sel *ast.SelectStmt) bool {
	info := c.pass.TypesInfo
	for _, clause := range sel.Body.List {
		cc, ok := clause.(*ast.CommClause)
		if !ok {
			continue
		}
		if cc.Comm == nil {
			return true // default
		}
		var recv ast.Expr
		switch s := cc.Comm.(type) {
		case *ast.ExprStmt:
			if u, isRecv := ast.Unparen(s.X).(*ast.UnaryExpr); isRecv && u.Op.String() == "<-" {
				recv = u.X
			}
		case *ast.AssignStmt:
			if len(s.Rhs) == 1 {
				if u, isRecv := ast.Unparen(s.Rhs[0]).(*ast.UnaryExpr); isRecv && u.Op.String() == "<-" {
					recv = u.X
				}
			}
		}
		if recv == nil {
			continue
		}
		if isCtxDone(info, recv) || timerChan(info, recv) {
			return true
		}
		if key := chanKey(info, recv); c.esc.recvEscapes(key) {
			return true
		}
	}
	return false
}

// isCtxDone matches ctx.Done() receives.
func isCtxDone(info *types.Info, x ast.Expr) bool {
	call, ok := ast.Unparen(x).(*ast.CallExpr)
	if !ok {
		return false
	}
	obj := lint.CalleeObject(info, call)
	fn, ok := obj.(*types.Func)
	if !ok || fn.Name() != "Done" {
		return false
	}
	return fn.Pkg() != nil && fn.Pkg().Path() == "context"
}

// timerChan matches time.After(...)/time.Tick(...) results and
// Timer/Ticker .C fields: channels the runtime eventually fires.
func timerChan(info *types.Info, x ast.Expr) bool {
	x = ast.Unparen(x)
	if call, ok := x.(*ast.CallExpr); ok {
		obj := lint.CalleeObject(info, call)
		return lint.IsPkgFunc(obj, "time", "After") || lint.IsPkgFunc(obj, "time", "Tick")
	}
	if sel, ok := x.(*ast.SelectorExpr); ok && sel.Sel.Name == "C" {
		if s := info.Selections[sel]; s != nil && s.Kind() == types.FieldVal {
			recv := s.Recv()
			if p, isPtr := recv.Underlying().(*types.Pointer); isPtr {
				recv = p.Elem()
			}
			if named, isNamed := recv.(*types.Named); isNamed {
				obj := named.Obj()
				return obj.Pkg() != nil && obj.Pkg().Path() == "time"
			}
		}
	}
	return false
}

// isWaitGroupDone matches (*sync.WaitGroup).Done calls.
func (c *checker) isWaitGroupDone(call *ast.CallExpr) bool {
	obj := lint.CalleeObject(c.pass.TypesInfo, call)
	fn, ok := obj.(*types.Func)
	if !ok || fn.Name() != "Done" || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	return strings.Contains(sig.Recv().Type().String(), "WaitGroup")
}

// checkTickers reports time.NewTicker results never stopped in the
// declaring function.
func (c *checker) checkTickers() {
	info := c.pass.TypesInfo
	for _, f := range c.pass.Files {
		if testFile(c.pass, f) {
			continue
		}
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			tickers := make(map[types.Object]ast.Expr)
			stopped := make(map[types.Object]bool)
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				switch x := n.(type) {
				case *ast.AssignStmt:
					for i := range x.Lhs {
						if i >= len(x.Rhs) {
							break
						}
						call, isCall := ast.Unparen(x.Rhs[i]).(*ast.CallExpr)
						if !isCall || !lint.IsPkgFunc(lint.CalleeObject(info, call), "time", "NewTicker") {
							continue
						}
						if id, isIdent := x.Lhs[i].(*ast.Ident); isIdent && id.Name != "_" {
							if obj := info.Defs[id]; obj != nil {
								tickers[obj] = call
							}
						}
					}
				case *ast.CallExpr:
					sel, isSel := x.Fun.(*ast.SelectorExpr)
					if !isSel || sel.Sel.Name != "Stop" {
						return true
					}
					if id, isIdent := ast.Unparen(sel.X).(*ast.Ident); isIdent {
						if obj := info.Uses[id]; obj != nil {
							stopped[obj] = true
						}
					}
				}
				return true
			})
			for obj, site := range tickers {
				if !stopped[obj] {
					c.pass.Reportf(site.Pos(),
						"time.NewTicker result is never Stop()ed in this function; an unstopped ticker leaks its goroutine and timer")
				}
			}
		}
	}
}
