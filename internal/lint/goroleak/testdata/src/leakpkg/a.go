// Package leakpkg exercises goroleak: blocking sends and receives
// without escapes, the escapes that silence them (buffered creation
// sites, package-wide close, select default/ctx.Done()/timer arms),
// WaitGroup.Done discipline, unstopped tickers, and the call-graph
// chase into named functions.
package leakpkg

import (
	"context"
	"sync"
	"time"
)

type worker struct {
	reqs    chan int // closed in Shut: receives and ranges escape
	results chan int // only unbuffered creation sites: sends park
	errc    chan error
}

func newWorker() *worker {
	return &worker{
		reqs:    make(chan int, 8),
		results: make(chan int),
		errc:    make(chan error, 1),
	}
}

// Shut closes reqs: every range/receive on worker.reqs terminates.
func (w *worker) Shut() { close(w.reqs) }

// RangeClosed ranges over the closed channel; silent.
func (w *worker) RangeClosed() {
	go func() {
		for v := range w.reqs {
			_ = v
		}
	}()
}

// SendNoEscape sends on a channel with only unbuffered creation
// sites and no select escape.
func (w *worker) SendNoEscape(v int) {
	go func() {
		w.results <- v // want "block forever on this channel send"
	}()
}

// SendBuffered sends on the one-shot buffered error channel; silent.
func (w *worker) SendBuffered(err error) {
	go func() {
		w.errc <- err
	}()
}

// RecvNoClose receives from a channel nobody ever closes.
func RecvNoClose(done chan struct{}) {
	go func() {
		<-done // want "block forever on this channel receive"
	}()
}

// SelectNoEscape has two arms, neither guaranteed to fire.
func SelectNoEscape(a, b chan int) {
	go func() {
		select { // want "select has no default"
		case v := <-a:
			_ = v
		case b <- 1:
		}
	}()
}

// SelectCtx escapes through ctx.Done(); silent.
func SelectCtx(ctx context.Context, a chan int) {
	go func() {
		select {
		case v := <-a:
			_ = v
		case <-ctx.Done():
		}
	}()
}

// SelectDefault never parks; silent.
func SelectDefault(a chan int) {
	go func() {
		select {
		case v := <-a:
			_ = v
		default:
		}
	}()
}

// SelectTimer escapes through time.After; silent.
func SelectTimer(a chan int) {
	go func() {
		select {
		case v := <-a:
			_ = v
		case <-time.After(time.Second):
		}
	}()
}

// DoneNotDeferred calls Done at the end of the body: an early return
// or panic between Add and this call parks Wait forever.
func DoneNotDeferred(wg *sync.WaitGroup) {
	wg.Add(1)
	go func() {
		work()
		wg.Done() // want "WaitGroup.Done must be deferred"
	}()
}

// DoneDeferred is the correct shape; silent.
func DoneDeferred(wg *sync.WaitGroup) {
	wg.Add(1)
	go func() {
		defer wg.Done()
		work()
	}()
}

func work() {}

// drain is a named function launched below: the receive inside is
// only visible through the call graph.
func drain(ch chan int) {
	<-ch // want "block forever on this channel receive"
}

// SpawnNamed launches a declared function; the finding lands inside
// drain, chased through the graph.
func SpawnNamed(ch chan int) {
	go drain(ch)
}

// TickerLeaked never stops its ticker.
func TickerLeaked() {
	t := time.NewTicker(time.Second) // want "never Stop"
	go func() {
		for range t.C {
		}
	}()
}

// TickerStopped defers the stop; silent.
func TickerStopped(done chan struct{}) {
	t := time.NewTicker(time.Second)
	defer t.Stop()
	select {
	case <-t.C:
	case <-done:
	}
}
