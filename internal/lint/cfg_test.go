package lint

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"sort"
	"strings"
	"testing"
)

// buildCFG type-checks one source file and returns the graph of the
// named function plus the types.Info for def-use queries.
func buildCFG(t *testing.T, src, fn string) (*CFG, *types.Info) {
	t.Helper()
	fset := token.NewFileSet()
	file, err := parser.ParseFile(fset, "p.go", src, parser.ParseComments)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	imp := importer.ForCompiler(fset, "source", nil)
	_, info, terrs := typeCheck(fset, imp, "p", []*ast.File{file})
	for _, e := range terrs {
		t.Fatalf("type error: %v", e)
	}
	for _, d := range file.Decls {
		if fd, ok := d.(*ast.FuncDecl); ok && fd.Name.Name == fn {
			return NewCFG(fd, info), info
		}
	}
	t.Fatalf("function %s not found", fn)
	return nil, nil
}

// reachable walks forward from Entry.
func reachable(c *CFG) map[*Block]bool {
	seen := map[*Block]bool{c.Entry: true}
	work := []*Block{c.Entry}
	for len(work) > 0 {
		b := work[0]
		work = work[1:]
		for _, e := range b.Succs {
			if !seen[e.To] {
				seen[e.To] = true
				work = append(work, e.To)
			}
		}
	}
	return seen
}

// exitKinds collects the kinds of Exit's incoming edges from
// reachable predecessors, sorted for stable comparison.
func exitKinds(c *CFG) []EdgeKind {
	r := reachable(c)
	var out []EdgeKind
	for _, e := range c.Exit.Preds {
		if r[e.From] {
			out = append(out, e.Kind)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

func TestCFGStraightLine(t *testing.T) {
	c, _ := buildCFG(t, `package p
func f() int {
	x := 1
	x++
	return x
}`, "f")
	r := reachable(c)
	if !r[c.Exit] {
		t.Fatal("exit unreachable")
	}
	if got := exitKinds(c); len(got) != 1 || got[0] != EdgeReturn {
		t.Fatalf("exit edges = %v, want one EdgeReturn", got)
	}
	// Entry holds all three statements: no branches, no splits.
	if len(c.Entry.Nodes) != 3 {
		t.Fatalf("entry has %d nodes, want 3", len(c.Entry.Nodes))
	}
}

func TestCFGShortCircuitSplits(t *testing.T) {
	c, _ := buildCFG(t, `package p
func f(a, b, c bool) int {
	if a && (b || !c) {
		return 1
	}
	return 0
}`, "f")
	// Each leaf atom must sit in its own evaluating block with its own
	// True/False edge pair, and each True/False edge must carry it.
	var atoms []string
	for _, blk := range c.Blocks {
		for _, e := range blk.Succs {
			if e.Kind == EdgeTrue {
				if e.Cond == nil {
					t.Fatalf("block %d: True edge without condition", blk.Index)
				}
				atoms = append(atoms, types.ExprString(e.Cond))
			}
		}
	}
	sort.Strings(atoms)
	if got := strings.Join(atoms, ","); got != "a,b,c" {
		t.Fatalf("condition atoms = %q, want a,b,c (one split per leaf)", got)
	}
	// !c flips its branches: c's True edge must lead (eventually) to
	// the return-0 path, i.e. the negation is encoded in edge wiring,
	// not left for the analyzer. Check b and c share a target (either
	// makes the whole condition true via its relevant polarity).
	targets := map[string][2]*Block{}
	for _, blk := range c.Blocks {
		for _, e := range blk.Succs {
			if e.Kind == EdgeTrue {
				tb := targets[types.ExprString(e.Cond)]
				tb[0] = e.To
				targets[types.ExprString(e.Cond)] = tb
			}
			if e.Kind == EdgeFalse {
				tb := targets[types.ExprString(e.Cond)]
				tb[1] = e.To
				targets[types.ExprString(e.Cond)] = tb
			}
		}
	}
	if targets["b"][0] != targets["c"][1] {
		t.Error("b-true and c-false should reach the same then-block (|| with negated right operand)")
	}
}

func TestCFGLoopBackEdge(t *testing.T) {
	c, _ := buildCFG(t, `package p
func f(n int) int {
	s := 0
	for i := 0; i < n; i++ {
		s += i
	}
	return s
}`, "f")
	// The condition block must be its own loop head: reachable from
	// both the entry side and the post block.
	var head *Block
	for _, blk := range c.Blocks {
		for _, e := range blk.Succs {
			if e.Kind == EdgeTrue {
				head = e.From
			}
		}
	}
	if head == nil {
		t.Fatal("no loop condition block")
	}
	if len(head.Preds) < 2 {
		t.Fatalf("loop head has %d preds, want entry edge plus back edge", len(head.Preds))
	}
}

func TestCFGRangeHeaderNode(t *testing.T) {
	c, _ := buildCFG(t, `package p
func f(xs []int) int {
	s := 0
	for _, x := range xs {
		s += x
	}
	return s
}`, "f")
	found := false
	for _, blk := range c.Blocks {
		for _, n := range blk.Nodes {
			if _, ok := n.(*ast.RangeStmt); ok {
				found = true
				// Header must branch: True into the body, False out.
				kinds := map[EdgeKind]bool{}
				for _, e := range blk.Succs {
					kinds[e.Kind] = true
				}
				if !kinds[EdgeTrue] || !kinds[EdgeFalse] {
					t.Errorf("range header edges = %v, want True+False", blk.Succs)
				}
			}
		}
	}
	if !found {
		t.Fatal("RangeStmt not recorded in any block")
	}
}

func TestCFGPanicAndFallOff(t *testing.T) {
	c, _ := buildCFG(t, `package p
import "os"
func f(mode int) {
	switch mode {
	case 0:
		panic("zero")
	case 1:
		os.Exit(1)
	case 2:
		return
	}
}`, "f")
	got := exitKinds(c)
	want := []EdgeKind{EdgeSeq, EdgeReturn, EdgePanic, EdgePanic}
	sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Fatalf("exit edge kinds = %v, want fall-off Seq + Return + two Panics: %v", got, want)
	}
}

func TestCFGDeadCodeIsolated(t *testing.T) {
	c, _ := buildCFG(t, `package p
func f() int {
	return 1
	x := 2
	return x
}`, "f")
	r := reachable(c)
	dead := 0
	for _, blk := range c.Blocks {
		if !r[blk] && len(blk.Nodes) > 0 {
			dead++
		}
	}
	if dead == 0 {
		t.Fatal("statements after return should land in unreachable blocks")
	}
}

func TestCFGLabeledContinueAndGoto(t *testing.T) {
	c, _ := buildCFG(t, `package p
func f(m [][]int) int {
	s := 0
outer:
	for _, row := range m {
		for _, v := range row {
			if v < 0 {
				continue outer
			}
			if v > 100 {
				goto done
			}
			s += v
		}
	}
done:
	return s
}`, "f")
	r := reachable(c)
	if !r[c.Exit] {
		t.Fatal("exit unreachable through labeled control flow")
	}
	if got := exitKinds(c); len(got) != 1 || got[0] != EdgeReturn {
		t.Fatalf("exit edges = %v, want exactly the labeled return", got)
	}
}

func TestCFGSelectFansOut(t *testing.T) {
	c, _ := buildCFG(t, `package p
func f(a, b chan int) int {
	select {
	case x := <-a:
		return x
	case <-b:
		return 0
	}
}`, "f")
	got := exitKinds(c)
	if len(got) != 2 || got[0] != EdgeReturn || got[1] != EdgeReturn {
		t.Fatalf("exit edges = %v, want two returns (one per comm clause, no fall-off: select with no default blocks)", got)
	}
}

func TestCFGSwitchFallthrough(t *testing.T) {
	c, _ := buildCFG(t, `package p
func f(n int) string {
	out := ""
	switch n {
	case 0:
		out += "a"
		fallthrough
	case 1:
		out += "b"
	default:
		out += "c"
	}
	return out
}`, "f")
	// Walk from the case-0 body: it must reach the case-1 body without
	// passing through the dispatch block again.
	var case0 *Block
	for _, blk := range c.Blocks {
		for _, n := range blk.Nodes {
			if as, ok := n.(*ast.AssignStmt); ok {
				if lit, ok := as.Rhs[0].(*ast.BasicLit); ok && lit.Value == `"a"` {
					case0 = blk
				}
			}
		}
	}
	if case0 == nil {
		t.Fatal("case-0 body block not found")
	}
	foundB := false
	for _, e := range case0.Succs {
		for _, n := range e.To.Nodes {
			if as, ok := n.(*ast.AssignStmt); ok {
				if lit, ok := as.Rhs[0].(*ast.BasicLit); ok && lit.Value == `"b"` {
					foundB = true
				}
			}
		}
	}
	if !foundB {
		t.Error("fallthrough edge from case 0 to case 1 missing")
	}
}

// liveVars is a toy backward problem (live-variable analysis) used to
// exercise the solver in both directions; states are sorted
// comma-joined variable names.
type liveVars struct {
	info *types.Info
	du   map[*types.Var][]Ref
}

func (lv *liveVars) Boundary() any { return "" }
func (lv *liveVars) Join(a, b any) any {
	set := map[string]bool{}
	for _, s := range strings.Split(a.(string)+","+b.(string), ",") {
		if s != "" {
			set[s] = true
		}
	}
	return joinSet(set)
}
func (lv *liveVars) Equal(a, b any) bool { return a == b }
func (lv *liveVars) Transfer(b *Block, in any) any {
	set := map[string]bool{}
	for _, s := range strings.Split(in.(string), ",") {
		if s != "" {
			set[s] = true
		}
	}
	// Backward through the block's refs (DefUse returns them in
	// forward order, so walk them reversed): kill defs, gen uses.
	for v, refs := range lv.du {
		for i := len(refs) - 1; i >= 0; i-- {
			r := refs[i]
			if r.Block != b {
				continue
			}
			if r.IsDef {
				delete(set, v.Name())
			} else {
				set[v.Name()] = true
			}
		}
	}
	return joinSet(set)
}

func joinSet(set map[string]bool) string {
	names := make([]string, 0, len(set))
	for n := range set {
		names = append(names, n)
	}
	sort.Strings(names)
	return strings.Join(names, ",")
}

func TestCFGSolveBackwardLiveness(t *testing.T) {
	c, info := buildCFG(t, `package p
func f(a, b int) int {
	x := a + b
	if x > 0 {
		return x
	}
	return b
}`, "f")
	lv := &liveVars{info: info, du: c.DefUse(info)}
	res := c.Solve(lv, true)
	// At function entry (state leaving Entry backward = state entering
	// the function) a and b must be live, x must not.
	entryState, ok := res[c.Entry]
	if !ok {
		t.Fatal("entry not reached by backward solve")
	}
	s := lv.Transfer(c.Entry, entryState).(string)
	if !strings.Contains(s, "a") || !strings.Contains(s, "b") {
		t.Errorf("entry liveness = %q, want a and b live", s)
	}
	if strings.Contains(s, "x") {
		t.Errorf("entry liveness = %q: x live before its definition", s)
	}
}

// reachCount is a toy forward problem counting joined paths, plus an
// EdgeRefiner recording the branch conditions traversed.
type reachCount struct{ conds map[string]bool }

func (rc *reachCount) Boundary() any                 { return "" }
func (rc *reachCount) Transfer(b *Block, in any) any { return in }
func (rc *reachCount) Join(a, b any) any {
	return (&liveVars{}).Join(a, b)
}
func (rc *reachCount) Equal(a, b any) bool { return a == b }
func (rc *reachCount) RefineEdge(e *Edge, state any) any {
	if e.Cond == nil {
		return state
	}
	tag := types.ExprString(e.Cond)
	if e.Kind == EdgeFalse {
		tag = "!" + tag
	}
	rc.conds[tag] = true
	if s := state.(string); s != "" {
		return s + "," + tag
	}
	return tag
}

func TestCFGSolveForwardEdgeRefiner(t *testing.T) {
	c, _ := buildCFG(t, `package p
func f(ok bool) int {
	if ok {
		return 1
	}
	return 0
}`, "f")
	rc := &reachCount{conds: map[string]bool{}}
	res := c.Solve(rc, false)
	if !rc.conds["ok"] || !rc.conds["!ok"] {
		t.Fatalf("refiner saw conditions %v, want both polarities of ok", rc.conds)
	}
	if _, reached := res[c.Exit]; !reached {
		t.Fatal("exit not reached by forward solve")
	}
}

func TestCFGDefUseOrder(t *testing.T) {
	c, info := buildCFG(t, `package p
func f() int {
	x := 1
	y := x + 2
	x = y
	return x
}`, "f")
	du := c.DefUse(info)
	var xRefs []Ref
	for v, refs := range du {
		if v.Name() == "x" {
			xRefs = refs
		}
	}
	if len(xRefs) != 4 {
		t.Fatalf("x has %d refs, want def,use,def,use", len(xRefs))
	}
	wantDefs := []bool{true, false, true, false}
	for i, r := range xRefs {
		if r.IsDef != wantDefs[i] {
			t.Errorf("x ref %d: IsDef=%v, want %v", i, r.IsDef, wantDefs[i])
		}
	}
}

func TestCFGFuncLitExcluded(t *testing.T) {
	c, info := buildCFG(t, `package p
func f() func() int {
	x := 1
	g := func() int { y := 2; return y }
	_ = x
	return g
}`, "f")
	du := c.DefUse(info)
	for v := range du {
		if v.Name() == "y" {
			t.Error("def-use leaked into the function literal body")
		}
	}
	// The literal's body statements must not appear as block nodes.
	for _, blk := range c.Blocks {
		for _, n := range blk.Nodes {
			ShallowInspect(n, func(m ast.Node) bool {
				if id, ok := m.(*ast.Ident); ok && id.Name == "y" {
					t.Error("literal-interior ident reached through ShallowInspect")
				}
				return true
			})
		}
	}
}
