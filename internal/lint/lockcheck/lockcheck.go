// Package lockcheck enforces the repo's mutex-guard convention on
// every struct that carries one:
//
//   - a field named "mu" (sync.Mutex or sync.RWMutex) guards every
//     field declared after it, except other mutexes and types that
//     synchronise themselves (sync.Map, sync.WaitGroup, sync/atomic
//     values, channels);
//   - a field named "<prefix>Mu" guards exactly the fields whose
//     names start with <prefix> (e.g. Server.randMu guards rand);
//   - a mutex with no matching fields (wal.WAL.compactMu) guards a
//     critical section, not data, and imposes nothing.
//
// A guarded field may only be accessed in a function that (a) is
// named *Locked — the caller owns the critical section, as with the
// clientRecord helpers — (b) locks the corresponding mutex on the
// same receiver somewhere in the same function, or (c) constructed
// the value locally via a new*/New* constructor or composite literal,
// i.e. the value is not yet published.
//
// The analyzer also pins the durability ordering from internal/auth's
// journal contract: JournalBurn, JournalRemap and JournalCounter — the
// per-record mutations — must be invoked lexically inside the record's
// critical section (after a .mu.Lock() with no intervening explicit
// .mu.Unlock()), or from a *Locked function whose caller holds the
// lock. JournalEnroll and JournalDelete are record-lifecycle events
// journaled outside any record lock by design and are exempt.
package lockcheck

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"repro/internal/lint"
)

// Analyzer is the lockcheck entry point.
var Analyzer = &lint.Analyzer{
	Name: "lockcheck",
	Doc:  "mu-guarded struct fields accessed only under their mutex, with journal appends inside the critical section",
	Run:  run,
}

// recordJournalMethods are the journal appends that must sit inside a
// record critical section.
var recordJournalMethods = map[string]bool{
	"JournalBurn":    true,
	"JournalRemap":   true,
	"JournalCounter": true,
}

func run(pass *lint.Pass) error {
	g := &guards{cache: make(map[*types.Struct]map[int]string)}
	for _, scope := range lint.FuncScopes(pass.Files) {
		checkScope(pass, g, scope)
	}
	return nil
}

// guards caches the field→mutex map per struct type.
type guards struct {
	cache map[*types.Struct]map[int]string
}

// of returns the guard map for st: field index → name of the mutex
// field guarding it.
func (g *guards) of(st *types.Struct) map[int]string {
	if m, ok := g.cache[st]; ok {
		return m
	}
	m := make(map[int]string)
	g.cache[st] = m

	type mutexField struct {
		index int
		name  string
	}
	var muxes []mutexField
	for i := 0; i < st.NumFields(); i++ {
		f := st.Field(i)
		if isMutex(f.Type()) {
			muxes = append(muxes, mutexField{index: i, name: f.Name()})
		}
	}
	// Prefix-named mutexes claim their fields first.
	claimed := make(map[int]bool)
	for _, mx := range muxes {
		prefix, ok := strings.CutSuffix(mx.name, "Mu")
		if !ok || prefix == "" {
			continue
		}
		for i := 0; i < st.NumFields(); i++ {
			f := st.Field(i)
			if i == mx.index || isMutex(f.Type()) || selfSynced(f.Type()) {
				continue
			}
			if strings.HasPrefix(f.Name(), prefix) {
				m[i] = mx.name
				claimed[i] = true
			}
		}
	}
	// A bare "mu" guards everything declared below it that is still
	// unclaimed.
	for _, mx := range muxes {
		if mx.name != "mu" {
			continue
		}
		for i := mx.index + 1; i < st.NumFields(); i++ {
			f := st.Field(i)
			if claimed[i] || isMutex(f.Type()) || selfSynced(f.Type()) {
				continue
			}
			m[i] = mx.name
		}
	}
	return m
}

// isMutex reports whether t is sync.Mutex, sync.RWMutex, or a pointer
// to one.
func isMutex(t types.Type) bool {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	return isSyncType(t, "Mutex") || isSyncType(t, "RWMutex")
}

// selfSynced reports whether t carries its own synchronisation and
// needs no external lock: the sync containers, atomics, and channels.
func selfSynced(t types.Type) bool {
	if _, ok := t.(*types.Chan); ok {
		return true
	}
	if named, ok := t.(*types.Named); ok {
		obj := named.Obj()
		if obj.Pkg() != nil {
			switch obj.Pkg().Path() {
			case "sync", "sync/atomic":
				return true
			}
		}
	}
	return false
}

func isSyncType(t types.Type, name string) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "sync" && obj.Name() == name
}

// lockEvent is one mutex operation or journal call, in lexical order.
type lockEvent struct {
	pos      token.Pos
	kind     string // "lock", "unlock", "journal"
	key      string // lock identity: root object pointer + mutex name
	deferred bool
	call     *ast.CallExpr
	method   string
}

// checkScope verifies every guarded-field access and journal call in
// one function body.
func checkScope(pass *lint.Pass, g *guards, scope *lint.FuncScope) {
	info := pass.TypesInfo

	// Pass 1: find the locks this scope (or an enclosing literal
	// chain) takes, the fresh locals it constructs, and the ordered
	// lock/unlock/journal event list.
	locked := make(map[string]bool)
	var events []lockEvent
	fresh := freshLocals(info, scope)
	collect := func(s *lint.FuncScope, record bool) {
		s.InspectShallow(func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			switch sel.Sel.Name {
			case "Lock", "RLock":
				if key, ok := mutexKey(info, sel.X); ok {
					locked[key] = true
					if record {
						events = append(events, lockEvent{pos: call.Pos(), kind: "lock", key: key})
					}
				}
			case "Unlock", "RUnlock":
				if key, ok := mutexKey(info, sel.X); ok && record {
					events = append(events, lockEvent{pos: call.Pos(), kind: "unlock", key: key})
				}
			default:
				if record && recordJournalMethods[sel.Sel.Name] {
					events = append(events, lockEvent{pos: call.Pos(), kind: "journal", call: call, method: sel.Sel.Name})
				}
			}
			return true
		})
	}
	collect(scope, true)
	// A function literal may rely on a lock its enclosing function
	// holds (the common defer-unlock and with-lock-held callback
	// shapes), so enclosing locks count as held.
	for p := scope.Parent; p != nil; p = p.Parent {
		collect(p, false)
	}
	markDeferredUnlocks(scope, events)

	inLocked := lockedName(scope)

	// Pass 2: guarded field accesses.
	scope.InspectShallow(func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		selection := info.Selections[sel]
		if selection == nil || selection.Kind() != types.FieldVal {
			return true
		}
		owner, index := fieldOwner(selection)
		if owner == nil {
			return true
		}
		muName := g.of(owner)[index]
		if muName == "" {
			return true
		}
		if inLocked {
			return true
		}
		root := lint.RootIdent(sel.X)
		if root == nil {
			return true // chained call results etc.: out of scope
		}
		rootObj := info.Uses[root]
		if rootObj == nil {
			rootObj = info.Defs[root]
		}
		if rootObj == nil {
			return true
		}
		if fresh[rootObj] {
			return true
		}
		if locked[lockKey(rootObj, muName)] {
			return true
		}
		pass.Reportf(sel.Sel.Pos(),
			"field %s.%s is guarded by %s; access it under %s.%s.Lock, from a *Locked function, or on a freshly constructed record",
			owner.Field(index).Pkg().Name()+"."+structName(selection), sel.Sel.Name, muName, root.Name, muName)
		return true
	})

	// Pass 3: journal calls must sit lexically inside a record
	// critical section.
	if !inLocked {
		for _, ev := range events {
			if ev.kind != "journal" {
				continue
			}
			if !insideCriticalSection(events, ev) {
				pass.Reportf(ev.call.Pos(),
					"%s must be called inside the record critical section (after .mu.Lock with no intervening .mu.Unlock) or from a *Locked function",
					ev.method)
			}
		}
	}
}

// lockedName reports whether the scope (or, for a literal, any
// enclosing declaration) is named *Locked.
func lockedName(scope *lint.FuncScope) bool {
	for s := scope; s != nil; s = s.Parent {
		if strings.HasSuffix(s.Name, "Locked") && s.Name != "" {
			return true
		}
	}
	return false
}

// insideCriticalSection reports whether a journal event has a "mu"
// lock before it with no explicit unlock of the same mutex between.
func insideCriticalSection(events []lockEvent, j lockEvent) bool {
	var last *lockEvent
	for i := range events {
		ev := &events[i]
		if ev.pos >= j.pos {
			break
		}
		if !strings.HasSuffix(ev.key, ".mu") {
			continue
		}
		switch ev.kind {
		case "lock":
			last = ev
		case "unlock":
			if !ev.deferred && last != nil && ev.key == last.key {
				last = nil
			}
		}
	}
	return last != nil
}

// markDeferredUnlocks flags unlock events that run at function exit
// (defer), which never end the lexical critical section.
func markDeferredUnlocks(scope *lint.FuncScope, events []lockEvent) {
	scope.InspectShallow(func(n ast.Node) bool {
		def, ok := n.(*ast.DeferStmt)
		if !ok {
			return true
		}
		for i := range events {
			if events[i].pos == def.Call.Pos() {
				events[i].deferred = true
			}
		}
		return true
	})
}

// mutexKey resolves the expression before ".Lock" — e.g. rec.mu or
// s.shards[i].mu — to "rootObject.mutexName". A bare local mutex
// (ident) guards no struct fields and yields no key.
func mutexKey(info *types.Info, x ast.Expr) (string, bool) {
	sel, ok := ast.Unparen(x).(*ast.SelectorExpr)
	if !ok {
		return "", false
	}
	selection := info.Selections[sel]
	if selection == nil || selection.Kind() != types.FieldVal || !isMutex(selection.Obj().Type()) {
		return "", false
	}
	root := lint.RootIdent(sel.X)
	if root == nil {
		return "", false
	}
	obj := info.Uses[root]
	if obj == nil {
		obj = info.Defs[root]
	}
	if obj == nil {
		return "", false
	}
	return lockKey(obj, sel.Sel.Name), true
}

func lockKey(obj types.Object, mutexName string) string {
	return fmt.Sprintf("%s@%d.%s", obj.Id(), obj.Pos(), mutexName)
}

// fieldOwner walks a selection's index path to the struct that
// declares the selected field, returning it and the field's index.
func fieldOwner(sel *types.Selection) (*types.Struct, int) {
	t := sel.Recv()
	index := sel.Index()
	for depth, i := range index {
		if p, ok := t.Underlying().(*types.Pointer); ok {
			t = p.Elem()
		}
		st, ok := t.Underlying().(*types.Struct)
		if !ok {
			return nil, 0
		}
		if depth == len(index)-1 {
			return st, i
		}
		t = st.Field(i).Type()
	}
	return nil, 0
}

// structName renders the receiver struct's type name for diagnostics.
func structName(sel *types.Selection) string {
	t := sel.Recv()
	if p, ok := t.Underlying().(*types.Pointer); ok {
		t = p.Elem()
	}
	if named, ok := t.(*types.Named); ok {
		return named.Obj().Name()
	}
	if p, ok := t.(*types.Pointer); ok {
		if named, ok := p.Elem().(*types.Named); ok {
			return named.Obj().Name()
		}
	}
	return t.String()
}

// freshLocals finds local variables initialised from a constructor
// (new*/New* call) or composite literal in this scope: values not yet
// published, whose guarded fields may be set lock-free.
func freshLocals(info *types.Info, scope *lint.FuncScope) map[types.Object]bool {
	fresh := make(map[types.Object]bool)
	mark := func(lhs ast.Expr, rhs ast.Expr) {
		id, ok := lhs.(*ast.Ident)
		if !ok {
			return
		}
		obj := info.Defs[id]
		if obj == nil {
			obj = info.Uses[id]
		}
		if obj == nil {
			return
		}
		if isFreshExpr(rhs) {
			fresh[obj] = true
		}
	}
	scope.InspectShallow(func(n ast.Node) bool {
		switch st := n.(type) {
		case *ast.AssignStmt:
			if len(st.Lhs) == len(st.Rhs) {
				for i := range st.Lhs {
					mark(st.Lhs[i], st.Rhs[i])
				}
			}
		case *ast.ValueSpec:
			if len(st.Names) == len(st.Values) {
				for i := range st.Names {
					mark(st.Names[i], st.Values[i])
				}
			}
		}
		return true
	})
	return fresh
}

// isFreshExpr reports whether e constructs a brand-new value: a
// composite literal, &literal, or a call to a new*/New* constructor.
func isFreshExpr(e ast.Expr) bool {
	switch x := ast.Unparen(e).(type) {
	case *ast.CompositeLit:
		return true
	case *ast.UnaryExpr:
		if x.Op == token.AND {
			_, ok := x.X.(*ast.CompositeLit)
			return ok
		}
	case *ast.CallExpr:
		var name string
		switch fun := ast.Unparen(x.Fun).(type) {
		case *ast.Ident:
			name = fun.Name
		case *ast.SelectorExpr:
			name = fun.Sel.Name
		}
		return strings.HasPrefix(name, "new") || strings.HasPrefix(name, "New")
	}
	return false
}
