// Fixture for lockcheck: mutex-guard conventions and the journal
// critical-section rule.
package lockpkg

import "sync"

type journal interface {
	JournalBurn(id string)
	JournalEnroll(id string)
	JournalCounter(id string, n uint64)
}

// record: a bare mu guards every field declared after it.
type record struct {
	mu    sync.Mutex
	key   []byte
	count int
	done  chan struct{} // channels synchronise themselves: unguarded
}

// server: randMu prefix-guards rand; stats has no guard.
type server struct {
	randMu sync.Mutex
	rand   int
	stats  int
}

func newRecord() *record { return &record{} }

func readBad(r *record) int {
	return r.count // want "field lockpkg.record.count is guarded by mu"
}

func writeBad(r *record) {
	r.key = nil // want "guarded by mu"
}

func readGood(r *record) int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.count
}

// bumpLocked: the *Locked suffix asserts the caller holds r.mu.
func (r *record) bumpLocked() {
	r.count++
}

func freshOK() *record {
	r := newRecord()
	r.count = 1 // unpublished: constructor-fresh local
	lit := &record{}
	lit.key = []byte("k")
	return r
}

func chanOK(r *record) {
	close(r.done) // self-synced type, no guard
}

func closureOK(r *record) int {
	r.mu.Lock()
	defer r.mu.Unlock()
	f := func() int { return r.count } // inherits the enclosing lock
	return f()
}

func closureBad(r *record) func() int {
	return func() int {
		return r.count // want "guarded by mu"
	}
}

func randBad(s *server) int {
	return s.rand // want "guarded by randMu"
}

func randGood(s *server) int {
	s.randMu.Lock()
	defer s.randMu.Unlock()
	return s.rand
}

func statsOK(s *server) int {
	return s.stats // not guarded by randMu: prefix does not match
}

func burnBad(r *record, j journal) {
	j.JournalBurn("x") // want "JournalBurn must be called inside the record critical section"
}

func burnAfterUnlock(r *record, j journal) {
	r.mu.Lock()
	r.mu.Unlock()
	j.JournalBurn("x") // want "JournalBurn must be called inside the record critical section"
}

func burnGood(r *record, j journal) {
	r.mu.Lock()
	j.JournalBurn("x")
	r.mu.Unlock()
}

func burnDeferOK(r *record, j journal) {
	r.mu.Lock()
	defer r.mu.Unlock()
	j.JournalCounter("x", 1)
}

// issueLocked: journal calls in *Locked functions rely on the caller's
// critical section.
func (r *record) issueLocked(j journal) {
	j.JournalBurn("x")
}

func enrollOK(j journal) {
	j.JournalEnroll("x") // lifecycle event: exempt by design
}
