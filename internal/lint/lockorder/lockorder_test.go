package lockorder_test

import (
	"testing"

	"repro/internal/lint/linttest"
	"repro/internal/lint/lockorder"
)

func TestLockorder(t *testing.T) {
	linttest.Run(t, lockorder.Analyzer, "testdata/src/orderpkg")
}

func TestBuiltinHierarchy(t *testing.T) {
	linttest.Run(t, lockorder.Analyzer, "testdata/src/walpkg")
}
