// Package orderpkg exercises lockorder: a custom two-level hierarchy
// on top of the built-in one, direct inversions, call-graph
// inversions, interface devirtualisation, re-entry, and the shapes
// that must stay silent.
//
//lint:lockorder Table.mu < Row.mu
package orderpkg

import "sync"

type Table struct {
	mu   sync.RWMutex
	rows map[string]*Row
}

type Row struct {
	mu sync.Mutex
	n  int
}

// InOrder acquires table before row: the declared order. No finding.
func InOrder(t *Table, r *Row) {
	t.mu.Lock()
	r.mu.Lock()
	r.n++
	r.mu.Unlock()
	t.mu.Unlock()
}

// Inverted acquires the row first, then the table.
func Inverted(t *Table, r *Row) {
	r.mu.Lock()
	defer r.mu.Unlock()
	t.mu.Lock() // want "acquires Table.mu while holding Row.mu"
	defer t.mu.Unlock()
}

// Reenter locks a row while a row is already held.
func Reenter(a, b *Row) {
	a.mu.Lock()
	defer a.mu.Unlock()
	b.mu.Lock() // want "already holding Row.mu"
	defer b.mu.Unlock()
}

// lockTable is a helper whose acquisition must propagate to callers.
func lockTable(t *Table) {
	t.mu.Lock()
	defer t.mu.Unlock()
}

// ViaCall holds a row and calls a function that takes the table lock:
// the inversion is only visible interprocedurally.
func ViaCall(t *Table, r *Row) {
	r.mu.Lock()
	defer r.mu.Unlock()
	lockTable(t) // want "call to lockTable may acquire Table.mu while Row.mu is held"
}

// deepLockTable reaches the table lock through two hops.
func deepLockTable(t *Table) { lockTable(t) }

// ViaDeepCall propagates through a two-hop chain.
func ViaDeepCall(t *Table, r *Row) {
	r.mu.Lock()
	defer r.mu.Unlock()
	deepLockTable(t) // want "call to deepLockTable may acquire Table.mu while Row.mu is held"
}

// Locker is devirtualised to *Table (its only in-package
// implementation), so the inversion below is caught through the
// interface.
type Locker interface {
	LockIt()
}

func (t *Table) LockIt() {
	t.mu.Lock()
	defer t.mu.Unlock()
}

// ViaInterface calls through the interface while holding a row.
func ViaInterface(l Locker, r *Row) {
	r.mu.Lock()
	defer r.mu.Unlock()
	l.LockIt() // want "call to LockIt may acquire Table.mu while Row.mu is held"
}

// ReleasedFirst explicitly unlocks the row before taking the table:
// the sections do not nest, so no finding.
func ReleasedFirst(t *Table, r *Row) {
	r.mu.Lock()
	r.n++
	r.mu.Unlock()
	t.mu.Lock()
	t.mu.Unlock()
}

// SpawnTable launches the table acquisition on its own goroutine: a
// Go edge, which runs on a fresh stack and must not propagate.
func SpawnTable(t *Table, r *Row) {
	r.mu.Lock()
	defer r.mu.Unlock()
	go lockTable(t)
}

// Unranked locks are outside every hierarchy and never reported.
type Misc struct {
	mu sync.Mutex
	v  int
}

func UnrankedNesting(m *Misc, r *Row) {
	r.mu.Lock()
	defer r.mu.Unlock()
	m.mu.Lock()
	m.v++
	m.mu.Unlock()
}
