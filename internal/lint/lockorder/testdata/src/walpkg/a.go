// Package walpkg exercises the built-in hierarchy (storeShard.mu <
// clientRecord.mu < WAL.closedMu) and the pinned external boundary:
// auth.Journal methods and WAL entry points acquire WAL.closedMu.
package walpkg

import "sync"

type storeShard struct {
	mu      sync.RWMutex
	clients map[string]*clientRecord
}

type clientRecord struct {
	mu     sync.Mutex
	nextID uint64
}

// Journal mirrors auth.Journal: no in-package implementation, so the
// acquisition is pinned by the boundary table, not the call graph.
type Journal interface {
	JournalBurn(id string, nextID uint64) error
}

// IssueInOrder is the real server shape: record lock, then journal
// (closedMu). In order; silent.
func IssueInOrder(rec *clientRecord, j Journal) error {
	rec.mu.Lock()
	defer rec.mu.Unlock()
	rec.nextID++
	return j.JournalBurn("c", rec.nextID)
}

// lockShard models a store mutation.
func lockShard(sh *storeShard) {
	sh.mu.Lock()
	defer sh.mu.Unlock()
}

// CreateWhileLocked inverts the shard/record order through a call.
func CreateWhileLocked(sh *storeShard, rec *clientRecord) {
	rec.mu.Lock()
	defer rec.mu.Unlock()
	lockShard(sh) // want "call to lockShard may acquire storeShard.mu while clientRecord.mu is held"
}

type WAL struct {
	closedMu sync.RWMutex
	closed   bool
}

// CloseTwice re-enters closedMu through the pinned boundary: Close on
// a WAL acquires WAL.closedMu.
func CloseTwice(w *WAL, j Journal) error {
	w.closedMu.Lock()
	defer w.closedMu.Unlock()
	return j.JournalBurn("c", 1) // want "call to JournalBurn may acquire WAL.closedMu, which is already held"
}

// ShardThenRecord is the declared order; silent.
func ShardThenRecord(sh *storeShard, rec *clientRecord) {
	sh.mu.RLock()
	rec.mu.Lock()
	rec.nextID++
	rec.mu.Unlock()
	sh.mu.RUnlock()
}

// RecordThenShardDirect inverts it directly, no call needed.
func RecordThenShardDirect(sh *storeShard, rec *clientRecord) {
	rec.mu.Lock()
	defer rec.mu.Unlock()
	sh.mu.RLock() // want "acquires storeShard.mu while holding clientRecord.mu"
	defer sh.mu.RUnlock()
}
