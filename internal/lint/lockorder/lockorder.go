// Package lockorder checks lock acquisitions — including those
// reached through calls — against the repo's declared lock hierarchy:
//
//	storeShard.mu  <  clientRecord.mu  <  WAL.closedMu
//
// (shard map lock before per-record lock before the WAL's close
// guard; see DESIGN.md §7 for the written contract). Two bug shapes
// are reported:
//
//   - inversion: acquiring a class that sits *before* one already
//     held — directly, or by calling a function whose transitive
//     acquisition set (propagated over the package call graph)
//     contains such a class. Two goroutines running the two orders
//     concurrently deadlock.
//   - re-entry: acquiring a class already held. Same lock value is a
//     guaranteed self-deadlock (sync.Mutex does not re-enter);
//     another instance of the same class (two records, two shards) is
//     unordered within the hierarchy and deadlocks against the
//     opposite interleaving.
//
// The analysis is lexical per function body (an explicit Unlock ends
// the critical section; a deferred one does not) and interprocedural
// through the package call graph: direct calls, method calls through
// the static type, and interface calls devirtualised to in-package
// implementations (which is how store mutations behind
// auth.ClientStore stay visible). `go` edges are not followed — a
// spawned goroutine runs on its own stack, so its acquisitions do not
// nest inside the caller's. Two cross-package boundaries the graph
// cannot see are pinned by name instead: the auth.Journal methods and
// wal.WAL's Append/Compact/Close all acquire WAL.closedMu.
//
// Packages may extend the hierarchy for their own locks with a
// directive anywhere in the package:
//
//	//lint:lockorder first.mu < second.mu < third.mu
//
// Classes are named TypeName.fieldName; classes not in the hierarchy
// are unordered and never reported.
package lockorder

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"repro/internal/lint"
)

// Analyzer is the lockorder entry point.
var Analyzer = &lint.Analyzer{
	Name: "lockorder",
	Doc:  "lock acquisitions (direct and via calls) must follow the declared hierarchy storeShard.mu < clientRecord.mu < WAL.closedMu; no re-entry of a held class",
	Run:  run,
}

// defaultHierarchy is the repo's declared acquisition order, lowest
// (outermost) first. DESIGN.md §7 is the prose version; keep them in
// step.
var defaultHierarchy = []string{"storeShard.mu", "clientRecord.mu", "WAL.closedMu"}

// externalAcquires pins the lock classes acquired behind call
// boundaries the package-level graph cannot see: the durability
// funnel. Keyed by receiver type name, then method name.
var externalAcquires = map[string]map[string]string{
	"Journal": {
		"JournalEnroll": "WAL.closedMu", "JournalBurn": "WAL.closedMu",
		"JournalRemap": "WAL.closedMu", "JournalCounter": "WAL.closedMu",
		"JournalDelete": "WAL.closedMu",
	},
	"WAL": {
		"Append": "WAL.closedMu", "Compact": "WAL.closedMu", "Close": "WAL.closedMu",
		"AppendRecord": "WAL.closedMu", "AppendFrame": "WAL.closedMu",
		"JournalEnroll": "WAL.closedMu", "JournalBurn": "WAL.closedMu",
		"JournalRemap": "WAL.closedMu", "JournalCounter": "WAL.closedMu",
		"JournalDelete": "WAL.closedMu",
		"Subscribe":     "WAL.subMu",
	},
	"Subscription": {
		"Close": "WAL.subMu",
	},
}

func run(pass *lint.Pass) error {
	levels := hierarchy(pass.Files)
	c := &checker{
		pass:   pass,
		levels: levels,
		order:  orderString(levels),
		trans:  transitiveAcquires(pass, levels),
	}
	for _, scope := range lint.FuncScopes(pass.Files) {
		c.checkScope(scope)
	}
	return nil
}

// hierarchy builds the class→level map: the default chain, extended
// by every //lint:lockorder directive in the package (new classes
// append after the defaults, keeping each directive chain's relative
// order).
func hierarchy(files []*ast.File) map[string]int {
	order := append([]string(nil), defaultHierarchy...)
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, cm := range cg.List {
				text := strings.TrimSpace(strings.TrimPrefix(cm.Text, "//"))
				if !strings.HasPrefix(text, "lint:lockorder") {
					continue
				}
				for _, cls := range strings.Split(strings.TrimPrefix(text, "lint:lockorder"), "<") {
					cls = strings.TrimSpace(cls)
					if cls != "" && !contains(order, cls) {
						order = append(order, cls)
					}
				}
			}
		}
	}
	levels := make(map[string]int, len(order))
	for i, cls := range order {
		levels[cls] = i
	}
	return levels
}

func contains(s []string, v string) bool {
	for _, x := range s {
		if x == v {
			return true
		}
	}
	return false
}

// orderString renders the hierarchy for diagnostics, level order.
func orderString(levels map[string]int) string {
	out := make([]string, len(levels))
	for cls, lv := range levels {
		out[lv] = cls
	}
	return strings.Join(out, " < ")
}

// transitiveAcquires computes, for every function declared in the
// package, the set of hierarchy classes it may acquire — locally or
// through any chain of resolvable calls. Go edges are excluded (a
// goroutine's acquisitions happen on its own stack); defer edges are
// included (deferred calls run on the caller's stack).
func transitiveAcquires(pass *lint.Pass, levels map[string]int) map[*types.Func]map[string]bool {
	graph := pass.CallGraph()
	acq := make(map[*types.Func]map[string]bool, len(graph.All()))
	for _, node := range graph.All() {
		set := make(map[string]bool)
		// Local acquisitions, including nested literals (a literal the
		// function builds may run on its stack) but not go-launched
		// bodies.
		collectLocalAcquires(pass.TypesInfo, node.Decl.Body, levels, false, set)
		acq[node.Func] = set
	}
	for changed := true; changed; {
		changed = false
		for _, node := range graph.All() {
			set := acq[node.Func]
			for _, site := range node.Sites {
				if site.Go {
					continue
				}
				for _, cls := range calleeClasses(site, acq) {
					if !set[cls] {
						set[cls] = true
						changed = true
					}
				}
			}
		}
	}
	return acq
}

// calleeClasses returns the classes a call site may acquire: the
// union of its in-package targets' sets plus any pinned external
// boundary.
func calleeClasses(site lint.CallSite, acq map[*types.Func]map[string]bool) []string {
	var out []string
	for _, t := range site.Targets {
		for cls := range acq[t] {
			out = append(out, cls)
		}
	}
	if cls := externalClass(site.Callee); cls != "" {
		out = append(out, cls)
	}
	return out
}

// externalClass resolves a callee against the pinned cross-package
// boundary table.
func externalClass(obj types.Object) string {
	fn, ok := obj.(*types.Func)
	if !ok {
		return ""
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return ""
	}
	recv := sig.Recv().Type()
	if p, isPtr := recv.(*types.Pointer); isPtr {
		recv = p.Elem()
	}
	named, ok := recv.(*types.Named)
	if !ok {
		return ""
	}
	if methods, ok := externalAcquires[named.Obj().Name()]; ok {
		return methods[fn.Name()]
	}
	return ""
}

// collectLocalAcquires adds every hierarchy-class Lock/RLock under n
// to set, skipping go-launched literal bodies.
func collectLocalAcquires(info *types.Info, n ast.Node, levels map[string]int, inGo bool, set map[string]bool) {
	ast.Inspect(n, func(m ast.Node) bool {
		switch x := m.(type) {
		case *ast.GoStmt:
			if lit, ok := ast.Unparen(x.Call.Fun).(*ast.FuncLit); ok {
				_ = lit // the goroutine body acquires on its own stack
				for _, a := range x.Call.Args {
					collectLocalAcquires(info, a, levels, inGo, set)
				}
				return false
			}
			return true
		case *ast.CallExpr:
			if cls, _, ok := lockOp(info, x); ok {
				if _, ranked := levels[cls.class]; ranked && cls.kind == opLock {
					set[cls.class] = true
				}
			}
			return true
		}
		return true
	})
}

// opKind discriminates mutex operations.
type opKind int

const (
	opLock opKind = iota
	opUnlock
)

// lockClass is one resolved mutex operation.
type lockClass struct {
	kind  opKind
	class string // TypeName.fieldName
	key   string // instance identity: root object + field
}

// lockOp resolves call as a Lock/RLock/Unlock/RUnlock on a struct
// mutex field.
func lockOp(info *types.Info, call *ast.CallExpr) (lockClass, token.Pos, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return lockClass{}, 0, false
	}
	var kind opKind
	switch sel.Sel.Name {
	case "Lock", "RLock":
		kind = opLock
	case "Unlock", "RUnlock":
		kind = opUnlock
	default:
		return lockClass{}, 0, false
	}
	owner, field, root, ok := lint.MutexSel(info, sel.X)
	if !ok {
		return lockClass{}, 0, false
	}
	return lockClass{
		kind:  kind,
		class: owner + "." + field,
		key:   fmt.Sprintf("%s@%d.%s", root.Id(), root.Pos(), field),
	}, call.Pos(), true
}

// checker carries the per-package state through every scope.
type checker struct {
	pass   *lint.Pass
	levels map[string]int
	order  string
	trans  map[*types.Func]map[string]bool
}

// event is one lexically ordered lock/unlock/call in a scope.
type event struct {
	pos      token.Pos
	op       *lockClass // nil for calls
	site     *lint.CallSite
	deferred bool
}

// checkScope replays one function body's events against the
// hierarchy. Each scope (declaration or literal) starts with an empty
// held set: literals run on unknown stacks, so only locks taken in
// the same body count as held — an under-approximation that never
// reports a lock the body did not itself take.
func (c *checker) checkScope(scope *lint.FuncScope) {
	events := c.scopeEvents(scope)
	type held struct {
		class string
		key   string
	}
	var stack []held
	for _, ev := range events {
		if ev.op != nil {
			switch ev.op.kind {
			case opLock:
				lv, ranked := c.levels[ev.op.class]
				if !ranked {
					continue
				}
				for _, h := range stack {
					hl := c.levels[h.class]
					switch {
					case h.class == ev.op.class:
						c.pass.Reportf(ev.pos,
							"acquires %s while already holding %s (lock re-entry: same lock self-deadlocks, sibling instances are unordered)",
							ev.op.class, h.class)
					case hl > lv:
						c.pass.Reportf(ev.pos,
							"acquires %s while holding %s, against the declared lock order %s",
							ev.op.class, h.class, c.order)
					}
				}
				stack = append(stack, held{class: ev.op.class, key: ev.op.key})
			case opUnlock:
				if ev.deferred {
					continue // runs at exit; never ends the lexical section
				}
				for i := len(stack) - 1; i >= 0; i-- {
					if stack[i].key == ev.op.key || stack[i].class == ev.op.class {
						stack = append(stack[:i], stack[i+1:]...)
						break
					}
				}
			}
			continue
		}
		// Call event: what the callee may acquire must order above
		// everything held here.
		if len(stack) == 0 || ev.deferred || ev.site.Go {
			continue
		}
		calleeName := ev.site.Callee.Name()
		for _, cls := range calleeClasses(*ev.site, c.trans) {
			lv, ranked := c.levels[cls]
			if !ranked {
				continue
			}
			for _, h := range stack {
				hl := c.levels[h.class]
				switch {
				case cls == h.class:
					c.pass.Reportf(ev.pos,
						"call to %s may acquire %s, which is already held (lock re-entry through the call graph)",
						calleeName, cls)
				case hl > lv:
					c.pass.Reportf(ev.pos,
						"call to %s may acquire %s while %s is held, against the declared lock order %s",
						calleeName, cls, h.class, c.order)
				}
			}
		}
	}
}

// scopeEvents collects the scope's lock operations and resolved calls
// in lexical order, with deferred ones marked.
func (c *checker) scopeEvents(scope *lint.FuncScope) []event {
	info := c.pass.TypesInfo
	graph := c.pass.CallGraph()
	var events []event
	scope.InspectShallow(func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if cls, pos, isLock := lockOp(info, call); isLock {
			op := cls
			events = append(events, event{pos: pos, op: &op})
			return true
		}
		if site := findSite(graph, scope, call); site != nil {
			events = append(events, event{pos: call.Pos(), site: site})
		}
		return true
	})
	// Mark deferred events (defer mu.Unlock(), defer f()).
	scope.InspectShallow(func(n ast.Node) bool {
		def, ok := n.(*ast.DeferStmt)
		if !ok {
			return true
		}
		for i := range events {
			if events[i].pos == def.Call.Pos() {
				events[i].deferred = true
			}
		}
		return true
	})
	return events
}

// findSite locates the call-graph site for a call expression. Sites
// live on the node of the enclosing declaration; for literals, walk
// to the declaring scope.
func findSite(graph *lint.CallGraph, scope *lint.FuncScope, call *ast.CallExpr) *lint.CallSite {
	for _, node := range graph.All() {
		if node.Decl.Body.Pos() > call.Pos() || node.Decl.Body.End() < call.End() {
			continue
		}
		for i := range node.Sites {
			if node.Sites[i].Call == call {
				return &node.Sites[i]
			}
		}
	}
	return nil
}
