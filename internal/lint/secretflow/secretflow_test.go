package secretflow_test

import (
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/lint"
	"repro/internal/lint/linttest"
	"repro/internal/lint/secretflow"
)

// TestSecretFlow covers the dataflow engine end to end on a fixture:
// direct source-to-sink flows, chains through helpers, secret package
// vars, and the silent shapes (built-in sanitizer packages, declared
// //lint:sanitizes redactors, sinks fed only constants).
func TestSecretFlow(t *testing.T) {
	linttest.Run(t, secretflow.Analyzer, "testdata/src/secretpkg")
}

// TestDirectiveHygiene asserts the directive failure modes
// programmatically: both diagnostics anchor on the directive comment,
// and a want comment cannot share a //-comment's line.
func TestDirectiveHygiene(t *testing.T) {
	pkg, err := lint.LoadDir("testdata/src/secretdirs")
	if err != nil {
		t.Fatalf("load fixture: %v", err)
	}
	diags, err := lint.RunPackage(pkg, []*lint.Analyzer{secretflow.Analyzer})
	if err != nil {
		t.Fatalf("run secretflow: %v", err)
	}
	if len(diags) != 2 {
		t.Fatalf("got %d diagnostics, want 2: %v", len(diags), diags)
	}
	for _, want := range []string{
		"misplaced //lint:secret directive: it must sit on a type, struct field, var, or func declaration",
		"lint:sanitizes directive needs a reason",
	} {
		found := false
		for _, d := range diags {
			if strings.Contains(d.Message, want) && filepath.Base(d.Pos.Filename) == "a.go" {
				found = true
			}
		}
		if !found {
			t.Errorf("no diagnostic matching %q in %v", want, diags)
		}
	}
}
