// Package secretflow enforces Authenticache's core security
// invariant as a taint property: secret-bearing state — raw error
// maps, derived map/session keys, unburned CRP pair material, WAL
// record payloads — must never reach a disclosure sink. Sinks are
// log/fmt output (including injected logger callbacks), error
// payloads (fmt.Errorf / errors.New arguments travel to clients in
// wire error frames), file writes outside internal/wal, and
// cache-entry stores (ADR-008: never persist secrets in cache
// entries).
//
// The heavy lifting happens in the lint framework's interprocedural
// dataflow engine (Pass.Dataflow): secrecy is seeded by a built-in
// list of repo types plus //lint:secret directives on type, field,
// var, and func declarations; //lint:sanitizes <reason> declares a
// function's output clean (hashing, burning, redaction); taint
// propagates through assignments, composites, ranges, and function
// calls/returns along the package call graph. A violation is reported
// at the point where the secret enters the sink path, with the full
// call chain to the sink.
//
// This analyzer also polices the directives themselves: a
// //lint:secret or //lint:sanitizes comment attached to nothing is
// reported (stale annotations must not silently rot), and
// //lint:sanitizes requires a reason, exactly like //lint:ignore.
package secretflow

import (
	"go/token"
	"strings"

	"repro/internal/lint"
)

// Analyzer is the secretflow entry point.
var Analyzer = &lint.Analyzer{
	Name: "secretflow",
	Doc:  "secret-bearing values (error maps, keys, CRP pairs, WAL payloads) must never flow to logs, error payloads, non-WAL file writes, or cache entries",
	Run:  run,
}

func run(pass *lint.Pass) error {
	if edgePackage(pass.PkgPath) {
		// CLIs and examples print provisioned keys as their user
		// interface (authd's PROVISION lines, demo output); the
		// invariant protects the server library and daemons' logs.
		return nil
	}
	df := pass.Dataflow()
	for _, ff := range df.All() {
		for _, f := range ff.Findings {
			if testPos(pass, f.Pos) {
				continue
			}
			src := f.Source
			if src == "" {
				src = "value"
			}
			msg := "secret " + src + " reaches " + f.Sink
			if len(f.Chain) > 0 {
				msg += " via " + strings.Join(f.Chain, " -> ")
			}
			pass.Reportf(f.Pos, "%s", msg)
		}
	}
	for _, d := range df.UnusedSecret {
		if testPos(pass, d.Pos) {
			continue
		}
		kind := "//lint:secret"
		if strings.Contains(d.Text, "lint:sanitizes") {
			kind = "//lint:sanitizes"
		}
		pass.Reportf(d.Pos, "misplaced %s directive: it must sit on a type, struct field, var, or func declaration", kind)
	}
	for _, d := range df.NoReasonSanitizes {
		if testPos(pass, d.Pos) {
			continue
		}
		pass.Reportf(d.Pos, "lint:sanitizes directive needs a reason: //lint:sanitizes <why the output is clean>")
	}
	return nil
}

// edgePackage mirrors ctxcheck's and goroleak's exemption: any path
// segment equal to cmd or examples.
func edgePackage(pkgPath string) bool {
	for _, seg := range strings.Split(pkgPath, "/") {
		if seg == "cmd" || seg == "examples" {
			return true
		}
	}
	return false
}

// testPos reports positions inside _test.go files; the vettool driver
// feeds test files into the pass, and test fixtures legitimately
// handle secrets loudly.
func testPos(pass *lint.Pass, pos token.Pos) bool {
	return strings.HasSuffix(pass.Fset.Position(pos).Filename, "_test.go")
}
