// Package secretdirs carries the directive-hygiene failure modes:
// a //lint:secret comment attached to nothing and a //lint:sanitizes
// without a reason. Both diagnostics anchor on the directive comment
// itself, so they are asserted programmatically in
// TestDirectiveHygiene (a want comment cannot share a //-comment's
// line).
package secretdirs

// doWork has a dangling directive inside its body: statements are not
// declarations, so the annotation protects nothing.
func doWork() int {
	//lint:secret dangling annotation
	x := 1
	return x
}

// Scrub claims to sanitize but gives no reason.
//
//lint:sanitizes
func Scrub(b []byte) []byte {
	for i := range b {
		b[i] = 0
	}
	return b
}
