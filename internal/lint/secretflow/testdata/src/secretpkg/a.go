// Package secretpkg exercises secretflow: directive-seeded secrets
// flowing into log, fmt, and error-payload sinks — directly, through
// a helper (chain reporting), and from a secret package var — plus
// the flows that must stay silent: hashing through a built-in
// sanitizer package and a declared //lint:sanitizes redactor.
package secretpkg

import (
	"crypto/sha256"
	"errors"
	"fmt"
	"log"
)

// Token is raw authentication key material.
//
//lint:secret raw device token
type Token struct {
	bits []byte
}

// masterSeed provisions fixture devices.
//
//lint:secret provisioning master seed
var masterSeed = []byte{1, 2, 3}

// Emit logs the token itself: a direct source-to-sink flow.
func Emit(t Token) {
	log.Printf("token=%v", t) // want "secret Token value \(declared //lint:secret\) reaches log output \(log\.Printf\)"
}

// logIt only forwards to the logger; the violation belongs to its
// callers, reported with the call chain.
func logIt(v any) {
	log.Println(v)
}

// EmitVia reaches the logger through a helper: the finding carries
// the chain.
func EmitVia(t Token) {
	logIt(t) // want "secret Token value \(declared //lint:secret\) reaches log output \(log\.Println\) via logIt"
}

// Describe puts key material into an error payload, which travels to
// clients inside wire error frames.
func Describe(t Token) error {
	return fmt.Errorf("bad token %v", t.bits) // want "secret Token value \(declared //lint:secret\) reaches error payload \(fmt\.Errorf\)"
}

// DumpSeed prints the seeded package var.
func DumpSeed() {
	fmt.Println(masterSeed) // want "secret masterSeed \(declared //lint:secret\) reaches fmt output \(fmt\.Println\)"
}

// Digest may log the hash: crypto/sha256 is a built-in sanitizer, so
// the digest is clean. No finding.
func Digest(t Token) {
	sum := sha256.Sum256(t.bits)
	log.Printf("digest=%x", sum)
}

// Redact replaces the token with a constant placeholder.
//
//lint:sanitizes output is a fixed placeholder, no key bits survive
func Redact(t Token) string {
	_ = t
	return "<token>"
}

// Show logs only the redacted form. No finding.
func Show(t Token) {
	log.Println(Redact(t))
}

// Sentinel returns a fixed error: errors.New is an error-payload
// sink, but nothing secret reaches it. No finding.
func Sentinel() error {
	return errors.New("fixture: static message")
}
