// Branch sensitivity: these cases pin the CFG-backed engine's strong
// updates. A reassignment to clean data kills taint on that path —
// and only that path — so masking one branch neither silences the
// sibling branch nor leaves ghost taint after both branches masked.
package secretpkg

import "log"

// ReassignClean overwrites the secret with a constant before the
// sink: the strong update kills the taint. No finding.
func ReassignClean(t Token) {
	b := t.bits
	b = []byte("public")
	log.Println(b)
}

// BranchLeak masks only the debug branch; the other branch still
// holds key material when it logs.
func BranchLeak(t Token, debug bool) {
	b := t.bits
	if debug {
		b = []byte("masked")
	} else {
		log.Println(b) // want "secret Token value \(declared //lint:secret\) reaches log output \(log\.Println\)"
	}
	_ = b
}

// MaskBothBranches masks on every path, so the post-join state is
// clean even though b was secret in between. No finding.
func MaskBothBranches(t Token, debug bool) {
	b := t.bits
	if debug {
		b = []byte("on")
	} else {
		b = []byte("off")
	}
	log.Println(b)
}

// SinkBeforeTaint logs b before the secret ever reaches it: under a
// flow-insensitive analysis the later assignment would smear
// backwards and produce a false positive here. No finding.
func SinkBeforeTaint(t Token) {
	var b []byte
	log.Println(b)
	b = t.bits
	_ = b
}
