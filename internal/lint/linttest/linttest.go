// Package linttest runs an analyzer over a fixture directory and
// checks its diagnostics against golden `// want` comments — a
// dependency-free analogue of golang.org/x/tools/go/analysis/
// analysistest.
//
// A fixture line that should trigger a diagnostic carries a trailing
// comment of the form
//
//	code() // want "regexp"  ("second regexp" ...)
//
// Every want must be matched by a diagnostic on its line (message
// matched as an unanchored regexp) and every diagnostic must be
// wanted; anything else fails the test. Because an analyzer weakened
// to a no-op matches zero wants, the golden files double as liveness
// tests for the analyzers themselves.
package linttest

import (
	"fmt"
	"regexp"
	"strings"
	"testing"

	"repro/internal/lint"
)

// want is one expected diagnostic.
type want struct {
	file    string
	line    int
	pattern *regexp.Regexp
	matched bool
}

// Run loads the package rooted at dir, applies the analyzer, and
// compares diagnostics against the fixture's want comments.
func Run(t *testing.T, a *lint.Analyzer, dir string) {
	t.Helper()
	pkg, err := lint.LoadDir(dir)
	if err != nil {
		t.Fatalf("load fixture %s: %v", dir, err)
	}
	for _, terr := range pkg.TypeErrors {
		t.Errorf("fixture %s does not type-check: %v", dir, terr)
	}
	diags, err := lint.RunPackage(pkg, []*lint.Analyzer{a})
	if err != nil {
		t.Fatalf("run %s on %s: %v", a.Name, dir, err)
	}
	wants, err := parseWants(pkg)
	if err != nil {
		t.Fatalf("parse wants in %s: %v", dir, err)
	}

	for _, d := range diags {
		if !matchWant(wants, d) {
			t.Errorf("unexpected diagnostic %s", d)
		}
	}
	for _, w := range wants {
		if !w.matched {
			t.Errorf("%s:%d: expected diagnostic matching %q, got none", w.file, w.line, w.pattern)
		}
	}
}

// matchWant marks and reports the first unmatched want covering d.
func matchWant(wants []*want, d lint.Diagnostic) bool {
	for _, w := range wants {
		if w.matched || w.file != d.Pos.Filename || w.line != d.Pos.Line {
			continue
		}
		if w.pattern.MatchString(d.Message) {
			w.matched = true
			return true
		}
	}
	return false
}

// wantRE captures each quoted pattern after a `// want` marker.
var wantRE = regexp.MustCompile(`"((?:[^"\\]|\\.)*)"`)

// parseWants extracts want comments from the fixture files.
func parseWants(pkg *lint.Package) ([]*want, error) {
	var out []*want
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
				if !strings.HasPrefix(text, "want ") {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				for _, m := range wantRE.FindAllStringSubmatch(text[len("want "):], -1) {
					unquoted := strings.ReplaceAll(m[1], `\"`, `"`)
					re, err := regexp.Compile(unquoted)
					if err != nil {
						return nil, fmt.Errorf("%s:%d: bad want pattern %q: %w", pos.Filename, pos.Line, m[1], err)
					}
					out = append(out, &want{file: pos.Filename, line: pos.Line, pattern: re})
				}
			}
		}
	}
	return out, nil
}
