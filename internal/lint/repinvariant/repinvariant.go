// Package repinvariant checks the cluster replication protocol's
// structural invariants — the properties PROTOCOL.md's replication
// section promises and a code review can silently lose:
//
//   - Term monotonicity: a replication term is a fencing token, so
//     comparing two terms with == or != accepts (or rejects) exactly
//     one history and breaks monotonic takeover. Every term
//     comparison must be ordered (<, <=, >, >=); equality acceptance
//     of a stale term is how a deposed primary keeps writing.
//
//   - Quorum journalling: in a package that implements the
//     replication wait (declares waitReplicated), every Journal*
//     mutation path must transitively reach waitReplicated before it
//     can return — a journal method that skips the quorum ack
//     acknowledges writes a failover can lose.
//
//   - Client-port fencing: replication opcodes are spoken only on the
//     dedicated replication listener. A
//     //lint:repfence <path>#<section> [type=] [prefix=] [reject=]
//     directive pins a client-facing dispatch file against the
//     PROTOCOL.md opcode table: no case in the file's switches over
//     the opcode type may match a rejected (rep_*) table row, and the
//     dispatch must keep a default arm so unknown opcodes are
//     refused, not ignored.
//
//   - Goroutine lifecycle: in a replication package (one declaring
//     waitReplicated), every goroutine launch must be accounted —
//     wg.Add(1) immediately before the go statement and a deferred
//     wg.Done() in the launched body — so Close can actually wait for
//     heartbeat/lease/stream goroutines to terminate (goroleak's
//     termination rules, made structural).
//
// Test files are exempt throughout: tests legitimately pin exact
// terms and launch helper goroutines.
package repinvariant

import (
	"errors"
	"fmt"
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"path/filepath"
	"strings"

	"repro/internal/lint"
)

// Analyzer is the repinvariant entry point.
var Analyzer = &lint.Analyzer{
	Name: "repinvariant",
	Doc:  "replication invariants: monotonic term comparisons, Journal* paths reach the quorum ack, rep opcodes fenced off the client port, accounted goroutine lifecycles",
	Run:  run,
}

func run(pass *lint.Pass) error {
	checkTermComparisons(pass)
	checkQuorumJournal(pass)
	checkRepFences(pass)
	return nil
}

func testFile(pass *lint.Pass, n ast.Node) bool {
	return strings.HasSuffix(pass.Fset.Position(n.Pos()).Filename, "_test.go")
}

// --- Term monotonicity -----------------------------------------------------

// termLike reports whether e names a replication term: an identifier
// or field selector whose final name is "term" or ends in "Term".
func termLike(e ast.Expr) bool {
	var name string
	switch x := ast.Unparen(e).(type) {
	case *ast.Ident:
		name = x.Name
	case *ast.SelectorExpr:
		name = x.Sel.Name
	default:
		return false
	}
	lower := strings.ToLower(name)
	return lower == "term" || strings.HasSuffix(lower, "term")
}

// checkTermComparisons flags ==/!= between two term-named values.
func checkTermComparisons(pass *lint.Pass) {
	for _, f := range pass.Files {
		if testFile(pass, f) {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			be, ok := n.(*ast.BinaryExpr)
			if !ok || (be.Op != token.EQL && be.Op != token.NEQ) {
				return true
			}
			if !termLike(be.X) || !termLike(be.Y) {
				return true
			}
			pass.Reportf(be.Pos(),
				"term comparison with %s is not monotonic: a term is a fencing token, compare with an ordering (>=, >) so stale terms are rejected and newer ones win",
				be.Op)
			return true
		})
	}
}

// --- Quorum journalling ----------------------------------------------------

// quorumAnchor is the function every mutation path must reach before
// replying; declaring it marks a package as a replication
// implementation.
const quorumAnchor = "waitReplicated"

// replicationPackage reports whether the package declares the quorum
// anchor, returning its call-graph presence.
func replicationPackage(cg *lint.CallGraph) bool {
	for _, node := range cg.All() {
		if node.Func.Name() == quorumAnchor {
			return true
		}
	}
	return false
}

// checkQuorumJournal requires every Journal* method in a replication
// package to transitively reach waitReplicated, and polices goroutine
// lifecycles in the same scope.
func checkQuorumJournal(pass *lint.Pass) {
	cg := pass.CallGraph()
	if !replicationPackage(cg) {
		return
	}
	// reaches memoises "can this function reach the anchor".
	reaches := make(map[*types.Func]bool)
	var walk func(fn *types.Func, seen map[*types.Func]bool) bool
	walk = func(fn *types.Func, seen map[*types.Func]bool) bool {
		if done, ok := reaches[fn]; ok {
			return done
		}
		if seen[fn] {
			return false
		}
		seen[fn] = true
		node := cg.Nodes[fn]
		if node == nil {
			return false
		}
		for _, site := range node.Sites {
			if site.Callee.Name() == quorumAnchor {
				reaches[fn] = true
				return true
			}
			for _, t := range site.Targets {
				if walk(t, seen) {
					reaches[fn] = true
					return true
				}
			}
		}
		return false
	}
	for _, node := range cg.All() {
		if !strings.HasPrefix(node.Func.Name(), "Journal") {
			continue
		}
		if testFile(pass, node.Decl) {
			continue
		}
		if !walk(node.Func, make(map[*types.Func]bool)) {
			pass.Reportf(node.Decl.Pos(),
				"mutation path %s never reaches %s: replies must wait for the quorum-ack cluster journal, or a failover loses the write",
				node.Func.Name(), quorumAnchor)
		}
	}
	checkGoroutineLifecycles(pass, cg)
}

// checkGoroutineLifecycles enforces wg.Add(1)-before-go and deferred
// wg.Done() inside launched bodies, in replication packages only.
func checkGoroutineLifecycles(pass *lint.Pass, cg *lint.CallGraph) {
	for _, f := range pass.Files {
		if testFile(pass, f) {
			continue
		}
		// Map each go statement to the statement preceding it in its
		// block.
		ast.Inspect(f, func(n ast.Node) bool {
			block, ok := n.(*ast.BlockStmt)
			if !ok {
				return true
			}
			for i, st := range block.List {
				gs, ok := st.(*ast.GoStmt)
				if !ok {
					continue
				}
				var prev ast.Stmt
				if i > 0 {
					prev = block.List[i-1]
				}
				checkOneLaunch(pass, cg, gs, prev)
			}
			return true
		})
		// go statements that are not direct block members (e.g. inside
		// an if without braces — impossible in Go — or case clauses).
		ast.Inspect(f, func(n ast.Node) bool {
			cc, ok := n.(*ast.CaseClause)
			if !ok {
				return true
			}
			for i, st := range cc.Body {
				gs, ok := st.(*ast.GoStmt)
				if !ok {
					continue
				}
				var prev ast.Stmt
				if i > 0 {
					prev = cc.Body[i-1]
				}
				checkOneLaunch(pass, cg, gs, prev)
			}
			return true
		})
	}
}

// checkOneLaunch validates one go statement's accounting.
func checkOneLaunch(pass *lint.Pass, cg *lint.CallGraph, gs *ast.GoStmt, prev ast.Stmt) {
	if !isWaitGroupCallStmt(pass.TypesInfo, prev, "Add") {
		pass.Reportf(gs.Pos(),
			"goroutine launched without lifecycle accounting: precede the go statement with wg.Add(1) so Close can wait for termination")
		return
	}
	if !launchDefersDone(pass.TypesInfo, cg, gs.Call) {
		pass.Reportf(gs.Pos(),
			"launched goroutine never defers wg.Done(): the matching wg.Add(1) makes Close wait forever")
	}
}

// isWaitGroupCallStmt reports whether st is a bare call to
// (*sync.WaitGroup).<name>.
func isWaitGroupCallStmt(info *types.Info, st ast.Stmt, name string) bool {
	es, ok := st.(*ast.ExprStmt)
	if !ok {
		return false
	}
	call, ok := es.X.(*ast.CallExpr)
	if !ok {
		return false
	}
	return isWaitGroupCall(info, call, name)
}

func isWaitGroupCall(info *types.Info, call *ast.CallExpr, name string) bool {
	obj := lint.CalleeObject(info, call)
	return obj != nil && obj.Pkg() != nil && obj.Pkg().Path() == "sync" &&
		obj.Name() == name
}

// launchDefersDone reports whether the launched call's body defers
// wg.Done(): a function literal is inspected directly, a named
// in-package callee through the call graph. Unresolvable callees
// (external functions, func values) pass — the launch was accounted,
// and the body is outside this package's view.
func launchDefersDone(info *types.Info, cg *lint.CallGraph, call *ast.CallExpr) bool {
	if lit, ok := ast.Unparen(call.Fun).(*ast.FuncLit); ok {
		found := false
		ast.Inspect(lit.Body, func(n ast.Node) bool {
			ds, ok := n.(*ast.DeferStmt)
			if ok && isWaitGroupCall(info, ds.Call, "Done") {
				found = true
			}
			return !found
		})
		return found
	}
	obj := lint.CalleeObject(info, call)
	fn, ok := obj.(*types.Func)
	if !ok {
		return true
	}
	node := cg.Nodes[fn]
	if node == nil {
		return true
	}
	for _, site := range node.Sites {
		if site.Defer && site.Callee.Pkg() != nil &&
			site.Callee.Pkg().Path() == "sync" && site.Callee.Name() == "Done" {
			return true
		}
	}
	return false
}

// --- Client-port fencing ---------------------------------------------------

// fencePrefix introduces a client-port fence directive.
const fencePrefix = "//lint:repfence "

// fenceDirective is one parsed //lint:repfence comment.
type fenceDirective struct {
	rel      string // markdown path relative to the directive's file
	section  string // heading slug scoping the scan; "" = whole file
	typeName string // opcode type the dispatch switches on (default "Opcode")
	prefix   string // constant prefix (default "Op")
	reject   string // table-row prefix that must be fenced (default "rep_")
}

// parseFence splits
// `<path>[#section] [type=T] [prefix=P] [reject=R]`.
func parseFence(rest string) (fenceDirective, error) {
	fields := strings.Fields(rest)
	if len(fields) == 0 {
		return fenceDirective{}, fmt.Errorf("expected //lint:repfence <path>[#section] [type=TypeName] [prefix=Prefix] [reject=row_prefix]")
	}
	d := fenceDirective{typeName: "Opcode", prefix: "Op", reject: "rep_"}
	d.rel, d.section, _ = strings.Cut(fields[0], "#")
	for _, f := range fields[1:] {
		key, val, ok := strings.Cut(f, "=")
		if !ok || val == "" {
			return fenceDirective{}, fmt.Errorf("malformed option %q: want key=value", f)
		}
		switch key {
		case "type":
			d.typeName = val
		case "prefix":
			d.prefix = val
		case "reject":
			d.reject = val
		default:
			return fenceDirective{}, fmt.Errorf("unknown option %q: want type=, prefix= or reject=", key)
		}
	}
	return d, nil
}

// checkRepFences validates every //lint:repfence directive: the
// directive's file is a client-facing dispatch, and none of its
// switches over the opcode type may accept a fenced table row.
func checkRepFences(pass *lint.Pass) {
	for _, f := range pass.Files {
		if testFile(pass, f) {
			continue
		}
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if !strings.HasPrefix(c.Text, fencePrefix) {
					continue
				}
				rest := strings.TrimSpace(strings.TrimPrefix(c.Text, fencePrefix))
				d, err := parseFence(rest)
				if err != nil {
					pass.Reportf(c.Pos(), "malformed repfence directive: %v", err)
					continue
				}
				checkOneFence(pass, f, c, d)
			}
		}
	}
}

// checkOneFence applies one directive to its file.
func checkOneFence(pass *lint.Pass, f *ast.File, c *ast.Comment, d fenceDirective) {
	dir := filepath.Dir(pass.Fset.Position(c.Pos()).Filename)
	lines, err := lint.MarkdownSection(filepath.Join(dir, d.rel), d.section)
	if err != nil {
		if errors.Is(err, lint.ErrNoSection) {
			pass.Reportf(c.Pos(), "repfence target %s has no section #%s", d.rel, d.section)
		} else {
			pass.Reportf(c.Pos(), "repfence target %s is unreadable: %v", d.rel, err)
		}
		return
	}
	rows, order := lint.TableRows(lines)
	// The fenced rows: table entries the client port must reject.
	fenced := make(map[string]int64)
	for _, name := range order {
		if strings.HasPrefix(name, d.reject) {
			fenced[name] = rows[name]
		}
	}
	if len(fenced) == 0 {
		pass.Reportf(c.Pos(), "repfence target %s lists no %s* rows: nothing to fence", d.rel, d.reject)
		return
	}

	found := false
	ast.Inspect(f, func(n ast.Node) bool {
		sw, ok := n.(*ast.SwitchStmt)
		if !ok || sw.Tag == nil {
			return true
		}
		tv, ok := pass.TypesInfo.Types[sw.Tag]
		if !ok || !namedTypeIs(tv.Type, d.typeName) {
			return true
		}
		found = true
		fenceSwitch(pass, sw, d, fenced)
		return true
	})
	if !found {
		pass.Reportf(c.Pos(), "repfence directive fences nothing: no switch over %s in this file", d.typeName)
	}
}

// namedTypeIs reports whether t (or its pointee) is a named type
// called name.
func namedTypeIs(t types.Type, name string) bool {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	return ok && named.Obj().Name() == name
}

// fenceSwitch checks one dispatch switch against the fenced rows.
func fenceSwitch(pass *lint.Pass, sw *ast.SwitchStmt, d fenceDirective, fenced map[string]int64) {
	hasDefault := false
	for _, clause := range sw.Body.List {
		cc, ok := clause.(*ast.CaseClause)
		if !ok {
			continue
		}
		if cc.List == nil {
			hasDefault = true
			continue
		}
		for _, e := range cc.List {
			name, val := caseConstant(pass.TypesInfo, e)
			for row, rowVal := range fenced {
				wantConst := d.prefix + snakeToCamel(row)
				if name == wantConst || (val != nil && constant.Compare(*val, token.EQL, constant.MakeInt64(rowVal))) {
					pass.Reportf(e.Pos(),
						"client port accepts replication opcode %s (%s = %d): PROTOCOL.md confines %s* opcodes to the replication listener; reject them with the default arm",
						row, wantConst, rowVal, d.reject)
				}
			}
		}
	}
	if !hasDefault {
		pass.Reportf(sw.Pos(),
			"client-port dispatch on %s has no default arm: unknown and replication opcodes must be rejected, not ignored",
			d.typeName)
	}
}

// caseConstant resolves a case expression to its constant name and
// value (either may be missing).
func caseConstant(info *types.Info, e ast.Expr) (string, *constant.Value) {
	name := ""
	switch x := ast.Unparen(e).(type) {
	case *ast.Ident:
		if obj := info.Uses[x]; obj != nil {
			name = obj.Name()
		}
	case *ast.SelectorExpr:
		if obj := info.Uses[x.Sel]; obj != nil {
			name = obj.Name()
		}
	}
	if tv, ok := info.Types[e]; ok && tv.Value != nil {
		return name, &tv.Value
	}
	return name, nil
}

// snakeToCamel maps a table-row name onto its constant spelling:
// rep_hello → RepHello.
func snakeToCamel(s string) string {
	var b strings.Builder
	up := true
	for _, r := range s {
		if r == '_' || r == '-' {
			up = true
			continue
		}
		if up && r >= 'a' && r <= 'z' {
			r -= 'a' - 'A'
		}
		up = false
		b.WriteRune(r)
	}
	return b.String()
}
