package repinvariant_test

import (
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/lint"
	"repro/internal/lint/linttest"
	"repro/internal/lint/repinvariant"
)

// TestTermMonotonicity covers the ==/!= term comparison check.
func TestTermMonotonicity(t *testing.T) {
	linttest.Run(t, repinvariant.Analyzer, "testdata/src/termpkg")
}

// TestQuorumJournal covers the Journal*-reaches-waitReplicated check
// and the goroutine lifecycle rules it scopes.
func TestQuorumJournal(t *testing.T) {
	linttest.Run(t, repinvariant.Analyzer, "testdata/src/quorumpkg")
}

// TestRepFence covers the client-port fence against a local opcode
// table: constant-name match, value match, and the default-arm
// requirement.
func TestRepFence(t *testing.T) {
	linttest.Run(t, repinvariant.Analyzer, "testdata/src/fencepkg")
}

// TestFenceDirectiveErrors asserts the directive failure modes
// programmatically: all three anchor on the directive comment, and a
// want comment cannot share a //-comment's line.
func TestFenceDirectiveErrors(t *testing.T) {
	pkg, err := lint.LoadDir("testdata/src/fencebad")
	if err != nil {
		t.Fatalf("load fixture: %v", err)
	}
	diags, err := lint.RunPackage(pkg, []*lint.Analyzer{repinvariant.Analyzer})
	if err != nil {
		t.Fatalf("run repinvariant: %v", err)
	}
	if len(diags) != 3 {
		t.Fatalf("got %d diagnostics, want 3: %v", len(diags), diags)
	}
	for _, want := range []string{
		"repfence target missing.md is unreadable",
		"repfence target table.md has no section #no-such-section",
		"repfence directive fences nothing: no switch over Opcode in this file",
	} {
		found := false
		for _, d := range diags {
			if strings.Contains(d.Message, want) && filepath.Base(d.Pos.Filename) == "a.go" {
				found = true
			}
		}
		if !found {
			t.Errorf("no diagnostic matching %q in %v", want, diags)
		}
	}
}
