// Package termpkg exercises the term-monotonicity check: equality
// comparisons between term-named values are flagged, ordered
// comparisons and unrelated equalities stay silent.
package termpkg

type status struct {
	term uint64
}

// Accept equality-matches the local term: exactly one history is
// accepted, so a newer primary's records are refused.
func Accept(s status, msgTerm uint64) bool {
	return s.term == msgTerm // want "term comparison with == is not monotonic"
}

// Reject inverts the same bug.
func Reject(s status, peerTerm uint64) bool {
	return s.term != peerTerm // want "term comparison with != is not monotonic"
}

// Ordered is the fencing-token shape: stale rejected, newer wins. No
// finding.
func Ordered(s status, msgTerm uint64) bool {
	return msgTerm >= s.term
}

// Same compares non-term values: equality is fine outside term logic.
// No finding.
func Same(a, b int) bool {
	return a == b
}
