// Package fencebad carries the repfence directive failure modes: an
// unreadable target, a missing section, and a directive over a file
// with no Opcode switch. All three anchor on the directive comment,
// so they are asserted programmatically in TestFenceDirectiveErrors.
package fencebad

//lint:repfence missing.md#opcode-table

//lint:repfence table.md#no-such-section

//lint:repfence table.md#opcode-table

// Opcode exists, but no function switches over it.
type Opcode uint8

// Consume keeps the type used without a dispatch.
func Consume(op Opcode) uint8 { return uint8(op) }
