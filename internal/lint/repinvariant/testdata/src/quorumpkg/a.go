// Package quorumpkg exercises the quorum-journal and goroutine
// lifecycle checks. Declaring waitReplicated opts the package in:
// every Journal* path must reach it, and every goroutine launch must
// be accounted with wg.Add(1) before and a deferred wg.Done inside.
package quorumpkg

import "sync"

type node struct {
	wg   sync.WaitGroup
	acks chan int
}

// waitReplicated is the quorum anchor: it blocks until enough
// followers acknowledged.
func (n *node) waitReplicated() {
	<-n.acks
}

// JournalEnroll reaches the anchor through a helper. No finding.
func (n *node) JournalEnroll() {
	n.commit()
}

func (n *node) commit() {
	n.waitReplicated()
}

// JournalBurn replies without waiting for the quorum: a failover can
// lose the write.
func (n *node) JournalBurn() {} // want "mutation path JournalBurn never reaches waitReplicated"

// accounted is the required launch shape. No finding.
func (n *node) accounted() {
	n.wg.Add(1)
	go func() {
		defer n.wg.Done()
		n.waitReplicated()
	}()
}

// unaccounted launches without wg.Add(1): Close cannot wait for it.
func (n *node) unaccounted() {
	go func() { // want "goroutine launched without lifecycle accounting"
		n.waitReplicated()
	}()
}

// neverDone adds to the group but the body never defers Done: Close
// waits forever.
func (n *node) neverDone() {
	n.wg.Add(1)
	go func() { // want "launched goroutine never defers wg\.Done"
		n.waitReplicated()
	}()
}
