// Package fencepkg exercises the client-port fence: the directive
// below pins every switch over Opcode in this file against the
// rep_* rows of table.md's opcode table.
package fencepkg

//lint:repfence table.md#opcode-table

// Opcode discriminates fixture frames.
type Opcode uint8

const (
	OpAuth     Opcode = 1
	OpRepHello Opcode = 10
	OpRepAck   Opcode = 13
)

// Dispatch fences correctly: client opcodes only, default rejects.
// No finding.
func Dispatch(op Opcode) int {
	switch op {
	case OpAuth:
		return 1
	default:
		return 0
	}
}

// Leaky accepts a replication opcode by constant name, and its
// missing default arm ignores unknown opcodes instead of rejecting
// them.
func Leaky(op Opcode) int {
	switch op { // want "client-port dispatch on Opcode has no default arm"
	case OpAuth:
		return 1
	case OpRepHello: // want "client port accepts replication opcode rep_hello"
		return 2
	}
	return 0
}

// ByValue accepts a fenced row by literal value: renaming the
// constant must not open the port.
func ByValue(op Opcode) int {
	switch op {
	case 13: // want "client port accepts replication opcode rep_ack"
		return 1
	default:
		return 0
	}
}
