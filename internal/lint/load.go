package lint

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one loaded, parsed, type-checked package.
type Package struct {
	PkgPath string
	Name    string
	Dir     string
	Fset    *token.FileSet
	Files   []*ast.File
	Types   *types.Package
	Info    *types.Info
	// TypeErrors holds soft type-check problems. The analyzers run
	// anyway (the checker recovers and still populates Info), but the
	// driver surfaces them so a broken tree isn't silently half-
	// checked.
	TypeErrors []error

	// cg is the lazily built call graph, shared by every analyzer of
	// this package via Pass.CallGraph().
	cg *CallGraph
	// df is the lazily built taint dataflow, shared the same way via
	// Pass.Dataflow().
	df *Dataflow
	// cfgs caches per-function control-flow graphs, shared the same
	// way via Pass.CFG(fn).
	cfgs map[*ast.FuncDecl]*CFG
}

// listedPackage is the subset of `go list -json` output the loader
// needs.
type listedPackage struct {
	Dir        string
	ImportPath string
	Name       string
	Standard   bool
	GoFiles    []string
	Imports    []string
}

// Load expands patterns with `go list` inside dir and returns the
// matched packages, parsed and type-checked. Module-internal imports
// are type-checked from source in dependency order; standard-library
// imports resolve through go/importer's source importer.
func Load(dir string, patterns ...string) ([]*Package, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	// The full dependency closure, dependencies first.
	deps, err := goList(dir, append([]string{"-deps"}, patterns...))
	if err != nil {
		return nil, err
	}
	// The packages the patterns name (the ones to report on).
	roots, err := goList(dir, patterns)
	if err != nil {
		return nil, err
	}
	rootSet := make(map[string]bool, len(roots))
	for _, p := range roots {
		rootSet[p.ImportPath] = true
	}

	fset := token.NewFileSet()
	ld := &loader{
		fset:    fset,
		std:     importer.ForCompiler(fset, "source", nil),
		checked: make(map[string]*types.Package),
	}
	var out []*Package
	for _, lp := range deps {
		if lp.Standard {
			continue // resolved lazily by the source importer
		}
		pkg, err := ld.check(lp)
		if err != nil {
			return nil, err
		}
		if rootSet[lp.ImportPath] {
			out = append(out, pkg)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].PkgPath < out[j].PkgPath })
	return out, nil
}

// goList runs `go list -json` with args inside dir.
func goList(dir string, args []string) ([]*listedPackage, error) {
	cmd := exec.Command("go", append([]string{"list", "-json"}, args...)...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	outBytes, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("lint: go list %s: %v\n%s", strings.Join(args, " "), err, stderr.String())
	}
	dec := json.NewDecoder(bytes.NewReader(outBytes))
	var out []*listedPackage
	for dec.More() {
		var p listedPackage
		if err := dec.Decode(&p); err != nil {
			return nil, fmt.Errorf("lint: decode go list output: %w", err)
		}
		out = append(out, &p)
	}
	return out, nil
}

// loader type-checks module packages in dependency order, chaining to
// the source importer for the standard library.
type loader struct {
	fset    *token.FileSet
	std     types.Importer
	checked map[string]*types.Package
}

// Import implements types.Importer: module packages come from the
// already-checked set, everything else from the stdlib source
// importer.
func (ld *loader) Import(path string) (*types.Package, error) {
	if pkg, ok := ld.checked[path]; ok {
		return pkg, nil
	}
	return ld.std.Import(path)
}

// check parses and type-checks one listed package.
func (ld *loader) check(lp *listedPackage) (*Package, error) {
	var files []*ast.File
	for _, name := range lp.GoFiles {
		path := filepath.Join(lp.Dir, name)
		f, err := parser.ParseFile(ld.fset, path, nil, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("lint: parse %s: %w", path, err)
		}
		files = append(files, f)
	}
	pkg, info, terrs := typeCheck(ld.fset, ld, lp.ImportPath, files)
	ld.checked[lp.ImportPath] = pkg
	return &Package{
		PkgPath:    lp.ImportPath,
		Name:       lp.Name,
		Dir:        lp.Dir,
		Fset:       ld.fset,
		Files:      files,
		Types:      pkg,
		Info:       info,
		TypeErrors: terrs,
	}, nil
}

// typeCheck runs the types checker, collecting soft errors instead of
// stopping at the first.
func typeCheck(fset *token.FileSet, imp types.Importer, path string, files []*ast.File) (*types.Package, *types.Info, []error) {
	var terrs []error
	conf := types.Config{
		Importer: imp,
		Error:    func(err error) { terrs = append(terrs, err) },
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	pkg, _ := conf.Check(path, fset, files, info) // errors already collected
	return pkg, info, terrs
}

// LoadDir parses and type-checks the single package rooted at dir —
// the fixture loader behind linttest. The synthesized import path is
// dir's path relative to the nearest "src" ancestor (mirroring the
// analysistest testdata/src convention), so fixtures can exercise
// path-sensitive rules (e.g. ctxcheck's cmd/ exemption).
func LoadDir(dir string) (*Package, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("lint: read fixture dir: %w", err)
	}
	fset := token.NewFileSet()
	var files []*ast.File
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		path := filepath.Join(dir, e.Name())
		f, err := parser.ParseFile(fset, path, nil, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("lint: parse %s: %w", path, err)
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("lint: no Go files in %s", dir)
	}
	pkgPath := fixturePath(dir)
	imp := importer.ForCompiler(fset, "source", nil)
	pkg, info, terrs := typeCheck(fset, imp, pkgPath, files)
	name := ""
	if pkg != nil {
		name = pkg.Name()
	}
	return &Package{
		PkgPath:    pkgPath,
		Name:       name,
		Dir:        dir,
		Fset:       fset,
		Files:      files,
		Types:      pkg,
		Info:       info,
		TypeErrors: terrs,
	}, nil
}

// TypeCheckFiles type-checks already-parsed files as one package with
// an explicit importer — the entry point for the vettool driver,
// which resolves imports from cmd/go's pre-built export data instead
// of from source.
func TypeCheckFiles(fset *token.FileSet, imp types.Importer, pkgPath, dir string, files []*ast.File) (*Package, error) {
	pkg, info, terrs := typeCheck(fset, imp, pkgPath, files)
	if pkg == nil {
		return nil, fmt.Errorf("lint: type-checking %s produced no package", pkgPath)
	}
	return &Package{
		PkgPath:    pkgPath,
		Name:       pkg.Name(),
		Dir:        dir,
		Fset:       fset,
		Files:      files,
		Types:      pkg,
		Info:       info,
		TypeErrors: terrs,
	}, nil
}

// fixturePath derives the synthetic import path for a fixture dir:
// the segments after the last "src" element, or the base name.
func fixturePath(dir string) string {
	clean := filepath.ToSlash(filepath.Clean(dir))
	parts := strings.Split(clean, "/")
	for i := len(parts) - 1; i >= 0; i-- {
		if parts[i] == "src" && i < len(parts)-1 {
			return strings.Join(parts[i+1:], "/")
		}
	}
	return filepath.Base(clean)
}
