// Package auth (fixture) exercises the ignore-directive lifecycle:
// one directive that suppresses a real errtaxonomy finding, and one
// stale directive with nothing to suppress.
package auth

import "errors"

// Bad returns a bare error; the directive suppresses the finding.
func Bad() error {
	//lint:ignore errtaxonomy fixture exception with a reason
	return errors.New("bare")
}

// Good returns nil; the directive below it suppresses nothing and
// must be reported as unused.
func Good() error {
	//lint:ignore errtaxonomy stale excuse for a finding that no longer exists
	return nil
}
