// Package poolix exercises the //lint:ignore lifecycle against the
// flow-sensitive analyzers: a used suppression of a real poolsafe
// leak, a stale poolsafe directive over clean code, and a resleak
// directive that only a resleak run may judge.
package poolix

//lint:pool get=grab put=release

type entry struct{ b []byte }

var free []*entry

func grab() *entry     { return &entry{} }
func release(e *entry) { free = append(free, e) }

// Suppressed drops the entry on the fast path; the directive excuses
// it with a reason, so the finding is swallowed silently.
func Suppressed(fast bool) {
	//lint:ignore poolsafe fixture exercises a sanctioned fast-path drop
	e := grab()
	if fast {
		return
	}
	release(e)
}

// Clean owes nothing, which makes its directive stale armor: the
// framework must report the directive itself.
func Clean() {
	//lint:ignore poolsafe nothing is reported here, the directive is stale
	e := grab()
	defer release(e)
	e.b = e.b[:0]
}

// Stale resleak directive: only a run that includes resleak may flag
// it — a poolsafe-only pass cannot judge it.
func Quiet() {
	//lint:ignore resleak stale directive for an analyzer that may not have run
	x := 1
	_ = x
}
