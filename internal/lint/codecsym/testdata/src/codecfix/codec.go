// Package codecfix exercises codecsym end to end: encoder/decoder
// pairing, field-sequence symmetry, and drift against the pinned
// opcode table in table.md.
package codecfix

import "encoding/binary"

//lint:recordtable table.md#opcodes type=Opcode prefix=Op

// Opcode discriminates frames.
type Opcode uint8

// The fixture opcodes.
const (
	OpPing  Opcode = 1
	OpData  Opcode = 2
	OpVec   Opcode = 3
	OpDrift Opcode = 4
	OpBad   Opcode = 5
	OpLost  Opcode = 6
	OpNoRow Opcode = 7
)

func beginFrame(dst []byte, stream uint32, op Opcode) ([]byte, int) {
	return append(dst, byte(op)), len(dst)
}

// AppendPing / DecodePing agree with each other and with the table.
func AppendPing(dst []byte, stream uint32, v uint32) []byte {
	dst, _ = beginFrame(dst, stream, OpPing)
	dst = binary.BigEndian.AppendUint32(dst, v)
	return dst
}

func DecodePing(p []byte) uint32 {
	return binary.BigEndian.Uint32(p)
}

// AppendData emits u32+bytes; DecodeData reads the count at the wrong
// width.
func AppendData(dst []byte, stream uint32, n uint32, body []byte) []byte { // want "codec asymmetry: AppendData emits .u32 bytes. but DecodeData consumes .u64 bytes."
	dst, _ = beginFrame(dst, stream, OpData)
	dst = binary.BigEndian.AppendUint32(dst, n)
	dst = append(dst, body...)
	return dst
}

func DecodeData(p []byte) (uint64, []byte) {
	n := binary.BigEndian.Uint64(p)
	return n, p[8:]
}

// AppendVec / DecodeVec agree, including the repeated group.
func AppendVec(dst []byte, stream uint32, id uint64, items []uint32) []byte {
	dst, _ = beginFrame(dst, stream, OpVec)
	dst = binary.BigEndian.AppendUint64(dst, id)
	for _, it := range items {
		dst = binary.BigEndian.AppendUint32(dst, it)
		dst = binary.BigEndian.AppendUint32(dst, it+1)
	}
	return dst
}

func DecodeVec(p []byte) (uint64, []uint32) {
	id := binary.BigEndian.Uint64(p)
	p = p[8:]
	var out []uint32
	for len(p) >= 8 {
		a := binary.BigEndian.Uint32(p)
		b := binary.BigEndian.Uint32(p[4:])
		out = append(out, a, b)
		p = p[8:]
	}
	return id, out
}

// AppendDrift and DecodeDrift agree with each other but not with the
// pinned table, which still documents a u16.
func AppendDrift(dst []byte, stream uint32, v uint32) []byte { // want "payload drift: AppendDrift emits .u32. but the pinned opcode table documents .drift. as .u16."
	dst, _ = beginFrame(dst, stream, OpDrift)
	dst = binary.BigEndian.AppendUint32(dst, v)
	return dst
}

func DecodeDrift(p []byte) uint32 {
	return binary.BigEndian.Uint32(p)
}

// AppendBad's table row does not parse as a payload grammar.
func AppendBad(dst []byte, stream uint32, flag byte) []byte { // want "opcode table payload cell for .bad. does not parse"
	dst, _ = beginFrame(dst, stream, OpBad)
	dst = append(dst, flag)
	return dst
}

func DecodeBad(p []byte) byte {
	return p[0]
}

// AppendLost has no decoder at all: its payload can never be read
// back.
func AppendLost(dst []byte, stream uint32, v uint16) []byte { // want "encoder AppendLost .opcode OpLost. has no DecodeLost counterpart"
	dst, _ = beginFrame(dst, stream, OpLost)
	dst = binary.BigEndian.AppendUint16(dst, v)
	return dst
}

// AppendNoRow round-trips fine but was never added to the table.
func AppendNoRow(dst []byte, stream uint32, v uint32) []byte { // want "opcode OpNoRow has no payload row .no_row. in the pinned opcode table"
	dst, _ = beginFrame(dst, stream, OpNoRow)
	dst = binary.BigEndian.AppendUint32(dst, v)
	return dst
}

func DecodeNoRow(p []byte) uint32 {
	return binary.BigEndian.Uint32(p)
}
