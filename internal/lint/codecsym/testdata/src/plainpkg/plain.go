// Package plainpkg grows byte slices with Append* helpers but never
// opens a frame: codecsym must not mistake it for a codec.
package plainpkg

import "encoding/binary"

// AppendHeader writes a fixed header. No decoder exists, and none is
// owed: this is not a framed codec.
func AppendHeader(dst []byte, v uint32) []byte {
	dst = binary.BigEndian.AppendUint32(dst, v)
	return dst
}
