// Package codecsym pins the v2 framing's encoder/decoder symmetry
// statically: for every opcode, the `Append*`-style encoder (a
// function that opens a frame with beginFrame and appends fields to
// the growing dst slice) is paired by name with its decode-in-place
// counterpart (`Decode*` over a payload slice), and the two field
// sequences — widths, order, repetition, optionality — must agree
// with each other and with the Payload column of the package's
// `//lint:recordtable`-pinned opcode table. An encoder/decoder drift
// is a lint finding, not a fuzz crash.
//
// Field sequences are extracted syntactically from the canonical
// codec idioms:
//
//   - encoder events: `dst = binary.BigEndian.AppendUintN(dst, x)`
//     (uN), `dst = append(dst, b)` (u8 per single byte), `dst =
//     append(dst, xs...)` (bytes); a for/range loop around events is
//     a repetition group, an if around events an optional group
//   - decoder events: `binary.BigEndian.UintN(p...)` (uN), `p[i]`
//     index reads (u8; consecutive reads of the same byte collapse —
//     flag decoding reads p[0] several times), payload slices flowing
//     into string/copy/composite/return (bytes); guard ifs with no
//     events are skipped, reslices `p = p[k:]` are bookkeeping
//
// The grammar in the table's Payload cells: `-` (empty), atoms
// u8/u16/u32/u64/bytes, `n*(...)` repetition, `[...]` optional.
//
// An encoder whose opcode argument is a parameter (AppendRaw,
// AppendClientID) cannot be matched to one table row; it is still
// pair-checked against its decoder when one exists. An encoder with a
// constant opcode and a non-empty payload must have a decoder.
package codecsym

import (
	"errors"
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"path/filepath"
	"sort"
	"strings"

	"repro/internal/lint"
)

// Analyzer is the codecsym entry point.
var Analyzer = &lint.Analyzer{
	Name: "codecsym",
	Doc:  "every v2 opcode's Append* encoder must mirror its Decode* counterpart field-for-field, and both must match the recordtable-pinned PROTOCOL.md payload grammar",
	Run:  run,
}

// field is one element of a payload sequence.
type field struct {
	kind string  // u8, u16, u32, u64, bytes, rep, opt
	sub  []field // for rep/opt groups
	src  string  // source text of u8 index reads, for dedup
}

// canon renders a sequence in canonical space-joined form, the
// comparison currency of the whole analyzer.
func canon(seq []field) string {
	parts := make([]string, len(seq))
	for i, f := range seq {
		switch f.kind {
		case "rep", "opt":
			parts[i] = f.kind + "(" + canon(f.sub) + ")"
		default:
			parts[i] = f.kind
		}
	}
	return strings.Join(parts, " ")
}

// encoder is one collected Append* function.
type encoder struct {
	decl *ast.FuncDecl
	// opConst is the opcode constant's name when the beginFrame
	// argument is a constant ("" for parameterized encoders).
	opConst string
	seq     []field
}

func run(pass *lint.Pass) error {
	encs := collectEncoders(pass)
	if len(encs) == 0 {
		// Not a codec package: no beginFrame-opening Append* helpers.
		return nil
	}
	decs := collectDecoders(pass)
	rows, prefix := loadTable(pass)

	names := make([]string, 0, len(encs))
	for name := range encs {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		enc := encs[name]
		base := strings.TrimPrefix(name, "Append")
		encSeq := canon(enc.seq)
		dec, ok := decs["Decode"+base]
		if !ok {
			if enc.opConst != "" && encSeq != "" {
				pass.Reportf(enc.decl.Pos(),
					"encoder %s (opcode %s) has no Decode%s counterpart: its payload [%s] can never be read back",
					name, enc.opConst, base, encSeq)
			}
			continue
		}
		decSeq := canon(dec.seq)
		if encSeq != decSeq {
			pass.Reportf(enc.decl.Pos(),
				"codec asymmetry: %s emits [%s] but Decode%s consumes [%s]",
				name, encSeq, base, decSeq)
		}
		if enc.opConst != "" && rows != nil {
			rowName := lint.CamelToSnake(strings.TrimPrefix(enc.opConst, prefix))
			row, ok := rows[rowName]
			switch {
			case !ok:
				pass.Reportf(enc.decl.Pos(),
					"opcode %s has no payload row %q in the pinned opcode table", enc.opConst, rowName)
			case row.err != "":
				pass.Reportf(enc.decl.Pos(),
					"opcode table payload cell for %q does not parse: %s", rowName, row.err)
			case row.canon != encSeq:
				pass.Reportf(enc.decl.Pos(),
					"payload drift: %s emits [%s] but the pinned opcode table documents %q as [%s]",
					name, encSeq, rowName, row.canon)
			}
		}
	}
	return nil
}

// --- Encoder extraction ----------------------------------------------------

// collectEncoders finds every Append* function that opens a frame
// with beginFrame and extracts its field sequence.
func collectEncoders(pass *lint.Pass) map[string]*encoder {
	out := make(map[string]*encoder)
	for _, f := range pass.Files {
		if testFile(pass, f) {
			continue
		}
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || fd.Recv != nil || !strings.HasPrefix(fd.Name.Name, "Append") {
				continue
			}
			enc := extractEncoder(pass, fd)
			if enc != nil {
				out[fd.Name.Name] = enc
			}
		}
	}
	return out
}

// extractEncoder walks the body for the dst-building idiom; nil when
// the function never calls beginFrame.
func extractEncoder(pass *lint.Pass, fd *ast.FuncDecl) *encoder {
	info := pass.TypesInfo
	enc := &encoder{decl: fd}
	var dst *types.Var // the slice being grown, bound at beginFrame
	sawBegin := false

	var walkStmts func(list []ast.Stmt) []field
	var stmtFields func(s ast.Stmt) []field
	stmtFields = func(s ast.Stmt) []field {
		switch st := s.(type) {
		case *ast.AssignStmt:
			if len(st.Lhs) == 0 || len(st.Rhs) == 0 {
				return nil
			}
			call, ok := ast.Unparen(st.Rhs[0]).(*ast.CallExpr)
			if !ok {
				return nil
			}
			// dst, off := beginFrame(dst, stream, op)
			if isPkgCall(info, call, "beginFrame") && len(call.Args) == 3 {
				sawBegin = true
				if id, ok := ast.Unparen(st.Lhs[0]).(*ast.Ident); ok {
					if v, ok := info.Defs[id].(*types.Var); ok {
						dst = v
					} else if v, ok := info.Uses[id].(*types.Var); ok {
						dst = v
					}
				}
				if c, ok := exprObject(info, call.Args[2]).(*types.Const); ok {
					enc.opConst = c.Name()
				}
				return nil
			}
			// dst = <append-form>(dst, ...)
			if dst == nil || !isVarIdent(info, st.Lhs[0], dst) {
				return nil
			}
			return appendFields(info, call, dst)
		case *ast.BlockStmt:
			return walkStmts(st.List)
		case *ast.IfStmt:
			sub := walkStmts(st.Body.List)
			var out []field
			if len(sub) > 0 {
				out = append(out, field{kind: "opt", sub: sub})
			}
			if st.Else != nil {
				esub := stmtFields(st.Else)
				if len(esub) > 0 {
					out = append(out, field{kind: "opt", sub: esub})
				}
			}
			return out
		case *ast.ForStmt:
			if sub := walkStmts(st.Body.List); len(sub) > 0 {
				return []field{{kind: "rep", sub: sub}}
			}
		case *ast.RangeStmt:
			if sub := walkStmts(st.Body.List); len(sub) > 0 {
				return []field{{kind: "rep", sub: sub}}
			}
		}
		return nil
	}
	walkStmts = func(list []ast.Stmt) []field {
		var out []field
		for _, s := range list {
			out = append(out, stmtFields(s)...)
		}
		return out
	}
	enc.seq = walkStmts(fd.Body.List)
	if !sawBegin {
		return nil
	}
	return enc
}

// appendFields classifies one `dst = f(dst, ...)` growth step.
func appendFields(info *types.Info, call *ast.CallExpr, dst *types.Var) []field {
	// binary.BigEndian.AppendUintN(dst, x)
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
		if n, ok := uintWidth(sel.Sel.Name, "AppendUint"); ok && len(call.Args) == 2 && isVarIdent(info, call.Args[0], dst) {
			return []field{{kind: n}}
		}
	}
	// append(dst, ...)
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok && id.Name == "append" {
		if _, isBuiltin := info.Uses[id].(*types.Builtin); isBuiltin && len(call.Args) >= 2 && isVarIdent(info, call.Args[0], dst) {
			if call.Ellipsis != token.NoPos {
				return []field{{kind: "bytes"}}
			}
			out := make([]field, 0, len(call.Args)-1)
			for range call.Args[1:] {
				out = append(out, field{kind: "u8"})
			}
			return out
		}
	}
	return nil
}

// --- Decoder extraction ----------------------------------------------------

// decoder is one collected Decode* function.
type decoder struct {
	decl *ast.FuncDecl
	seq  []field
}

// collectDecoders finds every Decode* function whose first parameter
// is a byte slice and extracts the consumption sequence.
func collectDecoders(pass *lint.Pass) map[string]*decoder {
	out := make(map[string]*decoder)
	for _, f := range pass.Files {
		if testFile(pass, f) {
			continue
		}
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || fd.Recv != nil || !strings.HasPrefix(fd.Name.Name, "Decode") {
				continue
			}
			p := firstByteSliceParam(pass.TypesInfo, fd)
			if p == nil {
				continue
			}
			out[fd.Name.Name] = &decoder{decl: fd, seq: extractDecoder(pass, fd, p)}
		}
	}
	return out
}

func firstByteSliceParam(info *types.Info, fd *ast.FuncDecl) *types.Var {
	if fd.Type.Params == nil || len(fd.Type.Params.List) == 0 {
		return nil
	}
	names := fd.Type.Params.List[0].Names
	if len(names) == 0 {
		return nil
	}
	v, ok := info.Defs[names[0]].(*types.Var)
	if !ok {
		return nil
	}
	sl, ok := v.Type().Underlying().(*types.Slice)
	if !ok {
		return nil
	}
	b, ok := sl.Elem().Underlying().(*types.Basic)
	if !ok || b.Kind() != types.Byte && b.Kind() != types.Uint8 {
		return nil
	}
	return v
}

// extractDecoder walks the body collecting payload consumption
// events in statement order.
func extractDecoder(pass *lint.Pass, fd *ast.FuncDecl, p *types.Var) []field {
	info := pass.TypesInfo

	// exprFields collects events inside one expression tree.
	var exprFields func(e ast.Expr) []field
	exprFields = func(e ast.Expr) []field {
		var out []field
		ast.Inspect(e, func(n ast.Node) bool {
			switch x := n.(type) {
			case *ast.FuncLit:
				return false
			case *ast.CallExpr:
				// binary.BigEndian.UintN(pslice): one fixed-width read;
				// the slice argument is consumed by the event.
				if sel, ok := ast.Unparen(x.Fun).(*ast.SelectorExpr); ok {
					if w, ok := uintWidth(sel.Sel.Name, "Uint"); ok && len(x.Args) == 1 && rootedAt(info, x.Args[0], p) {
						out = append(out, field{kind: w})
						return false
					}
				}
				// len(p)/cap(p): size guards, not reads.
				if id, ok := ast.Unparen(x.Fun).(*ast.Ident); ok {
					if _, isBuiltin := info.Uses[id].(*types.Builtin); isBuiltin && (id.Name == "len" || id.Name == "cap") {
						return false
					}
				}
				return true
			case *ast.IndexExpr:
				if rootedAt(info, x, p) {
					out = append(out, field{kind: "u8", src: types.ExprString(x)})
					return false
				}
			case *ast.SliceExpr:
				if rootedAt(info, x, p) {
					out = append(out, field{kind: "bytes"})
					return false
				}
			case *ast.Ident:
				// A bare payload reference flowing somewhere whole
				// (return p, copy(dst, p), string(p)).
				if v, ok := info.Uses[x].(*types.Var); ok && v == p {
					out = append(out, field{kind: "bytes"})
				}
			}
			return true
		})
		return out
	}

	var walkStmts func(list []ast.Stmt) []field
	var stmtFields func(s ast.Stmt) []field
	stmtFields = func(s ast.Stmt) []field {
		switch st := s.(type) {
		case *ast.AssignStmt:
			// Reslice bookkeeping `p = p[k:]` consumes nothing.
			if len(st.Lhs) == 1 && len(st.Rhs) == 1 && isVarIdent(info, st.Lhs[0], p) {
				if sl, ok := ast.Unparen(st.Rhs[0]).(*ast.SliceExpr); ok && rootedAt(info, sl, p) {
					return nil
				}
			}
			var out []field
			for _, r := range st.Rhs {
				out = append(out, exprFields(r)...)
			}
			return out
		case *ast.BlockStmt:
			return walkStmts(st.List)
		case *ast.IfStmt:
			out := exprFields(st.Cond)
			sub := walkStmts(st.Body.List)
			if len(sub) > 0 {
				out = append(out, field{kind: "opt", sub: sub})
			}
			if st.Else != nil {
				if esub := stmtFields(st.Else); len(esub) > 0 {
					out = append(out, field{kind: "opt", sub: esub})
				}
			}
			return out
		case *ast.ForStmt:
			if sub := walkStmts(st.Body.List); len(sub) > 0 {
				return []field{{kind: "rep", sub: sub}}
			}
		case *ast.RangeStmt:
			if sub := walkStmts(st.Body.List); len(sub) > 0 {
				return []field{{kind: "rep", sub: sub}}
			}
		case *ast.ReturnStmt:
			var out []field
			for _, r := range st.Results {
				out = append(out, exprFields(r)...)
			}
			return out
		case *ast.ExprStmt:
			return exprFields(st.X)
		case *ast.DeclStmt:
			var out []field
			if gd, ok := st.Decl.(*ast.GenDecl); ok {
				for _, spec := range gd.Specs {
					if vs, ok := spec.(*ast.ValueSpec); ok {
						for _, v := range vs.Values {
							out = append(out, exprFields(v)...)
						}
					}
				}
			}
			return out
		case *ast.SwitchStmt:
			var out []field
			if st.Tag != nil {
				out = exprFields(st.Tag)
			}
			for _, cc := range st.Body.List {
				if c, ok := cc.(*ast.CaseClause); ok {
					if sub := walkStmts(c.Body); len(sub) > 0 {
						out = append(out, field{kind: "opt", sub: sub})
					}
				}
			}
			return out
		}
		return nil
	}
	walkStmts = func(list []ast.Stmt) []field {
		var out []field
		for _, s := range list {
			for _, f := range stmtFields(s) {
				// Consecutive u8 reads of the same byte are one field:
				// flag decoding reads p[0] per flag bit.
				if f.kind == "u8" && f.src != "" && len(out) > 0 {
					last := out[len(out)-1]
					if last.kind == "u8" && last.src == f.src {
						continue
					}
				}
				out = append(out, f)
			}
		}
		return out
	}
	return dedupWithin(walkStmts(fd.Body.List))
}

// dedupWithin collapses consecutive same-source u8 reads across a
// whole sequence (they can land adjacently from sibling expressions
// in one statement) and recurses into groups.
func dedupWithin(seq []field) []field {
	var out []field
	for _, f := range seq {
		if len(f.sub) > 0 {
			f.sub = dedupWithin(f.sub)
		}
		if f.kind == "u8" && f.src != "" && len(out) > 0 {
			last := out[len(out)-1]
			if last.kind == "u8" && last.src == f.src {
				continue
			}
		}
		out = append(out, f)
	}
	return out
}

// --- Table loading ---------------------------------------------------------

// tableRow is one opcode's parsed Payload cell.
type tableRow struct {
	canon string
	err   string
}

// loadTable reads the package's recordtable pin and parses the
// Payload column (the third cell) of every opcode row. nil when the
// package carries no directive or the table is unreadable — waldrift
// already reports broken pins; codecsym just loses the doc diff.
func loadTable(pass *lint.Pass) (map[string]tableRow, string) {
	for _, f := range pass.Files {
		if testFile(pass, f) {
			continue
		}
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if !strings.HasPrefix(c.Text, lint.RecordTableDirectivePrefix) {
					continue
				}
				rest := strings.TrimSpace(strings.TrimPrefix(c.Text, lint.RecordTableDirectivePrefix))
				d, err := lint.ParseRecordTableDirective(rest)
				if err != nil {
					return nil, ""
				}
				dir := filepath.Dir(pass.Fset.Position(c.Pos()).Filename)
				lines, err := lint.MarkdownSection(filepath.Join(dir, d.Rel), d.Section)
				if err != nil {
					return nil, ""
				}
				cells, order := lint.TableCellsByName(lines)
				rows := make(map[string]tableRow, len(order))
				for _, name := range order {
					row := cells[name]
					if len(row) < 3 {
						continue // no Payload column on this row
					}
					seq, perr := parsePayloadCell(row[2])
					if perr != nil {
						rows[name] = tableRow{err: perr.Error()}
						continue
					}
					rows[name] = tableRow{canon: canon(seq)}
				}
				return rows, d.Prefix
			}
		}
	}
	return nil, ""
}

// parsePayloadCell parses the table grammar: `-` empty, atoms
// u8/u16/u32/u64/bytes, `n*(...)` repetition, `[...]` optional,
// comma-separated.
func parsePayloadCell(cell string) ([]field, error) {
	cell = strings.TrimSpace(cell)
	if cell == "-" || cell == "" {
		return nil, nil
	}
	p := &cellParser{in: cell}
	seq, err := p.sequence()
	if err != nil {
		return nil, err
	}
	p.ws()
	if p.pos != len(p.in) {
		return nil, fmt.Errorf("trailing %q", p.in[p.pos:])
	}
	return seq, nil
}

type cellParser struct {
	in  string
	pos int
}

func (p *cellParser) ws() {
	for p.pos < len(p.in) && (p.in[p.pos] == ' ' || p.in[p.pos] == '\t') {
		p.pos++
	}
}

// sequence := atom ("," atom)*
func (p *cellParser) sequence() ([]field, error) {
	var out []field
	for {
		f, err := p.atom()
		if err != nil {
			return nil, err
		}
		out = append(out, f)
		p.ws()
		if p.pos < len(p.in) && p.in[p.pos] == ',' {
			p.pos++
			continue
		}
		return out, nil
	}
}

// atom := "u8".."u64" | "bytes" | ident "*(" sequence ")" | "[" sequence "]"
func (p *cellParser) atom() (field, error) {
	p.ws()
	if p.pos >= len(p.in) {
		return field{}, errors.New("unexpected end of payload grammar")
	}
	if p.in[p.pos] == '[' {
		p.pos++
		seq, err := p.sequence()
		if err != nil {
			return field{}, err
		}
		p.ws()
		if p.pos >= len(p.in) || p.in[p.pos] != ']' {
			return field{}, errors.New("unclosed [optional] group")
		}
		p.pos++
		return field{kind: "opt", sub: seq}, nil
	}
	start := p.pos
	for p.pos < len(p.in) && (isWordByte(p.in[p.pos])) {
		p.pos++
	}
	word := p.in[start:p.pos]
	p.ws()
	if p.pos+1 < len(p.in) && p.in[p.pos] == '*' && p.in[p.pos+1] == '(' {
		p.pos += 2
		seq, err := p.sequence()
		if err != nil {
			return field{}, err
		}
		p.ws()
		if p.pos >= len(p.in) || p.in[p.pos] != ')' {
			return field{}, errors.New("unclosed repetition group")
		}
		p.pos++
		return field{kind: "rep", sub: seq}, nil
	}
	switch word {
	case "u8", "u16", "u32", "u64", "bytes":
		return field{kind: word}, nil
	}
	return field{}, fmt.Errorf("unknown payload atom %q", word)
}

func isWordByte(b byte) bool {
	return b >= 'a' && b <= 'z' || b >= '0' && b <= '9'
}

// --- Small helpers ---------------------------------------------------------

// uintWidth maps AppendUint32/Uint32-style names (after prefix) to a
// field kind.
func uintWidth(name, prefix string) (string, bool) {
	if !strings.HasPrefix(name, prefix) {
		return "", false
	}
	switch strings.TrimPrefix(name, prefix) {
	case "16":
		return "u16", true
	case "32":
		return "u32", true
	case "64":
		return "u64", true
	}
	return "", false
}

// isPkgCall reports a call to the package-level function named name.
func isPkgCall(info *types.Info, call *ast.CallExpr, name string) bool {
	fn, ok := lint.CalleeObject(info, call).(*types.Func)
	return ok && fn.Name() == name
}

// isVarIdent reports that e is (parenthesized) exactly the variable v.
func isVarIdent(info *types.Info, e ast.Expr, v *types.Var) bool {
	id, ok := ast.Unparen(e).(*ast.Ident)
	if !ok {
		return false
	}
	obj := info.Uses[id]
	if obj == nil {
		obj = info.Defs[id]
	}
	return obj == v
}

// rootedAt reports that e's innermost operand chain bottoms out at
// the variable v (p, p[i], p[a:b], (p)[i]...).
func rootedAt(info *types.Info, e ast.Expr, v *types.Var) bool {
	for {
		switch x := ast.Unparen(e).(type) {
		case *ast.Ident:
			return info.Uses[x] == v
		case *ast.IndexExpr:
			e = x.X
		case *ast.SliceExpr:
			e = x.X
		default:
			return false
		}
	}
}

// exprObject resolves a (selector) expression to its object.
func exprObject(info *types.Info, e ast.Expr) types.Object {
	switch x := ast.Unparen(e).(type) {
	case *ast.Ident:
		return info.Uses[x]
	case *ast.SelectorExpr:
		return info.Uses[x.Sel]
	}
	return nil
}

func testFile(pass *lint.Pass, n ast.Node) bool {
	return strings.HasSuffix(pass.Fset.Position(n.Pos()).Filename, "_test.go")
}
