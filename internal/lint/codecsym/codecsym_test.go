package codecsym_test

import (
	"testing"

	"repro/internal/lint"
	"repro/internal/lint/codecsym"
	"repro/internal/lint/linttest"
)

// TestCodecSym runs the golden fixture: pairing, symmetry, and table
// drift, with clean u32/rep-group round-trips interleaved.
func TestCodecSym(t *testing.T) {
	linttest.Run(t, codecsym.Analyzer, "testdata/src/codecfix")
}

// TestNonCodecPackageSilent asserts the activation gate: a package
// with Append* helpers but no beginFrame is not a codec package and
// produces nothing.
func TestNonCodecPackageSilent(t *testing.T) {
	pkg, err := lint.LoadDir("testdata/src/plainpkg")
	if err != nil {
		t.Fatalf("load fixture: %v", err)
	}
	diags, err := lint.RunPackage(pkg, []*lint.Analyzer{codecsym.Analyzer})
	if err != nil {
		t.Fatalf("run codecsym: %v", err)
	}
	if len(diags) != 0 {
		t.Fatalf("non-codec package should be silent, got %v", diags)
	}
}
