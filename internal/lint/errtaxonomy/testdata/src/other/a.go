// Fixture: a package outside the taxonomy boundary may return bare
// errors freely.
package other

import "errors"

func plain() error {
	return errors.New("not an API-boundary package")
}
