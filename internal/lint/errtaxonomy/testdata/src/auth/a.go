// Fixture for errtaxonomy. The package is named auth so both rule
// groups apply: constructor discipline on returns, and exhaustiveness
// across the ErrorCode consts, the codeSentinels decode table and
// CodeOf's encode switch.
package auth

import (
	"context"
	"errors"
	"fmt"
)

type ErrorCode int

const (
	CodeUnknown ErrorCode = iota
	CodeExpired
	CodeMismatch
	CodeInternal
)

// CodeBogus is a var, not a declared ErrorCode constant.
var CodeBogus ErrorCode = 99

var (
	ErrUnknown  = errors.New("auth: unknown")
	ErrExpired  = errors.New("auth: expired")
	ErrMismatch = errors.New("auth: mismatch")
	ErrMissing  = errors.New("auth: missing") // want "sentinel ErrMissing is missing from codeSentinels"
	ErrGhost    = errors.New("auth: ghost")   // want "sentinel ErrGhost is missing from codeSentinels"
	ErrOrphan   = errors.New("auth: orphan")
)

var codeSentinels = map[ErrorCode]error{
	CodeUnknown:  ErrUnknown,
	CodeExpired:  ErrExpired,  // want "encode and decode disagree"
	CodeMismatch: ErrMismatch, // want "CodeOf has no errors.Is case for ErrMismatch"
	CodeBogus:    ErrOrphan,   // want "key CodeBogus is not a declared ErrorCode constant" "CodeOf has no errors.Is case for ErrOrphan"
}

func CodeOf(err error) ErrorCode {
	switch {
	case errors.Is(err, ErrUnknown):
		return CodeUnknown
	case errors.Is(err, ErrExpired):
		return CodeMismatch
	case errors.Is(err, ErrGhost): // want "codeSentinels lacks it"
		return CodeInternal
	case errors.Is(err, context.Canceled): // cross-package sentinel: out of scope
		return CodeInternal
	}
	return CodeInternal
}

// Retryable classifies CodeExpired but forgets the other three
// declared codes, which fall to the conservative no-retry default.
func Retryable(err error) bool { // want "does not classify CodeUnknown" "does not classify CodeMismatch" "does not classify CodeInternal"
	var code ErrorCode
	switch code {
	case CodeExpired:
		return true
	}
	return false
}

func bareNew() error {
	return errors.New("boom") // want "bare errors.New"
}

func noWrap(err error) error {
	return fmt.Errorf("lookup failed: %v", err) // want "has no %w"
}

func wrapGood(err error) error {
	return fmt.Errorf("lookup failed: %w", err)
}

func degradeFromWire(msg string) error {
	//lint:ignore errtaxonomy pre-taxonomy peers send opaque strings; nothing typed to rebuild
	return errors.New(msg)
}
