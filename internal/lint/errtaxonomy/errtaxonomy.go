// Package errtaxonomy enforces the typed-error contract on the API
// boundary packages (internal/auth, internal/cluster and the root
// facade): every error those packages return must wrap the *AuthError
// taxonomy so that errors.Is holds identically in-process and across
// the TCP wire — replication errors included, since a router or
// follower surfaces them to the same clients.
//
// Two rule groups:
//
//  1. Constructor discipline — inside a taxonomy package, a return
//     statement must not hand back a bare errors.New(...) or a
//     fmt.Errorf(...) without a %w verb. Those escape the taxonomy:
//     CodeOf degrades them to CodeInternal and errors.Is parity is
//     lost on the far side of the wire. Build errors with
//     authErr/authErrf/ctxErr (or &AuthError{...}); propagate causes
//     with %w.
//
//  2. Exhaustiveness — when the package declares the taxonomy anchors
//     (type ErrorCode, var codeSentinels, func CodeOf), the ErrorCode
//     const set, the codeSentinels decode table and CodeOf's
//     errors.Is switch (the wire encode side) must stay mutually
//     consistent: every package sentinel appears in codeSentinels,
//     every codeSentinels entry has a CodeOf case returning the same
//     code, and every CodeOf sentinel case is in codeSentinels.
//     (errorFromWire's decode is driven directly by codeSentinels, so
//     map consistency is wire round-trip consistency.) When the
//     package also declares Retryable, its ErrorCode switch must
//     classify every declared code: a code missing from the switch
//     silently falls to the conservative no-retry branch, so a
//     transient code added without a Retryable case would strand
//     clients that should have retried.
package errtaxonomy

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"strings"

	"repro/internal/lint"
)

// Analyzer is the errtaxonomy entry point.
var Analyzer = &lint.Analyzer{
	Name: "errtaxonomy",
	Doc:  "API-boundary errors must wrap *AuthError; ErrorCode consts, codeSentinels and CodeOf must be mutually exhaustive",
	Run:  run,
}

// taxonomyPackages are the package names the constructor discipline
// applies to.
var taxonomyPackages = map[string]bool{
	"auth":          true,
	"authenticache": true,
	"cluster":       true,
}

func run(pass *lint.Pass) error {
	if !taxonomyPackages[pass.Pkg.Name()] {
		return nil
	}
	checkReturns(pass)
	checkExhaustive(pass)
	return nil
}

// checkReturns flags bare errors.New / non-wrapping fmt.Errorf results
// in return statements.
func checkReturns(pass *lint.Pass) {
	for _, scope := range lint.FuncScopes(pass.Files) {
		scope.InspectShallow(func(n ast.Node) bool {
			ret, ok := n.(*ast.ReturnStmt)
			if !ok {
				return true
			}
			for _, res := range ret.Results {
				call, ok := ast.Unparen(res).(*ast.CallExpr)
				if !ok {
					continue
				}
				obj := lint.CalleeObject(pass.TypesInfo, call)
				switch {
				case lint.IsPkgFunc(obj, "errors", "New"):
					pass.Reportf(call.Pos(),
						"returned error is a bare errors.New and escapes the *AuthError taxonomy; use authErr/authErrf (or &AuthError{...})")
				case lint.IsPkgFunc(obj, "fmt", "Errorf") && !wrapsCause(pass, call):
					pass.Reportf(call.Pos(),
						"returned fmt.Errorf has no %%w and escapes the *AuthError taxonomy; use authErrf, or wrap a typed cause with %%w")
				}
			}
			return true
		})
	}
}

// wrapsCause reports whether a fmt.Errorf call's (constant) format
// string contains a %w verb. Non-constant formats are given the
// benefit of the doubt.
func wrapsCause(pass *lint.Pass, call *ast.CallExpr) bool {
	if len(call.Args) == 0 {
		return false
	}
	tv, ok := pass.TypesInfo.Types[call.Args[0]]
	if !ok || tv.Value == nil || tv.Value.Kind() != constant.String {
		return true
	}
	return strings.Contains(constant.StringVal(tv.Value), "%w")
}

// --- Exhaustiveness ---------------------------------------------------------

// checkExhaustive cross-checks the taxonomy anchors when the package
// declares all of them.
func checkExhaustive(pass *lint.Pass) {
	anchors := collectAnchors(pass)
	if anchors == nil {
		return
	}
	// Every package sentinel must be decodable: present in
	// codeSentinels.
	for name, pos := range anchors.sentinels {
		if _, ok := anchors.mapCodeBySentinel[name]; !ok {
			pass.Reportf(pos,
				"sentinel %s is missing from codeSentinels: a remote *AuthError carrying its code will not satisfy errors.Is(err, %s)", name, name)
		}
	}
	// Every codeSentinels entry must have a matching CodeOf case with
	// the same code (the encode side of the wire).
	for sent, code := range anchors.mapCodeBySentinel {
		got, ok := anchors.codeOfBySentinel[sent]
		if !ok {
			pass.Reportf(anchors.mapEntryPos[sent],
				"codeSentinels maps %s to %s but CodeOf has no errors.Is case for %s: the sentinel will encode as internal on the wire", code, sent, sent)
			continue
		}
		if got != code {
			pass.Reportf(anchors.mapEntryPos[sent],
				"codeSentinels maps %s to %s but CodeOf returns %s for it: encode and decode disagree", code, sent, got)
		}
	}
	// Every CodeOf sentinel case must be decodable too.
	for sent, pos := range anchors.codeOfCasePos {
		if _, ok := anchors.mapCodeBySentinel[sent]; !ok {
			pass.Reportf(pos,
				"CodeOf has an errors.Is case for %s but codeSentinels lacks it: the code round-trips to a bare AuthError instead of the sentinel", sent)
		}
	}
	// Map keys must be declared ErrorCode constants.
	for code, pos := range anchors.mapKeyPos {
		if !anchors.codes[code] {
			pass.Reportf(pos, "codeSentinels key %s is not a declared ErrorCode constant", code)
		}
	}
	checkRetryable(pass, anchors)
}

// checkRetryable verifies that Retryable's ErrorCode switch mentions
// every declared code. The switch's default path is deliberately
// conservative (no retry, for codes from newer peers), so a
// locally-declared code that falls through to it was almost certainly
// forgotten when the code was added.
func checkRetryable(pass *lint.Pass, a *anchors) {
	if a.retryable == nil {
		return
	}
	handled := make(map[string]bool)
	var switchPos token.Pos
	ast.Inspect(a.retryable.Body, func(n ast.Node) bool {
		cc, ok := n.(*ast.CaseClause)
		if !ok {
			return true
		}
		for _, expr := range cc.List {
			if id, ok := expr.(*ast.Ident); ok && a.codes[id.Name] {
				handled[id.Name] = true
				if switchPos == token.NoPos {
					switchPos = cc.Pos()
				}
			}
		}
		return true
	})
	if len(handled) == 0 {
		// No ErrorCode switch at all (e.g. a facade wrapper that
		// delegates): nothing to cross-check.
		return
	}
	for code := range a.codes {
		if !handled[code] {
			pass.Reportf(a.retryable.Pos(),
				"Retryable's switch does not classify %s: the code falls to the conservative no-retry default", code)
		}
	}
}

type anchors struct {
	codes             map[string]bool      // ErrorCode const names
	sentinels         map[string]token.Pos // package-level Err* error vars
	mapCodeBySentinel map[string]string    // sentinel name → code name (codeSentinels)
	mapEntryPos       map[string]token.Pos // sentinel name → entry pos
	mapKeyPos         map[string]token.Pos // code name → key pos
	codeOfBySentinel  map[string]string    // sentinel name → returned code (CodeOf)
	codeOfCasePos     map[string]token.Pos
	retryable         *ast.FuncDecl // func Retryable, when declared
}

// collectAnchors finds the ErrorCode consts, the sentinel vars, the
// codeSentinels literal and CodeOf's switch. Returns nil unless the
// type, the map and the function all exist in this package.
func collectAnchors(pass *lint.Pass) *anchors {
	a := &anchors{
		codes:             make(map[string]bool),
		sentinels:         make(map[string]token.Pos),
		mapCodeBySentinel: make(map[string]string),
		mapEntryPos:       make(map[string]token.Pos),
		mapKeyPos:         make(map[string]token.Pos),
		codeOfBySentinel:  make(map[string]string),
		codeOfCasePos:     make(map[string]token.Pos),
	}
	haveType, haveMap, haveCodeOf := false, false, false
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			switch d := decl.(type) {
			case *ast.GenDecl:
				for _, spec := range d.Specs {
					switch sp := spec.(type) {
					case *ast.TypeSpec:
						if sp.Name.Name == "ErrorCode" {
							haveType = true
						}
					case *ast.ValueSpec:
						collectValueSpec(pass, a, d.Tok, sp, &haveMap)
					}
				}
			case *ast.FuncDecl:
				if d.Name.Name == "CodeOf" && d.Recv == nil {
					haveCodeOf = true
					collectCodeOf(a, d)
				}
				if d.Name.Name == "Retryable" && d.Recv == nil && d.Body != nil {
					a.retryable = d
				}
			}
		}
	}
	if !haveType || !haveMap || !haveCodeOf {
		return nil
	}
	return a
}

// collectValueSpec gathers ErrorCode constants, Err* sentinel vars and
// the codeSentinels map literal.
func collectValueSpec(pass *lint.Pass, a *anchors, tok token.Token, sp *ast.ValueSpec, haveMap *bool) {
	if tok == token.CONST {
		// Resolve through the type checker so iota-continued specs
		// (which carry no Type node) are still recognised.
		for _, name := range sp.Names {
			if obj := pass.TypesInfo.Defs[name]; obj != nil && isErrorCode(obj.Type()) {
				a.codes[name.Name] = true
			}
		}
		return
	}
	for i, name := range sp.Names {
		if strings.HasPrefix(name.Name, "Err") && i < len(sp.Values) {
			if call, ok := sp.Values[i].(*ast.CallExpr); ok {
				if sel, ok := call.Fun.(*ast.SelectorExpr); ok && sel.Sel.Name == "New" {
					a.sentinels[name.Name] = name.Pos()
				}
			}
		}
		if name.Name == "codeSentinels" && i < len(sp.Values) {
			lit, ok := sp.Values[i].(*ast.CompositeLit)
			if !ok {
				continue
			}
			*haveMap = true
			for _, elt := range lit.Elts {
				kv, ok := elt.(*ast.KeyValueExpr)
				if !ok {
					continue
				}
				key, kok := kv.Key.(*ast.Ident)
				val, vok := kv.Value.(*ast.Ident)
				if !kok || !vok {
					continue
				}
				a.mapCodeBySentinel[val.Name] = key.Name
				a.mapEntryPos[val.Name] = kv.Pos()
				a.mapKeyPos[key.Name] = kv.Pos()
			}
		}
	}
}

// isErrorCode matches a named type called ErrorCode.
func isErrorCode(t types.Type) bool {
	named, ok := t.(*types.Named)
	return ok && named.Obj().Name() == "ErrorCode"
}

// collectCodeOf reads CodeOf's switch: case errors.Is(err, Sentinel)
// clauses returning a code constant. Sentinels selected from other
// packages (context.Canceled) are outside the package taxonomy and
// skipped.
func collectCodeOf(a *anchors, fn *ast.FuncDecl) {
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		cc, ok := n.(*ast.CaseClause)
		if !ok {
			return true
		}
		code := caseReturnCode(cc)
		if code == "" {
			return true
		}
		for _, expr := range cc.List {
			call, ok := expr.(*ast.CallExpr)
			if !ok {
				continue
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok || sel.Sel.Name != "Is" || len(call.Args) != 2 {
				continue
			}
			sentinel, ok := call.Args[1].(*ast.Ident)
			if !ok {
				continue // cross-package sentinel, e.g. context.Canceled
			}
			a.codeOfBySentinel[sentinel.Name] = code
			a.codeOfCasePos[sentinel.Name] = expr.Pos()
		}
		return true
	})
}

// caseReturnCode extracts the code constant a case clause returns.
func caseReturnCode(cc *ast.CaseClause) string {
	for _, st := range cc.Body {
		ret, ok := st.(*ast.ReturnStmt)
		if !ok || len(ret.Results) != 1 {
			continue
		}
		if id, ok := ret.Results[0].(*ast.Ident); ok {
			return id.Name
		}
	}
	return ""
}
