package errtaxonomy_test

import (
	"testing"

	"repro/internal/lint/errtaxonomy"
	"repro/internal/lint/linttest"
)

func TestTaxonomy(t *testing.T) {
	linttest.Run(t, errtaxonomy.Analyzer, "testdata/src/auth")
}

func TestNonTaxonomyPackageExempt(t *testing.T) {
	linttest.Run(t, errtaxonomy.Analyzer, "testdata/src/other")
}
