package lint

// Flow-sensitive facility: per-function basic-block control-flow
// graphs built from go/ast, plus a generic worklist solver over
// analyzer-supplied lattice states and def-use chains over the
// blocks. Pass.CFG(fn) caches graphs on the Package next to the call
// graph and the taint dataflow, so every analyzer of a package shares
// one construction.
//
// The graph follows the x/tools/go/cfg conventions: a block's Nodes
// are the *leaf* statements and condition expressions executed in it,
// in order. Compound statements never appear whole — an if/for/switch
// is decomposed into blocks and edges — with one deliberate
// exception: a RangeStmt appears as the last node of its loop-header
// block, standing for the per-iteration key/value bind and the use of
// the ranged operand (its body belongs to other blocks; use
// ShallowInspect to visit a node without crossing into statement
// bodies or function literals).
//
// Short-circuit conditions are split: `a && b` evaluates a in one
// block with a False edge bypassing b, so an analyzer sees exactly
// which atoms a path evaluated. True/False edges carry the condition
// atom in Edge.Cond, which is how poolsafe names the branch a leaked
// value took.
//
// Exits: every return wires an EdgeReturn to the Exit block, a
// terminal call (panic, os.Exit, log.Fatal*, runtime.Goexit) wires an
// EdgePanic, and falling off the end wires a plain EdgeSeq. Deferred
// calls are not edges — a DeferStmt is an ordinary node; a
// flow-sensitive analyzer models arming in its own lattice and
// applies armed defers when its transfer function reaches a
// ReturnStmt, a terminal call, or the fall-off edge, which is exactly
// how a deferred release covers panic exits.

import (
	"go/ast"
	"go/token"
	"go/types"
)

// EdgeKind classifies a control-flow edge.
type EdgeKind uint8

const (
	// EdgeSeq is unconditional sequencing (including loop back edges
	// and the fall-off-the-end edge into Exit).
	EdgeSeq EdgeKind = iota
	// EdgeTrue is taken when the source block's last condition atom
	// evaluates true (for a range header: another element exists).
	EdgeTrue
	// EdgeFalse is the complementary branch.
	EdgeFalse
	// EdgeReturn leads from a return statement to Exit.
	EdgeReturn
	// EdgePanic leads from a terminal call (panic, os.Exit,
	// log.Fatal*, runtime.Goexit) to Exit.
	EdgePanic
)

// Edge is one directed control-flow edge.
type Edge struct {
	From, To *Block
	Kind     EdgeKind
	// Cond is the condition atom controlling a True/False edge (nil
	// for range headers and every other kind).
	Cond ast.Expr
}

// Block is one basic block.
type Block struct {
	// Index is the block's position in CFG.Blocks (creation order;
	// Entry is 0).
	Index int
	// Nodes are the leaf statements and condition expressions executed
	// in this block, in order.
	Nodes []ast.Node
	Succs []*Edge
	Preds []*Edge
}

// CFG is one function's control-flow graph.
type CFG struct {
	// Decl is the declaration the graph was built from (nil when built
	// from a bare body, e.g. a function literal).
	Decl *ast.FuncDecl
	// Entry has no predecessors; Exit has no successors. Exit's Nodes
	// are always empty.
	Entry, Exit *Block
	// Blocks lists every block, including unreachable ones (dead code
	// after a return still parses into blocks with no predecessors).
	Blocks []*Block
}

// CFG returns fn's control-flow graph, building it on first use and
// caching it on the package like the call graph, so every analyzer of
// the package shares one construction per function.
func (p *Pass) CFG(fn *ast.FuncDecl) *CFG {
	if fn == nil || fn.Body == nil {
		return nil
	}
	if p.pkg == nil {
		return NewCFG(fn, p.TypesInfo)
	}
	if p.pkg.cfgs == nil {
		p.pkg.cfgs = make(map[*ast.FuncDecl]*CFG)
	}
	if c := p.pkg.cfgs[fn]; c != nil {
		return c
	}
	c := NewCFG(fn, p.TypesInfo)
	p.pkg.cfgs[fn] = c
	return c
}

// NewCFG builds the graph for one declaration. info resolves callees
// for terminal-call detection; it may be nil (then no call is treated
// as terminal).
func NewCFG(decl *ast.FuncDecl, info *types.Info) *CFG {
	c := NewBodyCFG(decl.Body, info)
	c.Decl = decl
	return c
}

// NewBodyCFG builds the graph for a bare body (function literals).
func NewBodyCFG(body *ast.BlockStmt, info *types.Info) *CFG {
	c := &CFG{}
	b := &cfgBuilder{c: c, info: info, labels: make(map[string]*Block)}
	c.Entry = b.newBlock()
	c.Exit = b.newBlock()
	b.cur = c.Entry
	b.stmtList(body.List)
	b.edge(b.cur, c.Exit, EdgeSeq, nil)
	return c
}

// cfgBuilder grows a CFG one statement at a time. cur is the block
// under construction; control transfers replace it.
type cfgBuilder struct {
	c    *CFG
	info *types.Info
	cur  *Block
	// targets is the enclosing break/continue stack, innermost last.
	targets []breakTarget
	// fall is the next case-clause body, for fallthrough.
	fall *Block
	// labels maps label names to their blocks (created on first
	// mention, so forward gotos resolve).
	labels map[string]*Block
}

// breakTarget is one enclosing breakable construct.
type breakTarget struct {
	label      string
	breakTo    *Block
	continueTo *Block // nil for switch/select
}

func (b *cfgBuilder) newBlock() *Block {
	blk := &Block{Index: len(b.c.Blocks)}
	b.c.Blocks = append(b.c.Blocks, blk)
	return blk
}

func (b *cfgBuilder) edge(from, to *Block, kind EdgeKind, cond ast.Expr) {
	e := &Edge{From: from, To: to, Kind: kind, Cond: cond}
	from.Succs = append(from.Succs, e)
	to.Preds = append(to.Preds, e)
}

// terminate ends the current block with an edge and starts an
// unreachable continuation for any trailing dead statements.
func (b *cfgBuilder) terminate(to *Block, kind EdgeKind) {
	b.edge(b.cur, to, kind, nil)
	b.cur = b.newBlock()
}

func (b *cfgBuilder) labelBlock(name string) *Block {
	if blk, ok := b.labels[name]; ok {
		return blk
	}
	blk := b.newBlock()
	b.labels[name] = blk
	return blk
}

func (b *cfgBuilder) stmtList(list []ast.Stmt) {
	for _, s := range list {
		b.stmt(s, "")
	}
}

// findTarget resolves a break/continue to its enclosing construct.
func (b *cfgBuilder) findTarget(label *ast.Ident, needContinue bool) *breakTarget {
	for i := len(b.targets) - 1; i >= 0; i-- {
		t := &b.targets[i]
		if needContinue && t.continueTo == nil {
			continue
		}
		if label == nil || t.label == label.Name {
			return t
		}
	}
	return nil
}

// cond wires the short-circuit evaluation of e starting in the
// current block: control reaches t when e is true and f when it is
// false. Leaf atoms are appended to their evaluating block and
// annotate both out-edges. The current block is invalid afterwards;
// callers must set it.
func (b *cfgBuilder) cond(e ast.Expr, t, f *Block) {
	switch x := e.(type) {
	case *ast.ParenExpr:
		b.cond(x.X, t, f)
		return
	case *ast.UnaryExpr:
		if x.Op == token.NOT {
			b.cond(x.X, f, t)
			return
		}
	case *ast.BinaryExpr:
		switch x.Op {
		case token.LAND:
			mid := b.newBlock()
			b.cond(x.X, mid, f)
			b.cur = mid
			b.cond(x.Y, t, f)
			return
		case token.LOR:
			mid := b.newBlock()
			b.cond(x.X, t, mid)
			b.cur = mid
			b.cond(x.Y, t, f)
			return
		}
	}
	b.cur.Nodes = append(b.cur.Nodes, e)
	b.edge(b.cur, t, EdgeTrue, e)
	b.edge(b.cur, f, EdgeFalse, e)
}

// stmt appends one statement to the graph. label is the enclosing
// label name ("" when unlabeled), threaded so labeled loops register
// their break/continue targets under it.
func (b *cfgBuilder) stmt(s ast.Stmt, label string) {
	switch st := s.(type) {
	case *ast.BlockStmt:
		b.stmtList(st.List)

	case *ast.IfStmt:
		if st.Init != nil {
			b.stmt(st.Init, "")
		}
		thenB := b.newBlock()
		join := b.newBlock()
		elseB := join
		if st.Else != nil {
			elseB = b.newBlock()
		}
		b.cond(st.Cond, thenB, elseB)
		b.cur = thenB
		b.stmt(st.Body, "")
		b.edge(b.cur, join, EdgeSeq, nil)
		if st.Else != nil {
			b.cur = elseB
			b.stmt(st.Else, "")
			b.edge(b.cur, join, EdgeSeq, nil)
		}
		b.cur = join

	case *ast.ForStmt:
		if st.Init != nil {
			b.stmt(st.Init, "")
		}
		head := b.newBlock()
		body := b.newBlock()
		after := b.newBlock()
		post := head
		if st.Post != nil {
			post = b.newBlock()
		}
		b.edge(b.cur, head, EdgeSeq, nil)
		b.cur = head
		if st.Cond != nil {
			b.cond(st.Cond, body, after)
		} else {
			b.edge(b.cur, body, EdgeSeq, nil)
		}
		b.targets = append(b.targets, breakTarget{label: label, breakTo: after, continueTo: post})
		b.cur = body
		b.stmt(st.Body, "")
		b.targets = b.targets[:len(b.targets)-1]
		b.edge(b.cur, post, EdgeSeq, nil)
		if st.Post != nil {
			b.cur = post
			b.stmt(st.Post, "")
			b.edge(b.cur, head, EdgeSeq, nil)
		}
		b.cur = after

	case *ast.RangeStmt:
		head := b.newBlock()
		body := b.newBlock()
		after := b.newBlock()
		b.edge(b.cur, head, EdgeSeq, nil)
		// The RangeStmt node stands for the operand use and the
		// per-iteration key/value bind (ShallowInspect stops at its
		// Body).
		head.Nodes = append(head.Nodes, st)
		b.edge(head, body, EdgeTrue, nil)
		b.edge(head, after, EdgeFalse, nil)
		b.targets = append(b.targets, breakTarget{label: label, breakTo: after, continueTo: head})
		b.cur = body
		b.stmt(st.Body, "")
		b.targets = b.targets[:len(b.targets)-1]
		b.edge(b.cur, head, EdgeSeq, nil)
		b.cur = after

	case *ast.SwitchStmt:
		if st.Init != nil {
			b.stmt(st.Init, "")
		}
		if st.Tag != nil {
			b.cur.Nodes = append(b.cur.Nodes, st.Tag)
		}
		b.switchClauses(st.Body.List, label, func(cc *ast.CaseClause) ([]ast.Expr, []ast.Stmt, bool) {
			return cc.List, cc.Body, cc.List == nil
		})

	case *ast.TypeSwitchStmt:
		if st.Init != nil {
			b.stmt(st.Init, "")
		}
		// The guard (x := y.(type) or y.(type)) evaluates once, in the
		// dispatch block.
		b.cur.Nodes = append(b.cur.Nodes, st.Assign)
		b.switchClauses(st.Body.List, label, func(cc *ast.CaseClause) ([]ast.Expr, []ast.Stmt, bool) {
			return nil, cc.Body, cc.List == nil
		})

	case *ast.SelectStmt:
		head := b.cur
		after := b.newBlock()
		b.targets = append(b.targets, breakTarget{label: label, breakTo: after})
		for _, cs := range st.Body.List {
			cc := cs.(*ast.CommClause)
			blk := b.newBlock()
			b.edge(head, blk, EdgeSeq, nil)
			b.cur = blk
			if cc.Comm != nil {
				b.stmt(cc.Comm, "")
			}
			b.stmtList(cc.Body)
			b.edge(b.cur, after, EdgeSeq, nil)
		}
		b.targets = b.targets[:len(b.targets)-1]
		// select{} (no clauses) blocks forever: after stays unreachable.
		b.cur = after

	case *ast.ReturnStmt:
		b.cur.Nodes = append(b.cur.Nodes, st)
		b.terminate(b.c.Exit, EdgeReturn)

	case *ast.BranchStmt:
		switch st.Tok {
		case token.BREAK:
			if t := b.findTarget(st.Label, false); t != nil {
				b.terminate(t.breakTo, EdgeSeq)
				return
			}
		case token.CONTINUE:
			if t := b.findTarget(st.Label, true); t != nil {
				b.terminate(t.continueTo, EdgeSeq)
				return
			}
		case token.GOTO:
			b.terminate(b.labelBlock(st.Label.Name), EdgeSeq)
			return
		case token.FALLTHROUGH:
			if b.fall != nil {
				b.terminate(b.fall, EdgeSeq)
				return
			}
		}
		// Unresolvable branch (broken code): drop control.
		b.cur = b.newBlock()

	case *ast.LabeledStmt:
		lb := b.labelBlock(st.Label.Name)
		b.edge(b.cur, lb, EdgeSeq, nil)
		b.cur = lb
		b.stmt(st.Stmt, st.Label.Name)

	case *ast.ExprStmt:
		b.cur.Nodes = append(b.cur.Nodes, st)
		if call, ok := ast.Unparen(st.X).(*ast.CallExpr); ok && b.terminalCall(call) {
			b.terminate(b.c.Exit, EdgePanic)
		}

	case *ast.EmptyStmt:
		// nothing

	default:
		// Leaf statements: assignments, declarations, go/defer, sends,
		// inc/dec.
		b.cur.Nodes = append(b.cur.Nodes, s)
	}
}

// switchClauses wires a (type) switch's dispatch: the current block
// fans out to one body block per clause, fallthrough chains bodies,
// and a missing default adds a direct edge to the join. split returns
// a clause's guard expressions, body, and whether it is the default.
func (b *cfgBuilder) switchClauses(clauses []ast.Stmt, label string, split func(*ast.CaseClause) ([]ast.Expr, []ast.Stmt, bool)) {
	head := b.cur
	after := b.newBlock()
	b.targets = append(b.targets, breakTarget{label: label, breakTo: after})
	bodies := make([]*Block, len(clauses))
	for i := range clauses {
		bodies[i] = b.newBlock()
	}
	hasDefault := false
	savedFall := b.fall
	for i, cs := range clauses {
		cc, ok := cs.(*ast.CaseClause)
		if !ok {
			continue
		}
		guards, body, isDefault := split(cc)
		if isDefault {
			hasDefault = true
		}
		// Guard expressions evaluate during dispatch.
		head.Nodes = append(head.Nodes, exprNodes(guards)...)
		b.edge(head, bodies[i], EdgeSeq, nil)
		b.fall = nil
		if i+1 < len(clauses) {
			b.fall = bodies[i+1]
		}
		b.cur = bodies[i]
		b.stmtList(body)
		b.edge(b.cur, after, EdgeSeq, nil)
	}
	b.fall = savedFall
	if !hasDefault {
		b.edge(head, after, EdgeSeq, nil)
	}
	b.targets = b.targets[:len(b.targets)-1]
	b.cur = after
}

func exprNodes(exprs []ast.Expr) []ast.Node {
	out := make([]ast.Node, len(exprs))
	for i, e := range exprs {
		out[i] = e
	}
	return out
}

// terminalCall reports calls that never return to the caller.
func (b *cfgBuilder) terminalCall(call *ast.CallExpr) bool {
	if b.info == nil {
		return false
	}
	obj := CalleeObject(b.info, call)
	if bi, ok := obj.(*types.Builtin); ok {
		return bi.Name() == "panic"
	}
	fn, ok := obj.(*types.Func)
	if !ok || fn.Pkg() == nil {
		return false
	}
	switch fn.Pkg().Path() {
	case "os":
		return fn.Name() == "Exit"
	case "runtime":
		return fn.Name() == "Goexit"
	case "log":
		switch fn.Name() {
		case "Fatal", "Fatalf", "Fatalln", "Panic", "Panicf", "Panicln":
			return true
		}
	}
	return false
}

// ShallowInspect visits n and its children the way block nodes are
// meant to be read: it does not descend into statement bodies (a
// compound node like RangeStmt appears in a block only for its
// header) or into function literal bodies (a literal is a value here;
// its body is a different function). The FuncLit node itself is
// visited, so capture analyses can see it.
func ShallowInspect(n ast.Node, fn func(ast.Node) bool) {
	ast.Inspect(n, func(m ast.Node) bool {
		switch m.(type) {
		case *ast.BlockStmt:
			return false
		case nil:
			return true
		}
		if !fn(m) {
			return false
		}
		if _, isLit := m.(*ast.FuncLit); isLit {
			return false
		}
		return true
	})
}

// --- Worklist solver -------------------------------------------------------

// FlowProblem is one dataflow analysis over a CFG. States are opaque
// to the solver; only the problem interprets them. Transfer must not
// mutate its input state (blocks with several successors reuse it).
type FlowProblem interface {
	// Boundary is the state entering Entry (forward) or leaving Exit
	// (backward).
	Boundary() any
	// Transfer computes the state leaving block b given the state
	// entering it (directions swap for backward problems).
	Transfer(b *Block, in any) any
	// Join merges two states where control flow meets.
	Join(a, b any) any
	// Equal detects the fixed point.
	Equal(a, b any) bool
}

// EdgeRefiner optionally refines the state flowing along one edge —
// e.g. recording the branch condition a path took, or killing facts a
// condition contradicts.
type EdgeRefiner interface {
	RefineEdge(e *Edge, state any) any
}

// Solve runs a worklist iteration to the fixed point and returns the
// state entering each reached block (forward) or leaving it
// (backward). Unreachable blocks are absent from the result.
func (c *CFG) Solve(p FlowProblem, backward bool) map[*Block]any {
	in := make(map[*Block]any, len(c.Blocks))
	seen := make(map[*Block]bool, len(c.Blocks))
	start := c.Entry
	if backward {
		start = c.Exit
	}
	in[start] = p.Boundary()
	seen[start] = true
	work := []*Block{start}
	queued := map[*Block]bool{start: true}
	refiner, _ := p.(EdgeRefiner)
	for len(work) > 0 {
		b := work[0]
		work = work[1:]
		queued[b] = false
		out := p.Transfer(b, in[b])
		edges := b.Succs
		if backward {
			edges = b.Preds
		}
		for _, e := range edges {
			next := e.To
			if backward {
				next = e.From
			}
			s := out
			if refiner != nil {
				s = refiner.RefineEdge(e, s)
			}
			if seen[next] {
				merged := p.Join(in[next], s)
				if p.Equal(merged, in[next]) {
					continue
				}
				in[next] = merged
			} else {
				in[next] = s
				seen[next] = true
			}
			if !queued[next] {
				queued[next] = true
				work = append(work, next)
			}
		}
	}
	return in
}

// --- Def-use chains --------------------------------------------------------

// Ref is one definition or use of a variable inside a CFG.
type Ref struct {
	Block *Block
	Ident *ast.Ident
	// IsDef marks a binding or whole-variable assignment; a field or
	// element write through the variable is a use of it.
	IsDef bool
}

// DefUse computes the def-use chains of every local variable
// mentioned in the graph: per variable, its defs and uses in block
// index order (which is source order within a block). Idents inside
// function literal bodies belong to the literal and are excluded.
func (c *CFG) DefUse(info *types.Info) map[*types.Var][]Ref {
	out := make(map[*types.Var][]Ref)
	add := func(b *Block, id *ast.Ident, isDef bool) {
		var obj types.Object
		if isDef {
			obj = info.Defs[id]
			if obj == nil {
				obj = info.Uses[id]
			}
		} else {
			obj = info.Uses[id]
		}
		v, ok := obj.(*types.Var)
		if !ok || v.IsField() {
			return
		}
		out[v] = append(out[v], Ref{Block: b, Ident: id, IsDef: isDef})
	}
	for _, b := range c.Blocks {
		for _, n := range b.Nodes {
			// Whole-variable assignment targets are defs; everything
			// else that resolves to a variable is a use.
			defs := make(map[*ast.Ident]bool)
			switch st := n.(type) {
			case *ast.AssignStmt:
				for _, lhs := range st.Lhs {
					if id, ok := ast.Unparen(lhs).(*ast.Ident); ok {
						defs[id] = true
					}
				}
			case *ast.RangeStmt:
				if id, ok := st.Key.(*ast.Ident); ok {
					defs[id] = true
				}
				if id, ok := st.Value.(*ast.Ident); ok {
					defs[id] = true
				}
			case *ast.DeclStmt:
				if gd, ok := st.Decl.(*ast.GenDecl); ok {
					for _, spec := range gd.Specs {
						if vs, ok := spec.(*ast.ValueSpec); ok {
							for _, name := range vs.Names {
								defs[name] = true
							}
						}
					}
				}
			}
			ShallowInspect(n, func(m ast.Node) bool {
				id, ok := m.(*ast.Ident)
				if !ok {
					return true
				}
				add(b, id, defs[id] || info.Defs[id] != nil)
				return true
			})
		}
	}
	return out
}
