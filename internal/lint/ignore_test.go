package lint_test

import (
	"strings"
	"testing"

	"repro/internal/lint"
	"repro/internal/lint/errtaxonomy"
	"repro/internal/lint/lockcheck"
	"repro/internal/lint/poolsafe"
	"repro/internal/lint/resleak"
)

// TestUnusedIgnoreReported loads the ignore-lifecycle fixture and
// runs the analyzer both directives name: the used directive
// suppresses its finding silently, the stale one is reported as
// unused at the directive's own line.
func TestUnusedIgnoreReported(t *testing.T) {
	pkg, err := lint.LoadDir("testdata/src/auth")
	if err != nil {
		t.Fatalf("load fixture: %v", err)
	}
	diags, err := lint.RunPackage(pkg, []*lint.Analyzer{errtaxonomy.Analyzer})
	if err != nil {
		t.Fatalf("run errtaxonomy: %v", err)
	}
	if len(diags) != 1 {
		t.Fatalf("got %d diagnostics, want exactly the unused-ignore report: %v", len(diags), diags)
	}
	d := diags[0]
	if d.Analyzer != "lint" {
		t.Errorf("unused-ignore diagnostic attributed to %q, want the lint framework itself", d.Analyzer)
	}
	if !strings.Contains(d.Message, "unused lint:ignore directive: errtaxonomy") {
		t.Errorf("diagnostic %q does not name the stale directive", d.Message)
	}
	if d.Pos.Line != 17 {
		t.Errorf("diagnostic anchored at line %d, want the stale directive's line 17", d.Pos.Line)
	}
}

// TestUnusedIgnoreGatedOnRanAnalyzers runs an analyzer the fixture's
// directives do not name: directives for analyzers that did not run
// this pass must not be flagged (a single-analyzer run would
// otherwise false-flag every other analyzer's exceptions).
func TestUnusedIgnoreGatedOnRanAnalyzers(t *testing.T) {
	pkg, err := lint.LoadDir("testdata/src/auth")
	if err != nil {
		t.Fatalf("load fixture: %v", err)
	}
	diags, err := lint.RunPackage(pkg, []*lint.Analyzer{lockcheck.Analyzer})
	if err != nil {
		t.Fatalf("run lockcheck: %v", err)
	}
	if len(diags) != 0 {
		t.Fatalf("lockcheck-only run flagged directives for analyzers that never ran: %v", diags)
	}
}

// TestUnusedIgnoreFlowAnalyzers runs the lifecycle against poolsafe:
// the directive over a real leak suppresses it silently, the one over
// clean pool discipline is reported as stale, and the resleak
// directive stays untouched because resleak did not run.
func TestUnusedIgnoreFlowAnalyzers(t *testing.T) {
	pkg, err := lint.LoadDir("testdata/src/poolix")
	if err != nil {
		t.Fatalf("load fixture: %v", err)
	}
	diags, err := lint.RunPackage(pkg, []*lint.Analyzer{poolsafe.Analyzer})
	if err != nil {
		t.Fatalf("run poolsafe: %v", err)
	}
	if len(diags) != 1 {
		t.Fatalf("got %d diagnostics, want exactly the stale poolsafe directive: %v", len(diags), diags)
	}
	d := diags[0]
	if d.Analyzer != "lint" || !strings.Contains(d.Message, "unused lint:ignore directive: poolsafe") {
		t.Errorf("want the stale poolsafe directive reported by the framework, got %v", d)
	}
}

// TestUnusedIgnoreFlowAnalyzersGate adds resleak to the run: now the
// stale resleak directive is judged too, while the used poolsafe
// suppression still holds.
func TestUnusedIgnoreFlowAnalyzersGate(t *testing.T) {
	pkg, err := lint.LoadDir("testdata/src/poolix")
	if err != nil {
		t.Fatalf("load fixture: %v", err)
	}
	diags, err := lint.RunPackage(pkg, []*lint.Analyzer{poolsafe.Analyzer, resleak.Analyzer})
	if err != nil {
		t.Fatalf("run poolsafe+resleak: %v", err)
	}
	if len(diags) != 2 {
		t.Fatalf("got %d diagnostics, want the two stale directives: %v", len(diags), diags)
	}
	for _, want := range []string{
		"unused lint:ignore directive: poolsafe",
		"unused lint:ignore directive: resleak",
	} {
		found := false
		for _, d := range diags {
			if d.Analyzer == "lint" && strings.Contains(d.Message, want) {
				found = true
			}
		}
		if !found {
			t.Errorf("no framework diagnostic matching %q in %v", want, diags)
		}
	}
}
