package lint_test

import (
	"strings"
	"testing"

	"repro/internal/lint"
	"repro/internal/lint/errtaxonomy"
	"repro/internal/lint/lockcheck"
)

// TestUnusedIgnoreReported loads the ignore-lifecycle fixture and
// runs the analyzer both directives name: the used directive
// suppresses its finding silently, the stale one is reported as
// unused at the directive's own line.
func TestUnusedIgnoreReported(t *testing.T) {
	pkg, err := lint.LoadDir("testdata/src/auth")
	if err != nil {
		t.Fatalf("load fixture: %v", err)
	}
	diags, err := lint.RunPackage(pkg, []*lint.Analyzer{errtaxonomy.Analyzer})
	if err != nil {
		t.Fatalf("run errtaxonomy: %v", err)
	}
	if len(diags) != 1 {
		t.Fatalf("got %d diagnostics, want exactly the unused-ignore report: %v", len(diags), diags)
	}
	d := diags[0]
	if d.Analyzer != "lint" {
		t.Errorf("unused-ignore diagnostic attributed to %q, want the lint framework itself", d.Analyzer)
	}
	if !strings.Contains(d.Message, "unused lint:ignore directive: errtaxonomy") {
		t.Errorf("diagnostic %q does not name the stale directive", d.Message)
	}
	if d.Pos.Line != 17 {
		t.Errorf("diagnostic anchored at line %d, want the stale directive's line 17", d.Pos.Line)
	}
}

// TestUnusedIgnoreGatedOnRanAnalyzers runs an analyzer the fixture's
// directives do not name: directives for analyzers that did not run
// this pass must not be flagged (a single-analyzer run would
// otherwise false-flag every other analyzer's exceptions).
func TestUnusedIgnoreGatedOnRanAnalyzers(t *testing.T) {
	pkg, err := lint.LoadDir("testdata/src/auth")
	if err != nil {
		t.Fatalf("load fixture: %v", err)
	}
	diags, err := lint.RunPackage(pkg, []*lint.Analyzer{lockcheck.Analyzer})
	if err != nil {
		t.Fatalf("run lockcheck: %v", err)
	}
	if len(diags) != 0 {
		t.Fatalf("lockcheck-only run flagged directives for analyzers that never ran: %v", diags)
	}
}
