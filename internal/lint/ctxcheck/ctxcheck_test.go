package ctxcheck_test

import (
	"testing"

	"repro/internal/lint/ctxcheck"
	"repro/internal/lint/linttest"
)

func TestLibrary(t *testing.T) {
	linttest.Run(t, ctxcheck.Analyzer, "testdata/src/lib")
}

func TestEdgePackage(t *testing.T) {
	linttest.Run(t, ctxcheck.Analyzer, "testdata/src/cmd/tool")
}
