// Package ctxcheck enforces context propagation:
//
//  1. context.Background() and context.TODO() may be minted only at
//     program edges — packages under cmd/ or examples/, and _test.go
//     files. Library code (internal/, the facade) must thread the
//     caller's context.
//  2. Anywhere — edges included — a function that already receives a
//     ctx parameter must not mint a fresh root context for a callee;
//     it must pass (or derive from) the ctx it was given. This is the
//     bug class where a deadline silently stops propagating.
package ctxcheck

import (
	"go/ast"
	"go/types"
	"strings"

	"repro/internal/lint"
)

// Analyzer is the ctxcheck entry point.
var Analyzer = &lint.Analyzer{
	Name: "ctxcheck",
	Doc:  "no context.Background()/TODO() outside cmd/, examples/ and tests; functions receiving ctx must propagate it",
	Run:  run,
}

func run(pass *lint.Pass) error {
	edge := edgePackage(pass.PkgPath)
	for _, scope := range lint.FuncScopes(pass.Files) {
		hasCtx := scopeHasCtx(pass.TypesInfo, scope)
		scope.InspectShallow(func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			name, isRoot := rootCtxCall(pass.TypesInfo, call)
			if !isRoot {
				return true
			}
			switch {
			case hasCtx:
				pass.Reportf(call.Pos(),
					"function already receives a context; pass ctx (or a context derived from it) instead of context.%s()", name)
			case !edge && !testFile(pass, call):
				pass.Reportf(call.Pos(),
					"context.%s() is forbidden in library code; accept a context.Context from the caller (only cmd/, examples/ and tests mint root contexts)", name)
			}
			return true
		})
	}
	return nil
}

// edgePackage reports whether the import path is a program edge:
// any path segment equal to cmd or examples.
func edgePackage(pkgPath string) bool {
	for _, seg := range strings.Split(pkgPath, "/") {
		if seg == "cmd" || seg == "examples" {
			return true
		}
	}
	return false
}

// testFile reports whether the node lives in a _test.go file.
func testFile(pass *lint.Pass, n ast.Node) bool {
	return strings.HasSuffix(pass.Fset.Position(n.Pos()).Filename, "_test.go")
}

// rootCtxCall matches context.Background() / context.TODO().
func rootCtxCall(info *types.Info, call *ast.CallExpr) (string, bool) {
	obj := lint.CalleeObject(info, call)
	if lint.IsPkgFunc(obj, "context", "Background") {
		return "Background", true
	}
	if lint.IsPkgFunc(obj, "context", "TODO") {
		return "TODO", true
	}
	return "", false
}

// scopeHasCtx reports whether the function, or for a literal any
// enclosing function it closes over, declares a context.Context
// parameter.
func scopeHasCtx(info *types.Info, scope *lint.FuncScope) bool {
	for s := scope; s != nil; s = s.Parent {
		if s.Type == nil || s.Type.Params == nil {
			continue
		}
		for _, field := range s.Type.Params.List {
			tv, ok := info.Types[field.Type]
			if !ok {
				continue
			}
			if isContextType(tv.Type) {
				return true
			}
		}
	}
	return false
}

// isContextType matches the context.Context interface type.
func isContextType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "context" && obj.Name() == "Context"
}
