// Fixture for ctxcheck: cmd/ packages are program edges and may mint
// root contexts — but a function that already has one must pass it on.
package main

import "context"

func main() {
	ctx := context.Background() // edge package: allowed
	run(ctx)
}

func run(ctx context.Context) {
	use(context.TODO()) // want "pass ctx"
	use(ctx)
}

func use(ctx context.Context) { _ = ctx }
