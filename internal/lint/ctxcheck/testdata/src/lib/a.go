// Fixture for ctxcheck: library code must thread the caller's context.
package lib

import (
	"context"
	"time"
)

func mintBad() context.Context {
	return context.Background() // want "forbidden in library code"
}

func todoBad() {
	ctx := context.TODO() // want "forbidden in library code"
	_ = ctx
}

func dropBad(ctx context.Context) error {
	c, cancel := context.WithTimeout(context.Background(), time.Second) // want "pass ctx"
	defer cancel()
	<-c.Done()
	return c.Err()
}

func closureBad(ctx context.Context) func() context.Context {
	return func() context.Context {
		return context.TODO() // want "pass ctx"
	}
}

func passGood(ctx context.Context) error {
	c, cancel := context.WithTimeout(ctx, time.Second)
	defer cancel()
	<-c.Done()
	return c.Err()
}
