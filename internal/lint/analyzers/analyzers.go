// Package analyzers is the single registry of authlint's analyzers.
// Both driver modes (the standalone loader and the go vet -vettool
// unitchecker) take the suite from All, so an analyzer registered
// here is wired everywhere — and TestRegistryExhaustive fails the
// build of any analyzer package that exists on disk but is missing
// from this list.
package analyzers

import (
	"repro/internal/lint"
	"repro/internal/lint/atomicwrite"
	"repro/internal/lint/codecsym"
	"repro/internal/lint/ctxcheck"
	"repro/internal/lint/errtaxonomy"
	"repro/internal/lint/goroleak"
	"repro/internal/lint/lockcheck"
	"repro/internal/lint/lockorder"
	"repro/internal/lint/poolsafe"
	"repro/internal/lint/repinvariant"
	"repro/internal/lint/resleak"
	"repro/internal/lint/secretflow"
	"repro/internal/lint/waldrift"
)

// All returns every registered analyzer, ordered by name. Callers may
// reslice but must not mutate the entries.
func All() []*lint.Analyzer {
	return []*lint.Analyzer{
		atomicwrite.Analyzer,
		codecsym.Analyzer,
		ctxcheck.Analyzer,
		errtaxonomy.Analyzer,
		goroleak.Analyzer,
		lockcheck.Analyzer,
		lockorder.Analyzer,
		poolsafe.Analyzer,
		repinvariant.Analyzer,
		resleak.Analyzer,
		secretflow.Analyzer,
		waldrift.Analyzer,
	}
}
