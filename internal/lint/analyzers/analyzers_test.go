package analyzers_test

import (
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
	"testing"

	"repro/internal/lint/analyzers"
)

// analyzerDeclRE matches the package-level Analyzer registration every
// analyzer package carries.
var analyzerDeclRE = regexp.MustCompile(`(?m)^var Analyzer = &lint\.Analyzer\{`)

// analyzerDirs returns the internal/lint subdirectories that declare
// an Analyzer — the on-disk ground truth the registry must cover.
func analyzerDirs(t *testing.T) []string {
	t.Helper()
	entries, err := os.ReadDir("..")
	if err != nil {
		t.Fatalf("read internal/lint: %v", err)
	}
	var dirs []string
	for _, e := range entries {
		if !e.IsDir() || e.Name() == "testdata" {
			continue
		}
		files, err := filepath.Glob(filepath.Join("..", e.Name(), "*.go"))
		if err != nil {
			t.Fatalf("glob %s: %v", e.Name(), err)
		}
		for _, f := range files {
			data, err := os.ReadFile(f)
			if err != nil {
				t.Fatalf("read %s: %v", f, err)
			}
			if analyzerDeclRE.Match(data) {
				dirs = append(dirs, e.Name())
				break
			}
		}
	}
	sort.Strings(dirs)
	return dirs
}

// TestRegistryExhaustive requires one registry entry per analyzer
// package on disk, named after its directory, with no duplicates or
// strays. A new analyzer package that is not added to All() fails
// here before it can silently miss both driver modes.
func TestRegistryExhaustive(t *testing.T) {
	dirs := analyzerDirs(t)
	if len(dirs) == 0 {
		t.Fatal("found no analyzer packages under internal/lint")
	}
	var names []string
	for _, a := range analyzers.All() {
		if a.Name == "" || a.Doc == "" {
			t.Errorf("analyzer %+v has an empty Name or Doc", a)
		}
		names = append(names, a.Name)
	}
	sort.Strings(names)
	if strings.Join(names, ",") != strings.Join(dirs, ",") {
		t.Errorf("registry/disk mismatch:\n  registered: %v\n  on disk:    %v", names, dirs)
	}
}

// TestDriverUsesRegistry pins both cmd/authlint code paths to the
// registry: the driver must import this package and must not import
// any analyzer package directly (which is how a stray hand-wired list
// would reappear).
func TestDriverUsesRegistry(t *testing.T) {
	data, err := os.ReadFile(filepath.Join("..", "..", "..", "cmd", "authlint", "main.go"))
	if err != nil {
		t.Fatalf("read cmd/authlint/main.go: %v", err)
	}
	src := string(data)
	if !strings.Contains(src, `"repro/internal/lint/analyzers"`) {
		t.Error("cmd/authlint does not import the analyzer registry")
	}
	if !strings.Contains(src, "analyzers.All()") {
		t.Error("cmd/authlint does not take its suite from analyzers.All()")
	}
	for _, a := range analyzers.All() {
		if strings.Contains(src, `"repro/internal/lint/`+a.Name+`"`) {
			t.Errorf("cmd/authlint imports %s directly; analyzers must only be wired through the registry", a.Name)
		}
	}
}

// TestDesignDocCoverage requires DESIGN.md's static-analysis section
// to document every registered analyzer by name.
func TestDesignDocCoverage(t *testing.T) {
	data, err := os.ReadFile(filepath.Join("..", "..", "..", "DESIGN.md"))
	if err != nil {
		t.Fatalf("read DESIGN.md: %v", err)
	}
	doc := string(data)
	for _, a := range analyzers.All() {
		if !strings.Contains(doc, "**"+a.Name+"**") && !strings.Contains(doc, "`"+a.Name+"`") {
			t.Errorf("DESIGN.md does not document analyzer %s", a.Name)
		}
	}
}
