package analyzers_test

import (
	"go/ast"
	"testing"

	"repro/internal/lint"
	"repro/internal/lint/analyzers"
)

// BenchmarkAuthlint times the full analyzer suite over the entire
// repository module (load cost excluded), then each analyzer alone —
// the per-analyzer breakdown recorded in EXPERIMENTS.md — and finally
// raw CFG construction for every function in the module, which is the
// shared fixed cost behind the flow-sensitive analyzers (the Package
// caches CFGs, so the per-analyzer rows pay it only on their first
// iteration). Loading (parse + type-check) happens once per
// benchmark; the measured region is pure analysis.
func BenchmarkAuthlint(b *testing.B) {
	pkgs, err := lint.Load("../../..", "./...")
	if err != nil {
		b.Fatalf("load repo module: %v", err)
	}
	b.Run("suite", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := lint.Run(pkgs, analyzers.All()); err != nil {
				b.Fatal(err)
			}
		}
	})
	for _, a := range analyzers.All() {
		b.Run(a.Name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := lint.Run(pkgs, []*lint.Analyzer{a}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
	b.Run("cfg-construction", func(b *testing.B) {
		funcs := 0
		blocks := 0
		for i := 0; i < b.N; i++ {
			funcs, blocks = 0, 0
			for _, pkg := range pkgs {
				for _, f := range pkg.Files {
					for _, decl := range f.Decls {
						fd, ok := decl.(*ast.FuncDecl)
						if !ok || fd.Body == nil {
							continue
						}
						cfg := lint.NewCFG(fd, pkg.Info)
						funcs++
						blocks += len(cfg.Blocks)
					}
				}
			}
		}
		b.ReportMetric(float64(funcs), "funcs")
		b.ReportMetric(float64(blocks), "blocks")
	})
}
