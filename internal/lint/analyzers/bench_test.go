package analyzers_test

import (
	"testing"

	"repro/internal/lint"
	"repro/internal/lint/analyzers"
)

// BenchmarkAuthlint times the full analyzer suite over the entire
// repository module (load cost excluded), then each analyzer alone —
// the per-analyzer breakdown recorded in EXPERIMENTS.md. Loading
// (parse + type-check) happens once per benchmark; the measured
// region is pure analysis.
func BenchmarkAuthlint(b *testing.B) {
	pkgs, err := lint.Load("../../..", "./...")
	if err != nil {
		b.Fatalf("load repo module: %v", err)
	}
	b.Run("suite", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := lint.Run(pkgs, analyzers.All()); err != nil {
				b.Fatal(err)
			}
		}
	})
	for _, a := range analyzers.All() {
		b.Run(a.Name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := lint.Run(pkgs, []*lint.Analyzer{a}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
