package lint

// Interprocedural taint dataflow. The engine computes, per package,
// which values carry secret material (raw error maps, derived keys,
// unburned CRP pairs, WAL payloads) and which formal parameters of
// each function flow into a disclosure sink (log/fmt output, error
// payloads, file writes outside the WAL, cache-entry stores). The
// secretflow analyzer turns the resulting facts into diagnostics; the
// engine itself is analyzer-agnostic and cached on the Package like
// the call graph, so one fixed point serves every analyzer of a
// package.
//
// The analysis is flow-sensitive inside a function: each basic block
// of the Pass.CFG is solved with its own variable→taint state, a
// plain-identifier assignment strongly updates (reassigning to clean
// data kills taint, and a sanitize on one branch no longer clears the
// sibling branch), and sinks are judged under the state of the block
// they sit in. Stores through fields and the bodies of function
// literals merge weakly. Across functions it is summary-based: each
// declared function gets a FuncFlow summary — which
// formals reach each result, which formals reach a sink, and whether
// a result is secret regardless of inputs — and the package iterates
// summaries to a fixed point over Pass.CallGraph()'s edges. Bits are
// monotone, so the iteration terminates.
//
// Secrecy has three roots:
//
//   - Built-in seeds: named types and struct fields of this repo that
//     hold PUF secrets by construction (errormap.Plane/Map,
//     mapkey.Key, wal.Record payload fields, auth.SessionKey
//     results). Type-based seeds travel across package boundaries for
//     free: any expression whose type is a seeded named type is
//     secret in every package.
//
//   - //lint:secret directives on a type, struct field, var, or func
//     declaration (results). Directive seeds are package-local — the
//     vettool driver sees imported packages only as export data, so a
//     directive in package A is invisible while checking package B;
//     cross-package secrets belong in the built-in seed list.
//
//   - Summaries: a call to a function whose summary says "result is
//     secret" or "result depends on formal i" propagates taint
//     through the call.
//
// Sanitizers terminate taint: cryptographic hashing/MACs (sha256,
// sha512, hmac), the ECC key-strengthening step, len/cap-style
// builtins, and any function carrying //lint:sanitizes <reason>.
//
// Everything is an under-approximation in the direction that suits
// linting: an unresolved call propagates argument taint to its result
// (so derived values stay tainted) but produces no sink facts, and
// channel receives drop taint. Missing edges cost findings, never
// false ones — except for the deliberate over-approximation that a
// field read from a tainted struct is tainted.

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// Taint is a bitset of secrecy origins: bit i (i < 62) means "depends
// on formal parameter i" (receiver counts as formal 0 when present),
// and the AlwaysSecret bit means the value is secret regardless of
// the caller's arguments.
type Taint uint64

// AlwaysSecret marks a value that is secret unconditionally.
const AlwaysSecret Taint = 1 << 63

// maxParams bounds the per-formal bits; functions with more formals
// than this lose precision on the tail (they share the last bit).
const maxParams = 62

// ParamBit returns the taint bit for formal index i.
func ParamBit(i int) Taint {
	if i < 0 {
		return 0
	}
	if i >= maxParams {
		i = maxParams - 1
	}
	return 1 << uint(i)
}

// taintVal is a taint bitset plus a human description of the
// unconditional source, carried so diagnostics can name the secret.
type taintVal struct {
	bits Taint
	src  string
}

func (v taintVal) union(w taintVal) taintVal {
	out := taintVal{bits: v.bits | w.bits, src: v.src}
	if out.src == "" {
		out.src = w.src
	}
	return out
}

// SinkFlow records that formal Param of a function reaches sink Sink
// when the function is called — the conditional half of a summary.
// Chain names the in-package calls between the function and the sink,
// innermost last.
type SinkFlow struct {
	Param int
	Sink  string
	Chain []string
	Pos   token.Pos
}

// Finding is one unconditional secret-to-sink flow: a value that is
// secret in its own right (not via a formal) reaches a sink inside
// this function. The secretflow analyzer reports these.
type Finding struct {
	Pos    token.Pos
	Sink   string
	Chain  []string
	Source string
}

// FuncFlow is one function's dataflow summary.
type FuncFlow struct {
	Fn   *types.Func
	Decl *ast.FuncDecl
	// Params lists the formals, receiver first when present; the slice
	// index is the taint bit index.
	Params []*types.Var
	// Results is the taint of each result: which formals flow to it,
	// and AlwaysSecret when it is secret regardless.
	Results []Taint
	// ResultSrc describes the unconditional source per result ("" when
	// the AlwaysSecret bit is clear).
	ResultSrc []string
	// Sinks are the formal-to-sink flows callers must respect.
	Sinks []SinkFlow
	// Findings are the unconditional flows discovered in the body.
	Findings []Finding
	// Sanitizer marks //lint:sanitizes functions: their results are
	// clean by declaration (the body is still scanned for sinks).
	Sanitizer bool
}

// DirectivePos locates one secrecy directive for diagnostics.
type DirectivePos struct {
	Pos  token.Pos
	Text string
}

// Dataflow is the package-level taint result.
type Dataflow struct {
	// Funcs maps every declared function to its summary.
	Funcs map[*types.Func]*FuncFlow
	order []*FuncFlow
	// UnusedSecret are //lint:secret or //lint:sanitizes comments
	// attached to nothing the engine understands — stale or misplaced
	// armor, reported like unused ignores.
	UnusedSecret []DirectivePos
	// NoReasonSanitizes are //lint:sanitizes directives without the
	// mandatory reason.
	NoReasonSanitizes []DirectivePos

	secrets *secretDecls
	pkgPath string
}

// All returns the function summaries in declaration order.
func (d *Dataflow) All() []*FuncFlow { return d.order }

// Dataflow returns the package's taint analysis, building it on first
// use and sharing it across every analyzer of the package.
func (p *Pass) Dataflow() *Dataflow {
	if p.pkg == nil {
		return buildDataflow(p.Files, p.TypesInfo, p.Pkg, p.PkgPath, p.CallGraph(), p.CFG)
	}
	if p.pkg.df == nil {
		p.pkg.df = buildDataflow(p.pkg.Files, p.pkg.Info, p.pkg.Types, p.pkg.PkgPath, p.CallGraph(), p.CFG)
	}
	return p.pkg.df
}

// --- Secret declarations ---------------------------------------------------

// builtinSecretTypes seeds named types whose every value is secret,
// keyed by "pkgpath.TypeName". These cross package boundaries: the
// key is matched against the type's declaring package, not the
// package under analysis.
var builtinSecretTypes = map[string]string{
	"repro/internal/errormap.Plane":         "raw error map (errormap.Plane)",
	"repro/internal/errormap.Map":           "multi-voltage error map (errormap.Map)",
	"repro/internal/errormap.DistanceField": "error-map distance field (errormap.DistanceField)",
	"repro/internal/mapkey.Key":             "derived map key (mapkey.Key)",
	"repro/internal/crp.Registry":           "burned-pair registry (crp.Registry)",
}

// builtinSecretFields seeds struct fields, keyed by
// "pkgpath.Type.Field".
var builtinSecretFields = map[string]string{
	"repro/internal/wal.Record.MapBytes": "WAL record payload (Record.MapBytes)",
	"repro/internal/wal.Record.Key":      "WAL record payload (Record.Key)",
	"repro/internal/wal.Record.Pairs":    "WAL record payload (Record.Pairs)",
}

// builtinSecretResults seeds functions whose results are secret,
// keyed by "pkgpath.Func".
var builtinSecretResults = map[string]string{
	"repro/internal/auth.SessionKey": "derived session key (auth.SessionKey)",
}

// builtinSanitizerPkgs lists packages whose every function output is
// considered clean: one-way transforms that destroy the secret.
var builtinSanitizerPkgs = map[string]bool{
	"crypto/sha256": true,
	"crypto/sha512": true,
	"crypto/hmac":   true,
	"crypto/subtle": true,
}

// builtinSanitizerFuncs lists individual sanitizing functions and
// methods, keyed by "pkgpath.Func". Besides the cryptographic
// strengthening step, the error-map metadata accessors are here:
// voltage levels, geometry, and aggregate counts are enrollment
// parameters the protocol already exposes, not map contents.
var builtinSanitizerFuncs = map[string]bool{
	"repro/internal/ecc.StrengthenKey":   true,
	"repro/internal/errormap.Voltages":   true,
	"repro/internal/errormap.Geometry":   true,
	"repro/internal/errormap.ErrorCount": true,
}

// secretDecls indexes the secrecy roots visible to one package.
type secretDecls struct {
	types      map[types.Object]string
	fields     map[types.Object]string
	vars       map[types.Object]string
	funcs      map[types.Object]string
	sanitizers map[types.Object]bool
}

const (
	secretDirective    = "lint:secret"
	sanitizesDirective = "lint:sanitizes"
)

// directiveComment returns the trimmed directive text when c is a
// //lint:secret or //lint:sanitizes comment ("" otherwise).
func directiveComment(c *ast.Comment) string {
	text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
	if text == secretDirective || strings.HasPrefix(text, secretDirective+" ") ||
		text == sanitizesDirective || strings.HasPrefix(text, sanitizesDirective+" ") {
		return text
	}
	return ""
}

// collectSecretDecls parses the package's //lint:secret and
// //lint:sanitizes directives and merges them with the built-in
// seeds.
func collectSecretDecls(files []*ast.File, info *types.Info, df *Dataflow) *secretDecls {
	s := &secretDecls{
		types:      make(map[types.Object]string),
		fields:     make(map[types.Object]string),
		vars:       make(map[types.Object]string),
		funcs:      make(map[types.Object]string),
		sanitizers: make(map[types.Object]bool),
	}
	used := make(map[*ast.Comment]bool)

	// take consumes a directive of the wanted kind from the comment
	// groups and returns the comment, or nil.
	take := func(kind string, groups ...*ast.CommentGroup) *ast.Comment {
		for _, g := range groups {
			if g == nil {
				continue
			}
			for _, c := range g.List {
				text := directiveComment(c)
				if text == "" || used[c] {
					continue
				}
				if text == kind || strings.HasPrefix(text, kind+" ") {
					used[c] = true
					return c
				}
			}
		}
		return nil
	}

	def := func(id *ast.Ident) types.Object {
		if obj := info.Defs[id]; obj != nil {
			return obj
		}
		return info.Uses[id]
	}

	for _, f := range files {
		for _, decl := range f.Decls {
			switch d := decl.(type) {
			case *ast.FuncDecl:
				obj := def(d.Name)
				if obj == nil {
					continue
				}
				if take(secretDirective, d.Doc) != nil {
					s.funcs[obj] = "result of " + d.Name.Name + " (declared //lint:secret)"
				}
				if c := take(sanitizesDirective, d.Doc); c != nil {
					s.sanitizers[obj] = true
					reason := strings.TrimSpace(strings.TrimPrefix(directiveComment(c), sanitizesDirective))
					if reason == "" {
						df.NoReasonSanitizes = append(df.NoReasonSanitizes, DirectivePos{Pos: c.Pos(), Text: c.Text})
					}
				}
			case *ast.GenDecl:
				for _, spec := range d.Specs {
					switch sp := spec.(type) {
					case *ast.TypeSpec:
						groups := []*ast.CommentGroup{sp.Doc, sp.Comment}
						if len(d.Specs) == 1 {
							groups = append(groups, d.Doc)
						}
						if take(secretDirective, groups...) != nil {
							if obj := def(sp.Name); obj != nil {
								s.types[obj] = sp.Name.Name + " value (declared //lint:secret)"
							}
						}
						if st, ok := sp.Type.(*ast.StructType); ok {
							for _, field := range st.Fields.List {
								if take(secretDirective, field.Doc, field.Comment) == nil {
									continue
								}
								for _, name := range field.Names {
									if obj := def(name); obj != nil {
										s.fields[obj] = "field " + sp.Name.Name + "." + name.Name + " (declared //lint:secret)"
									}
								}
							}
						}
					case *ast.ValueSpec:
						groups := []*ast.CommentGroup{sp.Doc, sp.Comment}
						if len(d.Specs) == 1 {
							groups = append(groups, d.Doc)
						}
						if take(secretDirective, groups...) == nil {
							continue
						}
						for _, name := range sp.Names {
							if obj := def(name); obj != nil {
								s.vars[obj] = name.Name + " (declared //lint:secret)"
							}
						}
					}
				}
			}
		}
	}

	// Whatever directive comment was not consumed above is attached to
	// nothing: report it so stale annotations cannot silently excuse
	// (or fail to protect) anything.
	for _, f := range files {
		for _, g := range f.Comments {
			for _, c := range g.List {
				if used[c] {
					continue
				}
				if text := directiveComment(c); text != "" {
					df.UnusedSecret = append(df.UnusedSecret, DirectivePos{Pos: c.Pos(), Text: c.Text})
				}
			}
		}
	}
	return s
}

// typeSecret reports whether every value of type t is secret,
// unwrapping pointers and element types of slices, arrays, and maps.
func (s *secretDecls) typeSecret(t types.Type) (string, bool) {
	for depth := 0; t != nil && depth < 8; depth++ {
		switch u := t.(type) {
		case *types.Pointer:
			t = u.Elem()
		case *types.Slice:
			t = u.Elem()
		case *types.Array:
			t = u.Elem()
		case *types.Map:
			t = u.Elem()
		case *types.Named:
			obj := u.Obj()
			if desc, ok := s.types[obj]; ok {
				return desc, true
			}
			if obj.Pkg() != nil {
				if desc, ok := builtinSecretTypes[obj.Pkg().Path()+"."+obj.Name()]; ok {
					return desc, true
				}
			}
			t = u.Underlying()
			if _, again := t.(*types.Named); !again {
				switch t.(type) {
				case *types.Pointer, *types.Slice, *types.Array, *types.Map:
					continue
				}
			}
			return "", false
		default:
			return "", false
		}
	}
	return "", false
}

// fieldSecret reports whether selecting field obj yields a secret.
func (s *secretDecls) fieldSecret(sel *types.Selection) (string, bool) {
	obj := sel.Obj()
	if desc, ok := s.fields[obj]; ok {
		return desc, true
	}
	v, ok := obj.(*types.Var)
	if !ok || v.Pkg() == nil {
		return "", false
	}
	recv := sel.Recv()
	if p, isPtr := recv.Underlying().(*types.Pointer); isPtr {
		recv = p.Elem()
	}
	owner := namedName(recv)
	if owner == "" {
		return "", false
	}
	key := v.Pkg().Path() + "." + owner + "." + v.Name()
	desc, ok := builtinSecretFields[key]
	return desc, ok
}

// resultSecret reports whether calling obj yields secret results.
func (s *secretDecls) resultSecret(obj types.Object) (string, bool) {
	if desc, ok := s.funcs[obj]; ok {
		return desc, true
	}
	if obj == nil || obj.Pkg() == nil {
		return "", false
	}
	desc, ok := builtinSecretResults[obj.Pkg().Path()+"."+obj.Name()]
	return desc, ok
}

// sanitizer reports whether obj is a taint-terminating transform.
func (s *secretDecls) sanitizer(obj types.Object) bool {
	if obj == nil {
		return false
	}
	if s.sanitizers[obj] {
		return true
	}
	if obj.Pkg() == nil {
		return false
	}
	if builtinSanitizerPkgs[obj.Pkg().Path()] {
		return true
	}
	return builtinSanitizerFuncs[obj.Pkg().Path()+"."+obj.Name()]
}

// --- Sinks -----------------------------------------------------------------

// inWALPackage reports whether the package under analysis is the WAL
// itself, whose whole purpose is persisting secret payloads.
func inWALPackage(pkgPath string) bool {
	return pkgPath == "repro/internal/wal" || strings.HasSuffix(pkgPath, "/internal/wal") || pkgPath == "wal"
}

// sinkOf classifies a callee as a disclosure sink. obj may be a
// function, a method, or a func-typed field/variable (logger
// callbacks like Config.Logf).
func sinkOf(pkgPath string, obj types.Object) (string, bool) {
	switch o := obj.(type) {
	case *types.Var:
		// A call through a func-typed value: treat logger-shaped names
		// as log output (the cluster's logf field, injected Logf
		// callbacks). Anything else is opaque.
		if _, isSig := o.Type().Underlying().(*types.Signature); !isSig {
			return "", false
		}
		n := strings.ToLower(o.Name())
		if n == "log" || n == "logf" || n == "logger" || strings.HasSuffix(n, "logf") {
			return "log output (" + o.Name() + ")", true
		}
		return "", false
	case *types.Func:
		pkg := o.Pkg()
		if pkg == nil {
			return "", false
		}
		name := o.Name()
		switch pkg.Path() {
		case "log":
			return "log output (log." + name + ")", true
		case "fmt":
			switch {
			case strings.HasPrefix(name, "Print"), strings.HasPrefix(name, "Fprint"):
				return "fmt output (fmt." + name + ")", true
			case name == "Errorf":
				return "error payload (fmt.Errorf)", true
			}
		case "errors":
			if name == "New" {
				return "error payload (errors.New)", true
			}
		case "os":
			if inWALPackage(pkgPath) {
				return "", false
			}
			if name == "WriteFile" {
				return "file write outside internal/wal (os.WriteFile)", true
			}
			if sig, ok := o.Type().(*types.Signature); ok && sig.Recv() != nil &&
				namedName(sig.Recv().Type()) == "File" && strings.HasPrefix(name, "Write") {
				return "file write outside internal/wal (os.File." + name + ")", true
			}
		}
		// Cache-entry stores: Put/Set/Add/Store methods on *Cache*
		// receivers must never see secret material (ADR-008).
		if sig, ok := o.Type().(*types.Signature); ok && sig.Recv() != nil {
			recv := namedName(sig.Recv().Type())
			if strings.Contains(recv, "Cache") {
				switch name {
				case "Put", "Set", "Add", "Store":
					return "cache entry store (" + recv + "." + name + ")", true
				}
			}
		}
	}
	return "", false
}

// --- Engine ----------------------------------------------------------------

// buildDataflow runs the package fixed point.
func buildDataflow(files []*ast.File, info *types.Info, pkg *types.Package, pkgPath string, cg *CallGraph, cfgOf func(*ast.FuncDecl) *CFG) *Dataflow {
	df := &Dataflow{Funcs: make(map[*types.Func]*FuncFlow), pkgPath: pkgPath}
	df.secrets = collectSecretDecls(files, info, df)

	for _, node := range cg.All() {
		ff := &FuncFlow{Fn: node.Func, Decl: node.Decl}
		if sig, ok := node.Func.Type().(*types.Signature); ok {
			if r := sig.Recv(); r != nil {
				ff.Params = append(ff.Params, r)
			}
			for i := 0; i < sig.Params().Len(); i++ {
				ff.Params = append(ff.Params, sig.Params().At(i))
			}
			ff.Results = make([]Taint, sig.Results().Len())
			ff.ResultSrc = make([]string, sig.Results().Len())
		}
		ff.Sanitizer = df.secrets.sanitizer(node.Func)
		df.Funcs[node.Func] = ff
		df.order = append(df.order, ff)
	}

	an := &flowAnalyzer{df: df, info: info, pkg: pkg, pkgPath: pkgPath, cfgOf: cfgOf}
	// Summary fixed point: re-analyze every function until no summary
	// grows. Taint bits and sink keys are monotone, so this
	// terminates; the bound is a belt against bugs, not a semantics.
	for round := 0; round < len(df.order)+2; round++ {
		changed := false
		for _, ff := range df.order {
			if an.analyze(ff, false) {
				changed = true
			}
		}
		if !changed {
			break
		}
	}
	// Reporting pass: with summaries stable, collect the unconditional
	// findings.
	for _, ff := range df.order {
		an.analyze(ff, true)
	}
	return df
}

// flowAnalyzer holds the per-package state shared across functions.
type flowAnalyzer struct {
	df      *Dataflow
	info    *types.Info
	pkg     *types.Package
	pkgPath string
	cfgOf   func(*ast.FuncDecl) *CFG

	// per-function state, reset by analyze
	ff   *FuncFlow
	seed map[types.Object]taintVal
	vars map[types.Object]taintVal
}

// cleanType reports types that cannot transport secret material:
// booleans and the error interface (an error wrapping a secret is the
// error-payload sink's business at construction, not the value's).
func cleanType(t types.Type) bool {
	if t == nil {
		return false
	}
	if basic, ok := t.Underlying().(*types.Basic); ok {
		return basic.Info()&types.IsBoolean != 0
	}
	if named, ok := t.(*types.Named); ok {
		obj := named.Obj()
		if obj.Name() == "error" && obj.Pkg() == nil {
			return true
		}
	}
	return types.Identical(t, types.Universe.Lookup("error").Type())
}

// analyze computes one function's summary over its control-flow
// graph; with report set it also appends the unconditional findings.
// It returns whether the summary grew.
//
// The analysis is flow-sensitive: each basic block is solved with its
// own state, a plain-identifier assignment strongly updates (so
// reassigning a variable to clean data kills its taint, and
// sanitizing on one branch no longer launders the sibling branch),
// while stores through fields and the effects of function literals
// merge weakly. Sinks and returns are judged under the state of the
// block they sit in.
func (a *flowAnalyzer) analyze(ff *FuncFlow, report bool) bool {
	if ff.Decl == nil || ff.Decl.Body == nil {
		return false
	}
	a.ff = ff
	a.seed = make(map[types.Object]taintVal)
	for i, p := range ff.Params {
		v := taintVal{bits: ParamBit(i)}
		if desc, ok := a.df.secrets.typeSecret(p.Type()); ok {
			v = v.union(taintVal{bits: AlwaysSecret, src: desc})
		}
		if desc, ok := a.df.secrets.vars[p]; ok {
			v = v.union(taintVal{bits: AlwaysSecret, src: desc})
		}
		a.seed[p] = v
	}

	cfg := a.cfgOf(ff.Decl)
	if cfg == nil {
		return false
	}
	sol := cfg.Solve((*taintFlow)(a), false)

	changed := false
	if report {
		ff.Findings = ff.Findings[:0]
	}
	// Deterministic reporting walk: re-run each block's transfer from
	// its solved in-state, judging sinks and returns along the way.
	for _, b := range cfg.Blocks {
		in, ok := sol[b]
		if !ok {
			continue // unreachable
		}
		st := cloneTaint(in.(map[types.Object]taintVal))
		a.vars = st
		for _, n := range b.Nodes {
			if ret, isRet := n.(*ast.ReturnStmt); isRet {
				if a.mergeReturn(ret) {
					changed = true
				}
			}
			if a.scanSinks(n, report) {
				changed = true
			}
			a.stepTaint(st, n)
		}
	}
	return changed
}

// mergeReturn folds one return statement's taint into the result
// summary under the current block state.
func (a *flowAnalyzer) mergeReturn(ret *ast.ReturnStmt) bool {
	ff := a.ff
	if ff.Sanitizer {
		return false
	}
	changed := false
	for j, v := range a.returnValues(ret) {
		if j >= len(ff.Results) {
			break
		}
		if nb := ff.Results[j] | v.bits; nb != ff.Results[j] {
			ff.Results[j] = nb
			changed = true
		}
		if v.bits&AlwaysSecret != 0 && ff.ResultSrc[j] == "" {
			ff.ResultSrc[j] = v.src
		}
	}
	return changed
}

// scanSinks judges every call in this node — including calls inside
// function literals, whose bodies first fold their assignments into
// the state weakly (the literal may run at any time).
func (a *flowAnalyzer) scanSinks(n ast.Node, report bool) bool {
	changed := false
	ShallowInspect(n, func(m ast.Node) bool {
		switch x := m.(type) {
		case *ast.CallExpr:
			if a.sinkCall(x, report) {
				changed = true
			}
		case *ast.FuncLit:
			for iter := 0; iter < 32; iter++ {
				if !a.propagate(x.Body) {
					break
				}
			}
			ast.Inspect(x.Body, func(bn ast.Node) bool {
				if call, ok := bn.(*ast.CallExpr); ok {
					if a.sinkCall(call, report) {
						changed = true
					}
				}
				return true
			})
		}
		return true
	})
	return changed
}

// taintFlow adapts the analyzer to the CFG solver: states are
// variable→taint maps, joined pointwise where branches meet.
type taintFlow flowAnalyzer

func (t *taintFlow) Boundary() any {
	return cloneTaint((*flowAnalyzer)(t).seed)
}

func (t *taintFlow) Transfer(b *Block, in any) any {
	a := (*flowAnalyzer)(t)
	st := cloneTaint(in.(map[types.Object]taintVal))
	for _, n := range b.Nodes {
		a.stepTaint(st, n)
	}
	return st
}

func (t *taintFlow) Join(x, y any) any {
	xs, ys := x.(map[types.Object]taintVal), y.(map[types.Object]taintVal)
	out := cloneTaint(xs)
	for obj, v := range ys {
		out[obj] = out[obj].union(v)
	}
	return out
}

func (t *taintFlow) Equal(x, y any) bool {
	xs, ys := x.(map[types.Object]taintVal), y.(map[types.Object]taintVal)
	if len(xs) != len(ys) {
		return false
	}
	for obj, v := range xs {
		if w, ok := ys[obj]; !ok || w != v {
			return false
		}
	}
	return true
}

func cloneTaint(st map[types.Object]taintVal) map[types.Object]taintVal {
	out := make(map[types.Object]taintVal, len(st))
	for obj, v := range st {
		out[obj] = v
	}
	return out
}

// stepTaint applies one block node's effect to the state. Plain
// identifier targets of `=`/`:=` update strongly — assigning clean
// data kills the old taint — while compound stores and the bodies of
// function literals (which may run at any time) merge weakly.
func (a *flowAnalyzer) stepTaint(st map[types.Object]taintVal, n ast.Node) {
	a.vars = st
	strong := func(target ast.Expr, v taintVal, replace bool) {
		if id, ok := ast.Unparen(target).(*ast.Ident); ok {
			if id.Name == "_" {
				return
			}
			obj := a.info.Defs[id]
			if obj == nil {
				obj = a.info.Uses[id]
			}
			if obj == nil {
				return
			}
			if cleanType(obj.Type()) {
				return
			}
			if !replace {
				v = st[obj].union(v)
			}
			if v.bits == 0 {
				delete(st, obj)
			} else {
				st[obj] = v
			}
			return
		}
		if v.bits == 0 {
			return
		}
		// x.f = secret taints x: the struct now carries the secret.
		if root := RootIdent(target); root != nil {
			obj := a.info.Uses[root]
			if obj == nil {
				obj = a.info.Defs[root]
			}
			if obj != nil {
				st[obj] = st[obj].union(v)
			}
		}
	}
	ShallowInspect(n, func(m ast.Node) bool {
		switch x := m.(type) {
		case *ast.AssignStmt:
			replace := x.Tok == token.ASSIGN || x.Tok == token.DEFINE
			if len(x.Rhs) == 1 && len(x.Lhs) > 1 {
				v := a.eval(x.Rhs[0])
				for _, lhs := range x.Lhs {
					strong(lhs, v, replace)
				}
				return true
			}
			// Evaluate every source before any target updates, so
			// `x, y = y, x` reads the pre-state on both sides.
			vals := make([]taintVal, 0, len(x.Rhs))
			for _, rhs := range x.Rhs {
				vals = append(vals, a.eval(rhs))
			}
			for i, lhs := range x.Lhs {
				if i < len(vals) {
					strong(lhs, vals[i], replace)
				}
			}
		case *ast.ValueSpec:
			if len(x.Values) == 1 && len(x.Names) > 1 {
				v := a.eval(x.Values[0])
				for _, name := range x.Names {
					strong(name, v, true)
				}
				return true
			}
			for i, name := range x.Names {
				if i < len(x.Values) {
					strong(name, a.eval(x.Values[i]), true)
				}
			}
		case *ast.RangeStmt:
			v := a.eval(x.X)
			if x.Key != nil && a.rangeKeyCarries(x.X) {
				strong(x.Key, v, true)
			}
			if x.Value != nil {
				strong(x.Value, v, true)
			}
		case *ast.FuncLit:
			// The literal's assignments fold in weakly: it may run
			// zero or many times, now or later.
			for iter := 0; iter < 32; iter++ {
				if !a.propagate(x.Body) {
					break
				}
			}
		}
		return true
	})
}

// returnValues evaluates a return statement's operands, falling back
// to named results on a bare return.
func (a *flowAnalyzer) returnValues(ret *ast.ReturnStmt) []taintVal {
	if len(ret.Results) > 0 {
		if len(ret.Results) == 1 && len(a.ff.Results) > 1 {
			// return f() forwarding a tuple: smear the single taint.
			v := a.eval(ret.Results[0])
			out := make([]taintVal, len(a.ff.Results))
			for i := range out {
				out[i] = v
			}
			return out
		}
		out := make([]taintVal, len(ret.Results))
		for i, e := range ret.Results {
			out[i] = a.eval(e)
		}
		return out
	}
	// Bare return: read the named result objects.
	var out []taintVal
	if a.ff.Decl.Type.Results != nil {
		for _, field := range a.ff.Decl.Type.Results.List {
			for _, name := range field.Names {
				obj := a.info.Defs[name]
				out = append(out, a.vars[obj])
			}
		}
	}
	return out
}

// propagate runs one flow-insensitive pass over the body's
// assignments, returning whether any variable's taint grew.
func (a *flowAnalyzer) propagate(body ast.Node) bool {
	changed := false
	assign := func(target ast.Expr, v taintVal) {
		if v.bits == 0 {
			return
		}
		var obj types.Object
		if id, ok := ast.Unparen(target).(*ast.Ident); ok {
			obj = a.info.Defs[id]
			if obj == nil {
				obj = a.info.Uses[id]
			}
			if obj != nil && cleanType(obj.Type()) {
				return
			}
		} else if root := RootIdent(target); root != nil {
			// x.f = secret taints x: the struct now carries the secret.
			obj = a.info.Uses[root]
			if obj == nil {
				obj = a.info.Defs[root]
			}
		}
		if obj == nil {
			return
		}
		old := a.vars[obj]
		merged := old.union(v)
		if merged.bits != old.bits || merged.src != old.src {
			a.vars[obj] = merged
			changed = true
		}
	}
	ast.Inspect(body, func(n ast.Node) bool {
		switch st := n.(type) {
		case *ast.AssignStmt:
			if len(st.Rhs) == 1 && len(st.Lhs) > 1 {
				v := a.eval(st.Rhs[0])
				for _, lhs := range st.Lhs {
					assign(lhs, v)
				}
				return true
			}
			for i, lhs := range st.Lhs {
				if i < len(st.Rhs) {
					assign(lhs, a.eval(st.Rhs[i]))
				}
			}
		case *ast.ValueSpec:
			if len(st.Values) == 1 && len(st.Names) > 1 {
				v := a.eval(st.Values[0])
				for _, name := range st.Names {
					assign(name, v)
				}
				return true
			}
			for i, name := range st.Names {
				if i < len(st.Values) {
					assign(name, a.eval(st.Values[i]))
				}
			}
		case *ast.RangeStmt:
			v := a.eval(st.X)
			if st.Key != nil && a.rangeKeyCarries(st.X) {
				assign(st.Key, v)
			}
			if st.Value != nil {
				assign(st.Value, v)
			}
		}
		return true
	})
	return changed
}

// rangeKeyCarries reports whether ranging over e binds a key that can
// carry the container's secret: map keys can, slice/array/string
// indexes are just positions.
func (a *flowAnalyzer) rangeKeyCarries(e ast.Expr) bool {
	tv, ok := a.info.Types[e]
	if !ok || tv.Type == nil {
		return true
	}
	t := tv.Type.Underlying()
	if p, isPtr := t.(*types.Pointer); isPtr {
		t = p.Elem().Underlying()
	}
	switch t.(type) {
	case *types.Slice, *types.Array, *types.Basic, *types.Chan:
		return false
	}
	return true
}

// eval computes an expression's taint under the current state.
func (a *flowAnalyzer) eval(e ast.Expr) taintVal {
	v := a.evalInner(e)
	// Type-based secrecy applies to every expression uniformly.
	if tv, ok := a.info.Types[e]; ok && tv.Type != nil {
		if tv.Value != nil {
			return taintVal{} // constants are never secret
		}
		if desc, ok := a.df.secrets.typeSecret(tv.Type); ok {
			v = v.union(taintVal{bits: AlwaysSecret, src: desc})
		}
		if cleanType(tv.Type) {
			return taintVal{}
		}
	}
	return v
}

func (a *flowAnalyzer) evalInner(e ast.Expr) taintVal {
	switch x := e.(type) {
	case *ast.Ident:
		obj := a.info.Uses[x]
		if obj == nil {
			obj = a.info.Defs[x]
		}
		if obj == nil {
			return taintVal{}
		}
		v := a.vars[obj]
		if desc, ok := a.df.secrets.vars[obj]; ok {
			v = v.union(taintVal{bits: AlwaysSecret, src: desc})
		}
		return v
	case *ast.SelectorExpr:
		if sel := a.info.Selections[x]; sel != nil && sel.Kind() == types.FieldVal {
			if desc, ok := a.df.secrets.fieldSecret(sel); ok {
				return taintVal{bits: AlwaysSecret, src: desc}
			}
		}
		// Package-level qualified var (pkg.Var) resolves via the Sel.
		if obj := a.info.Uses[x.Sel]; obj != nil {
			if desc, ok := a.df.secrets.vars[obj]; ok {
				return taintVal{bits: AlwaysSecret, src: desc}
			}
		}
		return a.eval(x.X)
	case *ast.CallExpr:
		return a.evalCall(x)
	case *ast.CompositeLit:
		var v taintVal
		for _, el := range x.Elts {
			if kv, ok := el.(*ast.KeyValueExpr); ok {
				el = kv.Value
			}
			v = v.union(a.eval(el))
		}
		return v
	case *ast.IndexExpr:
		return a.eval(x.X).union(a.eval(x.Index))
	case *ast.SliceExpr:
		return a.eval(x.X)
	case *ast.StarExpr:
		return a.eval(x.X)
	case *ast.ParenExpr:
		return a.eval(x.X)
	case *ast.UnaryExpr:
		if x.Op == token.ARROW {
			return taintVal{} // channel receives drop taint (untracked)
		}
		return a.eval(x.X)
	case *ast.BinaryExpr:
		switch x.Op {
		case token.EQL, token.NEQ, token.LSS, token.LEQ, token.GTR, token.GEQ,
			token.LAND, token.LOR:
			return taintVal{} // comparisons yield booleans
		}
		return a.eval(x.X).union(a.eval(x.Y))
	case *ast.TypeAssertExpr:
		return a.eval(x.X)
	}
	return taintVal{}
}

// evalCall computes a call's result taint: builtins, conversions,
// sanitizers, declared-secret results, in-package summaries, and the
// conservative any-argument rule for unresolved callees.
func (a *flowAnalyzer) evalCall(call *ast.CallExpr) taintVal {
	// Type conversion T(x) passes taint through.
	if tv, ok := a.info.Types[call.Fun]; ok && tv.IsType() && len(call.Args) == 1 {
		return a.eval(call.Args[0])
	}
	obj := CalleeObject(a.info, call)
	if b, ok := obj.(*types.Builtin); ok {
		switch b.Name() {
		case "len", "cap", "make", "new", "delete", "close", "min", "max":
			return taintVal{}
		}
		// append, copy, etc.: taint of the operands.
		var v taintVal
		for _, arg := range call.Args {
			v = v.union(a.eval(arg))
		}
		return v
	}
	if a.df.secrets.sanitizer(obj) {
		return taintVal{}
	}
	if desc, ok := a.df.secrets.resultSecret(obj); ok {
		return taintVal{bits: AlwaysSecret, src: desc}
	}
	if fn, ok := obj.(*types.Func); ok {
		if callee := a.df.Funcs[fn]; callee != nil {
			return a.summaryResult(call, callee)
		}
	}
	// Unresolved or external: results depend on every operand,
	// including the method receiver.
	var v taintVal
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
		if s := a.info.Selections[sel]; s != nil {
			v = v.union(a.eval(sel.X))
		}
	}
	for _, arg := range call.Args {
		v = v.union(a.eval(arg))
	}
	return v
}

// argExpr maps a callee formal index onto the call's argument
// expression (the receiver comes from the selector), or nil.
func (a *flowAnalyzer) argExpr(call *ast.CallExpr, callee *FuncFlow, formal int) ast.Expr {
	offset := 0
	if sig, ok := callee.Fn.Type().(*types.Signature); ok && sig.Recv() != nil {
		if formal == 0 {
			if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
				return sel.X
			}
			return nil
		}
		offset = 1
	}
	i := formal - offset
	if i < 0 {
		return nil
	}
	if i < len(call.Args) {
		return call.Args[i]
	}
	return nil
}

// variadicTail returns the extra arguments that pile into the last
// formal of a variadic callee.
func (a *flowAnalyzer) variadicTail(call *ast.CallExpr, callee *FuncFlow, formal int) []ast.Expr {
	sig, ok := callee.Fn.Type().(*types.Signature)
	if !ok || !sig.Variadic() {
		return nil
	}
	offset := 0
	if sig.Recv() != nil {
		offset = 1
	}
	if formal != len(callee.Params)-1 {
		return nil
	}
	i := formal - offset
	if i+1 >= len(call.Args) {
		return nil
	}
	return call.Args[i+1:]
}

// formalTaint evaluates everything the caller passes into one formal.
func (a *flowAnalyzer) formalTaint(call *ast.CallExpr, callee *FuncFlow, formal int) taintVal {
	var v taintVal
	if e := a.argExpr(call, callee, formal); e != nil {
		v = v.union(a.eval(e))
	}
	for _, e := range a.variadicTail(call, callee, formal) {
		v = v.union(a.eval(e))
	}
	return v
}

// summaryResult applies a callee summary to a call site.
func (a *flowAnalyzer) summaryResult(call *ast.CallExpr, callee *FuncFlow) taintVal {
	var v taintVal
	for j, bits := range callee.Results {
		if bits&AlwaysSecret != 0 {
			v = v.union(taintVal{bits: AlwaysSecret, src: callee.ResultSrc[j]})
		}
		for i := range callee.Params {
			if bits&ParamBit(i) != 0 {
				v = v.union(a.formalTaint(call, callee, i))
			}
		}
	}
	return v
}

// sinkCall handles one call site's sink obligations: direct sinks and
// callee summaries' conditional sinks. It returns whether this
// function's summary grew.
func (a *flowAnalyzer) sinkCall(call *ast.CallExpr, report bool) bool {
	changed := false
	record := func(v taintVal, sink string, chain []string, pos token.Pos) {
		if v.bits&AlwaysSecret != 0 && report {
			a.addFinding(Finding{Pos: pos, Sink: sink, Chain: chain, Source: v.src})
		}
		for i := range a.ff.Params {
			if v.bits&ParamBit(i) != 0 {
				if a.addSink(SinkFlow{Param: i, Sink: sink, Chain: chain, Pos: pos}) {
					changed = true
				}
			}
		}
	}

	obj := CalleeObject(a.info, call)
	if sink, ok := sinkOf(a.pkgPath, obj); ok {
		for _, arg := range call.Args {
			record(a.eval(arg), sink, nil, arg.Pos())
		}
		return changed
	}
	fn, ok := obj.(*types.Func)
	if !ok {
		return changed
	}
	callee := a.df.Funcs[fn]
	if callee == nil {
		return changed
	}
	for _, sf := range callee.Sinks {
		if sf.Param >= len(callee.Params) {
			continue
		}
		v := a.formalTaint(call, callee, sf.Param)
		if v.bits == 0 {
			continue
		}
		chain := append([]string{callee.Fn.Name()}, sf.Chain...)
		record(v, sf.Sink, chain, call.Pos())
	}
	return changed
}

// addSink appends a conditional sink flow, deduplicated by
// (formal, sink) so chains cannot multiply through recursion.
func (a *flowAnalyzer) addSink(sf SinkFlow) bool {
	for _, have := range a.ff.Sinks {
		if have.Param == sf.Param && have.Sink == sf.Sink {
			return false
		}
	}
	a.ff.Sinks = append(a.ff.Sinks, sf)
	return true
}

// addFinding appends an unconditional finding, deduplicated by
// position and sink.
func (a *flowAnalyzer) addFinding(f Finding) {
	for _, have := range a.ff.Findings {
		if have.Pos == f.Pos && have.Sink == f.Sink {
			return
		}
	}
	a.ff.Findings = append(a.ff.Findings, f)
}
