// Package montecarlo provides the simulation harness behind the
// paper's evaluation: deterministic generation of chip populations
// (random error maps or full variation models) and a parallel runner
// that fans experiment trials across CPUs while keeping every trial's
// randomness reproducible.
//
// The paper's methodology (Section 6.1) simulates each cache
// configuration with 100 distinct error maps, each evaluated against
// 50 K noise profiles; this package is how the repo expresses that
// shape.
package montecarlo

import (
	"runtime"
	"sync"

	"repro/internal/errormap"
	"repro/internal/rng"
	"repro/internal/variation"
)

// Run executes fn for trial indices 0..n-1 across workers goroutines
// and collects the results in order. Each trial receives its own
// generator derived from seed and the trial index, so results do not
// depend on scheduling. workers <= 0 selects GOMAXPROCS.
func Run[T any](n int, workers int, seed uint64, fn func(trial int, r *rng.Rand) T) []T {
	if n <= 0 {
		return nil
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	out := make([]T, n)
	var next int
	var mu sync.Mutex
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				mu.Lock()
				i := next
				next++
				mu.Unlock()
				if i >= n {
					return
				}
				out[i] = fn(i, trialRand(seed, i))
			}
		}()
	}
	wg.Wait()
	return out
}

// trialRand derives the deterministic generator of one trial.
func trialRand(seed uint64, trial int) *rng.Rand {
	h := seed ^ (uint64(trial)+1)*0x9e3779b97f4a7c15
	h ^= h >> 31
	h *= 0xff51afd7ed558ccd
	return rng.New(h)
}

// Population describes a simulated chip population for map-level Monte
// Carlo: planes with a fixed error count over a fixed geometry.
type Population struct {
	Geometry errormap.Geometry
	Errors   int
	Seed     uint64
}

// Plane materialises chip i's error plane.
func (p Population) Plane(i int) *errormap.Plane {
	return errormap.RandomPlane(p.Geometry, p.Errors, trialRand(p.Seed, i))
}

// Planes materialises the first n chips.
func (p Population) Planes(n int) []*errormap.Plane {
	out := make([]*errormap.Plane, n)
	for i := range out {
		out[i] = p.Plane(i)
	}
	return out
}

// Models generates n full variation models (for chip-level
// experiments: Figures 1–3, 11, 13–14).
func Models(n int, seed uint64, params variation.Params) []*variation.Model {
	out := make([]*variation.Model, n)
	for i := range out {
		out[i] = variation.NewModel(trialRand(seed, i).Uint64(), params)
	}
	return out
}
