package montecarlo

import (
	"testing"

	"repro/internal/errormap"
	"repro/internal/rng"
	"repro/internal/variation"
)

func TestRunCollectsInOrder(t *testing.T) {
	got := Run(100, 8, 1, func(trial int, r *rng.Rand) int {
		return trial * 2
	})
	if len(got) != 100 {
		t.Fatalf("len = %d", len(got))
	}
	for i, v := range got {
		if v != i*2 {
			t.Fatalf("out[%d] = %d", i, v)
		}
	}
}

func TestRunDeterministicAcrossWorkerCounts(t *testing.T) {
	f := func(trial int, r *rng.Rand) uint64 { return r.Uint64() }
	a := Run(50, 1, 7, f)
	b := Run(50, 16, 7, f)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("trial %d differs across worker counts", i)
		}
	}
}

func TestRunSeedSensitivity(t *testing.T) {
	f := func(trial int, r *rng.Rand) uint64 { return r.Uint64() }
	a := Run(10, 4, 1, f)
	b := Run(10, 4, 2, f)
	same := 0
	for i := range a {
		if a[i] == b[i] {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("%d trials identical across seeds", same)
	}
}

func TestRunEmpty(t *testing.T) {
	if got := Run(0, 4, 1, func(int, *rng.Rand) int { return 1 }); got != nil {
		t.Fatal("n=0 should return nil")
	}
}

func TestPopulationPlanes(t *testing.T) {
	p := Population{Geometry: errormap.NewGeometry(4096), Errors: 50, Seed: 3}
	planes := p.Planes(10)
	if len(planes) != 10 {
		t.Fatalf("planes = %d", len(planes))
	}
	for i, pl := range planes {
		if pl.ErrorCount() != 50 {
			t.Fatalf("plane %d has %d errors", i, pl.ErrorCount())
		}
	}
	// Distinct chips differ; same index reproduces.
	if planes[0].Equal(planes[1]) {
		t.Fatal("two chips share an error map")
	}
	if !planes[3].Equal(p.Plane(3)) {
		t.Fatal("Plane(i) not reproducible")
	}
}

func TestModelsDistinctAndReproducible(t *testing.T) {
	a := Models(5, 9, variation.DefaultParams())
	b := Models(5, 9, variation.DefaultParams())
	for i := range a {
		if a[i].ChipSeed() != b[i].ChipSeed() {
			t.Fatal("Models not reproducible")
		}
	}
	seen := map[uint64]bool{}
	for _, m := range a {
		if seen[m.ChipSeed()] {
			t.Fatal("duplicate chip seeds in population")
		}
		seen[m.ChipSeed()] = true
	}
}
