package crp

import (
	"encoding/json"
	"testing"
)

// The wire format is a compatibility contract: enrolled devices in the
// field cannot be re-flashed because the server's JSON changed shape.
// These golden tests pin the encoding.

func TestChallengeJSONGolden(t *testing.T) {
	ch := &Challenge{
		ID: 7,
		Bits: []PairBit{
			{A: 12, B: 34, VddMV: 680},
			{A: 56, B: 78, VddMV: 700},
		},
	}
	got, err := json.Marshal(ch)
	if err != nil {
		t.Fatal(err)
	}
	const want = `{"id":7,"bits":[{"a":12,"b":34,"vdd_mv":680},{"a":56,"b":78,"vdd_mv":700}]}`
	if string(got) != want {
		t.Fatalf("challenge wire format drifted:\n got %s\nwant %s", got, want)
	}
	var back Challenge
	if err := json.Unmarshal(got, &back); err != nil {
		t.Fatal(err)
	}
	if back.ID != ch.ID || len(back.Bits) != 2 || back.Bits[1] != ch.Bits[1] {
		t.Fatalf("round trip lost data: %+v", back)
	}
}

func TestResponseJSONGolden(t *testing.T) {
	r := NewResponse(12)
	r.SetBit(0, 1)
	r.SetBit(9, 1)
	got, err := json.Marshal(r)
	if err != nil {
		t.Fatal(err)
	}
	const want = `{"bits":"AQI=","n":12}` // base64 of {0x01, 0x02}
	if string(got) != want {
		t.Fatalf("response wire format drifted:\n got %s\nwant %s", got, want)
	}
	var back Response
	if err := json.Unmarshal(got, &back); err != nil {
		t.Fatal(err)
	}
	if back.N != 12 || back.Bit(0) != 1 || back.Bit(9) != 1 || back.Bit(5) != 0 {
		t.Fatalf("round trip lost bits: %+v", back)
	}
}
