package crp

import (
	"testing"
	"testing/quick"

	"repro/internal/errormap"
	"repro/internal/rng"
)

func testPlane(k int, seed uint64) (*errormap.Plane, errormap.Geometry) {
	g := errormap.NewGeometry(4096)
	return errormap.RandomPlane(g, k, rng.New(seed)), g
}

func oraclesFor(p *errormap.Plane, vdd int) *PlaneOracles {
	m := errormap.NewMap(p.Geometry())
	m.AddPlane(vdd, p)
	return NewPlaneOracles(m)
}

func TestGenerateShape(t *testing.T) {
	g := errormap.NewGeometry(1000)
	r := rng.New(1)
	c := Generate(g, 128, 680, r)
	if c.Len() != 128 {
		t.Fatalf("len = %d", c.Len())
	}
	if err := c.Validate(g); err != nil {
		t.Fatal(err)
	}
	for i, b := range c.Bits {
		if b.A == b.B {
			t.Fatalf("bit %d: degenerate pair", i)
		}
		if b.VddMV != 680 {
			t.Fatalf("bit %d: vdd = %d", i, b.VddMV)
		}
	}
	if vs := c.Voltages(); len(vs) != 1 || vs[0] != 680 {
		t.Fatalf("voltages = %v", vs)
	}
}

func TestValidateCatchesBadBits(t *testing.T) {
	g := errormap.NewGeometry(100)
	cases := []*Challenge{
		{},
		{Bits: []PairBit{{A: -1, B: 2}}},
		{Bits: []PairBit{{A: 0, B: 100}}},
		{Bits: []PairBit{{A: 7, B: 7}}},
	}
	for i, c := range cases {
		if err := c.Validate(g); err == nil {
			t.Errorf("case %d: invalid challenge accepted", i)
		}
	}
}

func TestResponseBits(t *testing.T) {
	r := NewResponse(12)
	r.SetBit(0, 1)
	r.SetBit(11, 1)
	r.SetBit(5, 1)
	r.SetBit(5, 0)
	if r.Bit(0) != 1 || r.Bit(11) != 1 || r.Bit(5) != 0 || r.Bit(1) != 0 {
		t.Fatal("bit plumbing broken")
	}
	if len(r.Bits) != 2 {
		t.Fatalf("packed length = %d", len(r.Bits))
	}
}

func TestResponseHamming(t *testing.T) {
	a, b := NewResponse(16), NewResponse(16)
	a.SetBit(3, 1)
	a.SetBit(9, 1)
	b.SetBit(9, 1)
	b.SetBit(15, 1)
	if d := a.HammingDistance(b); d != 2 {
		t.Fatalf("distance = %d", d)
	}
}

func TestResponseBitSemantics(t *testing.T) {
	// Paper eq (8): 0 when dist(A) <= dist(B).
	if ResponseBit(3, true, 5, true) != 0 {
		t.Fatal("closer A should give 0")
	}
	if ResponseBit(5, true, 3, true) != 1 {
		t.Fatal("farther A should give 1")
	}
	if ResponseBit(4, true, 4, true) != 0 {
		t.Fatal("tie should give 0 (paper's 0-bias)")
	}
	if ResponseBit(0, true, 0, false) != 0 {
		t.Fatal("missing B counts as infinitely far")
	}
	if ResponseBit(0, false, 9, true) != 1 {
		t.Fatal("missing A counts as infinitely far")
	}
	if ResponseBit(0, false, 0, false) != 0 {
		t.Fatal("double missing should tie to 0")
	}
}

func TestEvaluateAgainstBruteForce(t *testing.T) {
	p, g := testPlane(15, 7)
	oracles := oraclesFor(p, 700)
	r := rng.New(8)
	c := Generate(g, 256, 700, r)
	resp, err := Evaluate(c, oracles)
	if err != nil {
		t.Fatal(err)
	}
	for i, b := range c.Bits {
		da, _, _ := p.RingSearch(g.Coord(b.A))
		db, _, _ := p.RingSearch(g.Coord(b.B))
		want := 0
		if da > db {
			want = 1
		}
		if resp.Bit(i) != want {
			t.Fatalf("bit %d: got %d, want %d (da=%d db=%d)", i, resp.Bit(i), want, da, db)
		}
	}
}

func TestEvaluateUnknownVoltage(t *testing.T) {
	p, g := testPlane(5, 9)
	oracles := oraclesFor(p, 700)
	c := Generate(g, 8, 640, rng.New(10))
	if _, err := Evaluate(c, oracles); err == nil {
		t.Fatal("unknown voltage plane accepted")
	}
}

func TestEvaluateDeterministic(t *testing.T) {
	p, g := testPlane(30, 11)
	oracles := oraclesFor(p, 680)
	c := Generate(g, 512, 680, rng.New(12))
	r1, _ := Evaluate(c, oracles)
	r2, _ := Evaluate(c, oracles)
	if r1.HammingDistance(r2) != 0 {
		t.Fatal("evaluation not deterministic")
	}
}

func TestPossibleCRPs(t *testing.T) {
	if got := PossibleCRPs(65536); got != 2147450880 {
		t.Fatalf("PossibleCRPs(65536) = %d", got)
	}
	if got := PossibleCRPs(2); got != 1 {
		t.Fatalf("PossibleCRPs(2) = %d", got)
	}
}

// Paper Table 1 anchors: a 4 MB LLC (65536 lines) sustains 9192 daily
// 64-bit authentications over 10 years; a 32 MB LLC sustains 588350.
func TestDailyAuthenticationsTable1(t *testing.T) {
	cases := []struct {
		lines, bits int
		want        uint64
	}{
		{65536, 64, 9192},
		{65536, 128, 4596},
		{65536, 256, 2298},
		{65536, 512, 1149},
		{524288, 64, 588350},
		{524288, 128, 294175},
		{524288, 256, 147087},
		{524288, 512, 73543},
	}
	for _, c := range cases {
		got := DailyAuthentications(c.lines, c.bits, 3650)
		// The paper's 32 MB column appears to round slightly
		// differently; allow ±2 on the integer division.
		diff := int64(got) - int64(c.want)
		if diff < -2 || diff > 2 {
			t.Errorf("DailyAuthentications(%d,%d) = %d, want ~%d", c.lines, c.bits, got, c.want)
		}
	}
}

func TestRegistryRejectsReuse(t *testing.T) {
	reg := NewRegistry()
	c1 := &Challenge{Bits: []PairBit{{A: 1, B: 2, VddMV: 680}, {A: 3, B: 4, VddMV: 680}}}
	if !reg.Consume(c1) {
		t.Fatal("fresh challenge rejected")
	}
	if reg.Used() != 2 {
		t.Fatalf("used = %d", reg.Used())
	}
	// Same pair, swapped orientation, must be rejected.
	c2 := &Challenge{Bits: []PairBit{{A: 2, B: 1, VddMV: 680}}}
	if reg.Consume(c2) {
		t.Fatal("swapped pair accepted")
	}
	// Same pair at a different voltage is a different challenge point.
	c3 := &Challenge{Bits: []PairBit{{A: 2, B: 1, VddMV: 700}}}
	if !reg.Consume(c3) {
		t.Fatal("same pair at different Vdd rejected")
	}
}

func TestRegistryRejectionIsAtomic(t *testing.T) {
	reg := NewRegistry()
	reg.Consume(&Challenge{Bits: []PairBit{{A: 9, B: 8, VddMV: 1}}})
	// Second bit collides; first bit must NOT be burned.
	c := &Challenge{Bits: []PairBit{{A: 5, B: 6, VddMV: 1}, {A: 8, B: 9, VddMV: 1}}}
	if reg.Consume(c) {
		t.Fatal("colliding challenge accepted")
	}
	if reg.IsUsed(PairBit{A: 5, B: 6, VddMV: 1}) {
		t.Fatal("rejected challenge leaked pairs into the registry")
	}
}

func TestRegistryRejectsInternalDuplicates(t *testing.T) {
	reg := NewRegistry()
	c := &Challenge{Bits: []PairBit{{A: 1, B: 2, VddMV: 1}, {A: 2, B: 1, VddMV: 1}}}
	if reg.Consume(c) {
		t.Fatal("challenge with internally duplicated pair accepted")
	}
}

// Property: registry behaviour is orientation-invariant.
func TestRegistryOrientationProperty(t *testing.T) {
	f := func(a, b uint8, swap bool) bool {
		if a == b {
			return true
		}
		reg := NewRegistry()
		first := PairBit{A: int(a), B: int(b), VddMV: 0}
		second := first
		if swap {
			second.A, second.B = second.B, second.A
		}
		ok1 := reg.Consume(&Challenge{Bits: []PairBit{first}})
		ok2 := reg.Consume(&Challenge{Bits: []PairBit{second}})
		return ok1 && !ok2
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Uniformity sanity: on a random 100-error 4 MB-scale plane, responses
// should be close to 50% ones (paper Figure 12b).
func TestResponseUniformity(t *testing.T) {
	g := errormap.NewGeometry(65536)
	p := errormap.RandomPlane(g, 100, rng.New(20))
	oracles := oraclesFor(p, 680)
	r := rng.New(21)
	ones, total := 0, 0
	for trial := 0; trial < 20; trial++ {
		c := Generate(g, 512, 680, r)
		resp, err := Evaluate(c, oracles)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < resp.N; i++ {
			ones += resp.Bit(i)
			total++
		}
	}
	frac := float64(ones) / float64(total)
	if frac < 0.44 || frac > 0.52 {
		t.Fatalf("ones fraction = %v, want ~0.49", frac)
	}
}

func BenchmarkEvaluate512(b *testing.B) {
	g := errormap.NewGeometry(65536)
	p := errormap.RandomPlane(g, 100, rng.New(1))
	oracles := oraclesFor(p, 680)
	c := Generate(g, 512, 680, rng.New(2))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, _ = Evaluate(c, oracles)
	}
}
