// Package crp defines Authenticache's challenge-response pairs and
// their lifecycle (paper Sections 4.1–4.2).
//
// A challenge is a sequence of coordinate pairs on the (logical) error
// map; each pair contributes one response bit answering "is point A at
// least as close to an error as point B?" (paper equations (7)–(8)).
// Distances are Manhattan (equation (9)); ties respond 0, which is the
// source of the slight 0-bias the paper observes in Figure 12.
//
// Because challenges are built from *pairs* of arbitrary coordinates,
// a cache with n lines offers n(n-1)/2 distinct pairs (equation (10)).
// The package also implements the server-side no-reuse registry: once
// a pair (A,B) is consumed, both (A,B) and (B,A) are dead forever
// (Section 4.4's replay defence).
package crp

import (
	"fmt"
	"sync"

	"repro/internal/errormap"
	"repro/internal/rng"
)

// PairBit is one bit of a challenge: two line positions to compare and
// the supply voltage (in millivolts) whose error plane the comparison
// runs on. Positions are logical indices — the keyed remap has already
// been applied by the time a PairBit goes on the wire.
type PairBit struct {
	A     int `json:"a"`
	B     int `json:"b"`
	VddMV int `json:"vdd_mv"`
}

// Challenge is an ordered list of pair bits.
type Challenge struct {
	// ID identifies the challenge within one authentication session.
	ID   uint64    `json:"id"`
	Bits []PairBit `json:"bits"`
}

// Len returns the number of response bits the challenge produces.
func (c *Challenge) Len() int { return len(c.Bits) }

// Voltages returns the distinct voltage levels used by the challenge,
// in first-appearance order.
func (c *Challenge) Voltages() []int {
	seen := map[int]bool{}
	var out []int
	for _, b := range c.Bits {
		if !seen[b.VddMV] {
			seen[b.VddMV] = true
			out = append(out, b.VddMV)
		}
	}
	return out
}

// Validate checks every coordinate against the geometry.
func (c *Challenge) Validate(g errormap.Geometry) error {
	if len(c.Bits) == 0 {
		return fmt.Errorf("crp: empty challenge")
	}
	for i, b := range c.Bits {
		if b.A < 0 || b.A >= g.Lines || b.B < 0 || b.B >= g.Lines {
			return fmt.Errorf("crp: bit %d references line outside [0,%d)", i, g.Lines)
		}
		if b.A == b.B {
			return fmt.Errorf("crp: bit %d compares a line with itself", i)
		}
	}
	return nil
}

// Response is a packed bit vector, bit i of the challenge at
// Bits[i/8]>>(i%8)&1.
type Response struct {
	Bits []byte `json:"bits"`
	N    int    `json:"n"`
}

// NewResponse allocates an all-zero response of n bits.
func NewResponse(n int) Response {
	return Response{Bits: make([]byte, (n+7)/8), N: n}
}

// Bit returns response bit i.
func (r Response) Bit(i int) int {
	if i < 0 || i >= r.N {
		panic(fmt.Sprintf("crp: response bit %d out of range [0,%d)", i, r.N))
	}
	return int(r.Bits[i/8]>>(uint(i)%8)) & 1
}

// SetBit sets response bit i to v.
func (r Response) SetBit(i, v int) {
	if i < 0 || i >= r.N {
		panic(fmt.Sprintf("crp: response bit %d out of range [0,%d)", i, r.N))
	}
	if v&1 == 1 {
		r.Bits[i/8] |= 1 << (uint(i) % 8)
	} else {
		r.Bits[i/8] &^= 1 << (uint(i) % 8)
	}
}

// HammingDistance counts differing bits between two responses of equal
// length.
func (r Response) HammingDistance(other Response) int {
	if r.N != other.N {
		panic("crp: response length mismatch")
	}
	d := 0
	for i := range r.Bits {
		x := r.Bits[i] ^ other.Bits[i]
		for x != 0 {
			x &= x - 1
			d++
		}
	}
	return d
}

// DistanceOracle answers nearest-error distance queries for one
// voltage plane. The server backs it with a precomputed distance
// field; the client backs it with live targeted self-tests.
type DistanceOracle interface {
	// NearestDistance returns the Manhattan distance from the given
	// line position to the closest error on the plane, and whether any
	// error was found at all.
	NearestDistance(line int) (dist int, found bool)
}

// OracleSet provides a DistanceOracle per voltage level.
type OracleSet interface {
	Oracle(vddMV int) (DistanceOracle, error)
}

// ResponseBit computes one response bit per paper equation (8) given
// the two distances: 0 if dist(A) <= dist(B), else 1. Missing errors
// count as infinitely far; two missing distances tie to 0.
func ResponseBit(distA int, foundA bool, distB int, foundB bool) int {
	switch {
	case foundA && foundB:
		if distA <= distB {
			return 0
		}
		return 1
	case foundA:
		return 0
	case foundB:
		return 1
	default:
		return 0
	}
}

// Evaluate runs a challenge against the oracle set, producing the
// response. Bits are evaluated in challenge order.
func Evaluate(c *Challenge, oracles OracleSet) (Response, error) {
	resp := NewResponse(len(c.Bits))
	for i, b := range c.Bits {
		o, err := oracles.Oracle(b.VddMV)
		if err != nil {
			return Response{}, fmt.Errorf("crp: bit %d: %w", i, err)
		}
		da, fa := o.NearestDistance(b.A)
		db, fb := o.NearestDistance(b.B)
		resp.SetBit(i, ResponseBit(da, fa, db, fb))
	}
	return resp, nil
}

// FieldOracle adapts an errormap.DistanceField (server side).
type FieldOracle struct {
	Field *errormap.DistanceField
}

// NearestDistance implements DistanceOracle.
func (f FieldOracle) NearestDistance(line int) (int, bool) {
	if f.Field == nil {
		return 0, false
	}
	return f.Field.DistLine(line), true
}

// PlaneOracles serves FieldOracles for the planes of an error map,
// computing and caching distance fields lazily.
type PlaneOracles struct {
	Map    *errormap.Map
	fields map[int]*errormap.DistanceField
}

// NewPlaneOracles wraps an error map.
func NewPlaneOracles(m *errormap.Map) *PlaneOracles {
	return &PlaneOracles{Map: m, fields: make(map[int]*errormap.DistanceField)}
}

// Oracle implements OracleSet.
func (p *PlaneOracles) Oracle(vddMV int) (crpOracle DistanceOracle, err error) {
	if f, ok := p.fields[vddMV]; ok {
		return FieldOracle{Field: f}, nil
	}
	plane := p.Map.Plane(vddMV)
	if plane == nil {
		return nil, fmt.Errorf("crp: no error plane at %d mV", vddMV)
	}
	f := plane.DistanceTransform()
	p.fields[vddMV] = f
	return FieldOracle{Field: f}, nil
}

// Generate draws a challenge of nbits random pairs at one voltage
// level. Pairs are distinct positions but may repeat across bits; the
// no-reuse registry is enforced separately at issue time.
func Generate(g errormap.Geometry, nbits, vddMV int, r *rng.Rand) *Challenge {
	if nbits <= 0 {
		panic("crp: challenge needs at least one bit")
	}
	c := &Challenge{Bits: make([]PairBit, nbits)}
	for i := range c.Bits {
		a := r.Intn(g.Lines)
		b := r.Intn(g.Lines)
		for b == a {
			b = r.Intn(g.Lines)
		}
		c.Bits[i] = PairBit{A: a, B: b, VddMV: vddMV}
	}
	return c
}

// PossibleCRPs returns the total number of unordered pairs available
// from n lines: n(n-1)/2 (paper equation (10)).
func PossibleCRPs(n int) uint64 {
	un := uint64(n)
	return un * (un - 1) / 2
}

// DailyAuthentications computes the sustainable daily authentication
// rate over a lifetime, never reusing a pair: each authentication of
// crpBits bits consumes crpBits pairs (paper Table 1).
func DailyAuthentications(lines, crpBits, lifetimeDays int) uint64 {
	if crpBits <= 0 || lifetimeDays <= 0 {
		panic("crp: invalid lifetime parameters")
	}
	return PossibleCRPs(lines) / uint64(crpBits) / uint64(lifetimeDays)
}

// pairKey canonicalises an unordered pair at a voltage.
type pairKey struct {
	lo, hi, vdd int
}

func canonical(b PairBit) pairKey {
	if b.A <= b.B {
		return pairKey{b.A, b.B, b.VddMV}
	}
	return pairKey{b.B, b.A, b.VddMV}
}

// Registry tracks consumed pairs so no pair is ever reused in either
// orientation. It is safe for concurrent use.
type Registry struct {
	mu   sync.Mutex
	used map[pairKey]struct{}
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry {
	return &Registry{used: make(map[pairKey]struct{})}
}

// Used reports the number of consumed pairs.
func (reg *Registry) Used() int {
	reg.mu.Lock()
	defer reg.mu.Unlock()
	return len(reg.used)
}

// Consume atomically checks that none of the challenge's pairs have
// been used and marks them all used. If any pair (in either
// orientation) was already consumed, nothing is marked and the method
// returns false.
func (reg *Registry) Consume(c *Challenge) bool {
	reg.mu.Lock()
	defer reg.mu.Unlock()
	keys := make([]pairKey, len(c.Bits))
	seen := make(map[pairKey]struct{}, len(c.Bits))
	for i, b := range c.Bits {
		k := canonical(b)
		if _, dup := reg.used[k]; dup {
			return false
		}
		if _, dup := seen[k]; dup {
			// A challenge reusing its own pair internally is as
			// replayable as reusing a past one.
			return false
		}
		seen[k] = struct{}{}
		keys[i] = k
	}
	for _, k := range keys {
		reg.used[k] = struct{}{}
	}
	return true
}

// Mark force-records pairs as consumed without the no-reuse check.
// Journal replay uses it: a replayed burn may overlap pairs the
// snapshot already holds, and re-marking a consumed pair is the
// idempotent direction (a pair can only ever become *more* dead).
func (reg *Registry) Mark(pairs []PairBit) {
	reg.mu.Lock()
	defer reg.mu.Unlock()
	for _, p := range pairs {
		reg.used[canonical(p)] = struct{}{}
	}
}

// IsUsed reports whether the pair of a single bit was consumed before.
func (reg *Registry) IsUsed(b PairBit) bool {
	reg.mu.Lock()
	defer reg.mu.Unlock()
	_, ok := reg.used[canonical(b)]
	return ok
}

// Export returns the consumed pairs in canonical orientation, for
// persisting an authentication server's state. Order is unspecified.
func (reg *Registry) Export() []PairBit {
	reg.mu.Lock()
	defer reg.mu.Unlock()
	out := make([]PairBit, 0, len(reg.used))
	for k := range reg.used {
		out = append(out, PairBit{A: k.lo, B: k.hi, VddMV: k.vdd})
	}
	return out
}

// RestoreRegistry rebuilds a registry from exported pairs.
func RestoreRegistry(pairs []PairBit) *Registry {
	reg := NewRegistry()
	for _, p := range pairs {
		reg.used[canonical(p)] = struct{}{}
	}
	return reg
}
