// Package crp defines Authenticache's challenge-response pairs and
// their lifecycle (paper Sections 4.1–4.2).
//
// A challenge is a sequence of coordinate pairs on the (logical) error
// map; each pair contributes one response bit answering "is point A at
// least as close to an error as point B?" (paper equations (7)–(8)).
// Distances are Manhattan (equation (9)); ties respond 0, which is the
// source of the slight 0-bias the paper observes in Figure 12.
//
// Because challenges are built from *pairs* of arbitrary coordinates,
// a cache with n lines offers n(n-1)/2 distinct pairs (equation (10)).
// The package also implements the server-side no-reuse registry: once
// a pair (A,B) is consumed, both (A,B) and (B,A) are dead forever
// (Section 4.4's replay defence).
package crp

import (
	"fmt"
	"sync"

	"repro/internal/errormap"
	"repro/internal/rng"
)

// PairBit is one bit of a challenge: two line positions to compare and
// the supply voltage (in millivolts) whose error plane the comparison
// runs on. Positions are logical indices — the keyed remap has already
// been applied by the time a PairBit goes on the wire.
type PairBit struct {
	A     int `json:"a"`
	B     int `json:"b"`
	VddMV int `json:"vdd_mv"`
}

// Challenge is an ordered list of pair bits.
type Challenge struct {
	// ID identifies the challenge within one authentication session.
	ID   uint64    `json:"id"`
	Bits []PairBit `json:"bits"`
}

// Len returns the number of response bits the challenge produces.
func (c *Challenge) Len() int { return len(c.Bits) }

// Voltages returns the distinct voltage levels used by the challenge,
// in first-appearance order.
func (c *Challenge) Voltages() []int {
	seen := map[int]bool{}
	var out []int
	for _, b := range c.Bits {
		if !seen[b.VddMV] {
			seen[b.VddMV] = true
			out = append(out, b.VddMV)
		}
	}
	return out
}

// Validate checks every coordinate against the geometry.
func (c *Challenge) Validate(g errormap.Geometry) error {
	if len(c.Bits) == 0 {
		return fmt.Errorf("crp: empty challenge")
	}
	for i, b := range c.Bits {
		if b.A < 0 || b.A >= g.Lines || b.B < 0 || b.B >= g.Lines {
			return fmt.Errorf("crp: bit %d references line outside [0,%d)", i, g.Lines)
		}
		if b.A == b.B {
			return fmt.Errorf("crp: bit %d compares a line with itself", i)
		}
	}
	return nil
}

// Response is a packed bit vector, bit i of the challenge at
// Bits[i/8]>>(i%8)&1.
type Response struct {
	Bits []byte `json:"bits"`
	N    int    `json:"n"`
}

// NewResponse allocates an all-zero response of n bits.
func NewResponse(n int) Response {
	return Response{Bits: make([]byte, (n+7)/8), N: n}
}

// Bit returns response bit i.
func (r Response) Bit(i int) int {
	if i < 0 || i >= r.N {
		panic(fmt.Sprintf("crp: response bit %d out of range [0,%d)", i, r.N))
	}
	return int(r.Bits[i/8]>>(uint(i)%8)) & 1
}

// SetBit sets response bit i to v.
func (r Response) SetBit(i, v int) {
	if i < 0 || i >= r.N {
		panic(fmt.Sprintf("crp: response bit %d out of range [0,%d)", i, r.N))
	}
	if v&1 == 1 {
		r.Bits[i/8] |= 1 << (uint(i) % 8)
	} else {
		r.Bits[i/8] &^= 1 << (uint(i) % 8)
	}
}

// HammingDistance counts differing bits between two responses of equal
// length.
func (r Response) HammingDistance(other Response) int {
	if r.N != other.N {
		panic("crp: response length mismatch")
	}
	d := 0
	for i := range r.Bits {
		x := r.Bits[i] ^ other.Bits[i]
		for x != 0 {
			x &= x - 1
			d++
		}
	}
	return d
}

// DistanceOracle answers nearest-error distance queries for one
// voltage plane. The server backs it with a precomputed distance
// field; the client backs it with live targeted self-tests.
type DistanceOracle interface {
	// NearestDistance returns the Manhattan distance from the given
	// line position to the closest error on the plane, and whether any
	// error was found at all.
	NearestDistance(line int) (dist int, found bool)
}

// OracleSet provides a DistanceOracle per voltage level.
type OracleSet interface {
	Oracle(vddMV int) (DistanceOracle, error)
}

// ResponseBit computes one response bit per paper equation (8) given
// the two distances: 0 if dist(A) <= dist(B), else 1. Missing errors
// count as infinitely far; two missing distances tie to 0.
func ResponseBit(distA int, foundA bool, distB int, foundB bool) int {
	switch {
	case foundA && foundB:
		if distA <= distB {
			return 0
		}
		return 1
	case foundA:
		return 0
	case foundB:
		return 1
	default:
		return 0
	}
}

// Evaluate runs a challenge against the oracle set, producing the
// response. Bits are evaluated in challenge order.
func Evaluate(c *Challenge, oracles OracleSet) (Response, error) {
	resp := NewResponse(len(c.Bits))
	for i, b := range c.Bits {
		o, err := oracles.Oracle(b.VddMV)
		if err != nil {
			return Response{}, fmt.Errorf("crp: bit %d: %w", i, err)
		}
		da, fa := o.NearestDistance(b.A)
		db, fb := o.NearestDistance(b.B)
		resp.SetBit(i, ResponseBit(da, fa, db, fb))
	}
	return resp, nil
}

// FieldOracle adapts an errormap.DistanceField (server side).
type FieldOracle struct {
	Field *errormap.DistanceField
}

// NearestDistance implements DistanceOracle.
func (f FieldOracle) NearestDistance(line int) (int, bool) {
	if f.Field == nil {
		return 0, false
	}
	return f.Field.DistLine(line), true
}

// PlaneOracles serves FieldOracles for the planes of an error map,
// computing and caching distance fields lazily.
type PlaneOracles struct {
	Map    *errormap.Map
	fields map[int]*errormap.DistanceField
}

// NewPlaneOracles wraps an error map.
func NewPlaneOracles(m *errormap.Map) *PlaneOracles {
	return &PlaneOracles{Map: m, fields: make(map[int]*errormap.DistanceField)}
}

// Oracle implements OracleSet.
func (p *PlaneOracles) Oracle(vddMV int) (crpOracle DistanceOracle, err error) {
	if f, ok := p.fields[vddMV]; ok {
		return FieldOracle{Field: f}, nil
	}
	plane := p.Map.Plane(vddMV)
	if plane == nil {
		return nil, fmt.Errorf("crp: no error plane at %d mV", vddMV)
	}
	f := plane.DistanceTransform()
	p.fields[vddMV] = f
	return FieldOracle{Field: f}, nil
}

// Generate draws a challenge of nbits random pairs at one voltage
// level. Pairs are distinct positions but may repeat across bits; the
// no-reuse registry is enforced separately at issue time.
func Generate(g errormap.Geometry, nbits, vddMV int, r *rng.Rand) *Challenge {
	if nbits <= 0 {
		panic("crp: challenge needs at least one bit")
	}
	c := &Challenge{Bits: make([]PairBit, nbits)}
	for i := range c.Bits {
		a := r.Intn(g.Lines)
		b := r.Intn(g.Lines)
		for b == a {
			b = r.Intn(g.Lines)
		}
		c.Bits[i] = PairBit{A: a, B: b, VddMV: vddMV}
	}
	return c
}

// PossibleCRPs returns the total number of unordered pairs available
// from n lines: n(n-1)/2 (paper equation (10)).
func PossibleCRPs(n int) uint64 {
	un := uint64(n)
	return un * (un - 1) / 2
}

// DailyAuthentications computes the sustainable daily authentication
// rate over a lifetime, never reusing a pair: each authentication of
// crpBits bits consumes crpBits pairs (paper Table 1).
func DailyAuthentications(lines, crpBits, lifetimeDays int) uint64 {
	if crpBits <= 0 || lifetimeDays <= 0 {
		panic("crp: invalid lifetime parameters")
	}
	return PossibleCRPs(lines) / uint64(crpBits) / uint64(lifetimeDays)
}

// pairKey canonicalises an unordered pair at a voltage.
type pairKey struct {
	lo, hi, vdd int
}

func canonical(b PairBit) pairKey {
	if b.A <= b.B {
		return pairKey{b.A, b.B, b.VddMV}
	}
	return pairKey{b.B, b.A, b.VddMV}
}

// maxDensePairs bounds the dense representation: a voltage plane
// whose full pair space fits in this many bits (8 MiB of bitset) is
// tracked densely; anything larger falls back to the hash map so a
// big cache never preallocates gigabytes for a mostly-unused space.
const maxDensePairs = 1 << 26

// Registry tracks consumed pairs so no pair is ever reused in either
// orientation. It is safe for concurrent use.
//
// Two representations share the one API. The sparse form hashes each
// canonical pair into a map — memory proportional to consumption,
// cost proportional to hashing. The dense form (NewRegistryLines,
// when the geometry's n(n-1)/2 pair space is small enough) keeps one
// lazily-allocated bitset per voltage plane and indexes pairs by
// their triangular number: probes and burns are single bit
// operations, which is what keeps the registry off the wire
// protocol's hot-path profile.
type Registry struct {
	mu   sync.Mutex
	used map[pairKey]struct{} // sparse mode; nil in dense mode

	// Dense mode.
	lines  int              // 0 in sparse mode
	npairs uint64           // lines*(lines-1)/2
	planes map[int][]uint64 // vdd -> triangular bitset
	count  int              // set bits across planes
	undo   []densePair      // scratch for Consume rollback, reused under mu
}

// densePair names one tentatively-consumed bit for rollback.
type densePair struct {
	vdd int
	idx uint64
}

// NewRegistry creates an empty sparse registry (unknown geometry).
func NewRegistry() *Registry {
	return &Registry{used: make(map[pairKey]struct{})}
}

// NewRegistryLines creates an empty registry for a known cache
// geometry, choosing the dense bitset representation when the pair
// space is small enough and the sparse map otherwise.
func NewRegistryLines(lines int) *Registry {
	if lines > 1 && PossibleCRPs(lines) <= maxDensePairs {
		return &Registry{lines: lines, npairs: PossibleCRPs(lines), planes: make(map[int][]uint64)}
	}
	return NewRegistry()
}

// pairIndexLocked maps the canonical pair lo < hi onto its triangular-number
// index in [0, lines*(lines-1)/2).
func (reg *Registry) pairIndexLocked(lo, hi int) uint64 {
	l, h, n := uint64(lo), uint64(hi), uint64(reg.lines)
	return l*n - l*(l+1)/2 + h - l - 1
}

// planeLocked returns (allocating lazily) the bitset of one voltage
// plane. Callers hold reg.mu.
func (reg *Registry) planeLocked(vdd int) []uint64 {
	p, ok := reg.planes[vdd]
	if !ok {
		p = make([]uint64, (reg.npairs+63)/64)
		reg.planes[vdd] = p
	}
	return p
}

// inRangeLocked reports whether the canonical pair is addressable by the
// dense bitset; out-of-geometry coordinates (possible on hostile or
// restored input) take the panic-free path.
func (reg *Registry) inRangeLocked(k pairKey) bool {
	return k.lo >= 0 && k.hi < reg.lines && k.lo < k.hi
}

// Used reports the number of consumed pairs.
func (reg *Registry) Used() int {
	reg.mu.Lock()
	defer reg.mu.Unlock()
	if reg.lines > 0 {
		return reg.count
	}
	return len(reg.used)
}

// Consume atomically checks that none of the challenge's pairs have
// been used and marks them all used. If any pair (in either
// orientation) was already consumed — including a challenge reusing
// its own pair internally, which is as replayable as reusing a past
// one — nothing is marked and the method returns false.
func (reg *Registry) Consume(c *Challenge) bool {
	reg.mu.Lock()
	defer reg.mu.Unlock()
	if reg.lines > 0 {
		return reg.consumeDenseLocked(c)
	}
	// Sparse: insert tentatively — the second occurrence of an
	// in-challenge duplicate finds the first insert — and roll back
	// on any collision.
	inserted := 0
	for _, b := range c.Bits {
		k := canonical(b)
		if _, dup := reg.used[k]; dup {
			for _, rb := range c.Bits[:inserted] {
				delete(reg.used, canonical(rb))
			}
			return false
		}
		reg.used[k] = struct{}{}
		inserted++
	}
	return true
}

// consumeDenseLocked is Consume for the bitset representation:
// tentatively set each pair's bit, rolling back every set bit if one
// is already burned. Callers hold reg.mu.
func (reg *Registry) consumeDenseLocked(c *Challenge) bool {
	reg.undo = reg.undo[:0]
	for _, b := range c.Bits {
		k := canonical(b)
		if !reg.inRangeLocked(k) {
			reg.rollbackLocked()
			return false
		}
		idx := reg.pairIndexLocked(k.lo, k.hi)
		p := reg.planeLocked(k.vdd)
		w, mask := idx/64, uint64(1)<<(idx%64)
		if p[w]&mask != 0 {
			reg.rollbackLocked()
			return false
		}
		p[w] |= mask
		reg.undo = append(reg.undo, densePair{vdd: k.vdd, idx: idx})
	}
	reg.count += len(reg.undo)
	reg.undo = reg.undo[:0]
	return true
}

// rollbackLocked clears the tentatively-set bits of a failed Consume.
// Callers hold reg.mu.
func (reg *Registry) rollbackLocked() {
	for _, d := range reg.undo {
		p := reg.planes[d.vdd]
		p[d.idx/64] &^= uint64(1) << (d.idx % 64)
	}
	reg.undo = reg.undo[:0]
}

// Mark force-records pairs as consumed without the no-reuse check.
// Journal replay uses it: a replayed burn may overlap pairs the
// snapshot already holds, and re-marking a consumed pair is the
// idempotent direction (a pair can only ever become *more* dead).
func (reg *Registry) Mark(pairs []PairBit) {
	reg.mu.Lock()
	defer reg.mu.Unlock()
	for _, p := range pairs {
		k := canonical(p)
		if reg.lines > 0 {
			if !reg.inRangeLocked(k) {
				continue
			}
			idx := reg.pairIndexLocked(k.lo, k.hi)
			pl := reg.planeLocked(k.vdd)
			w, mask := idx/64, uint64(1)<<(idx%64)
			if pl[w]&mask == 0 {
				pl[w] |= mask
				reg.count++
			}
			continue
		}
		reg.used[k] = struct{}{}
	}
}

// IsUsed reports whether the pair of a single bit was consumed before.
func (reg *Registry) IsUsed(b PairBit) bool {
	reg.mu.Lock()
	defer reg.mu.Unlock()
	k := canonical(b)
	if reg.lines > 0 {
		if !reg.inRangeLocked(k) {
			return false
		}
		idx := reg.pairIndexLocked(k.lo, k.hi)
		p, ok := reg.planes[k.vdd]
		return ok && p[idx/64]&(1<<(idx%64)) != 0
	}
	_, ok := reg.used[k]
	return ok
}

// Export returns the consumed pairs in canonical orientation, for
// persisting an authentication server's state. Order is unspecified.
func (reg *Registry) Export() []PairBit {
	reg.mu.Lock()
	defer reg.mu.Unlock()
	if reg.lines > 0 {
		// Walk rows in triangular order: consecutive idx values are
		// (lo,lo+1), (lo,lo+2), ..., then the next lo. Whole zero
		// words are skipped in one hop.
		out := make([]PairBit, 0, reg.count)
		for vdd, p := range reg.planes {
			idx := uint64(0)
			for lo := 0; lo < reg.lines-1; lo++ {
				for hi := lo + 1; hi < reg.lines; {
					if idx%64 == 0 && hi+64 <= reg.lines && p[idx/64] == 0 {
						idx += 64
						hi += 64
						continue
					}
					if p[idx/64]&(1<<(idx%64)) != 0 {
						out = append(out, PairBit{A: lo, B: hi, VddMV: vdd})
					}
					idx++
					hi++
				}
			}
		}
		return out
	}
	out := make([]PairBit, 0, len(reg.used))
	for k := range reg.used {
		out = append(out, PairBit{A: k.lo, B: k.hi, VddMV: k.vdd})
	}
	return out
}

// RestoreRegistry rebuilds a sparse registry from exported pairs.
func RestoreRegistry(pairs []PairBit) *Registry {
	reg := NewRegistry()
	reg.Mark(pairs)
	return reg
}

// RestoreRegistryLines rebuilds a registry from exported pairs with a
// known geometry, so restoration keeps the dense representation.
func RestoreRegistryLines(lines int, pairs []PairBit) *Registry {
	reg := NewRegistryLines(lines)
	reg.Mark(pairs)
	return reg
}
