package crp

import (
	"sort"
	"testing"

	"repro/internal/rng"
)

// The registry has two representations behind one API: the sparse
// hash map and, for small-enough geometries, the dense triangular
// bitset. These tests drive both side by side through randomized
// workloads and assert every observable agrees, so the fast path can
// never quietly diverge from the reference semantics.

// denseLines is small enough that NewRegistryLines picks the dense
// representation (n(n-1)/2 = 4950 pairs).
const denseLines = 100

func TestNewRegistryLinesPicksRepresentation(t *testing.T) {
	if reg := NewRegistryLines(denseLines); reg.lines == 0 {
		t.Fatalf("NewRegistryLines(%d): want dense representation, got sparse", denseLines)
	}
	// 16384 lines is the authd default geometry: 134M pairs, beyond
	// maxDensePairs — must fall back to the map.
	if reg := NewRegistryLines(16384); reg.lines != 0 {
		t.Fatalf("NewRegistryLines(16384): want sparse fallback, got dense")
	}
	if reg := NewRegistryLines(0); reg.lines != 0 {
		t.Fatalf("NewRegistryLines(0): want sparse fallback, got dense")
	}
}

// randomChallenge draws nbits pairs, possibly colliding, in random
// orientation, across a few voltage planes.
func randomChallenge(r *rng.Rand, nbits int) *Challenge {
	vdds := []int{640, 680, 720}
	c := &Challenge{Bits: make([]PairBit, nbits)}
	for i := range c.Bits {
		a := r.Intn(denseLines)
		b := r.Intn(denseLines)
		for b == a {
			b = r.Intn(denseLines)
		}
		c.Bits[i] = PairBit{A: a, B: b, VddMV: vdds[r.Intn(len(vdds))]}
	}
	return c
}

func sortPairs(ps []PairBit) {
	sort.Slice(ps, func(i, j int) bool {
		a, b := canonical(ps[i]), canonical(ps[j])
		if a.vdd != b.vdd {
			return a.vdd < b.vdd
		}
		if a.lo != b.lo {
			return a.lo < b.lo
		}
		return a.hi < b.hi
	})
}

// TestDenseSparseEquivalence runs the same random Consume/Mark/IsUsed
// workload against both representations and checks that every return
// value, Used count, and the final Export set match exactly.
func TestDenseSparseEquivalence(t *testing.T) {
	r := rng.New(42)
	dense := NewRegistryLines(denseLines)
	sparse := NewRegistry()
	if dense.lines == 0 {
		t.Fatal("test geometry did not select the dense representation")
	}

	for step := 0; step < 400; step++ {
		c := randomChallenge(r, 1+r.Intn(12))
		switch step % 3 {
		case 0, 1:
			got, want := dense.Consume(c), sparse.Consume(c)
			if got != want {
				t.Fatalf("step %d: dense.Consume=%v sparse.Consume=%v for %+v", step, got, want, c.Bits)
			}
		case 2:
			dense.Mark(c.Bits)
			sparse.Mark(c.Bits)
		}
		if d, s := dense.Used(), sparse.Used(); d != s {
			t.Fatalf("step %d: Used diverged: dense=%d sparse=%d", step, d, s)
		}
		// Spot-check membership with fresh draws: burned pairs agree
		// in both orientations.
		probe := randomChallenge(r, 8)
		for _, b := range probe.Bits {
			if d, s := dense.IsUsed(b), sparse.IsUsed(b); d != s {
				t.Fatalf("step %d: IsUsed(%+v) diverged: dense=%v sparse=%v", step, b, d, s)
			}
			flipped := PairBit{A: b.B, B: b.A, VddMV: b.VddMV}
			if d, s := dense.IsUsed(flipped), sparse.IsUsed(flipped); d != s {
				t.Fatalf("step %d: IsUsed(flipped %+v) diverged: dense=%v sparse=%v", step, b, d, s)
			}
		}
	}

	de, se := dense.Export(), sparse.Export()
	sortPairs(de)
	sortPairs(se)
	if len(de) != len(se) {
		t.Fatalf("Export length diverged: dense=%d sparse=%d", len(de), len(se))
	}
	for i := range de {
		if canonical(de[i]) != canonical(se[i]) {
			t.Fatalf("Export[%d] diverged: dense=%+v sparse=%+v", i, de[i], se[i])
		}
	}
}

func TestDenseConsumeRollsBackOnCollision(t *testing.T) {
	reg := NewRegistryLines(denseLines)
	if !reg.Consume(&Challenge{Bits: []PairBit{{A: 1, B: 2, VddMV: 680}}}) {
		t.Fatal("first consume refused")
	}
	// Bits 0 and 2 are fresh; bit 1 collides (reversed orientation of
	// the consumed pair). Nothing new may stick.
	c := &Challenge{Bits: []PairBit{
		{A: 3, B: 4, VddMV: 680},
		{A: 2, B: 1, VddMV: 680},
		{A: 5, B: 6, VddMV: 680},
	}}
	if reg.Consume(c) {
		t.Fatal("consume with a replayed pair accepted")
	}
	if reg.IsUsed(PairBit{A: 3, B: 4, VddMV: 680}) {
		t.Fatal("rejected consume leaked its first bit")
	}
	if got := reg.Used(); got != 1 {
		t.Fatalf("Used=%d after rollback, want 1", got)
	}
}

func TestDenseConsumeRejectsInternalDuplicates(t *testing.T) {
	reg := NewRegistryLines(denseLines)
	c := &Challenge{Bits: []PairBit{
		{A: 7, B: 8, VddMV: 680},
		{A: 8, B: 7, VddMV: 680},
	}}
	if reg.Consume(c) {
		t.Fatal("challenge reusing its own pair accepted")
	}
	if got := reg.Used(); got != 0 {
		t.Fatalf("Used=%d after internal-duplicate rejection, want 0", got)
	}
}

func TestDenseOutOfRangeCoordinates(t *testing.T) {
	reg := NewRegistryLines(denseLines)
	// Hostile or corrupt input can carry coordinates beyond the
	// geometry; the dense bitset cannot address them and must refuse
	// without panicking. Mark (replay path) skips them instead.
	if reg.Consume(&Challenge{Bits: []PairBit{{A: 0, B: denseLines, VddMV: 680}}}) {
		t.Fatal("out-of-geometry pair consumed")
	}
	if reg.Consume(&Challenge{Bits: []PairBit{{A: -1, B: 3, VddMV: 680}}}) {
		t.Fatal("negative coordinate consumed")
	}
	reg.Mark([]PairBit{{A: 0, B: denseLines, VddMV: 680}, {A: 4, B: 5, VddMV: 680}})
	if got := reg.Used(); got != 1 {
		t.Fatalf("Used=%d after Mark with one out-of-range pair, want 1", got)
	}
	if reg.IsUsed(PairBit{A: 0, B: denseLines, VddMV: 680}) {
		t.Fatal("out-of-geometry pair reported used")
	}
}

func TestDenseExportRestoreRoundTrip(t *testing.T) {
	r := rng.New(7)
	reg := NewRegistryLines(denseLines)
	for i := 0; i < 50; i++ {
		reg.Consume(randomChallenge(r, 1+r.Intn(8)))
	}
	exported := reg.Export()

	restored := RestoreRegistryLines(denseLines, exported)
	//lint:ignore lockcheck restored is freshly built and test-local; lines is read only to assert the dense representation survived
	if restored.lines == 0 {
		t.Fatal("restore did not keep the dense representation")
	}
	if got, want := restored.Used(), reg.Used(); got != want {
		t.Fatalf("restored Used=%d, want %d", got, want)
	}
	for _, p := range exported {
		if !restored.IsUsed(p) {
			t.Fatalf("restored registry lost pair %+v", p)
		}
	}
	// Restoring into a sparse registry (geometry unknown) keeps the
	// same burned set.
	sparse := RestoreRegistry(exported)
	for _, p := range exported {
		if !sparse.IsUsed(p) {
			t.Fatalf("sparse restore lost pair %+v", p)
		}
	}
}
