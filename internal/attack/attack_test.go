package attack

import (
	"testing"

	"repro/internal/crp"
	"repro/internal/errormap"
	"repro/internal/rng"
)

// challengeStream builds a generator of fresh random challenges with
// true responses evaluated against one plane.
func challengeStream(t testing.TB, p *errormap.Plane, bits, vdd int, seed uint64) func() (*crp.Challenge, crp.Response) {
	t.Helper()
	m := errormap.NewMap(p.Geometry())
	m.AddPlane(vdd, p)
	oracles := crp.NewPlaneOracles(m)
	r := rng.New(seed)
	return func() (*crp.Challenge, crp.Response) {
		c := crp.Generate(p.Geometry(), bits, vdd, r)
		resp, err := crp.Evaluate(c, oracles)
		if err != nil {
			t.Fatal(err)
		}
		return c, resp
	}
}

func TestUntrainedModelAtChanceLevel(t *testing.T) {
	g := errormap.NewGeometry(4096)
	p := errormap.RandomPlane(g, 40, rng.New(1))
	gen := challengeStream(t, p, 64, 680, 2)
	m := NewModel(g)
	var sum float64
	const n = 50
	for i := 0; i < n; i++ {
		c, truth := gen()
		sum += m.PredictionRate(c, truth)
	}
	avg := sum / n
	if avg < 0.40 || avg > 0.62 {
		t.Fatalf("untrained accuracy = %v, want ~0.5", avg)
	}
}

func TestTrainingImprovesPrediction(t *testing.T) {
	g := errormap.NewGeometry(16384) // large enough that learning is gradual
	p := errormap.RandomPlane(g, 40, rng.New(3))
	gen := challengeStream(t, p, 64, 680, 4)
	m := NewModel(g)
	curve := LearningCurve(m, 4000, 500, gen)
	if len(curve) != 8 {
		t.Fatalf("curve samples = %d", len(curve))
	}
	first, last := curve[0].Rate, curve[len(curve)-1].Rate
	if first > 0.75 {
		t.Fatalf("early accuracy %v suspiciously high", first)
	}
	if last < 0.75 {
		t.Fatalf("late accuracy %v, model failed to learn", last)
	}
	if last <= first {
		t.Fatalf("no improvement: %v -> %v", first, last)
	}
	if curve[len(curve)-1].CRPs != 4000 {
		t.Fatalf("last sample at %d CRPs", curve[len(curve)-1].CRPs)
	}
}

func TestObserveMatchesObserveBit(t *testing.T) {
	g := errormap.NewGeometry(256)
	p := errormap.RandomPlane(g, 10, rng.New(5))
	gen := challengeStream(t, p, 32, 680, 6)
	c, truth := gen()

	a, b := NewModel(g), NewModel(g)
	a.Observe(c, truth)
	for i, bit := range c.Bits {
		b.ObserveBit(bit, truth.Bit(i))
	}
	if a.Observed() != b.Observed() || a.Observed() != 32 {
		t.Fatalf("observed counts: %d vs %d", a.Observed(), b.Observed())
	}
	probe, probeTruth := gen()
	if a.PredictionRate(probe, probeTruth) != b.PredictionRate(probe, probeTruth) {
		t.Fatal("Observe and ObserveBit diverge")
	}
}

// A key remap (modelled as evaluating against a permuted plane) must
// knock a trained model back to chance level — the paper's mitigation.
func TestRemapResetsAttacker(t *testing.T) {
	g := errormap.NewGeometry(1024)
	p := errormap.RandomPlane(g, 15, rng.New(7))
	gen := challengeStream(t, p, 64, 680, 8)
	m := NewModel(g)
	LearningCurve(m, 3000, 3000, gen)

	// Trained accuracy on the current layout.
	var trained float64
	const n = 50
	for i := 0; i < n; i++ {
		c, truth := gen()
		trained += m.PredictionRate(c, truth)
	}
	trained /= n

	// Same physical map, new random logical placement.
	remapped := errormap.NewPlane(g)
	perm := rng.New(9).Perm(g.Lines)
	for _, e := range p.Errors() {
		remapped.Set(perm[e], true)
	}
	genNew := challengeStream(t, remapped, 64, 680, 10)
	var after float64
	for i := 0; i < n; i++ {
		c, truth := genNew()
		after += m.PredictionRate(c, truth)
	}
	after /= n

	// The model keeps only layout-independent geometric priors (edge
	// cells sit farther from errors under any layout), so the residual
	// accuracy stays modestly above 50% — but the map-specific
	// knowledge, which is what threatens the PUF, must be gone.
	if trained < 0.85 {
		t.Fatalf("model undertrained: %v", trained)
	}
	if after > 0.70 {
		t.Fatalf("remap left accuracy at %v", after)
	}
	if trained-after < 0.20 {
		t.Fatalf("remap only dropped accuracy %v -> %v", trained, after)
	}
}

func TestLearningCurvePanicsOnBadParams(t *testing.T) {
	m := NewModel(errormap.NewGeometry(16))
	defer func() {
		if recover() == nil {
			t.Fatal("bad parameters accepted")
		}
	}()
	LearningCurve(m, 0, 10, nil)
}

func TestPredictBitTieBreaksToZero(t *testing.T) {
	m := NewModel(errormap.NewGeometry(16))
	// Untrained: all scores equal -> prediction 0, mirroring the PUF's
	// own tie rule.
	if m.PredictBit(crp.PairBit{A: 1, B: 2}) != 0 {
		t.Fatal("tie should predict 0")
	}
}
