package attack

import (
	"testing"

	"repro/internal/crp"
	"repro/internal/errormap"
	"repro/internal/rng"
)

func TestDependencyDirectFact(t *testing.T) {
	g := errormap.NewGeometry(64)
	m := NewDependencyModel(g)
	// Observe A(3) closer than B(9).
	m.ObserveBit(crp.PairBit{A: 3, B: 9}, 0)
	if m.PredictBit(crp.PairBit{A: 3, B: 9}) != 0 {
		t.Fatal("direct fact not used")
	}
	if m.PredictBit(crp.PairBit{A: 9, B: 3}) != 1 {
		t.Fatal("reversed direct fact not used")
	}
	if m.Observed() != 1 {
		t.Fatalf("observed = %d", m.Observed())
	}
}

func TestDependencyTransitiveChain(t *testing.T) {
	g := errormap.NewGeometry(64)
	m := NewDependencyModel(g)
	// 5 <= 7, 7 <= 11  =>  5 <= 11 by a depth-2 chain.
	m.ObserveBit(crp.PairBit{A: 5, B: 7}, 0)
	m.ObserveBit(crp.PairBit{A: 7, B: 11}, 0)
	if m.PredictBit(crp.PairBit{A: 5, B: 11}) != 0 {
		t.Fatal("transitive chain not found")
	}
	if m.PredictBit(crp.PairBit{A: 11, B: 5}) != 1 {
		t.Fatal("reversed transitive chain not found")
	}
}

func TestDependencyUnknownDefaultsToTie(t *testing.T) {
	g := errormap.NewGeometry(64)
	m := NewDependencyModel(g)
	if m.PredictBit(crp.PairBit{A: 1, B: 2}) != 0 {
		t.Fatal("unknown pair should predict the tie value 0")
	}
}

func TestDependencyCoverageGrows(t *testing.T) {
	g := errormap.NewGeometry(1024)
	p := errormap.RandomPlane(g, 15, rng.New(1))
	gen := challengeStream(t, p, 64, 680, 2)
	m := NewDependencyModel(g)
	probe, _ := gen()
	if c := m.Coverage(probe); c != 0 {
		t.Fatalf("untrained coverage = %v", c)
	}
	for i := 0; i < 500; i++ {
		c, truth := gen()
		m.Observe(c, truth)
	}
	probe2, _ := gen()
	if c := m.Coverage(probe2); c < 0.3 {
		t.Fatalf("trained coverage = %v, want substantial", c)
	}
}

func TestDependencyLearnsSlowerThanWinRate(t *testing.T) {
	g := errormap.NewGeometry(4096)
	p := errormap.RandomPlane(g, 30, rng.New(3))

	genA := challengeStream(t, p, 64, 680, 4)
	winRate := NewModel(g)
	curveA := LearningCurve(winRate, 600, 600, genA)

	genB := challengeStream(t, p, 64, 680, 4) // identical stream
	dep := NewDependencyModel(g)
	curveB := DependencyLearningCurve(dep, 600, 600, 20, genB)

	if curveB[0].Rate >= curveA[0].Rate {
		t.Fatalf("dependency model (%v) not slower than win-rate (%v) early on",
			curveB[0].Rate, curveA[0].Rate)
	}
}

func TestDependencyEventuallyLearns(t *testing.T) {
	g := errormap.NewGeometry(1024)
	p := errormap.RandomPlane(g, 15, rng.New(5))
	gen := challengeStream(t, p, 64, 680, 6)
	m := NewDependencyModel(g)
	curve := DependencyLearningCurve(m, 4000, 1000, 20, gen)
	last := curve[len(curve)-1].Rate
	if last < 0.75 {
		t.Fatalf("late accuracy = %v, dependency model failed to learn", last)
	}
	if curve[0].Rate >= last {
		t.Fatalf("no learning: %v -> %v", curve[0].Rate, last)
	}
}

func TestDependencyCurvePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("invalid params accepted")
		}
	}()
	DependencyLearningCurve(NewDependencyModel(errormap.NewGeometry(16)), 10, 0, 1, nil)
}
