// Package attack implements the model-building adversary of the
// paper's Section 6.7 case study.
//
// The attacker intercepts challenge-response transactions and tries to
// learn enough about the (logical) error map to predict responses to
// unseen challenges. Every observed bit (A, B) → r is a pairwise
// comparison: r = 0 says A's nearest-error distance is <= B's. The
// attacker therefore learns a *ranking* of map positions by their
// closeness to errors.
//
// The model maintained here is a win-rate (Borda-count) estimator:
// each position accumulates comparisons won and played, and the
// empirical win rate orders positions. With enough comparisons per
// position the ordering converges to the true distance ranking and
// prediction accuracy climbs from the 50% floor (the paper's Figure
// 16: ~70% after 87 K CRPs, ~90% after 374 K on a single-voltage map).
// The defence is the keyed remap rotation (package mapkey): a new key
// permutes all positions and resets the attacker to the floor.
package attack

import (
	"repro/internal/crp"
	"repro/internal/errormap"
)

// Model is the attacker's learned state over one logical error plane.
type Model struct {
	geo   errormap.Geometry
	wins  []float64
	games []float64

	observed int
}

// NewModel creates an untrained model for a plane of the geometry.
func NewModel(g errormap.Geometry) *Model {
	return &Model{
		geo:   g,
		wins:  make([]float64, g.Lines),
		games: make([]float64, g.Lines),
	}
}

// Observed returns the number of training bits consumed.
func (m *Model) Observed() int { return m.observed }

// score estimates how close a position sits to an error: higher means
// closer. Laplace smoothing keeps unseen positions at 0.5.
func (m *Model) score(line int) float64 {
	return (m.wins[line] + 1) / (m.games[line] + 2)
}

// PredictBit predicts the response bit for a pair: 0 if A is believed
// at least as close to an error as B.
func (m *Model) PredictBit(b crp.PairBit) int {
	if m.score(b.A) >= m.score(b.B) {
		return 0
	}
	return 1
}

// ObserveBit feeds one intercepted (pair, response-bit) observation
// into the model.
func (m *Model) ObserveBit(b crp.PairBit, respBit int) {
	m.games[b.A]++
	m.games[b.B]++
	if respBit == 0 {
		m.wins[b.A]++
	} else {
		m.wins[b.B]++
	}
	m.observed++
}

// Observe consumes a full intercepted challenge-response transaction.
func (m *Model) Observe(c *crp.Challenge, r crp.Response) {
	for i, b := range c.Bits {
		m.ObserveBit(b, r.Bit(i))
	}
}

// PredictionRate evaluates the model on a challenge against the true
// response, returning the fraction of bits predicted correctly.
func (m *Model) PredictionRate(c *crp.Challenge, truth crp.Response) float64 {
	if len(c.Bits) == 0 {
		return 0
	}
	correct := 0
	for i, b := range c.Bits {
		if m.PredictBit(b) == truth.Bit(i) {
			correct++
		}
	}
	return float64(correct) / float64(len(c.Bits))
}

// TrainingPoint is one sample of the learning curve.
type TrainingPoint struct {
	CRPs int     // challenges observed so far
	Rate float64 // prequential prediction accuracy over the last window
}

// LearningCurve runs the paper's Figure 16 experiment: a stream of
// unique random CRPs is presented to the model; each challenge is
// first predicted, then used for training (prequential evaluation).
// The curve is sampled every sampleEvery challenges with the windowed
// accuracy since the previous sample.
//
// gen produces the next challenge and its true response; it is
// expected to draw fresh pairs (the no-reuse policy makes every
// transaction new).
func LearningCurve(m *Model, total, sampleEvery int, gen func() (*crp.Challenge, crp.Response)) []TrainingPoint {
	if sampleEvery <= 0 || total <= 0 {
		panic("attack: invalid learning-curve parameters")
	}
	var points []TrainingPoint
	windowCorrect, windowBits := 0, 0
	for n := 1; n <= total; n++ {
		c, truth := gen()
		for i, b := range c.Bits {
			if m.PredictBit(b) == truth.Bit(i) {
				windowCorrect++
			}
			windowBits++
			m.ObserveBit(b, truth.Bit(i))
		}
		if n%sampleEvery == 0 {
			points = append(points, TrainingPoint{
				CRPs: n,
				Rate: float64(windowCorrect) / float64(windowBits),
			})
			windowCorrect, windowBits = 0, 0
		}
	}
	return points
}
