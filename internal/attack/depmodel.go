package attack

import (
	"repro/internal/crp"
	"repro/internal/errormap"
)

// DependencyModel is a second adversary, modelled directly on the
// paper's description: it "progressively establishes dependencies
// between points in the error map based on observed CRPs". Every
// observed bit (A, B) → r records the partial-order fact
// dist(A) ≤ dist(B) (or the reverse); a prediction for an unseen pair
// (X, Y) is made only when a transitive chain X ≤ Z ≤ Y (depth 2) can
// be assembled from recorded facts, and defaults to the tie value 0
// otherwise.
//
// Compared to the win-rate Model, the DependencyModel learns more
// slowly — it needs enough observations per coordinate for chains to
// exist — which reproduces the gentler learning curve of the paper's
// Figure 16 (70% at ~87 K CRPs rather than our Borda attacker's
// ~20 K).
type DependencyModel struct {
	geo errormap.Geometry
	// succ[x] lists nodes known to be at-least-as-far as x
	// (x ≤ node); pred[x] lists nodes known to be at-most-as-far.
	succ [][]int32
	pred [][]int32

	// mark/markGen implement an O(1)-reset scratch set for chain
	// queries, so predictions allocate nothing.
	mark    []uint32
	markGen uint32

	observed int
}

// NewDependencyModel creates an untrained dependency model.
func NewDependencyModel(g errormap.Geometry) *DependencyModel {
	return &DependencyModel{
		geo:  g,
		succ: make([][]int32, g.Lines),
		pred: make([][]int32, g.Lines),
		mark: make([]uint32, g.Lines),
	}
}

// Observed returns the number of training bits consumed.
func (m *DependencyModel) Observed() int { return m.observed }

// ObserveBit records one intercepted comparison.
func (m *DependencyModel) ObserveBit(b crp.PairBit, respBit int) {
	lo, hi := b.A, b.B
	if respBit == 1 { // dist(A) > dist(B)  =>  B ≤ A
		lo, hi = b.B, b.A
	}
	m.succ[lo] = append(m.succ[lo], int32(hi))
	m.pred[hi] = append(m.pred[hi], int32(lo))
	m.observed++
}

// Observe consumes a full transaction.
func (m *DependencyModel) Observe(c *crp.Challenge, r crp.Response) {
	for i, b := range c.Bits {
		m.ObserveBit(b, r.Bit(i))
	}
}

// chainExists reports whether a ≤-chain of depth at most 2 connects x
// to y: either the direct fact x ≤ y, or x ≤ z and z ≤ y for some z.
func (m *DependencyModel) chainExists(x, y int) bool {
	sx := m.succ[x]
	if len(sx) == 0 {
		return false
	}
	m.markGen++
	gen := m.markGen
	for _, z := range sx {
		if int(z) == y {
			return true // direct fact
		}
		m.mark[z] = gen
	}
	for _, z := range m.pred[y] {
		if m.mark[z] == gen {
			return true
		}
	}
	return false
}

// PredictBit predicts the response for a pair: 0 when a chain shows
// A ≤ B, 1 when a chain shows B ≤ A, and the tie default 0 when the
// recorded dependencies say nothing.
func (m *DependencyModel) PredictBit(b crp.PairBit) int {
	aLEb := m.chainExists(b.A, b.B)
	bLEa := m.chainExists(b.B, b.A)
	switch {
	case aLEb && !bLEa:
		return 0
	case bLEa && !aLEb:
		return 1
	default:
		// No information, or contradictory chains (both can hold when
		// distances are equal): the tie rule says 0.
		return 0
	}
}

// PredictionRate evaluates the model on a challenge.
func (m *DependencyModel) PredictionRate(c *crp.Challenge, truth crp.Response) float64 {
	if len(c.Bits) == 0 {
		return 0
	}
	correct := 0
	for i, b := range c.Bits {
		if m.PredictBit(b) == truth.Bit(i) {
			correct++
		}
	}
	return float64(correct) / float64(len(c.Bits))
}

// Coverage reports the fraction of the challenge's bits for which the
// model had a usable dependency chain (in either direction) — the
// "knowledge" axis behind the accuracy curve.
func (m *DependencyModel) Coverage(c *crp.Challenge) float64 {
	if len(c.Bits) == 0 {
		return 0
	}
	n := 0
	for _, b := range c.Bits {
		if m.chainExists(b.A, b.B) || m.chainExists(b.B, b.A) {
			n++
		}
	}
	return float64(n) / float64(len(c.Bits))
}

// DependencyLearningCurve mirrors LearningCurve for the dependency
// model. Training streams every observed CRP into the graph; accuracy
// is sampled every sampleEvery challenges by predicting evalChallenges
// fresh challenges that are NOT added to the training set (held-out
// evaluation — full prequential prediction over tens of millions of
// bits would dominate the runtime without changing the curve).
func DependencyLearningCurve(m *DependencyModel, total, sampleEvery, evalChallenges int, gen func() (*crp.Challenge, crp.Response)) []TrainingPoint {
	if sampleEvery <= 0 || total <= 0 || evalChallenges <= 0 {
		panic("attack: invalid learning-curve parameters")
	}
	var points []TrainingPoint
	for n := 1; n <= total; n++ {
		c, truth := gen()
		m.Observe(c, truth)
		if n%sampleEvery == 0 {
			var rate float64
			for e := 0; e < evalChallenges; e++ {
				probe, probeTruth := gen()
				rate += m.PredictionRate(probe, probeTruth)
			}
			points = append(points, TrainingPoint{CRPs: n, Rate: rate / float64(evalChallenges)})
		}
	}
	return points
}
