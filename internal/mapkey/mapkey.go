// Package mapkey implements the keyed logical remapping of physical
// error locations (paper Sections 4.3–4.5).
//
// Authenticache never exposes physical cache-line addresses in
// challenges: the server and client share a key K and both apply a
// keyed pseudo-random permutation between physical line indices and
// "logical" positions. An attacker observing challenges learns only
// logical coordinates; without K the physical error layout — and hence
// the chip's low-voltage profile — stays hidden, and periodically
// rotating K (the adaptive remap protocol) invalidates any model an
// attacker has trained.
//
// The permutation is a 4-round Feistel network over the index space
// [0, n), using HMAC-SHA256 as the round function, with cycle walking
// to stay inside the domain when n is not a power of four. This is the
// standard generic-domain format-preserving construction: a bijection
// for any n, invertible with the key, and computable in O(1) per
// index.
package mapkey

import (
	"crypto/hmac"
	"crypto/sha256"
	"encoding/binary"
	"fmt"
)

// Key is a 256-bit remapping key.
type Key [32]byte

// KeyFromBytes builds a Key from arbitrary secret material by hashing,
// so callers can feed fuzzy-extractor output of any length.
func KeyFromBytes(material []byte, label string) Key {
	mac := hmac.New(sha256.New, material)
	mac.Write([]byte("authenticache/mapkey/v1/"))
	mac.Write([]byte(label))
	var k Key
	copy(k[:], mac.Sum(nil))
	return k
}

// Permutation is a keyed bijection on [0, n).
//
// A Permutation memoizes its Feistel round functions on first use
// (the round-function domain is only 2^(halfBits) values, a few
// hundred entries for realistic cache sizes), so Map and Unmap are
// table lookups after warm-up. The memo makes a Permutation unsafe
// for unsynchronised concurrent use; callers that share one across
// goroutines must hold their own lock (the auth server keeps
// permutations inside per-client records guarded by the record lock).
type Permutation struct {
	n         uint64
	halfBits  uint
	halfMask  uint64
	rounds    int
	roundKeys [][32]byte
	// memo[r][half] caches roundF(r, half); built lazily per round on
	// first use. Index r is nil until then.
	memo [][]uint64
}

// feistelRounds is fixed at 4: the minimum for a strong pseudo-random
// permutation from pseudo-random round functions (Luby-Rackoff).
const feistelRounds = 4

// NewPermutation builds the keyed permutation over [0, n). It panics
// if n < 2 (a domain with fewer than two elements cannot hide
// anything).
func NewPermutation(key Key, n int) *Permutation {
	if n < 2 {
		panic(fmt.Sprintf("mapkey: domain size %d too small", n))
	}
	// Find the smallest even bit width covering n-1, so both Feistel
	// halves are equal width and the walking domain is < 4n.
	bits := uint(1)
	for (uint64(1) << bits) < uint64(n) {
		bits++
	}
	if bits%2 == 1 {
		bits++
	}
	p := &Permutation{
		n:        uint64(n),
		halfBits: bits / 2,
		halfMask: (uint64(1) << (bits / 2)) - 1,
		rounds:   feistelRounds,
		memo:     make([][]uint64, feistelRounds),
	}
	for r := 0; r < p.rounds; r++ {
		mac := hmac.New(sha256.New, key[:])
		var rk [8]byte
		binary.LittleEndian.PutUint64(rk[:], uint64(r))
		mac.Write([]byte("round"))
		mac.Write(rk[:])
		var out [32]byte
		copy(out[:], mac.Sum(nil))
		p.roundKeys = append(p.roundKeys, out)
	}
	return p
}

// Domain returns n, the size of the permuted index space.
func (p *Permutation) Domain() int { return int(p.n) }

// maxMemoHalfBits bounds the memoized round-table size (2^halfBits
// entries per round); beyond it roundF falls back to computing the
// HMAC per call. 2^16 entries x 4 rounds is 2 MB — far above any
// realistic cache geometry, present only as an allocation guard.
const maxMemoHalfBits = 16

// roundF is the Feistel round function: HMAC-SHA256(roundKey, half)
// truncated to halfBits. The per-round table is built on the round's
// first use; afterwards roundF is a slice index.
func (p *Permutation) roundF(round int, half uint64) uint64 {
	if t := p.memo[round]; t != nil {
		return t[half]
	}
	if p.halfBits > maxMemoHalfBits {
		return p.roundFSlow(round, half)
	}
	t := make([]uint64, p.halfMask+1)
	for h := range t {
		t[h] = p.roundFSlow(round, uint64(h))
	}
	p.memo[round] = t
	return t[half]
}

func (p *Permutation) roundFSlow(round int, half uint64) uint64 {
	mac := hmac.New(sha256.New, p.roundKeys[round][:])
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], half)
	mac.Write(b[:])
	sum := mac.Sum(nil)
	return binary.LittleEndian.Uint64(sum[:8]) & p.halfMask
}

// encryptOnce runs one pass of the Feistel network over the padded
// domain [0, 2^(2*halfBits)).
func (p *Permutation) encryptOnce(x uint64) uint64 {
	l := x >> p.halfBits
	r := x & p.halfMask
	for round := 0; round < p.rounds; round++ {
		l, r = r, l^p.roundF(round, r)
	}
	return l<<p.halfBits | r
}

func (p *Permutation) decryptOnce(x uint64) uint64 {
	l := x >> p.halfBits
	r := x & p.halfMask
	for round := p.rounds - 1; round >= 0; round-- {
		l, r = r^p.roundF(round, l), l
	}
	return l<<p.halfBits | r
}

// Map sends a physical index to its logical position. It panics on an
// out-of-domain index. Cycle walking guarantees the result is in
// [0, n); the padded domain is < 4n, so the expected walk length is
// under 4 steps.
func (p *Permutation) Map(physical int) int {
	if physical < 0 || uint64(physical) >= p.n {
		panic(fmt.Sprintf("mapkey: index %d outside domain [0,%d)", physical, p.n))
	}
	x := uint64(physical)
	for {
		x = p.encryptOnce(x)
		if x < p.n {
			return int(x)
		}
	}
}

// Unmap sends a logical position back to its physical index.
func (p *Permutation) Unmap(logical int) int {
	if logical < 0 || uint64(logical) >= p.n {
		panic(fmt.Sprintf("mapkey: index %d outside domain [0,%d)", logical, p.n))
	}
	x := uint64(logical)
	for {
		x = p.decryptOnce(x)
		if x < p.n {
			return int(x)
		}
	}
}

// DeriveSubkey derives an independent key for a purpose label, used to
// give each voltage plane its own permutation from one master key.
func DeriveSubkey(master Key, label string) Key {
	return KeyFromBytes(master[:], label)
}

// PlaneKey returns the per-voltage-plane remapping key for the plane
// measured at vddMV millivolts.
func PlaneKey(master Key, vddMV int) Key {
	return DeriveSubkey(master, fmt.Sprintf("plane/%dmV", vddMV))
}
