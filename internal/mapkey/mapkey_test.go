package mapkey

import (
	"testing"
	"testing/quick"
)

func testKey(b byte) Key {
	var k Key
	for i := range k {
		k[i] = b ^ byte(i)
	}
	return k
}

func TestPermutationBijective(t *testing.T) {
	for _, n := range []int{2, 3, 16, 100, 257, 4096, 12288} {
		p := NewPermutation(testKey(1), n)
		seen := make([]bool, n)
		for i := 0; i < n; i++ {
			m := p.Map(i)
			if m < 0 || m >= n {
				t.Fatalf("n=%d: Map(%d) = %d out of range", n, i, m)
			}
			if seen[m] {
				t.Fatalf("n=%d: Map collision at output %d", n, m)
			}
			seen[m] = true
		}
	}
}

func TestUnmapInvertsMap(t *testing.T) {
	for _, n := range []int{2, 100, 65536} {
		p := NewPermutation(testKey(2), n)
		step := 1
		if n > 1000 {
			step = 97
		}
		for i := 0; i < n; i += step {
			if got := p.Unmap(p.Map(i)); got != i {
				t.Fatalf("n=%d: Unmap(Map(%d)) = %d", n, i, got)
			}
		}
	}
}

func TestInversionProperty(t *testing.T) {
	p := NewPermutation(testKey(3), 50000)
	f := func(x uint16) bool {
		i := int(x) % 50000
		return p.Unmap(p.Map(i)) == i && p.Map(p.Unmap(i)) == i
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestKeySensitivity(t *testing.T) {
	const n = 10000
	p1 := NewPermutation(testKey(4), n)
	p2 := NewPermutation(testKey(5), n)
	same := 0
	for i := 0; i < 1000; i++ {
		if p1.Map(i) == p2.Map(i) {
			same++
		}
	}
	// Two random permutations agree on a point with prob 1/n.
	if same > 5 {
		t.Fatalf("different keys agreed on %d of 1000 points", same)
	}
}

func TestDeterministicAcrossInstances(t *testing.T) {
	a := NewPermutation(testKey(6), 12345)
	b := NewPermutation(testKey(6), 12345)
	for i := 0; i < 500; i++ {
		if a.Map(i) != b.Map(i) {
			t.Fatalf("same key/domain diverged at %d", i)
		}
	}
}

func TestMapLooksRandom(t *testing.T) {
	// The permutation should not preserve locality: consecutive inputs
	// should land far apart on average.
	const n = 65536
	p := NewPermutation(testKey(7), n)
	adjacent := 0
	for i := 0; i < 1000; i++ {
		d := p.Map(i) - p.Map(i+1)
		if d < 0 {
			d = -d
		}
		if d < 100 {
			adjacent++
		}
	}
	if adjacent > 20 {
		t.Fatalf("%d of 1000 consecutive pairs mapped within 100", adjacent)
	}
}

func TestPanicsOutOfDomain(t *testing.T) {
	p := NewPermutation(testKey(8), 100)
	for _, bad := range []int{-1, 100, 1000} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("Map(%d) did not panic", bad)
				}
			}()
			p.Map(bad)
		}()
	}
}

func TestPanicsTinyDomain(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("domain 1 accepted")
		}
	}()
	NewPermutation(testKey(9), 1)
}

func TestDomainAccessor(t *testing.T) {
	if d := NewPermutation(testKey(10), 777).Domain(); d != 777 {
		t.Fatalf("Domain = %d", d)
	}
}

func TestKeyFromBytes(t *testing.T) {
	a := KeyFromBytes([]byte("secret"), "x")
	b := KeyFromBytes([]byte("secret"), "x")
	if a != b {
		t.Fatal("not deterministic")
	}
	if a == KeyFromBytes([]byte("secret"), "y") {
		t.Fatal("label ignored")
	}
	if a == KeyFromBytes([]byte("other"), "x") {
		t.Fatal("material ignored")
	}
}

func TestPlaneKeysIndependent(t *testing.T) {
	master := testKey(11)
	if PlaneKey(master, 680) == PlaneKey(master, 700) {
		t.Fatal("plane keys collide across voltages")
	}
	if PlaneKey(master, 680) != PlaneKey(master, 680) {
		t.Fatal("plane key not deterministic")
	}
	if DeriveSubkey(master, "a") == DeriveSubkey(master, "b") {
		t.Fatal("subkeys collide")
	}
}

func BenchmarkMap(b *testing.B) {
	p := NewPermutation(testKey(1), 65536)
	for i := 0; i < b.N; i++ {
		_ = p.Map(i & 0xffff)
	}
}
