// Package core assembles the Authenticache client device: process
// variation model, ECC-protected SRAM, cache error handler, voltage
// controller, and SMM firmware (paper Section 5, Figure 8). It is the
// paper's "prototype" in simulated form — a complete client whose
// physical identity is a single chip seed.
package core

import (
	"fmt"

	"repro/internal/auth"
	"repro/internal/cache"
	"repro/internal/errormap"
	"repro/internal/firmware"
	"repro/internal/sram"
	"repro/internal/variation"
	"repro/internal/voltage"
)

// ChipConfig describes one simulated client device.
type ChipConfig struct {
	// Seed is the chip's physical identity; two chips with the same
	// seed are the same silicon.
	Seed uint64
	// MeasSeed seeds the measurement-noise stream; re-measuring the
	// same chip uses a different MeasSeed.
	MeasSeed uint64
	// CacheBytes is the LLC capacity (default 4 MB).
	CacheBytes int
	// Cores is the package core count (default 8).
	Cores int
	// Variation calibrates the process-variation model.
	Variation variation.Params
	// Voltage tunes the controller; zero value uses defaults with a
	// coarser calibration step for simulation speed.
	Voltage voltage.Config
	// Costs is the firmware timing model.
	Costs firmware.CostModel
	// EnrollSweeps is how many full-cache sweeps enrollment runs per
	// voltage plane (default 8, per Figure 11's persistence tail).
	EnrollSweeps int
	// MaxAttempts is the firmware's per-line self-test budget during
	// challenges (default 4, the paper's conservative-but-fast point).
	MaxAttempts int
}

// fill applies defaults.
func (c ChipConfig) fill() ChipConfig {
	if c.CacheBytes == 0 {
		c.CacheBytes = 4 << 20
	}
	if c.Cores == 0 {
		c.Cores = 8
	}
	if c.Variation == (variation.Params{}) {
		c.Variation = variation.DefaultParams()
	}
	if c.Voltage == (voltage.Config{}) {
		c.Voltage = voltage.DefaultConfig()
		c.Voltage.StepMV = 5
		c.Voltage.VMinSearch = 0.600
	}
	if c.Costs == (firmware.CostModel{}) {
		c.Costs = firmware.DefaultCostModel()
	}
	if c.EnrollSweeps == 0 {
		c.EnrollSweeps = 8
	}
	if c.MaxAttempts == 0 {
		c.MaxAttempts = 4
	}
	if c.MeasSeed == 0 {
		c.MeasSeed = c.Seed ^ 0x6d656173 // "meas"
	}
	return c
}

// Chip is a fully assembled simulated client device.
type Chip struct {
	cfg     ChipConfig
	geo     cache.Geometry
	array   *sram.Array
	handler *cache.ErrorHandler
	ctrl    *voltage.Controller
	fw      *firmware.Client
	floorMV int
}

// NewChip builds and boot-calibrates a chip. The returned chip has its
// voltage floor established and is ready to enroll or authenticate.
func NewChip(cfg ChipConfig) (*Chip, error) {
	cfg = cfg.fill()
	geo := cache.GeometryForSize(cfg.CacheBytes)
	model := variation.NewModel(cfg.Seed, cfg.Variation)
	array := sram.New(model, geo.Lines(), cfg.MeasSeed)
	handler := cache.NewErrorHandler(array, geo)
	ctrl := voltage.NewController(array, cfg.Voltage)
	handler.SetEmergencyCallback(ctrl.Emergency)
	floor, err := ctrl.CalibrateFloor(handler)
	if err != nil {
		return nil, fmt.Errorf("core: boot calibration failed: %w", err)
	}
	fw := firmware.NewClient(handler, ctrl, cfg.Cores, cfg.Costs)
	fw.MaxAttempts = cfg.MaxAttempts
	return &Chip{
		cfg:     cfg,
		geo:     geo,
		array:   array,
		handler: handler,
		ctrl:    ctrl,
		fw:      fw,
		floorMV: floor,
	}, nil
}

// FloorMV returns the calibrated voltage floor in millivolts.
func (c *Chip) FloorMV() int { return c.floorMV }

// Geometry returns the cache organisation.
func (c *Chip) Geometry() cache.Geometry { return c.geo }

// MapGeometry returns the logical error-map layout.
func (c *Chip) MapGeometry() errormap.Geometry {
	return errormap.NewGeometry(c.geo.Lines())
}

// Firmware exposes the firmware client (timing, probe counters).
func (c *Chip) Firmware() *firmware.Client { return c.fw }

// Handler exposes the cache error handler.
func (c *Chip) Handler() *cache.ErrorHandler { return c.handler }

// Controller exposes the voltage controller.
func (c *Chip) Controller() *voltage.Controller { return c.ctrl }

// Array exposes the SRAM array (tests and experiments use it to set
// environmental conditions).
func (c *Chip) Array() *sram.Array { return c.array }

// SetEnvironment applies field conditions (temperature, aging) to the
// silicon. Enrollment-time characterisation normally happens at the
// zero environment.
func (c *Chip) SetEnvironment(env variation.Environment) {
	c.array.SetEnvironment(env)
}

// Recalibrate re-runs the voltage floor search under the current
// environment (the paper's periodic recalibration).
func (c *Chip) Recalibrate() (int, error) {
	floor, err := c.ctrl.Recalibrate(c.handler)
	if err != nil {
		return 0, err
	}
	c.floorMV = floor
	return floor, nil
}

// AuthVoltagesMV suggests n challenge voltage levels for this chip:
// evenly spaced planes starting a guard distance above the floor,
// spaced spacingMV apart, highest first. Levels beyond the correctable
// band simply yield sparser planes.
func (c *Chip) AuthVoltagesMV(n, spacingMV int) []int {
	if n <= 0 || spacingMV <= 0 {
		panic("core: invalid voltage plan")
	}
	// The guard absorbs floor-recalibration jitter between boots of the
	// same silicon (the confirmation sweeps are stochastic), so a
	// challenge enrolled by one boot never aborts on another.
	const guardMV = 15
	out := make([]int, 0, n)
	for i := n - 1; i >= 0; i-- {
		out = append(out, c.floorMV+guardMV+i*spacingMV)
	}
	return out
}

// Enroll characterises the chip at the given voltage levels and
// returns its physical error map — the artifact the authentication
// server stores. Each plane is built from EnrollSweeps full-cache
// sweeps so flaky marginal lines are captured.
func (c *Chip) Enroll(vddsMV []int) (*errormap.Map, error) {
	if len(vddsMV) == 0 {
		return nil, fmt.Errorf("core: enrollment needs at least one voltage level")
	}
	m := errormap.NewMap(c.MapGeometry())
	for _, v := range vddsMV {
		if err := c.ctrl.Request(v); err != nil {
			return nil, fmt.Errorf("core: enrollment at %d mV: %w", v, err)
		}
		m.AddPlane(v, c.handler.BuildPlane(c.cfg.EnrollSweeps))
	}
	c.ctrl.RestoreNominal()
	return m, nil
}

// Device wraps the chip as an auth.Device backed by the full firmware
// stack.
func (c *Chip) Device() auth.Device {
	return &auth.FirmwareDevice{Client: c.fw}
}
