package core

import (
	"testing"

	"repro/internal/auth"
	"repro/internal/variation"
)

func smallChip(t testing.TB, seed uint64) *Chip {
	t.Helper()
	c, err := NewChip(ChipConfig{Seed: seed, CacheBytes: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestNewChipCalibrates(t *testing.T) {
	c := smallChip(t, 1)
	p := variation.DefaultParams()
	floor := c.FloorMV()
	if floor <= int(p.BulkMean*1000) || floor >= int(p.DefectBandHi*1000) {
		t.Fatalf("floor = %d mV outside the plausible band", floor)
	}
	if c.Geometry().SizeBytes() != 1<<20 {
		t.Fatalf("geometry = %d bytes", c.Geometry().SizeBytes())
	}
	if c.MapGeometry().Lines != c.Geometry().Lines() {
		t.Fatal("map geometry disagrees with cache geometry")
	}
}

func TestChipDefaults(t *testing.T) {
	cfg := ChipConfig{Seed: 2}.fill()
	if cfg.CacheBytes != 4<<20 || cfg.Cores != 8 || cfg.EnrollSweeps != 8 || cfg.MaxAttempts != 4 {
		t.Fatalf("defaults = %+v", cfg)
	}
	if cfg.MeasSeed == 0 {
		t.Fatal("MeasSeed not derived")
	}
}

func TestAuthVoltagesDescending(t *testing.T) {
	c := smallChip(t, 3)
	vs := c.AuthVoltagesMV(3, 10)
	if len(vs) != 3 {
		t.Fatalf("levels = %v", vs)
	}
	for i := 1; i < len(vs); i++ {
		if vs[i] >= vs[i-1] {
			t.Fatalf("levels not descending: %v", vs)
		}
	}
	if vs[len(vs)-1] < c.FloorMV() {
		t.Fatalf("lowest level %d below floor %d", vs[len(vs)-1], c.FloorMV())
	}
}

func TestEnrollProducesPlanes(t *testing.T) {
	c := smallChip(t, 4)
	vs := c.AuthVoltagesMV(2, 10)
	m, err := c.Enroll(vs)
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Voltages()) != 2 {
		t.Fatalf("planes = %v", m.Voltages())
	}
	for _, v := range vs {
		if m.Plane(v).ErrorCount() == 0 {
			t.Fatalf("plane at %d mV is empty", v)
		}
	}
	// Lower voltage exposes at least as many failing lines.
	lo, hi := vs[len(vs)-1], vs[0]
	if m.Plane(lo).ErrorCount() < m.Plane(hi).ErrorCount() {
		t.Fatalf("plane at %d mV has fewer errors (%d) than at %d mV (%d)",
			lo, m.Plane(lo).ErrorCount(), hi, m.Plane(hi).ErrorCount())
	}
	// Rail restored afterwards.
	if c.Array().Voltage() != 0.800 {
		t.Fatalf("rail left at %v after enrollment", c.Array().Voltage())
	}
}

func TestEnrollValidation(t *testing.T) {
	c := smallChip(t, 5)
	if _, err := c.Enroll(nil); err == nil {
		t.Fatal("empty enrollment accepted")
	}
	if _, err := c.Enroll([]int{c.FloorMV() - 100}); err == nil {
		t.Fatal("below-floor enrollment accepted")
	}
}

// The headline integration test: a chip enrolls against a server and
// then authenticates through the full firmware stack.
func TestEndToEndFirmwareAuthentication(t *testing.T) {
	chip := smallChip(t, 6)
	vs := chip.AuthVoltagesMV(2, 10)
	m, err := chip.Enroll(vs)
	if err != nil {
		t.Fatal(err)
	}
	cfg := auth.DefaultConfig()
	cfg.ChallengeBits = 64
	srv := auth.NewServer(cfg, 99)
	key, err := srv.Enroll(ctx, "chip-6", m)
	if err != nil {
		t.Fatal(err)
	}
	resp := auth.NewResponder("chip-6", chip.Device(), key)
	accepted := 0
	for i := 0; i < 5; i++ {
		ch, err := srv.IssueChallenge(ctx, "chip-6")
		if err != nil {
			t.Fatal(err)
		}
		answer, err := resp.Respond(ch)
		if err != nil {
			t.Fatal(err)
		}
		ok, err := srv.Verify(ctx, "chip-6", ch.ID, answer)
		if err != nil {
			t.Fatal(err)
		}
		if ok {
			accepted++
		}
	}
	if accepted < 4 {
		t.Fatalf("genuine firmware-backed chip accepted only %d/5", accepted)
	}
}

// A different chip answering for the enrolled identity must fail.
func TestEndToEndImpostorChip(t *testing.T) {
	genuine := smallChip(t, 7)
	impostor := smallChip(t, 8)
	vs := genuine.AuthVoltagesMV(1, 10)
	m, err := genuine.Enroll(vs)
	if err != nil {
		t.Fatal(err)
	}
	cfg := auth.DefaultConfig()
	cfg.ChallengeBits = 64
	srv := auth.NewServer(cfg, 100)
	key, err := srv.Enroll(ctx, "victim", m)
	if err != nil {
		t.Fatal(err)
	}
	// The impostor has the key (worst case) but not the silicon. Its
	// own floor may sit above the victim's challenge voltage; that
	// alone is a rejection in the field, so align floors for the worst
	// case by skipping if the challenge aborts.
	resp := auth.NewResponder("victim", impostor.Device(), key)
	ch, err := srv.IssueChallenge(ctx, "victim")
	if err != nil {
		t.Fatal(err)
	}
	answer, err := resp.Respond(ch)
	if err != nil {
		t.Skipf("impostor chip aborted (floor mismatch): %v", err)
	}
	ok, err := srv.Verify(ctx, "victim", ch.ID, answer)
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Fatal("impostor silicon accepted")
	}
}

// Temperature stress: a genuine chip re-authenticating 25°C hotter
// must still pass (the paper's Section 3 experiment).
func TestEndToEndTemperatureExcursion(t *testing.T) {
	chip := smallChip(t, 9)
	vs := chip.AuthVoltagesMV(1, 10)
	m, err := chip.Enroll(vs)
	if err != nil {
		t.Fatal(err)
	}
	cfg := auth.DefaultConfig()
	cfg.ChallengeBits = 64
	srv := auth.NewServer(cfg, 101)
	key, err := srv.Enroll(ctx, "hot-chip", m)
	if err != nil {
		t.Fatal(err)
	}
	chip.SetEnvironment(variation.Environment{DeltaT: 25})
	resp := auth.NewResponder("hot-chip", chip.Device(), key)
	accepted := 0
	for i := 0; i < 3; i++ {
		ch, err := srv.IssueChallenge(ctx, "hot-chip")
		if err != nil {
			t.Fatal(err)
		}
		answer, err := resp.Respond(ch)
		if err != nil {
			t.Fatal(err)
		}
		if ok, _ := srv.Verify(ctx, "hot-chip", ch.ID, answer); ok {
			accepted++
		}
	}
	if accepted < 2 {
		t.Fatalf("hot genuine chip accepted only %d/3", accepted)
	}
}

func TestRecalibrateTracksAging(t *testing.T) {
	chip := smallChip(t, 10)
	fresh := chip.FloorMV()
	chip.SetEnvironment(variation.Environment{AgeYears: 10, DeltaT: 25})
	aged, err := chip.Recalibrate()
	if err != nil {
		t.Fatal(err)
	}
	if aged < fresh {
		t.Fatalf("floor dropped under aging: %d -> %d", fresh, aged)
	}
}
