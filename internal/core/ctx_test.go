package core

import "context"

// ctx is the shared background context for tests.
var ctx = context.Background()
