// Package enroll implements the factory enrollment station: the
// post-manufacturing pipeline (paper Section 2.1) that characterises
// each chip's low-voltage error map, screens it against acceptance
// criteria, and provisions it into an authentication server.
//
// Screening matters because the PUF's quality degrades at both ends of
// the error-density spectrum: too few errors make challenges slow
// (Figure 14: runtime grows as maps get sparser) and reduce entropy;
// too many mean the chip's safe-voltage floor sits uncomfortably close
// to the challenge band. The station also verifies persistence by
// re-characterising each plane and comparing — a chip whose error map
// is unstable at the factory will false-reject in the field.
package enroll

import (
	"context"
	"fmt"

	"repro/internal/auth"
	"repro/internal/core"
	"repro/internal/errormap"
	"repro/internal/mapkey"
)

// Criteria are the acceptance thresholds of the station.
type Criteria struct {
	// AuthPlanes and ReservedPlanes set how many voltage levels are
	// characterised for authentication and for key updates.
	AuthPlanes     int
	ReservedPlanes int
	// PlaneSpacingMV is the vertical spacing between levels.
	PlaneSpacingMV int

	// MinErrorsPerPlane rejects sparse, slow, low-entropy maps.
	MinErrorsPerPlane int
	// MaxErrorsPerPlane rejects chips whose defect density is
	// anomalous (possible systematic defect or test escape).
	MaxErrorsPerPlane int

	// FloorWindowMV rejects chips whose calibrated floor falls outside
	// [Min, Max] — either end indicates out-of-family silicon.
	MinFloorMV, MaxFloorMV int

	// MaxInstabilityPct bounds the fraction of map cells that differ
	// between two independent characterisations of the same plane.
	MaxInstabilityPct float64
}

// DefaultCriteria matches the repo calibration for 1 MB-class caches.
// Error-count bounds scale with cache size: the defect model places
// ~150 weak lines per 64 K lines.
func DefaultCriteria(cacheLines int) Criteria {
	expected := 150 * cacheLines / 65536
	return Criteria{
		AuthPlanes:        2,
		ReservedPlanes:    1,
		PlaneSpacingMV:    10,
		MinErrorsPerPlane: expected / 8,
		MaxErrorsPerPlane: expected * 4,
		MinFloorMV:        600,
		MaxFloorMV:        720,
		MaxInstabilityPct: 25,
	}
}

// Record is the provisioning artifact the station produces for an
// accepted chip.
type Record struct {
	ID           auth.ClientID
	FloorMV      int
	Map          *errormap.Map
	AuthVdds     []int
	ReservedVdds []int
	// InstabilityPct is the measured plane instability (lower is
	// better; 0 means the two characterisations agreed exactly).
	InstabilityPct float64
}

// Result reports the screening outcome; Rejections is empty iff the
// chip was accepted.
type Result struct {
	Record     Record
	Rejections []string
}

// Accepted reports whether the chip cleared every screen.
func (r *Result) Accepted() bool { return len(r.Rejections) == 0 }

// Characterize runs the full station flow on one chip. Screening
// failures do not abort characterisation: the Result lists every
// violated criterion so yield analysis sees the complete picture.
func Characterize(chip *core.Chip, id auth.ClientID, crit Criteria) (*Result, error) {
	if crit.AuthPlanes <= 0 || crit.PlaneSpacingMV <= 0 {
		return nil, fmt.Errorf("enroll: invalid criteria %+v", crit)
	}
	res := &Result{Record: Record{ID: id, FloorMV: chip.FloorMV()}}

	if chip.FloorMV() < crit.MinFloorMV || chip.FloorMV() > crit.MaxFloorMV {
		res.Rejections = append(res.Rejections,
			fmt.Sprintf("floor %d mV outside [%d, %d]", chip.FloorMV(), crit.MinFloorMV, crit.MaxFloorMV))
	}

	levels := chip.AuthVoltagesMV(crit.AuthPlanes+crit.ReservedPlanes, crit.PlaneSpacingMV)
	m, err := chip.Enroll(levels)
	if err != nil {
		return nil, fmt.Errorf("enroll: characterisation failed: %w", err)
	}
	res.Record.Map = m
	// Reserve the lowest (densest) planes for key updates.
	res.Record.AuthVdds = levels[:crit.AuthPlanes]
	res.Record.ReservedVdds = levels[crit.AuthPlanes:]

	for _, v := range levels {
		n := m.Plane(v).ErrorCount()
		if n < crit.MinErrorsPerPlane {
			res.Rejections = append(res.Rejections,
				fmt.Sprintf("plane %d mV has %d errors, below minimum %d", v, n, crit.MinErrorsPerPlane))
		}
		if crit.MaxErrorsPerPlane > 0 && n > crit.MaxErrorsPerPlane {
			res.Rejections = append(res.Rejections,
				fmt.Sprintf("plane %d mV has %d errors, above maximum %d", v, n, crit.MaxErrorsPerPlane))
		}
	}

	// Stability screen: re-characterise the densest auth plane and
	// compare. The symmetric difference over the union approximates
	// the intra-die variation the server will face.
	stabilityVdd := res.Record.AuthVdds[len(res.Record.AuthVdds)-1]
	second, err := chip.Enroll([]int{stabilityVdd})
	if err != nil {
		return nil, fmt.Errorf("enroll: stability re-characterisation failed: %w", err)
	}
	res.Record.InstabilityPct = instability(m.Plane(stabilityVdd), second.Plane(stabilityVdd))
	if res.Record.InstabilityPct > crit.MaxInstabilityPct {
		res.Rejections = append(res.Rejections,
			fmt.Sprintf("plane %d mV instability %.1f%% exceeds %.1f%%",
				stabilityVdd, res.Record.InstabilityPct, crit.MaxInstabilityPct))
	}
	return res, nil
}

// instability returns the symmetric-difference percentage between two
// characterisations of the same plane.
func instability(a, b *errormap.Plane) float64 {
	diff := a.DiffCount(b)
	union := a.ErrorCount() + b.ErrorCount()
	// union counts the intersection twice; |A∪B| = |A|+|B|-|A∩B| and
	// diff = |A|+|B|-2|A∩B|, so |A∪B| = (|A|+|B|+diff)/2.
	u := float64(union+diff) / 2
	if u == 0 {
		return 0
	}
	return float64(diff) / u * 100
}

// Provision enrolls an accepted chip into the authentication server
// and returns the initial remap key to burn into the device.
func Provision(ctx context.Context, srv *auth.Server, res *Result) (mapkey.Key, error) {
	if !res.Accepted() {
		return mapkey.Key{}, fmt.Errorf("enroll: chip %q rejected: %v", res.Record.ID, res.Rejections)
	}
	return srv.Enroll(ctx, res.Record.ID, res.Record.Map, res.Record.ReservedVdds...)
}
