package enroll

import (
	"strings"
	"testing"

	"repro/internal/auth"
	"repro/internal/core"
	"repro/internal/errormap"
	"repro/internal/rng"
)

func stationChip(t *testing.T, seed uint64) *core.Chip {
	t.Helper()
	chip, err := core.NewChip(core.ChipConfig{Seed: seed, CacheBytes: 512 << 10})
	if err != nil {
		t.Fatal(err)
	}
	return chip
}

func TestHealthyChipAccepted(t *testing.T) {
	chip := stationChip(t, 1)
	crit := DefaultCriteria(chip.Geometry().Lines())
	res, err := Characterize(chip, "unit-1", crit)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Accepted() {
		t.Fatalf("healthy chip rejected: %v", res.Rejections)
	}
	if len(res.Record.AuthVdds) != crit.AuthPlanes || len(res.Record.ReservedVdds) != crit.ReservedPlanes {
		t.Fatalf("plane split wrong: %v / %v", res.Record.AuthVdds, res.Record.ReservedVdds)
	}
	if res.Record.InstabilityPct > crit.MaxInstabilityPct {
		t.Fatalf("instability = %v", res.Record.InstabilityPct)
	}
	// Reserved planes must be the lowest (densest) voltages.
	for _, a := range res.Record.AuthVdds {
		for _, r := range res.Record.ReservedVdds {
			if r >= a {
				t.Fatalf("reserved plane %d not below auth plane %d", r, a)
			}
		}
	}
}

func TestProvisionIntoServerAndAuthenticate(t *testing.T) {
	chip := stationChip(t, 2)
	crit := DefaultCriteria(chip.Geometry().Lines())
	res, err := Characterize(chip, "unit-2", crit)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Accepted() {
		t.Fatalf("rejections: %v", res.Rejections)
	}
	cfg := auth.DefaultConfig()
	cfg.ChallengeBits = 64
	srv := auth.NewServer(cfg, 7)
	key, err := Provision(ctx, srv, res)
	if err != nil {
		t.Fatal(err)
	}
	dev := auth.NewResponder("unit-2", chip.Device(), key)
	ch, err := srv.IssueChallenge(ctx, "unit-2")
	if err != nil {
		t.Fatal(err)
	}
	answer, err := dev.Respond(ch)
	if err != nil {
		t.Fatal(err)
	}
	if ok, _ := srv.Verify(ctx, "unit-2", ch.ID, answer); !ok {
		t.Fatal("provisioned chip rejected by server")
	}
	// Reserved planes really are reserved.
	for _, v := range res.Record.ReservedVdds {
		if _, err := srv.IssueChallengeAt(ctx, "unit-2", v); err == nil {
			t.Fatalf("reserved plane %d usable for auth", v)
		}
	}
}

func TestSparseMapRejected(t *testing.T) {
	chip := stationChip(t, 3)
	crit := DefaultCriteria(chip.Geometry().Lines())
	crit.MinErrorsPerPlane = 1 << 20 // impossible bar
	res, err := Characterize(chip, "unit-3", crit)
	if err != nil {
		t.Fatal(err)
	}
	if res.Accepted() {
		t.Fatal("chip passed an impossible error-count bar")
	}
	found := false
	for _, r := range res.Rejections {
		if strings.Contains(r, "below minimum") {
			found = true
		}
	}
	if !found {
		t.Fatalf("missing sparse-map rejection: %v", res.Rejections)
	}
	// Provision must refuse rejected chips.
	srv := auth.NewServer(auth.DefaultConfig(), 1)
	if _, err := Provision(ctx, srv, res); err == nil {
		t.Fatal("rejected chip provisioned")
	}
}

func TestFloorWindowRejection(t *testing.T) {
	chip := stationChip(t, 4)
	crit := DefaultCriteria(chip.Geometry().Lines())
	crit.MinFloorMV = chip.FloorMV() + 1 // guarantee violation
	res, err := Characterize(chip, "unit-4", crit)
	if err != nil {
		t.Fatal(err)
	}
	if res.Accepted() {
		t.Fatal("out-of-window floor accepted")
	}
}

func TestCriteriaValidation(t *testing.T) {
	chip := stationChip(t, 5)
	if _, err := Characterize(chip, "x", Criteria{}); err == nil {
		t.Fatal("zero criteria accepted")
	}
}

func TestInstabilityMetric(t *testing.T) {
	g := errormap.NewGeometry(1024)
	a := errormap.RandomPlane(g, 50, rng.New(1))
	if got := instability(a, a.Clone()); got != 0 {
		t.Fatalf("identical planes instability = %v", got)
	}
	b := errormap.NewPlane(g)
	for i, e := range a.Errors() {
		if i%2 == 0 {
			b.Set(e, true)
		}
	}
	// b is half of a: diff = 25, union = 50 -> 50%.
	got := instability(a, b)
	if got < 45 || got > 55 {
		t.Fatalf("half-overlap instability = %v, want ~50", got)
	}
	empty := errormap.NewPlane(g)
	if got := instability(empty, empty); got != 0 {
		t.Fatalf("empty planes instability = %v", got)
	}
}

func TestDefaultCriteriaScales(t *testing.T) {
	small := DefaultCriteria(4096)
	big := DefaultCriteria(65536)
	if small.MinErrorsPerPlane >= big.MinErrorsPerPlane {
		t.Fatal("criteria do not scale with cache size")
	}
}
