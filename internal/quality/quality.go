// Package quality computes the standard PUF report card of paper
// Section 2.2 — uniqueness, reliability, identifiability (FAR/FRR/EER),
// uniformity and bit-aliasing — for a population of Authenticache
// error maps under a configurable noise profile.
//
// It is the evaluation harness a silicon vendor would run before
// shipping: feed it a sample of enrolled chips, get back the numbers
// that decide whether the PUF is deployable (the paper's acceptance
// bar is a sub-1-ppm misidentification rate with near-50% uniqueness
// and uniformity).
package quality

import (
	"fmt"
	"io"

	"repro/internal/crp"
	"repro/internal/errormap"
	"repro/internal/noise"
	"repro/internal/rng"
	"repro/internal/stats"
)

// Config parameterises a report run.
type Config struct {
	// CRPBits is the response length evaluated (paper: 64–512).
	CRPBits int
	// Challenges is how many distinct challenges feed each metric.
	Challenges int
	// Remeasurements is how many noisy re-reads estimate reliability.
	Remeasurements int
	// Noise is the field-conditions profile applied for intra-chip
	// metrics.
	Noise noise.Profile
	// Seed drives challenge generation and noise draws.
	Seed uint64
}

// DefaultConfig evaluates 256-bit CRPs under the paper's "normal
// operation" 10% injection noise.
func DefaultConfig() Config {
	return Config{
		CRPBits:        256,
		Challenges:     16,
		Remeasurements: 8,
		Noise:          noise.Profile{InjectFrac: 0.10, RemoveFrac: 0.05},
		Seed:           1,
	}
}

// Report is the PUF report card.
type Report struct {
	Chips   int
	CRPBits int

	// UniquenessPct is the mean inter-chip Hamming distance in percent
	// (equation (1)); ideal 50.
	UniquenessPct float64
	// ReliabilityPct is 100 minus the mean intra-chip distance under
	// noise (equation (2)); ideal 100.
	ReliabilityPct float64
	// UniformityPct is the mean fraction of 1s per response (equation
	// (5)); ideal 50.
	UniformityPct float64
	// BitAliasingPct is the mean per-position bias across chips
	// (equation (6)); ideal 50.
	BitAliasingPct float64
	// BitAliasingWorstPct is the per-position bias farthest from 50.
	BitAliasingWorstPct float64
	// ShannonPerBit and MinEntropyPerBit estimate the response entropy
	// per position across the population (ideal 1.0); min-entropy is
	// the conservative figure key-derivation arguments need.
	ShannonPerBit    float64
	MinEntropyPerBit float64

	// PIntra/PInter are the measured per-bit probabilities behind the
	// identifiability model (equations (3)-(4)).
	PIntra, PInter float64
	// Threshold is the equal-error-rate identification threshold in
	// bits, with the resulting FAR/FRR.
	Threshold int
	FAR, FRR  float64
}

// FailureRate returns max(FAR, FRR): the misidentification probability
// compared against the 1 ppm bar.
func (r *Report) FailureRate() float64 {
	if r.FAR > r.FRR {
		return r.FAR
	}
	return r.FRR
}

// MeetsPaperBar reports whether the population clears the paper's
// acceptance criteria: sub-1-ppm failure rate and uniqueness within
// 10 points of ideal.
func (r *Report) MeetsPaperBar() bool {
	return r.FailureRate() < 1e-6 &&
		r.UniquenessPct > 40 && r.UniquenessPct < 60
}

// Fprint renders the report card.
func (r *Report) Fprint(w io.Writer) {
	fmt.Fprintf(w, "PUF quality report (%d chips, %d-bit CRPs)\n", r.Chips, r.CRPBits)
	fmt.Fprintf(w, "  uniqueness:    %6.2f%%  (ideal 50)\n", r.UniquenessPct)
	fmt.Fprintf(w, "  reliability:   %6.2f%%  (ideal 100)\n", r.ReliabilityPct)
	fmt.Fprintf(w, "  uniformity:    %6.2f%%  (ideal 50)\n", r.UniformityPct)
	fmt.Fprintf(w, "  bit-aliasing:  %6.2f%%  (ideal 50, worst %.2f%%)\n", r.BitAliasingPct, r.BitAliasingWorstPct)
	fmt.Fprintf(w, "  entropy/bit:   %6.3f Shannon, %.3f min-entropy (ideal 1.0)\n", r.ShannonPerBit, r.MinEntropyPerBit)
	fmt.Fprintf(w, "  p_intra=%.4f p_inter=%.4f -> threshold %d bits, FAR %.2e, FRR %.2e\n",
		r.PIntra, r.PInter, r.Threshold, r.FAR, r.FRR)
	verdict := "FAILS"
	if r.MeetsPaperBar() {
		verdict = "MEETS"
	}
	fmt.Fprintf(w, "  %s the paper's acceptance bar (<1 ppm misidentification)\n", verdict)
}

// Evaluate runs the report card over a chip population given as one
// error plane per chip (all with identical geometry). It needs at
// least two chips.
func Evaluate(planes []*errormap.Plane, cfg Config) (*Report, error) {
	if len(planes) < 2 {
		return nil, fmt.Errorf("quality: need at least 2 chips, got %d", len(planes))
	}
	if cfg.CRPBits <= 0 || cfg.Challenges <= 0 || cfg.Remeasurements <= 0 {
		return nil, fmt.Errorf("quality: invalid config %+v", cfg)
	}
	g := planes[0].Geometry()
	for i, p := range planes {
		if p.Geometry() != g {
			return nil, fmt.Errorf("quality: chip %d has mismatched geometry", i)
		}
	}
	r := rng.New(cfg.Seed)
	fields := make([]*errormap.DistanceField, len(planes))
	for i, p := range planes {
		fields[i] = p.DistanceTransform()
	}

	rep := &Report{Chips: len(planes), CRPBits: cfg.CRPBits}

	var uniqueSum, uniformSum, reliabilitySum float64
	var shannonSum, minEntSum float64
	var uniqueN, uniformN, reliabilityN int
	aliasAccum := make([]float64, cfg.CRPBits)
	var intraFlips, intraBits, interDiff, interBits int

	for c := 0; c < cfg.Challenges; c++ {
		ch := crp.Generate(g, cfg.CRPBits, 0, r)
		responses := make([][]byte, len(planes))
		for i, f := range fields {
			resp := evalField(ch, f)
			responses[i] = resp.Bits
			uniformSum += stats.Uniformity(resp.Bits, cfg.CRPBits)
			uniformN++
		}
		uniqueSum += stats.UniquenessPercent(responses, cfg.CRPBits)
		uniqueN++
		shannonSum += stats.ShannonEntropyPerBit(responses, cfg.CRPBits)
		minEntSum += stats.MinEntropyPerBit(responses, cfg.CRPBits)
		for j, a := range stats.BitAliasing(responses, cfg.CRPBits) {
			aliasAccum[j] += a
		}
		for i := 0; i < len(planes); i++ {
			for j := i + 1; j < len(planes); j++ {
				interDiff += stats.HammingDistance(responses[i], responses[j], cfg.CRPBits)
				interBits += cfg.CRPBits
			}
		}

		// Reliability: re-measure chip (c mod chips) under noise.
		chipIdx := c % len(planes)
		ref := responses[chipIdx]
		var noisy [][]byte
		for m := 0; m < cfg.Remeasurements; m++ {
			perturbed := noise.Apply(planes[chipIdx], cfg.Noise, r)
			nf := perturbed.DistanceTransform()
			nr := evalField(ch, nf)
			noisy = append(noisy, nr.Bits)
			intraFlips += stats.HammingDistance(ref, nr.Bits, cfg.CRPBits)
			intraBits += cfg.CRPBits
		}
		reliabilitySum += stats.ReliabilityPercent(ref, noisy, cfg.CRPBits)
		reliabilityN++
	}

	rep.UniquenessPct = uniqueSum / float64(uniqueN)
	rep.ShannonPerBit = shannonSum / float64(uniqueN)
	rep.MinEntropyPerBit = minEntSum / float64(uniqueN)
	rep.UniformityPct = uniformSum / float64(uniformN)
	rep.ReliabilityPct = reliabilitySum / float64(reliabilityN)

	var aliasSum, worst float64
	worstDelta := -1.0
	for _, acc := range aliasAccum {
		a := acc / float64(cfg.Challenges)
		aliasSum += a
		if d := abs(a - 50); d > worstDelta {
			worstDelta = d
			worst = a
		}
	}
	rep.BitAliasingPct = aliasSum / float64(cfg.CRPBits)
	rep.BitAliasingWorstPct = worst

	rep.PIntra = float64(intraFlips) / float64(intraBits)
	rep.PInter = float64(interDiff) / float64(interBits)
	if rep.PIntra <= 0 {
		rep.PIntra = 1e-9
	}
	rep.Threshold, rep.FAR, rep.FRR = stats.EqualErrorRate(cfg.CRPBits, rep.PIntra, rep.PInter)
	return rep, nil
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

func evalField(ch *crp.Challenge, df *errormap.DistanceField) crp.Response {
	resp := crp.NewResponse(len(ch.Bits))
	for i, b := range ch.Bits {
		var da, db int
		found := df != nil
		if found {
			da, db = df.DistLine(b.A), df.DistLine(b.B)
		}
		resp.SetBit(i, crp.ResponseBit(da, found, db, found))
	}
	return resp
}
