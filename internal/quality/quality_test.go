package quality

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/errormap"
	"repro/internal/montecarlo"
	"repro/internal/noise"
	"repro/internal/rng"
)

func population(n, lines, errs int, seed uint64) []*errormap.Plane {
	pop := montecarlo.Population{Geometry: errormap.NewGeometry(lines), Errors: errs, Seed: seed}
	return pop.Planes(n)
}

func fastConfig() Config {
	cfg := DefaultConfig()
	cfg.CRPBits = 128
	cfg.Challenges = 6
	cfg.Remeasurements = 3
	return cfg
}

func TestReportOnHealthyPopulation(t *testing.T) {
	planes := population(10, 16384, 100, 1)
	rep, err := Evaluate(planes, fastConfig())
	if err != nil {
		t.Fatal(err)
	}
	if rep.Chips != 10 || rep.CRPBits != 128 {
		t.Fatalf("report header wrong: %+v", rep)
	}
	if rep.UniquenessPct < 42 || rep.UniquenessPct > 55 {
		t.Fatalf("uniqueness = %v, want ~49", rep.UniquenessPct)
	}
	if rep.ReliabilityPct < 88 {
		t.Fatalf("reliability = %v, want >88 at normal noise", rep.ReliabilityPct)
	}
	if rep.UniformityPct < 42 || rep.UniformityPct > 55 {
		t.Fatalf("uniformity = %v", rep.UniformityPct)
	}
	if rep.BitAliasingPct < 42 || rep.BitAliasingPct > 55 {
		t.Fatalf("bit-aliasing = %v", rep.BitAliasingPct)
	}
	if !rep.MeetsPaperBar() {
		t.Fatalf("healthy population fails the bar: failure=%v uniq=%v",
			rep.FailureRate(), rep.UniquenessPct)
	}
	if rep.Threshold <= 0 || rep.Threshold >= 128 {
		t.Fatalf("threshold = %d", rep.Threshold)
	}
}

func TestReportDetectsCrushingNoise(t *testing.T) {
	planes := population(8, 16384, 100, 2)
	cfg := fastConfig()
	cfg.CRPBits = 64
	// Noise far past Figure 10's 64-bit tolerance: the report must
	// flag the configuration as undeployable.
	cfg.Noise = noise.Profile{InjectFrac: 2.5, RemoveFrac: 0.8}
	rep, err := Evaluate(planes, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if rep.MeetsPaperBar() {
		t.Fatalf("crushing noise passed the bar: failure=%v", rep.FailureRate())
	}
	if rep.ReliabilityPct > 85 {
		t.Fatalf("reliability = %v under crushing noise", rep.ReliabilityPct)
	}
}

func TestReportDetectsClonedChips(t *testing.T) {
	// A population of identical chips has zero uniqueness: the PUF is
	// not a PUF. The report must fail the bar.
	g := errormap.NewGeometry(4096)
	clone := errormap.RandomPlane(g, 60, rng.New(3))
	planes := []*errormap.Plane{clone, clone.Clone(), clone.Clone()}
	rep, err := Evaluate(planes, fastConfig())
	if err != nil {
		t.Fatal(err)
	}
	if rep.UniquenessPct > 5 {
		t.Fatalf("clones show uniqueness %v", rep.UniquenessPct)
	}
	if rep.MeetsPaperBar() {
		t.Fatal("cloned population passed the bar")
	}
}

func TestEvaluateValidation(t *testing.T) {
	g := errormap.NewGeometry(1024)
	one := []*errormap.Plane{errormap.RandomPlane(g, 10, rng.New(4))}
	if _, err := Evaluate(one, fastConfig()); err == nil {
		t.Fatal("single-chip population accepted")
	}
	mixed := []*errormap.Plane{
		errormap.RandomPlane(g, 10, rng.New(5)),
		errormap.RandomPlane(errormap.NewGeometry(2048), 10, rng.New(6)),
	}
	if _, err := Evaluate(mixed, fastConfig()); err == nil {
		t.Fatal("mixed geometries accepted")
	}
	bad := fastConfig()
	bad.CRPBits = 0
	if _, err := Evaluate(population(3, 1024, 10, 7), bad); err == nil {
		t.Fatal("invalid config accepted")
	}
}

func TestFprintContainsVerdict(t *testing.T) {
	planes := population(6, 8192, 80, 8)
	rep, err := Evaluate(planes, fastConfig())
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	rep.Fprint(&buf)
	out := buf.String()
	for _, want := range []string{"uniqueness", "reliability", "bit-aliasing", "acceptance bar"} {
		if !strings.Contains(out, want) {
			t.Fatalf("report output missing %q:\n%s", want, out)
		}
	}
}
