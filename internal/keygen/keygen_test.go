package keygen

import (
	"testing"

	"repro/internal/auth"
	"repro/internal/errormap"
	"repro/internal/noise"
	"repro/internal/rng"
)

const kgVdd = 680

func deviceFromPlane(p *errormap.Plane) *auth.SimDevice {
	m := errormap.NewMap(p.Geometry())
	m.AddPlane(kgVdd, p)
	return auth.NewSimDevice(m)
}

func freshPlane(seed uint64) *errormap.Plane {
	return errormap.RandomPlane(errormap.NewGeometry(16384), 100, rng.New(seed))
}

func TestProvisionRecoverNoiseless(t *testing.T) {
	for _, params := range []Params{DefaultParams(kgVdd), BCHParams(kgVdd)} {
		plane := freshPlane(1)
		dev := deviceFromPlane(plane)
		bundle, key, err := Provision(dev, params, rng.New(2))
		if err != nil {
			t.Fatalf("%s: %v", params.Scheme, err)
		}
		got, err := Recover(dev, bundle)
		if err != nil {
			t.Fatalf("%s: %v", params.Scheme, err)
		}
		if got != key {
			t.Fatalf("%s: noiseless recovery diverged", params.Scheme)
		}
	}
}

func TestRecoverUnderFieldNoise(t *testing.T) {
	for _, params := range []Params{DefaultParams(kgVdd), BCHParams(kgVdd)} {
		plane := freshPlane(3)
		dev := deviceFromPlane(plane)
		bundle, key, err := Provision(dev, params, rng.New(4))
		if err != nil {
			t.Fatal(err)
		}
		// Mild field noise: a few percent of map churn.
		noisy := noise.Apply(plane, noise.Profile{InjectFrac: 0.03, RemoveFrac: 0.01}, rng.New(5))
		fieldDev := deviceFromPlane(noisy)
		got, err := Recover(fieldDev, bundle)
		if err != nil {
			t.Fatalf("%s: recovery failed under mild noise: %v", params.Scheme, err)
		}
		if got != key {
			t.Fatalf("%s: noisy recovery produced a different key", params.Scheme)
		}
	}
}

func TestCloneCannotRecover(t *testing.T) {
	for _, params := range []Params{DefaultParams(kgVdd), BCHParams(kgVdd)} {
		dev := deviceFromPlane(freshPlane(6))
		bundle, key, err := Provision(dev, params, rng.New(7))
		if err != nil {
			t.Fatal(err)
		}
		clone := deviceFromPlane(freshPlane(999))
		got, err := Recover(clone, bundle)
		if err == nil && got == key {
			t.Fatalf("%s: cloned silicon recovered the key", params.Scheme)
		}
	}
}

func TestLabelSeparation(t *testing.T) {
	plane := freshPlane(8)
	dev := deviceFromPlane(plane)
	pa := DefaultParams(kgVdd)
	pb := DefaultParams(kgVdd)
	pb.Label = "other-purpose"
	// Same secret stream, different labels: different keys.
	_, ka, err := Provision(dev, pa, rng.New(9))
	if err != nil {
		t.Fatal(err)
	}
	_, kb, err := Provision(dev, pb, rng.New(9))
	if err != nil {
		t.Fatal(err)
	}
	if ka == kb {
		t.Fatal("labels did not separate keys")
	}
}

func TestChallengeDeterministic(t *testing.T) {
	plane := freshPlane(10)
	dev := deviceFromPlane(plane)
	p := DefaultParams(kgVdd)
	b1, _, err := Provision(dev, p, rng.New(11))
	if err != nil {
		t.Fatal(err)
	}
	b2, _, err := Provision(dev, p, rng.New(12))
	if err != nil {
		t.Fatal(err)
	}
	if len(b1.Challenge.Bits) != len(b2.Challenge.Bits) {
		t.Fatal("challenge lengths differ")
	}
	for i := range b1.Challenge.Bits {
		if b1.Challenge.Bits[i] != b2.Challenge.Bits[i] {
			t.Fatal("key challenge not deterministic across provisionings")
		}
	}
}

func TestMultiBlockBCH(t *testing.T) {
	// 256 key bits need two BCH(255,131) blocks.
	plane := freshPlane(13)
	dev := deviceFromPlane(plane)
	p := BCHParams(kgVdd)
	p.KeyBits = 256
	bundle, key, err := Provision(dev, p, rng.New(14))
	if err != nil {
		t.Fatal(err)
	}
	if len(bundle.BCH) != 2 {
		t.Fatalf("blocks = %d, want 2", len(bundle.BCH))
	}
	got, err := Recover(dev, bundle)
	if err != nil {
		t.Fatal(err)
	}
	if got != key {
		t.Fatal("multi-block recovery diverged")
	}
}

func TestValidation(t *testing.T) {
	dev := deviceFromPlane(freshPlane(15))
	bad := DefaultParams(kgVdd)
	bad.KeyBits = 0
	if _, _, err := Provision(dev, bad, rng.New(16)); err == nil {
		t.Fatal("zero key bits accepted")
	}
	badScheme := DefaultParams(kgVdd)
	badScheme.Scheme = "rot13"
	if _, _, err := Provision(dev, badScheme, rng.New(17)); err == nil {
		t.Fatal("unknown scheme accepted")
	}
	badBCH := BCHParams(kgVdd)
	badBCH.BCHm = 3
	if _, _, err := Provision(dev, badBCH, rng.New(18)); err == nil {
		t.Fatal("bad BCH field accepted")
	}
	// Corrupt bundles.
	if _, err := Recover(dev, &Bundle{Params: DefaultParams(kgVdd), Challenge: keyChallenge(dev, DefaultParams(kgVdd), 640)}); err == nil {
		t.Fatal("bundle without helper accepted")
	}
	bp := BCHParams(kgVdd)
	if _, err := Recover(dev, &Bundle{Params: bp, Challenge: keyChallenge(dev, bp, 255)}); err == nil {
		t.Fatal("BCH bundle without helpers accepted")
	}
	// Wrong voltage plane in the bundle: the device cannot measure it.
	p := DefaultParams(999)
	if _, _, err := Provision(dev, p, rng.New(19)); err == nil {
		t.Fatal("unknown plane accepted")
	}
}
