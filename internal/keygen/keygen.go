// Package keygen turns the Authenticache PUF into a memoryless
// cryptographic key vault — the key-generation application of the
// paper's Section 7.3.
//
// No key material is stored on the device. Provisioning measures the
// PUF's response to a fixed challenge, binds a fresh secret to it with
// code-offset helper data (public), and derives the key by
// strengthening the secret. At runtime the device re-measures the
// noisy response and reproduces exactly the same key through the
// helper data. Two extractors are available: the repetition code
// (simple, paper-faithful) and BCH (higher rate, production-grade).
package keygen

import (
	"errors"
	"fmt"

	"repro/internal/auth"
	"repro/internal/crp"
	"repro/internal/ecc"
	"repro/internal/rng"
)

// Scheme selects the fuzzy extractor.
type Scheme string

const (
	// SchemeRepetition uses the 5x repetition code (tolerates 2 flips
	// per 5-bit group).
	SchemeRepetition Scheme = "repetition"
	// SchemeBCH uses BCH(2^m-1, k, t) blocks.
	SchemeBCH Scheme = "bch"
)

// Params configures provisioning.
type Params struct {
	Scheme Scheme
	// KeyBits is the secret length before strengthening.
	KeyBits int
	// BCHm/BCHt select the BCH code (ignored for repetition).
	BCHm, BCHt int
	// VddMV is the voltage plane the key challenge measures.
	VddMV int
	// Label domain-separates keys derived from the same device.
	Label string
	// ChallengeSeed makes the key challenge reproducible; the same
	// bundle must always re-measure the same coordinates.
	ChallengeSeed uint64
}

// DefaultParams derives a 128-bit secret from the repetition extractor.
func DefaultParams(vddMV int) Params {
	return Params{
		Scheme:        SchemeRepetition,
		KeyBits:       128,
		VddMV:         vddMV,
		Label:         "keygen/v1",
		ChallengeSeed: 0x6b657967, // "keyg"
	}
}

// BCHParams derives keys through BCH(255,131,18) blocks.
func BCHParams(vddMV int) Params {
	p := DefaultParams(vddMV)
	p.Scheme = SchemeBCH
	p.BCHm, p.BCHt = 8, 18
	return p
}

// Bundle is the public provisioning artifact: everything needed to
// re-derive the key given the right silicon, and nothing that helps
// without it.
type Bundle struct {
	Params    Params          `json:"params"`
	Challenge *crp.Challenge  `json:"challenge"`
	Rep       *ecc.HelperData `json:"rep,omitempty"`
	BCH       []ecc.BCHHelper `json:"bch,omitempty"`
}

// Key is the derived 256-bit key.
type Key = [32]byte

// respBitsNeeded returns the PUF response length the scheme consumes.
func respBitsNeeded(p Params) (int, *ecc.BCH, error) {
	switch p.Scheme {
	case SchemeRepetition:
		return p.KeyBits * ecc.Repetition, nil, nil
	case SchemeBCH:
		code, err := ecc.NewBCH(p.BCHm, p.BCHt)
		if err != nil {
			return 0, nil, err
		}
		blocks := (p.KeyBits + code.K - 1) / code.K
		return blocks * code.N, code, nil
	default:
		return 0, nil, fmt.Errorf("keygen: unknown scheme %q", p.Scheme)
	}
}

// keyChallenge deterministically derives the fixed key challenge.
func keyChallenge(dev auth.Device, p Params, bits int) *crp.Challenge {
	gen := rng.New(p.ChallengeSeed ^ uint64(p.VddMV))
	return crp.Generate(dev.Geometry(), bits, p.VddMV, gen)
}

// Provision measures the device and produces the public bundle plus
// the derived key. secretRand supplies the fresh secret (a CSPRNG in
// production; the simulator's deterministic stream in tests).
func Provision(dev auth.Device, p Params, secretRand *rng.Rand) (*Bundle, Key, error) {
	if p.KeyBits <= 0 {
		return nil, Key{}, errors.New("keygen: KeyBits must be positive")
	}
	bits, code, err := respBitsNeeded(p)
	if err != nil {
		return nil, Key{}, err
	}
	ch := keyChallenge(dev, p, bits)
	resp, err := dev.RespondDefault(ch)
	if err != nil {
		return nil, Key{}, fmt.Errorf("keygen: reference measurement: %w", err)
	}

	bundle := &Bundle{Params: p, Challenge: ch}
	var secret []byte
	switch p.Scheme {
	case SchemeRepetition:
		secret = make([]byte, (p.KeyBits+7)/8)
		for i := range secret {
			secret[i] = byte(secretRand.Uint64())
		}
		helper, err := ecc.GenerateHelper(resp.Bits, p.KeyBits, secret)
		if err != nil {
			return nil, Key{}, err
		}
		bundle.Rep = &helper
	case SchemeBCH:
		blocks := (p.KeyBits + code.K - 1) / code.K
		blockBytes := (code.N + 7) / 8
		for b := 0; b < blocks; b++ {
			blockSecret := make([]byte, (code.K+7)/8)
			for i := range blockSecret {
				blockSecret[i] = byte(secretRand.Uint64())
			}
			// Mask bits beyond K: the codec ignores them, so they must
			// be zero for Provision and Recover to hash identical
			// secrets.
			if rem := code.K % 8; rem != 0 {
				blockSecret[len(blockSecret)-1] &= byte(1<<rem) - 1
			}
			secret = append(secret, blockSecret...)
			blockResp := sliceBits(resp.Bits, b*code.N, code.N, blockBytes)
			helper, err := ecc.GenerateBCHHelper(code, blockResp, blockSecret)
			if err != nil {
				return nil, Key{}, err
			}
			bundle.BCH = append(bundle.BCH, helper)
		}
	}
	key := ecc.StrengthenKey(secret, p.Label)
	return bundle, key, nil
}

// Recover re-measures the device and re-derives the key from the
// bundle. With the right silicon and in-tolerance noise the result
// equals the provisioned key bit for bit; wrong silicon yields either
// an error (BCH decode failure) or a different key.
func Recover(dev auth.Device, bundle *Bundle) (Key, error) {
	p := bundle.Params
	_, code, err := respBitsNeeded(p)
	if err != nil {
		return Key{}, err
	}
	resp, err := dev.RespondDefault(bundle.Challenge)
	if err != nil {
		return Key{}, fmt.Errorf("keygen: re-measurement: %w", err)
	}
	var secret []byte
	switch p.Scheme {
	case SchemeRepetition:
		if bundle.Rep == nil {
			return Key{}, errors.New("keygen: bundle missing repetition helper")
		}
		secret, err = ecc.Reproduce(resp.Bits, *bundle.Rep)
		if err != nil {
			return Key{}, err
		}
	case SchemeBCH:
		blockBytes := (code.N + 7) / 8
		for b, helper := range bundle.BCH {
			blockResp := sliceBits(resp.Bits, b*code.N, code.N, blockBytes)
			blockSecret, err := ecc.ReproduceBCH(helper, blockResp)
			if err != nil {
				return Key{}, fmt.Errorf("keygen: block %d: %w", b, err)
			}
			secret = append(secret, blockSecret...)
		}
		if len(bundle.BCH) == 0 {
			return Key{}, errors.New("keygen: bundle missing BCH helpers")
		}
	}
	return ecc.StrengthenKey(secret, p.Label), nil
}

// sliceBits copies `count` bits starting at bit offset `from` into a
// fresh buffer of outBytes bytes.
func sliceBits(src []byte, from, count, outBytes int) []byte {
	out := make([]byte, outBytes)
	for i := 0; i < count; i++ {
		bit := (src[(from+i)/8] >> uint((from+i)%8)) & 1
		if bit == 1 {
			out[i/8] |= 1 << uint(i%8)
		}
	}
	return out
}
