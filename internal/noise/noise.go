// Package noise models the perturbations an Authenticache client
// experiences between enrollment and authentication (paper Section
// 6.2): measurement error, supply-voltage fluctuations, temperature
// excursions, and circuit aging (NBTI/HCI).
//
// At the error-map level all of these reduce to two effects the paper
// quantifies directly:
//
//   - Injection: cache lines *not* in the enrolled map raise errors in
//     the field ("unexpected errors injected"). The paper expresses
//     this as a percentage of the baseline error count — 150% noise on
//     a 100-error map means 150 new error lines.
//   - Masking/removal: enrolled lines fail to trigger ("expected
//     errors removed"), typically flaky lines recorded during a noisy
//     enrollment.
//
// The package perturbs logical error planes for Monte Carlo runs and
// converts physical conditions (ΔT, age) into the equivalent injection
// levels for the full-chip simulation.
package noise

import (
	"fmt"

	"repro/internal/errormap"
	"repro/internal/rng"
)

// Profile describes one field-conditions draw.
type Profile struct {
	// InjectFrac is the number of new error lines to add, as a
	// fraction of the plane's enrolled error count (1.5 = paper's
	// "150% noise").
	InjectFrac float64
	// RemoveFrac is the fraction of enrolled error lines masked.
	RemoveFrac float64
	// DeltaT is the temperature excursion in °C (full-chip runs).
	DeltaT float64
	// AgeYears is the accumulated aging (full-chip runs).
	AgeYears float64
}

// Validate rejects meaningless fractions.
func (p Profile) Validate() error {
	if p.InjectFrac < 0 {
		return fmt.Errorf("noise: negative injection %v", p.InjectFrac)
	}
	if p.RemoveFrac < 0 || p.RemoveFrac > 1 {
		return fmt.Errorf("noise: removal fraction %v outside [0,1]", p.RemoveFrac)
	}
	return nil
}

// Apply returns a perturbed copy of the plane. Injection places
// round(InjectFrac·k) new errors on uniformly random clean cells;
// removal clears round(RemoveFrac·k) uniformly random enrolled errors.
// The original plane is not modified.
func Apply(p *errormap.Plane, prof Profile, r *rng.Rand) *errormap.Plane {
	if err := prof.Validate(); err != nil {
		panic(err)
	}
	out := p.Clone()
	k := p.ErrorCount()
	g := p.Geometry()

	nRemove := int(prof.RemoveFrac*float64(k) + 0.5)
	if nRemove > 0 {
		errs := out.Errors()
		for _, idx := range r.SampleK(len(errs), nRemove) {
			out.Set(errs[idx], false)
		}
	}

	nInject := int(prof.InjectFrac*float64(k) + 0.5)
	if nInject > 0 {
		clean := g.Lines - out.ErrorCount()
		if nInject > clean {
			nInject = clean
		}
		injected := 0
		for injected < nInject {
			line := r.Intn(g.Lines)
			if out.Get(line) {
				continue
			}
			out.Set(line, true)
			injected++
		}
	}
	return out
}

// Level is a convenience constructor for the paper's single-axis
// sweeps: a pure injection profile at the given percentage.
func InjectLevel(percent float64) Profile {
	return Profile{InjectFrac: percent / 100}
}

// RemoveLevel is a pure masking profile at the given percentage.
func RemoveLevel(percent float64) Profile {
	return Profile{RemoveFrac: percent / 100}
}

// FlipProbabilities estimates the per-bit response flip probability a
// profile induces, via direct Monte Carlo over random planes: it
// returns the measured intra-chip per-bit error probability (pIntra in
// the paper's equations (3)–(4)).
//
// lines and errors describe the plane population; trials controls the
// estimate's precision. This is the bridge between map-level noise and
// the binomial FAR/FRR identifiability model.
func FlipProbability(lines, errors int, prof Profile, trials int, r *rng.Rand) float64 {
	g := errormap.NewGeometry(lines)
	flips, total := 0, 0
	for trial := 0; trial < trials; trial++ {
		base := errormap.RandomPlane(g, errors, r)
		noisy := Apply(base, prof, r)
		dfBase := base.DistanceTransform()
		dfNoisy := noisy.DistanceTransform()
		// Sample random pairs and compare response bits.
		const pairsPerTrial = 256
		for i := 0; i < pairsPerTrial; i++ {
			a := r.Intn(lines)
			b := r.Intn(lines)
			for b == a {
				b = r.Intn(lines)
			}
			want := respBit(dfBase, a, b)
			got := respBit(dfNoisy, a, b)
			if want != got {
				flips++
			}
			total++
		}
	}
	return float64(flips) / float64(total)
}

func respBit(df *errormap.DistanceField, a, b int) int {
	if df == nil {
		return 0
	}
	if df.DistLine(a) <= df.DistLine(b) {
		return 0
	}
	return 1
}
