package noise

import (
	"testing"

	"repro/internal/errormap"
	"repro/internal/rng"
)

func basePlane(k int, seed uint64) *errormap.Plane {
	return errormap.RandomPlane(errormap.NewGeometry(65536), k, rng.New(seed))
}

func TestApplyInjectionCount(t *testing.T) {
	p := basePlane(100, 1)
	r := rng.New(2)
	noisy := Apply(p, InjectLevel(150), r)
	if got := noisy.ErrorCount(); got != 250 {
		t.Fatalf("150%% injection on 100 errors -> %d, want 250", got)
	}
	// Every enrolled error survives pure injection.
	for _, e := range p.Errors() {
		if !noisy.Get(e) {
			t.Fatalf("injection removed enrolled error %d", e)
		}
	}
}

func TestApplyRemovalCount(t *testing.T) {
	p := basePlane(100, 3)
	r := rng.New(4)
	noisy := Apply(p, RemoveLevel(40), r)
	if got := noisy.ErrorCount(); got != 60 {
		t.Fatalf("40%% removal on 100 errors -> %d, want 60", got)
	}
	// Removal must not invent errors.
	for _, e := range noisy.Errors() {
		if !p.Get(e) {
			t.Fatalf("removal invented error %d", e)
		}
	}
}

func TestApplyCombined(t *testing.T) {
	p := basePlane(80, 5)
	r := rng.New(6)
	noisy := Apply(p, Profile{InjectFrac: 0.5, RemoveFrac: 0.25}, r)
	// 80 - 20 removed + 40 injected = 100.
	if got := noisy.ErrorCount(); got != 100 {
		t.Fatalf("combined noise -> %d errors, want 100", got)
	}
}

func TestApplyDoesNotMutateOriginal(t *testing.T) {
	p := basePlane(50, 7)
	before := p.Clone()
	Apply(p, Profile{InjectFrac: 1, RemoveFrac: 0.5}, rng.New(8))
	if !p.Equal(before) {
		t.Fatal("Apply mutated its input")
	}
}

func TestApplyZeroProfileIsIdentity(t *testing.T) {
	p := basePlane(42, 9)
	noisy := Apply(p, Profile{}, rng.New(10))
	if !p.Equal(noisy) {
		t.Fatal("zero profile changed the plane")
	}
}

func TestApplyInjectionSaturates(t *testing.T) {
	g := errormap.NewGeometry(100)
	p := errormap.RandomPlane(g, 50, rng.New(11))
	noisy := Apply(p, Profile{InjectFrac: 10}, rng.New(12)) // wants 500, only 50 clean
	if got := noisy.ErrorCount(); got != 100 {
		t.Fatalf("saturated injection -> %d, want 100", got)
	}
}

func TestValidate(t *testing.T) {
	if err := (Profile{InjectFrac: -1}).Validate(); err == nil {
		t.Fatal("negative injection accepted")
	}
	if err := (Profile{RemoveFrac: 1.5}).Validate(); err == nil {
		t.Fatal("removal > 1 accepted")
	}
	if err := (Profile{InjectFrac: 2, RemoveFrac: 1}).Validate(); err != nil {
		t.Fatalf("valid profile rejected: %v", err)
	}
}

func TestApplyPanicsOnInvalidProfile(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("invalid profile did not panic")
		}
	}()
	Apply(basePlane(10, 13), Profile{RemoveFrac: 2}, rng.New(14))
}

func TestLevelsConstructors(t *testing.T) {
	if p := InjectLevel(150); p.InjectFrac != 1.5 || p.RemoveFrac != 0 {
		t.Fatalf("InjectLevel = %+v", p)
	}
	if p := RemoveLevel(62); p.RemoveFrac != 0.62 || p.InjectFrac != 0 {
		t.Fatalf("RemoveLevel = %+v", p)
	}
}

// The response-flip probability must grow with the noise level, stay
// small at the paper's "normal operation" 10%, and stay well below 0.5
// even at 150% (which is why Authenticache tolerates so much noise).
func TestFlipProbabilityMonotone(t *testing.T) {
	r := rng.New(15)
	const lines, errs, trials = 16384, 100, 6
	p10 := FlipProbability(lines, errs, InjectLevel(10), trials, r)
	p150 := FlipProbability(lines, errs, InjectLevel(150), trials, r)
	if p10 >= p150 {
		t.Fatalf("flip probability not monotone: 10%%=%v 150%%=%v", p10, p150)
	}
	// ~6% matches the paper's intra-die measurement at normal noise.
	if p10 > 0.10 {
		t.Fatalf("10%% noise flips %v of bits, want small", p10)
	}
	if p150 > 0.40 {
		t.Fatalf("150%% noise flips %v of bits, want < 0.40", p150)
	}
	if p150 < 0.05 {
		t.Fatalf("150%% noise flips only %v, implausibly robust", p150)
	}
}

func TestFlipProbabilityRemovalHurtsMore(t *testing.T) {
	// Paper finding: Authenticache is more sensitive to removed errors
	// than injected ones at equal percentages.
	r := rng.New(16)
	const lines, errs, trials = 16384, 100, 6
	inj := FlipProbability(lines, errs, InjectLevel(50), trials, r)
	rem := FlipProbability(lines, errs, RemoveLevel(50), trials, r)
	if rem <= inj {
		t.Fatalf("removal (%v) should flip more bits than injection (%v)", rem, inj)
	}
}
