// Package variation models the manufacturing process variation that
// gives each chip its unique low-voltage cache error signature — the
// physical phenomenon underneath the Authenticache PUF (paper Section
// 3).
//
// SRAM cells are built from the smallest transistors of a technology
// node, so random dopant fluctuation dominates their threshold-voltage
// mismatch. A cell whose transistors are badly mismatched stops
// retaining data below some minimum operating voltage (Vmin). A cache
// line fails — raising a correctable ECC event — once the supply drops
// below the highest cell Vmin in the line.
//
// The model has two components, consistent with published Vccmin
// characterisation of large SRAM arrays:
//
//   - A Gaussian "bulk": the extreme order statistics of millions of
//     RDF-perturbed cells. Every line has a bulk onset voltage; when
//     the supply approaches the bulk region, failures explode and
//     quickly become uncorrectable (two cells per ECC word). This sets
//     the safe voltage floor.
//   - A sparse "defect tail": a small fraction of lines contain one
//     markedly weak cell whose onset voltage sits well above the bulk,
//     spread roughly uniformly over a band. These are the persistent,
//     randomly located, ECC-correctable errors that Figure 1 counts
//     (~122 distinct lines over a 65 mV window, ≈2 lines/mV) and that
//     the PUF consumes.
//
// All per-line quantities are derived deterministically from the chip
// seed and the line index, so a chip's physical identity is a single
// 64-bit seed: profiles never need to be stored and are identical on
// every re-measurement, exactly like real silicon.
package variation

import (
	"math"

	"repro/internal/rng"
)

// Params calibrates the variation model. Defaults (see DefaultParams)
// reproduce the shape of the paper's Itanium 9560 measurements.
type Params struct {
	// VNominal is the nominal supply voltage in volts (paper: ~0.8 V).
	VNominal float64
	// DefectBandHi is the top of the defect-tail onset band: the first
	// correctable error appears when Vdd crosses just below this.
	DefectBandHi float64
	// DefectBandWidth is the width of the defect onset band in volts.
	// Onsets are uniform over [DefectBandHi-Width, DefectBandHi].
	DefectBandWidth float64
	// DefectsPerLine is the per-line probability of carrying a weak
	// defect cell. Holding it constant across cache sizes keeps error
	// density constant, as the paper's scaling study assumes.
	DefectsPerLine float64
	// BulkMean and BulkSigma locate the Gaussian bulk of per-line onset
	// voltages (extreme statistics of the line's healthy cells).
	BulkMean  float64
	BulkSigma float64
	// BulkGap is the minimum spacing, in volts, between a line's
	// strongest and second-strongest bulk cell onsets; the second cell
	// failing inside the same ECC word is what turns errors
	// uncorrectable near the bulk.
	BulkGap float64
	// TempCoeffMean/Sigma give the per-cell Vmin temperature
	// sensitivity in volts per degree Celsius. Heating raises Vmin.
	TempCoeffMean  float64
	TempCoeffSigma float64
	// AgingCoeff is the NBTI/HCI Vmin drift in volts at 10 years,
	// scaling with (years/10)^0.25.
	AgingCoeff float64
	// CellsPerLine is the number of data cells in a cache line
	// (64 B × 8 = 512), used only for documentation and sanity checks.
	CellsPerLine int
}

// DefaultParams returns the calibration used throughout the repo:
// 64-byte lines, ~150 expected defect lines in a 64 K-line (4 MB)
// cache spread over an 80 mV band, so ≈122 lines fail within 65 mV of
// the first correctable error at ≈1.9 lines/mV (Figure 1).
func DefaultParams() Params {
	return Params{
		VNominal:        0.800,
		DefectBandHi:    0.745,
		DefectBandWidth: 0.080,
		DefectsPerLine:  150.0 / 65536.0,
		BulkMean:        0.610,
		BulkSigma:       0.012,
		BulkGap:         0.004,
		TempCoeffMean:   0.0002,
		TempCoeffSigma:  0.00012,
		AgingCoeff:      0.008,
		CellsPerLine:    512,
	}
}

// BitLoc identifies a failing cell inside a cache line: the 64-bit
// data word it belongs to and the bit position within the word's
// 72-bit SECDED codeword.
type BitLoc struct {
	Word uint8 // word index within the line (0..7 for 64 B lines)
	Bit  uint8 // bit position within the 72-bit codeword (0..71)
}

// LineProfile is the voltage fingerprint of one cache line: the onset
// voltages of its three weakest cells in descending order, with their
// physical bit locations and temperature sensitivities.
//
// Onset[0] is the voltage below which the line starts raising
// correctable errors. If two of the listed cells share a Word, the
// line becomes uncorrectable once Vdd drops below the second onset.
type LineProfile struct {
	Onset     [3]float64
	Loc       [3]BitLoc
	TempCoeff [3]float64
	// HasDefect records whether Onset[0] comes from the defect tail
	// (persistent PUF-grade error) rather than the bulk.
	HasDefect bool
}

// Model generates line profiles for one chip.
type Model struct {
	params   Params
	chipSeed uint64
}

// NewModel creates a variation model for the chip identified by seed.
// Two models with the same seed and params describe the same physical
// chip.
func NewModel(seed uint64, p Params) *Model {
	return &Model{params: p, chipSeed: seed}
}

// Params returns the calibration this model was built with.
func (m *Model) Params() Params { return m.params }

// ChipSeed returns the chip identity seed.
func (m *Model) ChipSeed() uint64 { return m.chipSeed }

// lineRand returns the deterministic per-line generator. Mixing the
// line index through SplitMix-style multiplication decorrelates
// neighbouring lines.
func (m *Model) lineRand(line int) *rng.Rand {
	h := m.chipSeed
	h ^= uint64(line)*0x9e3779b97f4a7c15 + 0x2545f4914f6cdd1d
	h ^= h >> 29
	h *= 0xbf58476d1ce4e5b9
	return rng.New(h)
}

// Line computes the profile of the given cache line.
func (m *Model) Line(line int) LineProfile {
	r := m.lineRand(line)
	p := m.params

	// Bulk onsets: strongest bulk cell plus two spaced below it.
	bulk0 := r.Gaussian(p.BulkMean, p.BulkSigma)
	bulk1 := bulk0 - p.BulkGap - r.Float64()*p.BulkGap
	bulk2 := bulk1 - p.BulkGap - r.Float64()*p.BulkGap

	prof := LineProfile{}
	candidates := []float64{bulk0, bulk1, bulk2}
	if r.Bool(p.DefectsPerLine) {
		defect := p.DefectBandHi - r.Float64()*p.DefectBandWidth
		candidates = append([]float64{defect}, candidates...)
		prof.HasDefect = true
	}
	// Candidates are descending by construction.
	for i := 0; i < 3; i++ {
		prof.Onset[i] = candidates[i]
		prof.Loc[i] = BitLoc{
			Word: uint8(r.Intn(8)),
			Bit:  uint8(r.Intn(72)),
		}
		tc := r.Gaussian(p.TempCoeffMean, p.TempCoeffSigma)
		if tc < 0 {
			tc = 0
		}
		prof.TempCoeff[i] = tc
	}
	return prof
}

// Environment captures the operating conditions that shift onset
// voltages relative to enrollment (paper Section 6.2: temperature,
// aging).
type Environment struct {
	// DeltaT is the temperature offset in °C from the enrollment
	// temperature. Positive values weaken cells (raise Vmin).
	DeltaT float64
	// AgeYears is the accumulated NBTI/HCI stress in years.
	AgeYears float64
}

// EffectiveOnset returns cell i's onset voltage under env.
func (p LineProfile) EffectiveOnset(i int, env Environment, params Params) float64 {
	v := p.Onset[i] + p.TempCoeff[i]*env.DeltaT
	if env.AgeYears > 0 {
		v += params.AgingCoeff * math.Pow(env.AgeYears/10, 0.25)
	}
	return v
}

// FailsAt reports whether the line raises at least a correctable error
// at supply voltage vdd under env, i.e. whether its weakest cell's
// effective onset exceeds vdd.
func (p LineProfile) FailsAt(vdd float64, env Environment, params Params) bool {
	return p.EffectiveOnset(0, env, params) > vdd
}

// UncorrectableAt reports whether the line would raise an
// uncorrectable (double-bit-per-word) error at vdd: the two weakest
// failing cells share an ECC word.
func (p LineProfile) UncorrectableAt(vdd float64, env Environment, params Params) bool {
	failing := 0
	words := map[uint8]int{}
	for i := 0; i < 3; i++ {
		if p.EffectiveOnset(i, env, params) > vdd {
			failing++
			words[p.Loc[i].Word]++
		}
	}
	if failing < 2 {
		return false
	}
	for _, c := range words {
		if c >= 2 {
			return true
		}
	}
	return false
}

// Margin returns how far (in volts) the line's weakest cell onset sits
// above the test voltage; non-positive means the line does not fail at
// that voltage. The self-test flakiness model (persistence, Figure 11)
// is driven by this margin.
func (p LineProfile) Margin(vdd float64, env Environment, params Params) float64 {
	return p.EffectiveOnset(0, env, params) - vdd
}

// TriggerProbability converts a margin into the per-attempt
// probability that a targeted self-test actually raises the error.
// Lines far above the test voltage trigger essentially always;
// marginal lines are flaky. Calibrated to Figure 11's persistence CDF:
// ~74% of map lines trigger on the first attempt, ~95% within four.
//
//	q(margin) = 1 - exp(-(margin + m0)/tau), margin >= 0
//
// with m0 = 5 mV, tau = 22 mV. For non-failing lines (margin < 0) a
// small spurious-trigger probability decays exponentially.
func TriggerProbability(marginVolts float64) float64 {
	const (
		m0  = 0.005
		tau = 0.022
	)
	if marginVolts >= 0 {
		return 1 - math.Exp(-(marginVolts+m0)/tau)
	}
	// Spurious triggers: a line just above the failing set can still
	// flicker, with fast exponential decay (about 2% at the boundary).
	// Below -20 mV the probability is under 1e-6 and treated as zero so
	// hot read paths can skip the random draw entirely.
	if marginVolts < -0.020 {
		return 0
	}
	return 0.02 * math.Exp(marginVolts/0.002)
}
