package variation

import (
	"math"
	"testing"
)

const testLines = 65536 // 4 MB at 64 B/line

func TestLineDeterminism(t *testing.T) {
	m1 := NewModel(1234, DefaultParams())
	m2 := NewModel(1234, DefaultParams())
	for _, l := range []int{0, 1, 999, testLines - 1} {
		a, b := m1.Line(l), m2.Line(l)
		if a != b {
			t.Fatalf("line %d: same seed produced different profiles", l)
		}
	}
}

func TestChipUniqueness(t *testing.T) {
	m1 := NewModel(1, DefaultParams())
	m2 := NewModel(2, DefaultParams())
	same := 0
	for l := 0; l < 1000; l++ {
		if m1.Line(l).Onset == m2.Line(l).Onset {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("%d lines identical across different chips", same)
	}
}

func TestOnsetsDescending(t *testing.T) {
	m := NewModel(7, DefaultParams())
	for l := 0; l < 5000; l++ {
		p := m.Line(l)
		if !(p.Onset[0] >= p.Onset[1] && p.Onset[1] >= p.Onset[2]) {
			t.Fatalf("line %d onsets not descending: %v", l, p.Onset)
		}
	}
}

func TestDefectDensityCalibration(t *testing.T) {
	// Expected ~150 defect lines per 65536; allow generous tolerance.
	m := NewModel(42, DefaultParams())
	defects := 0
	for l := 0; l < testLines; l++ {
		if m.Line(l).HasDefect {
			defects++
		}
	}
	if defects < 100 || defects > 210 {
		t.Fatalf("defect lines = %d, want ~150", defects)
	}
}

// The headline calibration: roughly 122 distinct failing lines within
// 65 mV of the first correctable error (paper Figure 1), i.e. about
// 2 lines/mV.
func TestFigure1Calibration(t *testing.T) {
	p := DefaultParams()
	m := NewModel(99, p)
	env := Environment{}
	// Find Vcorr: the highest onset across the cache.
	vcorr := 0.0
	for l := 0; l < testLines; l++ {
		if v := m.Line(l).EffectiveOnset(0, env, p); v > vcorr {
			vcorr = v
		}
	}
	if vcorr > p.DefectBandHi+1e-9 || vcorr < p.DefectBandHi-0.02 {
		t.Fatalf("Vcorr = %v, want just below %v", vcorr, p.DefectBandHi)
	}
	count := 0
	vtest := vcorr - 0.065
	for l := 0; l < testLines; l++ {
		if m.Line(l).FailsAt(vtest, env, p) {
			count++
		}
	}
	if count < 80 || count > 170 {
		t.Fatalf("failing lines at Vcorr-65mV = %d, want ~122", count)
	}
}

func TestBulkBelowDefectBand(t *testing.T) {
	p := DefaultParams()
	m := NewModel(5, p)
	for l := 0; l < 2000; l++ {
		prof := m.Line(l)
		if !prof.HasDefect && prof.Onset[0] > p.DefectBandHi-p.DefectBandWidth {
			// A bulk line intruding into the defect band would blur the
			// PUF signal; the Gaussian bulk must sit clearly below.
			t.Fatalf("line %d bulk onset %v inside defect band", l, prof.Onset[0])
		}
	}
}

func TestTemperatureRaisesOnset(t *testing.T) {
	p := DefaultParams()
	m := NewModel(11, p)
	prof := m.Line(123)
	cold := prof.EffectiveOnset(0, Environment{}, p)
	hot := prof.EffectiveOnset(0, Environment{DeltaT: 25}, p)
	if hot < cold {
		t.Fatalf("heating lowered onset: %v -> %v", cold, hot)
	}
}

func TestAgingRaisesOnset(t *testing.T) {
	p := DefaultParams()
	m := NewModel(11, p)
	prof := m.Line(321)
	fresh := prof.EffectiveOnset(0, Environment{}, p)
	aged := prof.EffectiveOnset(0, Environment{AgeYears: 10}, p)
	if aged <= fresh {
		t.Fatalf("aging did not raise onset: %v -> %v", fresh, aged)
	}
	if aged-fresh > 0.02 {
		t.Fatalf("10-year aging shift %v V implausibly large", aged-fresh)
	}
	// Sub-linear growth: 5 years is more than half the 10-year shift.
	mid := prof.EffectiveOnset(0, Environment{AgeYears: 5}, p)
	if (mid - fresh) <= (aged-fresh)/2 {
		t.Fatalf("aging not sublinear: 5y=%v 10y=%v", mid-fresh, aged-fresh)
	}
}

func TestUncorrectableNeedsSharedWord(t *testing.T) {
	p := DefaultParams()
	prof := LineProfile{
		Onset: [3]float64{0.7, 0.69, 0.3},
		Loc:   [3]BitLoc{{Word: 1, Bit: 3}, {Word: 2, Bit: 5}, {Word: 1, Bit: 9}},
	}
	// Two failing cells in different words: still correctable per word.
	if prof.UncorrectableAt(0.65, Environment{}, p) {
		t.Fatal("distinct-word double failure misreported as uncorrectable")
	}
	prof.Loc[1].Word = 1
	if !prof.UncorrectableAt(0.65, Environment{}, p) {
		t.Fatal("same-word double failure not flagged uncorrectable")
	}
	// Only one cell failing: never uncorrectable.
	if prof.UncorrectableAt(0.695, Environment{}, p) {
		t.Fatal("single failure flagged uncorrectable")
	}
}

func TestFailsAtBoundary(t *testing.T) {
	p := DefaultParams()
	prof := LineProfile{Onset: [3]float64{0.70, 0.5, 0.4}}
	if !prof.FailsAt(0.699, Environment{}, p) {
		t.Fatal("line should fail just below onset")
	}
	if prof.FailsAt(0.701, Environment{}, p) {
		t.Fatal("line should hold just above onset")
	}
}

func TestMarginSign(t *testing.T) {
	p := DefaultParams()
	prof := LineProfile{Onset: [3]float64{0.70, 0.5, 0.4}}
	if m := prof.Margin(0.68, Environment{}, p); math.Abs(m-0.02) > 1e-12 {
		t.Fatalf("margin = %v, want 0.02", m)
	}
	if m := prof.Margin(0.72, Environment{}, p); m >= 0 {
		t.Fatalf("margin should be negative above onset, got %v", m)
	}
}

func TestTriggerProbabilityShape(t *testing.T) {
	// Monotone in margin, bounded, calibrated anchors.
	prev := -1.0
	for m := -0.01; m <= 0.08; m += 0.001 {
		q := TriggerProbability(m)
		if q < 0 || q > 1 {
			t.Fatalf("q(%v) = %v out of [0,1]", m, q)
		}
		if q < prev-1e-12 {
			t.Fatalf("q not monotone at %v", m)
		}
		prev = q
	}
	// Deep-margin lines trigger essentially always.
	if q := TriggerProbability(0.065); q < 0.95 {
		t.Fatalf("deep margin q = %v", q)
	}
	// Spurious triggers are rare and vanish quickly.
	if q := TriggerProbability(-0.005); q > 0.005 {
		t.Fatalf("spurious q = %v too high", q)
	}
}

// Population-level persistence: the average first-attempt trigger
// probability across defect lines (uniform margins over the band
// visible at the floor) should be near the paper's 74%.
func TestPersistenceCalibration(t *testing.T) {
	var sum float64
	const n = 10000
	for i := 0; i < n; i++ {
		margin := 0.065 * float64(i) / n // uniform over 65 mV window
		sum += TriggerProbability(margin)
	}
	avg := sum / n
	if avg < 0.68 || avg > 0.80 {
		t.Fatalf("mean first-attempt trigger prob = %v, want ~0.74", avg)
	}
}

func TestBitLocRanges(t *testing.T) {
	m := NewModel(3, DefaultParams())
	for l := 0; l < 3000; l++ {
		p := m.Line(l)
		for i := 0; i < 3; i++ {
			if p.Loc[i].Word > 7 {
				t.Fatalf("line %d word %d out of range", l, p.Loc[i].Word)
			}
			if p.Loc[i].Bit > 71 {
				t.Fatalf("line %d bit %d out of range", l, p.Loc[i].Bit)
			}
			if p.TempCoeff[i] < 0 {
				t.Fatalf("line %d negative temp coeff", l)
			}
		}
	}
}

func TestParamsAccessors(t *testing.T) {
	p := DefaultParams()
	m := NewModel(77, p)
	if m.Params() != p {
		t.Fatal("Params accessor mismatch")
	}
	if m.ChipSeed() != 77 {
		t.Fatal("ChipSeed accessor mismatch")
	}
}

func BenchmarkLineProfile(b *testing.B) {
	m := NewModel(1, DefaultParams())
	for i := 0; i < b.N; i++ {
		_ = m.Line(i & 0xffff)
	}
}
