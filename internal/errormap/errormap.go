// Package errormap implements Authenticache's central data structure:
// the per-voltage error map (paper Section 4, Figure 4).
//
// The cache lines that raise correctable ECC errors at a given supply
// voltage are projected onto a two-dimensional plane; lines with errors
// are 1, error-free lines are 0. Stacking planes for multiple voltage
// levels yields the (x, y, Vdd) volume the paper describes. Challenges
// ask which of two coordinates lies closer — in Manhattan distance —
// to its nearest error.
//
// The plane is a near-square "geographic" layout of the line index
// space (⌈√n⌉ columns). A near-square plane is what gives the PUF its
// Figure 15 distance statistics: the mean nearest-error L1 distance of
// k random errors among n lines is ≈ √(π·n/(8k)).
//
// Two nearest-error search strategies are provided, matching the two
// sides of the protocol:
//
//   - RingSearch walks outward over Von Neumann neighbourhoods of
//     growing radius, clockwise from north — exactly how the client
//     firmware self-tests neighbouring lines (paper Section 5.4). It
//     also reports how many cells were probed, which drives the
//     performance model of Figures 13–14.
//   - DistanceTransform runs a multi-source BFS producing all nearest
//     distances in O(n), which the server uses to evaluate many
//     challenges against a stored map.
package errormap

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"

	"repro/internal/rng"
)

// Coord is a position on an error-map plane.
type Coord struct {
	X, Y int
}

// Geometry describes the logical plane layout for a cache with Lines
// cache lines: Width columns, enough rows to cover every line, with
// the last row possibly partial.
type Geometry struct {
	Lines int
	Width int
}

// NewGeometry returns the near-square geometry for n cache lines.
func NewGeometry(n int) Geometry {
	if n <= 0 {
		panic("errormap: geometry needs at least one line")
	}
	w := int(math.Ceil(math.Sqrt(float64(n))))
	return Geometry{Lines: n, Width: w}
}

// Height returns the number of rows (the last may be partial).
func (g Geometry) Height() int { return (g.Lines + g.Width - 1) / g.Width }

// Coord converts a line index into plane coordinates.
func (g Geometry) Coord(line int) Coord {
	if line < 0 || line >= g.Lines {
		panic(fmt.Sprintf("errormap: line %d out of range [0,%d)", line, g.Lines))
	}
	return Coord{X: line % g.Width, Y: line / g.Width}
}

// Line converts plane coordinates back to a line index. The second
// return is false if the coordinate falls outside the populated area.
func (g Geometry) Line(c Coord) (int, bool) {
	if c.X < 0 || c.X >= g.Width || c.Y < 0 {
		return 0, false
	}
	line := c.Y*g.Width + c.X
	if line >= g.Lines {
		return 0, false
	}
	return line, true
}

// Contains reports whether c addresses a populated cell.
func (g Geometry) Contains(c Coord) bool {
	_, ok := g.Line(c)
	return ok
}

// Manhattan returns the L1 distance between two coordinates (paper
// equation (9)).
func Manhattan(a, b Coord) int {
	dx, dy := a.X-b.X, a.Y-b.Y
	if dx < 0 {
		dx = -dx
	}
	if dy < 0 {
		dy = -dy
	}
	return dx + dy
}

// Plane is one voltage level's error bitmap.
type Plane struct {
	geo  Geometry
	bits []uint64
	n    int // number of set bits
}

// NewPlane creates an empty plane over the geometry.
func NewPlane(g Geometry) *Plane {
	return &Plane{geo: g, bits: make([]uint64, (g.Lines+63)/64)}
}

// Geometry returns the plane's layout.
func (p *Plane) Geometry() Geometry { return p.geo }

// ErrorCount returns the number of error cells set.
func (p *Plane) ErrorCount() int { return p.n }

// Set marks line as erroneous (true) or clean (false).
func (p *Plane) Set(line int, v bool) {
	if line < 0 || line >= p.geo.Lines {
		panic(fmt.Sprintf("errormap: set line %d out of range", line))
	}
	w, b := line/64, uint(line%64)
	old := p.bits[w]>>b&1 == 1
	if v == old {
		return
	}
	if v {
		p.bits[w] |= 1 << b
		p.n++
	} else {
		p.bits[w] &^= 1 << b
		p.n--
	}
}

// Get reports whether line is marked erroneous.
func (p *Plane) Get(line int) bool {
	if line < 0 || line >= p.geo.Lines {
		panic(fmt.Sprintf("errormap: get line %d out of range", line))
	}
	return p.bits[line/64]>>(uint(line%64))&1 == 1
}

// GetCoord reports whether the cell at c is erroneous; out-of-grid
// coordinates are clean by definition.
func (p *Plane) GetCoord(c Coord) bool {
	line, ok := p.geo.Line(c)
	if !ok {
		return false
	}
	return p.Get(line)
}

// Errors returns the line indices of all error cells in ascending
// order.
func (p *Plane) Errors() []int {
	out := make([]int, 0, p.n)
	for w, word := range p.bits {
		for word != 0 {
			b := trailingZeros64(word)
			line := w*64 + b
			if line < p.geo.Lines {
				out = append(out, line)
			}
			word &= word - 1
		}
	}
	return out
}

func trailingZeros64(x uint64) int {
	if x == 0 {
		return 64
	}
	n := 0
	for x&1 == 0 {
		x >>= 1
		n++
	}
	return n
}

// Clone returns a deep copy of the plane.
func (p *Plane) Clone() *Plane {
	q := NewPlane(p.geo)
	copy(q.bits, p.bits)
	q.n = p.n
	return q
}

// Equal reports whether two planes have identical geometry and bits.
func (p *Plane) Equal(q *Plane) bool {
	if p.geo != q.geo || p.n != q.n {
		return false
	}
	for i := range p.bits {
		if p.bits[i] != q.bits[i] {
			return false
		}
	}
	return true
}

// DiffCount returns the number of cells whose error status differs.
func (p *Plane) DiffCount(q *Plane) int {
	if p.geo != q.geo {
		panic("errormap: DiffCount on mismatched geometries")
	}
	d := 0
	for i := range p.bits {
		d += popcount64(p.bits[i] ^ q.bits[i])
	}
	return d
}

func popcount64(x uint64) int {
	c := 0
	for x != 0 {
		x &= x - 1
		c++
	}
	return c
}

// RandomPlane draws a plane with exactly k distinct error cells placed
// uniformly at random — the Monte Carlo workhorse behind the paper's
// simulated evaluation ("randomly generated error maps").
func RandomPlane(g Geometry, k int, r *rng.Rand) *Plane {
	if k < 0 || k > g.Lines {
		panic(fmt.Sprintf("errormap: cannot place %d errors in %d lines", k, g.Lines))
	}
	p := NewPlane(g)
	for _, line := range r.SampleK(g.Lines, k) {
		p.Set(line, true)
	}
	return p
}

// --- Nearest-error search -------------------------------------------------

// RingProbe is one cell visit during a ring search, in firmware test
// order.
type RingProbe struct {
	Line int
	Dist int
}

// RingSearch finds the Manhattan distance from c to the nearest error
// by expanding Von Neumann neighbourhoods outward, visiting each ring
// clockwise starting from north — the client firmware's test order. It
// returns the distance, whether any error exists, and the number of
// populated cells probed (the self-test count before the error was
// found, used by the timing model).
//
// The search includes radius 0 (the target cell itself), matching the
// map semantics where a challenge coordinate may itself carry an error.
func (p *Plane) RingSearch(c Coord) (dist int, found bool, probes int) {
	if p.n == 0 {
		return 0, false, 0
	}
	g := p.geo
	maxR := g.Width + g.Height() // no cell is farther than this
	for r := 0; r <= maxR; r++ {
		hit := false
		visitRing(c, r, func(cell Coord) {
			if hit {
				return // the firmware stops testing once a ring hits
			}
			if !g.Contains(cell) {
				return
			}
			probes++
			if p.GetCoord(cell) {
				hit = true
			}
		})
		if hit {
			return r, true, probes
		}
	}
	return 0, false, probes
}

// visitRing calls fn for every cell at Manhattan distance r from c,
// clockwise starting from north ((0,-r) up in screen coordinates).
// For r == 0 it visits c itself.
func visitRing(c Coord, r int, fn func(Coord)) {
	if r == 0 {
		fn(c)
		return
	}
	// Four diagonal legs of the L1 circle, traversed clockwise:
	// north -> east -> south -> west -> back to north.
	for i := 0; i < r; i++ { // N (0,-r) towards E (r,0)
		fn(Coord{c.X + i, c.Y - r + i})
	}
	for i := 0; i < r; i++ { // E (r,0) towards S (0,r)
		fn(Coord{c.X + r - i, c.Y + i})
	}
	for i := 0; i < r; i++ { // S (0,r) towards W (-r,0)
		fn(Coord{c.X - i, c.Y + r - i})
	}
	for i := 0; i < r; i++ { // W (-r,0) towards N (0,-r)
		fn(Coord{c.X - r + i, c.Y - i})
	}
}

// DistanceField holds every cell's Manhattan distance to the nearest
// error, produced by DistanceTransform.
type DistanceField struct {
	geo  Geometry
	dist []int32
}

// DistanceTransform computes the full nearest-error distance field via
// multi-source BFS in O(n). It returns nil if the plane has no errors.
func (p *Plane) DistanceTransform() *DistanceField {
	if p.n == 0 {
		return nil
	}
	g := p.geo
	df := &DistanceField{geo: g, dist: make([]int32, g.Lines)}
	for i := range df.dist {
		df.dist[i] = -1
	}
	queue := make([]int, 0, g.Lines)
	for _, line := range p.Errors() {
		df.dist[line] = 0
		queue = append(queue, line)
	}
	w := g.Width
	for head := 0; head < len(queue); head++ {
		line := queue[head]
		d := df.dist[line] + 1
		x, y := line%w, line/w
		push := func(nx, ny int) {
			if nx < 0 || nx >= w || ny < 0 {
				return
			}
			nl := ny*w + nx
			if nl >= g.Lines || df.dist[nl] >= 0 {
				return
			}
			df.dist[nl] = d
			queue = append(queue, nl)
		}
		push(x-1, y)
		push(x+1, y)
		push(x, y-1)
		push(x, y+1)
	}
	return df
}

// Dist returns the distance from c to the nearest error. Out-of-grid
// coordinates panic.
func (df *DistanceField) Dist(c Coord) int {
	line, ok := df.geo.Line(c)
	if !ok {
		panic(fmt.Sprintf("errormap: distance query outside grid: %+v", c))
	}
	return int(df.dist[line])
}

// DistLine returns the nearest-error distance of a line index.
func (df *DistanceField) DistLine(line int) int { return int(df.dist[line]) }

// Mean returns the average nearest-error distance over all cells —
// the quantity plotted in Figure 15.
func (df *DistanceField) Mean() float64 {
	var sum float64
	for _, d := range df.dist {
		sum += float64(d)
	}
	return sum / float64(len(df.dist))
}

// --- Serialization ---------------------------------------------------------

const planeMagic = 0x41434d50 // "ACMP"

// MarshalBinary encodes the plane as a compact, versioned byte stream.
func (p *Plane) MarshalBinary() ([]byte, error) {
	buf := make([]byte, 0, 16+len(p.bits)*8)
	var hdr [16]byte
	binary.LittleEndian.PutUint32(hdr[0:], planeMagic)
	binary.LittleEndian.PutUint32(hdr[4:], 1) // version
	binary.LittleEndian.PutUint32(hdr[8:], uint32(p.geo.Lines))
	binary.LittleEndian.PutUint32(hdr[12:], uint32(p.geo.Width))
	buf = append(buf, hdr[:]...)
	var w [8]byte
	for _, word := range p.bits {
		binary.LittleEndian.PutUint64(w[:], word)
		buf = append(buf, w[:]...)
	}
	return buf, nil
}

// UnmarshalBinary decodes a plane produced by MarshalBinary.
func (p *Plane) UnmarshalBinary(data []byte) error {
	if len(data) < 16 {
		return errors.New("errormap: truncated plane header")
	}
	if binary.LittleEndian.Uint32(data[0:]) != planeMagic {
		return errors.New("errormap: bad plane magic")
	}
	if v := binary.LittleEndian.Uint32(data[4:]); v != 1 {
		return fmt.Errorf("errormap: unsupported plane version %d", v)
	}
	lines := int(binary.LittleEndian.Uint32(data[8:]))
	width := int(binary.LittleEndian.Uint32(data[12:]))
	if lines <= 0 || width <= 0 {
		return errors.New("errormap: invalid plane geometry")
	}
	nWords := (lines + 63) / 64
	if len(data) != 16+nWords*8 {
		return fmt.Errorf("errormap: plane payload is %d bytes, want %d", len(data)-16, nWords*8)
	}
	geo := Geometry{Lines: lines, Width: width}
	bits := make([]uint64, nWords)
	n := 0
	for i := range bits {
		bits[i] = binary.LittleEndian.Uint64(data[16+i*8:])
		n += popcount64(bits[i])
	}
	// Reject stray bits beyond the line count.
	if rem := lines % 64; rem != 0 {
		if bits[nWords-1]>>uint(rem) != 0 {
			return errors.New("errormap: stray bits beyond line count")
		}
	}
	p.geo = geo
	p.bits = bits
	p.n = n
	return nil
}
