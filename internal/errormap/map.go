package errormap

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sort"
)

// Map is the full 3D error volume of a chip: one Plane per
// characterised supply-voltage level (paper Figure 4). Voltage levels
// are identified by their integer millivolt value so map keys are
// exact.
type Map struct {
	geo    Geometry
	planes map[int]*Plane
}

// NewMap creates an empty map over the geometry.
func NewMap(g Geometry) *Map {
	return &Map{geo: g, planes: make(map[int]*Plane)}
}

// Geometry returns the map's plane layout.
func (m *Map) Geometry() Geometry { return m.geo }

// AddPlane registers the error plane measured at vddMV millivolts.
// The plane's geometry must match the map's.
func (m *Map) AddPlane(vddMV int, p *Plane) {
	if p.Geometry() != m.geo {
		panic("errormap: plane geometry does not match map")
	}
	m.planes[vddMV] = p
}

// Plane returns the plane measured at vddMV, or nil if absent.
func (m *Map) Plane(vddMV int) *Plane { return m.planes[vddMV] }

// Voltages returns the characterised voltage levels in ascending
// order.
func (m *Map) Voltages() []int {
	out := make([]int, 0, len(m.planes))
	for v := range m.planes {
		out = append(out, v)
	}
	sort.Ints(out)
	return out
}

// Clone returns a deep copy of the map.
func (m *Map) Clone() *Map {
	c := NewMap(m.geo)
	for v, p := range m.planes {
		c.planes[v] = p.Clone()
	}
	return c
}

// TotalErrors sums error counts across all planes.
func (m *Map) TotalErrors() int {
	t := 0
	for _, p := range m.planes {
		t += p.ErrorCount()
	}
	return t
}

const mapMagic = 0x41434d4d // "ACMM"

// MarshalBinary encodes the map with all its planes.
func (m *Map) MarshalBinary() ([]byte, error) {
	var hdr [16]byte
	binary.LittleEndian.PutUint32(hdr[0:], mapMagic)
	binary.LittleEndian.PutUint32(hdr[4:], 1)
	binary.LittleEndian.PutUint32(hdr[8:], uint32(len(m.planes)))
	binary.LittleEndian.PutUint32(hdr[12:], uint32(m.geo.Lines))
	buf := append([]byte(nil), hdr[:]...)
	for _, v := range m.Voltages() {
		pb, err := m.planes[v].MarshalBinary()
		if err != nil {
			return nil, err
		}
		var rec [8]byte
		binary.LittleEndian.PutUint32(rec[0:], uint32(int32(v)))
		binary.LittleEndian.PutUint32(rec[4:], uint32(len(pb)))
		buf = append(buf, rec[:]...)
		buf = append(buf, pb...)
	}
	return buf, nil
}

// UnmarshalMap decodes a map produced by MarshalBinary.
func UnmarshalMap(data []byte) (*Map, error) {
	if len(data) < 16 {
		return nil, errors.New("errormap: truncated map header")
	}
	if binary.LittleEndian.Uint32(data[0:]) != mapMagic {
		return nil, errors.New("errormap: bad map magic")
	}
	if v := binary.LittleEndian.Uint32(data[4:]); v != 1 {
		return nil, fmt.Errorf("errormap: unsupported map version %d", v)
	}
	nPlanes := int(binary.LittleEndian.Uint32(data[8:]))
	off := 16
	var m *Map
	for i := 0; i < nPlanes; i++ {
		if len(data) < off+8 {
			return nil, errors.New("errormap: truncated plane record")
		}
		vdd := int(int32(binary.LittleEndian.Uint32(data[off:])))
		plen := int(binary.LittleEndian.Uint32(data[off+4:]))
		off += 8
		if len(data) < off+plen {
			return nil, errors.New("errormap: truncated plane payload")
		}
		var p Plane
		if err := p.UnmarshalBinary(data[off : off+plen]); err != nil {
			return nil, err
		}
		off += plen
		if m == nil {
			m = NewMap(p.Geometry())
		} else if p.Geometry() != m.geo {
			return nil, errors.New("errormap: inconsistent plane geometries")
		}
		m.planes[vdd] = &p
	}
	if m == nil {
		return nil, errors.New("errormap: map has no planes")
	}
	if off != len(data) {
		return nil, errors.New("errormap: trailing bytes after map")
	}
	return m, nil
}
