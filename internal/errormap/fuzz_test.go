package errormap

import (
	"testing"

	"repro/internal/rng"
)

// FuzzPlaneUnmarshal hardens the wire decoder: arbitrary bytes must
// either decode into a self-consistent plane or be rejected — never
// panic, never produce a plane whose error count disagrees with its
// bits.
func FuzzPlaneUnmarshal(f *testing.F) {
	good, _ := RandomPlane(NewGeometry(1000), 30, rng.New(1)).MarshalBinary()
	f.Add(good)
	f.Add([]byte{})
	f.Add(make([]byte, 16))
	f.Add(good[:len(good)-3])
	f.Fuzz(func(t *testing.T, data []byte) {
		var p Plane
		if err := p.UnmarshalBinary(data); err != nil {
			return
		}
		// Accepted planes must be internally consistent.
		if p.ErrorCount() != len(p.Errors()) {
			t.Fatalf("count %d != listed %d", p.ErrorCount(), len(p.Errors()))
		}
		round, err := p.MarshalBinary()
		if err != nil {
			t.Fatal(err)
		}
		var q Plane
		if err := q.UnmarshalBinary(round); err != nil {
			t.Fatalf("re-decode of re-encode failed: %v", err)
		}
		if !p.Equal(&q) {
			t.Fatal("marshal/unmarshal not idempotent")
		}
	})
}

// FuzzMapUnmarshal does the same for the multi-plane container.
func FuzzMapUnmarshal(f *testing.F) {
	g := NewGeometry(500)
	m := NewMap(g)
	r := rng.New(2)
	m.AddPlane(660, RandomPlane(g, 10, r))
	m.AddPlane(680, RandomPlane(g, 5, r))
	good, _ := m.MarshalBinary()
	f.Add(good)
	f.Add([]byte{})
	f.Add(good[:20])
	f.Fuzz(func(t *testing.T, data []byte) {
		m, err := UnmarshalMap(data)
		if err != nil {
			return
		}
		if len(m.Voltages()) == 0 {
			t.Fatal("accepted map with no planes")
		}
		round, err := m.MarshalBinary()
		if err != nil {
			t.Fatal(err)
		}
		m2, err := UnmarshalMap(round)
		if err != nil {
			t.Fatal(err)
		}
		for _, v := range m.Voltages() {
			if !m.Plane(v).Equal(m2.Plane(v)) {
				t.Fatalf("plane %d not stable across round trip", v)
			}
		}
	})
}
