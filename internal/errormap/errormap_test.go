package errormap

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/rng"
)

func TestGeometrySquare(t *testing.T) {
	g := NewGeometry(65536)
	if g.Width != 256 || g.Height() != 256 {
		t.Fatalf("geometry = %dx%d, want 256x256", g.Width, g.Height())
	}
}

func TestGeometryPartialLastRow(t *testing.T) {
	g := NewGeometry(12288) // 768 KB cache
	if g.Width != 111 {
		t.Fatalf("width = %d, want 111", g.Width)
	}
	if g.Height() != 111 {
		t.Fatalf("height = %d", g.Height())
	}
	// Last cell of the populated area round-trips; beyond it does not.
	c := g.Coord(12287)
	if l, ok := g.Line(c); !ok || l != 12287 {
		t.Fatalf("round trip failed: %v %v", l, ok)
	}
	if g.Contains(Coord{X: 110, Y: 110}) {
		t.Fatal("cell beyond populated area reported contained")
	}
}

func TestCoordRoundTripProperty(t *testing.T) {
	g := NewGeometry(10007) // awkward non-square size
	f := func(l uint16) bool {
		line := int(l) % g.Lines
		got, ok := g.Line(g.Coord(line))
		return ok && got == line
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestManhattan(t *testing.T) {
	cases := []struct {
		a, b Coord
		want int
	}{
		{Coord{0, 0}, Coord{0, 0}, 0},
		{Coord{1, 2}, Coord{4, 6}, 7},
		{Coord{5, 5}, Coord{2, 9}, 7},
		{Coord{-3, 0}, Coord{3, 0}, 6},
	}
	for _, c := range cases {
		if got := Manhattan(c.a, c.b); got != c.want {
			t.Errorf("Manhattan(%v,%v) = %d, want %d", c.a, c.b, got, c.want)
		}
		if got := Manhattan(c.b, c.a); got != c.want {
			t.Errorf("Manhattan not symmetric for %v,%v", c.a, c.b)
		}
	}
}

func TestPlaneSetGet(t *testing.T) {
	p := NewPlane(NewGeometry(1000))
	if p.ErrorCount() != 0 {
		t.Fatal("fresh plane has errors")
	}
	p.Set(5, true)
	p.Set(999, true)
	p.Set(5, true) // idempotent
	if !p.Get(5) || !p.Get(999) || p.Get(6) {
		t.Fatal("Get/Set broken")
	}
	if p.ErrorCount() != 2 {
		t.Fatalf("count = %d", p.ErrorCount())
	}
	p.Set(5, false)
	if p.Get(5) || p.ErrorCount() != 1 {
		t.Fatal("clear broken")
	}
}

func TestPlaneErrorsSorted(t *testing.T) {
	p := NewPlane(NewGeometry(500))
	for _, l := range []int{400, 3, 77, 255} {
		p.Set(l, true)
	}
	got := p.Errors()
	want := []int{3, 77, 255, 400}
	if len(got) != len(want) {
		t.Fatalf("errors = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("errors = %v, want %v", got, want)
		}
	}
}

func TestRandomPlaneExactCount(t *testing.T) {
	r := rng.New(1)
	g := NewGeometry(4096)
	for _, k := range []int{0, 1, 100, 4096} {
		p := RandomPlane(g, k, r)
		if p.ErrorCount() != k {
			t.Fatalf("k=%d: count = %d", k, p.ErrorCount())
		}
		if len(p.Errors()) != k {
			t.Fatalf("k=%d: %d listed errors", k, len(p.Errors()))
		}
	}
}

func TestCloneEqualDiff(t *testing.T) {
	r := rng.New(2)
	p := RandomPlane(NewGeometry(2048), 50, r)
	q := p.Clone()
	if !p.Equal(q) {
		t.Fatal("clone not equal")
	}
	if p.DiffCount(q) != 0 {
		t.Fatal("clone diff nonzero")
	}
	// Mutating the clone must not affect the original.
	free := 0
	for !q.Get(free) {
		free++
	}
	q.Set(free, false)
	if p.Equal(q) || !p.Get(free) {
		t.Fatal("clone shares storage with original")
	}
	if p.DiffCount(q) != 1 {
		t.Fatalf("diff = %d, want 1", p.DiffCount(q))
	}
}

func TestRingSearchMatchesBruteForce(t *testing.T) {
	r := rng.New(3)
	g := NewGeometry(900) // 30x30
	for trial := 0; trial < 20; trial++ {
		p := RandomPlane(g, 5+trial, r)
		errs := p.Errors()
		for probe := 0; probe < 50; probe++ {
			line := r.Intn(g.Lines)
			c := g.Coord(line)
			// brute force
			best := math.MaxInt32
			for _, e := range errs {
				if d := Manhattan(c, g.Coord(e)); d < best {
					best = d
				}
			}
			dist, found, probes := p.RingSearch(c)
			if !found {
				t.Fatalf("trial %d: error not found", trial)
			}
			if dist != best {
				t.Fatalf("trial %d line %d: ring %d vs brute %d", trial, line, dist, best)
			}
			if probes <= 0 {
				t.Fatalf("probes = %d", probes)
			}
		}
	}
}

func TestRingSearchSelfError(t *testing.T) {
	g := NewGeometry(100)
	p := NewPlane(g)
	p.Set(55, true)
	dist, found, probes := p.RingSearch(g.Coord(55))
	if !found || dist != 0 || probes != 1 {
		t.Fatalf("self search = (%d,%v,%d)", dist, found, probes)
	}
}

func TestRingSearchEmptyPlane(t *testing.T) {
	p := NewPlane(NewGeometry(64))
	_, found, _ := p.RingSearch(Coord{0, 0})
	if found {
		t.Fatal("found an error in an empty plane")
	}
}

func TestRingProbeCountGrowsWithSparsity(t *testing.T) {
	r := rng.New(4)
	g := NewGeometry(65536)
	dense := RandomPlane(g, 100, r)
	sparse := RandomPlane(g, 20, r)
	var pd, ps int
	for i := 0; i < 200; i++ {
		c := g.Coord(r.Intn(g.Lines))
		_, _, a := dense.RingSearch(c)
		_, _, b := sparse.RingSearch(c)
		pd += a
		ps += b
	}
	if ps <= pd {
		t.Fatalf("sparse map should need more probes: dense=%d sparse=%d", pd, ps)
	}
}

func TestVisitRingCellsExactlyOnce(t *testing.T) {
	for r := 0; r <= 5; r++ {
		seen := map[Coord]int{}
		visitRing(Coord{10, 10}, r, func(c Coord) { seen[c]++ })
		wantCells := 4 * r
		if r == 0 {
			wantCells = 1
		}
		if len(seen) != wantCells {
			t.Fatalf("r=%d: %d distinct cells, want %d", r, len(seen), wantCells)
		}
		for c, n := range seen {
			if n != 1 {
				t.Fatalf("r=%d: cell %v visited %d times", r, c, n)
			}
			if Manhattan(c, Coord{10, 10}) != r {
				t.Fatalf("r=%d: cell %v at wrong distance", r, c)
			}
		}
	}
}

func TestVisitRingClockwiseFromNorth(t *testing.T) {
	var order []Coord
	visitRing(Coord{0, 0}, 1, func(c Coord) { order = append(order, c) })
	want := []Coord{{0, -1}, {1, 0}, {0, 1}, {-1, 0}}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("ring order = %v, want %v", order, want)
		}
	}
}

func TestDistanceTransformMatchesRingSearch(t *testing.T) {
	r := rng.New(5)
	g := NewGeometry(2500)
	p := RandomPlane(g, 12, r)
	df := p.DistanceTransform()
	for line := 0; line < g.Lines; line += 7 {
		c := g.Coord(line)
		want, _, _ := p.RingSearch(c)
		if got := df.Dist(c); got != want {
			t.Fatalf("line %d: df %d vs ring %d", line, got, want)
		}
		if got := df.DistLine(line); got != want {
			t.Fatalf("line %d: DistLine %d vs %d", line, got, want)
		}
	}
}

func TestDistanceTransformEmptyPlane(t *testing.T) {
	if df := NewPlane(NewGeometry(64)).DistanceTransform(); df != nil {
		t.Fatal("empty plane should have nil distance field")
	}
}

// Figure 15 anchor: the mean nearest-error distance of k random errors
// in an n-cell near-square plane is ≈ √(π·n/(8k)).
func TestMeanDistanceMatchesTheory(t *testing.T) {
	r := rng.New(6)
	g := NewGeometry(65536)
	for _, k := range []int{10, 50, 100} {
		var mean float64
		const trials = 5
		for i := 0; i < trials; i++ {
			mean += RandomPlane(g, k, r).DistanceTransform().Mean()
		}
		mean /= trials
		theory := math.Sqrt(math.Pi * float64(g.Lines) / (8 * float64(k)))
		if mean < theory*0.75 || mean > theory*1.35 {
			t.Fatalf("k=%d: mean %v vs theory %v", k, mean, theory)
		}
	}
}

func TestPlaneSerializationRoundTrip(t *testing.T) {
	r := rng.New(7)
	for _, n := range []int{64, 1000, 12288} {
		p := RandomPlane(NewGeometry(n), n/50, r)
		data, err := p.MarshalBinary()
		if err != nil {
			t.Fatal(err)
		}
		var q Plane
		if err := q.UnmarshalBinary(data); err != nil {
			t.Fatal(err)
		}
		if !p.Equal(&q) {
			t.Fatalf("n=%d: round trip mismatch", n)
		}
	}
}

func TestPlaneUnmarshalRejectsGarbage(t *testing.T) {
	var p Plane
	if err := p.UnmarshalBinary(nil); err == nil {
		t.Fatal("nil accepted")
	}
	if err := p.UnmarshalBinary(make([]byte, 16)); err == nil {
		t.Fatal("zero magic accepted")
	}
	good, _ := RandomPlane(NewGeometry(100), 3, rng.New(8)).MarshalBinary()
	if err := p.UnmarshalBinary(good[:len(good)-1]); err == nil {
		t.Fatal("truncated payload accepted")
	}
	bad := append([]byte(nil), good...)
	bad[len(bad)-1] |= 0x80 // stray bit beyond line count (100 % 64 = 36)
	if err := p.UnmarshalBinary(bad); err == nil {
		t.Fatal("stray bits accepted")
	}
}

func TestMapPlanes(t *testing.T) {
	g := NewGeometry(1024)
	m := NewMap(g)
	r := rng.New(9)
	m.AddPlane(680, RandomPlane(g, 10, r))
	m.AddPlane(700, RandomPlane(g, 5, r))
	m.AddPlane(660, RandomPlane(g, 20, r))
	vs := m.Voltages()
	if len(vs) != 3 || vs[0] != 660 || vs[2] != 700 {
		t.Fatalf("voltages = %v", vs)
	}
	if m.Plane(680) == nil || m.Plane(999) != nil {
		t.Fatal("Plane lookup broken")
	}
	if m.TotalErrors() != 35 {
		t.Fatalf("total errors = %d", m.TotalErrors())
	}
	c := m.Clone()
	free := 0
	for c.Plane(680).Get(free) {
		free++
	}
	c.Plane(680).Set(free, true)
	if m.Plane(680).Get(free) {
		t.Fatal("map clone shares planes")
	}
}

func TestMapSerializationRoundTrip(t *testing.T) {
	g := NewGeometry(4096)
	m := NewMap(g)
	r := rng.New(10)
	m.AddPlane(690, RandomPlane(g, 30, r))
	m.AddPlane(670, RandomPlane(g, 60, r))
	data, err := m.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	got, err := UnmarshalMap(data)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Voltages()) != 2 {
		t.Fatalf("voltages = %v", got.Voltages())
	}
	for _, v := range []int{670, 690} {
		if !got.Plane(v).Equal(m.Plane(v)) {
			t.Fatalf("plane %d mismatch", v)
		}
	}
	if _, err := UnmarshalMap(data[:10]); err == nil {
		t.Fatal("truncated map accepted")
	}
	if _, err := UnmarshalMap(append(data, 0)); err == nil {
		t.Fatal("trailing bytes accepted")
	}
}

func BenchmarkDistanceTransform4MB(b *testing.B) {
	r := rng.New(1)
	p := RandomPlane(NewGeometry(65536), 100, r)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = p.DistanceTransform()
	}
}

func BenchmarkRingSearch(b *testing.B) {
	r := rng.New(1)
	g := NewGeometry(65536)
	p := RandomPlane(g, 100, r)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c := g.Coord(r.Intn(g.Lines))
		_, _, _ = p.RingSearch(c)
	}
}
