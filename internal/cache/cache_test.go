package cache

import (
	"testing"

	"repro/internal/sram"
	"repro/internal/variation"
	"repro/internal/voltage"
)

func newHandler(t *testing.T, seed uint64, geo Geometry) *ErrorHandler {
	t.Helper()
	m := variation.NewModel(seed, variation.DefaultParams())
	arr := sram.New(m, geo.Lines(), seed^0x5a5a)
	return NewErrorHandler(arr, geo)
}

func TestGeometryBasics(t *testing.T) {
	g := Geometry4MB
	if g.Lines() != 65536 {
		t.Fatalf("4MB lines = %d", g.Lines())
	}
	if g.SizeBytes() != 4<<20 {
		t.Fatalf("size = %d", g.SizeBytes())
	}
	if Geometry768KB.SizeBytes() != 768<<10 {
		t.Fatalf("768KB size = %d", Geometry768KB.SizeBytes())
	}
}

func TestGeometryAddrRoundTrip(t *testing.T) {
	g := Geometry{Sets: 128, Ways: 4, LineBytes: 64}
	for line := 0; line < g.Lines(); line += 13 {
		set, way := g.Addr(line)
		if set < 0 || set >= g.Sets || way < 0 || way >= g.Ways {
			t.Fatalf("line %d -> (%d,%d) out of range", line, set, way)
		}
		if got := g.Line(set, way); got != line {
			t.Fatalf("round trip %d -> %d", line, got)
		}
	}
}

func TestGeometryForSize(t *testing.T) {
	for _, sz := range []int{256 << 10, 512 << 10, 1 << 20, 4 << 20} {
		g := GeometryForSize(sz)
		if g.SizeBytes() != sz {
			t.Fatalf("GeometryForSize(%d) -> %d bytes", sz, g.SizeBytes())
		}
	}
	defer func() {
		if recover() == nil {
			t.Fatal("unaligned size accepted")
		}
	}()
	GeometryForSize(1000)
}

func TestSweepCleanAtNominal(t *testing.T) {
	h := newHandler(t, 1, GeometryForSize(256<<10))
	res := h.Sweep()
	if len(res.FailingLines) != 0 || res.Correctable != 0 || res.Uncorrectable != 0 {
		t.Fatalf("nominal sweep found errors: %+v", res)
	}
	if res.LinesTested != h.Geometry().Lines() {
		t.Fatalf("tested %d lines", res.LinesTested)
	}
}

func TestSweepFindsDefectsAtLowVdd(t *testing.T) {
	h := newHandler(t, 2, Geometry4MB)
	p := variation.DefaultParams()
	h.Array().SetVoltage(p.DefectBandHi - 0.065)
	res := h.Sweep()
	if len(res.FailingLines) < 60 || len(res.FailingLines) > 200 {
		t.Fatalf("failing lines = %d, want ~122", len(res.FailingLines))
	}
	if res.Uncorrectable != 0 {
		t.Fatalf("uncorrectable in defect band: %d", res.Uncorrectable)
	}
	// Ascending and unique.
	for i := 1; i < len(res.FailingLines); i++ {
		if res.FailingLines[i] <= res.FailingLines[i-1] {
			t.Fatal("failing lines not strictly ascending")
		}
	}
}

func TestSweepEmergencyOnUncorrectable(t *testing.T) {
	h := newHandler(t, 3, GeometryForSize(256<<10))
	fired := 0
	h.SetEmergencyCallback(func() { fired++ })
	h.Array().SetVoltage(0.40) // deep below bulk: uncorrectable storm
	res := h.Sweep()
	if res.Uncorrectable == 0 {
		t.Fatal("expected uncorrectable events")
	}
	if fired != 1 {
		t.Fatalf("emergency fired %d times, want 1", fired)
	}
	if h.Emergencies() != 1 {
		t.Fatalf("Emergencies() = %d", h.Emergencies())
	}
}

func TestTestLineTriggersOnWeakLine(t *testing.T) {
	h := newHandler(t, 4, Geometry4MB)
	p := variation.DefaultParams()
	vtest := p.DefectBandHi - 0.065
	h.Array().SetVoltage(vtest)
	// Find a deep-margin weak line via the variation profile.
	target := -1
	for l := 0; l < h.Geometry().Lines(); l++ {
		if h.Array().Profile(l).Margin(vtest, h.Array().Environment(), p) > 0.03 {
			target = l
			break
		}
	}
	if target < 0 {
		t.Skip("no deep-margin line for this seed")
	}
	res := h.TestLine(target, 8)
	if !res.Triggered || res.Uncorrectable {
		t.Fatalf("weak line result: %+v", res)
	}
	if res.Attempts < 1 || res.Attempts > 8 {
		t.Fatalf("attempts = %d", res.Attempts)
	}
}

func TestTestLineCleanLine(t *testing.T) {
	h := newHandler(t, 5, GeometryForSize(256<<10))
	p := variation.DefaultParams()
	h.Array().SetVoltage(p.DefectBandHi - 0.010)
	// Find a line that is clean at this voltage.
	target := -1
	for l := 0; l < h.Geometry().Lines(); l++ {
		if h.Array().Profile(l).Margin(h.Array().Voltage(), h.Array().Environment(), p) < -0.05 {
			target = l
			break
		}
	}
	res := h.TestLine(target, 4)
	if res.Triggered {
		t.Fatalf("clean line triggered: %+v", res)
	}
	if res.Attempts != 4 {
		t.Fatalf("attempts = %d, want all 4", res.Attempts)
	}
}

func TestBuildPlaneMatchesSweeps(t *testing.T) {
	h := newHandler(t, 6, Geometry4MB)
	p := variation.DefaultParams()
	h.Array().SetVoltage(p.DefectBandHi - 0.065)
	plane := h.BuildPlane(4)
	if plane.ErrorCount() < 60 || plane.ErrorCount() > 220 {
		t.Fatalf("plane errors = %d", plane.ErrorCount())
	}
	// Every plane error must be a genuinely weak line per the model.
	for _, line := range plane.Errors() {
		margin := h.Array().Profile(line).Margin(h.Array().Voltage(), h.Array().Environment(), p)
		if margin < -0.01 {
			t.Fatalf("line %d in plane with margin %v", line, margin)
		}
	}
}

func TestBuildPlaneMoreSweepsFindMoreFlakyLines(t *testing.T) {
	h := newHandler(t, 7, Geometry4MB)
	p := variation.DefaultParams()
	h.Array().SetVoltage(p.DefectBandHi - 0.065)
	one := h.BuildPlane(1)
	eight := h.BuildPlane(8)
	if eight.ErrorCount() < one.ErrorCount() {
		t.Fatalf("8 sweeps found fewer lines (%d) than 1 sweep (%d)",
			eight.ErrorCount(), one.ErrorCount())
	}
}

// End-to-end with the real voltage controller: calibration over the
// simulated cache must land the floor inside the defect band, above
// the bulk.
func TestFloorCalibrationOnSimulatedCache(t *testing.T) {
	h := newHandler(t, 8, GeometryForSize(1<<20))
	cfg := voltage.DefaultConfig()
	cfg.StepMV = 5
	cfg.VMinSearch = 0.600
	ctrl := voltage.NewController(h.Array(), cfg)
	h.SetEmergencyCallback(ctrl.Emergency)
	floor, err := ctrl.CalibrateFloor(h)
	if err != nil {
		t.Fatal(err)
	}
	p := variation.DefaultParams()
	bulkMV := int(p.BulkMean * 1000)
	bandTopMV := int(p.DefectBandHi * 1000)
	if floor <= bulkMV || floor >= bandTopMV {
		t.Fatalf("floor = %d mV, want inside (%d, %d)", floor, bulkMV, bandTopMV)
	}
	// At the floor, a sweep is safe (correctable only).
	if err := ctrl.Request(floor); err != nil {
		t.Fatal(err)
	}
	res := h.Sweep()
	if res.Uncorrectable != 0 {
		t.Fatalf("uncorrectable at calibrated floor: %d", res.Uncorrectable)
	}
	ctrl.RestoreNominal()
}

func TestHandlerRejectsMismatchedArray(t *testing.T) {
	m := variation.NewModel(9, variation.DefaultParams())
	arr := sram.New(m, 100, 1)
	defer func() {
		if recover() == nil {
			t.Fatal("mismatched geometry accepted")
		}
	}()
	NewErrorHandler(arr, Geometry4MB)
}

func BenchmarkSweep1MB(b *testing.B) {
	m := variation.NewModel(1, variation.DefaultParams())
	geo := GeometryForSize(1 << 20)
	arr := sram.New(m, geo.Lines(), 2)
	h := NewErrorHandler(arr, geo)
	arr.SetVoltage(variation.DefaultParams().DefectBandHi - 0.065)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = h.Sweep()
	}
}
