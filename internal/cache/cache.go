// Package cache models the cache organisation and the firmware error
// handler that self-tests it (paper Section 5.2).
//
// The cache is a set-associative array of 64-byte lines backed by the
// ECC-protected SRAM simulation. The error handler provides the two
// self-test services the prototype firmware implements:
//
//   - Full-cache sweeps ("built-in self-test") used during voltage
//     floor calibration and error-map enrollment: every line is
//     written with stress patterns and read back, and the ECC event
//     log is compiled into per-line error information.
//   - Targeted line tests used while answering challenges: a specific
//     line is tested up to a configured number of attempts.
//
// The handler also carries the emergency watchdog: any uncorrectable
// event, or a correctable-rate explosion, triggers the registered
// emergency callback (which the voltage controller uses to snap the
// rail back to nominal).
package cache

import (
	"fmt"

	"repro/internal/ecc"
	"repro/internal/errormap"
	"repro/internal/sram"
	"repro/internal/voltage"
)

// Geometry describes a set-associative cache built from 64-byte lines.
type Geometry struct {
	Sets      int
	Ways      int
	LineBytes int
}

// Geometry4MB is the paper's mobile-class 4 MB LLC: 8192 sets × 8 ways
// × 64 B (Figure 2).
var Geometry4MB = Geometry{Sets: 8192, Ways: 8, LineBytes: 64}

// Geometry768KB matches one Itanium 9560 L2 slice used in Figure 3.
var Geometry768KB = Geometry{Sets: 2048, Ways: 6, LineBytes: 64}

// GeometryForSize returns an 8-way, 64 B-line geometry of the given
// total size; size must be a multiple of 512 bytes.
func GeometryForSize(bytes int) Geometry {
	const ways, lineBytes = 8, 64
	if bytes <= 0 || bytes%(ways*lineBytes) != 0 {
		panic(fmt.Sprintf("cache: size %d not a multiple of %d", bytes, ways*lineBytes))
	}
	return Geometry{Sets: bytes / (ways * lineBytes), Ways: ways, LineBytes: lineBytes}
}

// Lines returns the number of cache lines.
func (g Geometry) Lines() int { return g.Sets * g.Ways }

// SizeBytes returns the total capacity.
func (g Geometry) SizeBytes() int { return g.Lines() * g.LineBytes }

// Addr converts a line index into (set, way).
func (g Geometry) Addr(line int) (set, way int) {
	if line < 0 || line >= g.Lines() {
		panic(fmt.Sprintf("cache: line %d out of range", line))
	}
	return line / g.Ways, line % g.Ways
}

// Line converts (set, way) into a line index.
func (g Geometry) Line(set, way int) int {
	if set < 0 || set >= g.Sets || way < 0 || way >= g.Ways {
		panic(fmt.Sprintf("cache: address (set=%d,way=%d) out of range", set, way))
	}
	return set*g.Ways + way
}

// stressPatterns are the data backgrounds the self-test writes; solid
// and checkerboard patterns exercise both cell polarities.
var stressPatterns = []uint64{
	0x0000000000000000,
	0xffffffffffffffff,
	0x5555555555555555,
	0xaaaaaaaaaaaaaaaa,
}

// SweepResult summarises one full-cache self-test pass.
type SweepResult struct {
	FailingLines  []int // distinct lines with correctable events, ascending
	Correctable   int   // total correctable events
	Uncorrectable int   // total uncorrectable events
	LinesTested   int
}

// LineTestResult summarises a targeted line test.
type LineTestResult struct {
	Triggered     bool
	Uncorrectable bool
	Attempts      int // attempts actually executed (stops early on trigger)
}

// ErrorHandler drives self-tests over the SRAM array.
type ErrorHandler struct {
	arr *sram.Array
	geo Geometry

	// emergency, if non-nil, is invoked once per detected emergency.
	emergency func()
	// emergencyCeiling is the per-sweep correctable count treated as an
	// error-rate explosion.
	emergencyCeiling int

	emergencies int
}

// NewErrorHandler wires an error handler over the array. The array
// must have exactly geo.Lines() lines.
func NewErrorHandler(arr *sram.Array, geo Geometry) *ErrorHandler {
	if arr.Lines() != geo.Lines() {
		panic(fmt.Sprintf("cache: array has %d lines, geometry wants %d", arr.Lines(), geo.Lines()))
	}
	return &ErrorHandler{arr: arr, geo: geo, emergencyCeiling: 1 << 14}
}

// Geometry returns the cache organisation.
func (h *ErrorHandler) Geometry() Geometry { return h.geo }

// Array exposes the underlying SRAM array.
func (h *ErrorHandler) Array() *sram.Array { return h.arr }

// SetEmergencyCallback registers the function invoked on emergencies
// (typically voltage.Controller.Emergency).
func (h *ErrorHandler) SetEmergencyCallback(fn func()) { h.emergency = fn }

// SetEmergencyCeiling overrides the correctable-rate explosion bound.
func (h *ErrorHandler) SetEmergencyCeiling(n int) { h.emergencyCeiling = n }

// Emergencies reports how many emergencies the handler has raised.
func (h *ErrorHandler) Emergencies() int { return h.emergencies }

func (h *ErrorHandler) raiseEmergency() {
	h.emergencies++
	if h.emergency != nil {
		h.emergency()
	}
}

// Sweep runs one full-cache self-test at the current rail voltage:
// every line is written with each stress pattern and read back, and
// the ECC log is compiled into the result. Uncorrectable events and
// correctable-rate explosions raise the emergency callback (once per
// sweep) but the sweep still completes and reports honestly — during
// calibration the controller *expects* to find the unsafe region.
func (h *ErrorHandler) Sweep() SweepResult {
	h.arr.Log().Drain()
	failing := make(map[int]bool)
	res := SweepResult{LinesTested: h.geo.Lines()}
	for line := 0; line < h.geo.Lines(); line++ {
		for _, pat := range stressPatterns {
			h.arr.TestLine(line, pat)
		}
	}
	for _, ev := range h.arr.Log().Drain() {
		switch ev.Type {
		case sram.EventCorrectable:
			res.Correctable++
			failing[ev.Line] = true
		case sram.EventUncorrectable:
			res.Uncorrectable++
		}
	}
	res.FailingLines = sortedKeys(failing)
	if res.Uncorrectable > 0 || res.Correctable > h.emergencyCeiling {
		h.raiseEmergency()
	}
	return res
}

// TestLine runs up to maxAttempts write/read self-tests on one line,
// stopping at the first ECC event. Uncorrectable events raise the
// emergency callback immediately.
func (h *ErrorHandler) TestLine(line, maxAttempts int) LineTestResult {
	if maxAttempts <= 0 {
		panic("cache: TestLine needs at least one attempt")
	}
	res := LineTestResult{}
	for a := 1; a <= maxAttempts; a++ {
		res.Attempts = a
		outcome := h.arr.TestLine(line, stressPatterns[a%len(stressPatterns)])
		if outcome == ecc.Uncorrectable {
			res.Triggered = true
			res.Uncorrectable = true
			h.raiseEmergency()
			return res
		}
		if outcome == ecc.Corrected {
			res.Triggered = true
			return res
		}
	}
	return res
}

// Probe implements voltage.Prober with a single sweep.
func (h *ErrorHandler) Probe() voltage.ProbeResult {
	s := h.Sweep()
	return voltage.ProbeResult{Correctable: s.Correctable, Uncorrectable: s.Uncorrectable}
}

var _ voltage.Prober = (*ErrorHandler)(nil)

// BuildPlane constructs the error plane at the current rail voltage by
// running the given number of sweeps and marking every line that
// raised a correctable event in any of them. Enrollment uses several
// sweeps so that flaky marginal lines are captured (the paper's
// conservative eight-attempt characterisation, Figure 11).
func (h *ErrorHandler) BuildPlane(sweeps int) *errormap.Plane {
	if sweeps <= 0 {
		panic("cache: BuildPlane needs at least one sweep")
	}
	plane := errormap.NewPlane(errormap.NewGeometry(h.geo.Lines()))
	for s := 0; s < sweeps; s++ {
		for _, line := range h.Sweep().FailingLines {
			plane.Set(line, true)
		}
	}
	return plane
}

func sortedKeys(m map[int]bool) []int {
	out := make([]int, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	// insertion sort is fine for ~150 entries
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j-1] > out[j]; j-- {
			out[j-1], out[j] = out[j], out[j-1]
		}
	}
	return out
}
