package firmware

import (
	"testing"

	"repro/internal/cache"
	"repro/internal/crp"
	"repro/internal/rng"
)

func TestDecoysIncreaseTraffic(t *testing.T) {
	r := newRig(t, 20, cache.GeometryForSize(512<<10))
	gen := rng.New(1)

	ch := crp.Generate(r.client.Geometry(), 32, r.floorMV, gen)
	r.client.DecoyRatio = 0
	if _, err := r.client.Authenticate(ch); err != nil {
		t.Fatal(err)
	}
	plainProbes := r.client.ProbesLastRun()
	if r.client.DecoysLastRun() != 0 {
		t.Fatalf("decoys issued with ratio 0: %d", r.client.DecoysLastRun())
	}

	ch2 := crp.Generate(r.client.Geometry(), 32, r.floorMV, gen)
	r.client.DecoyRatio = 2
	if _, err := r.client.Authenticate(ch2); err != nil {
		t.Fatal(err)
	}
	decoyProbes := r.client.ProbesLastRun()
	decoys := r.client.DecoysLastRun()
	if decoys == 0 {
		t.Fatal("no decoys issued at ratio 2")
	}
	// Total traffic should roughly triple: each genuine probe brings
	// two decoys (genuine probe counts fluctuate between challenges, so
	// compare loosely).
	if decoyProbes < plainProbes*2 {
		t.Fatalf("decoy traffic too small: %d vs plain %d", decoyProbes, plainProbes)
	}
	// Decoys are part of the probe count (they cost time like any
	// self-test).
	if decoys >= decoyProbes {
		t.Fatalf("decoys (%d) exceed total probes (%d)", decoys, decoyProbes)
	}
}

func TestDecoysDoNotBreakAuthentication(t *testing.T) {
	r := newRig(t, 21, cache.GeometryForSize(512<<10))
	gen := rng.New(2)

	// Evaluate the same challenge against the enrolled plane.
	ch := crp.Generate(r.client.Geometry(), 64, r.floorMV, gen)
	df := r.plane.DistanceTransform()
	want := crp.NewResponse(len(ch.Bits))
	for i, b := range ch.Bits {
		da, db := df.DistLine(b.A), df.DistLine(b.B)
		want.SetBit(i, crp.ResponseBit(da, true, db, true))
	}

	r.client.DecoyRatio = 3
	r.client.MaxAttempts = 8
	got, err := r.client.Authenticate(ch)
	if err != nil {
		t.Fatal(err)
	}
	if d := got.HammingDistance(want); d > 6 {
		t.Fatalf("decoy-interleaved response differs in %d/64 bits", d)
	}
}

func TestDecoyCostCharged(t *testing.T) {
	r := newRig(t, 22, cache.GeometryForSize(512<<10))
	gen := rng.New(3)
	ch := crp.Generate(r.client.Geometry(), 32, r.floorMV, gen)
	r.client.DecoyRatio = 0
	if _, err := r.client.Authenticate(ch); err != nil {
		t.Fatal(err)
	}
	plain := r.client.Elapsed()

	ch2 := crp.Generate(r.client.Geometry(), 32, r.floorMV, gen)
	r.client.DecoyRatio = 4
	if _, err := r.client.Authenticate(ch2); err != nil {
		t.Fatal(err)
	}
	withDecoys := r.client.Elapsed()
	if withDecoys <= plain {
		t.Fatalf("decoys free of charge: %v vs %v", withDecoys, plain)
	}
}
