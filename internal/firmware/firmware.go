// Package firmware simulates the System-Firmware side of the
// Authenticache prototype (paper Section 5): the SMM-style shadowed
// execution environment, core synchronisation, challenge processing,
// and the cost model behind the paper's performance results.
//
// On the real prototype, a client application traps into System
// Management Mode via an SMI; the interrupted core becomes the master,
// halts its siblings, takes ownership of the voltage rail, and answers
// the challenge by self-testing cache lines in expanding Von Neumann
// rings around each challenge coordinate (Section 5.4). This package
// reproduces that control flow against the simulated cache, and
// charges every action to a virtual clock:
//
//   - SMI entry + core synchronisation: fixed cost per authentication,
//   - each supply-voltage transition: fixed cost (challenges sorted by
//     descending Vdd to minimise transitions, Section 5.4),
//   - each cache-line self-test attempt: fixed cost.
//
// Absolute times are calibrated so a 512-bit CRP with 4 self-test
// attempts per line lands near the paper's ~125 ms (Figure 13); the
// relative scaling across CRP sizes and error densities (Figure 14)
// emerges from the ring-search probe counts.
package firmware

import (
	"errors"
	"fmt"
	"sort"
	"time"

	"repro/internal/cache"
	"repro/internal/crp"
	"repro/internal/errormap"
	"repro/internal/rng"
	"repro/internal/voltage"
)

// CostModel holds the virtual-time constants.
type CostModel struct {
	// SMIEntry covers the SMI trap, master election and halting of the
	// sibling cores, and the final resume.
	SMIEntry time.Duration
	// VddTransition is charged per distinct supply-voltage change.
	VddTransition time.Duration
	// LineTest is charged per single cache-line self-test attempt
	// (write pattern + read back + ECC log inspection).
	LineTest time.Duration
}

// DefaultCostModel reproduces the prototype's measured envelope.
func DefaultCostModel() CostModel {
	return CostModel{
		SMIEntry:      500 * time.Microsecond,
		VddTransition: 2 * time.Millisecond,
		LineTest:      40 * time.Nanosecond,
	}
}

// CoreState models one core's view during shadowed execution.
type CoreState int

const (
	// CoreRunning executes OS code.
	CoreRunning CoreState = iota
	// CoreHalted is parked inside the SMI handler.
	CoreHalted
	// CoreMaster coordinates the authentication.
	CoreMaster
)

func (s CoreState) String() string {
	switch s {
	case CoreRunning:
		return "running"
	case CoreHalted:
		return "halted"
	case CoreMaster:
		return "master"
	default:
		return fmt.Sprintf("CoreState(%d)", int(s))
	}
}

// ErrBusy is returned when an authentication is already in flight.
var ErrBusy = errors.New("firmware: authentication already in progress")

// ErrAborted is returned when the voltage controller rejects a
// requested Vdd; the transaction terminates and control returns to the
// OS (paper Section 5.3).
var ErrAborted = errors.New("firmware: transaction aborted")

// Client is the firmware-resident Authenticache client.
type Client struct {
	handler *cache.ErrorHandler
	ctrl    *voltage.Controller
	costs   CostModel
	geo     errormap.Geometry

	cores   []CoreState
	inSMM   bool
	elapsed time.Duration // virtual clock of the last transaction

	// MaxAttempts is the per-line self-test attempt budget while
	// searching for errors (Section 6.3's accuracy/performance knob).
	MaxAttempts int

	// DecoyRatio interleaves this many self-tests of random unrelated
	// cache lines per genuine probe. It implements the side-channel
	// mitigation of Section 7.2: an attacker correlating ECC activity
	// (power or EM emanations) with the authentication sees genuine
	// accesses hidden in decoy traffic. 0 disables decoys.
	DecoyRatio int

	// payloadBits caps how many challenge bits one atomic firmware
	// transaction processes (Section 5.4's segmentation).
	payloadBits int

	decoyRand     *rng.Rand
	probesLastRun int
	decoysLastRun int
}

// NewClient builds the firmware client over an error handler and a
// calibrated voltage controller. cores is the core count of the
// package (the prototype synchronises all of them).
func NewClient(handler *cache.ErrorHandler, ctrl *voltage.Controller, cores int, costs CostModel) *Client {
	if cores < 1 {
		panic("firmware: need at least one core")
	}
	return &Client{
		handler:     handler,
		ctrl:        ctrl,
		costs:       costs,
		geo:         errormap.NewGeometry(handler.Geometry().Lines()),
		cores:       make([]CoreState, cores),
		MaxAttempts: 1,
		payloadBits: 64,
		decoyRand:   rng.New(0xdec0dec0),
	}
}

// Geometry returns the logical error-map geometry of the client cache.
func (c *Client) Geometry() errormap.Geometry { return c.geo }

// Elapsed returns the virtual time consumed by the last transaction.
func (c *Client) Elapsed() time.Duration { return c.elapsed }

// ProbesLastRun returns how many line self-test attempts the last
// transaction executed (probe count × attempts); this drives the
// Figure 13/14 analysis.
func (c *Client) ProbesLastRun() int { return c.probesLastRun }

// DecoysLastRun returns how many decoy self-tests the last transaction
// interleaved (Section 7.2 side-channel mitigation).
func (c *Client) DecoysLastRun() int { return c.decoysLastRun }

// CoreStates returns a snapshot of the core states.
func (c *Client) CoreStates() []CoreState {
	out := make([]CoreState, len(c.cores))
	copy(out, c.cores)
	return out
}

// enterSMM traps into shadowed execution: core 0 becomes master, all
// others halt.
func (c *Client) enterSMM() error {
	if c.inSMM {
		return ErrBusy
	}
	c.inSMM = true
	c.cores[0] = CoreMaster
	for i := 1; i < len(c.cores); i++ {
		c.cores[i] = CoreHalted
	}
	c.elapsed += c.costs.SMIEntry
	return nil
}

// exitSMM resumes all cores and returns the rail to nominal.
func (c *Client) exitSMM() {
	c.ctrl.RestoreNominal()
	for i := range c.cores {
		c.cores[i] = CoreRunning
	}
	c.inSMM = false
}

// sortBitsByVdd orders challenge bit indices by descending voltage so
// the rail only ever steps downward within a transaction (Section
// 5.4). The sort is stable so bits at equal Vdd stay in challenge
// order.
func sortBitsByVdd(ch *crp.Challenge) []int {
	idx := make([]int, len(ch.Bits))
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool {
		return ch.Bits[idx[a]].VddMV > ch.Bits[idx[b]].VddMV
	})
	return idx
}

// Unmapper translates a logical error-map position into the physical
// cache line to self-test. Authenticache's keyed remap (paper Section
// 4.3, "Unmap(KA)" in Figure 6) supplies the real implementation; the
// identity function corresponds to the default mapping used during
// key updates.
type Unmapper func(logicalLine int) int

// IdentityUnmap is the default (unkeyed) mapping.
func IdentityUnmap(line int) int { return line }

// issueDecoys self-tests DecoyRatio random unrelated cache lines,
// discarding the outcomes. Decoys are indistinguishable from genuine
// probes on the ECC activity side-channel; their cost is charged like
// any other self-test and returned so the caller can account for it.
func (c *Client) issueDecoys() int {
	if c.DecoyRatio <= 0 {
		return 0
	}
	spent := 0
	for i := 0; i < c.DecoyRatio; i++ {
		line := c.decoyRand.Intn(c.geo.Lines)
		res := c.handler.TestLine(line, 1)
		spent += res.Attempts
	}
	c.decoysLastRun += spent
	return spent
}

// searchNearest performs the firmware's outward, clockwise Von Neumann
// ring search around the logical map coordinate, self-testing each
// visited position's *physical* line (via unmap) up to MaxAttempts
// times. It returns the Manhattan distance — in logical space — of the
// first position that triggered a correctable error, whether one
// triggered at all within the search horizon, the number of self-test
// attempts spent, and any abort condition.
func (c *Client) searchNearest(line int, unmap Unmapper) (dist int, found bool, attempts int, err error) {
	g := c.geo
	center := g.Coord(line)
	maxR := g.Width + g.Height()
	for r := 0; r <= maxR; r++ {
		hit := false
		var aborted error
		ringVisit(center, r, func(cell errormap.Coord) {
			if hit || aborted != nil {
				return
			}
			logical, ok := g.Line(cell)
			if !ok {
				return
			}
			target := unmap(logical)
			res := c.handler.TestLine(target, c.MaxAttempts)
			attempts += res.Attempts
			attempts += c.issueDecoys()
			if res.Uncorrectable {
				// The emergency path has already raised the rail; the
				// transaction must abort.
				aborted = fmt.Errorf("%w: uncorrectable error at line %d", ErrAborted, target)
				return
			}
			if res.Triggered {
				hit = true
			}
		})
		if aborted != nil {
			return 0, false, attempts, aborted
		}
		if hit {
			return r, true, attempts, nil
		}
	}
	return 0, false, attempts, nil
}

// ringVisit mirrors errormap's clockwise-from-north ring traversal; it
// is duplicated here deliberately: the firmware implements its own
// walk over physical self-tests rather than over a stored bitmap.
func ringVisit(c errormap.Coord, r int, fn func(errormap.Coord)) {
	if r == 0 {
		fn(c)
		return
	}
	for i := 0; i < r; i++ {
		fn(errormap.Coord{X: c.X + i, Y: c.Y - r + i})
	}
	for i := 0; i < r; i++ {
		fn(errormap.Coord{X: c.X + r - i, Y: c.Y + i})
	}
	for i := 0; i < r; i++ {
		fn(errormap.Coord{X: c.X - i, Y: c.Y + r - i})
	}
	for i := 0; i < r; i++ {
		fn(errormap.Coord{X: c.X - r + i, Y: c.Y - i})
	}
}

// Authenticate processes a challenge whose coordinates are physical
// line indices (identity mapping). Production flows use
// AuthenticateMapped with the keyed unmapper.
func (c *Client) Authenticate(ch *crp.Challenge) (crp.Response, error) {
	return c.AuthenticateMapped(ch, func(vddMV int) Unmapper { return IdentityUnmap })
}

// AuthenticateMapped processes a challenge end to end inside shadowed
// execution and returns the response. Challenge coordinates are
// logical positions; unmapFor supplies the per-voltage-plane keyed
// translation back to physical lines.
func (c *Client) AuthenticateMapped(ch *crp.Challenge, unmapFor func(vddMV int) Unmapper) (crp.Response, error) {
	c.elapsed = 0
	c.probesLastRun = 0
	c.decoysLastRun = 0
	if err := ch.Validate(c.geo); err != nil {
		return crp.Response{}, err
	}
	if err := c.enterSMM(); err != nil {
		return crp.Response{}, err
	}
	defer c.exitSMM()

	resp := crp.NewResponse(len(ch.Bits))
	order := sortBitsByVdd(ch)
	curVdd := -1
	var unmap Unmapper
	processedInPayload := 0
	for _, bitIdx := range order {
		b := ch.Bits[bitIdx]
		if b.VddMV != curVdd {
			if err := c.ctrl.Request(b.VddMV); err != nil {
				return crp.Response{}, fmt.Errorf("%w: vdd %d mV: %v", ErrAborted, b.VddMV, err)
			}
			c.elapsed += c.costs.VddTransition
			curVdd = b.VddMV
			unmap = unmapFor(b.VddMV)
			if unmap == nil {
				unmap = IdentityUnmap
			}
		}
		distA, foundA, attA, err := c.searchNearest(b.A, unmap)
		c.probesLastRun += attA
		c.elapsed += time.Duration(attA) * c.costs.LineTest
		if err != nil {
			return crp.Response{}, err
		}
		distB, foundB, attB, err := c.searchNearest(b.B, unmap)
		c.probesLastRun += attB
		c.elapsed += time.Duration(attB) * c.costs.LineTest
		if err != nil {
			return crp.Response{}, err
		}
		resp.SetBit(bitIdx, crp.ResponseBit(distA, foundA, distB, foundB))

		processedInPayload++
		if processedInPayload == c.payloadBits {
			// Atomic transaction boundary (Section 5.4): the prototype
			// re-enters the handler per payload; charge one SMI round
			// trip.
			c.elapsed += c.costs.SMIEntry
			processedInPayload = 0
		}
	}
	return resp, nil
}

// MeasureResponse is the map-update primitive (Section 4.5): it
// answers a challenge exactly like Authenticate but is named
// separately because the response never leaves the device — it is
// fed into the fuzzy extractor to derive the next map key.
func (c *Client) MeasureResponse(ch *crp.Challenge) (crp.Response, error) {
	return c.Authenticate(ch)
}
