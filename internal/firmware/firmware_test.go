package firmware

import (
	"errors"
	"testing"
	"time"

	"repro/internal/cache"
	"repro/internal/crp"
	"repro/internal/errormap"
	"repro/internal/rng"
	"repro/internal/sram"
	"repro/internal/variation"
	"repro/internal/voltage"
)

// rig bundles a fully calibrated simulated client.
type rig struct {
	client  *Client
	handler *cache.ErrorHandler
	ctrl    *voltage.Controller
	floorMV int
	plane   *errormap.Plane
}

func newRig(t testing.TB, seed uint64, geo cache.Geometry) *rig {
	t.Helper()
	model := variation.NewModel(seed, variation.DefaultParams())
	arr := sram.New(model, geo.Lines(), seed^0x77)
	h := cache.NewErrorHandler(arr, geo)
	cfg := voltage.DefaultConfig()
	cfg.StepMV = 5
	cfg.VMinSearch = 0.600
	ctrl := voltage.NewController(arr, cfg)
	h.SetEmergencyCallback(ctrl.Emergency)
	floor, err := ctrl.CalibrateFloor(h)
	if err != nil {
		t.Fatal(err)
	}
	cl := NewClient(h, ctrl, 8, DefaultCostModel())

	// Challenges run 10 mV above the floor: at the floor itself the
	// bulk cells sit right at the stochastic trigger boundary and
	// flicker, which is exactly why the controller adds guardband.
	testMV := floor + 10
	if err := ctrl.Request(testMV); err != nil {
		t.Fatal(err)
	}
	plane := h.BuildPlane(8)
	ctrl.RestoreNominal()
	return &rig{client: cl, handler: h, ctrl: ctrl, floorMV: testMV, plane: plane}
}

func TestAuthenticateMatchesServerEvaluation(t *testing.T) {
	r := newRig(t, 1, cache.GeometryForSize(1<<20))
	gen := rng.New(42)
	ch := crp.Generate(r.client.Geometry(), 64, r.floorMV, gen)

	m := errormap.NewMap(r.plane.Geometry())
	m.AddPlane(r.floorMV, r.plane)
	want, err := crp.Evaluate(ch, crp.NewPlaneOracles(m))
	if err != nil {
		t.Fatal(err)
	}

	r.client.MaxAttempts = 8 // conservative mode: match enrollment
	got, err := r.client.Authenticate(ch)
	if err != nil {
		t.Fatal(err)
	}
	d := got.HammingDistance(want)
	// A few marginal-line flips are expected; gross disagreement means
	// the search logic diverges from the map semantics.
	if d > 6 {
		t.Fatalf("firmware response differs from map evaluation in %d/64 bits", d)
	}
}

func TestAuthenticateRestoresSystemState(t *testing.T) {
	r := newRig(t, 2, cache.GeometryForSize(512<<10))
	ch := crp.Generate(r.client.Geometry(), 16, r.floorMV, rng.New(1))
	if _, err := r.client.Authenticate(ch); err != nil {
		t.Fatal(err)
	}
	for i, s := range r.client.CoreStates() {
		if s != CoreRunning {
			t.Fatalf("core %d left in state %v", i, s)
		}
	}
	if v := r.handler.Array().Voltage(); v != 0.800 {
		t.Fatalf("rail left at %v", v)
	}
}

func TestAuthenticateAbortsOnBadVdd(t *testing.T) {
	r := newRig(t, 3, cache.GeometryForSize(512<<10))
	ch := crp.Generate(r.client.Geometry(), 8, r.floorMV-50, rng.New(2))
	_, err := r.client.Authenticate(ch)
	if !errors.Is(err, ErrAborted) {
		t.Fatalf("below-floor challenge: %v", err)
	}
	// System must be restored even after the abort.
	if v := r.handler.Array().Voltage(); v != 0.800 {
		t.Fatalf("rail left at %v after abort", v)
	}
	for i, s := range r.client.CoreStates() {
		if s != CoreRunning {
			t.Fatalf("core %d stuck in %v after abort", i, s)
		}
	}
}

func TestAuthenticateRejectsInvalidChallenge(t *testing.T) {
	r := newRig(t, 4, cache.GeometryForSize(512<<10))
	bad := &crp.Challenge{Bits: []crp.PairBit{{A: 1, B: 1, VddMV: r.floorMV}}}
	if _, err := r.client.Authenticate(bad); err == nil {
		t.Fatal("degenerate challenge accepted")
	}
}

func TestElapsedGrowsWithCRPSize(t *testing.T) {
	r := newRig(t, 5, cache.Geometry4MB)
	gen := rng.New(3)
	times := map[int]time.Duration{}
	for _, bits := range []int{64, 256} {
		ch := crp.Generate(r.client.Geometry(), bits, r.floorMV, gen)
		if _, err := r.client.Authenticate(ch); err != nil {
			t.Fatal(err)
		}
		times[bits] = r.client.Elapsed()
	}
	if times[256] <= times[64] {
		t.Fatalf("256-bit (%v) not slower than 64-bit (%v)", times[256], times[64])
	}
}

func TestElapsedGrowsWithAttempts(t *testing.T) {
	r := newRig(t, 6, cache.Geometry4MB)
	gen := rng.New(4)
	ch := crp.Generate(r.client.Geometry(), 64, r.floorMV, gen)
	r.client.MaxAttempts = 1
	if _, err := r.client.Authenticate(ch); err != nil {
		t.Fatal(err)
	}
	t1 := r.client.Elapsed()
	ch2 := crp.Generate(r.client.Geometry(), 64, r.floorMV, gen)
	r.client.MaxAttempts = 8
	if _, err := r.client.Authenticate(ch2); err != nil {
		t.Fatal(err)
	}
	t8 := r.client.Elapsed()
	if t8 <= t1 {
		t.Fatalf("8-attempt (%v) not slower than 1-attempt (%v)", t8, t1)
	}
}

// Figure 13 anchor: a 512-bit CRP with 4 attempts per line on a 4 MB
// cache completes in under ~200 ms of virtual time (paper: <125 ms).
func TestFigure13Envelope(t *testing.T) {
	if testing.Short() {
		t.Skip("full 512-bit authentication is slow")
	}
	r := newRig(t, 7, cache.Geometry4MB)
	ch := crp.Generate(r.client.Geometry(), 512, r.floorMV, rng.New(5))
	r.client.MaxAttempts = 4
	if _, err := r.client.Authenticate(ch); err != nil {
		t.Fatal(err)
	}
	e := r.client.Elapsed()
	if e > 400*time.Millisecond {
		t.Fatalf("512-bit/4-attempt virtual runtime = %v, want prototype-scale (<400ms)", e)
	}
	if e < 5*time.Millisecond {
		t.Fatalf("virtual runtime %v implausibly small", e)
	}
}

func TestVddSortingMinimisesTransitions(t *testing.T) {
	ch := &crp.Challenge{Bits: []crp.PairBit{
		{A: 0, B: 1, VddMV: 700},
		{A: 2, B: 3, VddMV: 720},
		{A: 4, B: 5, VddMV: 700},
		{A: 6, B: 7, VddMV: 720},
	}}
	order := sortBitsByVdd(ch)
	// Expect both 720s first (stable: bit 1 then 3), then the 700s.
	want := []int{1, 3, 0, 2}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}

func TestRingVisitMatchesErrormapSemantics(t *testing.T) {
	// The firmware's physical walk and the map package's logical walk
	// must visit identical cells: the server predicts client behaviour.
	for r := 0; r <= 4; r++ {
		var a, b []errormap.Coord
		ringVisit(errormap.Coord{X: 7, Y: 9}, r, func(c errormap.Coord) { a = append(a, c) })
		collectRing(errormap.Coord{X: 7, Y: 9}, r, &b)
		if len(a) != len(b) {
			t.Fatalf("r=%d: lengths %d vs %d", r, len(a), len(b))
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("r=%d: cell %d differs: %v vs %v", r, i, a[i], b[i])
			}
		}
	}
}

// collectRing regenerates the expected clockwise-from-north order.
func collectRing(c errormap.Coord, r int, out *[]errormap.Coord) {
	if r == 0 {
		*out = append(*out, c)
		return
	}
	for i := 0; i < r; i++ {
		*out = append(*out, errormap.Coord{X: c.X + i, Y: c.Y - r + i})
	}
	for i := 0; i < r; i++ {
		*out = append(*out, errormap.Coord{X: c.X + r - i, Y: c.Y + i})
	}
	for i := 0; i < r; i++ {
		*out = append(*out, errormap.Coord{X: c.X - i, Y: c.Y + r - i})
	}
	for i := 0; i < r; i++ {
		*out = append(*out, errormap.Coord{X: c.X - r + i, Y: c.Y - i})
	}
}

func TestCoreStateString(t *testing.T) {
	if CoreRunning.String() != "running" || CoreHalted.String() != "halted" || CoreMaster.String() != "master" {
		t.Fatal("CoreState strings wrong")
	}
}

func TestNewClientValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("zero cores accepted")
		}
	}()
	NewClient(nil, nil, 0, DefaultCostModel())
}
