package firmware

import (
	"errors"
	"testing"

	"repro/internal/cache"
	"repro/internal/crp"
	"repro/internal/rng"
	"repro/internal/variation"
)

// A drastic environmental excursion after calibration pushes the bulk
// cell population into the challenge voltage band: targeted self-tests
// start hitting double-bit (uncorrectable) errors, the error handler
// fires the emergency, and the firmware must abort the transaction and
// restore the system — the paper's Section 5.2/5.3 protection path.
func TestUncorrectableMidChallengeAborts(t *testing.T) {
	r := newRig(t, 30, cache.GeometryForSize(512<<10))

	// Stale calibration: the silicon heats far beyond anything the
	// floor accounted for (deliberately unphysical to make the bulk
	// intrude deterministically).
	r.handler.Array().SetEnvironment(variation.Environment{DeltaT: 400})

	ch := crp.Generate(r.client.Geometry(), 64, r.floorMV, rng.New(1))
	r.client.MaxAttempts = 4
	_, err := r.client.Authenticate(ch)
	if !errors.Is(err, ErrAborted) {
		t.Fatalf("expected abort under uncorrectable storm, got %v", err)
	}
	if r.handler.Emergencies() == 0 {
		t.Fatal("emergency path never fired")
	}
	// System restored: rail at nominal, cores running.
	if v := r.handler.Array().Voltage(); v != 0.800 {
		t.Fatalf("rail left at %v after emergency abort", v)
	}
	for i, s := range r.client.CoreStates() {
		if s != CoreRunning {
			t.Fatalf("core %d left in %v", i, s)
		}
	}
	_, emergencies := r.ctrl.Stats()
	if emergencies == 0 {
		t.Fatal("controller never recorded the emergency")
	}
}

// After recalibrating under the new conditions, the chip either works
// at its new floor or reports honestly that nominal operation is
// impossible — it must not keep aborting silently.
func TestRecalibrationRestoresService(t *testing.T) {
	r := newRig(t, 31, cache.GeometryForSize(512<<10))
	r.handler.Array().SetEnvironment(variation.Environment{DeltaT: 25, AgeYears: 10})
	floor, err := r.ctrl.Recalibrate(r.handler)
	if err != nil {
		t.Fatalf("recalibration failed: %v", err)
	}
	ch := crp.Generate(r.client.Geometry(), 32, floor+10, rng.New(2))
	if _, err := r.client.Authenticate(ch); err != nil {
		t.Fatalf("authentication at the recalibrated floor failed: %v", err)
	}
}
